package agilewatts

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The adversarial scenario library under testdata/scenarios/ is pinned
// the same way the healthy scenario goldens are: exact hex-float
// fingerprints over every observable, extended with the fault-injection
// observables (down nodes, restarts, restart penalty energy, controller
// targets). Regenerate with:
//
//	GOLDEN_PRINT=1 go test -run TestGoldenAdversarialScenarios -v .
//
// only when an intentional model change alters the output.

// adversarialFingerprint extends the scenario fingerprint with the
// fault and control-plane observables.
func adversarialFingerprint(res ScenarioResult) string {
	var b strings.Builder
	b.WriteString(scenarioFingerprint(res))
	fmt.Fprintf(&b, " ctrl=%q changes=%d restarts=%d", res.Controller, res.ControllerChanges, res.Restarts)
	for _, ep := range res.Epochs {
		if ep.Down > 0 || ep.Restarted > 0 {
			fmt.Fprintf(&b, " e%d.fault[down=%d,rst=%d,rej=%s]",
				ep.Epoch, ep.Down, ep.Restarted, hexF(ep.RestartEnergyJ))
		}
		if res.Controller != "" {
			fmt.Fprintf(&b, " e%d.tgt=%d", ep.Epoch, ep.TargetNodes)
		}
	}
	return b.String()
}

// goldenAdversarialWant maps scenario-file name to its pinned
// fingerprint, captured when the fault-injection engine landed.
var goldenAdversarialWant = map[string]string{
	"crash-under-spike": "sched=spike disp=consolidate epoch=10000000 total=60000000 unparks=1 energy=0x1.acab705a6addcp+02 avgw=0x1.be87ea5e2f51ap+06 qps=0x1.393faaaaaaaaap+19 qpw=0x1.672d236ae83f5p+12 worstp99=0x1.f4p+12 timeline=[3 3 1 1 3 3] e0[0-10000000,pre,unp=0] e0.rate=0x1.86ap+18 e0.w=0x1.872dc52d3a172p+06 e0.qps=0x1.8b9bp+18 e0.p99=0x1.09p+06 e0.upj=0x0p+00 e1[10000000-20000000,pre,unp=0] e1.rate=0x1.86ap+18 e1.w=0x1.87180005873d8p+06 e1.qps=0x1.8bb4p+18 e1.p99=0x1.03p+06 e1.upj=0x0p+00 e2[20000000-30000000,spike,unp=1] e2.rate=0x1.117p+20 e2.w=0x1.ac6203b30fe38p+06 e2.qps=0x1.1088cp+20 e2.p99=0x1.01p+07 e2.upj=0x0p+00 e3[30000000-40000000,spike,unp=0] e3.rate=0x1.117p+20 e3.w=0x1.a77b0604e0dfep+06 e3.qps=0x1.11c14p+20 e3.p99=0x1.b7p+06 e3.upj=0x0p+00 e4[40000000-50000000,post,unp=0] e4.rate=0x1.86ap+18 e4.w=0x1.474cf7d3161cap+07 e4.qps=0x1.858dp+18 e4.p99=0x1.f4p+12 e4.upj=0x0p+00 e5[50000000-60000000,post,unp=0] e5.rate=0x1.86ap+18 e5.w=0x1.8672bfa43d988p+06 e5.qps=0x1.88f8p+18 e5.p99=0x1.ddp+05 e5.upj=0x0p+00 ph[pre,n=2,t=20000000] ph.pre.rate=0x1.86ap+18 ph.pre.w=0x1.8722e29960aa5p+06 ph.pre.p99=0x1.09p+06 ph.pre.parked=0x1.8p+01 ph[spike,n=2,t=20000000] ph.spike.rate=0x1.117p+20 ph.spike.w=0x1.a9ee84dbf861bp+06 ph.spike.p99=0x1.01p+07 ph.spike.parked=0x1p+00 ph[post,n=2,t=20000000] ph.post.rate=0x1.86ap+18 ph.post.w=0x1.05432bd29a747p+07 ph.post.p99=0x1.f4p+12 ph.post.parked=0x1.8p+01 ctrl=\"reactive\" changes=1 restarts=2 e0.tgt=4 e1.tgt=1 e2.fault[down=2,rst=0,rej=0x0p+00] e2.tgt=1 e3.fault[down=2,rst=0,rej=0x0p+00] e3.tgt=1 e4.fault[down=0,rst=2,rej=0x1.47ae147ae147bp-01] e4.tgt=1 e5.tgt=1",
	"straggler-diurnal": "sched=diurnal disp=consolidate epoch=15000000 total=60000000 unparks=1 energy=0x1.309460925de13p+03 avgw=0x1.3d4539edcc754p+07 qps=0x1.b4f78aaaaaaabp+20 qpw=0x1.6094c0d6dc129p+13 worstp99=0x1.73p+09 timeline=[2 1 1 2] e0[0-15000000,h01,unp=0] e0.rate=0x1.13726dac987a7p+20 e0.w=0x1.e0fcaf472d4edp+06 e0.qps=0x1.1233d55555556p+20 e0.p99=0x1.c7p+06 e0.upj=0x0p+00 e1[15000000-30000000,h04,unp=1] e1.rate=0x1.2dbac929b3c2bp+21 e1.w=0x1.a35d4e4a82ec2p+07 e1.qps=0x1.2ade6aaaaaaabp+21 e1.p99=0x1.a1p+08 e1.upj=0x0p+00 e2[30000000-45000000,h07,unp=0] e2.rate=0x1.2dbac929b3c2dp+21 e2.w=0x1.85b49bbd13106p+07 e2.qps=0x1.2ca6aaaaaaaabp+21 e2.p99=0x1.87p+08 e2.upj=0x0p+00 e3[45000000-60000000,h10,unp=0] e3.rate=0x1.13726dac987a7p+20 e3.w=0x1.b7094c180a624p+06 e3.qps=0x1.12a02aaaaaaabp+20 e3.p99=0x1.73p+09 e3.upj=0x0p+00 ph[h01,n=1,t=15000000] ph.h01.rate=0x1.13726dac987a7p+20 ph.h01.w=0x1.e0fcaf472d4edp+06 ph.h01.p99=0x1.c7p+06 ph.h01.parked=0x1p+01 ph[h04,n=1,t=15000000] ph.h04.rate=0x1.2dbac929b3c2ap+21 ph.h04.w=0x1.a35d4e4a82ec2p+07 ph.h04.p99=0x1.a1p+08 ph.h04.parked=0x1p+00 ph[h07,n=1,t=15000000] ph.h07.rate=0x1.2dbac929b3c2dp+21 ph.h07.w=0x1.85b49bbd13106p+07 ph.h07.p99=0x1.87p+08 ph.h07.parked=0x1p+00 ph[h10,n=1,t=15000000] ph.h10.rate=0x1.13726dac987a7p+20 ph.h10.w=0x1.b7094c180a624p+06 ph.h10.p99=0x1.73p+09 ph.h10.parked=0x1p+01 ctrl=\"\" changes=0 restarts=0",
	"thermal-storm":     "sched=ramp disp=spread epoch=10000000 total=60000000 unparks=0 energy=0x1.0010d0efb1038p+03 avgw=0x1.0abc2ef9adb8fp+07 qps=0x1.2545155555555p+19 qpw=0x1.197782cf2f921p+12 worstp99=0x1.55p+06 timeline=[0 0 0 0 0 0] e0[0-10000000,ramp,unp=0] e0.rate=0x1.b774p+17 e0.w=0x1.cd5e563c60744p+06 e0.qps=0x1.c4eep+17 e0.p99=0x1.55p+06 e0.upj=0x0p+00 e1[10000000-20000000,ramp,unp=0] e1.rate=0x1.6e36p+18 e1.w=0x1.e57b477cd29e7p+06 e1.qps=0x1.6f94p+18 e1.p99=0x1.dbp+05 e1.upj=0x0p+00 e2[20000000-30000000,ramp,unp=0] e2.rate=0x1.0059p+19 e2.w=0x1.0287e816874b1p+07 e2.qps=0x1.fd15p+18 e2.p99=0x1.b9p+05 e2.upj=0x0p+00 e3[30000000-40000000,ramp,unp=0] e3.rate=0x1.4997p+19 e3.w=0x1.1022f4a96df68p+07 e3.qps=0x1.46b58p+19 e3.p99=0x1.37p+06 e3.upj=0x0p+00 e4[40000000-50000000,ramp,unp=0] e4.rate=0x1.92d5p+19 e4.w=0x1.1c8cd84a9740cp+07 e4.qps=0x1.8f9cp+19 e4.p99=0x1.43p+06 e4.upj=0x0p+00 e5[50000000-60000000,ramp,unp=0] e5.rate=0x1.dc13p+19 e5.w=0x1.37c495f2ec4a2p+07 e5.qps=0x1.e1bdp+19 e5.p99=0x1.09p+06 e5.upj=0x0p+00 ph[ramp,n=6,t=60000000] ph.ramp.rate=0x1.24f8p+19 ph.ramp.w=0x1.0abc2ef9adb9p+07 ph.ramp.p99=0x1.55p+06 ph.ramp.parked=0x0p+00 ctrl=\"\" changes=0 restarts=0",
}

func TestGoldenAdversarialScenarios(t *testing.T) {
	printMode := os.Getenv("GOLDEN_PRINT") != ""
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario files under testdata/scenarios")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		run, err := LoadScenarioFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := RunScenario(run)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := adversarialFingerprint(res)
		if printMode {
			fmt.Printf("\t%q: %q,\n", name, got)
			continue
		}
		want, ok := goldenAdversarialWant[name]
		if !ok {
			t.Fatalf("%s: no golden recorded", name)
		}
		if got != want {
			t.Errorf("%s: adversarial scenario drifted from golden\n got: %s\nwant: %s",
				name, diffFields(got, want), diffFields(want, got))
		}
	}
}
