package agilewatts

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The adversarial scenario library under testdata/scenarios/ is pinned
// the same way the healthy scenario goldens are: exact hex-float
// fingerprints over every observable, extended with the fault-injection
// observables (down nodes, restarts, restart penalty energy, controller
// targets). Regenerate with:
//
//	GOLDEN_PRINT=1 go test -run TestGoldenAdversarialScenarios -v .
//
// only when an intentional model change alters the output.

// adversarialFingerprint extends the scenario fingerprint with the
// fault and control-plane observables.
func adversarialFingerprint(res ScenarioResult) string {
	var b strings.Builder
	b.WriteString(scenarioFingerprint(res))
	fmt.Fprintf(&b, " ctrl=%q changes=%d restarts=%d", res.Controller, res.ControllerChanges, res.Restarts)
	for _, ep := range res.Epochs {
		if ep.Down > 0 || ep.Restarted > 0 {
			fmt.Fprintf(&b, " e%d.fault[down=%d,rst=%d,rej=%s]",
				ep.Epoch, ep.Down, ep.Restarted, hexF(ep.RestartEnergyJ))
		}
		if res.Controller != "" {
			fmt.Fprintf(&b, " e%d.tgt=%d", ep.Epoch, ep.TargetNodes)
		}
	}
	// Overload observables print only when a policy is selected, so the
	// pre-overload goldens stay byte-identical.
	if res.Overload != "" {
		fmt.Fprintf(&b, " ov=%q sat=%d shed=%s backlog=%s",
			res.Overload, res.SaturatedEpochs, hexF(res.SheddedRequests), hexF(res.BacklogRate))
		for _, ep := range res.Epochs {
			if ep.Saturated || ep.SheddedRequests > 0 || ep.BacklogRate > 0 {
				fmt.Fprintf(&b, " e%d.ov[sat=%v,shed=%s,bl=%s]",
					ep.Epoch, ep.Saturated, hexF(ep.SheddedRequests), hexF(ep.BacklogRate))
			}
		}
	}
	return b.String()
}

// goldenAdversarialWant maps scenario-file name to its pinned
// fingerprint, captured when the fault-injection engine landed.
var goldenAdversarialWant = map[string]string{
	"crash-under-spike": "sched=spike disp=consolidate epoch=10000000 total=60000000 unparks=1 energy=0x1.acab705a6addcp+02 avgw=0x1.be87ea5e2f51ap+06 qps=0x1.393faaaaaaaaap+19 qpw=0x1.672d236ae83f5p+12 worstp99=0x1.f4p+12 timeline=[3 3 1 1 3 3] e0[0-10000000,pre,unp=0] e0.rate=0x1.86ap+18 e0.w=0x1.872dc52d3a172p+06 e0.qps=0x1.8b9bp+18 e0.p99=0x1.09p+06 e0.upj=0x0p+00 e1[10000000-20000000,pre,unp=0] e1.rate=0x1.86ap+18 e1.w=0x1.87180005873d8p+06 e1.qps=0x1.8bb4p+18 e1.p99=0x1.03p+06 e1.upj=0x0p+00 e2[20000000-30000000,spike,unp=1] e2.rate=0x1.117p+20 e2.w=0x1.ac6203b30fe38p+06 e2.qps=0x1.1088cp+20 e2.p99=0x1.01p+07 e2.upj=0x0p+00 e3[30000000-40000000,spike,unp=0] e3.rate=0x1.117p+20 e3.w=0x1.a77b0604e0dfep+06 e3.qps=0x1.11c14p+20 e3.p99=0x1.b7p+06 e3.upj=0x0p+00 e4[40000000-50000000,post,unp=0] e4.rate=0x1.86ap+18 e4.w=0x1.474cf7d3161cap+07 e4.qps=0x1.858dp+18 e4.p99=0x1.f4p+12 e4.upj=0x0p+00 e5[50000000-60000000,post,unp=0] e5.rate=0x1.86ap+18 e5.w=0x1.8672bfa43d988p+06 e5.qps=0x1.88f8p+18 e5.p99=0x1.ddp+05 e5.upj=0x0p+00 ph[pre,n=2,t=20000000] ph.pre.rate=0x1.86ap+18 ph.pre.w=0x1.8722e29960aa5p+06 ph.pre.p99=0x1.09p+06 ph.pre.parked=0x1.8p+01 ph[spike,n=2,t=20000000] ph.spike.rate=0x1.117p+20 ph.spike.w=0x1.a9ee84dbf861bp+06 ph.spike.p99=0x1.01p+07 ph.spike.parked=0x1p+00 ph[post,n=2,t=20000000] ph.post.rate=0x1.86ap+18 ph.post.w=0x1.05432bd29a747p+07 ph.post.p99=0x1.f4p+12 ph.post.parked=0x1.8p+01 ctrl=\"reactive\" changes=1 restarts=2 e0.tgt=4 e1.tgt=1 e2.fault[down=2,rst=0,rej=0x0p+00] e2.tgt=1 e3.fault[down=2,rst=0,rej=0x0p+00] e3.tgt=1 e4.fault[down=0,rst=2,rej=0x1.47ae147ae147bp-01] e4.tgt=1 e5.tgt=1",
	"straggler-diurnal": "sched=diurnal disp=consolidate epoch=15000000 total=60000000 unparks=1 energy=0x1.309460925de13p+03 avgw=0x1.3d4539edcc754p+07 qps=0x1.b4f78aaaaaaabp+20 qpw=0x1.6094c0d6dc129p+13 worstp99=0x1.73p+09 timeline=[2 1 1 2] e0[0-15000000,h01,unp=0] e0.rate=0x1.13726dac987a7p+20 e0.w=0x1.e0fcaf472d4edp+06 e0.qps=0x1.1233d55555556p+20 e0.p99=0x1.c7p+06 e0.upj=0x0p+00 e1[15000000-30000000,h04,unp=1] e1.rate=0x1.2dbac929b3c2bp+21 e1.w=0x1.a35d4e4a82ec2p+07 e1.qps=0x1.2ade6aaaaaaabp+21 e1.p99=0x1.a1p+08 e1.upj=0x0p+00 e2[30000000-45000000,h07,unp=0] e2.rate=0x1.2dbac929b3c2dp+21 e2.w=0x1.85b49bbd13106p+07 e2.qps=0x1.2ca6aaaaaaaabp+21 e2.p99=0x1.87p+08 e2.upj=0x0p+00 e3[45000000-60000000,h10,unp=0] e3.rate=0x1.13726dac987a7p+20 e3.w=0x1.b7094c180a624p+06 e3.qps=0x1.12a02aaaaaaabp+20 e3.p99=0x1.73p+09 e3.upj=0x0p+00 ph[h01,n=1,t=15000000] ph.h01.rate=0x1.13726dac987a7p+20 ph.h01.w=0x1.e0fcaf472d4edp+06 ph.h01.p99=0x1.c7p+06 ph.h01.parked=0x1p+01 ph[h04,n=1,t=15000000] ph.h04.rate=0x1.2dbac929b3c2ap+21 ph.h04.w=0x1.a35d4e4a82ec2p+07 ph.h04.p99=0x1.a1p+08 ph.h04.parked=0x1p+00 ph[h07,n=1,t=15000000] ph.h07.rate=0x1.2dbac929b3c2dp+21 ph.h07.w=0x1.85b49bbd13106p+07 ph.h07.p99=0x1.87p+08 ph.h07.parked=0x1p+00 ph[h10,n=1,t=15000000] ph.h10.rate=0x1.13726dac987a7p+20 ph.h10.w=0x1.b7094c180a624p+06 ph.h10.p99=0x1.73p+09 ph.h10.parked=0x1p+01 ctrl=\"\" changes=0 restarts=0",
	"thermal-storm":     "sched=ramp disp=spread epoch=10000000 total=60000000 unparks=0 energy=0x1.0010d0efb1038p+03 avgw=0x1.0abc2ef9adb8fp+07 qps=0x1.2545155555555p+19 qpw=0x1.197782cf2f921p+12 worstp99=0x1.55p+06 timeline=[0 0 0 0 0 0] e0[0-10000000,ramp,unp=0] e0.rate=0x1.b774p+17 e0.w=0x1.cd5e563c60744p+06 e0.qps=0x1.c4eep+17 e0.p99=0x1.55p+06 e0.upj=0x0p+00 e1[10000000-20000000,ramp,unp=0] e1.rate=0x1.6e36p+18 e1.w=0x1.e57b477cd29e7p+06 e1.qps=0x1.6f94p+18 e1.p99=0x1.dbp+05 e1.upj=0x0p+00 e2[20000000-30000000,ramp,unp=0] e2.rate=0x1.0059p+19 e2.w=0x1.0287e816874b1p+07 e2.qps=0x1.fd15p+18 e2.p99=0x1.b9p+05 e2.upj=0x0p+00 e3[30000000-40000000,ramp,unp=0] e3.rate=0x1.4997p+19 e3.w=0x1.1022f4a96df68p+07 e3.qps=0x1.46b58p+19 e3.p99=0x1.37p+06 e3.upj=0x0p+00 e4[40000000-50000000,ramp,unp=0] e4.rate=0x1.92d5p+19 e4.w=0x1.1c8cd84a9740cp+07 e4.qps=0x1.8f9cp+19 e4.p99=0x1.43p+06 e4.upj=0x0p+00 e5[50000000-60000000,ramp,unp=0] e5.rate=0x1.dc13p+19 e5.w=0x1.37c495f2ec4a2p+07 e5.qps=0x1.e1bdp+19 e5.p99=0x1.09p+06 e5.upj=0x0p+00 ph[ramp,n=6,t=60000000] ph.ramp.rate=0x1.24f8p+19 ph.ramp.w=0x1.0abc2ef9adb9p+07 ph.ramp.p99=0x1.55p+06 ph.ramp.parked=0x0p+00 ctrl=\"\" changes=0 restarts=0",
	"overload-degrade":  "sched=diurnal disp=consolidate epoch=10000000 total=60000000 unparks=0 energy=0x1.7c049a69d703bp+03 avgw=0x1.8bda20d8eaa3dp+07 qps=0x1.a9671ffffffffp+21 qpw=0x1.131c54a043fap+14 worstp99=0x1.33p+12 timeline=[0 0 0 0 0 0] e0[0-10000000,h01,unp=0] e0.rate=0x1.b83a553767652p+20 e0.w=0x1.4025f17a9c345p+07 e0.qps=0x1.b7038p+20 e0.p99=0x1.fdp+06 e0.upj=0x0p+00 e1[10000000-20000000,h03,unp=0] e1.rate=0x1.ab3fp+21 e1.w=0x1.b12a25ff8ba7cp+07 e1.qps=0x1.a71bap+21 e1.p99=0x1.71p+09 e1.upj=0x0p+00 e2[20000000-30000000,h05,unp=0] e2.rate=0x1.3d306ab22626bp+22 e2.w=0x1.b36857112c5b8p+07 e2.qps=0x1.11237p+22 e2.p99=0x1.ddp+10 e2.upj=0x0p+00 e3[30000000-40000000,h07,unp=0] e3.rate=0x1.3d306ab22626cp+22 e3.w=0x1.b3c01d071f545p+07 e3.qps=0x1.1129bp+22 e3.p99=0x1.e1p+11 e3.upj=0x0p+00 e4[40000000-50000000,h09,unp=0] e4.rate=0x1.ab3fp+21 e4.w=0x1.b3104b69d2bfcp+07 e4.qps=0x1.0f09fp+22 e4.p99=0x1.2dp+12 e4.upj=0x0p+00 e5[50000000-60000000,h11,unp=0] e5.rate=0x1.b83a553767652p+20 e5.w=0x1.3b93ee19398b5p+07 e5.qps=0x1.131f4p+21 e5.p99=0x1.33p+12 e5.upj=0x0p+00 ph[h01,n=1,t=10000000] ph.h01.rate=0x1.b83a553767651p+20 ph.h01.w=0x1.4025f17a9c345p+07 ph.h01.p99=0x1.fdp+06 ph.h01.parked=0x0p+00 ph[h03,n=1,t=10000000] ph.h03.rate=0x1.ab3fp+21 ph.h03.w=0x1.b12a25ff8ba7cp+07 ph.h03.p99=0x1.71p+09 ph.h03.parked=0x0p+00 ph[h05,n=1,t=10000000] ph.h05.rate=0x1.3d306ab22626bp+22 ph.h05.w=0x1.b36857112c5b8p+07 ph.h05.p99=0x1.ddp+10 ph.h05.parked=0x0p+00 ph[h07,n=1,t=10000000] ph.h07.rate=0x1.3d306ab22626cp+22 ph.h07.w=0x1.b3c01d071f545p+07 ph.h07.p99=0x1.e1p+11 ph.h07.parked=0x0p+00 ph[h09,n=1,t=10000000] ph.h09.rate=0x1.ab3fp+21 ph.h09.w=0x1.b3104b69d2bfcp+07 ph.h09.p99=0x1.2dp+12 ph.h09.parked=0x0p+00 ph[h11,n=1,t=10000000] ph.h11.rate=0x1.b83a553767651p+20 ph.h11.w=0x1.3b93ee19398b5p+07 ph.h11.p99=0x1.33p+12 ph.h11.parked=0x0p+00 ctrl=\"\" changes=0 restarts=0 ov=\"degrade\" sat=2 shed=0x0p+00 backlog=0x0p+00 e2.ov[sat=true,shed=0x0p+00,bl=0x0p+00] e3.ov[sat=true,shed=0x0p+00,bl=0x0p+00]",
	"overload-queue":    "sched=overload-queue disp=consolidate epoch=10000000 total=80000000 unparks=0 energy=0x1.883e65b2b5a75p+03 avgw=0x1.3270bf739deabp+07 qps=0x1.2118fcp+21 qpw=0x1.e3060d7c2ecabp+13 worstp99=0x1.2fp+10 timeline=[0 0 0 0 0 1 1 1] e0[0-10000000,slam,unp=0] e0.rate=0x1.e848p+22 e0.w=0x1.b357eb73449dcp+07 e0.qps=0x1.b0d64p+21 e0.p99=0x1.0fp+09 e0.upj=0x0p+00 e1[10000000-20000000,slam,unp=0] e1.rate=0x1.e848p+22 e1.w=0x1.8b192e32f67ebp+07 e1.qps=0x1.b4572p+21 e1.p99=0x1.5bp+09 e1.upj=0x0p+00 e2[20000000-30000000,trough,unp=0] e2.rate=0x1.e848p+18 e2.w=0x1.8c2a3f5e4501p+07 e2.qps=0x1.b5abcp+21 e2.p99=0x1.c1p+09 e2.upj=0x0p+00 e3[30000000-40000000,trough,unp=0] e3.rate=0x1.e848p+18 e3.w=0x1.89812dfa37b71p+07 e3.qps=0x1.b1246p+21 e3.p99=0x1.09p+08 e3.upj=0x0p+00 e4[40000000-50000000,trough,unp=0] e4.rate=0x1.e848p+18 e4.w=0x1.787218a164578p+07 e4.qps=0x1.84034p+21 e4.p99=0x1.57p+09 e4.upj=0x0p+00 e5[50000000-60000000,trough,unp=0] e5.rate=0x1.e848p+18 e5.w=0x1.362e3a8f69ee4p+06 e5.qps=0x1.fc66p+18 e5.p99=0x1.2fp+10 e5.upj=0x0p+00 e6[60000000-70000000,trough,unp=0] e6.rate=0x1.e848p+18 e6.w=0x1.2a4977c40b4bdp+06 e6.qps=0x1.e5bep+18 e6.p99=0x1.03p+06 e6.upj=0x0p+00 e7[70000000-80000000,trough,unp=0] e7.rate=0x1.e848p+18 e7.w=0x1.2d7705a63119ep+06 e7.qps=0x1.e415p+18 e7.p99=0x1.37p+06 e7.upj=0x0p+00 ph[slam,n=2,t=20000000] ph.slam.rate=0x1.e848p+22 ph.slam.w=0x1.9f388cd31d8e2p+07 ph.slam.p99=0x1.5bp+09 ph.slam.parked=0x0p+00 ph[trough,n=6,t=60000000] ph.trough.rate=0x1.e848p+18 ph.trough.w=0x1.0e2e25a91e09ap+07 ph.trough.p99=0x1.2fp+10 ph.trough.parked=0x1p-01 ctrl=\"predictive\" changes=0 restarts=0 e0.tgt=2 e1.tgt=2 e2.tgt=2 e3.tgt=2 e4.tgt=2 e5.tgt=2 e6.tgt=2 e7.tgt=2 ov=\"queue\" sat=4 shed=0x0p+00 backlog=0x0p+00 e0.ov[sat=true,shed=0x0p+00,bl=0x1.0dd5d7f8e633cp+22] e1.ov[sat=true,shed=0x0p+00,bl=0x1.0dd5d7f8e633cp+23] e2.ov[sat=true,shed=0x0p+00,bl=0x1.5fbe07eab29b4p+22] e3.ov[sat=true,shed=0x0p+00,bl=0x1.47a0bfc7319e1p+21]",
	"overload-shed":     "sched=spike disp=consolidate epoch=10000000 total=60000000 unparks=0 energy=0x1.334408815bd58p+03 avgw=0x1.401188dc14fe6p+07 qps=0x1.13c0b55555555p+21 qpw=0x1.b91c299494448p+13 worstp99=0x1.59p+09 timeline=[0 0 0 0 0 0] e0[0-10000000,pre,unp=0] e0.rate=0x1.6e36p+20 e0.w=0x1.20f735ca71bb5p+07 e0.qps=0x1.6c42p+20 e0.p99=0x1.fdp+06 e0.upj=0x0p+00 e1[10000000-20000000,pre,unp=0] e1.rate=0x1.6e36p+20 e1.w=0x1.03f27ab4545cep+07 e1.qps=0x1.6e1dp+20 e1.p99=0x1.39p+09 e1.upj=0x0p+00 e2[20000000-30000000,spike,unp=0] e2.rate=0x1.0059p+22 e2.w=0x1.bd28fb0294398p+07 e2.qps=0x1.caf2ap+21 e2.p99=0x1.dfp+08 e2.upj=0x0p+00 e3[30000000-40000000,spike,unp=0] e3.rate=0x1.0059p+22 e3.w=0x1.9660477c40ff6p+07 e3.qps=0x1.cf70ap+21 e3.p99=0x1.59p+09 e3.upj=0x0p+00 e4[40000000-50000000,post,unp=0] e4.rate=0x1.6e36p+20 e4.w=0x1.041e887adbdb8p+07 e4.qps=0x1.70cc8p+20 e4.p99=0x1.efp+07 e4.upj=0x0p+00 e5[50000000-60000000,post,unp=0] e5.rate=0x1.6e36p+20 e5.w=0x1.03d7b9b006c9ep+07 e5.qps=0x1.6d168p+20 e5.p99=0x1.4bp+09 e5.upj=0x0p+00 ph[pre,n=2,t=20000000] ph.pre.rate=0x1.6e36p+20 ph.pre.w=0x1.1274d83f630c1p+07 ph.pre.p99=0x1.39p+09 ph.pre.parked=0x0p+00 ph[spike,n=2,t=20000000] ph.spike.rate=0x1.0059p+22 ph.spike.w=0x1.a9c4a13f6a9c8p+07 ph.spike.p99=0x1.59p+09 ph.spike.parked=0x0p+00 ph[post,n=2,t=20000000] ph.post.rate=0x1.6e36p+20 ph.post.w=0x1.03fb21157152bp+07 ph.post.p99=0x1.4bp+09 ph.post.parked=0x0p+00 ctrl=\"reactive\" changes=0 restarts=0 e0.tgt=2 e1.tgt=2 e2.tgt=2 e3.tgt=2 e4.tgt=2 e5.tgt=2 ov=\"shed\" sat=2 shed=0x1.f09de0ad2acd7p+12 backlog=0x0p+00 e2.ov[sat=true,shed=0x1.f09de0ad2acd7p+11,bl=0x0p+00] e3.ov[sat=true,shed=0x1.f09de0ad2acd7p+11,bl=0x0p+00]",
}

func TestGoldenAdversarialScenarios(t *testing.T) {
	printMode := os.Getenv("GOLDEN_PRINT") != ""
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario files under testdata/scenarios")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		run, err := LoadScenarioFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := RunScenario(run)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := adversarialFingerprint(res)
		if printMode {
			fmt.Printf("\t%q: %q,\n", name, got)
			continue
		}
		want, ok := goldenAdversarialWant[name]
		if !ok {
			t.Fatalf("%s: no golden recorded", name)
		}
		if got != want {
			t.Errorf("%s: adversarial scenario drifted from golden\n got: %s\nwant: %s",
				name, diffFields(got, want), diffFields(want, got))
		}
	}
}
