package agilewatts

// TestGoldenPublicAPISurface pins the package's exported surface — every
// exported const, var, func, method, type and struct field, with types —
// against a checked-in manifest. The public API is a compatibility
// contract: adding to it is deliberate (regenerate the manifest),
// renaming or removing from it is a break this test makes loud. To
// regenerate after an intentional change:
//
//	GOLDEN_PRINT=1 go test -run TestGoldenPublicAPISurface .

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const apiSurfacePath = "testdata/api_surface.txt"

func TestGoldenPublicAPISurface(t *testing.T) {
	got := strings.Join(publicSurface(t), "\n") + "\n"
	if os.Getenv("GOLDEN_PRINT") != "" {
		if err := os.MkdirAll(filepath.Dir(apiSurfacePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiSurfacePath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", apiSurfacePath, strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile(apiSurfacePath)
	if err != nil {
		t.Fatalf("missing manifest (run GOLDEN_PRINT=1 to create it): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	// Report the differences by line so the failure names the drifted
	// declarations instead of dumping both manifests.
	gotSet := toSet(got)
	wantSet := toSet(want)
	for line := range gotSet {
		if !wantSet[line] {
			t.Errorf("exported surface gained: %s", line)
		}
	}
	for line := range wantSet {
		if !gotSet[line] {
			t.Errorf("exported surface lost: %s", line)
		}
	}
	if !t.Failed() {
		t.Error("exported surface reordered vs manifest (same lines, different order)")
	}
	t.Log("if the change is intentional: GOLDEN_PRINT=1 go test -run TestGoldenPublicAPISurface .")
}

func toSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		set[line] = true
	}
	return set
}

// publicSurface enumerates the exported declarations of the package in
// the current directory, one sorted line per name/field/method.
func publicSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["agilewatts"]
	if !ok {
		t.Fatalf("package agilewatts not found in . (got %v)", pkgs)
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				sig := strings.TrimPrefix(exprString(t, fset, d.Type), "func")
				if d.Recv != nil {
					recv := exprString(t, fset, d.Recv.List[0].Type)
					if !ast.IsExported(strings.TrimPrefix(recv, "*")) {
						continue
					}
					lines = append(lines, fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, sig))
				} else {
					lines = append(lines, fmt.Sprintf("func %s%s", d.Name.Name, sig))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						kind := "const"
						if d.Tok == token.VAR {
							kind = "var"
						}
						for _, n := range s.Names {
							if n.IsExported() {
								lines = append(lines, kind+" "+n.Name)
							}
						}
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						lines = append(lines, typeLines(t, fset, s)...)
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// typeLines renders one exported type: aliases with their target,
// structs with one line per exported field, everything else with its
// underlying type text.
func typeLines(t *testing.T, fset *token.FileSet, s *ast.TypeSpec) []string {
	name := s.Name.Name
	if s.Assign.IsValid() {
		return []string{fmt.Sprintf("type %s = %s", name, exprString(t, fset, s.Type))}
	}
	st, ok := s.Type.(*ast.StructType)
	if !ok {
		return []string{fmt.Sprintf("type %s %s", name, exprString(t, fset, s.Type))}
	}
	lines := []string{"type " + name + " struct"}
	for _, field := range st.Fields.List {
		typ := exprString(t, fset, field.Type)
		if len(field.Names) == 0 {
			// Embedded field: the name is the type's base name.
			base := strings.TrimPrefix(typ, "*")
			if i := strings.LastIndex(base, "."); i >= 0 {
				base = base[i+1:]
			}
			if ast.IsExported(base) {
				lines = append(lines, fmt.Sprintf("type %s.%s %s (embedded)", name, base, typ))
			}
			continue
		}
		for _, fn := range field.Names {
			if fn.IsExported() {
				lines = append(lines, fmt.Sprintf("type %s.%s %s", name, fn.Name, typ))
			}
		}
	}
	return lines
}

func exprString(t *testing.T, fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		t.Fatal(err)
	}
	// Collapse multi-line renderings (struct literals in signatures don't
	// occur here, but keep the manifest one line per entry regardless).
	return strings.Join(strings.Fields(buf.String()), " ")
}
