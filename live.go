package agilewatts

import (
	"repro/internal/cluster"
	"repro/internal/scenariofile"
	"repro/internal/server"
)

// LiveScenario is a warm fleet scenario stepped one epoch at a time
// under caller control — the interactive form of RunScenario. Step
// advances the controller-driven (or plan-driven) fleet one epoch and
// returns its telemetry; StepTarget forces the next epoch's active-node
// target (the what-if override); Fork copies the fleet into an
// independent alternate future; Snapshot/RestoreLiveScenario checkpoint
// it across processes. A LiveScenario stepped to completion returns the
// exact ScenarioResult RunScenario computes for the same description.
type LiveScenario = cluster.Live

// NewLiveScenario builds the steppable fleet for the run description.
// The description is mapped and validated exactly as RunScenario maps
// it, so any description RunScenario accepts steps identically here.
// Cold-epoch runs are rejected: stepping needs the warm path.
func NewLiveScenario(r ScenarioRun) (*LiveScenario, error) {
	cfg, err := scenarioConfig(r)
	if err != nil {
		return nil, err
	}
	return cluster.NewLive(cfg)
}

// RestoreLiveScenario rebuilds a fleet checkpoint taken by
// LiveScenario.Snapshot. The run description must be the one the
// checkpoint was taken under — the snapshot carries the fleet's
// identity and the restore verifies it, then replays the recorded
// epochs and fails loudly on any divergence from the captured state.
func RestoreLiveScenario(r ScenarioRun, data []byte) (*LiveScenario, error) {
	cfg, err := scenarioConfig(r)
	if err != nil {
		return nil, err
	}
	return cluster.RestoreLive(cfg, data)
}

// RestoreServiceInstance rebuilds a resumable single-server simulation
// from a ServiceInstance.Snapshot payload: strict decode, deterministic
// replay of the captured interval history, and verification that the
// replayed engine state matches the capture exactly.
func RestoreServiceInstance(data []byte) (*ServiceInstance, error) {
	return server.Restore(data)
}

// LoadScenarioFiles reads a scenario file holding one or more
// concatenated scenario documents and returns them all, in file order.
// Decoding is as strict as LoadScenarioFile's and duplicate scenario
// names are rejected. Map a chosen document onto a run description with
// ScenarioRunFromFile.
func LoadScenarioFiles(path string) ([]ScenarioFile, error) {
	return scenariofile.LoadAll(path)
}
