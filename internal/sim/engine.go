// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is modeled as int64 nanoseconds from simulation start. Events are
// ordered by (time, priority, insertion sequence), which makes runs fully
// deterministic for a given schedule: two events at the same instant fire
// in the order they were scheduled unless an explicit priority says
// otherwise.
//
// The engine is the substrate for every experiment in this repository:
// request arrivals, service completions, C-state transitions, snoop
// traffic and turbo-budget updates are all events on a single queue.
//
// Performance: the event queue is a concrete-typed 4-ary heap (no
// container/heap interface dispatch, shallower than a binary heap for the
// same size), and fired or canceled Event structs are recycled through a
// free list, so steady-state scheduling performs no allocation.
//
// Hot-path callers avoid closure events entirely: they register a fixed
// set of typed handlers once (RegisterKind) and schedule events as a
// (kind, payload) pair (ScheduleKind). Dispatch is then one index into
// the registration-order jump table — no per-event closure allocation
// and nothing for the garbage collector to trace per event. RunUntil
// additionally drains same-timestamp events as a batch, paying the clock
// bookkeeping once per instant instead of once per event.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a simulation timestamp in nanoseconds since simulation start.
type Time int64

// Common durations expressed in simulation ticks.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Duration converts a standard library duration to simulation ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time as microseconds, the natural unit of this paper.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

// Handler is a callback invoked when an event fires. The engine passes the
// current simulation time (equal to the event's scheduled time).
type Handler func(now Time)

// Kind identifies a typed event handler registered with RegisterKind.
// The zero Kind is reserved for closure events.
type Kind uint32

// KindHandler is a typed event callback: the fire time plus the two
// payload words given to ScheduleKind (a core index, a request slot, a
// generation counter — whatever the registrant packed).
type KindHandler func(now Time, a0, a1 uint64)

// Event is a scheduled callback. The zero value is invalid; events are
// created through Engine.Schedule and friends.
//
// An Event handle is live from the Schedule call until the event fires or
// is canceled; after that the engine may recycle the struct for a future
// Schedule call. Holding a handle past that point is fine, but calling
// Cancel on it is not (it could cancel an unrelated recycled event) —
// drop references once an event has fired, as the simulator does with its
// package-idle timer.
type Event struct {
	when     Time
	seq      uint64
	a0, a1   uint64 // typed-event payload words
	fn       Handler
	priority int32
	kind     Kind  // 0 = closure event dispatched through fn
	index    int32 // heap index; -1 when not queued
	canceled bool
}

// When reports the time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// before is the strict ordering used by the heap: (when, priority, seq).
func (a *Event) before(b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

// eventQueue is a 4-ary min-heap of events ordered by Event.before. A
// 4-ary layout halves the tree depth of a binary heap, trading slightly
// wider sift-down comparisons for fewer cache-missing levels — a net win
// for the short, hot queues this simulator runs (tens of events).
type eventQueue []*Event

const heapArity = 4

// push appends e and restores the heap property.
func (q *eventQueue) push(e *Event) {
	e.index = int32(len(*q))
	*q = append(*q, e)
	q.up(int(e.index))
}

// popMin removes and returns the minimum event. Instead of moving the
// last leaf to the root and sifting it all the way down (it almost
// always belongs near the bottom), the hole left by the root cascades
// down along minimum-child links — one 4-way comparison per level — and
// the displaced leaf sifts up from there, which is usually zero moves.
func (q *eventQueue) popMin() *Event {
	h := *q
	min := h[0]
	last := len(h) - 1
	x := h[last]
	h[last] = nil
	*q = h[:last]
	if last > 0 {
		(*q).cascade(x)
	}
	min.index = -1
	return min
}

// cascade fills the hole at the root with minimum children down to a
// leaf, places x in the final hole, and restores the heap upward.
func (q eventQueue) cascade(x *Event) {
	n := len(q)
	i := 0
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q[c].before(q[min]) {
				min = c
			}
		}
		q[i] = q[min]
		q[i].index = int32(i)
		i = min
	}
	q[i] = x
	x.index = int32(i)
	q.up(i)
}

// remove deletes the event at heap index i.
func (q *eventQueue) remove(i int) {
	h := *q
	last := len(h) - 1
	removed := h[i]
	if i != last {
		h[i] = h[last]
		h[i].index = int32(i)
	}
	h[last] = nil
	*q = h[:last]
	if i != last {
		if !q.up(i) {
			q.down(i)
		}
	}
	removed.index = -1
}

// up sifts the event at index i toward the root; it reports whether the
// event moved.
func (q eventQueue) up(i int) bool {
	moved := false
	e := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := q[parent]
		if !e.before(p) {
			break
		}
		q[i] = p
		p.index = int32(i)
		i = parent
		moved = true
	}
	q[i] = e
	e.index = int32(i)
	return moved
}

// down sifts the event at index i toward the leaves.
func (q eventQueue) down(i int) {
	n := len(q)
	e := q[i]
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q[c].before(q[min]) {
				min = c
			}
		}
		if !q[min].before(e) {
			break
		}
		q[i] = q[min]
		q[i].index = int32(i)
		i = min
	}
	q[i] = e
	e.index = int32(i)
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	// free recycles fired/canceled events so steady-state scheduling does
	// not allocate.
	free []*Event
	// table is the typed-event jump table; index 0 is reserved so a zero
	// kind always means "closure event".
	table []KindHandler
	// batch is the reusable same-timestamp drain buffer (see RunUntil).
	batch []*Event
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{table: make([]KindHandler, 1, 16)}
}

// RegisterKind adds fn to the engine's jump table and returns its Kind.
// Registration is meant to happen once at model construction: the point
// of typed events is that the per-fire cost is a table index instead of
// a freshly allocated closure. Registering a nil handler panics.
func (e *Engine) RegisterKind(fn KindHandler) Kind {
	if fn == nil {
		panic("sim: nil kind handler")
	}
	e.table = append(e.table, fn)
	return Kind(len(e.table) - 1)
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued. Canceled events
// are removed from the queue immediately, so they are never counted.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// ScheduleAt queues fn to run at absolute time when. Scheduling in the
// past panics: it always indicates a model bug, and silently clamping
// would corrupt residency accounting.
func (e *Engine) ScheduleAt(when Time, fn Handler) *Event {
	return e.ScheduleAtPriority(when, 0, fn)
}

// ScheduleAtPriority queues fn at an absolute time with an explicit
// priority. Lower priorities fire first among events at the same instant.
func (e *Engine) ScheduleAtPriority(when Time, priority int, fn Handler) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	ev := e.alloc()
	ev.when = when
	ev.priority = int32(priority)
	ev.fn = fn
	e.queue.push(ev)
	return ev
}

// Schedule queues fn to run after the given delay from now.
func (e *Engine) Schedule(delay Time, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleKindAt queues a typed event at absolute time when. The payload
// words a0/a1 are handed back to the registered handler verbatim.
func (e *Engine) ScheduleKindAt(when Time, k Kind, a0, a1 uint64) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, e.now))
	}
	if k == 0 || int(k) >= len(e.table) {
		panic(fmt.Sprintf("sim: unregistered event kind %d", k))
	}
	ev := e.alloc()
	ev.when = when
	ev.kind = k
	ev.a0, ev.a1 = a0, a1
	e.queue.push(ev)
	return ev
}

// ScheduleKind queues a typed event after the given delay from now.
func (e *Engine) ScheduleKind(delay Time, k Kind, a0, a1 uint64) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.ScheduleKindAt(e.now+delay, k, a0, a1)
}

// alloc returns a zeroed Event (recycled when possible) with the next
// sequence number and index -1, ready for the caller to fill and push.
func (e *Engine) alloc() *Event {
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{seq: e.seq, index: -1}
	} else {
		ev = &Event{seq: e.seq, index: -1}
	}
	return ev
}

// Cancel marks ev as canceled and removes it from the queue. Canceling an
// already-canceled event is a no-op. Cancel must not be called on an
// event that has already fired (see the Event lifetime note).
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		e.queue.remove(int(ev.index))
		e.recycle(ev)
	}
}

// recycle returns a dequeued event to the free list. The Handler
// reference is dropped so its captures can be collected; canceled stays
// set until reuse so stale Canceled() reads stay truthful.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Stop makes the current Run return after the in-flight handler finishes.
func (e *Engine) Stop() { e.stopped = true }

// fire dispatches one dequeued event: typed events jump through the
// table, closure events call fn. The Event is recycled before the
// handler runs, exactly as the pre-jump-table engine did.
func (e *Engine) fire(ev *Event) {
	e.fired++
	kind, a0, a1, fn := ev.kind, ev.a0, ev.a1, ev.fn
	e.recycle(ev)
	if kind != 0 {
		e.table[kind](e.now, a0, a1)
	} else {
		fn(e.now)
	}
}

// Step executes the single next event, advancing the clock to its time.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.popMin()
	if ev.when < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.when
	e.fire(ev)
	return true
}

// drainBatch executes every event scheduled for the next pending
// instant. A lone event at the instant — the overwhelmingly common case
// — takes a short path; otherwise the same-timestamp run is popped into
// a reusable buffer up front: one clock update and one backwards-check
// cover the whole run, and the heap repairs happen before handlers push
// replacement events on top. Events the run's own handlers schedule for
// the same instant are merged back in priority/sequence order, so the
// firing order is identical to popping one event at a time.
func (e *Engine) drainBatch() {
	q := &e.queue
	ev := q.popMin()
	if ev.when < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.when
	t := ev.when
	if len(*q) == 0 || (*q)[0].when != t {
		e.fire(ev)
		return
	}
	batch := append(e.batch[:0], ev)
	for len(*q) > 0 && (*q)[0].when == t {
		batch = append(batch, q.popMin())
	}
	for i := 0; i < len(batch); i++ {
		ev := batch[i]
		if ev.canceled {
			// Canceled while waiting in the batch (index -1, so Cancel
			// could not remove it from the queue itself).
			e.recycle(ev)
			continue
		}
		// A handler fired earlier in this batch may have scheduled a
		// new event at this instant that orders before ev.
		for len(*q) > 0 && (*q)[0].when == t && (*q)[0].before(ev) {
			e.fire(q.popMin())
			if e.stopped {
				break
			}
		}
		if e.stopped {
			e.requeue(batch[i:])
			break
		}
		if ev.canceled {
			// A merged event fired just above may have canceled ev.
			e.recycle(ev)
			continue
		}
		e.fire(ev)
		if e.stopped {
			e.requeue(batch[i+1:])
			break
		}
	}
	e.batch = batch[:0]
}

// requeue restores unfired batch events to the queue (after Stop). Their
// original sequence numbers put them back in exactly the order they
// would have fired.
func (e *Engine) requeue(rest []*Event) {
	for _, ev := range rest {
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.queue.push(ev)
	}
}

// RunUntil executes events until the queue is exhausted, Stop is called,
// or the next event lies strictly beyond the horizon. The clock is left at
// min(horizon, time of last executed event); callers that want the clock
// parked exactly at the horizon should call AdvanceTo afterwards.
func (e *Engine) RunUntil(horizon Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].when > horizon {
			return
		}
		e.drainBatch()
	}
}

// RunTo executes every event scheduled at or before when, then parks the
// clock exactly at when — without draining events scheduled beyond the
// bound. It is the pause point of a resumable simulation: pending future
// events (arrival chains, background timers, in-flight completions)
// survive in the queue, and a later RunTo continues event-for-event as
// if the run had never paused. Calling RunTo with when in the past
// panics (via AdvanceTo).
func (e *Engine) RunTo(when Time) {
	e.RunUntil(when)
	e.AdvanceTo(when)
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 {
		e.drainBatch()
	}
}

// AdvanceTo moves the clock forward to when without executing events.
// It panics if a pending event is scheduled before when, or when is in
// the past.
func (e *Engine) AdvanceTo(when Time) {
	if when < e.now {
		panic(fmt.Sprintf("sim: advance to %v before now %v", when, e.now))
	}
	if len(e.queue) > 0 && e.queue[0].when < when {
		panic("sim: AdvanceTo would skip a pending event")
	}
	e.now = when
}
