// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is modeled as int64 nanoseconds from simulation start. Events are
// ordered by (time, priority, insertion sequence), which makes runs fully
// deterministic for a given schedule: two events at the same instant fire
// in the order they were scheduled unless an explicit priority says
// otherwise.
//
// The engine is the substrate for every experiment in this repository:
// request arrivals, service completions, C-state transitions, snoop
// traffic and turbo-budget updates are all events on a single queue.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a simulation timestamp in nanoseconds since simulation start.
type Time int64

// Common durations expressed in simulation ticks.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Duration converts a standard library duration to simulation ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time as microseconds, the natural unit of this paper.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

// Handler is a callback invoked when an event fires. The engine passes the
// current simulation time (equal to the event's scheduled time).
type Handler func(now Time)

// Event is a scheduled callback. The zero value is invalid; events are
// created through Engine.Schedule and friends.
type Event struct {
	when     Time
	priority int
	seq      uint64
	fn       Handler
	index    int // heap index; -1 when not queued
	canceled bool
}

// When reports the time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.when != b.when {
		return a.when < b.when
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued (including
// canceled events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// ScheduleAt queues fn to run at absolute time when. Scheduling in the
// past panics: it always indicates a model bug, and silently clamping
// would corrupt residency accounting.
func (e *Engine) ScheduleAt(when Time, fn Handler) *Event {
	return e.ScheduleAtPriority(when, 0, fn)
}

// ScheduleAtPriority queues fn at an absolute time with an explicit
// priority. Lower priorities fire first among events at the same instant.
func (e *Engine) ScheduleAtPriority(when Time, priority int, fn Handler) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	e.seq++
	ev := &Event{when: when, priority: priority, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// Schedule queues fn to run after the given delay from now.
func (e *Engine) Schedule(delay Time, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// Cancel marks ev as canceled. A canceled event is skipped when popped.
// Canceling an already-fired or already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
	}
}

// Stop makes the current Run return after the in-flight handler finishes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to its time.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.when < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.when
		e.fired++
		ev.fn(e.now)
		return true
	}
	return false
}

// RunUntil executes events until the queue is exhausted, Stop is called,
// or the next event lies strictly beyond the horizon. The clock is left at
// min(horizon, time of last executed event); callers that want the clock
// parked exactly at the horizon should call AdvanceTo afterwards.
func (e *Engine) RunUntil(horizon Time) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next.when > horizon {
			return
		}
		e.Step()
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// AdvanceTo moves the clock forward to when without executing events.
// It panics if a pending event is scheduled before when, or when is in
// the past.
func (e *Engine) AdvanceTo(when Time) {
	if when < e.now {
		panic(fmt.Sprintf("sim: advance to %v before now %v", when, e.now))
	}
	if next, ok := e.peek(); ok && next.when < when {
		panic("sim: AdvanceTo would skip a pending event")
	}
	e.now = when
}

func (e *Engine) peek() (*Event, bool) {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev, true
		}
		heap.Pop(&e.queue)
	}
	return nil, false
}
