// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is modeled as int64 nanoseconds from simulation start. Events are
// ordered by (time, priority, insertion sequence), which makes runs fully
// deterministic for a given schedule: two events at the same instant fire
// in the order they were scheduled unless an explicit priority says
// otherwise.
//
// The engine is the substrate for every experiment in this repository:
// request arrivals, service completions, C-state transitions, snoop
// traffic and turbo-budget updates are all events on a single queue.
//
// Performance: the event queue is a concrete-typed 4-ary heap (no
// container/heap interface dispatch, shallower than a binary heap for the
// same size), and fired or canceled Event structs are recycled through a
// free list, so steady-state scheduling performs no allocation.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a simulation timestamp in nanoseconds since simulation start.
type Time int64

// Common durations expressed in simulation ticks.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Duration converts a standard library duration to simulation ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time as microseconds, the natural unit of this paper.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

// Handler is a callback invoked when an event fires. The engine passes the
// current simulation time (equal to the event's scheduled time).
type Handler func(now Time)

// Event is a scheduled callback. The zero value is invalid; events are
// created through Engine.Schedule and friends.
//
// An Event handle is live from the Schedule call until the event fires or
// is canceled; after that the engine may recycle the struct for a future
// Schedule call. Holding a handle past that point is fine, but calling
// Cancel on it is not (it could cancel an unrelated recycled event) —
// drop references once an event has fired, as the simulator does with its
// package-idle timer.
type Event struct {
	when     Time
	priority int
	seq      uint64
	fn       Handler
	index    int // heap index; -1 when not queued
	canceled bool
}

// When reports the time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// before is the strict ordering used by the heap: (when, priority, seq).
func (a *Event) before(b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

// eventQueue is a 4-ary min-heap of events ordered by Event.before. A
// 4-ary layout halves the tree depth of a binary heap, trading slightly
// wider sift-down comparisons for fewer cache-missing levels — a net win
// for the short, hot queues this simulator runs (tens of events).
type eventQueue []*Event

const heapArity = 4

// push appends e and restores the heap property.
func (q *eventQueue) push(e *Event) {
	e.index = len(*q)
	*q = append(*q, e)
	q.up(e.index)
}

// popMin removes and returns the minimum event.
func (q *eventQueue) popMin() *Event {
	h := *q
	min := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[0].index = 0
	h[last] = nil
	*q = h[:last]
	if last > 0 {
		q.down(0)
	}
	min.index = -1
	return min
}

// remove deletes the event at heap index i.
func (q *eventQueue) remove(i int) {
	h := *q
	last := len(h) - 1
	removed := h[i]
	if i != last {
		h[i] = h[last]
		h[i].index = i
	}
	h[last] = nil
	*q = h[:last]
	if i != last {
		if !q.up(i) {
			q.down(i)
		}
	}
	removed.index = -1
}

// up sifts the event at index i toward the root; it reports whether the
// event moved.
func (q eventQueue) up(i int) bool {
	moved := false
	e := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := q[parent]
		if !e.before(p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
		moved = true
	}
	q[i] = e
	e.index = i
	return moved
}

// down sifts the event at index i toward the leaves.
func (q eventQueue) down(i int) {
	n := len(q)
	e := q[i]
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q[c].before(q[min]) {
				min = c
			}
		}
		if !q[min].before(e) {
			break
		}
		q[i] = q[min]
		q[i].index = i
		i = min
	}
	q[i] = e
	e.index = i
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	// free recycles fired/canceled events so steady-state scheduling does
	// not allocate.
	free []*Event
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued. Canceled events
// are removed from the queue immediately, so they are never counted.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// ScheduleAt queues fn to run at absolute time when. Scheduling in the
// past panics: it always indicates a model bug, and silently clamping
// would corrupt residency accounting.
func (e *Engine) ScheduleAt(when Time, fn Handler) *Event {
	return e.ScheduleAtPriority(when, 0, fn)
}

// ScheduleAtPriority queues fn at an absolute time with an explicit
// priority. Lower priorities fire first among events at the same instant.
func (e *Engine) ScheduleAtPriority(when Time, priority int, fn Handler) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{when: when, priority: priority, seq: e.seq, fn: fn, index: -1}
	} else {
		ev = &Event{when: when, priority: priority, seq: e.seq, fn: fn, index: -1}
	}
	e.queue.push(ev)
	return ev
}

// Schedule queues fn to run after the given delay from now.
func (e *Engine) Schedule(delay Time, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// Cancel marks ev as canceled and removes it from the queue. Canceling an
// already-canceled event is a no-op. Cancel must not be called on an
// event that has already fired (see the Event lifetime note).
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		e.queue.remove(ev.index)
		e.recycle(ev)
	}
}

// recycle returns a dequeued event to the free list. The Handler
// reference is dropped so its captures can be collected; canceled stays
// set until reuse so stale Canceled() reads stay truthful.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Stop makes the current Run return after the in-flight handler finishes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to its time.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.popMin()
	if ev.when < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.when
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn(e.now)
	return true
}

// RunUntil executes events until the queue is exhausted, Stop is called,
// or the next event lies strictly beyond the horizon. The clock is left at
// min(horizon, time of last executed event); callers that want the clock
// parked exactly at the horizon should call AdvanceTo afterwards.
func (e *Engine) RunUntil(horizon Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].when > horizon {
			return
		}
		e.Step()
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// AdvanceTo moves the clock forward to when without executing events.
// It panics if a pending event is scheduled before when, or when is in
// the past.
func (e *Engine) AdvanceTo(when Time) {
	if when < e.now {
		panic(fmt.Sprintf("sim: advance to %v before now %v", when, e.now))
	}
	if len(e.queue) > 0 && e.queue[0].when < when {
		panic("sim: AdvanceTo would skip a pending event")
	}
	e.now = when
}
