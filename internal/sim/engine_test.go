package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(Time) { order = append(order, 3) })
	e.Schedule(10, func(Time) { order = append(order, 1) })
	e.Schedule(20, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	e := NewEngine()
	var order []string
	e.ScheduleAtPriority(5, 1, func(Time) { order = append(order, "low") })
	e.ScheduleAtPriority(5, 0, func(Time) { order = append(order, "high") })
	e.Run()
	if order[0] != "high" || order[1] != "low" {
		t.Fatalf("priority not honored: %v", order)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func(Time) { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Double cancel must be a no-op.
	e.Cancel(ev)
}

func TestCancelFromHandler(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Event
	e.Schedule(5, func(Time) { e.Cancel(victim) })
	victim = e.Schedule(10, func(Time) { fired = true })
	e.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.RunUntil(MaxTime)
	if len(fired) != 4 {
		t.Fatalf("fired %d events after full run, want 4", len(fired))
	}
}

func TestScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	count := 0
	var step Handler
	step = func(now Time) {
		count++
		if count < 5 {
			e.Schedule(10, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	if count != 5 {
		t.Fatalf("chained handler ran %d times, want 5", count)
	}
	if e.Now() != 40 {
		t.Fatalf("clock = %v, want 40", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(5, func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.Schedule(-1, func(Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
	e.Schedule(10, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo past a pending event did not panic")
		}
	}()
	e.AdvanceTo(200)
}

func TestDurationConversion(t *testing.T) {
	if Duration(time.Microsecond) != Microsecond {
		t.Fatal("Duration(1us) != Microsecond")
	}
	if got := (133 * Microsecond).Micros(); got != 133 {
		t.Fatalf("Micros = %v, want 133", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds = %v, want 2", got)
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and all of them fire.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d), func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fired() counts executed events exactly, and canceled events
// are never executed.
func TestPropertyCancelHalf(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var events []*Event
		ran := 0
		for _, d := range delays {
			events = append(events, e.Schedule(Time(d), func(Time) { ran++ }))
		}
		canceled := 0
		for i, ev := range events {
			if i%2 == 0 {
				e.Cancel(ev)
				canceled++
			}
		}
		e.Run()
		return ran == len(delays)-canceled && e.Fired() == uint64(ran)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRunToPausesWithoutDraining pins the resumable-simulation contract:
// RunTo executes exactly the events inside the bound, parks the clock at
// the bound, leaves future events queued, and a later RunTo resumes
// event-for-event — including an event that straddles the pause point.
func TestRunToPausesWithoutDraining(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 50, 100, 150, 300} {
		at := at
		e.ScheduleAt(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunTo(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want parked at 100", e.Now())
	}
	if want := []Time{10, 50, 100}; len(fired) != 3 || fired[0] != want[0] || fired[1] != want[1] || fired[2] != want[2] {
		t.Fatalf("fired %v inside bound, want %v", fired, want)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d after pause, want 2 undrained events", e.Pending())
	}
	// Resume: schedule more work relative to the paused clock, then run on.
	e.Schedule(75, func(now Time) { fired = append(fired, now) }) // at 175
	e.RunTo(400)
	want := []Time{10, 50, 100, 150, 175, 300}
	if len(fired) != len(want) {
		t.Fatalf("fired %v after resume, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v after resume, want %v", fired, want)
		}
	}
	if e.Now() != 400 {
		t.Errorf("clock = %v after resume, want 400", e.Now())
	}
}

// TestRunToMatchesSingleRun pins that two RunTo calls are equivalent to
// one spanning call: same events fired, same final clock.
func TestRunToMatchesSingleRun(t *testing.T) {
	build := func() (*Engine, *int) {
		e := NewEngine()
		n := new(int)
		var reschedule Handler
		reschedule = func(now Time) {
			*n++
			if now < 1000 {
				e.Schedule(7, reschedule)
			}
		}
		e.ScheduleAt(3, reschedule)
		return e, n
	}
	a, na := build()
	a.RunTo(500)
	a.RunTo(1200)
	b, nb := build()
	b.RunTo(1200)
	if *na != *nb {
		t.Errorf("split RunTo fired %d events, single RunTo fired %d", *na, *nb)
	}
	if a.Now() != b.Now() || a.Fired() != b.Fired() {
		t.Errorf("split (now=%v fired=%d) != single (now=%v fired=%d)",
			a.Now(), a.Fired(), b.Now(), b.Fired())
	}
}

// TestRunToPastPanics pins that rewinding the clock is rejected.
func TestRunToPastPanics(t *testing.T) {
	e := NewEngine()
	e.RunTo(100)
	defer func() {
		if recover() == nil {
			t.Error("RunTo into the past did not panic")
		}
	}()
	e.RunTo(50)
}
