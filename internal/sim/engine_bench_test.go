package sim

import "testing"

// BenchmarkEngineChurn measures raw event throughput: schedule+fire one
// event per iteration through a rolling 64-deep queue.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	var fn Handler
	fn = func(now Time) {
		e.Schedule(64, fn)
	}
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineChurnDeep is the same churn through a 1024-deep queue,
// where heap depth (and therefore the 4-ary layout) dominates.
func BenchmarkEngineChurnDeep(b *testing.B) {
	e := NewEngine()
	var fn Handler
	fn = func(now Time) {
		e.Schedule(1024, fn)
	}
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(i), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineScheduleCancel measures schedule+cancel pairs.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	noop := func(Time) {}
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(1000, noop)
		e.Cancel(ev)
	}
}
