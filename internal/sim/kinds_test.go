package sim

import "testing"

// --- Typed event kinds ------------------------------------------------------

func TestKindDispatch(t *testing.T) {
	e := NewEngine()
	var got []uint64
	k := e.RegisterKind(func(now Time, a0, a1 uint64) {
		got = append(got, a0, a1)
	})
	e.ScheduleKind(5, k, 7, 9)
	e.ScheduleKindAt(10, k, 1, 2)
	e.Run()
	if len(got) != 4 || got[0] != 7 || got[1] != 9 || got[2] != 1 || got[3] != 2 {
		t.Fatalf("kind payloads = %v", got)
	}
	if e.Fired() != 2 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

func TestKindAndClosureInterleaveInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	k := e.RegisterKind(func(Time, uint64, uint64) { order = append(order, "kind") })
	e.ScheduleKind(5, k, 0, 0)
	e.Schedule(5, func(Time) { order = append(order, "closure") })
	e.ScheduleKind(5, k, 0, 0)
	e.Run()
	want := []string{"kind", "closure", "kind"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUnregisteredKindPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling an unregistered kind did not panic")
		}
	}()
	e.ScheduleKind(1, Kind(3), 0, 0)
}

func TestCancelKindEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	k := e.RegisterKind(func(Time, uint64, uint64) { fired = true })
	ev := e.ScheduleKind(5, k, 0, 0)
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled kind event fired")
	}
}

// --- Same-timestamp batch drain ---------------------------------------------

// A handler that schedules another event at the same instant must see it
// fire after the already queued same-instant events (sequence order), and
// a lower-priority event scheduled mid-batch must jump ahead.
func TestBatchMergePreservesTotalOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(10, func(now Time) {
		order = append(order, "a")
		e.ScheduleAt(10, func(Time) { order = append(order, "late") })
		e.ScheduleAtPriority(10, -1, func(Time) { order = append(order, "urgent") })
	})
	e.Schedule(10, func(Time) { order = append(order, "b") })
	e.Schedule(10, func(Time) { order = append(order, "c") })
	e.Run()
	want := []string{"a", "urgent", "b", "c", "late"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Canceling a same-instant event from an earlier handler in the batch
// must suppress it even though it was already dequeued.
func TestCancelWithinBatch(t *testing.T) {
	e := NewEngine()
	var victim *Event
	fired := false
	e.Schedule(10, func(Time) { e.Cancel(victim) })
	victim = e.Schedule(10, func(Time) { fired = true })
	e.Run()
	if fired {
		t.Fatal("event canceled within its own batch still fired")
	}
	if e.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", e.Fired())
	}
}

// An event canceled by a MERGED same-instant event (scheduled mid-batch
// with a priority that jumps ahead of the victim) must not fire either:
// the cancel flag has to be re-checked after the merge loop runs.
func TestCancelFromMergedEvent(t *testing.T) {
	e := NewEngine()
	var victim *Event
	fired := false
	e.Schedule(10, func(Time) {
		// Urgent same-instant event that fires before the victim and
		// cancels it.
		e.ScheduleAtPriority(10, -1, func(Time) { e.Cancel(victim) })
	})
	victim = e.Schedule(10, func(Time) { fired = true })
	e.Run()
	if fired {
		t.Fatal("event canceled by a merged same-instant event still fired")
	}
	if e.Fired() != 2 {
		t.Fatalf("fired = %d, want 2", e.Fired())
	}
}

// Stop mid-batch must leave the unfired remainder queued, in order.
func TestStopWithinBatch(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(10, func(Time) {
			order = append(order, i)
			if i == 1 {
				e.Stop()
			}
		})
	}
	e.Run()
	if len(order) != 2 {
		t.Fatalf("fired %v before stop, want [0 1]", order)
	}
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
	e.Run()
	if len(order) != 5 {
		t.Fatalf("resume fired %v", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("resumed order = %v", order)
		}
	}
}

// --- Allocation regression --------------------------------------------------

// Steady-state event churn must not allocate: the free list recycles
// Event structs and typed kinds avoid closure captures. A regression
// here silently reintroduces GC pressure on every simulated event.
func TestEngineChurnZeroAllocs(t *testing.T) {
	e := NewEngine()
	var k Kind
	k = e.RegisterKind(func(now Time, a0, a1 uint64) {
		e.ScheduleKind(64, k, a0, a1)
	})
	for i := 0; i < 64; i++ {
		e.ScheduleKind(Time(i), k, 1, 2)
	}
	// Warm the queue and free list.
	for i := 0; i < 256; i++ {
		e.Step()
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("event churn allocates %v allocs/op, want 0", avg)
	}
}

// Schedule+cancel pairs must also run allocation-free once warm.
func TestScheduleCancelZeroAllocs(t *testing.T) {
	e := NewEngine()
	noop := func(Time) {}
	for i := 0; i < 64; i++ {
		e.Cancel(e.Schedule(1000, noop))
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.Cancel(e.Schedule(1000, noop))
	})
	if avg != 0 {
		t.Fatalf("schedule+cancel allocates %v allocs/op, want 0", avg)
	}
}
