// Package turbo models the frequency side of the evaluation: the P-state
// operating points of the Xeon Silver 4114 (base 2.2 GHz, minimum
// 0.8 GHz, Turbo Boost 3.0 GHz), the workload frequency-scalability
// performance model (Sec. 6.2 footnote 8, Fig. 8(d)), and the
// thermal-capacitance mechanism by which lower idle power buys longer
// Turbo residency (Sec. 7.3).
package turbo

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// FreqPlan holds the platform's frequency points in Hz.
type FreqPlan struct {
	BaseHz  float64 // P1
	MinHz   float64 // Pn
	TurboHz float64 // maximum Turbo Boost
}

// Xeon4114 returns the paper's evaluation platform frequencies.
func Xeon4114() FreqPlan {
	return FreqPlan{BaseHz: 2.2e9, MinHz: 0.8e9, TurboHz: 3.0e9}
}

// Validate checks ordering.
func (f FreqPlan) Validate() error {
	if !(f.MinHz > 0 && f.MinHz <= f.BaseHz && f.BaseHz <= f.TurboHz) {
		return fmt.Errorf("turbo: invalid frequency plan %+v", f)
	}
	return nil
}

// Speedup returns the performance ratio of running at freq f vs the
// reference fRef for a workload with the given frequency scalability s:
// perf(f)/perf(fRef) = 1 + s*(f/fRef - 1). s = 1 means fully
// frequency-bound; s = 0 means frequency-insensitive (e.g. memory- or
// network-bound phases).
func Speedup(s, fRef, f float64) float64 {
	if fRef <= 0 {
		return 1
	}
	sp := 1 + s*(f/fRef-1)
	if sp <= 0 {
		return 1e-6
	}
	return sp
}

// ScaleServiceTime converts a service demand calibrated at fRef into the
// duration at frequency f under scalability s.
func ScaleServiceTime(d sim.Time, s, fRef, f float64) sim.Time {
	return sim.Time(float64(d) / Speedup(s, fRef, f))
}

// ScalabilityPercent computes the Fig. 8(d) metric: the relative
// performance gain when moving from f1 to f2, as a percentage of the
// relative frequency gain — i.e. the measured scalability.
func ScalabilityPercent(perf1, perf2, f1, f2 float64) float64 {
	if perf1 <= 0 || f1 <= 0 || f2 == f1 {
		return 0
	}
	return ((perf2 - perf1) / perf1) / ((f2 - f1) / f1) * 100
}

// Budget models the package thermal capacitance that funds Turbo Boost:
// when package power sits below the sustained (TDP-like) limit, thermal
// headroom accumulates; Turbo drains it. This captures the Sec. 7.3
// observation that a low-power idle state (C1E or C6A/C6AE) "recharges"
// Turbo, while parking idle cores in high-power C1 starves it.
type Budget struct {
	// SustainedW is the package power sustainable indefinitely.
	SustainedW float64
	// CapacityJ is the maximum stored headroom (thermal capacitance).
	CapacityJ float64
	// ChargeEfficiency scales how fast under-TDP operation converts to
	// usable headroom.
	ChargeEfficiency float64

	storedJ float64
	lastNS  int64
}

// NewBudget returns a budget for the paper's 2-socket 10-core platform,
// starting fully charged at time 0.
func NewBudget(sustainedW, capacityJ float64) *Budget {
	return &Budget{
		SustainedW:       sustainedW,
		CapacityJ:        capacityJ,
		ChargeEfficiency: 1.0,
		storedJ:          capacityJ,
	}
}

// Update advances the integrator to now (ns) with the package power that
// was drawn since the last update.
func (b *Budget) Update(nowNS int64, packageW float64) {
	if nowNS <= b.lastNS {
		if nowNS == b.lastNS {
			// Power-change chains within one event instant integrate
			// nothing; skip the FP work.
			return
		}
		panic("turbo: budget time went backwards")
	}
	dt := float64(nowNS-b.lastNS) / 1e9
	delta := (b.SustainedW - packageW) * dt
	if delta > 0 {
		delta *= b.ChargeEfficiency
	}
	b.storedJ += delta
	if b.storedJ > b.CapacityJ {
		b.storedJ = b.CapacityJ
	}
	if b.storedJ < 0 {
		b.storedJ = 0
	}
	b.lastNS = nowNS
}

// Stored returns the current headroom in joules.
func (b *Budget) Stored() float64 { return b.storedJ }

// BoostAllowed reports whether Turbo frequency may be used right now.
func (b *Budget) BoostAllowed() bool { return b.storedJ > 0 }

// FillFraction returns stored/capacity in [0,1].
func (b *Budget) FillFraction() float64 {
	if b.CapacityJ <= 0 {
		return 0
	}
	return b.storedJ / b.CapacityJ
}

// CorePower interpolates per-core C0 power between the Pn and Turbo
// frequency points. Calibrated so that P(0.8 GHz) = 1 W and
// P(2.2 GHz) = 4 W (Table 1); power grows superlinearly with frequency
// because voltage rises alongside (P ~ f*V^2).
type CorePower struct {
	Plan FreqPlan
	// PnW and P1W anchor the curve (Table 1 C0 rows).
	PnW, P1W float64
	// Exponent of the f^k interpolation (empirically ~1.37 matches the
	// two anchors on SKX; Turbo extrapolates on the same curve).
	Exponent float64
}

// NewCorePower returns the Table 1-calibrated active power curve.
func NewCorePower(plan FreqPlan) *CorePower {
	// Solve 4 = 1 * (2.2/0.8)^k  =>  k = ln(4)/ln(2.75) ≈ 1.37.
	return &CorePower{Plan: plan, PnW: 1.0, P1W: 4.0, Exponent: 1.3708}
}

// AtFreq returns per-core C0 power at frequency f (Hz).
func (cp *CorePower) AtFreq(f float64) float64 {
	if f <= 0 {
		return 0
	}
	ratio := f / cp.Plan.MinHz
	return cp.PnW * math.Pow(ratio, cp.Exponent)
}
