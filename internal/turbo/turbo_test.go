package turbo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFreqPlanValidate(t *testing.T) {
	if err := Xeon4114().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := FreqPlan{BaseHz: 1, MinHz: 2, TurboHz: 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("min > base passed validation")
	}
}

func TestSpeedup(t *testing.T) {
	// Fully scalable workload doubles with frequency.
	if s := Speedup(1.0, 1e9, 2e9); math.Abs(s-2) > 1e-12 {
		t.Fatalf("s=1 speedup = %v", s)
	}
	// Insensitive workload does not change.
	if s := Speedup(0, 1e9, 2e9); s != 1 {
		t.Fatalf("s=0 speedup = %v", s)
	}
	// Memcached-like s=0.45 from 2.0 to 2.2 GHz: +4.5%.
	sp := Speedup(0.45, 2.0e9, 2.2e9)
	if math.Abs(sp-1.045) > 1e-9 {
		t.Fatalf("speedup = %v, want 1.045", sp)
	}
	if Speedup(1, 0, 1e9) != 1 {
		t.Fatal("zero reference must give 1")
	}
}

func TestScaleServiceTime(t *testing.T) {
	d := 10 * sim.Microsecond
	// Fully scalable at half frequency takes twice as long.
	if got := ScaleServiceTime(d, 1, 2e9, 1e9); got != 20*sim.Microsecond {
		t.Fatalf("scaled = %v", got)
	}
	// Turbo shortens.
	if got := ScaleServiceTime(d, 0.45, 2.2e9, 3.0e9); got >= d {
		t.Fatal("turbo did not shorten service")
	}
}

func TestScalabilityPercent(t *testing.T) {
	// perf +4.5% for freq +10% => scalability 45%.
	got := ScalabilityPercent(100, 104.5, 2.0e9, 2.2e9)
	if math.Abs(got-45) > 0.01 {
		t.Fatalf("scalability = %v, want 45", got)
	}
	if ScalabilityPercent(0, 1, 1, 2) != 0 || ScalabilityPercent(1, 2, 1, 1) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestBudgetChargeAndDrain(t *testing.T) {
	b := NewBudget(100, 50)
	if !b.BoostAllowed() || b.FillFraction() != 1 {
		t.Fatal("budget must start full")
	}
	// 1s at 150W (50W over): drains 50J -> empty.
	b.Update(0, 150)
	b.Update(1e9, 150)
	if b.Stored() > 1e-9 {
		t.Fatalf("stored = %v, want 0", b.Stored())
	}
	if b.BoostAllowed() {
		t.Fatal("boost allowed with empty budget")
	}
	// 0.5s at 60W (40W under): recharges 20J.
	b.Update(1.5e9, 60)
	if math.Abs(b.Stored()-20) > 1e-9 {
		t.Fatalf("stored = %v, want 20", b.Stored())
	}
	// Never exceeds capacity.
	b.Update(100e9, 0)
	if b.Stored() != 50 {
		t.Fatalf("stored = %v, want capped at 50", b.Stored())
	}
}

func TestBudgetLowIdlePowerChargesFaster(t *testing.T) {
	// The Sec. 7.3 mechanism: idling at C6A power leaves more headroom
	// than idling at C1 power.
	hi := NewBudget(100, 1000)
	lo := NewBudget(100, 1000)
	hi.Update(0, 150)
	lo.Update(0, 150)
	hi.Update(1e9, 150) // both drained some
	lo.Update(1e9, 150)
	hi.Update(2e9, 90) // idle at C1-ish power
	lo.Update(2e9, 60) // idle at C6A-ish power
	hi.Update(3e9, 90)
	lo.Update(3e9, 60)
	if lo.Stored() <= hi.Stored() {
		t.Fatalf("lower idle power must recharge more: lo=%v hi=%v", lo.Stored(), hi.Stored())
	}
}

func TestBudgetBackwardsPanics(t *testing.T) {
	b := NewBudget(10, 10)
	b.Update(100, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards update did not panic")
		}
	}()
	b.Update(50, 5)
}

func TestCorePowerAnchors(t *testing.T) {
	cp := NewCorePower(Xeon4114())
	// Table 1 anchors: 1W at Pn, ~4W at P1.
	if p := cp.AtFreq(0.8e9); math.Abs(p-1.0) > 0.01 {
		t.Fatalf("P(0.8GHz) = %v, want 1", p)
	}
	if p := cp.AtFreq(2.2e9); math.Abs(p-4.0) > 0.05 {
		t.Fatalf("P(2.2GHz) = %v, want ~4", p)
	}
	// Turbo point must exceed P1 power.
	if cp.AtFreq(3.0e9) <= cp.AtFreq(2.2e9) {
		t.Fatal("turbo power not above base power")
	}
	if cp.AtFreq(0) != 0 {
		t.Fatal("P(0) != 0")
	}
}

// Property: speedup is monotone in frequency for any scalability in [0,1].
func TestPropertySpeedupMonotone(t *testing.T) {
	f := func(s01 uint8, f1MHz, f2MHz uint16) bool {
		s := float64(s01%101) / 100
		f1 := float64(f1MHz%3000+100) * 1e6
		f2 := float64(f2MHz%3000+100) * 1e6
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		return Speedup(s, 1e9, f1) <= Speedup(s, 1e9, f2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the budget never goes negative or above capacity.
func TestPropertyBudgetBounded(t *testing.T) {
	f := func(powers []uint8) bool {
		b := NewBudget(50, 25)
		now := int64(0)
		for _, p := range powers {
			now += 1e8
			b.Update(now, float64(p))
			if b.Stored() < 0 || b.Stored() > b.CapacityJ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
