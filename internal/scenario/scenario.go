// Package scenario describes time-varying offered load as a piecewise
// schedule of phases — the workload class the stationary simulator
// misses. Real latency-critical fleets see their utilization change over
// the day (diurnal swings, traffic spikes, deploy ramps), and it is
// exactly during the troughs and transitions that deep-idle states and
// fleet consolidation decisions pay off or backfire.
//
// A Schedule is a contiguous list of Phases. Each phase lasts Duration
// and interpolates its rate linearly from StartRate to EndRate, so a
// schedule is a piecewise-linear rate function of simulated time: a
// constant phase is StartRate == EndRate, a ramp has them differ, a step
// spike is three constant phases, and a diurnal sine is sampled into
// linear segments. Piecewise linearity keeps every integral analytic:
// Requests (the expected request count over a window) and AvgRate are
// exact, which is what the epoch-stepped cluster dispatcher and the
// conservation fuzz tests rely on.
//
// Schedules are immutable after construction and safe for concurrent
// use. Time is the simulator's clock (nanoseconds from run start);
// beyond the last phase the schedule holds its final rate, so a sim
// window slightly longer than the schedule degrades gracefully.
package scenario

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Phase is one segment of a schedule: Duration of load interpolating
// linearly from StartRate to EndRate (requests per second).
type Phase struct {
	// Name labels the phase in reports ("trough", "spike", "h07", ...).
	Name string
	// Duration is the phase length (must be positive).
	Duration sim.Time
	// StartRate and EndRate bound the linear rate segment (QPS, >= 0).
	StartRate float64
	EndRate   float64
}

// constant reports whether the phase holds one rate.
func (p Phase) constant() bool { return p.StartRate == p.EndRate }

// rateAt interpolates the phase rate at offset dt into the phase.
func (p Phase) rateAt(dt sim.Time) float64 {
	if p.constant() {
		return p.StartRate
	}
	frac := float64(dt) / float64(p.Duration)
	return p.StartRate + (p.EndRate-p.StartRate)*frac
}

// requests integrates the phase rate over [a, b] (offsets into the
// phase, ns) and returns the expected request count — the trapezoid
// rule, exact for a linear segment.
func (p Phase) requests(a, b sim.Time) float64 {
	if b <= a {
		return 0
	}
	return (p.rateAt(a) + p.rateAt(b)) / 2 * float64(b-a) / 1e9
}

// Schedule is an immutable piecewise-linear load timeline.
type Schedule struct {
	name   string
	phases []Phase
	starts []sim.Time // starts[i] is phase i's absolute start offset
	total  sim.Time
}

// maxTotal bounds a schedule's length so cumulative starts can never
// overflow the simulator clock.
const maxTotal = sim.MaxTime / 4

// New validates and assembles a schedule from contiguous phases.
func New(name string, phases ...Phase) (*Schedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("scenario %q: no phases", name)
	}
	s := &Schedule{
		name:   name,
		phases: append([]Phase(nil), phases...),
		starts: make([]sim.Time, len(phases)),
	}
	for i, p := range s.phases {
		if p.Duration <= 0 {
			return nil, fmt.Errorf("scenario %q: phase %d (%s) has non-positive duration %d", name, i, p.Name, p.Duration)
		}
		if p.StartRate < 0 || p.EndRate < 0 ||
			math.IsNaN(p.StartRate) || math.IsNaN(p.EndRate) ||
			math.IsInf(p.StartRate, 0) || math.IsInf(p.EndRate, 0) {
			return nil, fmt.Errorf("scenario %q: phase %d (%s) has invalid rate %g..%g", name, i, p.Name, p.StartRate, p.EndRate)
		}
		s.starts[i] = s.total
		if p.Duration > maxTotal-s.total {
			return nil, fmt.Errorf("scenario %q: total duration overflows at phase %d", name, i)
		}
		s.total += p.Duration
	}
	return s, nil
}

// Name returns the schedule's label.
func (s *Schedule) Name() string { return s.name }

// Duration returns the total schedule length.
func (s *Schedule) Duration() sim.Time { return s.total }

// NumPhases returns the phase count.
func (s *Schedule) NumPhases() int { return len(s.phases) }

// Phases returns a copy of the phase list.
func (s *Schedule) Phases() []Phase { return append([]Phase(nil), s.phases...) }

// PhaseStart returns phase i's absolute start offset.
func (s *Schedule) PhaseStart(i int) sim.Time { return s.starts[i] }

// index returns the phase index containing time t (clamped to the
// schedule's ends).
func (s *Schedule) index(t sim.Time) int {
	if t < 0 {
		return 0
	}
	if t >= s.total {
		return len(s.phases) - 1
	}
	// Binary search for the last start <= t.
	lo, hi := 0, len(s.phases)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.starts[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// PhaseAt returns the phase containing time t and its index. Before the
// schedule it returns the first phase; at or after the end, the last.
func (s *Schedule) PhaseAt(t sim.Time) (Phase, int) {
	i := s.index(t)
	return s.phases[i], i
}

// RateAt returns the offered rate (QPS) at time t. Before time zero it
// returns the first phase's start rate; at or after the end, the last
// phase's end rate.
func (s *Schedule) RateAt(t sim.Time) float64 {
	if t < 0 {
		return s.phases[0].StartRate
	}
	if t >= s.total {
		return s.phases[len(s.phases)-1].EndRate
	}
	i := s.index(t)
	return s.phases[i].rateAt(t - s.starts[i])
}

// NextChange returns the earliest time strictly after t at which the
// rate function can change (the next phase boundary), or sim.MaxTime
// when t is at or beyond the final phase. Load generators idling through
// a zero-rate phase use it to re-probe exactly when load can return.
func (s *Schedule) NextChange(t sim.Time) sim.Time {
	if t < 0 {
		return 0
	}
	for i := range s.starts {
		if s.starts[i] > t {
			return s.starts[i]
		}
	}
	if t < s.total {
		return s.total
	}
	return sim.MaxTime
}

// Requests integrates the rate over the window [t0, t1) and returns the
// expected request count. The window is clamped to the schedule (rate
// holds its boundary values outside), and the integral is exact for the
// piecewise-linear rate function, so request counts are conserved across
// any epoch partition of a window.
func (s *Schedule) Requests(t0, t1 sim.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	var total float64
	// Portion before the schedule: first phase's start rate.
	if t0 < 0 {
		pre := t1
		if pre > 0 {
			pre = 0
		}
		total += s.phases[0].StartRate * float64(pre-t0) / 1e9
		t0 = pre
		if t0 >= t1 {
			return total
		}
	}
	// Portion after the schedule: last phase's end rate.
	if t1 > s.total {
		post := t0
		if post < s.total {
			post = s.total
		}
		total += s.phases[len(s.phases)-1].EndRate * float64(t1-post) / 1e9
		t1 = post
		if t1 <= t0 {
			return total
		}
	}
	for i := s.index(t0); i < len(s.phases) && s.starts[i] < t1; i++ {
		a := t0 - s.starts[i]
		if a < 0 {
			a = 0
		}
		b := t1 - s.starts[i]
		if b > s.phases[i].Duration {
			b = s.phases[i].Duration
		}
		total += s.phases[i].requests(a, b)
	}
	return total
}

// AvgRate returns the mean offered rate (QPS) over [t0, t1).
func (s *Schedule) AvgRate(t0, t1 sim.Time) float64 {
	if t1 <= t0 {
		return s.RateAt(t0)
	}
	return s.Requests(t0, t1) * 1e9 / float64(t1-t0)
}

// PeakRate returns the largest rate the schedule reaches.
func (s *Schedule) PeakRate() float64 {
	var peak float64
	for _, p := range s.phases {
		if p.StartRate > peak {
			peak = p.StartRate
		}
		if p.EndRate > peak {
			peak = p.EndRate
		}
	}
	return peak
}

// Fingerprint returns a deterministic identity string: schedules with
// equal fingerprints produce identical rate functions. It feeds the
// runner's memoization key for simulations carrying a schedule.
func (s *Schedule) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sched:%s", s.name)
	for _, p := range s.phases {
		fmt.Fprintf(&b, "|%s,%d,%g,%g", p.Name, p.Duration, p.StartRate, p.EndRate)
	}
	return b.String()
}

// Constant returns a single-phase schedule holding rate for total — the
// stationary workload as a degenerate scenario. A constant schedule
// reproduces the stationary simulator bit-for-bit (golden-pinned).
func Constant(name string, rateQPS float64, total sim.Time) (*Schedule, error) {
	return New(name, Phase{Name: name, Duration: total, StartRate: rateQPS, EndRate: rateQPS})
}

// Ramp returns a single linear phase from fromQPS to toQPS over total —
// a deploy drain or gradual failover.
func Ramp(name string, fromQPS, toQPS float64, total sim.Time) (*Schedule, error) {
	return New(name, Phase{Name: name, Duration: total, StartRate: fromQPS, EndRate: toQPS})
}

// Spike returns base load with one step spike of base*mult during
// [spikeStart, spikeStart+spikeLen) — a retry storm or flash crowd.
func Spike(baseQPS, mult float64, total, spikeStart, spikeLen sim.Time) (*Schedule, error) {
	if spikeStart < 0 || spikeLen <= 0 || spikeStart+spikeLen > total {
		return nil, fmt.Errorf("scenario spike: window [%d,+%d) outside total %d", spikeStart, spikeLen, total)
	}
	var phases []Phase
	if spikeStart > 0 {
		phases = append(phases, Phase{Name: "pre", Duration: spikeStart, StartRate: baseQPS, EndRate: baseQPS})
	}
	spikeRate := baseQPS * mult
	phases = append(phases, Phase{Name: "spike", Duration: spikeLen, StartRate: spikeRate, EndRate: spikeRate})
	if rest := total - spikeStart - spikeLen; rest > 0 {
		phases = append(phases, Phase{Name: "post", Duration: rest, StartRate: baseQPS, EndRate: baseQPS})
	}
	return New("spike", phases...)
}

// Diurnal returns a sampled sine day compressed into total: rate(t) =
// base * (1 + swing*shape(t)) with the trough at t=0 and the peak at
// total/2, sampled into segments linear pieces named h00, h01, ... —
// "hours" of the compressed day. swing in [0,1) keeps rates positive.
func Diurnal(baseQPS, swing float64, total sim.Time, segments int) (*Schedule, error) {
	if segments < 2 {
		return nil, fmt.Errorf("scenario diurnal: need >= 2 segments, got %d", segments)
	}
	if swing < 0 || swing >= 1 {
		return nil, fmt.Errorf("scenario diurnal: swing %g out of [0,1)", swing)
	}
	rate := func(frac float64) float64 {
		// -cos puts the trough at frac 0 and the peak at frac 0.5.
		return baseQPS * (1 - swing*math.Cos(2*math.Pi*frac))
	}
	phases := make([]Phase, segments)
	seg := total / sim.Time(segments)
	if seg <= 0 {
		return nil, fmt.Errorf("scenario diurnal: total %d too short for %d segments", total, segments)
	}
	for i := range phases {
		dur := seg
		if i == segments-1 {
			dur = total - seg*sim.Time(segments-1) // absorb rounding
		}
		phases[i] = Phase{
			Name:      fmt.Sprintf("h%02d", i),
			Duration:  dur,
			StartRate: rate(float64(i) / float64(segments)),
			EndRate:   rate(float64(i+1) / float64(segments)),
		}
	}
	return New("diurnal", phases...)
}

// Named scenario names accepted by ByName.
const (
	NameConstant = "constant"
	NameDiurnal  = "diurnal"
	NameSpike    = "spike"
	NameRamp     = "ramp"
)

// Names lists the named scenario shapes.
func Names() []string {
	return []string{NameConstant, NameDiurnal, NameSpike, NameRamp}
}

// ByName builds a named scenario around a base rate over total:
//
//   - constant: baseQPS throughout (the stationary control).
//   - diurnal: a compressed day — 12 linear segments of a sine between
//     0.4x and 1.6x base, trough first, peak mid-day.
//   - spike: baseQPS with a 4x step spike over the middle fifth.
//   - ramp: linear growth from 0.25x to 1.75x base (mean = base).
func ByName(name string, baseQPS float64, total sim.Time) (*Schedule, error) {
	if total <= 0 {
		return nil, fmt.Errorf("scenario %q: non-positive duration %d", name, total)
	}
	switch name {
	case NameConstant:
		return Constant("steady", baseQPS, total)
	case NameDiurnal:
		return Diurnal(baseQPS, 0.6, total, 12)
	case NameSpike:
		return Spike(baseQPS, 4, total, total*2/5, total/5)
	case NameRamp:
		return Ramp("ramp", baseQPS*0.25, baseQPS*1.75, total)
	default:
		return nil, fmt.Errorf("scenario: unknown name %q (known: %v)", name, Names())
	}
}
