package scenario

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func mustNew(t *testing.T, name string, phases ...Phase) *Schedule {
	t.Helper()
	s, err := New(name, phases...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadPhases(t *testing.T) {
	if _, err := New("empty"); err == nil {
		t.Error("empty phase list accepted")
	}
	if _, err := New("zero", Phase{Duration: 0, StartRate: 1, EndRate: 1}); err == nil {
		t.Error("zero-duration phase accepted")
	}
	if _, err := New("neg", Phase{Duration: 1, StartRate: -1, EndRate: 1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := New("nan", Phase{Duration: 1, StartRate: math.NaN(), EndRate: 1}); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := New("inf", Phase{Duration: 1, StartRate: 1, EndRate: math.Inf(1)}); err == nil {
		t.Error("Inf rate accepted")
	}
	if _, err := New("overflow",
		Phase{Duration: maxTotal, StartRate: 1, EndRate: 1},
		Phase{Duration: maxTotal, StartRate: 1, EndRate: 1}); err == nil {
		t.Error("overflowing total accepted")
	}
}

func TestConstantScheduleHoldsRate(t *testing.T) {
	s, err := Constant("steady", 150e3, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Time{-5, 0, 1, sim.Millisecond, sim.Second - 1, sim.Second, 2 * sim.Second} {
		if got := s.RateAt(at); got != 150e3 {
			t.Errorf("RateAt(%d) = %v, want 150000 exactly", at, got)
		}
	}
	if got := s.AvgRate(0, sim.Second); got != 150e3 {
		t.Errorf("AvgRate = %v, want 150000 exactly", got)
	}
	if got := s.Requests(0, sim.Second); math.Abs(got-150e3) > 1e-9 {
		t.Errorf("Requests over 1s = %v, want 150000", got)
	}
}

func TestRampInterpolatesLinearly(t *testing.T) {
	s, err := Ramp("ramp", 100, 300, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RateAt(0); got != 100 {
		t.Errorf("RateAt(0) = %v", got)
	}
	if got := s.RateAt(500); math.Abs(got-200) > 1e-9 {
		t.Errorf("RateAt(mid) = %v, want 200", got)
	}
	if got := s.RateAt(1000); got != 300 {
		t.Errorf("RateAt(end) = %v, want 300 (hold end rate)", got)
	}
	// Integral of a linear ramp = mean * time.
	if got, want := s.Requests(0, 1000), 200*1000/1e9; math.Abs(got-want) > 1e-12 {
		t.Errorf("Requests = %v, want %v", got, want)
	}
}

func TestSpikePhases(t *testing.T) {
	s, err := Spike(100e3, 4, sim.Second, 400*sim.Millisecond, 200*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 3 {
		t.Fatalf("phases = %d, want 3", s.NumPhases())
	}
	if p, _ := s.PhaseAt(0); p.Name != "pre" || p.StartRate != 100e3 {
		t.Errorf("phase at 0 = %+v", p)
	}
	if p, _ := s.PhaseAt(500 * sim.Millisecond); p.Name != "spike" || p.StartRate != 400e3 {
		t.Errorf("phase at spike = %+v", p)
	}
	if p, _ := s.PhaseAt(700 * sim.Millisecond); p.Name != "post" {
		t.Errorf("phase at post = %+v", p)
	}
	// Spike at the very start produces no "pre" phase.
	s2, err := Spike(100e3, 2, sim.Second, 0, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := s2.PhaseAt(0); p.Name != "spike" {
		t.Errorf("spike-at-zero first phase = %+v", p)
	}
	if _, err := Spike(100e3, 4, sim.Second, 900*sim.Millisecond, 200*sim.Millisecond); err == nil {
		t.Error("spike overrunning total accepted")
	}
}

func TestDiurnalShape(t *testing.T) {
	total := 240 * sim.Millisecond
	s, err := Diurnal(200e3, 0.6, total, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration() != total {
		t.Fatalf("duration %d != %d (rounding not absorbed)", s.Duration(), total)
	}
	// Trough at t=0: 0.4x base; peak mid-day: near 1.6x base.
	if got := s.RateAt(0); math.Abs(got-80e3) > 1 {
		t.Errorf("trough rate %v, want ~80000", got)
	}
	peak := s.PeakRate()
	if peak < 310e3 || peak > 320e3 {
		t.Errorf("peak rate %v, want ~320000 (sampled sine)", peak)
	}
	// The day's mean stays near base (piecewise-linear chord of a sine
	// under-estimates the extremes slightly, hence the loose tolerance).
	avg := s.AvgRate(0, total)
	if math.Abs(avg-200e3)/200e3 > 0.02 {
		t.Errorf("day mean %v strays from base 200000", avg)
	}
	if _, err := Diurnal(1, 1.5, total, 12); err == nil {
		t.Error("swing >= 1 accepted")
	}
	if _, err := Diurnal(1, 0.5, total, 1); err == nil {
		t.Error("single segment accepted")
	}
}

func TestRequestsConservedAcrossSplit(t *testing.T) {
	s := mustNew(t, "mix",
		Phase{Name: "a", Duration: 1000, StartRate: 100, EndRate: 300},
		Phase{Name: "b", Duration: 500, StartRate: 300, EndRate: 300},
		Phase{Name: "c", Duration: 1500, StartRate: 300, EndRate: 0},
	)
	whole := s.Requests(0, s.Duration())
	var split float64
	for t0 := sim.Time(0); t0 < s.Duration(); t0 += 250 {
		t1 := t0 + 250
		if t1 > s.Duration() {
			t1 = s.Duration()
		}
		split += s.Requests(t0, t1)
	}
	if math.Abs(whole-split) > 1e-9*math.Abs(whole) {
		t.Errorf("epoch split lost requests: whole %v vs split %v", whole, split)
	}
	// Windows crossing the schedule's ends use the held boundary rates.
	if got, want := s.Requests(-1000, 0), 100*1000/1e9; math.Abs(got-want) > 1e-15 {
		t.Errorf("pre-schedule requests %v, want %v", got, want)
	}
	if got := s.Requests(s.Duration(), s.Duration()+1000); got != 0 {
		t.Errorf("post-schedule requests %v, want 0 (end rate 0)", got)
	}
}

func TestNextChange(t *testing.T) {
	s := mustNew(t, "two",
		Phase{Name: "a", Duration: 100, StartRate: 0, EndRate: 0},
		Phase{Name: "b", Duration: 200, StartRate: 5, EndRate: 5},
	)
	if got := s.NextChange(0); got != 100 {
		t.Errorf("NextChange(0) = %d, want 100", got)
	}
	if got := s.NextChange(100); got != 300 {
		t.Errorf("NextChange(100) = %d, want 300 (end)", got)
	}
	if got := s.NextChange(300); got != sim.MaxTime {
		t.Errorf("NextChange(end) = %d, want MaxTime", got)
	}
	if got := s.NextChange(-5); got != 0 {
		t.Errorf("NextChange(-5) = %d, want 0", got)
	}
}

func TestPhaseStartsMonotonic(t *testing.T) {
	s := mustNew(t, "m",
		Phase{Name: "a", Duration: 7, StartRate: 1, EndRate: 1},
		Phase{Name: "b", Duration: 11, StartRate: 2, EndRate: 2},
		Phase{Name: "c", Duration: 13, StartRate: 3, EndRate: 3},
	)
	for i := 1; i < s.NumPhases(); i++ {
		if s.PhaseStart(i) <= s.PhaseStart(i-1) {
			t.Fatalf("phase starts not strictly increasing: %d then %d",
				s.PhaseStart(i-1), s.PhaseStart(i))
		}
	}
	if s.PhaseStart(2) != 18 {
		t.Errorf("start[2] = %d, want 18", s.PhaseStart(2))
	}
}

func TestFingerprintDistinguishesSchedules(t *testing.T) {
	a, _ := Constant("steady", 100, 1000)
	b, _ := Constant("steady", 200, 1000)
	c, _ := Constant("steady", 100, 1000)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different rates share a fingerprint")
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("identical schedules disagree on fingerprint")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name, 100e3, sim.Second)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Duration() != sim.Second {
			t.Errorf("%s: duration %d", name, s.Duration())
		}
		avg := s.AvgRate(0, s.Duration())
		switch name {
		case NameSpike:
			// The spike raises the mean: base*(1 + 3*0.2) = 1.6x.
			if math.Abs(avg-160e3)/160e3 > 0.02 {
				t.Errorf("spike: mean rate %v, want ~160000", avg)
			}
		default:
			// Constant, diurnal and ramp average to their base rate.
			if math.Abs(avg-100e3)/100e3 > 0.02 {
				t.Errorf("%s: mean rate %v strays from base", name, avg)
			}
		}
	}
	if _, err := ByName("hurricane", 1, sim.Second); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ByName(NameDiurnal, 1, 0); err == nil {
		t.Error("zero-duration scenario accepted")
	}
}
