package scenario

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/sim"
)

// decodePhases turns fuzz bytes into a phase list: 17 bytes per phase
// (8 duration, 4+4 rates, 1 name index). The decoder intentionally
// produces hostile values — zero/negative durations, huge rates,
// overflowing totals — because New must either reject the list or hand
// back a schedule whose invariants hold.
func decodePhases(data []byte) []Phase {
	const rec = 17
	var phases []Phase
	for i := 0; i+rec <= len(data) && len(phases) < 64; i += rec {
		d := int64(binary.LittleEndian.Uint64(data[i : i+8]))
		r0 := float64(binary.LittleEndian.Uint32(data[i+8 : i+12]))
		r1 := float64(binary.LittleEndian.Uint32(data[i+12 : i+16]))
		// Exercise the negative-rate rejection path too.
		if data[i+16]&0x80 != 0 {
			r0 = -r0
		}
		phases = append(phases, Phase{
			Name:      string(rune('a' + data[i+16]%26)),
			Duration:  sim.Time(d),
			StartRate: r0,
			EndRate:   r1,
		})
	}
	return phases
}

// FuzzScheduleInvariants drives arbitrary phase lists through the
// schedule and asserts the invariants the epoch-stepped cluster
// dispatcher relies on:
//
//  1. Conservation: the expected request count over the full schedule
//     equals the sum over any epoch partition of it (no requests created
//     or lost at epoch boundaries).
//  2. Non-negative rates everywhere.
//  3. Phase start times strictly increasing and consistent with the
//     phase durations (in-order, gap-free coverage).
func FuzzScheduleInvariants(f *testing.F) {
	seed := func(phases ...Phase) {
		data := make([]byte, 0, len(phases)*17)
		for _, p := range phases {
			var buf [17]byte
			binary.LittleEndian.PutUint64(buf[0:8], uint64(p.Duration))
			binary.LittleEndian.PutUint32(buf[8:12], uint32(p.StartRate))
			binary.LittleEndian.PutUint32(buf[12:16], uint32(p.EndRate))
			data = append(data, buf[:]...)
		}
		f.Add(data, uint16(4))
	}
	seed(Phase{Duration: sim.Second, StartRate: 100e3, EndRate: 100e3})
	seed(
		Phase{Duration: 100 * sim.Millisecond, StartRate: 0, EndRate: 250e3},
		Phase{Duration: 50 * sim.Millisecond, StartRate: 250e3, EndRate: 250e3},
		Phase{Duration: 200 * sim.Millisecond, StartRate: 250e3, EndRate: 0},
	)
	seed(Phase{Duration: 1, StartRate: 0, EndRate: 0})

	f.Fuzz(func(t *testing.T, data []byte, epochs16 uint16) {
		phases := decodePhases(data)
		s, err := New("fuzz", phases...)
		if err != nil {
			return // rejected lists are out of contract
		}
		total := s.Duration()
		if total <= 0 {
			t.Fatal("accepted schedule with non-positive duration")
		}

		// (3) Phase starts strictly increase and tile the timeline.
		var cursor sim.Time
		for i, p := range s.Phases() {
			if s.PhaseStart(i) != cursor {
				t.Fatalf("phase %d starts at %d, want %d (out-of-order or gapped)",
					i, s.PhaseStart(i), cursor)
			}
			if i > 0 && s.PhaseStart(i) <= s.PhaseStart(i-1) {
				t.Fatalf("phase starts not strictly increasing at %d", i)
			}
			cursor += p.Duration
		}
		if cursor != total {
			t.Fatalf("durations sum to %d, Duration() says %d", cursor, total)
		}

		// (2) Non-negative, finite rates at boundaries, interior points
		// and outside the schedule.
		probes := []sim.Time{-1, 0, total / 3, total / 2, total - 1, total, total + 1000}
		for i := range s.Phases() {
			probes = append(probes, s.PhaseStart(i))
		}
		for _, at := range probes {
			r := s.RateAt(at)
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("RateAt(%d) = %v", at, r)
			}
		}

		// (1) Conservation across an arbitrary epoch partition.
		nEpochs := int(epochs16%32) + 1
		epoch := total / sim.Time(nEpochs)
		if epoch <= 0 {
			epoch = 1
		}
		whole := s.Requests(0, total)
		if whole < 0 || math.IsNaN(whole) || math.IsInf(whole, 0) {
			t.Fatalf("Requests(0,%d) = %v", total, whole)
		}
		var split float64
		for t0 := sim.Time(0); t0 < total; t0 += epoch {
			t1 := t0 + epoch
			if t1 > total {
				t1 = total
			}
			part := s.Requests(t0, t1)
			if part < 0 {
				t.Fatalf("negative request count %v over [%d,%d)", part, t0, t1)
			}
			split += part
			// AvgRate must agree with the window integral it is defined by.
			if want := part * 1e9 / float64(t1-t0); t1 > t0 {
				if got := s.AvgRate(t0, t1); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("AvgRate(%d,%d) = %v, want %v", t0, t1, got, want)
				}
			}
		}
		tol := 1e-9 * math.Max(1, whole)
		if math.Abs(whole-split) > tol {
			t.Fatalf("requests not conserved across %d epochs: whole %v vs split %v",
				nEpochs, whole, split)
		}
	})
}
