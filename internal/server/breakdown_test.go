package server

import (
	"math"
	"testing"

	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestBreakdownComponentsSumToServerLatency(t *testing.T) {
	res := run(t, quickCfg(governor.Baseline, 200e3))
	b := res.Breakdown
	sum := b.Wake.AvgUS + b.Queue.AvgUS + b.Service.AvgUS
	if math.Abs(sum-res.Server.AvgUS)/res.Server.AvgUS > 0.05 {
		t.Fatalf("breakdown sum %.2f vs server avg %.2f", sum, res.Server.AvgUS)
	}
	if b.Wake.Count == 0 || b.Service.Count == 0 {
		t.Fatal("empty breakdown histograms")
	}
}

func TestBreakdownWakeDominatesWithC6AtLowLoad(t *testing.T) {
	// NT baseline at very low load: many requests pay C6's wake path
	// (30us hardware exit + ~16us software, per the Sec. 3 breakdown;
	// the remaining entry time shows up as queueing for arrivals that
	// land mid-entry).
	res := run(t, quickCfg(governor.NTBaseline, 10e3))
	if res.Breakdown.Wake.P99US < 40 {
		t.Fatalf("p99 wake %.1fus too small for a C6-heavy baseline", res.Breakdown.Wake.P99US)
	}
	// AW-style C6A-only config: wake bounded by the ~2us software path.
	aw := run(t, quickCfg(governor.TC6ANoC6NoC1E, 10e3))
	if aw.Breakdown.Wake.P99US > 5 {
		t.Fatalf("C6A p99 wake %.1fus, want ~2us", aw.Breakdown.Wake.P99US)
	}
	if aw.Breakdown.Wake.P99US >= res.Breakdown.Wake.P99US {
		t.Fatal("C6A wake not below C6 wake")
	}
}

func TestBreakdownQueueGrowsWithLoad(t *testing.T) {
	low := run(t, quickCfg(governor.NTNoC6NoC1E, 50e3))
	high := run(t, quickCfg(governor.NTNoC6NoC1E, 500e3))
	if high.Breakdown.Queue.AvgUS <= low.Breakdown.Queue.AvgUS {
		t.Fatalf("queueing did not grow with load: %.2f vs %.2f",
			high.Breakdown.Queue.AvgUS, low.Breakdown.Queue.AvgUS)
	}
}

func TestClosedLoopThroughput(t *testing.T) {
	cfg := Config{
		Platform: governor.Baseline, Profile: workload.Memcached(),
		Duration: 150 * sim.Millisecond, Warmup: 20 * sim.Millisecond,
		Seed: 11, ClosedLoopConnections: 200, ThinkTime: 2 * sim.Millisecond,
	}
	res := run(t, cfg)
	// Little's law: throughput ~ N / (think + response) with response
	// ~tens of microseconds << think.
	want := 200.0 / (2e-3)
	if res.CompletedPerSec < want*0.8 || res.CompletedPerSec > want*1.1 {
		t.Fatalf("closed-loop throughput %.0f, want ~%.0f", res.CompletedPerSec, want)
	}
	if res.Server.Count == 0 {
		t.Fatal("no latency samples")
	}
}

func TestClosedLoopIgnoresRate(t *testing.T) {
	cfg := Config{
		Platform: governor.Baseline, Profile: workload.Memcached(),
		Duration: 80 * sim.Millisecond, Warmup: 10 * sim.Millisecond,
		Seed: 12, RatePerSec: 1e6, // would be 1M QPS open loop
		ClosedLoopConnections: 20, ThinkTime: 4 * sim.Millisecond,
	}
	res := run(t, cfg)
	// 20 connections at 4ms think ~ 5K QPS, nowhere near 1M.
	if res.CompletedPerSec > 50e3 {
		t.Fatalf("closed loop leaked open-loop arrivals: %.0f/s", res.CompletedPerSec)
	}
}

func TestClosedLoopSelfThrottles(t *testing.T) {
	// A closed loop cannot over-saturate: even with zero think time the
	// in-flight count is bounded by the connection count.
	cfg := Config{
		Platform: governor.Baseline, Profile: workload.Memcached(),
		Duration: 80 * sim.Millisecond, Warmup: 10 * sim.Millisecond,
		Seed: 13, ClosedLoopConnections: 10, ThinkTime: sim.Microsecond,
	}
	res := run(t, cfg)
	// p99 stays bounded (no unbounded open-loop queue blowup).
	if res.Server.P99US > 2000 {
		t.Fatalf("closed loop queue blew up: p99 = %.0fus", res.Server.P99US)
	}
	if res.CompletedPerSec <= 0 {
		t.Fatal("no throughput")
	}
}

func TestPerCoreStats(t *testing.T) {
	res := run(t, quickCfg(governor.Baseline, 200e3))
	if len(res.PerCore) != 20 {
		t.Fatalf("per-core entries = %d", len(res.PerCore))
	}
	var powerSum float64
	for _, cs := range res.PerCore {
		sum := 0.0
		for _, v := range cs.Residency {
			if v < 0 {
				t.Fatalf("core %d negative residency", cs.Core)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("core %d residency sums to %v", cs.Core, sum)
		}
		powerSum += cs.AvgPowerW
	}
	// Per-core powers average to the aggregate.
	if math.Abs(powerSum/20-res.AvgCorePowerW) > 1e-9 {
		t.Fatalf("per-core power mean %.4f vs aggregate %.4f", powerSum/20, res.AvgCorePowerW)
	}
	// Round-robin dispatch keeps cores roughly uniform.
	var minP, maxP = math.Inf(1), 0.0
	for _, cs := range res.PerCore {
		if cs.AvgPowerW < minP {
			minP = cs.AvgPowerW
		}
		if cs.AvgPowerW > maxP {
			maxP = cs.AvgPowerW
		}
	}
	if maxP/minP > 1.5 {
		t.Fatalf("per-core power skew %.2f..%.2f too large", minP, maxP)
	}
}
