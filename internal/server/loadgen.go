package server

import (
	"fmt"

	"repro/internal/sim"
)

// Load-generator names accepted by Config.LoadGen.
const (
	// LoadOpenLoop issues Poisson (or profile-defined) arrivals at
	// Config.RatePerSec regardless of completions — the Mutilate agent's
	// open-loop mode the paper measures under.
	LoadOpenLoop = "open-loop"
	// LoadClosedLoop runs Config.ClosedLoopConnections connections, each
	// issuing its next request one think time after its previous
	// response (the Mutilate closed-loop model).
	LoadClosedLoop = "closed-loop"
	// LoadBursty is an on/off modulated open loop: exponentially
	// distributed ON bursts separated by silent OFF gaps, with the burst
	// rate scaled so the long-run average still equals Config.RatePerSec.
	// OFF gaps are long enough for cores to reach deep C-states, so the
	// same average load produces a very different residency picture.
	LoadBursty = "bursty"
)

// LoadGens lists the built-in load-generator names.
func LoadGens() []string {
	return []string{LoadOpenLoop, LoadClosedLoop, LoadBursty}
}

// LoadGen drives request arrivals into a simulation. Implementations draw
// all randomness from the Sim's arrival stream, keeping runs reproducible
// from the single run seed.
type LoadGen interface {
	// Name identifies the generator.
	Name() string
	// register installs the generator's typed event kinds on the Sim's
	// engine (called once from Sim construction, before Start).
	register(s *Sim)
	// Start schedules the generator's initial events on the engine.
	Start(s *Sim)
	// OnComplete is invoked when the foreground request of connection
	// conn finishes; open-loop generators ignore it, closed-loop ones
	// schedule the connection's next request.
	OnComplete(s *Sim, conn int, now sim.Time)
}

// newLoadGen constructs the named generator. inst marks instance mode,
// where the offered rate arrives per interval instead of through
// Config.RatePerSec/Schedule.
func newLoadGen(cfg Config, inst bool) (LoadGen, error) {
	switch cfg.LoadGen {
	case LoadOpenLoop:
		return openLoopGen{}, nil
	case LoadClosedLoop:
		if cfg.ClosedLoopConnections <= 0 {
			return nil, fmt.Errorf("server: closed-loop load needs ClosedLoopConnections > 0")
		}
		return closedLoopGen{}, nil
	case LoadBursty:
		if cfg.RatePerSec <= 0 && cfg.Schedule == nil && !inst {
			return nil, fmt.Errorf("server: bursty load needs RatePerSec > 0")
		}
		on, off := float64(cfg.BurstOnTime), float64(cfg.BurstOffTime)
		return &burstyGen{
			onRate:  cfg.RatePerSec * (on + off) / on,
			onMean:  on,
			offMean: off,
		}, nil
	default:
		return nil, fmt.Errorf("server: unknown load generator %q (known: %v)", cfg.LoadGen, LoadGens())
	}
}

// openLoopGen reproduces the seed simulator's open-loop path exactly: one
// profile-defined gap draw per arrival, starting from time zero.
type openLoopGen struct{}

func (openLoopGen) Name() string { return LoadOpenLoop }

func (openLoopGen) register(s *Sim) {
	// a0 != 0 marks a silent probe: the generator slept through a
	// zero-rate schedule phase and wakes at the phase boundary without
	// dispatching a request.
	s.kArrival = s.eng.RegisterKind(func(now sim.Time, a0, _ uint64) {
		s.openLoopArrival(now, a0 != 0)
	})
}

func (openLoopGen) Start(s *Sim) {
	if s.instMode || s.cfg.Schedule != nil {
		s.openLoopNext(0)
		return
	}
	if s.cfg.RatePerSec <= 0 {
		return
	}
	gap := s.cfg.Profile.Arrivals.NextGap(s.arrRand, s.cfg.RatePerSec)
	s.eng.ScheduleKindAt(gap, s.kArrival, 0, 0)
}

func (openLoopGen) OnComplete(*Sim, int, sim.Time) {}

// openLoopArrival dispatches one request (unless this is a zero-rate
// phase probe) and schedules the next.
func (s *Sim) openLoopArrival(now sim.Time, probe bool) {
	s.arrEvent = nil // this event just fired; drop the stale handle
	if !probe {
		s.dispatch(now, -1)
	}
	s.openLoopNext(now)
}

// zeroRateProbe bounds how far the generator sleeps through a zero-rate
// instant: a ramp phase that *starts* at rate zero turns positive
// immediately inside the phase, so probing only at phase boundaries
// would skip it entirely.
const zeroRateProbe = sim.Millisecond

// openLoopNext schedules the next open-loop event after now. Without a
// schedule the offered rate is the constant RatePerSec (the stationary
// path, preserved bit-for-bit); with one, the rate is looked up at now —
// a piecewise-constant-per-gap approximation of the schedule's rate
// function. A zero rate schedules a probe (the next phase boundary or
// zeroRateProbe, whichever is sooner) instead of an arrival; a drawn gap
// that overshoots the next rate change is censored there and redrawn —
// the exponential's memorylessness makes that the standard piecewise
// non-homogeneous Poisson construction, and it keeps the generator live
// across phases whose opening rate is tiny (a naive draw at, say,
// 1 QPS would sleep past the whole schedule).
func (s *Sim) openLoopNext(now sim.Time) {
	rate := s.cfg.RatePerSec
	if s.instMode {
		// Instance mode: the rate is piecewise-constant and changes only
		// at RunInterval boundaries (setIntervalRate cancels and redraws
		// there), so no probing or censoring is needed; a zero-rate
		// interval schedules nothing until the rate returns.
		rate = s.instRate
		if rate <= 0 {
			return
		}
		gap := s.cfg.Profile.Arrivals.NextGap(s.arrRand, rate)
		if gap < sim.MaxTime-now {
			s.arrEvent = s.eng.ScheduleKind(gap, s.kArrival, 0, 0)
		}
		return
	}
	if s.cfg.Schedule != nil {
		rate = s.cfg.Schedule.RateAt(now)
		if rate <= 0 {
			next := s.cfg.Schedule.NextChange(now)
			if probe := now + zeroRateProbe; probe < next {
				next = probe
			}
			if next < sim.MaxTime {
				s.eng.ScheduleKindAt(next, s.kArrival, 1, 0)
			}
			return
		}
	}
	gap := s.cfg.Profile.Arrivals.NextGap(s.arrRand, rate)
	if s.cfg.Schedule != nil {
		if next := s.cfg.Schedule.NextChange(now); next < sim.MaxTime && gap > next-now {
			s.eng.ScheduleKindAt(next, s.kArrival, 1, 0)
			return
		}
	}
	if gap < sim.MaxTime-now {
		s.eng.ScheduleKind(gap, s.kArrival, 0, 0)
	}
}

// closedLoopGen models Mutilate agents: N connections, exponential think
// times, next request issued only after the previous response.
type closedLoopGen struct{}

func (closedLoopGen) Name() string { return LoadClosedLoop }

func (closedLoopGen) register(s *Sim) {
	s.kConn = s.eng.RegisterKind(func(now sim.Time, conn, _ uint64) {
		s.dispatch(now, int(conn))
	})
}

func (closedLoopGen) Start(s *Sim) {
	for i := 0; i < s.cfg.ClosedLoopConnections; i++ {
		// Stagger connection starts across one think time.
		start := sim.Time(s.arrRand.Exp(float64(s.cfg.ThinkTime))) + 1
		s.eng.ScheduleKindAt(start, s.kConn, uint64(i), 0)
	}
}

func (closedLoopGen) OnComplete(s *Sim, conn int, now sim.Time) {
	think := sim.Time(s.arrRand.Exp(float64(s.cfg.ThinkTime)))
	if think < 1 {
		think = 1
	}
	s.eng.ScheduleKind(think, s.kConn, uint64(conn), 0)
}

// burstyGen alternates exponentially distributed ON bursts (Poisson
// arrivals at onRate) with silent OFF gaps. Under a schedule, each ON
// window's rate is re-derived from the schedule at burst start, so the
// on/off texture persists while the envelope follows the phases.
type burstyGen struct {
	onRate  float64 // instantaneous rate during a burst (1/s)
	onMean  float64 // mean burst length (ns)
	offMean float64 // mean silent gap (ns)
	// curRate is the active ON-window rate, set at each burst start
	// (equal to onRate when no schedule modulates the run).
	curRate float64
}

func (*burstyGen) Name() string { return LoadBursty }

func (g *burstyGen) register(s *Sim) {
	s.kBurst = s.eng.RegisterKind(func(now sim.Time, _, _ uint64) {
		g.burst(s, now)
	})
	// a0 carries the ON-window end so in-window arrivals need no state
	// beyond the generator itself. A parked node suppresses the dispatch
	// (like OS noise): an ON window straddling the park boundary would
	// otherwise keep serving at the stale burst rate while the node is
	// reported quiesced. The chain still ticks to the window end; the
	// next burst re-derives a zero rate and emits nothing.
	s.kBurstArrive = s.eng.RegisterKind(func(now sim.Time, end, _ uint64) {
		if !s.parked {
			s.dispatch(now, -1)
		}
		g.arrive(s, now, sim.Time(end))
	})
}

func (g *burstyGen) Start(s *Sim) {
	s.eng.ScheduleKindAt(1, s.kBurst, 0, 0)
}

func (*burstyGen) OnComplete(*Sim, int, sim.Time) {}

// burst runs one ON window starting now and schedules the next burst
// after an OFF gap. Under a schedule the window's burst rate scales with
// the phase rate at window start (same expression shape as the
// stationary precompute, so a constant schedule is bit-identical);
// zero-rate phases keep the on/off clock ticking but emit no arrivals.
func (g *burstyGen) burst(s *Sim, now sim.Time) {
	g.curRate = g.onRate
	if s.instMode {
		g.curRate = s.instRate * (g.onMean + g.offMean) / g.onMean
	} else if s.cfg.Schedule != nil {
		g.curRate = s.cfg.Schedule.RateAt(now) * (g.onMean + g.offMean) / g.onMean
	}
	dur := sim.Time(s.arrRand.Exp(g.onMean))
	if dur < 1 {
		dur = 1
	}
	end := now + dur
	if g.curRate > 0 {
		g.arrive(s, now, end)
	}
	gap := sim.Time(s.arrRand.Exp(g.offMean))
	if gap < 1 {
		gap = 1
	}
	if end < sim.MaxTime-gap {
		s.eng.ScheduleKindAt(end+gap, s.kBurst, 0, 0)
	}
}

// arrive schedules the next arrival within the ON window [from, end].
func (g *burstyGen) arrive(s *Sim, from, end sim.Time) {
	gap := sim.Time(s.arrRand.Exp(1e9 / g.curRate))
	if gap < 1 {
		gap = 1
	}
	t := from + gap
	if t > end {
		return
	}
	s.eng.ScheduleKindAt(t, s.kBurstArrive, uint64(end), 0)
}
