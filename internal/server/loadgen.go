package server

import (
	"fmt"

	"repro/internal/sim"
)

// Load-generator names accepted by Config.LoadGen.
const (
	// LoadOpenLoop issues Poisson (or profile-defined) arrivals at
	// Config.RatePerSec regardless of completions — the Mutilate agent's
	// open-loop mode the paper measures under.
	LoadOpenLoop = "open-loop"
	// LoadClosedLoop runs Config.ClosedLoopConnections connections, each
	// issuing its next request one think time after its previous
	// response (the Mutilate closed-loop model).
	LoadClosedLoop = "closed-loop"
	// LoadBursty is an on/off modulated open loop: exponentially
	// distributed ON bursts separated by silent OFF gaps, with the burst
	// rate scaled so the long-run average still equals Config.RatePerSec.
	// OFF gaps are long enough for cores to reach deep C-states, so the
	// same average load produces a very different residency picture.
	LoadBursty = "bursty"
)

// LoadGens lists the built-in load-generator names.
func LoadGens() []string {
	return []string{LoadOpenLoop, LoadClosedLoop, LoadBursty}
}

// LoadGen drives request arrivals into a simulation. Implementations draw
// all randomness from the Sim's arrival stream, keeping runs reproducible
// from the single run seed.
type LoadGen interface {
	// Name identifies the generator.
	Name() string
	// register installs the generator's typed event kinds on the Sim's
	// engine (called once from Sim construction, before Start).
	register(s *Sim)
	// Start schedules the generator's initial events on the engine.
	Start(s *Sim)
	// OnComplete is invoked when the foreground request of connection
	// conn finishes; open-loop generators ignore it, closed-loop ones
	// schedule the connection's next request.
	OnComplete(s *Sim, conn int, now sim.Time)
}

// newLoadGen constructs the named generator.
func newLoadGen(cfg Config) (LoadGen, error) {
	switch cfg.LoadGen {
	case LoadOpenLoop:
		return openLoopGen{}, nil
	case LoadClosedLoop:
		if cfg.ClosedLoopConnections <= 0 {
			return nil, fmt.Errorf("server: closed-loop load needs ClosedLoopConnections > 0")
		}
		return closedLoopGen{}, nil
	case LoadBursty:
		if cfg.RatePerSec <= 0 {
			return nil, fmt.Errorf("server: bursty load needs RatePerSec > 0")
		}
		on, off := float64(cfg.BurstOnTime), float64(cfg.BurstOffTime)
		return &burstyGen{
			onRate:  cfg.RatePerSec * (on + off) / on,
			onMean:  on,
			offMean: off,
		}, nil
	default:
		return nil, fmt.Errorf("server: unknown load generator %q (known: %v)", cfg.LoadGen, LoadGens())
	}
}

// openLoopGen reproduces the seed simulator's open-loop path exactly: one
// profile-defined gap draw per arrival, starting from time zero.
type openLoopGen struct{}

func (openLoopGen) Name() string { return LoadOpenLoop }

func (openLoopGen) register(s *Sim) {
	s.kArrival = s.eng.RegisterKind(func(now sim.Time, _, _ uint64) {
		s.openLoopArrival(now)
	})
}

func (openLoopGen) Start(s *Sim) {
	if s.cfg.RatePerSec <= 0 {
		return
	}
	gap := s.cfg.Profile.Arrivals.NextGap(s.arrRand, s.cfg.RatePerSec)
	s.eng.ScheduleKindAt(gap, s.kArrival, 0, 0)
}

func (openLoopGen) OnComplete(*Sim, int, sim.Time) {}

// openLoopArrival dispatches one request and schedules the next.
func (s *Sim) openLoopArrival(now sim.Time) {
	s.dispatch(now, -1)
	gap := s.cfg.Profile.Arrivals.NextGap(s.arrRand, s.cfg.RatePerSec)
	if gap < sim.MaxTime-now {
		s.eng.ScheduleKind(gap, s.kArrival, 0, 0)
	}
}

// closedLoopGen models Mutilate agents: N connections, exponential think
// times, next request issued only after the previous response.
type closedLoopGen struct{}

func (closedLoopGen) Name() string { return LoadClosedLoop }

func (closedLoopGen) register(s *Sim) {
	s.kConn = s.eng.RegisterKind(func(now sim.Time, conn, _ uint64) {
		s.dispatch(now, int(conn))
	})
}

func (closedLoopGen) Start(s *Sim) {
	for i := 0; i < s.cfg.ClosedLoopConnections; i++ {
		// Stagger connection starts across one think time.
		start := sim.Time(s.arrRand.Exp(float64(s.cfg.ThinkTime))) + 1
		s.eng.ScheduleKindAt(start, s.kConn, uint64(i), 0)
	}
}

func (closedLoopGen) OnComplete(s *Sim, conn int, now sim.Time) {
	think := sim.Time(s.arrRand.Exp(float64(s.cfg.ThinkTime)))
	if think < 1 {
		think = 1
	}
	s.eng.ScheduleKind(think, s.kConn, uint64(conn), 0)
}

// burstyGen alternates exponentially distributed ON bursts (Poisson
// arrivals at onRate) with silent OFF gaps.
type burstyGen struct {
	onRate  float64 // instantaneous rate during a burst (1/s)
	onMean  float64 // mean burst length (ns)
	offMean float64 // mean silent gap (ns)
}

func (*burstyGen) Name() string { return LoadBursty }

func (g *burstyGen) register(s *Sim) {
	s.kBurst = s.eng.RegisterKind(func(now sim.Time, _, _ uint64) {
		g.burst(s, now)
	})
	// a0 carries the ON-window end so in-window arrivals need no state
	// beyond the generator itself.
	s.kBurstArrive = s.eng.RegisterKind(func(now sim.Time, end, _ uint64) {
		s.dispatch(now, -1)
		g.arrive(s, now, sim.Time(end))
	})
}

func (g *burstyGen) Start(s *Sim) {
	s.eng.ScheduleKindAt(1, s.kBurst, 0, 0)
}

func (*burstyGen) OnComplete(*Sim, int, sim.Time) {}

// burst runs one ON window starting now and schedules the next burst
// after an OFF gap.
func (g *burstyGen) burst(s *Sim, now sim.Time) {
	dur := sim.Time(s.arrRand.Exp(g.onMean))
	if dur < 1 {
		dur = 1
	}
	end := now + dur
	g.arrive(s, now, end)
	gap := sim.Time(s.arrRand.Exp(g.offMean))
	if gap < 1 {
		gap = 1
	}
	if end < sim.MaxTime-gap {
		s.eng.ScheduleKindAt(end+gap, s.kBurst, 0, 0)
	}
}

// arrive schedules the next arrival within the ON window [from, end].
func (g *burstyGen) arrive(s *Sim, from, end sim.Time) {
	gap := sim.Time(s.arrRand.Exp(1e9 / g.onRate))
	if gap < 1 {
		gap = 1
	}
	t := from + gap
	if t > end {
		return
	}
	s.eng.ScheduleKindAt(t, s.kBurstArrive, uint64(end), 0)
}
