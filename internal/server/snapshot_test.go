package server

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// snapCfg builds the snapshot-test node: AgileWatts platform so deep
// C-state machinery, turbo budget and snoop traffic are all live state
// the snapshot must carry.
func snapCfg() Config {
	cfg := instCfg()
	cfg.Platform = governor.AW
	cfg.SnoopRatePerSec = 20e3
	return cfg
}

// runTail drives ins through the shared post-split script — a rate
// step, a fault window, a zero-rate window, recovery — and returns
// every interval result. Parent and restored child must produce
// bit-identical tails.
func runTail(t *testing.T, ins *Instance) []IntervalResult {
	t.Helper()
	var out []IntervalResult
	out = append(out, mustInterval(t, ins, 9*sim.Millisecond, 220e3))
	ins.SetServiceInflation(3)
	ins.SetTurboCap(true, 0.25)
	out = append(out, mustInterval(t, ins, 7*sim.Millisecond, 140e3))
	ins.SetServiceInflation(0)
	ins.SetTurboCap(false, 0)
	out = append(out, mustInterval(t, ins, 6*sim.Millisecond, 0))
	out = append(out, mustInterval(t, ins, 8*sim.Millisecond, 180e3))
	return out
}

// TestSnapshotRestoreRoundTrip is the tentpole's anchor at the instance
// level: a node snapshotted mid-scenario — including under an active
// straggler+throttle fault and after a parked window — must restore to
// an instance whose entire remaining timeline is bit-identical to the
// uninterrupted parent's.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		park bool
	}{
		{name: "open-loop", mut: func(*Config) {}},
		{name: "bursty", mut: func(c *Config) { c.LoadGen = LoadBursty }},
		{name: "closed-loop", mut: func(c *Config) {
			c.LoadGen = LoadClosedLoop
			c.ClosedLoopConnections = 32
		}},
		{name: "parking", mut: func(*Config) {}, park: true},
		{name: "mysql-fixed-freq", mut: func(c *Config) {
			c.Profile = workload.MySQL()
			c.Platform = governor.KVBaseline
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := snapCfg()
			tc.mut(&cfg)
			parent, err := NewInstance(cfg, tc.park)
			if err != nil {
				t.Fatal(err)
			}
			// Pre-snapshot history: a plain window, a faulted window
			// (inflation + throttle still installed at capture time), and
			// for the parking case a parked one.
			mustInterval(t, parent, 11*sim.Millisecond, 200e3)
			parent.SetServiceInflation(2.5)
			parent.SetTurboCap(true, 0.5)
			mustInterval(t, parent, 5*sim.Millisecond, 160e3)
			if tc.park {
				parent.SetServiceInflation(0)
				parent.SetTurboCap(false, 0)
				mustInterval(t, parent, 4*sim.Millisecond, 0)
			}

			blob, err := parent.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			child, err := Restore(blob)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := child.Clock(), parent.Clock(); got != want {
				t.Fatalf("restored clock %v, parent clock %v", got, want)
			}
			if got, want := child.Parked(), parent.Parked(); got != want {
				t.Fatalf("restored parked=%v, parent parked=%v", got, want)
			}

			// The fault installed before capture must survive restore: run
			// one interval on both before the shared tail clears it.
			pf := mustInterval(t, parent, 3*sim.Millisecond, 150e3)
			cf := mustInterval(t, child, 3*sim.Millisecond, 150e3)
			if !reflect.DeepEqual(pf, cf) {
				t.Fatalf("faulted interval diverged after restore\nparent: %+v\n child: %+v", pf, cf)
			}
			parent.SetServiceInflation(0)
			parent.SetTurboCap(false, 0)
			child.SetServiceInflation(0)
			child.SetTurboCap(false, 0)

			pTail := runTail(t, parent)
			cTail := runTail(t, child)
			if !reflect.DeepEqual(pTail, cTail) {
				t.Fatalf("post-restore timeline diverged\nparent: %+v\n child: %+v", pTail, cTail)
			}
		})
	}
}

// TestSnapshotIsStable pins that Snapshot is a pure read: taking one
// does not perturb the instance (the next interval matches a never-
// snapshotted twin), and two consecutive snapshots are byte-identical.
func TestSnapshotIsStable(t *testing.T) {
	cfg := snapCfg()
	a, err := NewInstance(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInstance(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	mustInterval(t, a, 10*sim.Millisecond, 190e3)
	mustInterval(t, b, 10*sim.Millisecond, 190e3)
	s1, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("two consecutive snapshots differ")
	}
	ra := mustInterval(t, a, 10*sim.Millisecond, 190e3)
	rb := mustInterval(t, b, 10*sim.Millisecond, 190e3)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("taking a snapshot perturbed the instance")
	}
}

// TestRestoreRejectsCorruptPayloads is the strict-decode satellite:
// every truncation of a valid snapshot, trailing garbage, an unknown
// version byte, and a flipped boolean must all fail Restore — never
// yield an instance silently built from a damaged document.
func TestRestoreRejectsCorruptPayloads(t *testing.T) {
	ins, err := NewInstance(snapCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	mustInterval(t, ins, 8*sim.Millisecond, 170e3)
	blob, err := ins.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Restore(nil); err == nil {
		t.Error("Restore(nil) succeeded")
	}
	for n := 0; n < len(blob); n++ {
		if _, err := Restore(blob[:n]); err == nil {
			t.Fatalf("Restore accepted truncation to %d of %d bytes", n, len(blob))
		}
	}
	if _, err := Restore(append(append([]byte{}, blob...), 0xEE)); err == nil {
		t.Error("Restore accepted trailing garbage")
	}
	bad := append([]byte{}, blob...)
	bad[0] = snapshotVersion + 1
	if _, err := Restore(bad); err == nil {
		t.Error("Restore accepted an unknown version byte")
	}
	// A corruption that decodes cleanly must still be caught by replay
	// verification: the payload ends with the RNG stream states, so
	// flipping the final byte yields a structurally valid document whose
	// recorded state can no longer match the replay.
	tail := append([]byte{}, blob...)
	tail[len(tail)-1] ^= 0x01
	if _, err := Restore(tail); err == nil {
		t.Error("Restore accepted a payload with a corrupted verification block")
	}
}

// TestSnapshotRejectsUnserializable pins the capture-time guards: state
// that cannot travel through bytes (custom catalog, trace hook,
// unregistered workload profile) is rejected by Snapshot itself.
func TestSnapshotRejectsUnserializable(t *testing.T) {
	mk := func(mut func(*Config)) *Instance {
		cfg := snapCfg()
		mut(&cfg)
		ins, err := NewInstance(cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		return ins
	}
	cases := []struct {
		name string
		ins  *Instance
	}{
		{"custom-catalog", mk(func(c *Config) { c.Catalog = cstate.Skylake() })},
		{"trace-hook", mk(func(c *Config) {
			c.TraceHook = func(int, sim.Time, cstate.ID) {}
		})},
		{"unregistered-profile", mk(func(c *Config) {
			p := workload.Memcached()
			p.Name = "bespoke"
			c.Profile = p
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.ins.Snapshot(); err == nil {
				t.Fatal("Snapshot succeeded on an unserializable instance")
			}
		})
	}
}

// TestRunIntervalValidation is the regression net for the input checks
// that become reachable from the awserved HTTP surface: non-positive
// windows, negative/NaN/Inf rates and clock-overflowing windows must
// error descriptively and leave the instance resumable.
func TestRunIntervalValidation(t *testing.T) {
	ins, err := NewInstance(instCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name   string
		window sim.Time
		rate   float64
	}{
		{"zero-window", 0, 100e3},
		{"negative-window", -sim.Millisecond, 100e3},
		{"negative-rate", sim.Millisecond, -1},
		{"nan-rate", sim.Millisecond, math.NaN()},
		{"inf-rate", sim.Millisecond, math.Inf(1)},
		{"overflow-window", sim.MaxTime, 100e3},
	}
	for _, tc := range bad {
		if _, err := ins.RunInterval(tc.window, tc.rate); err == nil {
			t.Errorf("%s: RunInterval(%d, %g) succeeded, want error", tc.name, tc.window, tc.rate)
		}
	}
	// Every rejection must leave the instance fully usable.
	res := mustInterval(t, ins, 5*sim.Millisecond, 120e3)
	if res.Index != 0 || res.Start != instCfg().Warmup {
		t.Errorf("instance damaged by rejected inputs: first interval %+v", res)
	}
}

// FuzzSnapshotRestoreDeterminism drives the fork-determinism property
// from arbitrary inputs: run a short random interval script, snapshot
// at a fuzzer-chosen boundary, restore, and require the remainder of
// the script to replay bit-identically on parent and child.
func FuzzSnapshotRestoreDeterminism(f *testing.F) {
	f.Add(uint64(21), uint16(180), uint8(2), uint8(5), false)
	f.Add(uint64(7), uint16(40), uint8(0), uint8(3), true)
	f.Add(uint64(99), uint16(250), uint8(4), uint8(6), false)
	f.Fuzz(func(t *testing.T, seed uint64, rateK uint16, split, total uint8, park bool) {
		nIv := int(total)%6 + 2
		cut := int(split) % nIv
		if cut == 0 {
			cut = 1 // snapshot only after the instance has started
		}
		cfg := snapCfg()
		cfg.Seed = seed
		parent, err := NewInstance(cfg, park)
		if err != nil {
			t.Fatal(err)
		}
		// The interval script is a deterministic function of the fuzz
		// inputs: rates cycle through a small palette derived from rateK
		// (including zero windows when parking).
		rateAt := func(i int) float64 {
			r := float64((int(rateK)+i*37)%300) * 1e3
			if park && i%3 == 2 {
				return 0
			}
			if r == 0 {
				r = 50e3
			}
			return r
		}
		for i := 0; i < cut; i++ {
			mustInterval(t, parent, 3*sim.Millisecond, rateAt(i))
		}
		blob, err := parent.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		child, err := Restore(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := cut; i < nIv; i++ {
			pr := mustInterval(t, parent, 3*sim.Millisecond, rateAt(i))
			cr := mustInterval(t, child, 3*sim.Millisecond, rateAt(i))
			if !reflect.DeepEqual(pr, cr) {
				t.Fatalf("interval %d diverged after restore at boundary %d\nparent: %+v\n child: %+v",
					i, cut, pr, cr)
			}
		}
	})
}
