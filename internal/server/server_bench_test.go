package server

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchServiceCfg is the BenchmarkRunService configuration: the paper's
// platform (20 Skylake CPUs, Baseline C-state config) serving Memcached
// at a mid-curve 200 KQPS for a 50 ms window. One iteration is one full
// construct+warmup+measure run, the unit every experiment sweep multiplies.
func benchServiceCfg() Config {
	return Config{
		Platform:   governor.Baseline,
		Profile:    workload.Memcached(),
		RatePerSec: 200e3,
		Duration:   50 * sim.Millisecond,
		Warmup:     10 * sim.Millisecond,
		Seed:       1,
	}
}

// BenchmarkRunService measures end-to-end single-server simulation
// wall-clock: the dominant cost of every reproduced table and figure.
func BenchmarkRunService(b *testing.B) {
	cfg := benchServiceCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunConfig(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerSteadyState isolates the per-event hot path: one
// pre-warmed simulation advanced in 1 ms slices, excluding construction
// and collection. This is the loop the zero-allocation work targets.
func BenchmarkServerSteadyState(b *testing.B) {
	cfg := benchServiceCfg()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.gen.Start(s)
	s.eng.RunUntil(cfg.Warmup)
	s.eng.AdvanceTo(cfg.Warmup)
	s.col.begin(s)
	horizon := cfg.Warmup
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon += sim.Millisecond
		s.eng.RunUntil(horizon)
		s.eng.AdvanceTo(horizon)
	}
}
