package server

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/sim"
	"repro/internal/snapbuf"
	"repro/internal/workload"
)

// Snapshot format. The payload is a single versioned binary document:
//
//	byte 0       format version (snapshotVersion)
//	config block the construction Config, field by field (profile by
//	             registry name + fingerprint, platform by value)
//	park flag    the parkOnZeroRate construction argument
//	history      every RunInterval call: window, rate, and the fault
//	             state (inflation, throttle cap) live during it
//	verification engine clock, fired-event count, snoops served, and
//	             the three named RNG stream states at capture time
//
// The engine's event queue holds closures (arrival generators, snoop
// timers, package-idle callbacks), so mid-run state cannot be
// serialized directly. Instead the snapshot captures the two things the
// state is a pure function of — the construction config and the
// realized interval history — and Restore replays them through the
// normal NewInstance/RunInterval path. Replay is bit-exact by the same
// determinism guarantee the cluster layer's class collapse is built on,
// and the verification block turns that guarantee into a checked
// invariant: a restored instance whose clock, event count or RNG
// positions differ from the captured ones (a simulator change since
// capture, or a corrupted payload that still decoded) fails loudly
// instead of silently diverging.
//
// Versioning policy: the version byte is bumped on ANY change to the
// encoding or to simulation behavior that breaks replay equivalence;
// decode rejects unknown versions, truncated payloads and trailing
// bytes outright. There is no cross-version migration — a snapshot is a
// checkpoint of one simulator build, not an archival format.
const snapshotVersion = 1

// Snapshot serializes the instance so Restore can rebuild it in another
// process (or after this one exits) with bit-identical future behavior.
//
// Not every instance is snapshottable: the config must be expressible
// by value. A custom Catalog, a TraceHook, or a Profile that is not a
// registered built-in (workload.ByName) cannot travel through bytes and
// are rejected here, at capture time, rather than producing a payload
// that cannot restore.
func (ins *Instance) Snapshot() ([]byte, error) {
	cfg := ins.orig
	if cfg.Catalog != nil {
		return nil, fmt.Errorf("server: snapshot: custom C-state catalogs are not serializable (use the default catalog)")
	}
	if cfg.TraceHook != nil {
		return nil, fmt.Errorf("server: snapshot: instances with a TraceHook are not serializable")
	}
	reg, err := workload.ByName(cfg.Profile.Name)
	if err != nil {
		return nil, fmt.Errorf("server: snapshot: profile %q is not a registered built-in: %w", cfg.Profile.Name, err)
	}
	fp, ok := cfg.Profile.Fingerprint()
	if !ok {
		return nil, fmt.Errorf("server: snapshot: profile %q is not fingerprintable (live state cannot be serialized)", cfg.Profile.Name)
	}
	regFP, _ := reg.Fingerprint()
	if fp != regFP {
		return nil, fmt.Errorf("server: snapshot: profile %q differs from the registered built-in of that name", cfg.Profile.Name)
	}

	var e snapbuf.Encoder
	e.U8(snapshotVersion)

	// Config block.
	e.I64(int64(cfg.Cores))
	e.Str(cfg.Platform.Name)
	e.I64(int64(len(cfg.Platform.Menu)))
	for _, id := range cfg.Platform.Menu {
		e.U8(uint8(id))
	}
	e.Bool(cfg.Platform.Turbo)
	e.Bool(cfg.Platform.AgileWatts)
	e.Str(cfg.GovernorPolicy)
	e.Str(cfg.Profile.Name)
	e.Str(fp)
	e.I64(int64(cfg.Duration))
	e.I64(int64(cfg.Warmup))
	e.U64(cfg.Seed)
	e.Str(cfg.Dispatch)
	e.I64(int64(cfg.PackQueueCap))
	e.Str(cfg.LoadGen)
	e.I64(int64(cfg.BurstOnTime))
	e.I64(int64(cfg.BurstOffTime))
	e.F64(cfg.UncoreW)
	e.F64(cfg.Freq.BaseHz)
	e.F64(cfg.Freq.MinHz)
	e.F64(cfg.Freq.TurboHz)
	e.F64(cfg.TurboSustainedW)
	e.F64(cfg.TurboCapacityJ)
	e.F64(cfg.FixedFreqHz)
	e.F64(cfg.AWFreqLossFraction)
	e.F64(cfg.SnoopRatePerSec)
	e.I64(int64(cfg.SnoopServiceTime))
	e.I64(int64(cfg.OSNoisePeriod))
	e.I64(int64(cfg.OSNoiseDemand))
	e.Bool(cfg.PkgIdleEnabled)
	e.I64(int64(cfg.PkgEntryDelay))
	e.F64(cfg.PkgUncoreLowW)
	e.I64(int64(cfg.ClosedLoopConnections))
	e.I64(int64(cfg.ThinkTime))

	e.Bool(ins.park)

	// Interval history.
	e.I64(int64(len(ins.hist)))
	for _, h := range ins.hist {
		e.I64(int64(h.window))
		e.F64(h.rate)
		e.F64(h.inflate)
		e.Bool(h.throttle)
		e.F64(h.capFrac)
	}

	// Verification block.
	s := ins.s
	e.I64(int64(s.eng.Now()))
	e.U64(s.eng.Fired())
	e.U64(s.snoopsServed)
	for _, rng := range []interface{ State() [4]uint64 }{s.arrRand, s.svcRand, s.netRand} {
		for _, w := range rng.State() {
			e.U64(w)
		}
	}
	return e.Buf, nil
}

// Restore rebuilds an instance from a Snapshot payload: strict decode
// (unknown version, truncation and trailing bytes are errors), then a
// deterministic replay of the captured interval history through the
// normal NewInstance/RunInterval path, then verification that the
// replayed state — engine clock, fired-event count, snoop count, RNG
// stream positions — matches the captured values exactly.
func Restore(data []byte) (*Instance, error) {
	d := snapbuf.NewDecoder(data)
	if v := d.U8(); d.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("server: restore: unknown snapshot version %d (want %d)", v, snapshotVersion)
	}

	var cfg Config
	cfg.Cores = int(d.I64())
	cfg.Platform.Name = d.Str()
	if n := d.I64(); d.Err() == nil {
		if n < 0 || n > int64(cstate.NumStates) {
			return nil, fmt.Errorf("server: restore: implausible platform menu length %d", n)
		}
		for i := int64(0); i < n; i++ {
			cfg.Platform.Menu = append(cfg.Platform.Menu, cstate.ID(d.U8()))
		}
	}
	cfg.Platform.Turbo = d.Bool()
	cfg.Platform.AgileWatts = d.Bool()
	cfg.GovernorPolicy = d.Str()
	profileName := d.Str()
	profileFP := d.Str()
	cfg.Duration = sim.Time(d.I64())
	cfg.Warmup = sim.Time(d.I64())
	cfg.Seed = d.U64()
	cfg.Dispatch = d.Str()
	cfg.PackQueueCap = int(d.I64())
	cfg.LoadGen = d.Str()
	cfg.BurstOnTime = sim.Time(d.I64())
	cfg.BurstOffTime = sim.Time(d.I64())
	cfg.UncoreW = d.F64()
	cfg.Freq.BaseHz = d.F64()
	cfg.Freq.MinHz = d.F64()
	cfg.Freq.TurboHz = d.F64()
	cfg.TurboSustainedW = d.F64()
	cfg.TurboCapacityJ = d.F64()
	cfg.FixedFreqHz = d.F64()
	cfg.AWFreqLossFraction = d.F64()
	cfg.SnoopRatePerSec = d.F64()
	cfg.SnoopServiceTime = sim.Time(d.I64())
	cfg.OSNoisePeriod = sim.Time(d.I64())
	cfg.OSNoiseDemand = sim.Time(d.I64())
	cfg.PkgIdleEnabled = d.Bool()
	cfg.PkgEntryDelay = sim.Time(d.I64())
	cfg.PkgUncoreLowW = d.F64()
	cfg.ClosedLoopConnections = int(d.I64())
	cfg.ThinkTime = sim.Time(d.I64())

	park := d.Bool()

	nhist := d.I64()
	if d.Err() == nil && (nhist < 0 || nhist > int64(len(data))) {
		return nil, fmt.Errorf("server: restore: implausible interval count %d", nhist)
	}
	var hist []intervalRecord
	for i := int64(0); i < nhist && d.Err() == nil; i++ {
		hist = append(hist, intervalRecord{
			window:   sim.Time(d.I64()),
			rate:     d.F64(),
			inflate:  d.F64(),
			throttle: d.Bool(),
			capFrac:  d.F64(),
		})
	}

	wantClock := sim.Time(d.I64())
	wantFired := d.U64()
	wantSnoops := d.U64()
	var wantRNG [3][4]uint64
	for i := range wantRNG {
		for j := range wantRNG[i] {
			wantRNG[i][j] = d.U64()
		}
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("server: restore: %w", err)
	}

	prof, err := workload.ByName(profileName)
	if err != nil {
		return nil, fmt.Errorf("server: restore: %w", err)
	}
	if fp, _ := prof.Fingerprint(); fp != profileFP {
		return nil, fmt.Errorf("server: restore: profile %q has changed since capture (fingerprint mismatch)", profileName)
	}
	cfg.Profile = prof

	ins, err := NewInstance(cfg, park)
	if err != nil {
		return nil, fmt.Errorf("server: restore: %w", err)
	}
	for i, h := range hist {
		ins.SetServiceInflation(h.inflate)
		ins.SetTurboCap(h.throttle, h.capFrac)
		if _, err := ins.RunInterval(h.window, h.rate); err != nil {
			return nil, fmt.Errorf("server: restore: replay interval %d: %w", i, err)
		}
	}

	s := ins.s
	if got := s.eng.Now(); got != wantClock {
		return nil, fmt.Errorf("server: restore: replay clock %d differs from captured %d (simulator changed since capture?)", got, wantClock)
	}
	if got := s.eng.Fired(); got != wantFired {
		return nil, fmt.Errorf("server: restore: replay fired %d events, captured run fired %d (simulator changed since capture?)", got, wantFired)
	}
	if got := s.snoopsServed; got != wantSnoops {
		return nil, fmt.Errorf("server: restore: replay served %d snoops, captured run served %d (simulator changed since capture?)", got, wantSnoops)
	}
	for i, rng := range []interface{ State() [4]uint64 }{s.arrRand, s.svcRand, s.netRand} {
		if got := rng.State(); got != wantRNG[i] {
			return nil, fmt.Errorf("server: restore: RNG stream %d position diverged from capture (simulator changed since capture?)", i)
		}
	}
	return ins, nil
}
