package server

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPropertyServerInvariants fuzzes platform configurations, loads and
// seeds, and checks the physical invariants every run must satisfy.
func TestPropertyServerInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz run skipped in -short")
	}
	profiles := []workload.Profile{workload.Memcached(), workload.Kafka(), workload.MySQL()}
	configs := governor.AllConfigs()
	f := func(cfgIdx, profIdx uint8, rateK uint16, seed uint64, policy uint8) bool {
		cfg := configs[int(cfgIdx)%len(configs)]
		prof := profiles[int(profIdx)%len(profiles)]
		policies := []string{governor.PolicyMenu, governor.PolicyStatic, governor.PolicyLadder}
		rate := float64(rateK%600) * 1000
		res, err := RunConfig(Config{
			Platform:       cfg,
			GovernorPolicy: policies[int(policy)%len(policies)],
			Profile:        prof,
			RatePerSec:     rate,
			Duration:       30 * sim.Millisecond,
			Warmup:         5 * sim.Millisecond,
			Seed:           seed,
		})
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		// Residency is a distribution.
		sum := 0.0
		for id, v := range res.Residency {
			if v < -1e-9 {
				t.Logf("negative residency %v", cstate.ID(id))
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Logf("residency sum %v", sum)
			return false
		}
		// Disabled states never visited.
		for _, id := range cstate.Skylake().IdleStates() {
			if !cfg.Enabled(id) && res.Residency[id] != 0 {
				t.Logf("disabled state %v has residency", id)
				return false
			}
		}
		// Power within physical bounds (0..turbo C0 power).
		if res.AvgCorePowerW < 0.05 || res.AvgCorePowerW > 9 {
			t.Logf("implausible core power %v", res.AvgCorePowerW)
			return false
		}
		// Energy consistency: avg power x window x cores == energy.
		window := res.MeasuredDuration.Seconds()
		wantE := res.AvgCorePowerW * window * 20
		if res.EnergyJ > 0 && math.Abs(wantE-res.EnergyJ)/res.EnergyJ > 1e-6 {
			t.Logf("energy %v vs %v", res.EnergyJ, wantE)
			return false
		}
		// Throughput cannot exceed the offered load's burst ceiling: the
		// Kafka MMPP process boosts its rate 4x while bursting, and a
		// short window can land mostly inside a burst.
		if rate > 0 && res.CompletedPerSec > rate*5+1000 {
			t.Logf("throughput %v exceeds offered burst ceiling %v", res.CompletedPerSec, rate)
			return false
		}
		// Latency summaries ordered.
		sErr := res.Server
		if sErr.P50US > sErr.P99US+1e-9 || sErr.P99US > sErr.MaxUS+1e-9 {
			t.Logf("latency quantiles out of order: %+v", sErr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDispatchLoadGenInvariants fuzzes the full dispatch x
// load-generator matrix against the ring-buffer request queues: every
// combination must terminate (no deadlock or stall between generator,
// dispatcher and per-core rings), conserve requests (every summary
// counts the same completions, and throughput never exceeds the offered
// burst ceiling), and keep the latency decomposition consistent.
func TestPropertyDispatchLoadGenInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz run skipped in -short")
	}
	dispatches := DispatchPolicies()
	loadgens := []string{LoadOpenLoop, LoadBursty, LoadClosedLoop}
	f := func(dispIdx, lgIdx uint8, rateK uint16, conns uint8, seed uint64) bool {
		cfg := Config{
			Platform:   governor.Baseline,
			Profile:    workload.Memcached(),
			Duration:   25 * sim.Millisecond,
			Warmup:     5 * sim.Millisecond,
			Seed:       seed,
			Dispatch:   dispatches[int(dispIdx)%len(dispatches)],
			LoadGen:    loadgens[int(lgIdx)%len(loadgens)],
			RatePerSec: float64(rateK%500)*1000 + 1000,
		}
		if cfg.LoadGen == LoadClosedLoop {
			cfg.ClosedLoopConnections = int(conns)%96 + 1
		}
		res, err := RunConfig(cfg)
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		// Conservation: server, end-to-end and the completion counter
		// must all describe the same set of foreground requests.
		if res.Server.Count != res.EndToEnd.Count {
			t.Logf("server count %d != e2e count %d", res.Server.Count, res.EndToEnd.Count)
			return false
		}
		window := res.MeasuredDuration.Seconds()
		completed := res.CompletedPerSec * window
		if float64(res.Server.Count) < completed-0.5 || float64(res.Server.Count) > completed+0.5 {
			t.Logf("summary count %d inconsistent with throughput %v over %vs",
				res.Server.Count, res.CompletedPerSec, window)
			return false
		}
		// The latency decomposition sees every started foreground
		// request exactly once per component.
		bd := res.Breakdown
		if bd.Wake.Count != bd.Queue.Count || bd.Queue.Count != bd.Service.Count {
			t.Logf("breakdown counts diverge: %d/%d/%d",
				bd.Wake.Count, bd.Queue.Count, bd.Service.Count)
			return false
		}
		// Open-loop generators cannot complete more than the offered
		// burst ceiling (bursty boosts its in-burst rate by the on/off
		// duty-cycle factor, default 4x; short windows can land inside a
		// burst). Closed loops are bounded by connections per think+RTT.
		if cfg.LoadGen != LoadClosedLoop && cfg.RatePerSec > 0 {
			if res.CompletedPerSec > cfg.RatePerSec*5+1000 {
				t.Logf("throughput %v exceeds offered ceiling for %v", res.CompletedPerSec, cfg.RatePerSec)
				return false
			}
		}
		// Per-request identity wake+queue+service == server latency means
		// the component means must track the server mean closely (the
		// sets differ only by requests in flight across the window
		// edges).
		if res.Server.Count > 100 {
			sum := bd.Wake.AvgUS + bd.Queue.AvgUS + bd.Service.AvgUS
			if sum > res.Server.AvgUS*1.2+1 || sum < res.Server.AvgUS*0.8-1 {
				t.Logf("decomposition %v+%v+%v far from server avg %v",
					bd.Wake.AvgUS, bd.Queue.AvgUS, bd.Service.AvgUS, res.Server.AvgUS)
				return false
			}
		}
		// Every latency summary must be internally ordered.
		for _, s := range []LatencySummary{res.Server, res.EndToEnd, bd.Wake, bd.Queue, bd.Service} {
			if s.Count == 0 {
				continue
			}
			if s.P50US > s.P95US+1e-9 || s.P95US > s.P99US+1e-9 ||
				s.P99US > s.P999US+1e-9 || s.P999US > s.MaxUS+1e-9 {
				t.Logf("quantiles out of order: %+v", s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopEventsServedAndCounted(t *testing.T) {
	cfg := quickCfg(governor.TC6ANoC6NoC1E, 10e3)
	cfg.SnoopRatePerSec = 100e3
	res := run(t, cfg)
	if res.SnoopsServed == 0 {
		t.Fatal("no snoops served")
	}
	quiet := run(t, quickCfg(governor.TC6ANoC6NoC1E, 10e3))
	if res.AvgCorePowerW <= quiet.AvgCorePowerW {
		t.Fatal("snoop service did not raise power")
	}
}

func TestSnoopsNotServedInC6(t *testing.T) {
	// A core flushed into C6 does not service snoops (the uncore snoop
	// filter answers them).
	cfg := Config{
		Platform:        governor.Config{Name: "C6only", Menu: []cstate.ID{cstate.C6}},
		GovernorPolicy:  governor.PolicyStatic,
		Profile:         workload.Memcached(),
		RatePerSec:      0,
		Duration:        60 * sim.Millisecond,
		Warmup:          10 * sim.Millisecond,
		Seed:            5,
		SnoopRatePerSec: 100e3,
		OSNoisePeriod:   -1,
	}
	res := run(t, cfg)
	if res.SnoopsServed != 0 {
		t.Fatalf("C6 cores served %d snoops", res.SnoopsServed)
	}
}
