package server

import (
	"reflect"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// instCfg is the shared instance-test node: short warmup, every
// background process on defaults.
func instCfg() Config {
	return Config{
		Platform: governor.Baseline,
		Profile:  workload.Memcached(),
		Warmup:   5 * sim.Millisecond,
		Seed:     21,
	}
}

func mustInterval(t *testing.T, ins *Instance, window sim.Time, rate float64) IntervalResult {
	t.Helper()
	res, err := ins.RunInterval(window, rate)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFirstIntervalMatchesOneShotRun is the resumable engine's anchor:
// an Instance's first interval at a constant rate must reproduce the
// one-shot RunConfig of the same window bit-for-bit — identical Result,
// every field. This is what lets the warm cluster path inherit the
// stationary simulator's golden-pinned behavior.
func TestFirstIntervalMatchesOneShotRun(t *testing.T) {
	for _, loadgen := range []string{LoadOpenLoop, LoadBursty} {
		cfg := instCfg()
		cfg.LoadGen = loadgen
		cfg.SnoopRatePerSec = 20e3 // exercise the snoop-count bookkeeping too

		oneShot := cfg
		oneShot.RatePerSec = 150e3
		oneShot.Duration = 40 * sim.Millisecond
		want, err := RunConfig(oneShot)
		if err != nil {
			t.Fatal(err)
		}

		ins, err := NewInstance(cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		got := mustInterval(t, ins, 40*sim.Millisecond, 150e3)
		if got.Start != cfg.Warmup || got.End != cfg.Warmup+40*sim.Millisecond {
			t.Errorf("%s: interval window [%v,%v), want warmup-aligned", loadgen, got.Start, got.End)
		}
		if !reflect.DeepEqual(got.Result, want) {
			t.Errorf("%s: first interval diverged from one-shot run\n got: %+v\nwant: %+v",
				loadgen, got.Result, want)
		}
	}
}

// TestIntervalSplitIdentity is the pause/resume property test: under a
// constant rate, RunInterval(a) followed by RunInterval(b) must be
// event-for-event identical to a single RunInterval(a+b), across every
// load generator x dispatch policy combination. Identity is asserted
// three ways: the engine fired the same number of events, the split
// windows' completions sum to the joint window's, and a further probe
// interval (same rate, same window) returns a bit-identical Result —
// which can only happen if the full simulation state (cores, rings,
// RNG streams, machines) matches after the split.
func TestIntervalSplitIdentity(t *testing.T) {
	const (
		a    = 17 * sim.Millisecond
		bWin = 23 * sim.Millisecond
		c    = 15 * sim.Millisecond
		rate = 180e3
	)
	for _, loadgen := range LoadGens() {
		for _, dispatch := range DispatchPolicies() {
			cfg := instCfg()
			cfg.LoadGen = loadgen
			cfg.Dispatch = dispatch
			if loadgen == LoadClosedLoop {
				cfg.ClosedLoopConnections = 32
			}
			split, err := NewInstance(cfg, false)
			if err != nil {
				t.Fatal(err)
			}
			joint, err := NewInstance(cfg, false)
			if err != nil {
				t.Fatal(err)
			}
			sa := mustInterval(t, split, a, rate)
			sb := mustInterval(t, split, bWin, rate)
			jab := mustInterval(t, joint, a+bWin, rate)

			name := loadgen + "/" + dispatch
			if got, want := split.s.eng.Fired(), joint.s.eng.Fired(); got != want {
				t.Errorf("%s: split fired %d events, joint fired %d", name, got, want)
			}
			if split.Clock() != joint.Clock() {
				t.Errorf("%s: split clock %v != joint clock %v", name, split.Clock(), joint.Clock())
			}
			if got, want := sa.Result.Server.Count+sb.Result.Server.Count, jab.Result.Server.Count; got != want {
				t.Errorf("%s: split completions %d != joint completions %d", name, got, want)
			}
			// The probe interval sees the post-split state: bit-identical
			// Results prove the split left no trace in the simulation.
			sp := mustInterval(t, split, c, rate)
			jp := mustInterval(t, joint, c, rate)
			if sp.Start != jp.Start || sp.End != jp.End {
				t.Errorf("%s: probe window [%v,%v) != joint [%v,%v)", name, sp.Start, sp.End, jp.Start, jp.End)
			}
			if !reflect.DeepEqual(sp.Result, jp.Result) {
				t.Errorf("%s: probe interval after split diverged from joint run\n got: %+v\nwant: %+v",
					name, sp.Result, jp.Result)
			}
		}
	}
}

// TestInstanceWarmupPaidOnce pins the warmup amortization: interval N>0
// begins exactly at interval N-1's end — no re-warmup, no clock gap.
func TestInstanceWarmupPaidOnce(t *testing.T) {
	ins, err := NewInstance(instCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := instCfg().Warmup
	for i := 0; i < 5; i++ {
		res := mustInterval(t, ins, 10*sim.Millisecond, 100e3)
		if res.Index != i {
			t.Fatalf("interval index %d, want %d", res.Index, i)
		}
		if res.Start != prevEnd {
			t.Fatalf("interval %d starts at %v, want contiguous %v", i, res.Start, prevEnd)
		}
		if res.Result.MeasuredDuration != 10*sim.Millisecond {
			t.Fatalf("interval %d measured %v, want 10ms", i, res.Result.MeasuredDuration)
		}
		prevEnd = res.End
	}
}

// TestInstanceParkReachesDeepIdle pins the real simulated park: a
// zero-rate interval on a park-enabled instance drains the node into
// the deepest menu state and package idle, and the power collapses to
// the package floor — without any config rewrite or fresh simulation.
func TestInstanceParkReachesDeepIdle(t *testing.T) {
	ins, err := NewInstance(instCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Serve load first so the park starts from a working node.
	mustInterval(t, ins, 20*sim.Millisecond, 200e3)
	park := mustInterval(t, ins, 30*sim.Millisecond, 0)
	if !park.Parked {
		t.Fatal("zero-rate interval not reported parked")
	}
	// Requests in flight at the boundary drain into the parked window (a
	// handful at most); no new arrivals join them.
	if park.Result.Server.Count > 20 {
		t.Errorf("parked interval completed %d foreground requests, want only the in-flight drain",
			park.Result.Server.Count)
	}
	// Deepest Baseline menu state is C6: the parked window must be
	// dominated by it once the drain transition finishes.
	if got := park.Result.Residency[cstate.C6]; got < 0.9 {
		t.Errorf("parked C6 residency %.4f, want > 0.9 (residency %v)", got, park.Result.Residency)
	}
	if park.Result.PkgIdleFraction < 0.9 {
		t.Errorf("parked package-idle fraction %.4f, want > 0.9", park.Result.PkgIdleFraction)
	}
	if park.Result.UncoreAvgW >= 29 {
		t.Errorf("parked uncore %.2fW, want deep-idle floor", park.Result.UncoreAvgW)
	}
	if park.Result.PackagePowerW >= 15 {
		t.Errorf("parked package power %.2fW, want < 15W", park.Result.PackagePowerW)
	}
	// Unpark: load returns, the node serves again, and the first
	// arrivals pay a real C6 exit (visible in the wake-latency tail).
	wake := mustInterval(t, ins, 20*sim.Millisecond, 200e3)
	if wake.Parked {
		t.Fatal("loaded interval still reported parked")
	}
	if wake.Result.Server.Count == 0 {
		t.Fatal("no completions after unpark")
	}
	exitUS := float64(cstate.Skylake().ExitLatency(cstate.C6)) / 1e3
	if wake.Result.Breakdown.Wake.MaxUS < exitUS {
		t.Errorf("post-unpark max wake %.2fus below the C6 exit latency %.2fus — park transition not simulated",
			wake.Result.Breakdown.Wake.MaxUS, exitUS)
	}
}

// TestBurstyParkSuppressesResidualOnWindow is the regression for the
// bursty/park interaction: an ON window straddling the park boundary
// must not keep dispatching at the previous interval's burst rate into
// a window reported as Parked — only the in-flight drain may complete.
func TestBurstyParkSuppressesResidualOnWindow(t *testing.T) {
	cfg := instCfg()
	cfg.LoadGen = LoadBursty
	// Long ON windows with short gaps, so the park boundary lands inside
	// an ON window and the stale arrival chain would run well past it.
	cfg.BurstOnTime = 10 * sim.Millisecond
	cfg.BurstOffTime = 500 * sim.Microsecond
	ins, err := NewInstance(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	mustInterval(t, ins, 20*sim.Millisecond, 200e3)
	park := mustInterval(t, ins, 30*sim.Millisecond, 0)
	if !park.Parked {
		t.Fatal("zero-rate bursty interval not reported parked")
	}
	if park.Result.Server.Count > 20 {
		t.Errorf("parked bursty interval completed %d foreground requests, want only the in-flight drain",
			park.Result.Server.Count)
	}
	if got := park.Result.Residency[cstate.C6]; got < 0.9 {
		t.Errorf("parked bursty C6 residency %.4f, want > 0.9", got)
	}
}

// TestInstanceParkedFromStart pins parking a node that never served
// load: the whole first interval (warmup included) runs quiesced.
func TestInstanceParkedFromStart(t *testing.T) {
	ins, err := NewInstance(instCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	park := mustInterval(t, ins, 30*sim.Millisecond, 0)
	if !park.Parked || park.Result.Server.Count != 0 {
		t.Fatalf("cold park: parked=%v completions=%d", park.Parked, park.Result.Server.Count)
	}
	if got := park.Result.Residency[cstate.C6]; got < 0.9 {
		t.Errorf("cold-parked C6 residency %.4f, want > 0.9", got)
	}
	if park.Result.PackagePowerW >= 15 {
		t.Errorf("cold-parked package power %.2fW, want < 15W", park.Result.PackagePowerW)
	}
}

// TestParkEngagesPackageIdleWhenAlreadyDeep is the regression for the
// edge-trigger corner: package-idle arming normally happens in
// coreBecameIdle when the last core *transitions* to idle — but if
// every core already sits resident in the deepest state when park() is
// called (static governor, tickless, no in-flight work), nothing will
// transition during the quiesced window, so park itself must arm the
// entry timer or the parked window burns full uncore power forever.
func TestParkEngagesPackageIdleWhenAlreadyDeep(t *testing.T) {
	cfg := instCfg()
	cfg.GovernorPolicy = governor.PolicyStatic
	cfg.OSNoisePeriod = -1 // tickless even before the park
	ins, err := NewInstance(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	s := ins.s
	// Let the construction-time entry flows complete: every core ends
	// resident in the deepest menu state with pkgIdleOn still false
	// (PkgIdleEnabled unset), so no entry timer is pending.
	s.eng.RunTo(sim.Millisecond)
	for i, c := range s.cores {
		if c.machine.Phase() != cstate.PhaseIdle || c.machine.State() != s.deepest {
			t.Fatalf("core %d not resident in deepest state before park: %v/%v",
				i, c.machine.Phase(), c.machine.State())
		}
	}
	if s.idleCores != len(s.cores) || s.pkgEvent != nil || s.pkgActive {
		t.Fatalf("precondition: idleCores=%d pkgEvent=%v pkgActive=%v",
			s.idleCores, s.pkgEvent != nil, s.pkgActive)
	}
	s.park(s.eng.Now())
	s.eng.RunTo(s.eng.Now() + 10*sim.Millisecond)
	if !s.pkgActive {
		t.Fatal("all cores already deep at park boundary: package idle never engaged")
	}
}

// TestInstanceRejectsBadIntervals covers RunInterval validation.
func TestInstanceRejectsBadIntervals(t *testing.T) {
	ins, err := NewInstance(instCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.RunInterval(0, 1e3); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := ins.RunInterval(-sim.Millisecond, 1e3); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := ins.RunInterval(sim.Millisecond, -1); err == nil {
		t.Error("negative rate accepted")
	}
	// Closed-loop load ignores interval rates, so a park-enabled
	// closed-loop instance would report Parked=true while still serving.
	closed := instCfg()
	closed.ClosedLoopConnections = 16
	if _, err := NewInstance(closed, true); err == nil {
		t.Error("park-enabled closed-loop instance accepted")
	}
	if _, err := NewInstance(closed, false); err != nil {
		t.Errorf("park-free closed-loop instance rejected: %v", err)
	}
}

// TestIntervalSteadyStateAllocs pins the warm path's per-epoch
// allocation budget: once an Instance is warm, advancing one interval
// allocates only what the fresh IntervalResult itself needs (per-core
// stats slice, five latency summaries) — a fixed handful of small
// allocations, independent of window length and request count.
func TestIntervalSteadyStateAllocs(t *testing.T) {
	ins, err := NewInstance(instCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Warm everything: rings, histogram buckets, event free list.
	for i := 0; i < 4; i++ {
		mustInterval(t, ins, 10*sim.Millisecond, 200e3)
	}
	mustInterval(t, ins, 10*sim.Millisecond, 0) // park path warm too
	mustInterval(t, ins, 10*sim.Millisecond, 200e3)
	rate := 200e3
	avg := testing.AllocsPerRun(10, func() {
		if _, err := ins.RunInterval(10*sim.Millisecond, rate); err != nil {
			t.Fatal(err)
		}
	})
	// Result assembly allocates the PerCore slice plus one Quantiles
	// scratch per histogram; pin a tight ceiling so regressions surface.
	const maxAllocs = 16
	if avg > maxAllocs {
		t.Fatalf("steady-state RunInterval allocates %v per epoch, want <= %d", avg, maxAllocs)
	}
}
