package server

import (
	"testing"

	"repro/internal/sim"
)

// TestSteadyStateZeroAllocs pins the zero-allocation property of the
// server hot path: once a simulation is warm (rings sized, histograms
// grown, event free list populated), advancing simulated time must not
// allocate at all — requests live in per-core rings, events are recycled
// typed-kind structs, and the collector hooks append nothing. A nonzero
// value here means a future change reintroduced per-event garbage.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cfg := benchServiceCfg()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.gen.Start(s)
	s.eng.RunUntil(cfg.Warmup)
	s.eng.AdvanceTo(cfg.Warmup)
	s.col.begin(s)
	// Let the measured phase run long enough that every latency
	// histogram has seen its tail buckets.
	horizon := cfg.Warmup + 40*sim.Millisecond
	s.eng.RunUntil(horizon)
	s.eng.AdvanceTo(horizon)
	avg := testing.AllocsPerRun(20, func() {
		horizon += sim.Millisecond
		s.eng.RunUntil(horizon)
		s.eng.AdvanceTo(horizon)
	})
	if avg != 0 {
		t.Fatalf("steady-state hot path allocates %v allocs per simulated ms, want 0", avg)
	}
}
