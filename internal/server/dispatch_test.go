package server

import (
	"math"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// --- Dispatch policy behavior ---------------------------------------------

func dispatchCfg(policy string, rate float64) Config {
	cfg := quickCfg(governor.Baseline, rate)
	cfg.Dispatch = policy
	return cfg
}

func TestDispatchPoliciesDeterministic(t *testing.T) {
	for _, policy := range DispatchPolicies() {
		a := run(t, dispatchCfg(policy, 200e3))
		b := run(t, dispatchCfg(policy, 200e3))
		if a.AvgCorePowerW != b.AvgCorePowerW || a.Server.P99US != b.Server.P99US ||
			a.Residency != b.Residency || a.MaxQueueDepth != b.MaxQueueDepth {
			t.Errorf("%s: same seed produced different results", policy)
		}
	}
}

func TestDispatchPoliciesDistinct(t *testing.T) {
	// The four policies must actually behave differently: compare the
	// residency/latency signature of each pair at a mid load point.
	results := make(map[string]Result)
	for _, policy := range DispatchPolicies() {
		results[policy] = run(t, dispatchCfg(policy, 200e3))
	}
	policies := DispatchPolicies()
	for i := 0; i < len(policies); i++ {
		for j := i + 1; j < len(policies); j++ {
			a, b := results[policies[i]], results[policies[j]]
			if a.Residency == b.Residency && a.Server.P99US == b.Server.P99US {
				t.Errorf("%s and %s produced identical results", policies[i], policies[j])
			}
		}
	}
}

func TestLeastLoadedBoundsQueueDepth(t *testing.T) {
	// Join-shortest-queue never builds a deeper backlog than blind
	// round-robin under the same arrivals.
	rr := run(t, dispatchCfg(DispatchRoundRobin, 500e3))
	ll := run(t, dispatchCfg(DispatchLeastLoaded, 500e3))
	if ll.MaxQueueDepth > rr.MaxQueueDepth {
		t.Errorf("least-loaded max queue %d > round-robin %d",
			ll.MaxQueueDepth, rr.MaxQueueDepth)
	}
	if ll.MaxQueueDepth <= 0 {
		t.Error("least-loaded recorded no queue depth")
	}
}

func TestPackedConsolidatesLoad(t *testing.T) {
	// Packing must skew busy time onto low-numbered cores: core 0 burns
	// clearly more power than the last core, and the last core reaches
	// deeper idle states than it does under round-robin.
	packed := run(t, dispatchCfg(DispatchPacked, 100e3))
	rr := run(t, dispatchCfg(DispatchRoundRobin, 100e3))

	first, last := packed.PerCore[0], packed.PerCore[len(packed.PerCore)-1]
	if first.AvgPowerW < 2*last.AvgPowerW {
		t.Errorf("packed dispatch not consolidating: core0 %.3fW vs last %.3fW",
			first.AvgPowerW, last.AvgPowerW)
	}
	deep := func(cs CoreStats) float64 {
		return cs.Residency[cstate.C1E] + cs.Residency[cstate.C6] +
			cs.Residency[cstate.C6A] + cs.Residency[cstate.C6AE]
	}
	rrLast := rr.PerCore[len(rr.PerCore)-1]
	if deep(last) <= deep(rrLast) {
		t.Errorf("packed last core deep residency %.3f not above round-robin %.3f",
			deep(last), deep(rrLast))
	}
	// Consolidation pays for power with queueing tail.
	if packed.Server.P99US <= rr.Server.P99US {
		t.Errorf("packed p99 %.1fus not above round-robin %.1fus",
			packed.Server.P99US, rr.Server.P99US)
	}
}

func TestRandomDispatchSpreadsLoad(t *testing.T) {
	res := run(t, dispatchCfg(DispatchRandom, 300e3))
	// Every core must have seen work (uniform random over 150ms windows).
	for _, cs := range res.PerCore {
		if cs.Residency[cstate.C0] <= 0 {
			t.Fatalf("core %d saw no work under random dispatch", cs.Core)
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	cfg := dispatchCfg("fifo", 100e3)
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown dispatch policy accepted")
	}
	lg := quickCfg(governor.Baseline, 100e3)
	lg.LoadGen = "replay"
	if _, err := New(lg); err == nil {
		t.Fatal("unknown load generator accepted")
	}
}

// --- Load generators -------------------------------------------------------

func TestBurstyLoadGen(t *testing.T) {
	cfg := quickCfg(governor.Baseline, 100e3)
	cfg.LoadGen = LoadBursty
	bursty := run(t, cfg)
	open := run(t, quickCfg(governor.Baseline, 100e3))

	// The long-run average rate is preserved (ON/OFF duty scaling).
	if math.Abs(bursty.CompletedPerSec-100e3)/100e3 > 0.15 {
		t.Errorf("bursty throughput %.0f, want ~100K", bursty.CompletedPerSec)
	}
	// Determinism.
	again := run(t, cfg)
	if bursty.AvgCorePowerW != again.AvgCorePowerW || bursty.Residency != again.Residency {
		t.Error("bursty generator not deterministic")
	}
	// Bursts queue: the tail must be clearly worse than open-loop.
	if bursty.Server.P99US <= open.Server.P99US {
		t.Errorf("bursty p99 %.1fus not above open-loop %.1fus",
			bursty.Server.P99US, open.Server.P99US)
	}
}

func TestClosedLoopViaLoadGenName(t *testing.T) {
	cfg := quickCfg(governor.Baseline, 0)
	cfg.LoadGen = LoadClosedLoop
	cfg.ClosedLoopConnections = 50
	res := run(t, cfg)
	if res.CompletedPerSec <= 0 {
		t.Fatal("closed loop completed nothing")
	}
	// Selecting closed-loop without connections is rejected.
	bad := quickCfg(governor.Baseline, 0)
	bad.LoadGen = LoadClosedLoop
	if _, err := New(bad); err == nil {
		t.Fatal("closed-loop with zero connections accepted")
	}
}

// --- Round-robin regression goldens ---------------------------------------

// golden holds Result values recorded from the pre-refactor simulator
// (the monolithic round-robin Sim) for the paper's named configurations:
// Memcached, 150ms window, 20ms warmup, seed 42. The decomposed
// subsystems must reproduce these bit-for-bit — any drift means the
// refactor changed model behavior, not just structure.
type golden struct {
	platform      governor.Config
	rate          float64
	avgCoreW      float64
	pkgW          float64
	energyJ       float64
	completed     float64
	serverAvgUS   float64
	serverP99US   float64
	e2eAvgUS      float64
	e2eP99US      float64
	residency     [cstate.NumStates]float64
	transitions   [cstate.NumStates]float64
	turboFraction float64
}

func TestRoundRobinMatchesSeedGoldens(t *testing.T) {
	goldens := []golden{
		{
			platform: governor.Baseline, rate: 100e3,
			avgCoreW: 1.1045380025599483, pkgW: 52.09076005119897,
			energyJ: 3.313614007679845, completed: 101386.66666666667,
			serverAvgUS: 17.95218621778008, serverP99US: 57.375,
			e2eAvgUS: 134.65889847448761, e2eP99US: 248.5,
			residency:     [cstate.NumStates]float64{0.100526333, 0, 0, 0.899473667, 0, 0},
			transitions:   [cstate.NumStates]float64{118220, 0, 0, 118233.33333333334, 0, 0},
			turboFraction: 1,
		},
		{
			platform: governor.AW, rate: 100e3,
			avgCoreW: 0.5176733256486127, pkgW: 40.353466512972254,
			energyJ: 1.5530199769458382, completed: 101386.66666666667,
			serverAvgUS: 17.995664058390336, serverP99US: 57.625,
			e2eAvgUS: 134.70237631509735, e2eP99US: 248.5,
			residency:     [cstate.NumStates]float64{0.10073905533333333, 0, 0, 0, 0.8992609446666666, 0},
			transitions:   [cstate.NumStates]float64{118200, 0, 0, 0, 118213.33333333334, 0},
			turboFraction: 1,
		},
		{
			platform: governor.TC6ANoC6NoC1E, rate: 200e3,
			avgCoreW: 0.8404972503892612, pkgW: 46.809945007785224,
			energyJ: 2.5214917511677837, completed: 201493.33333333334,
			serverAvgUS: 10.173026766807757, serverP99US: 53.125,
			e2eAvgUS: 127.09207987030268, e2eP99US: 239.5,
			residency:     [cstate.NumStates]float64{0.10213853133333334, 0, 0.8978614686666667, 0, 0, 0},
			transitions:   [cstate.NumStates]float64{217966.6666666667, 0, 217993.33333333334, 0, 0, 0},
			turboFraction: 1,
		},
	}
	for _, g := range goldens {
		res := run(t, Config{
			Platform:   g.platform,
			Profile:    workload.Memcached(),
			RatePerSec: g.rate,
			Duration:   150 * sim.Millisecond,
			Warmup:     20 * sim.Millisecond,
			Seed:       42,
		})
		check := func(field string, got, want float64) {
			if got != want {
				t.Errorf("%s @ %.0f: %s = %v, want %v (seed golden)",
					g.platform.Name, g.rate, field, got, want)
			}
		}
		check("AvgCorePowerW", res.AvgCorePowerW, g.avgCoreW)
		check("PackagePowerW", res.PackagePowerW, g.pkgW)
		check("EnergyJ", res.EnergyJ, g.energyJ)
		check("CompletedPerSec", res.CompletedPerSec, g.completed)
		check("Server.AvgUS", res.Server.AvgUS, g.serverAvgUS)
		check("Server.P99US", res.Server.P99US, g.serverP99US)
		check("EndToEnd.AvgUS", res.EndToEnd.AvgUS, g.e2eAvgUS)
		check("EndToEnd.P99US", res.EndToEnd.P99US, g.e2eP99US)
		check("TurboFraction", res.TurboFraction, g.turboFraction)
		if res.Residency != g.residency {
			t.Errorf("%s @ %.0f: Residency = %v, want %v",
				g.platform.Name, g.rate, res.Residency, g.residency)
		}
		if res.TransitionsPerSec != g.transitions {
			t.Errorf("%s @ %.0f: TransitionsPerSec = %v, want %v",
				g.platform.Name, g.rate, res.TransitionsPerSec, g.transitions)
		}
	}
}
