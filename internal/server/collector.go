package server

import (
	"repro/internal/cstate"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Collector owns every measurement artifact of a run: latency
// histograms, the completion counter, queue-depth tracking, and the
// pre-measurement snapshots that subtract warmup from residency and
// transition counts. The Sim model calls the note* hooks from its hot
// path; Collector turns them into a Result at the end of the window.
//
// Keeping measurement out of the model keeps the two independently
// replaceable: a future tracing or streaming-percentile collector can
// slot in without touching dispatch or C-state logic.
type Collector struct {
	measuring    bool
	measureStart sim.Time

	serverLat  *stats.Histogram
	e2eLat     *stats.Histogram
	wakeLat    *stats.Histogram
	queueLat   *stats.Histogram
	serviceLat *stats.Histogram
	completed  uint64

	maxQueueDepth int

	preTrans     [cstate.NumStates]uint64
	preResidency [cstate.NumStates]float64
	preCoreRes   [][cstate.NumStates]float64
}

func newCollector() *Collector {
	return &Collector{
		serverLat:  stats.NewHistogram(),
		e2eLat:     stats.NewHistogram(),
		wakeLat:    stats.NewHistogram(),
		queueLat:   stats.NewHistogram(),
		serviceLat: stats.NewHistogram(),
	}
}

// begin starts a measurement window: energy meters restart at the
// current per-core power, the histograms and counters are re-armed, and
// the residency/transition totals accumulated so far (warmup, or every
// window already measured by a resumable Instance) are snapshotted so
// collect can subtract them. begin is reusable: an Instance calls it
// once per interval against long-lived state, allocation-free after the
// first call.
func (col *Collector) begin(s *Sim) {
	col.measuring = true
	col.measureStart = s.eng.Now()
	now := int64(s.eng.Now())
	for _, c := range s.cores {
		// Reset energy and turbo accounting to the measurement window.
		c.meter.Reset(now, c.curPowerW)
		c.busyTime, c.turboBusyTime = 0, 0
	}
	s.uncoreMeter.Reset(now, s.uncorePower())
	s.pkgIdleTotal = 0
	if s.pkgActive {
		s.pkgIdleStart = s.eng.Now()
	}
	col.serverLat.Reset()
	col.e2eLat.Reset()
	col.wakeLat.Reset()
	col.queueLat.Reset()
	col.serviceLat.Reset()
	col.completed = 0
	col.maxQueueDepth = 0
	for id := 0; id < int(cstate.NumStates); id++ {
		var sum uint64
		for _, c := range s.cores {
			sum += c.machine.Transitions(cstate.ID(id))
		}
		col.preTrans[id] = sum
	}
	col.preResidency = s.residencySnapshot(col.measureStart)
	if col.preCoreRes == nil {
		col.preCoreRes = make([][cstate.NumStates]float64, len(s.cores))
	}
	for i, c := range s.cores {
		col.preCoreRes[i] = coreResidencySnapshot(c, col.measureStart)
	}
}

// noteDispatch records the post-enqueue backlog of the receiving core.
func (col *Collector) noteDispatch(c *coreRuntime) {
	if !col.measuring {
		return
	}
	if d := c.Load(); d > col.maxQueueDepth {
		col.maxQueueDepth = d
	}
}

// noteStart records the latency decomposition of a foreground request
// beginning service: wake penalty, queueing delay, and service time.
func (col *Collector) noteStart(req request, now sim.Time, dur sim.Time) {
	waited := now - req.arrival
	wake := req.wake
	if wake > waited {
		wake = waited
	}
	col.wakeLat.Add(wake.Micros())
	col.queueLat.Add((waited - wake).Micros())
	col.serviceLat.Add(dur.Micros())
}

// noteComplete records a foreground completion; netRTT is the sampled
// client<->server network latency added to the end-to-end figure.
func (col *Collector) noteComplete(req request, now sim.Time, netRTT sim.Time) {
	latUS := (now - req.arrival).Micros()
	col.serverLat.Add(latUS)
	col.e2eLat.Add(latUS + netRTT.Micros())
	col.completed++
}

// collect assembles the Result for the window ending at end.
func (col *Collector) collect(s *Sim, end sim.Time) Result {
	res := Result{Config: s.cfg, MeasuredDuration: end - col.measureStart}
	windowSec := (end - col.measureStart).Seconds()
	var totalEnergy float64
	var busy, turboBusy sim.Time
	for _, c := range s.cores {
		totalEnergy += c.meter.Energy(int64(end))
		busy += c.busyTime
		turboBusy += c.turboBusyTime
	}
	endSnap := s.residencySnapshot(end)
	var residencyNS [cstate.NumStates]float64
	for id := range residencyNS {
		residencyNS[id] = endSnap[id] - col.preResidency[id]
	}
	var totalNS float64
	for _, v := range residencyNS {
		totalNS += v
	}
	for id := range res.Residency {
		if totalNS > 0 {
			res.Residency[id] = residencyNS[id] / totalNS
		}
	}
	for id := 0; id < int(cstate.NumStates); id++ {
		var sum uint64
		for _, c := range s.cores {
			sum += c.machine.Transitions(cstate.ID(id))
		}
		if windowSec > 0 {
			res.TransitionsPerSec[id] = float64(sum-col.preTrans[id]) / windowSec
		}
	}
	if windowSec > 0 {
		res.AvgCorePowerW = totalEnergy / windowSec / float64(len(s.cores))
		res.CompletedPerSec = float64(col.completed) / windowSec
	}
	res.UncoreAvgW = s.uncoreMeter.AveragePower(int64(end))
	pkgIdle := s.pkgIdleTotal
	if s.pkgActive {
		pkgIdle += end - s.pkgIdleStart
	}
	if end > col.measureStart {
		res.PkgIdleFraction = float64(pkgIdle) / float64(end-col.measureStart)
	}
	res.PackagePowerW = res.AvgCorePowerW*float64(len(s.cores)) + res.UncoreAvgW
	res.EnergyJ = totalEnergy
	res.SnoopsServed = s.snoopsServed
	res.MaxQueueDepth = col.maxQueueDepth
	for i, c := range s.cores {
		cs := CoreStats{Core: i}
		snap := coreResidencySnapshot(c, end)
		var coreTotal float64
		for id := range snap {
			snap[id] -= col.preCoreRes[i][id]
			coreTotal += snap[id]
		}
		for id := range snap {
			if coreTotal > 0 {
				cs.Residency[id] = snap[id] / coreTotal
			}
		}
		if windowSec > 0 {
			cs.AvgPowerW = c.meter.Energy(int64(end)) / windowSec
		}
		res.PerCore = append(res.PerCore, cs)
	}
	res.Server = summarize(col.serverLat)
	res.EndToEnd = summarize(col.e2eLat)
	res.Breakdown = BreakdownSummary{
		Wake:    summarize(col.wakeLat),
		Queue:   summarize(col.queueLat),
		Service: summarize(col.serviceLat),
	}
	if busy > 0 {
		res.TurboFraction = float64(turboBusy) / float64(busy)
	}
	return res
}
