// Package server is the discrete-event model of the paper's evaluation
// platform: a 2-socket, 10-core-per-socket (20 logical CPU) Skylake
// server running one latency-critical service. Requests arrive through a
// pluggable load generator (LoadGen), are placed on per-core queues by a
// pluggable dispatch policy (Dispatcher), and execute at the core's
// current frequency; idle cores enter C-states chosen by an OS governor
// and pay entry/exit latencies on wake-up. A Collector turns the run into
// exactly the quantities the paper measures on hardware: per-C-state
// residencies and transition counts, RAPL-style average power, and
// average/tail request latency (server-side and end-to-end).
//
// See DESIGN.md for how the subsystems compose.
package server

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/turbo"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	// Cores is the number of logical CPUs (paper platform: 20).
	Cores int
	// Catalog supplies C-state parameters (power, latencies).
	Catalog *cstate.Catalog
	// Platform is the named C-state/Turbo configuration under test.
	Platform governor.Config
	// GovernorPolicy selects the idle-selection policy (default menu).
	GovernorPolicy string
	// Profile is the service being run.
	Profile workload.Profile
	// RatePerSec is the aggregate offered load (QPS).
	RatePerSec float64
	// Schedule, when set, makes the offered load time-varying: the
	// open-loop and bursty generators look the rate up per arrival (and
	// per burst window) instead of holding RatePerSec, so one run sweeps
	// through the schedule's phases. The schedule clock is the sim clock
	// (time zero = warmup start); beyond its last phase the schedule
	// holds its final rate. A constant schedule reproduces the stationary
	// RatePerSec run bit-for-bit. Closed-loop load rejects schedules —
	// its rate is an emergent property of connections and think time.
	Schedule *scenario.Schedule
	// Duration is the measured interval; Warmup runs before it.
	Duration sim.Time
	Warmup   sim.Time
	// Seed makes the run reproducible.
	Seed uint64

	// Dispatch selects the request-to-core placement policy (default
	// round-robin, the paper's assumption). See DispatchPolicies.
	Dispatch string
	// PackQueueCap bounds per-core backlog under the packed policy
	// (default 4 outstanding requests).
	PackQueueCap int

	// LoadGen selects the arrival generator (default open-loop, or
	// closed-loop when ClosedLoopConnections > 0). See LoadGens.
	LoadGen string
	// BurstOnTime / BurstOffTime are the mean ON-burst and silent-gap
	// lengths of the bursty generator (defaults 500us / 1.5ms).
	BurstOnTime  sim.Time
	BurstOffTime sim.Time

	// UncoreW is the constant package power outside the cores (two
	// sockets' uncore, calibrated so package power matches Fig. 9(c)).
	UncoreW float64
	// Freq is the platform frequency plan.
	Freq turbo.FreqPlan
	// TurboSustainedW / TurboCapacityJ parameterize the thermal budget.
	TurboSustainedW float64
	TurboCapacityJ  float64
	// FixedFreqHz, when nonzero, pins the non-turbo frequency (used by
	// the Fig. 8(d) scalability experiment).
	FixedFreqHz float64

	// AWFreqLossFraction is the ~1 % frequency degradation the UFPG power
	// gates impose when the platform uses AW states (Sec. 5.1.1).
	AWFreqLossFraction float64

	// SnoopRatePerSec is the per-core rate of incoming snoop requests
	// served while idle (0 disables snoop modeling).
	SnoopRatePerSec float64
	// SnoopServiceTime is the cache-domain active time per snoop.
	SnoopServiceTime sim.Time

	// OSNoisePeriod is the mean gap between per-core background OS
	// wake-ups (timer ticks, kernel housekeeping, NIC interrupts). These
	// are what keep real servers out of deep C-states even at light load
	// (Sec. 2); set to a negative value to disable.
	OSNoisePeriod sim.Time
	// OSNoiseDemand is the CPU demand of one background wake-up.
	OSNoiseDemand sim.Time

	// TraceHook, when set, receives every per-core C-state change
	// (core, time, new state) — the power:cpu_idle trace of this
	// simulator. See internal/trace for a recorder implementation.
	// Excluded from JSON: a hook is per-process state, and results that
	// echo their Config must stay marshalable (the awserved query API
	// serves them).
	TraceHook func(core int, now sim.Time, state cstate.ID) `json:"-"`

	// PkgIdleEnabled turns on the package idle-state model: when every
	// core has been resident in an idle state for PkgEntryDelay, the
	// uncore drops to PkgUncoreLowW until any core wakes. This extends
	// the paper toward its companion direction (AgilePkgC [9]): core
	// C-states alone leave the uncore burning full power.
	PkgIdleEnabled bool
	// PkgEntryDelay is the all-idle hysteresis before the package state
	// engages (legacy package C-states need hundreds of microseconds).
	PkgEntryDelay sim.Time
	// PkgUncoreLowW is the uncore power while the package state holds.
	PkgUncoreLowW float64

	// ClosedLoopConnections switches the load generator from open-loop
	// (Poisson at RatePerSec) to a closed loop of N connections, each
	// issuing its next request ThinkTime after the previous response —
	// the Mutilate agent model. RatePerSec is ignored when > 0.
	ClosedLoopConnections int
	// ThinkTime is the mean exponential think time per connection.
	ThinkTime sim.Time
}

// Defaults fills unset fields with the paper's platform values.
func (c Config) Defaults() Config {
	if c.Cores == 0 {
		c.Cores = 20
	}
	if c.Catalog == nil {
		c.Catalog = cstate.Skylake()
	}
	if c.GovernorPolicy == "" {
		c.GovernorPolicy = governor.PolicyMenu
	}
	if c.Dispatch == "" {
		c.Dispatch = DispatchRoundRobin
	}
	if c.PackQueueCap == 0 {
		c.PackQueueCap = defaultPackQueueCap
	}
	if c.LoadGen == "" {
		if c.ClosedLoopConnections > 0 {
			c.LoadGen = LoadClosedLoop
		} else {
			c.LoadGen = LoadOpenLoop
		}
	}
	if c.BurstOnTime == 0 {
		c.BurstOnTime = 500 * sim.Microsecond
	}
	if c.BurstOffTime == 0 {
		c.BurstOffTime = 1500 * sim.Microsecond
	}
	if c.Duration == 0 {
		c.Duration = 500 * sim.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = 50 * sim.Millisecond
	}
	if c.UncoreW == 0 {
		c.UncoreW = 30 // two sockets' uncore
	}
	if c.Freq == (turbo.FreqPlan{}) {
		c.Freq = turbo.Xeon4114()
	}
	if c.TurboSustainedW == 0 {
		// Chosen between the high-load package power of a C1-parked
		// configuration (~73 W) and a C1E-parked one (~65 W), so that
		// high idle power starves Turbo of thermal headroom (Sec. 7.3).
		c.TurboSustainedW = 68
	}
	if c.TurboCapacityJ == 0 {
		// Small enough that sustained over-budget operation exhausts it
		// within a measurement window (real turbo time constants are
		// seconds; windows here are hundreds of milliseconds).
		c.TurboCapacityJ = 0.5
	}
	if c.AWFreqLossFraction == 0 {
		c.AWFreqLossFraction = 0.01
	}
	if c.SnoopServiceTime == 0 {
		c.SnoopServiceTime = sim.Microsecond
	}
	if c.OSNoisePeriod == 0 {
		c.OSNoisePeriod = sim.Millisecond
	}
	if c.OSNoiseDemand == 0 {
		c.OSNoiseDemand = 2 * sim.Microsecond
	}
	if c.PkgEntryDelay == 0 {
		c.PkgEntryDelay = 100 * sim.Microsecond
	}
	if c.ClosedLoopConnections > 0 && c.ThinkTime == 0 {
		c.ThinkTime = sim.Millisecond
	}
	if c.PkgUncoreLowW == 0 {
		c.PkgUncoreLowW = 12
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("server: cores = %d", c.Cores)
	}
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.RatePerSec < 0 {
		return fmt.Errorf("server: negative rate")
	}
	if c.Schedule != nil && (c.LoadGen == LoadClosedLoop || c.ClosedLoopConnections > 0) {
		return fmt.Errorf("server: closed-loop load cannot follow a rate schedule")
	}
	return c.Freq.Validate()
}

// LatencySummary condenses a latency distribution (microseconds).
type LatencySummary struct {
	Count         uint64
	AvgUS, P50US  float64
	P95US, P99US  float64
	P999US, MaxUS float64
}

// BreakdownSummary decomposes server-side latency (all microseconds):
// Wake is the C-state exit penalty paid by requests that found their
// core idle; Queue is time spent waiting behind other requests; Service
// is execution time. Wake+Queue+Service ≈ Server latency.
type BreakdownSummary struct {
	Wake    LatencySummary
	Queue   LatencySummary
	Service LatencySummary
}

func summarize(h *stats.Histogram) LatencySummary {
	q := h.Quantiles(0.50, 0.95, 0.99, 0.999)
	return LatencySummary{
		Count: h.Count(),
		AvgUS: h.Mean(), P50US: q[0],
		P95US: q[1], P99US: q[2],
		P999US: q[3], MaxUS: h.Max(),
	}
}

// Result aggregates one run's measurements over the measured interval.
type Result struct {
	Config Config

	// Residency is the core-time fraction in each C-state.
	Residency [cstate.NumStates]float64
	// TransitionsPerSec is the per-second rate of entries into each
	// state, aggregated over all cores.
	TransitionsPerSec [cstate.NumStates]float64

	// AvgCorePowerW is the mean per-core power (cores only).
	AvgCorePowerW float64
	// PackagePowerW = cores + uncore.
	PackagePowerW float64
	// EnergyJ is total core energy over the measured window.
	EnergyJ float64

	// Server and EndToEnd latency summaries; end-to-end adds network RTT.
	Server   LatencySummary
	EndToEnd LatencySummary

	// Breakdown decomposes server-side latency into its components.
	Breakdown BreakdownSummary

	// CompletedPerSec is the achieved throughput.
	CompletedPerSec float64
	// TurboFraction is the share of busy time spent at Turbo frequency.
	TurboFraction float64
	// MeasuredDuration is the length of the measured window.
	MeasuredDuration sim.Time

	// UncoreAvgW is the average uncore power (constant UncoreW unless
	// the package idle-state model is enabled).
	UncoreAvgW float64
	// PkgIdleFraction is the share of the window the package idle state
	// held (0 unless PkgIdleEnabled).
	PkgIdleFraction float64
	// SnoopsServed counts coherence requests serviced by idle cores over
	// the whole run (0 unless SnoopRatePerSec > 0).
	SnoopsServed uint64

	// MaxQueueDepth is the largest per-core backlog (queued + executing)
	// observed at any dispatch during the window — the imbalance signal
	// that separates the dispatch policies.
	MaxQueueDepth int

	// PerCore carries per-CPU measurements (round-robin dispatch keeps
	// them nearly uniform; skew indicates a modeling or policy change,
	// and is the whole point of the packed policy).
	PerCore []CoreStats
}

// CoreStats is one logical CPU's measurement over the window.
type CoreStats struct {
	Core      int
	Residency [cstate.NumStates]float64
	AvgPowerW float64
}

type request struct {
	arrival sim.Time
	demand  sim.Time // at reference frequency
	// background marks OS-noise work, excluded from latency/throughput.
	background bool
	// wake is the wake-up latency attributed to this request (the head
	// request that found the core idle pays the exit flow).
	wake sim.Time
	// conn is the closed-loop connection index (-1 for open loop).
	conn int
}

// reqRing is a growable power-of-two circular FIFO of requests. Requests
// live in the ring by value, so the steady-state request flow — enqueue
// at dispatch, dequeue at service start — recycles the same backing
// storage forever: the ring is the per-core request freelist, and after
// warmup the hot path performs no request allocation at all.
type reqRing struct {
	buf  []request
	head uint32 // free-running; position = head & (len(buf)-1)
	tail uint32
}

func (r *reqRing) len() int { return int(r.tail - r.head) }

func (r *reqRing) push(req request) {
	if int(r.tail-r.head) == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail&uint32(len(r.buf)-1)] = req
	r.tail++
}

// front returns the oldest queued request in place (for wake attribution).
func (r *reqRing) front() *request {
	return &r.buf[r.head&uint32(len(r.buf)-1)]
}

func (r *reqRing) pop() request {
	i := r.head & uint32(len(r.buf)-1)
	req := r.buf[i]
	r.buf[i] = request{}
	r.head++
	return req
}

// grow doubles the ring, unwrapping the live window to the front.
func (r *reqRing) grow() {
	n := len(r.buf)
	if n == 0 {
		r.buf = make([]request, 8)
		r.head, r.tail = 0, 0
		return
	}
	grown := make([]request, 2*n)
	count := int(r.tail - r.head)
	for i := 0; i < count; i++ {
		grown[i] = r.buf[(r.head+uint32(i))&uint32(n-1)]
	}
	r.buf = grown
	r.head, r.tail = 0, uint32(count)
}

type coreRuntime struct {
	idx     int
	machine *cstate.Machine
	gov     governor.Governor
	meter   *stats.EnergyMeter
	queue   reqRing
	// cur is the request in execution (valid while busy); completion
	// events carry only the core index, so the in-flight request never
	// escapes to the heap.
	cur  request
	busy bool
	// idleStart is when the core last became idle (for governor feedback).
	idleStart sim.Time
	// curPowerW is the core's current draw, mirrored into the package
	// total for turbo-budget accounting.
	curPowerW float64
	// busyAtTurbo accumulates busy time at turbo frequency.
	busyTime, turboBusyTime sim.Time
	// lastTraced deduplicates TraceHook callbacks.
	lastTraced cstate.ID
	// snoopGen invalidates in-flight snoop-service timers when the core
	// leaves its idle episode.
	snoopGen uint64
	// noiseRng / snoopRng drive this core's background processes.
	noiseRng *xrand.Rand
	snoopRng *xrand.Rand
}

// Sim is a fully constructed simulation run: the core/C-state model plus
// three pluggable subsystems — load generation (gen), request placement
// (disp), and measurement (col).
type Sim struct {
	cfg     Config
	eng     *sim.Engine
	cores   []*coreRuntime
	arrRand *xrand.Rand
	svcRand *xrand.Rand
	netRand *xrand.Rand
	budget  *turbo.Budget
	cpower  *turbo.CorePower

	gen  LoadGen
	disp Dispatcher
	col  *Collector

	// Instance-mode state (see instance.go). A resumable Instance drives
	// the offered load as a piecewise-constant rate that changes only at
	// RunInterval boundaries: instRate is the current interval's rate and
	// arrEvent the pending open-loop arrival (tracked so a rate change
	// can cancel and redraw it). parked marks a quiesced zero-load
	// window: OS-noise injection is suppressed, idle selection goes
	// straight to the deepest menu state, and the package idle model is
	// armed regardless of Config.PkgIdleEnabled (pkgIdleOn). One-shot
	// runs never set instMode, so their paths are untouched.
	instMode bool
	instRate float64
	parked   bool
	arrEvent *sim.Event
	// pkgIdleOn gates the package idle-state model (Config.PkgIdleEnabled
	// outside parked windows).
	pkgIdleOn bool
	// deepest is the deepest state in the platform menu (C0 when empty) —
	// what a fleet manager quiescing the node sends every core to.
	deepest cstate.ID

	totalPwr float64

	// snoopsServed counts snoops serviced by idle cores.
	snoopsServed uint64

	// Package idle-state model.
	idleCores    int
	pkgActive    bool
	pkgEvent     *sim.Event
	pkgIdleStart sim.Time
	pkgIdleTotal sim.Time
	uncoreMeter  *stats.EnergyMeter

	// Typed event kinds (see newKinds): the per-event hot path schedules
	// (kind, core, extra) tuples instead of closures.
	kEntryDone   sim.Kind
	kExitDone    sim.Kind
	kComplete    sim.Kind
	kSnoopRet    sim.Kind
	kSnoopNext   sim.Kind
	kNoise       sim.Kind
	kPkgIdle     sim.Kind
	kArrival     sim.Kind // open-loop next arrival
	kConn        sim.Kind // closed-loop connection dispatch (a0 = conn)
	kBurst       sim.Kind // bursty ON-window start
	kBurstArrive sim.Kind // bursty arrival (a0 = window end)

	// Precomputed hot-path constants. All are exactly the values the
	// unoptimized model recomputed per event (same expressions, same
	// inputs), hoisted to construction time so the event loop runs free
	// of math.Pow/table lookups.
	baseFreqHz   float64
	turboFreqHz  float64
	pwrActive    float64 // AtFreq(baseFreq)
	pwrTurbo     float64 // AtFreq(turbo serviceFreq)
	spBase       float64 // Speedup(scalability, refFreq, baseFreq)
	spTurbo      float64 // Speedup(scalability, refFreq, turboFreq)
	snoopGapMean float64 // 1e9 / SnoopRatePerSec
	idlePowerW   [cstate.NumStates]float64
	snoopPowerW  [cstate.NumStates]float64
	exitPowerW   [cstate.NumStates]float64
	swExitNS     [cstate.NumStates]sim.Time
	snoopCohere  [cstate.NumStates]bool

	// Fault-injection state, set between intervals through
	// Instance.SetServiceInflation / Instance.SetTurboCap. The zero
	// values mean "healthy" and every hot-path guard tests them first,
	// so a fault-free run is byte-identical to one that predates the
	// fields.
	inflate   float64 // straggler service-time multiplier; <= 1 means none
	throttled bool    // thermal throttle: turbo ceiling capped
	capFrac   float64 // throttle ceiling fraction (snapshot replay needs it)
	thrFreqHz float64 // throttled turbo frequency
	pwrThr    float64 // AtFreq(thrFreqHz)
	spThr     float64 // Speedup(scalability, refFreq, thrFreqHz)
}

// uncorePower returns the current uncore draw.
func (s *Sim) uncorePower() float64 {
	if s.pkgActive {
		return s.cfg.PkgUncoreLowW
	}
	return s.cfg.UncoreW
}

// coreBecameIdle is called when a core reaches PhaseIdle residency.
func (s *Sim) coreBecameIdle(now sim.Time) {
	s.idleCores++
	if !s.pkgIdleOn || s.idleCores < len(s.cores) || s.pkgActive || s.pkgEvent != nil {
		return
	}
	s.pkgEvent = s.eng.ScheduleKind(s.cfg.PkgEntryDelay, s.kPkgIdle, 0, 0)
}

// coreLeftIdle is called when an idle core starts waking.
func (s *Sim) coreLeftIdle(now sim.Time) {
	s.idleCores--
	if s.pkgEvent != nil {
		s.eng.Cancel(s.pkgEvent)
		s.pkgEvent = nil
	}
	if s.pkgActive {
		s.pkgActive = false
		s.pkgIdleTotal += now - s.pkgIdleStart
		s.uncoreMeter.SetPower(int64(now), s.cfg.UncoreW)
	}
}

// coreResidencySnapshot returns one core's cumulative per-state
// residency (ns) as of time at, attributing the open interval to the
// current state.
func coreResidencySnapshot(c *coreRuntime, at sim.Time) [cstate.NumStates]float64 {
	var out [cstate.NumStates]float64
	r := c.machine.Residency()
	for id := 0; id < int(cstate.NumStates); id++ {
		out[id] = float64(r.TimeIn(id))
	}
	out[r.Current()] += float64(int64(at) - r.Total())
	return out
}

// residencySnapshot returns cumulative per-state residency (ns) across
// all cores as of time at.
func (s *Sim) residencySnapshot(at sim.Time) [cstate.NumStates]float64 {
	var out [cstate.NumStates]float64
	for _, c := range s.cores {
		one := coreResidencySnapshot(c, at)
		for id := range out {
			out[id] += one[id]
		}
	}
	return out
}

// New constructs a simulation from the config (after applying defaults).
func New(cfg Config) (*Sim, error) { return newSim(cfg, false) }

// newSim is the shared constructor behind New (one-shot runs) and
// NewInstance (resumable interval runs, inst true).
func newSim(cfg Config, inst bool) (*Sim, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Stateful arrival processes (e.g. the MMPP2 Kafka stream) are copied
	// per run so concurrent or repeated runs never share mutable state.
	if ca, ok := cfg.Profile.Arrivals.(workload.CloneableArrival); ok {
		cfg.Profile.Arrivals = ca.CloneArrival()
	}
	s := &Sim{
		cfg:     cfg,
		eng:     sim.NewEngine(),
		arrRand: xrand.NewStream(cfg.Seed, "arrivals/"+cfg.Profile.Name),
		svcRand: xrand.NewStream(cfg.Seed, "service/"+cfg.Profile.Name),
		netRand: xrand.NewStream(cfg.Seed, "network/"+cfg.Profile.Name),
		budget:  turbo.NewBudget(cfg.TurboSustainedW, cfg.TurboCapacityJ),
		cpower:  turbo.NewCorePower(cfg.Freq),
		col:     newCollector(),
	}
	s.instMode = inst
	s.pkgIdleOn = cfg.PkgIdleEnabled
	s.deepest, _ = cfg.Catalog.DeepestByResidency(cfg.Platform.Menu, sim.MaxTime)
	gen, err := newLoadGen(cfg, inst)
	if err != nil {
		return nil, err
	}
	s.gen = gen
	disp, err := newDispatcher(cfg.Dispatch, cfg.PackQueueCap,
		xrand.NewStream(cfg.Seed, "dispatch/"+cfg.Profile.Name))
	if err != nil {
		return nil, err
	}
	s.disp = disp
	s.uncoreMeter = stats.NewEnergyMeter(0, cfg.UncoreW)
	s.precompute()
	s.newKinds()
	for i := 0; i < cfg.Cores; i++ {
		gov, err := governor.New(cfg.GovernorPolicy, cfg.Catalog)
		if err != nil {
			return nil, err
		}
		c := &coreRuntime{
			idx:     i,
			machine: cstate.NewMachine(cfg.Catalog, 0),
			gov:     gov,
			meter:   stats.NewEnergyMeter(0, 0),
		}
		s.cores = append(s.cores, c)
		if cfg.TraceHook != nil {
			cfg.TraceHook(i, 0, cstate.C0)
		}
		// Cores start idle: enter a C-state immediately.
		s.enterIdle(c, 0)
	}
	return s, nil
}

// precompute hoists the per-event constants out of the hot path. Every
// value is produced by exactly the expression the per-event code used to
// evaluate, so results are bit-for-bit unchanged.
func (s *Sim) precompute() {
	s.baseFreqHz = s.baseFreq()
	f := s.cfg.Freq.TurboHz
	if s.cfg.Platform.AgileWatts {
		f *= 1 - s.cfg.AWFreqLossFraction
	}
	s.turboFreqHz = f
	s.pwrActive = s.cpower.AtFreq(s.baseFreqHz)
	s.pwrTurbo = s.cpower.AtFreq(s.turboFreqHz)
	s.spBase = turbo.Speedup(s.cfg.Profile.FreqScalability, s.cfg.Profile.RefFreqHz, s.baseFreqHz)
	s.spTurbo = turbo.Speedup(s.cfg.Profile.FreqScalability, s.cfg.Profile.RefFreqHz, s.turboFreqHz)
	if s.cfg.SnoopRatePerSec > 0 {
		s.snoopGapMean = 1e9 / s.cfg.SnoopRatePerSec
	}
	pwrMin := s.cpower.AtFreq(s.cfg.Freq.MinHz)
	for id := cstate.ID(0); id < cstate.NumStates; id++ {
		p := s.cfg.Catalog.Params(id)
		s.idlePowerW[id] = p.PowerWatts
		s.snoopPowerW[id] = p.SnoopPowerWatts
		s.snoopCohere[id] = cstate.ComponentsOf(id).Caches == cstate.CacheCoherent
		if sw := p.TransitionTime - p.HWEntryLatency - p.HWExitLatency; sw > 0 {
			s.swExitNS[id] = sw
		}
		if p.PStateOnEntry == cstate.Pn {
			s.exitPowerW[id] = pwrMin
		} else {
			s.exitPowerW[id] = s.pwrActive
		}
	}
}

// newKinds registers the typed event handlers — the devirtualized
// replacements for the per-event closures the model used to allocate.
// Each handler is one closure over the Sim, created once per run;
// payload word a0 is the core index, a1 the handler-specific extra.
func (s *Sim) newKinds() {
	eng := s.eng
	s.kEntryDone = eng.RegisterKind(func(now sim.Time, a0, _ uint64) {
		s.entryDone(s.cores[a0], now)
	})
	s.kExitDone = eng.RegisterKind(func(now sim.Time, a0, _ uint64) {
		s.exitDone(s.cores[a0], now)
	})
	s.kComplete = eng.RegisterKind(func(now sim.Time, a0, _ uint64) {
		s.complete(s.cores[a0], now)
	})
	s.kSnoopRet = eng.RegisterKind(func(now sim.Time, a0, gen uint64) {
		// Return to sleep power only if the core is still resident in
		// the same idle episode.
		c := s.cores[a0]
		if c.snoopGen == gen && c.machine.Phase() == cstate.PhaseIdle {
			s.setCorePower(c, now, s.idlePowerW[c.machine.State()])
		}
	})
	s.kSnoopNext = eng.RegisterKind(func(now sim.Time, a0, _ uint64) {
		s.snoopArrive(s.cores[a0], now)
	})
	s.kNoise = eng.RegisterKind(func(now sim.Time, a0, _ uint64) {
		s.noise(s.cores[a0], now)
	})
	s.kPkgIdle = eng.RegisterKind(func(now sim.Time, _, _ uint64) {
		s.pkgEvent = nil
		if s.idleCores == len(s.cores) && !s.pkgActive {
			s.pkgActive = true
			s.pkgIdleStart = now
			s.uncoreMeter.SetPower(int64(now), s.cfg.PkgUncoreLowW)
		}
	})
	s.gen.register(s)
}

// traceSwitch reports a residency change to the trace hook, suppressing
// duplicates.
func (s *Sim) traceSwitch(c *coreRuntime, now sim.Time, st cstate.ID) {
	if s.cfg.TraceHook == nil || c.lastTraced == st {
		return
	}
	c.lastTraced = st
	s.cfg.TraceHook(c.idx, now, st)
}

// baseFreq returns the core's non-turbo operating frequency.
func (s *Sim) baseFreq() float64 {
	f := s.cfg.Freq.BaseHz
	if s.cfg.FixedFreqHz > 0 {
		f = s.cfg.FixedFreqHz
	}
	if s.cfg.Platform.AgileWatts {
		f *= 1 - s.cfg.AWFreqLossFraction
	}
	return f
}

// serviceFreq decides the frequency for a service slice starting now,
// returning the precomputed active power and speedup factor alongside.
func (s *Sim) serviceFreq() (freqHz, powerW, speedup float64) {
	if s.cfg.Platform.Turbo && s.budget.BoostAllowed() {
		if s.throttled {
			return s.thrFreqHz, s.pwrThr, s.spThr
		}
		return s.turboFreqHz, s.pwrTurbo, s.spTurbo
	}
	return s.baseFreqHz, s.pwrActive, s.spBase
}

// setThrottle installs (or clears) a thermal turbo cap: capFrac in
// [0, 1) places the boost ceiling at base + capFrac·(turbo - base), so
// capFrac 0 pins boosted slices to base frequency and capFrac → 1
// approaches the healthy ceiling. The throttled triple is derived by
// the same AtFreq/Speedup expressions precompute uses for the healthy
// constants, just at the capped frequency.
func (s *Sim) setThrottle(on bool, capFrac float64) {
	s.throttled = on
	s.capFrac = capFrac
	if !on {
		s.capFrac, s.thrFreqHz, s.pwrThr, s.spThr = 0, 0, 0, 0
		return
	}
	f := s.baseFreqHz + capFrac*(s.turboFreqHz-s.baseFreqHz)
	s.thrFreqHz = f
	s.pwrThr = s.cpower.AtFreq(f)
	s.spThr = turbo.Speedup(s.cfg.Profile.FreqScalability, s.cfg.Profile.RefFreqHz, f)
}

// setCorePower accounts a power change on core c at time now, updating
// the turbo budget with the package power that applied until now.
func (s *Sim) setCorePower(c *coreRuntime, now sim.Time, watts float64) {
	s.budget.Update(int64(now), s.totalPwr+s.uncorePower())
	s.totalPwr += watts - c.curPowerW
	c.curPowerW = watts
	c.meter.SetPower(int64(now), watts)
}

// snoopArrive models one coherence request hitting core c (Sec. 4.2):
// if the core is resident in a cache-coherent idle state, the CCSM wakes
// the cache domain for SnoopServiceTime at the state's snoop power, then
// returns it to sleep. Cores in C6 flushed their caches — the snoop is
// answered by the uncore snoop filter at no core cost. Active cores
// serve snoops within their normal operation.
func (s *Sim) snoopArrive(c *coreRuntime, now sim.Time) {
	if c.machine.Phase() == cstate.PhaseIdle {
		st := c.machine.State()
		if s.snoopCohere[st] {
			s.snoopsServed++
			s.setCorePower(c, now, s.snoopPowerW[st])
			s.eng.ScheduleKind(s.cfg.SnoopServiceTime, s.kSnoopRet, uint64(c.idx), c.snoopGen)
		}
	}
	gap := sim.Time(c.snoopRng.Exp(s.snoopGapMean))
	if gap < 1 {
		gap = 1
	}
	s.eng.ScheduleKind(gap, s.kSnoopNext, uint64(c.idx), 0)
}

// enterIdle runs the governor and starts the entry flow on core c. On a
// parked node the governor is bypassed: a fleet manager draining a node
// sends its cores to the deepest enabled state outright (the menu
// governor's short cold-start prediction would otherwise strand
// never-woken cores in C1 for the whole parked window).
func (s *Sim) enterIdle(c *coreRuntime, now sim.Time) {
	c.idleStart = now
	var id cstate.ID
	if s.parked {
		id = s.deepest
	} else {
		id = c.gov.Select(now, s.cfg.Platform.Menu)
	}
	if id == cstate.C0 {
		// Empty menu: the core polls in C0 at active power.
		s.setCorePower(c, now, s.pwrActive)
		return
	}
	entry := c.machine.Enter(id, now)
	// Entry flows burn roughly active power.
	s.setCorePower(c, now, s.pwrActive)
	s.eng.ScheduleKind(entry, s.kEntryDone, uint64(c.idx), 0)
}

func (s *Sim) entryDone(c *coreRuntime, now sim.Time) {
	mustExit, exitLat := c.machine.EntryComplete(now)
	s.traceSwitch(c, now, c.machine.State())
	if mustExit {
		// An arrival landed during entry; the wake penalty also includes
		// the software exit path.
		st := c.machine.State()
		s.setCorePower(c, now, s.exitPowerW[st])
		penalty := exitLat + s.swExitNS[st]
		if c.queue.len() > 0 {
			c.queue.front().wake = penalty
		}
		s.eng.ScheduleKind(penalty, s.kExitDone, uint64(c.idx), 0)
		return
	}
	s.setCorePower(c, now, s.idlePowerW[c.machine.State()])
	s.coreBecameIdle(now)
}

// wake is called when work arrives at an idle core. The exit power and
// software exit overhead come from the per-state tables precompute
// filled: states that idle at the Pn operating point (C1E/C6AE) execute
// their exit path — IRQ entry, scheduler, DVFS ramp — at the minimum
// frequency's active power (~1 W), while P1 states exit at full active
// power; the software share is Table 1's worst case minus the hardware
// entry+exit flows.
func (s *Sim) wake(c *coreRuntime, now sim.Time) {
	switch c.machine.Phase() {
	case cstate.PhaseIdle:
		state := c.machine.State()
		c.gov.Observe(now - c.idleStart)
		exitLat, _ := c.machine.Wake(now)
		c.snoopGen++
		s.coreLeftIdle(now)
		s.traceSwitch(c, now, cstate.C0)
		s.setCorePower(c, now, s.exitPowerW[state])
		penalty := exitLat + s.swExitNS[state]
		if c.queue.len() > 0 {
			c.queue.front().wake = penalty
		}
		s.eng.ScheduleKind(penalty, s.kExitDone, uint64(c.idx), 0)
	case cstate.PhaseEntering:
		c.gov.Observe(now - c.idleStart)
		c.machine.Wake(now) // deferred until entryDone
	case cstate.PhaseExiting:
		// Already waking; the queued request will start at exitDone.
	case cstate.PhaseActive:
		// Polling in C0 (empty menu): start immediately.
		if !c.busy {
			s.startNext(c, now)
		}
	}
}

func (s *Sim) exitDone(c *coreRuntime, now sim.Time) {
	c.machine.ExitComplete(now)
	s.traceSwitch(c, now, cstate.C0)
	if c.queue.len() > 0 {
		s.startNext(c, now)
		return
	}
	// Spurious wake (e.g. request was handled elsewhere — not expected in
	// this model, but keep the machine consistent).
	s.enterIdle(c, now)
}

func (s *Sim) startNext(c *coreRuntime, now sim.Time) {
	req := c.queue.pop()
	c.cur = req
	c.busy = true
	freq, pwr, sp := s.serviceFreq()
	dur := sim.Time(float64(req.demand) / sp)
	if dur < 1 {
		dur = 1
	}
	s.setCorePower(c, now, pwr)
	if s.col.measuring {
		c.busyTime += dur
		if freq > s.baseFreqHz+1 {
			c.turboBusyTime += dur
		}
		if !req.background {
			s.col.noteStart(req, now, dur)
		}
	}
	s.eng.ScheduleKind(dur, s.kComplete, uint64(c.idx), 0)
}

func (s *Sim) complete(c *coreRuntime, now sim.Time) {
	req := c.cur
	c.busy = false
	if s.col.measuring && !req.background {
		s.col.noteComplete(req, now, s.cfg.Profile.SampleNetwork(s.netRand))
	}
	if req.conn >= 0 {
		s.gen.OnComplete(s, req.conn, now)
	}
	if c.queue.len() > 0 {
		s.startNext(c, now)
		return
	}
	s.enterIdle(c, now)
}

// dispatch places one request on a core chosen by the dispatch policy.
func (s *Sim) dispatch(now sim.Time, conn int) {
	c := s.cores[s.disp.Pick(now, s.cores)]
	demand := s.cfg.Profile.Service.Sample(s.svcRand)
	if s.inflate > 1 {
		// Straggler fault: this node grinds through the same request
		// stream with inflated service demands. The sample is drawn
		// first so the RNG stream stays aligned with the healthy run.
		demand = sim.Time(float64(demand) * s.inflate)
	}
	c.queue.push(request{arrival: now, demand: demand, conn: conn})
	s.col.noteDispatch(c)
	if !c.busy {
		s.wake(c, now)
	}
}

// noise injects one background OS wake-up on core c and reschedules.
// While the node is parked the timer keeps ticking but injects nothing —
// a quiesced, tickless node — so un-parking resumes housekeeping at the
// next tick without re-seeding the timer chain.
func (s *Sim) noise(c *coreRuntime, now sim.Time) {
	if !s.parked {
		c.queue.push(request{arrival: now, demand: s.cfg.OSNoiseDemand, background: true, conn: -1})
		if !c.busy {
			s.wake(c, now)
		}
	}
	gap := sim.Time(c.noiseRng.Exp(float64(s.cfg.OSNoisePeriod)))
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	s.eng.ScheduleKind(gap, s.kNoise, uint64(c.idx), 0)
}

// startBackground seeds the per-core background processes (OS noise,
// snoop traffic) at time zero — shared by Run and Instance startup.
func (s *Sim) startBackground() {
	if s.cfg.OSNoisePeriod > 0 {
		for i, c := range s.cores {
			c.noiseRng = xrand.NewStream(s.cfg.Seed, fmt.Sprintf("osnoise/%d", i))
			first := sim.Time(c.noiseRng.Exp(float64(s.cfg.OSNoisePeriod)))
			s.eng.ScheduleKindAt(first+1, s.kNoise, uint64(c.idx), 0)
		}
	}
	if s.cfg.SnoopRatePerSec > 0 {
		for i, c := range s.cores {
			c.snoopRng = xrand.NewStream(s.cfg.Seed, fmt.Sprintf("snoop/%d", i))
			first := sim.Time(c.snoopRng.Exp(1e9/s.cfg.SnoopRatePerSec)) + 1
			s.eng.ScheduleKindAt(first, s.kSnoopNext, uint64(c.idx), 0)
		}
	}
}

// park quiesces the node for a zero-load window: idle selection switches
// to the deepest menu state, OS-noise injection is suppressed, and the
// package idle model is armed. Cores already idling in a shallower state
// are nudged through a tiny background quiesce task — the model of the
// fleet manager's drain IPI — so they pay the real exit+entry flows on
// their way down to deep idle; busy cores drain in-flight requests first
// and fall into the deepest state via enterIdle.
func (s *Sim) park(now sim.Time) {
	s.parked = true
	s.pkgIdleOn = true
	if s.deepest == cstate.C0 {
		return // empty menu: cores poll in C0, there is nothing deeper
	}
	for _, c := range s.cores {
		if c.busy || c.queue.len() > 0 {
			continue // drains into the deepest state via enterIdle
		}
		ph := c.machine.Phase()
		if (ph == cstate.PhaseIdle || ph == cstate.PhaseEntering) && c.machine.State() != s.deepest {
			c.queue.push(request{arrival: now, demand: 1, background: true, conn: -1})
			s.wake(c, now)
		}
	}
	// Package-idle arming is edge-triggered (coreBecameIdle); if every
	// core already sits in the deepest state at the park boundary, no
	// core will transition during the quiesced window, so arm the entry
	// timer here.
	if s.idleCores == len(s.cores) && !s.pkgActive && s.pkgEvent == nil {
		s.pkgEvent = s.eng.ScheduleKind(s.cfg.PkgEntryDelay, s.kPkgIdle, 0, 0)
	}
}

// unpark ends a parked window: idle selection returns to the governor
// and the package idle model reverts to its configured setting. Cores
// stay resident in deep idle until load arrives — the first post-unpark
// request pays the deepest state's measured exit latency, which is the
// simulated replacement for the cold path's synthetic unpark penalty.
func (s *Sim) unpark(now sim.Time) {
	s.parked = false
	s.pkgIdleOn = s.cfg.PkgIdleEnabled
	if !s.pkgIdleOn && s.pkgEvent != nil {
		s.eng.Cancel(s.pkgEvent)
		s.pkgEvent = nil
	}
}

// setIntervalRate installs the next interval's offered rate (instance
// mode). An unchanged rate touches nothing, so splitting an interval is
// event-for-event free; a changed rate cancels the pending open-loop
// arrival (drawn at the old rate) and redraws from now — the standard
// memoryless piecewise-constant construction, mirroring how the schedule
// path censors and redraws at phase boundaries. The bursty generator
// re-derives its burst rate at each ON-window start and the closed loop
// has no offered rate, so neither needs re-arming.
func (s *Sim) setIntervalRate(now sim.Time, rate float64) {
	if rate == s.instRate {
		return
	}
	s.instRate = rate
	if s.gen.Name() != LoadOpenLoop {
		return
	}
	if s.arrEvent != nil {
		s.eng.Cancel(s.arrEvent)
		s.arrEvent = nil
	}
	s.openLoopNext(now)
}

// Run executes the configured warmup + measurement and returns results.
func (s *Sim) Run() Result {
	s.gen.Start(s)
	s.startBackground()
	// Warmup.
	s.eng.RunUntil(s.cfg.Warmup)
	s.eng.AdvanceTo(s.cfg.Warmup)
	s.col.begin(s)
	end := s.cfg.Warmup + s.cfg.Duration
	s.eng.RunUntil(end)
	return s.col.collect(s, end)
}

// RunConfig is the package-level convenience: construct and run.
func RunConfig(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}
