package server

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Instance is a resumable server simulation: one Sim constructed once
// and run interval by interval through RunInterval, carrying engine
// time, per-core C-state residency, request rings, RNG streams and
// collector state across calls. Interval N+1 continues exactly where
// interval N stopped — pending arrivals, in-flight requests and
// background timers survive the boundary — so a whole scenario pays the
// configured warmup exactly once, at startup, instead of once per
// epoch.
//
// The offered load is piecewise-constant: each RunInterval names its
// window's rate, overriding Config.RatePerSec/Schedule (which the
// Instance ignores). Under an unchanged rate an interval boundary is
// event-for-event invisible: RunInterval(a) followed by RunInterval(b)
// replays the identical event sequence as a single RunInterval(a+b)
// (property-tested across every load generator and dispatch policy).
//
// With park-on-zero-rate enabled, a zero-rate interval is simulated as
// a real node quiesce rather than approximated by an energy penalty:
// in-flight requests drain, cores transition into the deepest menu
// state (paying real exit/entry flows on the way down), OS housekeeping
// goes tickless, and the package idle model engages. When load returns,
// the first arrivals find their cores in deep idle and pay the measured
// exit latency — the physical cost the cluster layer's cold path
// modeled with a synthetic UnparkLatency/UnparkPowerW bolt-on.
//
// An Instance is not safe for concurrent use; run each instance from
// one goroutine (the cluster layer gives every node its own).
type Instance struct {
	s       *Sim
	park    bool
	started bool
	index   int
	// preSnoops is the snoop count before the current interval, so each
	// IntervalResult reports its own window's snoops (interval 0 keeps
	// the one-shot semantics of counting warmup snoops too).
	preSnoops uint64
	// orig is the construction config exactly as handed to NewInstance
	// (rate/schedule zeroed, defaults NOT applied) — what Snapshot
	// serializes, so Restore rebuilds through the identical
	// NewInstance(orig) path.
	orig Config
	// hist is the realized interval log: every RunInterval call with the
	// fault state that was live for it. Snapshot persists it; Restore
	// replays it — the event queue holds closures, so the only faithful
	// serialization of mid-run state is the deterministic replay of how
	// it was reached.
	hist []intervalRecord
}

// intervalRecord is one RunInterval call as Snapshot persists it: the
// window and rate plus the fault state (straggler inflation, thermal
// throttle) that was installed while it ran.
type intervalRecord struct {
	window   sim.Time
	rate     float64
	inflate  float64
	throttle bool
	capFrac  float64
}

// IntervalResult is one RunInterval measurement.
type IntervalResult struct {
	// Index counts intervals from 0.
	Index int
	// Start and End bound the measured window on the instance's engine
	// clock (interval 0 starts at Config.Warmup).
	Start, End sim.Time
	// RateQPS is the interval's offered rate.
	RateQPS float64
	// Parked reports whether the node was parked for this window.
	Parked bool
	// Result is the interval's full measurement. Config.RatePerSec and
	// Config.Duration reflect the interval, so a warm interval result is
	// field-for-field comparable with a one-shot run of that window.
	Result Result
	// Down reports a crash interval: the node's instance was discarded
	// and nothing was simulated — Result is zero, the window simply
	// elapsed with the node dark.
	Down bool
	// Restarted reports that this interval is the first after a crash:
	// the instance was rebuilt cold (fresh C-state/ring/RNG/collector
	// state) and re-paid its warmup-free cold start.
	Restarted bool
}

// NewInstance constructs a resumable simulation from the config.
// Config.RatePerSec, Schedule and Duration are ignored — every interval
// brings its own rate and window; Warmup is paid once, inside the first
// RunInterval. parkOnZeroRate makes zero-rate intervals quiesce the
// node (see the Instance doc). A closed-loop instance is resumable like
// any other but its load is an emergent property of connections and
// think time — RunInterval's rate is ignored — so parkOnZeroRate is
// rejected for it: a "parked" node still serving closed-loop traffic
// would be a nonsense measurement.
func NewInstance(cfg Config, parkOnZeroRate bool) (*Instance, error) {
	cfg.RatePerSec = 0
	cfg.Schedule = nil
	d := cfg.Defaults()
	if parkOnZeroRate && (d.LoadGen == LoadClosedLoop || d.ClosedLoopConnections > 0) {
		return nil, fmt.Errorf("server: closed-loop load cannot park on zero rate (its load ignores interval rates)")
	}
	s, err := newSim(cfg, true)
	if err != nil {
		return nil, err
	}
	return &Instance{s: s, park: parkOnZeroRate, orig: cfg}, nil
}

// Clock returns the instance's current simulation time.
func (ins *Instance) Clock() sim.Time { return ins.s.eng.Now() }

// Parked reports whether the instance is currently in a parked window.
func (ins *Instance) Parked() bool { return ins.s.parked }

// QueueDepth returns the instantaneous total backlog — queued plus
// executing requests across every core — at the instance's current
// clock. Unlike Result.MaxQueueDepth (the window's worst single-core
// backlog) this is a point sample of live state, the signal a fleet
// control plane reads at an epoch boundary: a node that ended its epoch
// with work still queued is lagging the offered load even if its
// window-mean measurements look healthy.
func (ins *Instance) QueueDepth() int {
	depth := 0
	for _, c := range ins.s.cores {
		depth += c.Load()
	}
	return depth
}

// BusyCores returns the number of cores executing a request right now —
// the companion point sample to QueueDepth for epoch-boundary telemetry.
func (ins *Instance) BusyCores() int {
	n := 0
	for _, c := range ins.s.cores {
		if c.busy {
			n++
		}
	}
	return n
}

// SetServiceInflation installs (or clears) a straggler fault: every
// request dispatched while factor > 1 has its sampled service demand
// multiplied by factor. Factor <= 1 restores healthy service times.
// Takes effect for requests dispatched after the call; in-flight work
// is unaffected. The service-time RNG stream is not perturbed — the
// straggler grinds through the same request sequence, just slower.
func (ins *Instance) SetServiceInflation(factor float64) {
	ins.s.inflate = factor
}

// SetTurboCap installs (or clears) a thermal-throttling fault: while on,
// boosted service slices run at base + capFrac·(turbo − base) instead of
// the full turbo ceiling (capFrac in [0, 1); 0 pins boost to base
// frequency). Power and speedup at the capped frequency are derived by
// the same expressions the healthy constants use. Takes effect for
// slices started after the call.
func (ins *Instance) SetTurboCap(on bool, capFrac float64) {
	ins.s.setThrottle(on, capFrac)
}

// RunInterval advances the simulation by window at the given offered
// rate and returns the window's measurement. The first call starts the
// generators and runs Config.Warmup before its measured window; later
// calls resume instantly from the previous interval's end state.
func (ins *Instance) RunInterval(window sim.Time, rate float64) (IntervalResult, error) {
	if window <= 0 {
		return IntervalResult{}, fmt.Errorf("server: non-positive interval window %d", window)
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return IntervalResult{}, fmt.Errorf("server: invalid interval rate %g", rate)
	}
	s := ins.s
	// Reject a window the simulation clock cannot hold before touching
	// any state, so an over-long request leaves the instance resumable.
	limit := sim.MaxTime - s.eng.Now()
	if !ins.started {
		limit -= s.cfg.Warmup
	}
	if window > limit {
		return IntervalResult{}, fmt.Errorf("server: interval window %d overflows the simulation clock (%d remaining)", window, limit)
	}
	if !ins.started {
		ins.started = true
		s.instRate = rate
		if ins.park && rate == 0 {
			s.park(0)
		}
		s.gen.Start(s)
		s.startBackground()
		s.eng.RunTo(s.cfg.Warmup) // the scenario's one warmup
	} else {
		now := s.eng.Now()
		s.setIntervalRate(now, rate)
		if ins.park {
			if rate == 0 && !s.parked {
				s.park(now)
			} else if rate > 0 && s.parked {
				s.unpark(now)
			}
		}
	}
	start := s.eng.Now()
	s.col.begin(s)
	end := start + window
	s.eng.RunTo(end)
	res := s.col.collect(s, end)
	res.Config.RatePerSec = rate
	res.Config.Duration = window
	res.SnoopsServed = s.snoopsServed - ins.preSnoops
	ins.preSnoops = s.snoopsServed
	out := IntervalResult{
		Index:   ins.index,
		Start:   start,
		End:     end,
		RateQPS: rate,
		Parked:  ins.park && s.parked,
		Result:  res,
	}
	ins.index++
	ins.hist = append(ins.hist, intervalRecord{
		window:   window,
		rate:     rate,
		inflate:  s.inflate,
		throttle: s.throttled,
		capFrac:  s.capFrac,
	})
	return out, nil
}
