package server

import (
	"math"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// quickCfg returns a short-duration config for tests.
func quickCfg(platform governor.Config, rate float64) Config {
	return Config{
		Platform:   platform,
		Profile:    workload.Memcached(),
		RatePerSec: rate,
		Duration:   150 * sim.Millisecond,
		Warmup:     20 * sim.Millisecond,
		Seed:       42,
	}
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResidencySumsToOne(t *testing.T) {
	res := run(t, quickCfg(governor.Baseline, 100e3))
	sum := 0.0
	for _, v := range res.Residency {
		if v < 0 {
			t.Fatalf("negative residency: %v", res.Residency)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("residency sums to %v", sum)
	}
}

func TestThroughputMatchesOfferedLoad(t *testing.T) {
	res := run(t, quickCfg(governor.Baseline, 200e3))
	if math.Abs(res.CompletedPerSec-200e3)/200e3 > 0.05 {
		t.Fatalf("throughput = %v, want ~200K", res.CompletedPerSec)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, quickCfg(governor.Baseline, 100e3))
	b := run(t, quickCfg(governor.Baseline, 100e3))
	if a.AvgCorePowerW != b.AvgCorePowerW || a.Server.P99US != b.Server.P99US ||
		a.Residency != b.Residency {
		t.Fatal("same seed produced different results")
	}
	c := quickCfg(governor.Baseline, 100e3)
	c.Seed = 43
	other := run(t, c)
	if other.AvgCorePowerW == a.AvgCorePowerW && other.Server.P99US == a.Server.P99US {
		t.Fatal("different seed produced identical results (suspicious)")
	}
}

func TestAWReducesPowerAtEveryLoad(t *testing.T) {
	for _, rate := range []float64{10e3, 100e3, 500e3} {
		base := run(t, quickCfg(governor.Baseline, rate))
		aw := run(t, quickCfg(governor.AW, rate))
		if aw.AvgCorePowerW >= base.AvgCorePowerW {
			t.Errorf("rate %v: AW power %v >= baseline %v", rate, aw.AvgCorePowerW, base.AvgCorePowerW)
		}
	}
}

func TestAWLatencyWithinOnePercent(t *testing.T) {
	// Paper claim: <1% end-to-end performance degradation.
	for _, rate := range []float64{50e3, 300e3} {
		base := run(t, quickCfg(governor.Baseline, rate))
		aw := run(t, quickCfg(governor.AW, rate))
		deg := (aw.EndToEnd.AvgUS - base.EndToEnd.AvgUS) / base.EndToEnd.AvgUS
		if deg > 0.01 {
			t.Errorf("rate %v: end-to-end degradation %.2f%% > 1%%", rate, deg*100)
		}
	}
}

func TestSavingsDeclineWithLoad(t *testing.T) {
	// Paper Fig. 8(b): AW's relative saving is larger at low-mid load
	// than at the highest load.
	savings := func(rate float64) float64 {
		base := run(t, quickCfg(governor.Baseline, rate))
		aw := run(t, quickCfg(governor.AW, rate))
		return (base.AvgCorePowerW - aw.AvgCorePowerW) / base.AvgCorePowerW
	}
	mid := savings(100e3)
	high := savings(500e3)
	if !(mid > high) {
		t.Fatalf("savings not declining: mid=%v high=%v", mid, high)
	}
	if high < 0.05 {
		t.Fatalf("high-load savings %v too small (paper: ~10%%)", high)
	}
}

func TestC6ResidencyAtLowLoadOnly(t *testing.T) {
	// Paper Fig. 8(a): deep C6 residency appears at low load and vanishes
	// as load grows.
	low := run(t, quickCfg(governor.Baseline, 10e3))
	high := run(t, quickCfg(governor.Baseline, 500e3))
	if low.Residency[cstate.C6] < 0.05 {
		t.Errorf("low-load C6 residency = %v, want noticeable", low.Residency[cstate.C6])
	}
	if high.Residency[cstate.C6] > 0.01 {
		t.Errorf("high-load C6 residency = %v, want ~0", high.Residency[cstate.C6])
	}
}

func TestDisabledStatesNeverUsed(t *testing.T) {
	res := run(t, quickCfg(governor.NTNoC6NoC1E, 100e3))
	if res.Residency[cstate.C6] != 0 || res.Residency[cstate.C1E] != 0 ||
		res.Residency[cstate.C6A] != 0 || res.Residency[cstate.C6AE] != 0 {
		t.Fatalf("disabled states have residency: %v", res.Residency)
	}
	if res.TransitionsPerSec[cstate.C6] != 0 {
		t.Fatal("transitions into disabled C6")
	}
}

func TestDisablingC6ImprovesLowLoadLatency(t *testing.T) {
	// Paper Fig. 9/12/13: C6's 133us wake-up hurts latency at low load.
	withC6 := run(t, quickCfg(governor.NTBaseline, 10e3))
	noC6 := run(t, quickCfg(governor.NTNoC6, 10e3))
	if noC6.Server.AvgUS >= withC6.Server.AvgUS {
		t.Fatalf("disabling C6 did not improve avg latency: %v vs %v",
			noC6.Server.AvgUS, withC6.Server.AvgUS)
	}
	if noC6.Server.P99US >= withC6.Server.P99US {
		t.Fatalf("disabling C6 did not improve tail: %v vs %v",
			noC6.Server.P99US, withC6.Server.P99US)
	}
	// But it costs power.
	if noC6.AvgCorePowerW <= withC6.AvgCorePowerW {
		t.Fatal("disabling C6 did not raise power")
	}
}

func TestDisablingC1ETradesPowerForLatency(t *testing.T) {
	// Paper Fig. 9: NT_No_C6,No_C1E has the best latency but the highest
	// power of the tuned configurations.
	noC6 := run(t, quickCfg(governor.NTNoC6, 300e3))
	noC1E := run(t, quickCfg(governor.NTNoC6NoC1E, 300e3))
	if noC1E.Server.AvgUS >= noC6.Server.AvgUS {
		t.Fatalf("disabling C1E did not improve avg latency: %v vs %v",
			noC1E.Server.AvgUS, noC6.Server.AvgUS)
	}
	if noC1E.AvgCorePowerW <= noC6.AvgCorePowerW {
		t.Fatal("disabling C1E did not raise power")
	}
}

func TestAWC6AConfigBeatsC1OnPowerAtSameLatency(t *testing.T) {
	// Paper Sec. 7.2: C6A provides C1-class latency at C1E-or-better
	// power.
	c1 := run(t, quickCfg(governor.TNoC6NoC1E, 200e3))
	aw := run(t, quickCfg(governor.TC6ANoC6NoC1E, 200e3))
	if aw.AvgCorePowerW >= c1.AvgCorePowerW*0.6 {
		t.Fatalf("C6A power %v not well below C1 config %v", aw.AvgCorePowerW, c1.AvgCorePowerW)
	}
	deg := (aw.Server.AvgUS - c1.Server.AvgUS) / c1.Server.AvgUS
	if deg > 0.02 {
		t.Fatalf("C6A latency degradation %v > 2%%", deg)
	}
}

func TestTurboBudgetBindsForC1Parked(t *testing.T) {
	// Paper Sec. 7.3: parking idle cores in C1 starves Turbo, while C6A
	// leaves thermal headroom.
	c1 := run(t, quickCfg(governor.TNoC6NoC1E, 500e3))
	aw := run(t, quickCfg(governor.TC6ANoC6NoC1E, 500e3))
	if aw.TurboFraction <= c1.TurboFraction {
		t.Fatalf("AW turbo fraction %v not above C1-parked %v", aw.TurboFraction, c1.TurboFraction)
	}
}

func TestSnoopTrafficRaisesIdlePower(t *testing.T) {
	cfg := quickCfg(governor.TC6ANoC6NoC1E, 10e3)
	quiet := run(t, cfg)
	cfg.SnoopRatePerSec = 200e3 // 20% duty at 1us per snoop
	noisy := run(t, cfg)
	if noisy.AvgCorePowerW <= quiet.AvgCorePowerW {
		t.Fatalf("snoop traffic did not raise power: %v vs %v",
			noisy.AvgCorePowerW, quiet.AvgCorePowerW)
	}
}

func TestZeroRateIdlesCompletely(t *testing.T) {
	cfg := quickCfg(governor.NTBaseline, 0)
	cfg.OSNoisePeriod = -1 // disable noise too
	res := run(t, cfg)
	if res.CompletedPerSec != 0 {
		t.Fatal("completions with zero load")
	}
	// All time in the deepest state after the governor learns.
	if res.Residency[cstate.C0] > 0.05 {
		t.Fatalf("C0 residency %v with no load", res.Residency[cstate.C0])
	}
	// Power ~ C6-or-C1 idle floor.
	if res.AvgCorePowerW > 1.5 {
		t.Fatalf("idle power %v too high", res.AvgCorePowerW)
	}
}

func TestEndToEndIncludesNetwork(t *testing.T) {
	res := run(t, quickCfg(governor.Baseline, 100e3))
	if res.EndToEnd.AvgUS < res.Server.AvgUS+100 {
		t.Fatalf("end-to-end %v does not include ~117us network over server %v",
			res.EndToEnd.AvgUS, res.Server.AvgUS)
	}
}

func TestFixedFreqSlowsService(t *testing.T) {
	// Fig. 8(d) methodology: the same run at 2.0 vs 2.2 GHz.
	cfg := quickCfg(governor.NTNoC6NoC1E, 300e3)
	cfg.FixedFreqHz = 2.0e9
	slow := run(t, cfg)
	cfg.FixedFreqHz = 2.2e9
	fast := run(t, cfg)
	if fast.Server.AvgUS >= slow.Server.AvgUS {
		t.Fatalf("higher frequency did not reduce latency: %v vs %v",
			fast.Server.AvgUS, slow.Server.AvgUS)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	_, err := New(Config{Cores: -1, Platform: governor.Baseline, Profile: workload.Memcached()})
	if err == nil {
		t.Fatal("negative cores accepted")
	}
	bad := quickCfg(governor.Config{Name: "bad", Menu: []cstate.ID{cstate.C1, cstate.C6A}}, 1000)
	if _, err := New(bad); err == nil {
		t.Fatal("invalid platform accepted")
	}
	cfg := quickCfg(governor.Baseline, -5)
	if _, err := New(cfg); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestTransitionsCounted(t *testing.T) {
	res := run(t, quickCfg(governor.Baseline, 100e3))
	var total float64
	for _, v := range res.TransitionsPerSec {
		total += v
	}
	if total <= 0 {
		t.Fatal("no transitions recorded")
	}
	// C0 entries should roughly match idle-state entries.
	if res.TransitionsPerSec[cstate.C0] <= 0 {
		t.Fatal("no C0 transitions")
	}
}

func TestMySQLProfileRuns(t *testing.T) {
	cfg := Config{
		Platform: governor.KVBaseline, Profile: workload.MySQL(),
		RatePerSec: 6e3, Duration: 200 * sim.Millisecond,
		Warmup: 20 * sim.Millisecond, Seed: 7,
	}
	res := run(t, cfg)
	// Paper Fig. 12(a): >= 40% C6 residency for MySQL baseline.
	if res.Residency[cstate.C6] < 0.30 {
		t.Errorf("MySQL C6 residency = %v, want >= ~0.4", res.Residency[cstate.C6])
	}
}

func TestKafkaProfileRuns(t *testing.T) {
	cfg := Config{
		Platform: governor.KVBaseline, Profile: workload.Kafka(),
		RatePerSec: 3e3, Duration: 200 * sim.Millisecond,
		Warmup: 20 * sim.Millisecond, Seed: 7,
	}
	res := run(t, cfg)
	// Paper Fig. 13(a): majority C6 residency at low Kafka load.
	if res.Residency[cstate.C6] < 0.40 {
		t.Errorf("Kafka C6 residency = %v, want majority", res.Residency[cstate.C6])
	}
}
