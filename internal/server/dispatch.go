package server

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xrand"
)

// Dispatch policy names accepted by Config.Dispatch. Policies are
// selected by name (mirroring governor policies) so they can be threaded
// through CLIs and experiment options as plain strings.
const (
	// DispatchRoundRobin cycles through cores in index order — the
	// paper's load-balancing assumption, maximizing idle-state entries by
	// spreading work thin (Sec. 2's "killer microseconds" regime).
	DispatchRoundRobin = "round-robin"
	// DispatchRandom picks a uniformly random core per request.
	DispatchRandom = "random"
	// DispatchLeastLoaded picks the core with the fewest outstanding
	// requests (ties to the lowest index) — an idealized join-shortest-
	// queue load balancer.
	DispatchLeastLoaded = "least-loaded"
	// DispatchPacked consolidates load onto the lowest-numbered cores:
	// a request goes to the first core whose backlog is below
	// Config.PackQueueCap, waking an additional core only when all
	// earlier ones are saturated. This is the energy-proportionality
	// scheduling the paper's round-robin assumption rules out: high
	// cores idle long enough for deep C-states while low cores stay hot.
	DispatchPacked = "packed"
)

// DispatchPolicies lists the built-in dispatch policy names.
func DispatchPolicies() []string {
	return []string{DispatchRoundRobin, DispatchRandom, DispatchLeastLoaded, DispatchPacked}
}

// Dispatcher selects the core that receives each arriving request.
// Implementations must be deterministic given the same request sequence
// and seed; any randomness must come from the provided stream.
type Dispatcher interface {
	// Name identifies the policy.
	Name() string
	// Pick returns the index of the receiving core. cores exposes each
	// core's Load() (queued + executing requests); implementations must
	// not mutate the cores.
	Pick(now sim.Time, cores []*coreRuntime) int
}

// newDispatcher constructs the named policy. The random stream is derived
// from the run seed so dispatch randomness never perturbs arrival or
// service sampling.
func newDispatcher(policy string, packCap int, rng *xrand.Rand) (Dispatcher, error) {
	switch policy {
	case "", DispatchRoundRobin:
		return &roundRobinDispatch{}, nil
	case DispatchRandom:
		return &randomDispatch{rng: rng}, nil
	case DispatchLeastLoaded:
		return leastLoadedDispatch{}, nil
	case DispatchPacked:
		if packCap <= 0 {
			packCap = defaultPackQueueCap
		}
		return packedDispatch{cap: packCap}, nil
	default:
		return nil, fmt.Errorf("server: unknown dispatch policy %q (known: %v)", policy, DispatchPolicies())
	}
}

// defaultPackQueueCap bounds per-core backlog under the packed policy.
const defaultPackQueueCap = 4

// Load reports the number of requests the core currently owns: the
// backlog plus the one in execution.
func (c *coreRuntime) Load() int {
	n := c.queue.len()
	if c.busy {
		n++
	}
	return n
}

type roundRobinDispatch struct{ next int }

func (*roundRobinDispatch) Name() string { return DispatchRoundRobin }

func (d *roundRobinDispatch) Pick(_ sim.Time, cores []*coreRuntime) int {
	i := d.next
	d.next = (d.next + 1) % len(cores)
	return i
}

type randomDispatch struct{ rng *xrand.Rand }

func (*randomDispatch) Name() string { return DispatchRandom }

func (d *randomDispatch) Pick(_ sim.Time, cores []*coreRuntime) int {
	return d.rng.Intn(len(cores))
}

type leastLoadedDispatch struct{}

func (leastLoadedDispatch) Name() string { return DispatchLeastLoaded }

func (leastLoadedDispatch) Pick(_ sim.Time, cores []*coreRuntime) int {
	best, bestLoad := 0, cores[0].Load()
	for i := 1; i < len(cores); i++ {
		if l := cores[i].Load(); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

type packedDispatch struct{ cap int }

func (packedDispatch) Name() string { return DispatchPacked }

func (d packedDispatch) Pick(_ sim.Time, cores []*coreRuntime) int {
	// First core with headroom wins; if every core is saturated, fall
	// back to the least-loaded one so the backlog stays bounded.
	best, bestLoad := 0, cores[0].Load()
	for i, c := range cores {
		l := c.Load()
		if l < d.cap {
			return i
		}
		if l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}
