package server

import (
	"reflect"
	"testing"

	"repro/internal/governor"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

func schedCfg(rate float64) Config {
	return Config{
		Platform:   governor.Baseline,
		Profile:    workload.Memcached(),
		RatePerSec: rate,
		Duration:   80 * sim.Millisecond,
		Warmup:     10 * sim.Millisecond,
		Seed:       23,
	}
}

// stripConfig zeroes the echoed Config so two Results can be compared on
// observables alone (the configs differ by construction: one carries the
// schedule).
func stripConfig(r Result) Result {
	r.Config = Config{}
	return r
}

// TestConstantScheduleMatchesStationaryOpenLoop is the scenario engine's
// ground-truth anchor at the server level: a one-phase constant schedule
// must reproduce the stationary RatePerSec run bit-for-bit — same RNG
// draws, same event sequence, same Result.
func TestConstantScheduleMatchesStationaryOpenLoop(t *testing.T) {
	cfg := schedCfg(150e3)
	want, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scenario.Constant("steady", 150e3, cfg.Warmup+cfg.Duration)
	if err != nil {
		t.Fatal(err)
	}
	scheduled := cfg
	scheduled.RatePerSec = 0 // the schedule is the only load source
	scheduled.Schedule = sched
	got, err := RunConfig(scheduled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripConfig(got), stripConfig(want)) {
		t.Errorf("constant schedule diverged from stationary run:\n got %+v\nwant %+v",
			stripConfig(got), stripConfig(want))
	}
}

func TestConstantScheduleMatchesStationaryBursty(t *testing.T) {
	cfg := schedCfg(150e3)
	cfg.LoadGen = LoadBursty
	want, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scenario.Constant("steady", 150e3, cfg.Warmup+cfg.Duration)
	if err != nil {
		t.Fatal(err)
	}
	scheduled := cfg
	scheduled.Schedule = sched
	got, err := RunConfig(scheduled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripConfig(got), stripConfig(want)) {
		t.Error("constant schedule diverged from stationary bursty run")
	}
}

// TestScheduleModulatesOfferedLoad checks the generator actually follows
// the phases: a half-silent schedule completes roughly half the requests
// of the full-rate run.
func TestScheduleModulatesOfferedLoad(t *testing.T) {
	cfg := schedCfg(200e3)
	full, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.Warmup + cfg.Duration
	sched, err := scenario.New("half",
		scenario.Phase{Name: "silent", Duration: total / 2},
		scenario.Phase{Name: "busy", Duration: total - total/2, StartRate: 200e3, EndRate: 200e3},
	)
	if err != nil {
		t.Fatal(err)
	}
	half := cfg
	half.RatePerSec = 0
	half.Schedule = sched
	got, err := RunConfig(half)
	if err != nil {
		t.Fatal(err)
	}
	if got.CompletedPerSec <= 0 {
		t.Fatal("load never resumed after the silent phase (zero-rate probe broken)")
	}
	// The silent phase covers the warmup plus the first measured stretch:
	// measured completions should land well below the full run but well
	// above zero. (Exact halves don't apply — the measured window is the
	// last 80ms of a 90ms schedule.)
	ratio := got.CompletedPerSec / full.CompletedPerSec
	if ratio < 0.3 || ratio > 0.75 {
		t.Errorf("half-silent schedule completed %.2fx of the full run, want ~0.44", ratio)
	}
}

// TestBurstyScheduleFollowsPhases runs the bursty generator under a
// spike schedule and checks the spike lifts throughput versus the
// constant-base bursty run.
func TestBurstyScheduleFollowsPhases(t *testing.T) {
	cfg := schedCfg(0)
	cfg.LoadGen = LoadBursty
	total := cfg.Warmup + cfg.Duration
	base, err := scenario.Constant("base", 50e3, total)
	if err != nil {
		t.Fatal(err)
	}
	spike, err := scenario.Spike(50e3, 6, total, total/3, total/3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s *scenario.Schedule) Result {
		c := cfg
		c.Schedule = s
		res, err := RunConfig(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	baseRes, spikeRes := run(base), run(spike)
	if spikeRes.CompletedPerSec <= baseRes.CompletedPerSec*1.5 {
		t.Errorf("spike schedule throughput %.0f not well above base %.0f",
			spikeRes.CompletedPerSec, baseRes.CompletedPerSec)
	}
}

// TestRampFromZeroGeneratesLoad is the regression test for the
// zero-opening-rate stall: a ramp phase starting at exactly 0 QPS turns
// positive immediately inside the phase, so the generator must probe
// into it (and censor astronomically long tiny-rate gaps at rate
// changes) rather than sleeping to the next phase boundary — which for
// a single-phase ramp is the end of the schedule.
func TestRampFromZeroGeneratesLoad(t *testing.T) {
	cfg := schedCfg(0)
	total := cfg.Warmup + cfg.Duration
	sched, err := scenario.Ramp("failover", 0, 400e3, total)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Schedule = sched
	got, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The measured window (last 80ms of 90ms) averages ~211K QPS offered.
	want := sched.AvgRate(cfg.Warmup, total)
	if got.CompletedPerSec < want*0.8 {
		t.Errorf("ramp-from-zero completed %.0f/s, want ~%.0f (generator stalled?)",
			got.CompletedPerSec, want)
	}
}

func TestScheduleRejectsClosedLoop(t *testing.T) {
	sched, err := scenario.Constant("steady", 1000, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := schedCfg(0)
	cfg.ClosedLoopConnections = 8
	cfg.Schedule = sched
	if _, err := RunConfig(cfg); err == nil {
		t.Error("closed-loop config with schedule accepted")
	}
	cfg2 := schedCfg(0)
	cfg2.LoadGen = LoadClosedLoop
	cfg2.ClosedLoopConnections = 8
	cfg2.Schedule = sched
	if _, err := RunConfig(cfg2); err == nil {
		t.Error("closed-loop loadgen with schedule accepted")
	}
}

// TestScheduledRunsAreDeterministic pins reproducibility: the same
// scheduled config twice yields identical results.
func TestScheduledRunsAreDeterministic(t *testing.T) {
	total := 90 * sim.Millisecond
	sched, err := scenario.ByName(scenario.NameDiurnal, 150e3, total)
	if err != nil {
		t.Fatal(err)
	}
	cfg := schedCfg(0)
	cfg.Schedule = sched
	a, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripConfig(a), stripConfig(b)) {
		t.Error("scheduled run not deterministic")
	}
}
