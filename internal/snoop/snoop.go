// Package snoop analyzes the impact of cache-coherence traffic on
// AgileWatts' power savings (paper Sec. 7.5): a core resident in C6A must
// wake its cache domain to serve snoops, eroding part of the C1->C6A
// saving. The analysis bounds the erosion between the no-snoop and
// snoop-saturated extremes.
package snoop

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/sim"
)

// Analysis holds the Sec. 7.5 bounding computation for a 100 % idle core
// that has only C1 (baseline) or C6A (AW) enabled.
type Analysis struct {
	// Idle power of each state with no snoop traffic (Table 1).
	C1IdleW, C6AIdleW float64
	// Power while continuously servicing snoops (Sec. 7.5: C1 + ~50 mW,
	// C6A + ~120 mW).
	C1SnoopW, C6ASnoopW float64
}

// FromCatalog builds the analysis from catalog parameters.
func FromCatalog(c *cstate.Catalog) Analysis {
	return Analysis{
		C1IdleW:   c.Params(cstate.C1).PowerWatts,
		C6AIdleW:  c.Params(cstate.C6A).PowerWatts,
		C1SnoopW:  c.Params(cstate.C1).SnoopPowerWatts,
		C6ASnoopW: c.Params(cstate.C6A).SnoopPowerWatts,
	}
}

// SavingsNoSnoops returns AW's power saving for a fully idle core with no
// snoop traffic (paper: (1.44-0.3)/1.44 = 79 %).
func (a Analysis) SavingsNoSnoops() float64 {
	if a.C1IdleW <= 0 {
		return 0
	}
	return (a.C1IdleW - a.C6AIdleW) / a.C1IdleW * 100
}

// SavingsSaturatedSnoops returns the saving when the core services snoops
// continuously (paper: (1.49-0.47)/1.49 = 68 %).
func (a Analysis) SavingsSaturatedSnoops() float64 {
	if a.C1SnoopW <= 0 {
		return 0
	}
	return (a.C1SnoopW - a.C6ASnoopW) / a.C1SnoopW * 100
}

// WorstCaseLoss returns the savings opportunity lost to snoop traffic in
// the worst case (paper: ~11 percentage points).
func (a Analysis) WorstCaseLoss() float64 {
	return a.SavingsNoSnoops() - a.SavingsSaturatedSnoops()
}

// SavingsAtDuty interpolates the saving at a snoop duty cycle in [0,1]
// (fraction of idle time the cache domain is servicing snoops).
func (a Analysis) SavingsAtDuty(duty float64) float64 {
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	c1 := a.C1IdleW*(1-duty) + a.C1SnoopW*duty
	c6a := a.C6AIdleW*(1-duty) + a.C6ASnoopW*duty
	if c1 <= 0 {
		return 0
	}
	return (c1 - c6a) / c1 * 100
}

// DutyCycle converts a snoop rate and per-snoop cache-active time into a
// duty cycle.
func DutyCycle(ratePerSec float64, serviceTime sim.Time) float64 {
	d := ratePerSec * float64(serviceTime) / 1e9
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// Row is one output line of the snoop-impact sweep.
type Row struct {
	Duty            float64
	SavingsPercent  float64
	C1EffectiveW    float64
	C6AEffectiveW   float64
	LossVsNoSnoopPP float64
}

// Sweep evaluates savings across duty cycles.
func (a Analysis) Sweep(duties []float64) []Row {
	base := a.SavingsNoSnoops()
	out := make([]Row, 0, len(duties))
	for _, d := range duties {
		if d < 0 || d > 1 {
			panic(fmt.Sprintf("snoop: duty %v out of range", d))
		}
		s := a.SavingsAtDuty(d)
		out = append(out, Row{
			Duty:            d,
			SavingsPercent:  s,
			C1EffectiveW:    a.C1IdleW*(1-d) + a.C1SnoopW*d,
			C6AEffectiveW:   a.C6AIdleW*(1-d) + a.C6ASnoopW*d,
			LossVsNoSnoopPP: base - s,
		})
	}
	return out
}
