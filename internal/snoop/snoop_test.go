package snoop

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cstate"
	"repro/internal/sim"
)

func TestSavingsBoundsMatchPaper(t *testing.T) {
	a := FromCatalog(cstate.Skylake())
	// Paper Sec. 7.5: 79% with no snoops, 68% at saturation, ~11pp loss.
	if s := a.SavingsNoSnoops(); math.Abs(s-79.2) > 0.5 {
		t.Errorf("no-snoop savings = %.1f%%, want ~79%%", s)
	}
	if s := a.SavingsSaturatedSnoops(); math.Abs(s-68.5) > 0.8 {
		t.Errorf("saturated savings = %.1f%%, want ~68%%", s)
	}
	if l := a.WorstCaseLoss(); l < 9 || l > 13 {
		t.Errorf("worst-case loss = %.1fpp, want ~11pp", l)
	}
}

func TestSavingsAtDutyEndpoints(t *testing.T) {
	a := FromCatalog(cstate.Skylake())
	if math.Abs(a.SavingsAtDuty(0)-a.SavingsNoSnoops()) > 1e-9 {
		t.Error("duty 0 != no-snoop savings")
	}
	if math.Abs(a.SavingsAtDuty(1)-a.SavingsSaturatedSnoops()) > 1e-9 {
		t.Error("duty 1 != saturated savings")
	}
	// Clamping.
	if a.SavingsAtDuty(-1) != a.SavingsAtDuty(0) || a.SavingsAtDuty(2) != a.SavingsAtDuty(1) {
		t.Error("duty not clamped")
	}
}

func TestDutyCycle(t *testing.T) {
	// 100K snoops/s at 1us each = 10% duty.
	if d := DutyCycle(100e3, sim.Microsecond); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("duty = %v", d)
	}
	if DutyCycle(1e12, sim.Microsecond) != 1 {
		t.Fatal("duty not capped at 1")
	}
	if DutyCycle(-1, sim.Microsecond) != 0 {
		t.Fatal("negative rate not clamped")
	}
}

func TestSweep(t *testing.T) {
	a := FromCatalog(cstate.Skylake())
	rows := a.Sweep([]float64{0, 0.25, 0.5, 0.75, 1})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Savings decline monotonically with duty.
	for i := 1; i < len(rows); i++ {
		if rows[i].SavingsPercent > rows[i-1].SavingsPercent {
			t.Fatal("savings not monotone in duty")
		}
	}
	if rows[0].LossVsNoSnoopPP != 0 {
		t.Fatal("zero-duty loss nonzero")
	}
	if rows[4].LossVsNoSnoopPP < 9 {
		t.Fatal("saturated loss too small")
	}
}

func TestSweepPanicsOutOfRange(t *testing.T) {
	a := FromCatalog(cstate.Skylake())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range duty did not panic")
		}
	}()
	a.Sweep([]float64{1.5})
}

// Property: savings at any duty lie between the two bounds.
func TestPropertySavingsBounded(t *testing.T) {
	a := FromCatalog(cstate.Skylake())
	f := func(d float64) bool {
		d = math.Mod(math.Abs(d), 1)
		s := a.SavingsAtDuty(d)
		return s <= a.SavingsNoSnoops()+1e-9 && s >= a.SavingsSaturatedSnoops()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroPowerGuards(t *testing.T) {
	var a Analysis
	if a.SavingsNoSnoops() != 0 || a.SavingsSaturatedSnoops() != 0 || a.SavingsAtDuty(0.5) != 0 {
		t.Fatal("zero-power analysis must return 0")
	}
}
