// Package workload synthesizes the request streams of the paper's
// latency-critical services — Memcached (Mutilate/ETC), Apache Kafka and
// MySQL (sysbench OLTP) — as open-loop arrival processes paired with
// service-time distributions calibrated at the platform's base frequency.
//
// Substitution note: the paper drives real server processes from a
// six-machine cluster. What its models consume, however, is the busy/idle
// interleaving each service induces on the cores — irregular
// microsecond-scale idle periods at 5–25 % utilization. The profiles here
// regenerate that interleaving (arrival irregularity, service-time shape
// and tail, frequency sensitivity, network RTT) without the byte-level
// protocols.
package workload

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xrand"
)

// ArrivalProcess produces inter-arrival gaps for a target aggregate rate.
type ArrivalProcess interface {
	// NextGap returns the next inter-arrival time at ratePerSec.
	NextGap(r *xrand.Rand, ratePerSec float64) sim.Time
	// Name identifies the process.
	Name() string
}

// CloneableArrival is implemented by stateful arrival processes. The
// simulator copies such processes before a run, so a Profile value can be
// shared across concurrent or repeated simulations without its modulation
// state leaking between them.
type CloneableArrival interface {
	ArrivalProcess
	// CloneArrival returns an independent copy carrying the same
	// parameters and current modulation state.
	CloneArrival() ArrivalProcess
}

// fingerprinter is implemented by workload components whose behavior is
// fully determined by the returned value string; components backed by
// live mutable state (e.g. the kvstore ETC service) do not implement it,
// which marks profiles containing them as non-memoizable.
type fingerprinter interface {
	fingerprint() string
}

// Poisson is a memoryless arrival process — the standard open-loop load
// generator model (Mutilate's default).
type Poisson struct{}

// Name implements ArrivalProcess.
func (Poisson) Name() string { return "poisson" }

func (Poisson) fingerprint() string { return "poisson" }

// NextGap implements ArrivalProcess.
func (Poisson) NextGap(r *xrand.Rand, ratePerSec float64) sim.Time {
	if ratePerSec <= 0 {
		return sim.MaxTime
	}
	gap := r.Exp(1e9 / ratePerSec)
	if gap < 1 {
		gap = 1
	}
	return sim.Time(gap)
}

// MMPP2 is a two-state Markov-modulated Poisson process: it alternates
// between a calm state and a bursty state, producing the irregular
// request streams that microservice fan-out creates (Sec. 1).
type MMPP2 struct {
	// BurstRateBoost multiplies the rate while bursting.
	BurstRateBoost float64
	// BurstFraction is the long-run fraction of time spent bursting.
	BurstFraction float64
	// MeanBurst is the mean burst-state dwell time.
	MeanBurst sim.Time

	bursting  bool
	dwellLeft float64
}

// NewMMPP2 returns a moderately bursty modulated process.
func NewMMPP2() *MMPP2 {
	return &MMPP2{BurstRateBoost: 4, BurstFraction: 0.2, MeanBurst: 2 * sim.Millisecond}
}

// Name implements ArrivalProcess.
func (m *MMPP2) Name() string { return "mmpp2" }

// CloneArrival implements CloneableArrival.
func (m *MMPP2) CloneArrival() ArrivalProcess {
	cp := *m
	return &cp
}

func (m *MMPP2) fingerprint() string {
	return fmt.Sprintf("mmpp2:%g,%g,%d,%v,%g",
		m.BurstRateBoost, m.BurstFraction, m.MeanBurst, m.bursting, m.dwellLeft)
}

// NextGap implements ArrivalProcess.
func (m *MMPP2) NextGap(r *xrand.Rand, ratePerSec float64) sim.Time {
	if ratePerSec <= 0 {
		return sim.MaxTime
	}
	// The two states are balanced so the long-run average rate equals
	// ratePerSec: burst state runs at boost x calm rate.
	calmFrac := 1 - m.BurstFraction
	calmRate := ratePerSec / (calmFrac + m.BurstFraction*m.BurstRateBoost)
	rate := calmRate
	if m.bursting {
		rate = calmRate * m.BurstRateBoost
	}
	gap := r.Exp(1e9 / rate)
	if gap < 1 {
		gap = 1
	}
	// Advance the modulating chain.
	m.dwellLeft -= gap
	if m.dwellLeft <= 0 {
		m.bursting = !m.bursting
		mean := float64(m.MeanBurst)
		if !m.bursting {
			mean = mean * (1 - m.BurstFraction) / m.BurstFraction
		}
		m.dwellLeft = r.Exp(mean)
	}
	return sim.Time(gap)
}

// ServiceDist samples per-request service demands (at the profile's
// reference frequency).
type ServiceDist interface {
	Sample(r *xrand.Rand) sim.Time
	// Mean returns the distribution's analytic mean, used to compute
	// offered utilization.
	Mean() sim.Time
	Name() string
}

// LogNormalService is a log-normal service time with given mean and CV.
type LogNormalService struct {
	MeanTime sim.Time
	CV       float64
}

// Name implements ServiceDist.
func (s LogNormalService) Name() string { return "lognormal" }

func (s LogNormalService) fingerprint() string {
	return fmt.Sprintf("lognormal:%d,%g", s.MeanTime, s.CV)
}

// Mean implements ServiceDist.
func (s LogNormalService) Mean() sim.Time { return s.MeanTime }

// Sample implements ServiceDist.
func (s LogNormalService) Sample(r *xrand.Rand) sim.Time {
	v := r.LogNormalMeanCV(float64(s.MeanTime), s.CV)
	if v < 1 {
		v = 1
	}
	return sim.Time(v)
}

// TailedService mixes a log-normal body with a bounded-Pareto tail,
// capturing the heavy tails of real key-value and OLTP services.
type TailedService struct {
	Body LogNormalService
	// TailProb is the probability a request draws from the tail.
	TailProb float64
	// TailXm and TailAlpha parameterize the Pareto tail.
	TailXm    sim.Time
	TailAlpha float64
	// TailCap truncates pathological samples.
	TailCap sim.Time
}

// Name implements ServiceDist.
func (s TailedService) Name() string { return "lognormal+pareto" }

func (s TailedService) fingerprint() string {
	return fmt.Sprintf("tailed:%s,%g,%d,%g,%d",
		s.Body.fingerprint(), s.TailProb, s.TailXm, s.TailAlpha, s.TailCap)
}

// Mean implements ServiceDist.
func (s TailedService) Mean() sim.Time {
	// Bounded Pareto mean ~ xm*alpha/(alpha-1) for alpha > 1 (cap effect
	// ignored: it is far in the tail).
	tailMean := float64(s.TailXm) * s.TailAlpha / (s.TailAlpha - 1)
	m := (1-s.TailProb)*float64(s.Body.MeanTime) + s.TailProb*tailMean
	return sim.Time(m)
}

// Sample implements ServiceDist.
func (s TailedService) Sample(r *xrand.Rand) sim.Time {
	if r.Bernoulli(s.TailProb) {
		v := r.Pareto(float64(s.TailXm), s.TailAlpha)
		if s.TailCap > 0 && v > float64(s.TailCap) {
			v = float64(s.TailCap)
		}
		return sim.Time(v)
	}
	return s.Body.Sample(r)
}

// Profile is a complete service characterization.
type Profile struct {
	Name string
	// RefFreqHz is the frequency the service demands are calibrated at.
	RefFreqHz float64
	// FreqScalability is the workload's performance sensitivity to
	// frequency (Fig. 8(d): ~0.45 for Memcached).
	FreqScalability float64
	// NetworkRTT is the mean client<->server network latency added to
	// end-to-end response times (Sec. 7.1: 117 us).
	NetworkRTT sim.Time
	// NetworkCV is the RTT's coefficient of variation.
	NetworkCV float64
	// Arrivals and Service define the load.
	Arrivals ArrivalProcess
	Service  ServiceDist
}

// Validate checks the profile is usable.
func (p Profile) Validate() error {
	if p.RefFreqHz <= 0 {
		return fmt.Errorf("workload %q: non-positive reference frequency", p.Name)
	}
	if p.Arrivals == nil || p.Service == nil {
		return fmt.Errorf("workload %q: missing arrivals or service", p.Name)
	}
	if p.FreqScalability < 0 || p.FreqScalability > 1 {
		return fmt.Errorf("workload %q: scalability %v out of [0,1]", p.Name, p.FreqScalability)
	}
	return nil
}

// Fingerprint returns a deterministic identity string for the profile and
// true when every component's behavior is fully captured by value — the
// precondition for memoizing simulation results keyed on it. Profiles
// backed by live mutable state (e.g. MemcachedETC's kvstore) report false.
func (p Profile) Fingerprint() (string, bool) {
	af, ok := p.Arrivals.(fingerprinter)
	if !ok {
		return "", false
	}
	sf, ok := p.Service.(fingerprinter)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s|ref=%g|scal=%g|rtt=%d|cv=%g|arr=%s|svc=%s",
		p.Name, p.RefFreqHz, p.FreqScalability, p.NetworkRTT, p.NetworkCV,
		af.fingerprint(), sf.fingerprint()), true
}

// UtilizationAt returns the offered per-core utilization at an aggregate
// rate spread over the given core count.
func (p Profile) UtilizationAt(ratePerSec float64, cores int) float64 {
	if cores <= 0 {
		return 0
	}
	return ratePerSec / float64(cores) * float64(p.Service.Mean()) / 1e9
}

// SampleNetwork draws one network RTT.
func (p Profile) SampleNetwork(r *xrand.Rand) sim.Time {
	if p.NetworkRTT == 0 {
		return 0
	}
	if p.NetworkCV <= 0 {
		return p.NetworkRTT
	}
	v := r.LogNormalMeanCV(float64(p.NetworkRTT), p.NetworkCV)
	return sim.Time(v)
}

// Memcached returns the ETC-like key-value profile: microsecond-scale
// lognormal service with a light Pareto tail, Poisson open-loop arrivals,
// moderate frequency scalability, 117 us network RTT.
func Memcached() Profile {
	return Profile{
		Name:            "memcached",
		RefFreqHz:       2.2e9,
		FreqScalability: 0.45,
		NetworkRTT:      117 * sim.Microsecond,
		NetworkCV:       0.30,
		Arrivals:        Poisson{},
		Service: TailedService{
			Body:      LogNormalService{MeanTime: 7 * sim.Microsecond, CV: 0.7},
			TailProb:  0.05,
			TailXm:    25 * sim.Microsecond,
			TailAlpha: 2.2,
			TailCap:   2 * sim.Millisecond,
		},
	}
}

// Kafka returns the event-streaming profile: bursty batched arrivals and
// tens-of-microseconds batch handling.
func Kafka() Profile {
	return Profile{
		Name:            "kafka",
		RefFreqHz:       2.2e9,
		FreqScalability: 0.35,
		NetworkRTT:      117 * sim.Microsecond,
		NetworkCV:       0.30,
		Arrivals:        NewMMPP2(),
		Service: TailedService{
			Body:      LogNormalService{MeanTime: 25 * sim.Microsecond, CV: 0.9},
			TailProb:  0.03,
			TailXm:    80 * sim.Microsecond,
			TailAlpha: 2.0,
			TailCap:   5 * sim.Millisecond,
		},
	}
}

// MySQL returns the sysbench-OLTP profile: hundreds-of-microseconds
// transactions with a heavy tail and higher frequency scalability.
func MySQL() Profile {
	return Profile{
		Name:            "mysql",
		RefFreqHz:       2.2e9,
		FreqScalability: 0.60,
		NetworkRTT:      117 * sim.Microsecond,
		NetworkCV:       0.25,
		Arrivals:        Poisson{},
		Service: TailedService{
			Body:      LogNormalService{MeanTime: 180 * sim.Microsecond, CV: 1.0},
			TailProb:  0.02,
			TailXm:    600 * sim.Microsecond,
			TailAlpha: 1.8,
			TailCap:   20 * sim.Millisecond,
		},
	}
}

// ByName returns a profile by service name.
func ByName(name string) (Profile, error) {
	switch name {
	case "memcached":
		return Memcached(), nil
	case "kafka":
		return Kafka(), nil
	case "mysql":
		return MySQL(), nil
	default:
		return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
	}
}
