package workload

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func TestKVServiceMeanPlausible(t *testing.T) {
	svc, err := NewKVService(kvstore.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated to land in the same microsecond band as the closed-form
	// Memcached service (~5-15us).
	if svc.Mean() < 4*sim.Microsecond || svc.Mean() > 20*sim.Microsecond {
		t.Fatalf("mean demand = %v, want ~5-15us", svc.Mean())
	}
	if svc.Name() != "etc-kvstore" {
		t.Fatal("name wrong")
	}
	if svc.HitRatio() <= 0.5 {
		t.Fatalf("warmed hit ratio = %v", svc.HitRatio())
	}
}

func TestKVServiceSamples(t *testing.T) {
	svc, err := NewKVService(kvstore.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	var sum float64
	const n = 20_000
	for i := 0; i < n; i++ {
		d := svc.Sample(r)
		if d <= 0 {
			t.Fatal("non-positive demand")
		}
		sum += float64(d)
	}
	mean := sim.Time(sum / n)
	// Live mean should be near the construction-time estimate.
	ratio := float64(mean) / float64(svc.Mean())
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("live mean %v vs estimate %v", mean, svc.Mean())
	}
}

func TestMemcachedETCProfile(t *testing.T) {
	p, err := MemcachedETC(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Name != "memcached-etc" {
		t.Fatal("profile name wrong")
	}
	// Same network/scalability envelope as the closed-form profile.
	base := Memcached()
	if p.NetworkRTT != base.NetworkRTT || p.FreqScalability != base.FreqScalability {
		t.Fatal("ETC profile envelope diverged from Memcached()")
	}
}

func TestMemcachedETCBadConfig(t *testing.T) {
	bad := kvstore.DefaultConfig()
	bad.Keys = 0
	if _, err := NewKVService(bad, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}
