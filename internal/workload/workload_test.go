package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/xrand"
)

func TestPoissonRate(t *testing.T) {
	r := xrand.New(1)
	p := Poisson{}
	var total sim.Time
	const n = 100000
	for i := 0; i < n; i++ {
		total += p.NextGap(r, 10000) // 10 KQPS -> mean gap 100us
	}
	mean := float64(total) / n
	if math.Abs(mean-100e3)/100e3 > 0.02 {
		t.Fatalf("mean gap = %vns, want ~100000", mean)
	}
}

func TestPoissonZeroRate(t *testing.T) {
	r := xrand.New(1)
	if g := (Poisson{}).NextGap(r, 0); g != sim.MaxTime {
		t.Fatalf("zero rate gap = %v", g)
	}
}

func TestMMPP2PreservesRate(t *testing.T) {
	r := xrand.New(2)
	m := NewMMPP2()
	var total sim.Time
	const n = 200000
	for i := 0; i < n; i++ {
		total += m.NextGap(r, 50000)
	}
	mean := float64(total) / n
	want := 1e9 / 50000.0
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("MMPP mean gap = %v, want ~%v", mean, want)
	}
}

func TestMMPP2Burstier(t *testing.T) {
	// The squared coefficient of variation of MMPP gaps must exceed
	// Poisson's (=1).
	r := xrand.New(3)
	m := NewMMPP2()
	var sum, sum2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		g := float64(m.NextGap(r, 50000))
		sum += g
		sum2 += g * g
	}
	mean := sum / n
	cv2 := (sum2/n - mean*mean) / (mean * mean)
	if cv2 < 1.2 {
		t.Fatalf("MMPP cv^2 = %v, want > 1.2 (burstier than Poisson)", cv2)
	}
}

func TestLogNormalServiceMean(t *testing.T) {
	r := xrand.New(4)
	s := LogNormalService{MeanTime: 10 * sim.Microsecond, CV: 0.7}
	var total sim.Time
	const n = 200000
	for i := 0; i < n; i++ {
		total += s.Sample(r)
	}
	mean := float64(total) / n
	if math.Abs(mean-10e3)/10e3 > 0.03 {
		t.Fatalf("sampled mean = %v, want ~10000ns", mean)
	}
	if s.Mean() != 10*sim.Microsecond {
		t.Fatal("analytic mean wrong")
	}
}

func TestTailedServiceMeanAndTail(t *testing.T) {
	r := xrand.New(5)
	s := Memcached().Service.(TailedService)
	var total float64
	max := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		v := float64(s.Sample(r))
		total += v
		if v > max {
			max = v
		}
	}
	mean := total / n
	analytic := float64(s.Mean())
	if math.Abs(mean-analytic)/analytic > 0.05 {
		t.Fatalf("sampled mean %v vs analytic %v", mean, analytic)
	}
	// The tail must produce samples far beyond the body mean.
	if max < 5*analytic {
		t.Fatalf("max sample %v suspiciously small", max)
	}
	// And must respect the cap.
	if max > float64(s.TailCap) {
		t.Fatalf("sample %v exceeds cap %v", max, s.TailCap)
	}
}

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{Memcached(), Kafka(), MySQL()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"memcached", "kafka", "mysql"} {
		p, err := ByName(n)
		if err != nil || p.Name != n {
			t.Errorf("ByName(%s) = %v, %v", n, p.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestUtilizationAt(t *testing.T) {
	p := Memcached()
	// Paper: latency-critical servers run at 5-25% utilization across the
	// evaluated load range.
	lo := p.UtilizationAt(10e3, 20)
	hi := p.UtilizationAt(500e3, 20)
	if lo <= 0 || lo > 0.03 {
		t.Errorf("10KQPS utilization = %v, want well under 5%%", lo)
	}
	if hi < 0.15 || hi > 0.35 {
		t.Errorf("500KQPS utilization = %v, want ~20-25%%", hi)
	}
	if p.UtilizationAt(1000, 0) != 0 {
		t.Error("zero cores must give 0")
	}
}

func TestSampleNetwork(t *testing.T) {
	r := xrand.New(6)
	p := Memcached()
	var total float64
	const n = 100000
	for i := 0; i < n; i++ {
		total += float64(p.SampleNetwork(r))
	}
	mean := total / n
	if math.Abs(mean-117e3)/117e3 > 0.03 {
		t.Fatalf("network mean = %vns, want ~117us", mean)
	}
	// Zero-RTT profile.
	p.NetworkRTT = 0
	if p.SampleNetwork(r) != 0 {
		t.Fatal("zero RTT must sample 0")
	}
	// Deterministic RTT with no CV.
	p.NetworkRTT = 10 * sim.Microsecond
	p.NetworkCV = 0
	if p.SampleNetwork(r) != 10*sim.Microsecond {
		t.Fatal("cv=0 must return RTT exactly")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	p := Memcached()
	p.RefFreqHz = 0
	if p.Validate() == nil {
		t.Error("zero frequency accepted")
	}
	p = Memcached()
	p.Arrivals = nil
	if p.Validate() == nil {
		t.Error("nil arrivals accepted")
	}
	p = Memcached()
	p.FreqScalability = 1.5
	if p.Validate() == nil {
		t.Error("scalability > 1 accepted")
	}
}

func TestServiceMeansOrdered(t *testing.T) {
	// MySQL transactions >> Kafka batches >> Memcached lookups.
	mc := Memcached().Service.Mean()
	kf := Kafka().Service.Mean()
	my := MySQL().Service.Mean()
	if !(mc < kf && kf < my) {
		t.Fatalf("service means not ordered: %v %v %v", mc, kf, my)
	}
}
