package stats

import (
	"testing"

	"repro/internal/xrand"
)

// BenchmarkHistogramAdd measures per-sample recording cost.
func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram()
	r := xrand.New(1)
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = r.Exp(200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(vals[i&4095])
	}
}

// BenchmarkHistogramQuantile measures tail-query cost on a populated
// histogram.
func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	r := xrand.New(2)
	for i := 0; i < 100_000; i++ {
		h.Add(r.Exp(200))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

// BenchmarkResidencySwitch measures C-state switch accounting cost.
func BenchmarkResidencySwitch(b *testing.B) {
	res := NewResidency([]string{"C0", "C1", "C6"}, 0, 0)
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 100
		res.Switch(i%3, now)
	}
}
