package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistogramMergeEqualsReplay pins Merge's contract: merging o into h
// is indistinguishable from replaying o's samples into h.
func TestHistogramMergeEqualsReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewHistogram()
	b := NewHistogram()
	replay := NewHistogram()
	for i := 0; i < 500; i++ {
		va := math.Exp(rng.Float64() * 12) // span sub-1 to ~160K
		vb := rng.Float64() * 900
		a.Add(va)
		b.Add(vb)
		replay.Add(va)
		replay.Add(vb)
	}
	merged := NewHistogram()
	merged.Merge(a)
	merged.Merge(b)
	if merged.Count() != replay.Count() {
		t.Fatalf("merge count %d, replay %d", merged.Count(), replay.Count())
	}
	// Sums accumulate in different orders (totals vs per-sample), so the
	// mean is exact only up to float addition reassociation.
	if math.Abs(merged.Mean()-replay.Mean()) > 1e-9*math.Abs(replay.Mean()) {
		t.Fatalf("merge mean %v, replay %v", merged.Mean(), replay.Mean())
	}
	if merged.Min() != replay.Min() || merged.Max() != replay.Max() {
		t.Fatalf("merge min/max %v/%v, replay %v/%v",
			merged.Min(), merged.Max(), replay.Min(), replay.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if mq, rq := merged.Quantile(q), replay.Quantile(q); mq != rq {
			t.Errorf("q%g: merged %v != replayed %v", q, mq, rq)
		}
	}
}

// TestHistogramMergeScaled pins the weighted merge: MergeScaled(o, k)
// equals k plain merges, and zero-count/nil/zero-times merges are no-ops.
func TestHistogramMergeScaled(t *testing.T) {
	o := NewHistogram()
	for _, v := range []float64{3, 17, 250, 9000} {
		o.Add(v)
	}
	scaled := NewHistogram()
	scaled.MergeScaled(o, 5)
	looped := NewHistogram()
	for i := 0; i < 5; i++ {
		looped.Merge(o)
	}
	if scaled.Count() != looped.Count() || scaled.Mean() != looped.Mean() {
		t.Fatalf("scaled count/mean %d/%v, looped %d/%v",
			scaled.Count(), scaled.Mean(), looped.Count(), looped.Mean())
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		if sq, lq := scaled.Quantile(q), looped.Quantile(q); sq != lq {
			t.Errorf("q%g: scaled %v != looped %v", q, sq, lq)
		}
	}
	before := scaled.Count()
	scaled.Merge(nil)
	scaled.Merge(NewHistogram())
	scaled.MergeScaled(o, 0)
	if scaled.Count() != before {
		t.Error("no-op merges changed the histogram")
	}
}

// TestHistogramMergeGeometryPanic pins the geometry guard.
func TestHistogramMergeGeometryPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched geometries did not panic")
		}
	}()
	o := NewHistogram()
	o.Add(1)
	var zero Histogram // subBuckets 0: a different geometry
	zero.Merge(o)
}

// TestWeightedSeriesMatchesSortedSeries is the exactness contract the
// class-collapsed fleet collector relies on: a WeightedSeries answers
// every quantile bit-for-bit like a SortedSeries over the expanded
// multiset — and with unit weights, like a SortedSeries over the
// original series.
func TestWeightedSeriesMatchesSortedSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qs := []float64{-0.1, 0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 1.5}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		vals := make([]float64, n)
		weights := make([]uint64, n)
		var expanded []float64
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			weights[i] = uint64(1 + rng.Intn(6))
			for k := uint64(0); k < weights[i]; k++ {
				expanded = append(expanded, vals[i])
			}
		}
		ws := NewWeightedSeries(vals, weights)
		ss := NewSortedSeries(expanded)
		for _, q := range qs {
			if got, want := ws.Percentile(q), ss.Percentile(q); got != want {
				t.Fatalf("trial %d q%g: weighted %v != expanded %v (vals %v weights %v)",
					trial, q, got, want, vals, weights)
			}
		}
		// Unit weights: interchangeable with SortedSeries on the raw series.
		unit := make([]uint64, n)
		for i := range unit {
			unit[i] = 1
		}
		uw := NewWeightedSeries(vals, unit)
		us := NewSortedSeries(vals)
		for _, q := range qs {
			if got, want := uw.Percentile(q), us.Percentile(q); got != want {
				t.Fatalf("trial %d q%g: unit-weighted %v != sorted %v", trial, q, got, want)
			}
		}
	}
}

// TestWeightedSeriesEdges pins empty input, zero-weight dropping, and
// the length-mismatch panic.
func TestWeightedSeriesEdges(t *testing.T) {
	if got := (WeightedSeries{}).Percentile(0.5); got != 0 {
		t.Errorf("empty series percentile = %v, want 0", got)
	}
	s := NewWeightedSeries([]float64{5, 1, 9}, []uint64{0, 3, 0})
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Percentile(q); got != 1 {
			t.Errorf("zero-weight samples leaked: q%g = %v, want 1", q, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	NewWeightedSeries([]float64{1}, nil)
}

// TestMeanCI95 pins the t-based interval math against hand-computed
// values and the degenerate small-sample cases.
func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{1, 2, 3})
	if mean != 2 {
		t.Errorf("mean = %v, want 2", mean)
	}
	want := 4.303 * math.Sqrt(1.0/3.0) // s^2 = 1, n = 3, df = 2
	if math.Abs(half-want) > 1e-12 {
		t.Errorf("half-width = %v, want %v", half, want)
	}
	if m, h := MeanCI95([]float64{7}); m != 7 || h != 0 {
		t.Errorf("single sample CI = (%v, %v), want (7, 0)", m, h)
	}
	if m, h := MeanCI95(nil); m != 0 || h != 0 {
		t.Errorf("empty CI = (%v, %v), want zeros", m, h)
	}
}

// TestTCrit95 pins the table edges and the large-df fallback.
func TestTCrit95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{{0, 0}, {1, 12.706}, {2, 4.303}, {30, 2.042}, {31, 1.96}, {1000, 1.96}}
	for _, c := range cases {
		if got := TCrit95(c.df); got != c.want {
			t.Errorf("TCrit95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
}
