package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.StdDev()-2.138089935299395) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty stream moments not zero")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Add(float64(i))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5000}, {0.90, 9000}, {0.99, 9900}, {0.999, 9990},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want)/tc.want > 0.02 {
			t.Fatalf("q%.3f = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 10000 {
		t.Fatalf("extreme quantiles: %v, %v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram()
	vals := []float64{0.5, 1.5, 130, 42000, 1e6}
	sum := 0.0
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if math.Abs(h.Mean()-sum/5) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 1e6 || h.Min() != 0.5 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Add(-5)
	if h.Min() != 0 {
		t.Fatalf("negative sample not clamped: min=%v", h.Min())
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestPropertyHistogramMonotone(t *testing.T) {
	r := xrand.New(99)
	f := func(n uint8) bool {
		h := NewHistogram()
		for i := 0; i < int(n)+2; i++ {
			h.Add(r.Exp(100))
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(1) <= h.Max()+1e-9 && h.Quantile(0) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram relative error stays within ~1% for positive values.
func TestPropertyHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	r := xrand.New(7)
	for i := 0; i < 1000; i++ {
		v := r.Exp(500) + 1
		h2 := NewHistogram()
		h2.Add(v)
		got := h2.Quantile(0.5)
		if math.Abs(got-v)/v > 0.01 {
			t.Fatalf("relative error too large: v=%v got=%v", v, got)
		}
	}
	_ = h
}

func TestResidencyAccounting(t *testing.T) {
	r := NewResidency([]string{"C0", "C1", "C6"}, 0, 0)
	r.Switch(1, 100) // C0 for 100
	r.Switch(2, 300) // C1 for 200
	r.Switch(0, 600) // C6 for 300
	r.Close(1000)    // C0 for 400
	if r.TimeIn(0) != 500 || r.TimeIn(1) != 200 || r.TimeIn(2) != 300 {
		t.Fatalf("times = %d/%d/%d", r.TimeIn(0), r.TimeIn(1), r.TimeIn(2))
	}
	if r.Total() != 1000 {
		t.Fatalf("total = %d", r.Total())
	}
	f := r.Fractions()
	if math.Abs(f[0]-0.5) > 1e-12 || math.Abs(f[1]-0.2) > 1e-12 || math.Abs(f[2]-0.3) > 1e-12 {
		t.Fatalf("fractions = %v", f)
	}
	if r.Transitions(1) != 1 || r.Transitions(2) != 1 || r.Transitions(0) != 1 {
		t.Fatal("transition counts wrong")
	}
}

func TestResidencySelfSwitchNoop(t *testing.T) {
	r := NewResidency([]string{"a", "b"}, 0, 0)
	r.Switch(0, 50)
	if r.Transitions(0) != 0 {
		t.Fatal("self switch counted as transition")
	}
	r.Close(100)
	if r.TimeIn(0) != 100 {
		t.Fatalf("time = %d", r.TimeIn(0))
	}
}

func TestResidencyBackwardsPanics(t *testing.T) {
	r := NewResidency([]string{"a", "b"}, 0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards switch did not panic")
		}
	}()
	r.Switch(1, 50)
}

// Property: fractions always sum to ~1 after any switch sequence.
func TestPropertyResidencyFractionsSum(t *testing.T) {
	f := func(steps []uint8) bool {
		r := NewResidency([]string{"s0", "s1", "s2", "s3"}, 0, 0)
		now := int64(0)
		for _, s := range steps {
			now += int64(s%100) + 1
			r.Switch(int(s)%4, now)
		}
		r.Close(now + 10)
		sum := 0.0
		for _, v := range r.Fractions() {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyMeter(t *testing.T) {
	m := NewEnergyMeter(0, 4) // 4 W
	m.SetPower(1e9, 1)        // after 1 s switch to 1 W
	m.SetPower(3e9, 0.1)      // after 2 more s switch to 0.1 W
	e := m.Energy(4e9)
	want := 4.0 + 2*1 + 1*0.1
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", e, want)
	}
	if ap := m.AveragePower(4e9); math.Abs(ap-want/4) > 1e-9 {
		t.Fatalf("avg power = %v", ap)
	}
}

func TestEnergyMeterBackwardsPanics(t *testing.T) {
	m := NewEnergyMeter(100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards energy time did not panic")
		}
	}()
	m.SetPower(50, 2)
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0.5) != 3 {
		t.Fatalf("median = %v", Percentile(xs, 0.5))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile not 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf([]float64{1, 2, 3}) != 2 {
		t.Fatal("MeanOf wrong")
	}
	if MeanOf(nil) != 0 {
		t.Fatal("MeanOf(nil) != 0")
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	cdf := h.CDF(20)
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	prevV, prevC := -1.0, -1.0
	for _, p := range cdf {
		if p.Value < prevV || p.Cumulative < prevC {
			t.Fatalf("CDF not monotone: %+v", cdf)
		}
		prevV, prevC = p.Value, p.Cumulative
	}
	last := cdf[len(cdf)-1]
	if last.Cumulative != 1 || last.Value != 1000 {
		t.Fatalf("CDF endpoint = %+v", last)
	}
	// Median point near 500.
	for _, p := range cdf {
		if p.Cumulative >= 0.5 {
			if p.Value < 400 || p.Value > 600 {
				t.Fatalf("median CDF point = %+v", p)
			}
			break
		}
	}
}

func TestHistogramCDFEmpty(t *testing.T) {
	h := NewHistogram()
	if h.CDF(10) != nil {
		t.Fatal("empty histogram CDF not nil")
	}
	h.Add(5)
	if h.CDF(0) != nil {
		t.Fatal("zero points CDF not nil")
	}
}

// TestHistogramReset pins that a reset histogram records exactly like a
// fresh one (same buckets, same quantiles) without reallocating buckets.
func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Add(float64(i) * 1.7)
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatalf("reset histogram not empty: n=%d mean=%v max=%v min=%v",
			h.Count(), h.Mean(), h.Max(), h.Min())
	}
	fresh := NewHistogram()
	for i := 0; i < 500; i++ {
		v := float64(i*i) / 3
		h.Add(v)
		fresh.Add(v)
	}
	hq := h.Quantiles(0.5, 0.95, 0.99)
	fq := fresh.Quantiles(0.5, 0.95, 0.99)
	for i := range hq {
		if hq[i] != fq[i] {
			t.Errorf("quantile %d after reset: %v, fresh %v", i, hq[i], fq[i])
		}
	}
	if h.Mean() != fresh.Mean() || h.Max() != fresh.Max() || h.Min() != fresh.Min() {
		t.Error("reset histogram moments diverge from fresh histogram")
	}
	// Re-recording into already-grown buckets must not allocate.
	h.Reset()
	if avg := testing.AllocsPerRun(100, func() { h.Add(123.4) }); avg != 0 {
		t.Errorf("Add after Reset allocates %v per op", avg)
	}
}

// TestEnergyMeterReset pins that Reset restarts integration exactly like
// a fresh meter.
func TestEnergyMeterReset(t *testing.T) {
	m := NewEnergyMeter(0, 10)
	m.SetPower(1e9, 20)
	if m.Energy(2e9) != 30 {
		t.Fatalf("pre-reset energy = %v, want 30", m.Energy(2e9))
	}
	m.Reset(5e9, 4)
	if got := m.Energy(6e9); got != 4 {
		t.Errorf("post-reset energy = %v, want 4", got)
	}
	if got := m.AveragePower(7e9); got != 4 {
		t.Errorf("post-reset average power = %v, want 4", got)
	}
}
