// Package stats provides the measurement substrate: streaming moments,
// latency histograms with quantile queries, time-weighted accumulators
// for C-state residency, and energy integration.
//
// These mirror the quantities the paper collects from hardware counters:
// per-C-state residency and transition counts (Sec. 6.2), RAPL-style
// average power, and average/tail request latency.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates streaming count/mean/variance/min/max using
// Welford's algorithm.
type Stream struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one sample. The moment update runs first so the common
// case (sample inside the seen range) falls through two untaken
// branches; the first-sample fixup is the cold path.
func (s *Stream) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if s.n == 1 {
		s.min, s.max = x, x
		return
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// Count returns the number of samples recorded.
func (s *Stream) Count() uint64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Stream) Max() float64 { return s.max }

// Histogram is a log-linear histogram for non-negative values, in the
// style of HdrHistogram: values are bucketed with bounded relative error
// so that tail quantiles over microsecond-to-millisecond latencies stay
// accurate without storing samples.
type Histogram struct {
	// subBuckets per power of two; relative error is 1/subBuckets.
	// Always a power of two, so bucket indexing reduces to float64 bit
	// surgery (see bucketOf).
	subBuckets int
	// subShift is 52 - log2(subBuckets): shifting a float64's bit
	// pattern right by subShift leaves the top log2(subBuckets) mantissa
	// bits — the linear sub-bucket — in the low bits.
	subShift uint
	counts   []uint64
	n        uint64
	sum      float64
	max      float64
	min      float64
}

// NewHistogram returns a histogram with ~0.8% relative value error.
func NewHistogram() *Histogram {
	return &Histogram{subBuckets: 128, subShift: 45, min: math.Inf(1)}
}

// bucketOf indexes v by pulling the exponent and the top mantissa bits
// straight out of the float64 representation. For v >= 1 this computes
// what the previous Floor(Log2(v)) / Pow(2, exp) formulation computed —
// for v in [2^e, 2^(e+1)) the fraction (v-2^e)/2^e is exact (Sterbenz
// subtraction, power-of-two division), and truncating it to subBuckets
// steps selects precisely the top mantissa bits — without the ~50ns of
// transcendental math per sample. The lone divergence: for the last few
// ulps below a power of two, Log2 rounded up to the integer and the old
// code placed the sample one bucket high; the bit trick buckets such
// values correctly. Hitting one requires a sample within ~2^-50 of a
// power of two, which no pinned golden (and no realistic run) does.
func (h *Histogram) bucketOf(v float64) int {
	if v < 1 {
		return int(v * float64(h.subBuckets))
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52) - 1023
	sub := int(bits>>h.subShift) & (h.subBuckets - 1)
	return (exp+1)*h.subBuckets + sub
}

// valueOf returns a representative (upper-edge midpoint) value for bucket i.
func (h *Histogram) valueOf(i int) float64 {
	if i < h.subBuckets {
		return (float64(i) + 0.5) / float64(h.subBuckets)
	}
	exp := i/h.subBuckets - 1
	sub := i % h.subBuckets
	base := math.Ldexp(1, exp)
	return base * (1 + (float64(sub)+0.5)/float64(h.subBuckets))
}

// Add records one non-negative sample. Negative samples are clamped to 0.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	b := h.bucketOf(v)
	if b >= len(h.counts) {
		h.growTo(b)
	}
	h.counts[b]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// growTo extends counts to cover bucket b (outlined to keep Add small
// enough to inline).
func (h *Histogram) growTo(b int) {
	grown := make([]uint64, b+1)
	copy(grown, h.counts)
	h.counts = grown
}

// Reset clears all recorded samples while keeping the grown bucket
// array, so a histogram re-armed for a new measurement interval records
// without re-allocating the buckets the previous interval grew.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
	h.sum = 0
	h.max = 0
	h.min = math.Inf(1)
}

// Merge folds every sample recorded in o into h, bucket for bucket.
// Both histograms must share a bucket geometry (they do whenever both
// came from NewHistogram). Merging an empty or nil histogram is a no-op.
func (h *Histogram) Merge(o *Histogram) { h.MergeScaled(o, 1) }

// MergeScaled folds o into h `times` times — the weighted-merge
// primitive behind class-collapsed fleet aggregation, where one
// representative distribution stands for `times` identical nodes.
// Equivalent to calling Merge(o) in a loop, at O(buckets) cost.
func (h *Histogram) MergeScaled(o *Histogram, times uint64) {
	if o == nil || o.n == 0 || times == 0 {
		return
	}
	if h.subBuckets != o.subBuckets {
		panic("stats: merging histograms with different bucket geometries")
	}
	if len(o.counts) > len(h.counts) {
		h.growTo(len(o.counts) - 1)
	}
	for i, c := range o.counts {
		h.counts[i] += c * times
	}
	h.n += o.n * times
	h.sum += o.sum * float64(times)
	if o.max > h.max {
		h.max = o.max
	}
	if o.min < h.min {
		h.min = o.min
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact mean of recorded samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest recorded sample (exact).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded sample (exact).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the value at quantile q in [0,1], approximated to the
// histogram's relative error. Quantile(0.99) is the paper's tail latency.
// Callers that need several quantiles of one distribution should use
// Quantiles, which serves them all from a single bucket scan.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			// Clamp to the exact observed range so quantiles are
			// monotone with the exact Min/Max endpoints.
			return math.Min(math.Max(h.valueOf(i), h.min), h.max)
		}
	}
	return h.max
}

// Quantiles returns the value at each quantile in qs, answering all of
// them from one cumulative scan of the buckets instead of one scan per
// quantile. qs must be sorted in non-decreasing order (the natural order
// every caller already uses: p50, p95, p99, ...); it panics otherwise.
// Each returned value is bit-identical to Quantile(q).
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			panic("stats: Quantiles input not sorted")
		}
	}
	if h.n == 0 {
		return out
	}
	k := 0
	for k < len(qs) && qs[k] <= 0 {
		out[k] = h.Min()
		k++
	}
	var cum uint64
	for i, c := range h.counts {
		if k >= len(qs) || qs[k] >= 1 {
			break
		}
		cum += c
		for k < len(qs) && qs[k] < 1 && cum >= uint64(math.Ceil(qs[k]*float64(h.n))) {
			out[k] = math.Min(math.Max(h.valueOf(i), h.min), h.max)
			k++
		}
	}
	for ; k < len(qs); k++ {
		out[k] = h.Max()
	}
	return out
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value      float64
	Cumulative float64 // fraction of samples <= Value
}

// CDF returns up to points CDF samples spanning the recorded
// distribution, suitable for plotting latency curves.
func (h *Histogram) CDF(points int) []CDFPoint {
	if h.n == 0 || points <= 0 {
		return nil
	}
	out := make([]CDFPoint, 0, points)
	var cum uint64
	step := float64(h.n) / float64(points)
	next := step
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		for float64(cum) >= next && len(out) < points {
			out = append(out, CDFPoint{
				Value:      math.Min(math.Max(h.valueOf(i), h.min), h.max),
				Cumulative: float64(cum) / float64(h.n),
			})
			next += step
		}
	}
	if len(out) == 0 || out[len(out)-1].Cumulative < 1 {
		out = append(out, CDFPoint{Value: h.max, Cumulative: 1})
	}
	return out
}

// Residency tracks time-weighted occupancy of a set of named states.
// It is the software analogue of the C-state residency counters
// (MSR_CORE_Cx_RESIDENCY) the paper reads.
type Residency struct {
	labels      []string
	timeIn      []int64 // ns
	transitions []uint64
	current     int
	since       int64
	started     int64
	closed      bool
}

// NewResidency creates a tracker over the given state labels, starting in
// state initial at time start (ns).
func NewResidency(labels []string, initial int, start int64) *Residency {
	if initial < 0 || initial >= len(labels) {
		panic("stats: initial state out of range")
	}
	return &Residency{
		labels:      append([]string(nil), labels...),
		timeIn:      make([]int64, len(labels)),
		transitions: make([]uint64, len(labels)),
		current:     initial,
		since:       start,
		started:     start,
	}
}

// Switch moves to state next at time now, accumulating time in the
// previous state. Switching to the current state is a no-op (no
// transition counted).
func (r *Residency) Switch(next int, now int64) {
	if now < r.since {
		panic("stats: residency time went backwards")
	}
	if next == r.current {
		// No-op switches exit before the bounds check: the current state
		// is always in range, so equality proves next is too.
		return
	}
	if uint(next) >= uint(len(r.labels)) {
		panic(fmt.Sprintf("stats: state %d out of range", next))
	}
	r.timeIn[r.current] += now - r.since
	r.current = next
	r.since = now
	r.transitions[next]++
}

// Close accumulates the final open interval at time now. Further Switch
// calls panic.
func (r *Residency) Close(now int64) {
	if r.closed {
		return
	}
	if now < r.since {
		panic("stats: residency close before last switch")
	}
	r.timeIn[r.current] += now - r.since
	r.since = now
	r.closed = true
}

// Current returns the state the tracker is currently in.
func (r *Residency) Current() int { return r.current }

// TimeIn returns the accumulated time (ns) in state i.
func (r *Residency) TimeIn(i int) int64 { return r.timeIn[i] }

// Transitions returns the number of entries into state i.
func (r *Residency) Transitions(i int) uint64 { return r.transitions[i] }

// Total returns the accumulated observation time (ns).
func (r *Residency) Total() int64 {
	var t int64
	for _, v := range r.timeIn {
		t += v
	}
	return t
}

// Fractions returns per-state residency fractions summing to 1 (or all
// zeros before any time has accumulated).
func (r *Residency) Fractions() []float64 {
	total := r.Total()
	out := make([]float64, len(r.timeIn))
	if total == 0 {
		return out
	}
	for i, v := range r.timeIn {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// Labels returns the state labels.
func (r *Residency) Labels() []string { return append([]string(nil), r.labels...) }

// EnergyMeter integrates power over time. Power is piecewise-constant
// between SetPower calls, which matches the per-C-state power model.
type EnergyMeter struct {
	joules  float64
	power   float64 // watts
	since   int64   // ns
	started int64
}

// NewEnergyMeter starts integration at time start with the given power.
func NewEnergyMeter(start int64, power float64) *EnergyMeter {
	return &EnergyMeter{power: power, since: start, started: start}
}

// Reset restarts integration at time start with the given power,
// discarding accumulated energy — equivalent to NewEnergyMeter without
// the allocation, for meters re-armed every measurement interval.
func (m *EnergyMeter) Reset(start int64, power float64) {
	m.joules = 0
	m.power = power
	m.since = start
	m.started = start
}

// SetPower advances integration to now and switches to power watts.
func (m *EnergyMeter) SetPower(now int64, power float64) {
	m.advance(now)
	m.power = power
}

// Energy advances integration to now and returns total joules so far.
func (m *EnergyMeter) Energy(now int64) float64 {
	m.advance(now)
	return m.joules
}

// AveragePower returns joules/elapsed-seconds up to now.
func (m *EnergyMeter) AveragePower(now int64) float64 {
	e := m.Energy(now)
	dt := float64(now-m.started) / 1e9
	if dt <= 0 {
		return m.power
	}
	return e / dt
}

func (m *EnergyMeter) advance(now int64) {
	if now <= m.since {
		if now == m.since {
			// Repeated updates at one instant (power-change chains at a
			// single event time) integrate nothing; skip the FP work.
			return
		}
		panic("stats: energy meter time went backwards")
	}
	m.joules += m.power * float64(now-m.since) / 1e9
	m.since = now
}

// SortedSeries is a sorted copy of a data series that serves any number
// of quantile queries from one sort. Build it once per series instead of
// calling Percentile repeatedly, which used to copy and re-sort the
// input on every call.
type SortedSeries []float64

// NewSortedSeries copies and sorts xs.
func NewSortedSeries(xs []float64) SortedSeries {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp
}

// Percentile returns the q-quantile of the series using linear
// interpolation (0 for an empty series).
func (s SortedSeries) Percentile(q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Percentile returns the q-quantile of xs using linear interpolation.
// It sorts a copy per call; callers needing several quantiles of one
// series should build a SortedSeries and query it instead.
func Percentile(xs []float64, q float64) float64 {
	return NewSortedSeries(xs).Percentile(q)
}

// WeightedSeries serves quantiles of a series in which sample i occurs
// weights[i] times, without materializing the expansion. It is the
// class-collapsed counterpart of SortedSeries: Percentile returns
// bit-for-bit what SortedSeries.Percentile would return on the expanded
// multiset, so with all weights 1 the two are interchangeable.
type WeightedSeries struct {
	vals []float64
	cum  []uint64 // cumulative weights; cum[len-1] is the expanded length
}

// NewWeightedSeries copies xs, sorts it keeping each value paired with
// its weight, and precomputes the cumulative weights. Zero-weight
// samples are dropped. Panics on mismatched lengths.
func NewWeightedSeries(xs []float64, weights []uint64) WeightedSeries {
	if len(xs) != len(weights) {
		panic("stats: weighted series length mismatch")
	}
	type wv struct {
		v float64
		w uint64
	}
	pairs := make([]wv, 0, len(xs))
	for i, x := range xs {
		if weights[i] > 0 {
			pairs = append(pairs, wv{x, weights[i]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	s := WeightedSeries{
		vals: make([]float64, len(pairs)),
		cum:  make([]uint64, len(pairs)),
	}
	var cum uint64
	for i, p := range pairs {
		cum += p.w
		s.vals[i] = p.v
		s.cum[i] = cum
	}
	return s
}

// at returns element k (0-indexed) of the expanded sorted multiset.
func (s WeightedSeries) at(k uint64) float64 {
	i := sort.Search(len(s.cum), func(i int) bool { return s.cum[i] > k })
	return s.vals[i]
}

// Percentile returns the q-quantile of the expanded series using the
// same linear interpolation as SortedSeries (0 for an empty series).
func (s WeightedSeries) Percentile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	n := s.cum[len(s.cum)-1]
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	pos := q * float64(n-1)
	lo := uint64(math.Floor(pos))
	hi := uint64(math.Ceil(pos))
	vlo := s.at(lo)
	if lo == hi {
		return vlo
	}
	vhi := s.at(hi)
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond the table the normal 1.96 is close enough
// (the df=30 entry is already within 4%).
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (1.96 for df > 30; 0 for df < 1, where no
// interval exists).
func TCrit95(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1]
	default:
		return 1.96
	}
}

// MeanCI95 returns the sample mean of xs and the half-width of its
// two-sided 95% Student-t confidence interval. With fewer than two
// samples the half-width is 0 — a single measurement carries no
// variance information.
func MeanCI95(xs []float64) (mean, half float64) {
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	mean = s.Mean()
	n := s.Count()
	if n < 2 {
		return mean, 0
	}
	half = TCrit95(int(n-1)) * math.Sqrt(s.Variance()/float64(n))
	return mean, half
}

// MeanOf returns the arithmetic mean of xs (0 for empty input).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
