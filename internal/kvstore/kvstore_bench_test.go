package kvstore

import (
	"testing"

	"repro/internal/xrand"
)

// BenchmarkAccess measures one simulated KV operation (lookup + LRU
// maintenance + demand computation).
func BenchmarkAccess(b *testing.B) {
	rng := xrand.New(1)
	s, err := New(DefaultConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	// Warm.
	for i := 0; i < 100_000; i++ {
		s.NextAccess(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NextAccess(rng)
	}
}
