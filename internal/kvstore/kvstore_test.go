package kvstore

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func newStore(t *testing.T, cfg Config, seed uint64) (*Store, *xrand.Rand) {
	t.Helper()
	rng := xrand.New(seed)
	s, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return s, rng
}

func TestZipfLocalityGivesHighHitRatio(t *testing.T) {
	s, rng := newStore(t, DefaultConfig(), 1)
	// Warm the cache, then measure the steady-state ratio incrementally.
	for i := 0; i < 150_000; i++ {
		s.NextAccess(rng)
	}
	h0, m0, _ := s.Stats()
	for i := 0; i < 150_000; i++ {
		s.NextAccess(rng)
	}
	h1, m1, _ := s.Stats()
	hr := float64(h1-h0) / float64((h1-h0)+(m1-m0))
	if hr < 0.80 {
		t.Fatalf("steady-state hit ratio = %.3f, want > 0.80 with Zipf locality", hr)
	}
}

func TestLargerCacheHitsMore(t *testing.T) {
	small := DefaultConfig()
	small.CacheBytes = 1 << 20
	big := DefaultConfig()
	big.CacheBytes = 256 << 20
	s1, r1 := newStore(t, small, 2)
	s2, r2 := newStore(t, big, 2)
	for i := 0; i < 150_000; i++ {
		s1.NextAccess(r1)
		s2.NextAccess(r2)
	}
	if s2.HitRatio() <= s1.HitRatio() {
		t.Fatalf("bigger cache %.3f not better than smaller %.3f", s2.HitRatio(), s1.HitRatio())
	}
}

func TestCapacityRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 64 << 10
	s, rng := newStore(t, cfg, 3)
	for i := 0; i < 50_000; i++ {
		s.NextAccess(rng)
		if s.Bytes() > cfg.CacheBytes && s.Len() > 1 {
			t.Fatalf("cache %d bytes exceeds capacity %d with %d entries",
				s.Bytes(), cfg.CacheBytes, s.Len())
		}
	}
}

func TestValueSizeDeterministicPerKey(t *testing.T) {
	s, _ := newStore(t, DefaultConfig(), 4)
	for key := 0; key < 100; key++ {
		a, b := s.valueBytes(key), s.valueBytes(key)
		if a != b {
			t.Fatalf("key %d size changed: %d vs %d", key, a, b)
		}
		if a < s.cfg.MinValueBytes || a > s.cfg.MaxValueBytes {
			t.Fatalf("key %d size %d out of bounds", key, a)
		}
	}
}

func TestDemandPositiveAndMissCostsMore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 1 << 18 // tiny: frequent misses
	s, rng := newStore(t, cfg, 5)
	var hitSum, hitN, missSum, missN float64
	for i := 0; i < 100_000; i++ {
		a := s.NextAccess(rng)
		if a.Demand <= 0 {
			t.Fatal("non-positive demand")
		}
		if a.Op == Get {
			if a.Hit {
				hitSum += float64(a.Demand)
				hitN++
			} else {
				missSum += float64(a.Demand)
				missN++
			}
		}
	}
	if hitN == 0 || missN == 0 {
		t.Fatalf("need both hits (%v) and misses (%v)", hitN, missN)
	}
	if missSum/missN <= hitSum/hitN {
		t.Fatal("misses not more expensive than hits")
	}
}

func TestDeleteRemoves(t *testing.T) {
	s, _ := newStore(t, DefaultConfig(), 6)
	s.insert(42, 100)
	if !s.touch(42) {
		t.Fatal("inserted key not found")
	}
	s.remove(42)
	if s.touch(42) {
		t.Fatal("deleted key still present")
	}
	s.remove(42) // double delete is a no-op
}

func TestLRUEvictionOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeyBytes = 0
	cfg.CacheBytes = 300
	s, _ := newStore(t, cfg, 7)
	s.insert(1, 100)
	s.insert(2, 100)
	s.insert(3, 100)
	s.touch(1) // 1 is now most recent; 2 is LRU
	s.insert(4, 100)
	if s.touch(2) {
		t.Fatal("LRU key 2 not evicted")
	}
	if !s.touch(1) || !s.touch(3) || !s.touch(4) {
		t.Fatal("wrong keys evicted")
	}
}

func TestStatsAndOps(t *testing.T) {
	s, rng := newStore(t, DefaultConfig(), 8)
	ops := map[Op]int{}
	for i := 0; i < 50_000; i++ {
		a := s.NextAccess(rng)
		ops[a.Op]++
	}
	if ops[Get] < ops[Set]*5 {
		t.Fatalf("GET not dominant: %v", ops)
	}
	hits, misses, sets := s.Stats()
	if hits+misses == 0 || sets == 0 {
		t.Fatal("counters not advancing")
	}
	for _, o := range []Op{Get, Set, Delete} {
		if o.String() == "" {
			t.Fatal("empty op string")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Keys = 0
	if _, err := New(bad, xrand.New(1)); err == nil {
		t.Fatal("zero keys accepted")
	}
	bad = DefaultConfig()
	bad.GetFraction = 0.9
	bad.SetFraction = 0.3
	if _, err := New(bad, xrand.New(1)); err == nil {
		t.Fatal("fractions > 1 accepted")
	}
	bad = DefaultConfig()
	bad.MaxValueBytes = 1
	if _, err := New(bad, xrand.New(1)); err == nil {
		t.Fatal("bad size bounds accepted")
	}
}

// Property: cache byte accounting matches the sum of resident entries.
func TestPropertyByteAccounting(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		cfg := DefaultConfig()
		cfg.CacheBytes = 1 << 20
		rng := xrand.New(seed)
		s, err := New(cfg, rng)
		if err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			s.NextAccess(rng)
		}
		sum := 0
		for e := s.lru.Front(); e != nil; e = e.Next() {
			sum += e.Value.(*entry).bytes
		}
		return sum == s.Bytes() && s.lru.Len() == len(s.index)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
