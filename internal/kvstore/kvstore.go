// Package kvstore models an ETC-like key-value caching service (the
// Facebook ETC workload of Atikoglu et al. [135], which the paper's
// Mutilate load generator replays): a Zipf-popular keyspace, key-hashed
// value sizes, a byte-bounded LRU cache, and a CPU-demand model for
// GET/SET operations. It provides the service-time generator behind the
// high-fidelity Memcached profile.
package kvstore

import (
	"container/list"
	"fmt"

	"repro/internal/sim"
	"repro/internal/xrand"
)

// Op is a request operation.
type Op int

// Operations, GET-dominant per ETC.
const (
	Get Op = iota
	Set
	Delete
)

func (o Op) String() string {
	switch o {
	case Get:
		return "GET"
	case Set:
		return "SET"
	default:
		return "DELETE"
	}
}

// Config parameterizes the store and its demand model.
type Config struct {
	// Keys is the keyspace size.
	Keys int
	// ZipfS is the popularity skew (ETC is strongly skewed; ~1.0).
	ZipfS float64
	// CacheBytes bounds the LRU cache.
	CacheBytes int

	// GetFraction / SetFraction / DeleteFraction must sum to <= 1; the
	// remainder is treated as Get. ETC: ~30:1 GET:SET.
	GetFraction, SetFraction, DeleteFraction float64

	// Value-size model: log-normal body with the given mean/CV, clamped
	// to [MinValueBytes, MaxValueBytes]. Each key's size is a pure
	// function of its id, as in a real store.
	MeanValueBytes, ValueCV      float64
	MinValueBytes, MaxValueBytes int
	KeyBytes                     int

	// CPU demand model (at the profile's reference frequency).
	BaseGetNS, BaseSetNS float64
	PerByteNS            float64
	MissPenaltyNS        float64
}

// DefaultConfig returns ETC-like parameters calibrated so the mean
// demand lands near the paper-calibrated Memcached profile (~7-9 us).
func DefaultConfig() Config {
	return Config{
		Keys:           200_000,
		ZipfS:          1.01,
		CacheBytes:     48 << 20, // 48 MiB slice of the cache
		GetFraction:    0.92,
		SetFraction:    0.07,
		DeleteFraction: 0.01,
		MeanValueBytes: 360, ValueCV: 1.6,
		MinValueBytes: 16, MaxValueBytes: 8192,
		KeyBytes:      36,
		BaseGetNS:     4500,
		BaseSetNS:     6000,
		PerByteNS:     2.2,
		MissPenaltyNS: 9000,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Keys <= 0 || c.CacheBytes <= 0 {
		return fmt.Errorf("kvstore: keys/cache must be positive")
	}
	if c.GetFraction+c.SetFraction+c.DeleteFraction > 1+1e-9 {
		return fmt.Errorf("kvstore: op fractions exceed 1")
	}
	if c.MinValueBytes <= 0 || c.MaxValueBytes < c.MinValueBytes {
		return fmt.Errorf("kvstore: bad value size bounds")
	}
	return nil
}

type entry struct {
	key   int
	bytes int
	elem  *list.Element
}

// Store is a byte-bounded LRU key-value cache with an attached access
// generator and CPU-demand model.
type Store struct {
	cfg    Config
	zipf   *xrand.Zipf
	lru    *list.List // front = most recent; values are *entry
	index  map[int]*entry
	bytes  int
	hits   uint64
	misses uint64
	sets   uint64
}

// New builds a store. The Zipf sampler draws from rng; accesses later
// draw from whatever rng is passed to Access (usually the same stream).
func New(cfg Config, rng *xrand.Rand) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{
		cfg:   cfg,
		zipf:  xrand.NewZipf(rng, cfg.Keys, cfg.ZipfS),
		lru:   list.New(),
		index: make(map[int]*entry),
	}, nil
}

// valueBytes derives a key's value size deterministically from its id:
// a hashed id seeds a one-draw log-normal.
func (s *Store) valueBytes(key int) int {
	r := xrand.New(uint64(key)*0x9E3779B97F4A7C15 + 1)
	v := int(r.LogNormalMeanCV(s.cfg.MeanValueBytes, s.cfg.ValueCV))
	if v < s.cfg.MinValueBytes {
		v = s.cfg.MinValueBytes
	}
	if v > s.cfg.MaxValueBytes {
		v = s.cfg.MaxValueBytes
	}
	return v
}

// Access is one simulated request against the store.
type Access struct {
	Op         Op
	Key        int
	ValueBytes int
	Hit        bool
	Demand     sim.Time
}

// NextAccess draws an operation, applies it to the cache, and returns
// the access record including its CPU demand.
func (s *Store) NextAccess(r *xrand.Rand) Access {
	key := s.zipf.Next()
	u := r.Float64()
	var op Op
	switch {
	case u < s.cfg.DeleteFraction:
		op = Delete
	case u < s.cfg.DeleteFraction+s.cfg.SetFraction:
		op = Set
	default:
		op = Get
	}
	size := s.valueBytes(key)
	acc := Access{Op: op, Key: key, ValueBytes: size}
	switch op {
	case Get:
		if s.touch(key) {
			acc.Hit = true
			s.hits++
			acc.Demand = s.demand(s.cfg.BaseGetNS + s.cfg.PerByteNS*float64(size+s.cfg.KeyBytes))
		} else {
			s.misses++
			// A miss still parses the request and allocates+fills the
			// entry when the backend responds (fill modeled as part of
			// the miss penalty), then responds.
			s.insert(key, size)
			acc.Demand = s.demand(s.cfg.BaseGetNS + s.cfg.MissPenaltyNS +
				s.cfg.PerByteNS*float64(size+s.cfg.KeyBytes))
		}
	case Set:
		s.sets++
		s.insert(key, size)
		acc.Demand = s.demand(s.cfg.BaseSetNS + s.cfg.PerByteNS*float64(size+s.cfg.KeyBytes))
	case Delete:
		s.remove(key)
		acc.Demand = s.demand(s.cfg.BaseGetNS)
	}
	return acc
}

func (s *Store) demand(ns float64) sim.Time {
	if ns < 1 {
		ns = 1
	}
	return sim.Time(ns)
}

// touch looks up a key and refreshes its recency.
func (s *Store) touch(key int) bool {
	e, ok := s.index[key]
	if !ok {
		return false
	}
	s.lru.MoveToFront(e.elem)
	return true
}

// insert adds or refreshes a key, evicting LRU entries to fit.
func (s *Store) insert(key, size int) {
	total := size + s.cfg.KeyBytes
	if e, ok := s.index[key]; ok {
		s.bytes += total - e.bytes
		e.bytes = total
		s.lru.MoveToFront(e.elem)
	} else {
		e := &entry{key: key, bytes: total}
		e.elem = s.lru.PushFront(e)
		s.index[key] = e
		s.bytes += total
	}
	for s.bytes > s.cfg.CacheBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		s.evict(back.Value.(*entry))
	}
}

func (s *Store) remove(key int) {
	if e, ok := s.index[key]; ok {
		s.evict(e)
	}
}

func (s *Store) evict(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.index, e.key)
	s.bytes -= e.bytes
}

// Len returns the number of cached entries.
func (s *Store) Len() int { return s.lru.Len() }

// Bytes returns the cached byte total.
func (s *Store) Bytes() int { return s.bytes }

// HitRatio returns GET hits / GET lookups so far.
func (s *Store) HitRatio() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}

// Stats returns cumulative counters.
func (s *Store) Stats() (hits, misses, sets uint64) {
	return s.hits, s.misses, s.sets
}
