package scenariofile

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParseRoundTrip drives arbitrary bytes through the strict decoder
// and asserts its two invariants: rejected inputs are rejected cleanly
// (an error, never a panic), and every accepted document survives the
// Encode/Parse round trip with the identical value — the property that
// makes the canonical encoding safe to re-load.
func FuzzParseRoundTrip(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "scenarios", "*.json"))
	for _, path := range paths {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"schedule": {"shape": "constant", "base_qps": 1e5, "total_ms": 50}}`))
	f.Add([]byte(`{"schedule": {"phases": [{"duration_ms": 1, "start_qps": -1, "end_qps": 1e999}]}}`))
	f.Add([]byte(`{"schedule": {"shape": "x"}, "faults": {"nodes": [{"node": -1, "kind": "crash"}]}}`))
	f.Add([]byte(`{"schedule": {"shape": "x"}} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Parse(data)
		if err != nil {
			return // rejected cleanly
		}
		enc, err := Encode(parsed)
		if err != nil {
			t.Fatalf("accepted document failed to encode: %v", err)
		}
		again, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(parsed, again) {
			t.Fatalf("round trip drifted:\n was %+v\n now %+v", parsed, again)
		}
	})
}
