// Package scenariofile defines the declarative scenario-file format: a
// JSON document describing one time-varying fleet simulation end to end
// — the load schedule, the fleet, the engine and elasticity knobs, and
// the fault-injection spec. The package is purely syntactic: it decodes
// strictly (unknown fields are errors, so a typo'd knob can never
// silently become a default) and round-trips losslessly, while every
// semantic rule — rate bounds, fault windows, controller names — stays
// with cluster.ScenarioConfig.Normalize, so a file rejected at run time
// is rejected with exactly the error Validate would have given.
//
// Durations are float64 milliseconds (suffix _ms) on the schedule
// clock; the zero value of every optional field means the same default
// the programmatic API applies.
package scenariofile

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// PhaseSpec is one explicit schedule phase: a linear rate segment from
// StartQPS to EndQPS over DurationMS.
type PhaseSpec struct {
	Name       string  `json:"name,omitempty"`
	DurationMS float64 `json:"duration_ms"`
	StartQPS   float64 `json:"start_qps"`
	EndQPS     float64 `json:"end_qps"`
}

// ScheduleSpec selects the load timeline: either a named shape (Shape,
// built around BaseQPS over TotalMS) or an explicit phase list. Setting
// both is rejected at load time — the file would be ambiguous.
type ScheduleSpec struct {
	// Shape names a built-in scenario shape (constant, diurnal, spike,
	// ramp); BaseQPS and TotalMS parameterize it.
	Shape   string  `json:"shape,omitempty"`
	BaseQPS float64 `json:"base_qps,omitempty"`
	TotalMS float64 `json:"total_ms,omitempty"`
	// Phases is the explicit piecewise timeline.
	Phases []PhaseSpec `json:"phases,omitempty"`
}

// FleetSpec describes the fleet: size, platform and service by name,
// seeding, and the cluster dispatch policy.
type FleetSpec struct {
	// Nodes is the fleet size (default 1).
	Nodes int `json:"nodes,omitempty"`
	// Platform names a platform configuration (default Baseline);
	// Service a workload profile (default memcached).
	Platform string `json:"platform,omitempty"`
	Service  string `json:"service,omitempty"`
	// WarmupMS precedes each node's measured timeline (default 50ms).
	WarmupMS float64 `json:"warmup_ms,omitempty"`
	// Seed fixes all randomness (default 1); SharedSeeds gives every
	// node the same seed so identical timelines collapse to one class.
	Seed        uint64 `json:"seed,omitempty"`
	SharedSeeds bool   `json:"shared_seeds,omitempty"`
	// Dispatch is the cluster partitioning policy (default spread);
	// TargetUtil the consolidate fill level (default 0.6).
	Dispatch   string  `json:"dispatch,omitempty"`
	TargetUtil float64 `json:"target_util,omitempty"`
	// ParkDrained parks nodes the policy drains.
	ParkDrained bool `json:"park_drained,omitempty"`
}

// ExecutionSpec groups the engine-selection knobs.
type ExecutionSpec struct {
	ColdEpochs   bool `json:"cold_epochs,omitempty"`
	Replicas     int  `json:"replicas,omitempty"`
	CompactNodes bool `json:"compact_nodes,omitempty"`
}

// ControllerSpec selects and tunes the fleet controller by name.
type ControllerSpec struct {
	Name       string  `json:"name,omitempty"`
	UpUtil     float64 `json:"up_util,omitempty"`
	DownUtil   float64 `json:"down_util,omitempty"`
	TargetUtil float64 `json:"target_util,omitempty"`
	Cooldown   int     `json:"cooldown,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
}

// ElasticitySpec groups the unpark-cost and autoscaling knobs.
type ElasticitySpec struct {
	UnparkLatencyMS float64        `json:"unpark_latency_ms,omitempty"`
	UnparkPowerW    float64        `json:"unpark_power_w,omitempty"`
	UnparkFree      bool           `json:"unpark_free,omitempty"`
	Controller      ControllerSpec `json:"controller,omitempty"`
}

// NodeFaultSpec is one explicit per-node fault window.
type NodeFaultSpec struct {
	Node    int     `json:"node"`
	Kind    string  `json:"kind"`
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
	Factor  float64 `json:"factor,omitempty"`
}

// CorrelatedSpec is the cluster-level correlated fault process.
type CorrelatedSpec struct {
	Kind        string  `json:"kind,omitempty"`
	GroupSize   int     `json:"group_size,omitempty"`
	Probability float64 `json:"probability,omitempty"`
	DurationMS  float64 `json:"duration_ms,omitempty"`
	Factor      float64 `json:"factor,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
}

// FaultsSpec is the fault-injection description; its zero value is a
// healthy fleet.
type FaultsSpec struct {
	Nodes            []NodeFaultSpec `json:"nodes,omitempty"`
	Correlated       CorrelatedSpec  `json:"correlated,omitempty"`
	RestartLatencyMS float64         `json:"restart_latency_ms,omitempty"`
	RestartPowerW    float64         `json:"restart_power_w,omitempty"`
	RestartFree      bool            `json:"restart_free,omitempty"`
}

// OverloadSpec is the admission-control description: what happens when
// the offered rate exceeds the active fleet's capacity. Its zero value
// disables admission control.
type OverloadSpec struct {
	// Policy picks an overload policy: shed, degrade or queue.
	Policy string `json:"policy,omitempty"`
	// MaxUtil is the per-node utilization the admission capacity is
	// computed at (default 0.85).
	MaxUtil float64 `json:"max_util,omitempty"`
	// MaxBacklogSec bounds the queue policy's backlog in seconds of
	// full-fleet capacity (default 1.0).
	MaxBacklogSec float64 `json:"max_backlog_sec,omitempty"`
}

// File is the root of a scenario file.
type File struct {
	// Name labels the scenario in reports and golden fingerprints.
	Name     string       `json:"name,omitempty"`
	Schedule ScheduleSpec `json:"schedule"`
	Fleet    FleetSpec    `json:"fleet"`
	// EpochMS is the re-dispatch interval (default: one epoch spanning
	// the whole schedule).
	EpochMS    float64        `json:"epoch_ms,omitempty"`
	Execution  ExecutionSpec  `json:"execution,omitempty"`
	Elasticity ElasticitySpec `json:"elasticity,omitempty"`
	Faults     FaultsSpec     `json:"faults,omitempty"`
	Overload   OverloadSpec   `json:"overload,omitempty"`
}

// decodeError dresses a raw json.Decoder error with the information a
// user editing a scenario file actually needs: the byte offset where
// decoding failed (json's syntax and type errors carry one but print
// without it) and the scenario's name when the document got far enough
// to have one.
func decodeError(err error, name string) error {
	where := ""
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		where = fmt.Sprintf(" at byte %d", syn.Offset)
	case errors.As(err, &typ):
		where = fmt.Sprintf(" at byte %d (field %q)", typ.Offset, typ.Field)
	}
	if name != "" {
		return fmt.Errorf("scenariofile: scenario %q%s: %w", name, where, err)
	}
	return fmt.Errorf("scenariofile%s: %w", where, err)
}

// parseDoc decodes one raw scenario document from dec, canonicalizing
// explicit empty lists to nil: omitempty drops them on encode, so
// leaving them non-nil would break the round-trip property (an accepted
// document must re-parse to the same value). Errors are dec's own —
// io.EOF at a clean document boundary, json errors otherwise.
func parseDoc(dec *json.Decoder) (File, error) {
	var f File
	if err := dec.Decode(&f); err != nil {
		return File{}, err
	}
	if len(f.Schedule.Phases) == 0 {
		f.Schedule.Phases = nil
	}
	if len(f.Faults.Nodes) == 0 {
		f.Faults.Nodes = nil
	}
	return f, nil
}

// checkSchedule rejects the ambiguous schedule shapes: both a named
// shape and explicit phases, or neither.
func checkSchedule(f File) error {
	if f.Schedule.Shape != "" && len(f.Schedule.Phases) > 0 {
		return fmt.Errorf("scenariofile: scenario %q: schedule sets both a named shape and explicit phases", f.Name)
	}
	if f.Schedule.Shape == "" && len(f.Schedule.Phases) == 0 {
		return fmt.Errorf("scenariofile: scenario %q: schedule needs a named shape or explicit phases", f.Name)
	}
	return nil
}

// Parse decodes a scenario file strictly: unknown fields, malformed
// JSON and trailing content are errors, as is a schedule that sets both
// a named shape and explicit phases (or neither). Decode errors carry
// the byte offset of the failure.
func Parse(data []byte) (File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	f, err := parseDoc(dec)
	if errors.Is(err, io.EOF) {
		return File{}, fmt.Errorf("scenariofile: empty scenario document")
	}
	if err != nil {
		return File{}, decodeError(err, "")
	}
	if err := checkSchedule(f); err != nil {
		return File{}, err
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return File{}, fmt.Errorf("scenariofile: trailing content after the scenario document at byte %d", dec.InputOffset())
	}
	return f, nil
}

// ParseAll decodes a multi-document scenario stream: one or more
// scenario documents concatenated in one file (JSON's decoder delimits
// them naturally). Each document is decoded as strictly as Parse
// decodes a single one, and duplicate scenario names are rejected —
// last-write-wins would make "which steady did I run?" unanswerable.
func ParseAll(data []byte) ([]File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var files []File
	seen := map[string]int{}
	for i := 0; ; i++ {
		f, err := parseDoc(dec)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, decodeError(fmt.Errorf("document %d: %w", i, err), "")
		}
		if err := checkSchedule(f); err != nil {
			return nil, err
		}
		if prev, dup := seen[f.Name]; dup {
			return nil, fmt.Errorf("scenariofile: duplicate scenario name %q (documents %d and %d)", f.Name, prev, i)
		}
		seen[f.Name] = i
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("scenariofile: no scenario documents in the file")
	}
	return files, nil
}

// Load reads and parses the scenario file at path.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("scenariofile: %w", err)
	}
	f, err := Parse(data)
	if err != nil {
		return File{}, fmt.Errorf("%w (%s)", err, path)
	}
	return f, nil
}

// LoadAll reads and parses a (possibly multi-document) scenario file.
func LoadAll(path string) ([]File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenariofile: %w", err)
	}
	fs, err := ParseAll(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return fs, nil
}

// Encode renders the file back to canonical indented JSON. A parsed
// file re-encodes to a document Parse accepts with the identical value
// — the round-trip property the decoder fuzzer pins.
func Encode(f File) ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenariofile: %w", err)
	}
	return append(data, '\n'), nil
}
