package scenariofile

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// library globs the checked-in adversarial scenario files; they double
// as the decoder's integration fixtures.
func library(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario files under testdata/scenarios")
	}
	return paths
}

func TestParseHappyPath(t *testing.T) {
	doc := `{
	  "name": "unit",
	  "schedule": {"shape": "spike", "base_qps": 400000, "total_ms": 60},
	  "fleet": {"nodes": 4, "platform": "AW", "dispatch": "consolidate", "park_drained": true},
	  "epoch_ms": 10,
	  "faults": {
	    "nodes": [{"node": 0, "kind": "crash", "start_ms": 20, "end_ms": 40}],
	    "restart_latency_ms": 8
	  }
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "unit" || f.Schedule.Shape != "spike" || f.Schedule.BaseQPS != 400000 {
		t.Errorf("schedule decoded wrong: %+v", f.Schedule)
	}
	if f.Fleet.Nodes != 4 || f.Fleet.Platform != "AW" || !f.Fleet.ParkDrained {
		t.Errorf("fleet decoded wrong: %+v", f.Fleet)
	}
	if f.EpochMS != 10 || f.Faults.RestartLatencyMS != 8 {
		t.Errorf("epoch/restart decoded wrong: epoch=%g restart=%g", f.EpochMS, f.Faults.RestartLatencyMS)
	}
	want := NodeFaultSpec{Node: 0, Kind: "crash", StartMS: 20, EndMS: 40}
	if len(f.Faults.Nodes) != 1 || f.Faults.Nodes[0] != want {
		t.Errorf("faults decoded wrong: %+v", f.Faults.Nodes)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"malformed JSON", `{"schedule":`, "scenariofile:"},
		{"unknown field", `{"schedule": {"shape": "constant"}, "warp_drive": true}`, "warp_drive"},
		{"typo'd nested knob", `{"schedule": {"shape": "constant", "base_pqs": 1}}`, "base_pqs"},
		{"trailing content", `{"schedule": {"shape": "constant"}} {"again": true}`, "trailing content"},
		{"trailing garbage", `{"schedule": {"shape": "constant"}} ]`, "trailing content"},
		{
			"both shape and phases",
			`{"schedule": {"shape": "constant", "phases": [{"duration_ms": 1, "start_qps": 1, "end_qps": 1}]}}`,
			"both a named shape and explicit phases",
		},
		{"neither shape nor phases", `{"schedule": {}}`, "needs a named shape or explicit phases"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("Parse accepted the invalid document")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadLibrary parses every checked-in adversarial scenario and
// checks the file's label matches its basename — the convention the
// golden tests key on.
func TestLoadLibrary(t *testing.T) {
	for _, path := range library(t) {
		f, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := strings.TrimSuffix(filepath.Base(path), ".json"); f.Name != want {
			t.Errorf("%s: name = %q, want %q", path, f.Name, want)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

// TestEncodeRoundTrip pins the lossless property on the real library:
// Encode(Parse(file)) re-parses to the identical value.
func TestEncodeRoundTrip(t *testing.T) {
	for _, path := range library(t) {
		f, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: re-encoded document rejected: %v", path, err)
		}
		if !reflect.DeepEqual(f, again) {
			t.Errorf("%s: round-trip drifted:\n was %+v\n now %+v", path, f, again)
		}
	}
}
