package scenariofile

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// library globs the checked-in adversarial scenario files; they double
// as the decoder's integration fixtures.
func library(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario files under testdata/scenarios")
	}
	return paths
}

func TestParseHappyPath(t *testing.T) {
	doc := `{
	  "name": "unit",
	  "schedule": {"shape": "spike", "base_qps": 400000, "total_ms": 60},
	  "fleet": {"nodes": 4, "platform": "AW", "dispatch": "consolidate", "park_drained": true},
	  "epoch_ms": 10,
	  "faults": {
	    "nodes": [{"node": 0, "kind": "crash", "start_ms": 20, "end_ms": 40}],
	    "restart_latency_ms": 8
	  }
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "unit" || f.Schedule.Shape != "spike" || f.Schedule.BaseQPS != 400000 {
		t.Errorf("schedule decoded wrong: %+v", f.Schedule)
	}
	if f.Fleet.Nodes != 4 || f.Fleet.Platform != "AW" || !f.Fleet.ParkDrained {
		t.Errorf("fleet decoded wrong: %+v", f.Fleet)
	}
	if f.EpochMS != 10 || f.Faults.RestartLatencyMS != 8 {
		t.Errorf("epoch/restart decoded wrong: epoch=%g restart=%g", f.EpochMS, f.Faults.RestartLatencyMS)
	}
	want := NodeFaultSpec{Node: 0, Kind: "crash", StartMS: 20, EndMS: 40}
	if len(f.Faults.Nodes) != 1 || f.Faults.Nodes[0] != want {
		t.Errorf("faults decoded wrong: %+v", f.Faults.Nodes)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"malformed JSON", `{"schedule":`, "scenariofile:"},
		{"unknown field", `{"schedule": {"shape": "constant"}, "warp_drive": true}`, "warp_drive"},
		{"typo'd nested knob", `{"schedule": {"shape": "constant", "base_pqs": 1}}`, "base_pqs"},
		{"trailing content", `{"schedule": {"shape": "constant"}} {"again": true}`, "trailing content"},
		{"trailing garbage", `{"schedule": {"shape": "constant"}} ]`, "trailing content"},
		{
			"both shape and phases",
			`{"schedule": {"shape": "constant", "phases": [{"duration_ms": 1, "start_qps": 1, "end_qps": 1}]}}`,
			"both a named shape and explicit phases",
		},
		{"neither shape nor phases", `{"schedule": {}}`, "needs a named shape or explicit phases"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("Parse accepted the invalid document")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseErrorContext pins the decode-error dressing: syntax and type
// errors must carry the byte offset of the failure (and the offending
// field for type errors) so a scenario author can find the problem in a
// large file without bisecting it.
func TestParseErrorContext(t *testing.T) {
	cases := []struct {
		name, doc string
		wants     []string
	}{
		{"syntax offset", `{"schedule": {"shape": }}`, []string{"at byte"}},
		{
			"type offset and field",
			`{"schedule": {"shape": "constant", "base_qps": "fast"}}`,
			[]string{"at byte", `"schedule.base_qps"`},
		},
		{"empty input", ``, []string{"empty scenario document"}},
		{"whitespace only", "\n\t  ", []string{"empty scenario document"}},
		{"trailing offset", `{"schedule": {"shape": "constant"}} junk`, []string{"trailing content", "at byte"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("Parse accepted the invalid document")
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

const twoDocs = `{"name": "a", "schedule": {"shape": "constant", "base_qps": 1, "total_ms": 10}}
{"name": "b", "schedule": {"shape": "spike", "base_qps": 2, "total_ms": 20}}`

func TestParseAll(t *testing.T) {
	fs, err := ParseAll([]byte(twoDocs))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0].Name != "a" || fs[1].Name != "b" {
		t.Fatalf("ParseAll decoded %+v", fs)
	}

	// A single-document stream matches Parse exactly.
	single := `{"name": "solo", "schedule": {"shape": "constant", "base_qps": 1, "total_ms": 10}}`
	one, err := ParseAll([]byte(single))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Parse([]byte(single))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || !reflect.DeepEqual(one[0], want) {
		t.Errorf("ParseAll single-doc = %+v, Parse = %+v", one, want)
	}
}

func TestParseAllRejects(t *testing.T) {
	cases := []struct {
		name, doc string
		wants     []string
	}{
		{"empty stream", ``, []string{"no scenario documents"}},
		{
			"duplicate names",
			`{"name": "steady", "schedule": {"shape": "constant", "base_qps": 1, "total_ms": 10}}
			 {"name": "steady", "schedule": {"shape": "spike", "base_qps": 2, "total_ms": 20}}`,
			[]string{`duplicate scenario name "steady"`, "documents 0 and 1"},
		},
		{
			"second document malformed",
			`{"name": "a", "schedule": {"shape": "constant", "base_qps": 1, "total_ms": 10}}
			 {"name": "b", "schedule": {"shape": }}`,
			[]string{"document 1", "at byte"},
		},
		{
			"second document bad schedule",
			`{"name": "a", "schedule": {"shape": "constant", "base_qps": 1, "total_ms": 10}}
			 {"name": "b", "schedule": {}}`,
			[]string{`scenario "b"`, "needs a named shape or explicit phases"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseAll([]byte(tc.doc))
			if err == nil {
				t.Fatal("ParseAll accepted the invalid stream")
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

func TestLoadAll(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "multi.json")
	if err := os.WriteFile(path, []byte(twoDocs), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("LoadAll decoded %d documents, want 2", len(fs))
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schedule": }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAll(bad); err == nil {
		t.Fatal("LoadAll accepted a malformed file")
	} else if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not mention the path %q", err, bad)
	}

	if _, err := LoadAll(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("LoadAll accepted a missing file")
	}
}

// TestLoadLibrary parses every checked-in adversarial scenario and
// checks the file's label matches its basename — the convention the
// golden tests key on.
func TestLoadLibrary(t *testing.T) {
	for _, path := range library(t) {
		f, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := strings.TrimSuffix(filepath.Base(path), ".json"); f.Name != want {
			t.Errorf("%s: name = %q, want %q", path, f.Name, want)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

// TestEncodeRoundTrip pins the lossless property on the real library:
// Encode(Parse(file)) re-parses to the identical value.
func TestEncodeRoundTrip(t *testing.T) {
	for _, path := range library(t) {
		f, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: re-encoded document rejected: %v", path, err)
		}
		if !reflect.DeepEqual(f, again) {
			t.Errorf("%s: round-trip drifted:\n was %+v\n now %+v", path, f, again)
		}
	}
}
