// Package datacenter converts AgileWatts' per-CPU power savings into
// yearly datacenter operating-cost savings (paper Sec. 7.6, Table 5).
package datacenter

import "fmt"

// CostModel holds the Sec. 7.6 economic parameters.
type CostModel struct {
	// DollarsPerKWh is the electricity price (paper: $0.125/kWh [196]).
	DollarsPerKWh float64
	// PUE is the datacenter power usage effectiveness; savings grow
	// proportionally with it (Sec. 7.6). 1.0 reproduces Table 5.
	PUE float64
	// Servers is the fleet size the table normalizes to (100K).
	Servers int
}

// NewCostModel returns the paper's parameters.
func NewCostModel() CostModel {
	return CostModel{DollarsPerKWh: 0.125, PUE: 1.0, Servers: 100_000}
}

// SecondsPerYear is the paper's year length for Table 5.
const SecondsPerYear = 365.25 * 24 * 3600

// DollarsPerWattYear returns the yearly cost of one watt drawn
// continuously.
func (m CostModel) DollarsPerWattYear() float64 {
	return m.DollarsPerKWh / 3.6e6 * SecondsPerYear * m.PUE
}

// YearlySavingsPerServer returns the $ saved per server per year for a
// given average power delta (watts).
func (m CostModel) YearlySavingsPerServer(deltaW float64) float64 {
	if deltaW < 0 {
		deltaW = 0
	}
	return deltaW * m.DollarsPerWattYear()
}

// YearlySavingsFleetM returns the Table 5 metric: $M per year per fleet
// (100K servers by default).
func (m CostModel) YearlySavingsFleetM(deltaW float64) float64 {
	return m.YearlySavingsPerServer(deltaW) * float64(m.Servers) / 1e6
}

// YearlySavingsMeasuredFleetM converts a measured fleet power delta —
// total watts saved across a simulated fleet of nodes servers — to the
// Table 5 metric by scaling the measured per-server average to the
// model's fleet size. Unlike Table5, which extrapolates a single
// server's delta, the input here already contains cluster-level effects
// (consolidation, heterogeneous nodes, parked-node package idle).
func (m CostModel) YearlySavingsMeasuredFleetM(fleetDeltaW float64, nodes int) (float64, error) {
	if nodes <= 0 {
		return 0, fmt.Errorf("datacenter: measured fleet of %d nodes", nodes)
	}
	return m.YearlySavingsFleetM(fleetDeltaW / float64(nodes)), nil
}

// Table5Row is one column of Table 5.
type Table5Row struct {
	QPS             float64
	BaselineW       float64
	AWW             float64
	DeltaW          float64
	SavingsPerYearM float64
}

// Table5 computes the cost table from per-CPU baseline and AW average
// power at each load point.
func (m CostModel) Table5(qps, baselineW, awW []float64) ([]Table5Row, error) {
	if len(qps) != len(baselineW) || len(qps) != len(awW) {
		return nil, fmt.Errorf("datacenter: mismatched series lengths %d/%d/%d",
			len(qps), len(baselineW), len(awW))
	}
	rows := make([]Table5Row, 0, len(qps))
	for i := range qps {
		delta := baselineW[i] - awW[i]
		rows = append(rows, Table5Row{
			QPS:             qps[i],
			BaselineW:       baselineW[i],
			AWW:             awW[i],
			DeltaW:          delta,
			SavingsPerYearM: m.YearlySavingsFleetM(delta),
		})
	}
	return rows, nil
}
