package datacenter

import (
	"math"
	"testing"
)

func TestDollarsPerWattYear(t *testing.T) {
	m := NewCostModel()
	// $0.125/kWh => ~$1.10 per watt-year.
	got := m.DollarsPerWattYear()
	if math.Abs(got-1.096) > 0.01 {
		t.Fatalf("$/W-year = %v, want ~1.10", got)
	}
}

func TestPUEScalesSavings(t *testing.T) {
	m := NewCostModel()
	m.PUE = 1.5
	base := NewCostModel()
	if math.Abs(m.YearlySavingsPerServer(2)-1.5*base.YearlySavingsPerServer(2)) > 1e-9 {
		t.Fatal("PUE does not scale savings proportionally")
	}
}

func TestYearlySavingsFleet(t *testing.T) {
	m := NewCostModel()
	// Table 5 scale check: a ~0.5 W per-server delta is ~$0.05M/year per
	// 100K servers... i.e. a 3 W delta gives ~$0.33M (the 10 KQPS row).
	got := m.YearlySavingsFleetM(3.0)
	if got < 0.30 || got > 0.36 {
		t.Fatalf("3W fleet savings = %.2fM, want ~0.33M", got)
	}
	if m.YearlySavingsPerServer(-5) != 0 {
		t.Fatal("negative delta must clamp to 0")
	}
}

func TestTable5(t *testing.T) {
	m := NewCostModel()
	qps := []float64{10e3, 50e3}
	base := []float64{10, 20}
	aw := []float64{7, 14}
	rows, err := m.Table5(qps, base, aw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].DeltaW != 3 || rows[1].DeltaW != 6 {
		t.Fatal("deltas wrong")
	}
	if rows[1].SavingsPerYearM <= rows[0].SavingsPerYearM {
		t.Fatal("larger delta must save more")
	}
	if _, err := m.Table5(qps, base, aw[:1]); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
