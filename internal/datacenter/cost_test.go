package datacenter

import (
	"math"
	"testing"
)

func TestDollarsPerWattYear(t *testing.T) {
	m := NewCostModel()
	// $0.125/kWh => ~$1.10 per watt-year.
	got := m.DollarsPerWattYear()
	if math.Abs(got-1.096) > 0.01 {
		t.Fatalf("$/W-year = %v, want ~1.10", got)
	}
}

func TestPUEScalesSavings(t *testing.T) {
	m := NewCostModel()
	m.PUE = 1.5
	base := NewCostModel()
	if math.Abs(m.YearlySavingsPerServer(2)-1.5*base.YearlySavingsPerServer(2)) > 1e-9 {
		t.Fatal("PUE does not scale savings proportionally")
	}
}

func TestYearlySavingsFleet(t *testing.T) {
	m := NewCostModel()
	// Table 5 scale check: a ~0.5 W per-server delta is ~$0.05M/year per
	// 100K servers... i.e. a 3 W delta gives ~$0.33M (the 10 KQPS row).
	got := m.YearlySavingsFleetM(3.0)
	if got < 0.30 || got > 0.36 {
		t.Fatalf("3W fleet savings = %.2fM, want ~0.33M", got)
	}
	if m.YearlySavingsPerServer(-5) != 0 {
		t.Fatal("negative delta must clamp to 0")
	}
}

func TestTable5(t *testing.T) {
	m := NewCostModel()
	qps := []float64{10e3, 50e3}
	base := []float64{10, 20}
	aw := []float64{7, 14}
	rows, err := m.Table5(qps, base, aw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].DeltaW != 3 || rows[1].DeltaW != 6 {
		t.Fatal("deltas wrong")
	}
	if rows[1].SavingsPerYearM <= rows[0].SavingsPerYearM {
		t.Fatal("larger delta must save more")
	}
	if _, err := m.Table5(qps, base, aw[:1]); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestTable5MismatchedLengths(t *testing.T) {
	m := NewCostModel()
	qps := []float64{10e3, 50e3}
	two := []float64{10, 20}
	one := []float64{10}
	cases := []struct {
		name          string
		qps, base, aw []float64
	}{
		{"short baseline", qps, one, two},
		{"short aw", qps, two, one},
		{"short qps", one, two, two},
		{"empty qps only", nil, two, two},
	}
	for _, c := range cases {
		if _, err := m.Table5(c.qps, c.base, c.aw); err == nil {
			t.Errorf("%s: mismatched series accepted", c.name)
		}
	}
	// All-empty series are consistent: zero rows, no error.
	rows, err := m.Table5(nil, nil, nil)
	if err != nil || len(rows) != 0 {
		t.Errorf("empty series: rows=%d err=%v", len(rows), err)
	}
}

func TestTable5ZeroAndNegativeDeltas(t *testing.T) {
	m := NewCostModel()
	qps := []float64{10e3, 50e3, 100e3}
	base := []float64{10, 10, 10}
	aw := []float64{10, 12, 7} // zero, negative, positive deltas
	rows, err := m.Table5(qps, base, aw)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].DeltaW != 0 || rows[0].SavingsPerYearM != 0 {
		t.Errorf("zero delta row: %+v", rows[0])
	}
	// A regression (AW drawing more) reports the negative delta honestly
	// but never books negative savings.
	if rows[1].DeltaW != -2 {
		t.Errorf("negative delta = %v, want -2", rows[1].DeltaW)
	}
	if rows[1].SavingsPerYearM != 0 {
		t.Errorf("negative delta booked savings %v", rows[1].SavingsPerYearM)
	}
	if rows[2].SavingsPerYearM <= 0 {
		t.Errorf("positive delta booked no savings: %+v", rows[2])
	}
}

func TestMeasuredFleetMatchesExtrapolationWhenHomogeneous(t *testing.T) {
	// For a homogeneous fleet, measuring N identical servers and scaling
	// must agree exactly with extrapolating one server (Table 5's method):
	// the measured path divides the fleet delta by N before scaling.
	m := NewCostModel()
	const perServerDeltaW = 4.2
	for _, n := range []int{1, 3, 100} {
		measured, err := m.YearlySavingsMeasuredFleetM(perServerDeltaW*float64(n), n)
		if err != nil {
			t.Fatal(err)
		}
		extrapolated := m.YearlySavingsFleetM(perServerDeltaW)
		if math.Abs(measured-extrapolated) > 1e-12 {
			t.Errorf("n=%d: measured %v != extrapolated %v", n, measured, extrapolated)
		}
	}
	if _, err := m.YearlySavingsMeasuredFleetM(10, 0); err == nil {
		t.Error("zero-node fleet accepted")
	}
	if _, err := m.YearlySavingsMeasuredFleetM(10, -3); err == nil {
		t.Error("negative-node fleet accepted")
	}
}
