package xrand

import (
	"fmt"
	"sync/atomic"
)

// SeedBlockBits sizes the seed blocks handed out by SeedBlocks: each
// block spans 2^SeedBlockBits consecutive seeds. Callers deriving
// per-iteration seeds base+i*stride stay collision-free as long as
// i*stride stays below 2^SeedBlockBits — at the benchmark harness's
// stride of 16 that is 2^16 iterations, far beyond any realistic b.N.
const SeedBlockBits = 20

// SeedBlocks hands out disjoint seed ranges to concurrent consumers.
// The benchmark harness uses it to keep the process-wide memoizing
// runner from short-circuiting measurements: seeds must be unique per
// iteration AND per benchmark, because benchmarks whose sweeps overlap
// (Fig. 8/10, Table 5, the proportionality and cluster studies all
// share the Baseline Memcached curve) would otherwise hit each other's
// cached simulations.
//
// The zero value is ready to use. Safe for concurrent use.
type SeedBlocks struct {
	ctr atomic.Uint64
}

// Next returns the base of the next unused block above start: start +
// k*2^SeedBlockBits for a k unique to this call. Seeds base..base+2^20-1
// are the caller's alone (per SeedBlocks value and common start).
func (s *SeedBlocks) Next(start uint64) uint64 {
	return start + s.ctr.Add(1)<<SeedBlockBits
}

// The class/replica seed plane is the second level of the seed-block
// scheme: where SeedBlocks hands out dynamic blocks to benchmark
// iterations, the plane below is a *deterministic* two-level layout for
// the cluster layer's statistical replicas — replica r of timeline
// equivalence class c always maps to the same seed, so replicated runs
// are reproducible without any process-wide counter state.
//
// Layout: class c owns [ClassSeedBase + c·2^SeedBlockBits, +2^SeedBlockBits),
// and replica r owns the 2^ReplicaBlockBits-seed sub-block at offset
// r·2^ReplicaBlockBits inside it. Disjointness from the other seed
// consumers holds in the documented operating envelope (verified by
// TestClassReplicaPlaneDisjoint):
//
//   - node seeds stay below 2^32 (and SeedBlocks blocks, started from
//     such seeds, below 2^32 + 2^26), far under ClassSeedBase = 2^62;
//   - epoch-mixed seeds (seed XOR epoch·golden-ratio-stride, see
//     EpochSeed) never land in the plane for epochs < 2^12, because the
//     XOR with a sub-2^32 seed only perturbs the low 32 bits and no
//     stride multiple falls within 2^32 of the plane;
//   - distinct (class, replica) pairs never share a seed by construction.
const (
	// ClassSeedBase is the origin of the class/replica plane.
	ClassSeedBase uint64 = 1 << 62
	// ReplicaBlockBits sizes one replica's sub-block within a class
	// block; a class block therefore holds MaxReplicas sub-blocks.
	ReplicaBlockBits = 8
	// MaxReplicas is the number of replica sub-blocks per class block.
	MaxReplicas = 1 << (SeedBlockBits - ReplicaBlockBits)
)

// ClassReplicaSeed returns the base seed of replica `replica` of
// equivalence class `class`. Replica 0 is conventionally the class
// representative running under its own natural seed, so callers
// typically ask for replicas 1..K; replica 0 is still a valid,
// distinct slot. Panics outside the plane (negative inputs or replica
// >= MaxReplicas — a programming error, not a data error).
func ClassReplicaSeed(class, replica int) uint64 {
	if class < 0 || replica < 0 || replica >= MaxReplicas {
		panic(fmt.Sprintf("xrand: class/replica (%d,%d) outside the seed plane", class, replica))
	}
	return ClassSeedBase + uint64(class)<<SeedBlockBits + uint64(replica)<<ReplicaBlockBits
}

// Seed-plane map. Every consumer of deterministic randomness in the
// repository draws from one of five reserved, mutually disjoint regions
// of the 64-bit seed space; the disjointness proofs live in this
// package (TestClassReplicaPlaneDisjoint, TestFaultPlaneDisjoint) so a
// new plane cannot silently collide with an old one:
//
//	plane          region                              consumer
//	-----          ------                              --------
//	node           [0, 2^32)                           raw per-node Config.Seed values
//	epoch          seed ^ epoch·EpochSeedStride        cold-path per-epoch reseeding
//	                                                   (epochs < 2^12; epoch 0 = identity)
//	sweep-block    SeedBlocks.Next: start + k·2^20     benchmark-harness iteration blocks
//	class-replica  [2^62, 2^62 + 2^40)                 ClassReplicaSeed: timeline-class
//	                                                   statistical replicas
//	fault          [2^61, 2^61 + 2^20)                 FaultSeed: the correlated fault
//	                                                   process RNG stream
//
// Restarted instances reuse the node plane through RestartSeed, an
// XOR-stride remix of the node's own seed — deliberately so: a rebuilt
// node is still that node, just with a fresh RNG history, and the remix
// never equals the original seed for restart counts >= 1.

// EpochSeedStride is the golden-ratio stride the cluster layer's cold
// path mixes epoch indices with (XORed, so epoch 0 keeps the node's own
// seed). It lives here so the disjointness proof over every seed
// consumer — raw node seeds, epoch-mixed seeds, SeedBlocks blocks, the
// class/replica plane, and the fault plane — is stated (and
// regression-tested) in one package.
const EpochSeedStride = 0x9e3779b97f4a7c15

// EpochSeed mixes an epoch index into a node seed: seed ^ epoch·stride.
// Epoch 0 is the identity, which is what lets a one-epoch scenario
// reproduce a static run bit-for-bit.
func EpochSeed(seed uint64, epoch int) uint64 {
	return seed ^ uint64(epoch)*EpochSeedStride
}

// FaultSeedBase is the origin of the fault seed plane: the reserved
// region [2^61, 2^61 + 2^20) feeding the cluster layer's correlated
// fault process. It sits below the class/replica plane (2^62) and far
// above everything derived from node seeds, so a fault draw can never
// replay a node's, an epoch's, or a replica's random stream (see the
// seed-plane map above and TestFaultPlaneDisjoint).
const FaultSeedBase uint64 = 1 << 61

// FaultSeed maps a user-chosen fault-process seed into the fault plane.
// Only the low SeedBlockBits bits of the user seed select the slot —
// the plane is a single 2^20-seed block — so any uint64 the scenario
// file supplies lands inside the reserved region.
func FaultSeed(seed uint64) uint64 {
	return FaultSeedBase + seed&(1<<SeedBlockBits-1)
}

// RestartSeedStride is the splitmix64 mixing constant used to remix a
// node seed after a crash/restart. It is deliberately a different
// odd constant from EpochSeedStride so a restarted node's RNG history
// cannot collide with any epoch-mixed stream of the same node.
const RestartSeedStride = 0xbf58476d1ce4e5b9

// RestartSeed derives the seed for the n-th rebuild of a crashed node:
// seed ^ n·stride. Restart counts start at 1, so the remix never
// returns the node's original seed — a rebuilt instance must not replay
// the arrival/service history its predecessor already consumed.
func RestartSeed(seed uint64, n int) uint64 {
	return seed ^ uint64(n)*RestartSeedStride
}
