package xrand

import "sync/atomic"

// SeedBlockBits sizes the seed blocks handed out by SeedBlocks: each
// block spans 2^SeedBlockBits consecutive seeds. Callers deriving
// per-iteration seeds base+i*stride stay collision-free as long as
// i*stride stays below 2^SeedBlockBits — at the benchmark harness's
// stride of 16 that is 2^16 iterations, far beyond any realistic b.N.
const SeedBlockBits = 20

// SeedBlocks hands out disjoint seed ranges to concurrent consumers.
// The benchmark harness uses it to keep the process-wide memoizing
// runner from short-circuiting measurements: seeds must be unique per
// iteration AND per benchmark, because benchmarks whose sweeps overlap
// (Fig. 8/10, Table 5, the proportionality and cluster studies all
// share the Baseline Memcached curve) would otherwise hit each other's
// cached simulations.
//
// The zero value is ready to use. Safe for concurrent use.
type SeedBlocks struct {
	ctr atomic.Uint64
}

// Next returns the base of the next unused block above start: start +
// k*2^SeedBlockBits for a k unique to this call. Seeds base..base+2^20-1
// are the caller's alone (per SeedBlocks value and common start).
func (s *SeedBlocks) Next(start uint64) uint64 {
	return start + s.ctr.Add(1)<<SeedBlockBits
}
