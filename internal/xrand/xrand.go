// Package xrand provides deterministic random streams and the sampling
// distributions used by the workload generators.
//
// Every stochastic component of the simulator (arrival process, service
// times, snoop traffic, measurement noise) draws from its own named
// stream, so adding a new consumer never perturbs existing ones and every
// experiment is reproducible from a single experiment seed.
package xrand

import (
	"errors"
	"math"
)

// splitmix64 is used to derive stream seeds; xoshiro256** generates the
// stream itself. Both are public-domain algorithms (Blackman & Vigna).

func splitmix64(x uint64) (uint64, uint64) {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return z, x
}

// Rand is a deterministic 64-bit PRNG (xoshiro256**).
type Rand struct {
	s [4]uint64
	// Single-entry memo for LogNormalMeanCV's derived (mu, sigma): a
	// stream samples one distribution in practice, so the two Logs and
	// the Sqrt per sample reduce to one comparison. Cache state does not
	// affect the generated sequence.
	lnMean, lnCV   float64
	lnMu, lnSigma  float64
	lnParamsPrimed bool
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	var r Rand
	state := seed
	for i := range r.s {
		r.s[i], state = splitmix64(state)
	}
	// All-zero state is invalid for xoshiro; splitmix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

// NewStream derives an independent generator for a named purpose.
// Identical (seed, name) pairs always yield the same stream.
func NewStream(seed uint64, name string) *Rand {
	h := uint64(14695981039346656037) // FNV-1a 64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return New(seed ^ h)
}

// State returns the generator's internal xoshiro256** state — the
// complete stream position, so a generator restored with SetState
// continues the exact sequence this one would have produced. The
// log-normal parameter memo is deliberately excluded: it caches derived
// values only and never affects the generated sequence.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState installs a previously captured stream state. The all-zero
// state is the one fixed point xoshiro256** can never leave and is
// rejected; New and NewStream never produce it.
func (r *Rand) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("xrand: all-zero state is invalid for xoshiro256**")
	}
	r.s = s
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 {
	// Scaling by 2^-53 instead of dividing by 2^53 is exact either way
	// (the 53-bit integer scales by a power of two without rounding),
	// and the multiply is several cycles cheaper.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed sample (Box–Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	var u1, u2 float64
	for {
		u1 = r.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 = r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// LogNormalMeanCV returns a log-normal sample parameterized by its
// arithmetic mean and coefficient of variation (stddev/mean), which is how
// service-time distributions are specified in the workload profiles.
func (r *Rand) LogNormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		panic("xrand: LogNormalMeanCV with mean <= 0")
	}
	if cv <= 0 {
		return mean
	}
	if !r.lnParamsPrimed || mean != r.lnMean || cv != r.lnCV {
		sigma2 := math.Log(1 + cv*cv)
		r.lnMu = math.Log(mean) - sigma2/2
		r.lnSigma = math.Sqrt(sigma2)
		r.lnMean, r.lnCV = mean, cv
		r.lnParamsPrimed = true
	}
	return r.LogNormal(r.lnMu, r.lnSigma)
}

// Pareto returns a bounded Pareto sample with the given shape alpha and
// minimum xm. Used for heavy-tailed service components.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.Float64() < p }

// Zipf samples ranks in [0, n) with Zipfian skew s (s=0 is uniform).
// It uses the classic rejection-inversion-free CDF table for small n and
// is intended for key-popularity modeling in the key-value workload.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
