package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, "arrivals")
	b := NewStream(7, "service")
	c := NewStream(7, "arrivals")
	if a.Uint64() == b.Uint64() {
		t.Fatal("differently named streams coincide")
	}
	a2 := NewStream(7, "arrivals")
	_ = c
	if a2.Uint64() != NewStream(7, "arrivals").Uint64() {
		t.Fatal("same-named stream not reproducible")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.15 {
		t.Fatalf("Exp mean = %v, want ~10", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestLogNormalMeanCV(t *testing.T) {
	r := New(8)
	const n = 400000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.LogNormalMeanCV(8, 0.5)
		if v <= 0 {
			t.Fatalf("log-normal sample <= 0: %v", v)
		}
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	cv := math.Sqrt(sum2/n-mean*mean) / mean
	if math.Abs(mean-8) > 0.15 {
		t.Fatalf("mean = %v, want ~8", mean)
	}
	if math.Abs(cv-0.5) > 0.05 {
		t.Fatalf("cv = %v, want ~0.5", cv)
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	r := New(9)
	if v := r.LogNormalMeanCV(5, 0); v != 5 {
		t.Fatalf("cv=0 sample = %v, want exactly the mean", v)
	}
}

func TestParetoBound(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(3, 2); v < 3 {
			t.Fatalf("Pareto sample %v below xm", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn did not cover range, saw %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestZipfSkew(t *testing.T) {
	r := New(12)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	// Harmonic: rank0/rank1 should be roughly 2 for s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("rank0/rank1 ratio = %v, want ~2", ratio)
	}
}

func TestZipfUniform(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("s=0 Zipf not uniform: rank %d count %d", i, c)
		}
	}
}

func TestBernoulliProbability(t *testing.T) {
	r := New(14)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
}

// Property: exponential samples are non-negative for any positive mean.
func TestPropertyExpNonNegative(t *testing.T) {
	f := func(seed uint64, mean float64) bool {
		mean = math.Abs(mean)
		if mean == 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
			mean = 1
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Exp(mean) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateRoundTrip(t *testing.T) {
	a := NewStream(7, "state-roundtrip")
	for i := 0; i < 100; i++ {
		a.Uint64()
	}
	state := a.State()
	want := make([]uint64, 32)
	for i := range want {
		want[i] = a.Uint64()
	}
	// A fresh generator with the captured state continues the sequence.
	b := New(0xdead)
	if err := b.SetState(state); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := b.Uint64(); got != w {
			t.Fatalf("restored stream diverged at draw %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	r := New(1)
	if err := r.SetState([4]uint64{}); err == nil {
		t.Fatal("SetState accepted the all-zero state")
	}
	// The failed SetState must not have clobbered the stream.
	if r.State() == ([4]uint64{}) {
		t.Fatal("rejected SetState still zeroed the stream")
	}
}

func TestStateExcludesLogNormalMemo(t *testing.T) {
	// Priming the log-normal memo must not change the stream identity:
	// a restored generator reproduces LogNormalMeanCV samples even
	// though the memo itself is not part of State().
	a := NewStream(11, "memo")
	a.LogNormalMeanCV(5, 0.7) // primes the memo and advances the stream
	state := a.State()
	want := a.LogNormalMeanCV(5, 0.7)
	b := New(2)
	if err := b.SetState(state); err != nil {
		t.Fatal(err)
	}
	if got := b.LogNormalMeanCV(5, 0.7); got != want {
		t.Fatalf("restored stream log-normal sample %g, want %g", got, want)
	}
}
