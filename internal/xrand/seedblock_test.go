package xrand

import (
	"sync"
	"testing"
)

func TestSeedBlocksDisjoint(t *testing.T) {
	var s SeedBlocks
	const start = 2022
	a := s.Next(start)
	b := s.Next(start)
	if a == b {
		t.Fatal("two blocks share a base")
	}
	// Blocks are start-relative multiples of the block size.
	if (a-start)%(1<<SeedBlockBits) != 0 || (b-start)%(1<<SeedBlockBits) != 0 {
		t.Fatalf("bases %d/%d not aligned to 2^%d above start", a, b, SeedBlockBits)
	}
	// Per-iteration seeds from different blocks never collide as long as
	// each caller stays below the block size.
	span := uint64(1) << SeedBlockBits
	if a+span-1 >= b && b+span-1 >= a {
		t.Fatalf("blocks [%d,+%d) and [%d,+%d) overlap", a, span, b, span)
	}
}

func TestSeedBlocksZeroValueAndStartOffset(t *testing.T) {
	var s SeedBlocks
	base := s.Next(7)
	if base <= 7 {
		t.Fatalf("block base %d not above start", base)
	}
	if got := base - 7; got != 1<<SeedBlockBits {
		t.Fatalf("first block offset %d, want 2^%d", got, SeedBlockBits)
	}
}

// TestClassReplicaPlaneDisjoint is the regression proof behind the
// class/replica seed plane's documented operating envelope: inside it,
// no node seed, no epoch-mixed seed, and no SeedBlocks block can ever
// collide with a (class, replica) seed, and distinct (class, replica)
// pairs never share one.
func TestClassReplicaPlaneDisjoint(t *testing.T) {
	const (
		maxNodeSeed = uint64(1) << 32 // envelope: node seeds < 2^32
		maxEpochs   = 1 << 12         // envelope: epochs < 4096
		maxClasses  = uint64(1) << 20 // envelope: up to ~1M classes
	)
	planeLo := ClassSeedBase
	planeHi := ClassSeedBase + maxClasses<<SeedBlockBits // exclusive

	// Raw node seeds sit far below the plane.
	if maxNodeSeed >= planeLo {
		t.Fatalf("node-seed envelope %#x reaches the plane origin %#x", maxNodeSeed, planeLo)
	}
	// SeedBlocks blocks started from envelope seeds stay below the plane
	// even after an absurd number of Next calls (2^30 blocks of 2^20).
	if worst := maxNodeSeed + (uint64(1)<<30)<<SeedBlockBits; worst >= planeLo {
		t.Fatalf("SeedBlocks envelope %#x reaches the plane origin %#x", worst, planeLo)
	}

	// Epoch-mixed seeds: EpochSeed(s, e) = s ^ e*stride, and for s <
	// 2^32 the XOR only perturbs the low 32 bits of e*stride. So an
	// epoch-mixed seed can land in the plane only if e*stride falls
	// within 2^32 of it; enumerate every epoch in the envelope and
	// check the conservative 2^32-widened plane misses them all.
	const pad = uint64(1) << 32
	for e := 0; e < maxEpochs; e++ {
		mixed := uint64(e) * EpochSeedStride
		if mixed >= planeLo-pad && mixed < planeHi+pad {
			t.Fatalf("epoch %d stride product %#x within 2^32 of the class/replica plane [%#x,%#x)",
				e, mixed, planeLo, planeHi)
		}
	}

	// Distinct (class, replica) pairs get distinct seeds, inside the
	// owning class block, ordered, and aligned to replica sub-blocks.
	seen := make(map[uint64]bool)
	for class := 0; class < 64; class++ {
		blockLo := ClassSeedBase + uint64(class)<<SeedBlockBits
		for rep := 0; rep < MaxReplicas; rep += 97 {
			s := ClassReplicaSeed(class, rep)
			if seen[s] {
				t.Fatalf("seed %#x handed to two (class,replica) pairs", s)
			}
			seen[s] = true
			if s < blockLo || s >= blockLo+1<<SeedBlockBits {
				t.Fatalf("replica %d of class %d escaped its class block", rep, class)
			}
			if (s-blockLo)%(1<<ReplicaBlockBits) != 0 {
				t.Fatalf("seed %#x not aligned to a replica sub-block", s)
			}
		}
	}
}

// TestFaultPlaneDisjoint is the regression proof behind the fault seed
// plane: inside the documented envelope no node seed, no epoch-mixed
// seed, no SeedBlocks block, and no class/replica seed can collide with
// a fault-process seed, and restart-remixed node seeds stay out too.
func TestFaultPlaneDisjoint(t *testing.T) {
	const (
		maxNodeSeed = uint64(1) << 32 // envelope: node seeds < 2^32
		maxEpochs   = 1 << 12         // envelope: epochs < 4096
		maxRestarts = 1 << 12         // envelope: restarts < 4096 per node
	)
	planeLo := FaultSeedBase
	planeHi := FaultSeedBase + 1<<SeedBlockBits // exclusive

	// Every FaultSeed lands inside the plane, regardless of user input.
	for _, s := range []uint64{0, 1, 42, maxNodeSeed - 1, ^uint64(0), FaultSeedBase} {
		got := FaultSeed(s)
		if got < planeLo || got >= planeHi {
			t.Fatalf("FaultSeed(%#x) = %#x escapes the plane [%#x,%#x)", s, got, planeLo, planeHi)
		}
	}

	// Raw node seeds and SeedBlocks blocks started from them sit far
	// below the plane (same envelope as the class/replica proof).
	if worst := maxNodeSeed + (uint64(1)<<30)<<SeedBlockBits; worst >= planeLo {
		t.Fatalf("node/SeedBlocks envelope %#x reaches the fault plane origin %#x", worst, planeLo)
	}
	// The class/replica plane starts at 2^62, above the fault plane's end.
	if planeHi > ClassSeedBase {
		t.Fatalf("fault plane end %#x overlaps the class/replica plane origin %#x", planeHi, ClassSeedBase)
	}

	// Epoch-mixed and restart-remixed seeds: both are s ^ k·stride with
	// s < 2^32, so the XOR only perturbs the low 32 bits of the stride
	// product. Enumerate every stride product in the envelope and check
	// the conservative 2^32-widened plane misses them all.
	const pad = uint64(1) << 32
	for e := 0; e < maxEpochs; e++ {
		mixed := uint64(e) * EpochSeedStride
		if mixed >= planeLo-pad && mixed < planeHi+pad {
			t.Fatalf("epoch %d stride product %#x within 2^32 of the fault plane", e, mixed)
		}
	}
	for n := 0; n < maxRestarts; n++ {
		mixed := uint64(n) * RestartSeedStride
		if mixed >= planeLo-pad && mixed < planeHi+pad {
			t.Fatalf("restart %d stride product %#x within 2^32 of the fault plane", n, mixed)
		}
	}
}

// TestRestartSeedRemix pins the restart remix formula and the property
// the cursor relies on: rebuild n >= 1 never replays the original seed,
// and distinct rebuild counts get distinct seeds.
func TestRestartSeedRemix(t *testing.T) {
	if got := RestartSeed(42, 0); got != 42 {
		t.Fatalf("RestartSeed(42,0) = %d, want identity", got)
	}
	seen := map[uint64]bool{42: true}
	for n := 1; n < 256; n++ {
		s := RestartSeed(42, n)
		if s == 42 {
			t.Fatalf("rebuild %d replays the original seed", n)
		}
		if seen[s] {
			t.Fatalf("rebuild %d collides with an earlier rebuild", n)
		}
		seen[s] = true
	}
	var stride uint64 = RestartSeedStride
	if got, want := RestartSeed(7, 3), uint64(7)^3*stride; got != want {
		t.Fatalf("RestartSeed(7,3) = %#x, want %#x", got, want)
	}
}

// TestClassReplicaSeedPanicsOutsidePlane pins the guard rails.
func TestClassReplicaSeedPanicsOutsidePlane(t *testing.T) {
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {0, MaxReplicas}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ClassReplicaSeed(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			ClassReplicaSeed(bad[0], bad[1])
		}()
	}
}

// TestEpochSeedIdentityAndStride pins the mixing formula the cluster
// layer's cold-path goldens depend on.
func TestEpochSeedIdentityAndStride(t *testing.T) {
	if got := EpochSeed(42, 0); got != 42 {
		t.Fatalf("epoch 0 seed = %d, want identity", got)
	}
	var stride uint64 = EpochSeedStride
	if got, want := EpochSeed(42, 3), uint64(42)^3*stride; got != want {
		t.Fatalf("EpochSeed(42,3) = %#x, want %#x", got, want)
	}
}

func TestSeedBlocksConcurrent(t *testing.T) {
	var s SeedBlocks
	const n = 64
	bases := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bases[i] = s.Next(1)
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool, n)
	for _, b := range bases {
		if seen[b] {
			t.Fatalf("base %d handed out twice", b)
		}
		seen[b] = true
	}
}
