package xrand

import (
	"sync"
	"testing"
)

func TestSeedBlocksDisjoint(t *testing.T) {
	var s SeedBlocks
	const start = 2022
	a := s.Next(start)
	b := s.Next(start)
	if a == b {
		t.Fatal("two blocks share a base")
	}
	// Blocks are start-relative multiples of the block size.
	if (a-start)%(1<<SeedBlockBits) != 0 || (b-start)%(1<<SeedBlockBits) != 0 {
		t.Fatalf("bases %d/%d not aligned to 2^%d above start", a, b, SeedBlockBits)
	}
	// Per-iteration seeds from different blocks never collide as long as
	// each caller stays below the block size.
	span := uint64(1) << SeedBlockBits
	if a+span-1 >= b && b+span-1 >= a {
		t.Fatalf("blocks [%d,+%d) and [%d,+%d) overlap", a, span, b, span)
	}
}

func TestSeedBlocksZeroValueAndStartOffset(t *testing.T) {
	var s SeedBlocks
	base := s.Next(7)
	if base <= 7 {
		t.Fatalf("block base %d not above start", base)
	}
	if got := base - 7; got != 1<<SeedBlockBits {
		t.Fatalf("first block offset %d, want 2^%d", got, SeedBlockBits)
	}
}

func TestSeedBlocksConcurrent(t *testing.T) {
	var s SeedBlocks
	const n = 64
	bases := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bases[i] = s.Next(1)
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool, n)
	for _, b := range bases {
		if seen[b] {
			t.Fatalf("base %d handed out twice", b)
		}
		seen[b] = true
	}
}
