// Package report renders experiment outputs as aligned text tables and
// CSV, matching the rows/series the paper's tables and figures present.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed after the table body.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV emits the table as RFC-4180-ish CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// MW formats watts as a milliwatt string.
func MW(w float64) string { return fmt.Sprintf("%.0fmW", w*1000) }

// MWRange formats a [lo,hi] watt range in milliwatts; point values render
// as a single number.
func MWRange(r [2]float64) string {
	if r[0] == r[1] {
		return fmt.Sprintf("%.0f", r[0]*1000)
	}
	return fmt.Sprintf("%.0f-%.0f", r[0]*1000, r[1]*1000)
}

// US formats microseconds.
func US(us float64) string { return fmt.Sprintf("%.1fus", us) }

// W formats watts.
func W(w float64) string { return fmt.Sprintf("%.2fW", w) }
