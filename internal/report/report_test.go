package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "T",
		Headers: []string{"a", "b"},
		Notes:   []string{"hello"},
	}
	t.AddRow("x", 1.5)
	t.AddRow("longer-cell", 0.25)
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "longer-cell") || !strings.Contains(out, "note: hello") {
		t.Errorf("missing content:\n%s", out)
	}
	// Header separator present.
	if !strings.Contains(out, "---") {
		t.Error("missing separator")
	}
}

func TestAddRowFormatting(t *testing.T) {
	tbl := &Table{Headers: []string{"v"}}
	tbl.AddRow(3.0)
	tbl.AddRow(3.14159)
	tbl.AddRow(42)
	if tbl.Rows[0][0] != "3" {
		t.Errorf("3.0 rendered as %q", tbl.Rows[0][0])
	}
	if tbl.Rows[1][0] != "3.142" {
		t.Errorf("pi rendered as %q", tbl.Rows[1][0])
	}
	if tbl.Rows[2][0] != "42" {
		t.Errorf("int rendered as %q", tbl.Rows[2][0])
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("plain", `has"quote`)
	tbl.AddRow("with,comma", "ok")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("bad header: %q", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote not escaped: %q", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma not quoted: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.125) != "12.5%" {
		t.Error(Pct(0.125))
	}
	if MW(0.055) != "55mW" {
		t.Error(MW(0.055))
	}
	if MWRange([2]float64{0.03, 0.05}) != "30-50" {
		t.Error(MWRange([2]float64{0.03, 0.05}))
	}
	if MWRange([2]float64{0.007, 0.007}) != "7" {
		t.Error(MWRange([2]float64{0.007, 0.007}))
	}
	if US(12.34) != "12.3us" {
		t.Error(US(12.34))
	}
	if W(1.443) != "1.44W" {
		t.Error(W(1.443))
	}
}
