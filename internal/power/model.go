// Package power implements the paper's analytical CPU-core power models:
// the motivation upper bound (Eq. 1), the baseline average-power model
// (Eq. 2), the AgileWatts model (Eq. 3), the Turbo-enabled savings model
// (Eq. 4), leakage technology scaling, and the model-validation
// methodology of Sec. 6.3.
package power

import (
	"fmt"

	"repro/internal/cstate"
)

// Residencies holds per-C-state residency fractions indexed by
// cstate.ID. Fractions over the states in use must sum to ~1.
type Residencies [cstate.NumStates]float64

// Sum returns the total residency (should be ~1 for a complete vector).
func (r Residencies) Sum() float64 {
	s := 0.0
	for _, v := range r {
		s += v
	}
	return s
}

// Validate checks the vector is a distribution.
func (r Residencies) Validate() error {
	for i, v := range r {
		if v < -1e-9 || v > 1+1e-9 {
			return fmt.Errorf("power: residency %v = %v out of range", cstate.ID(i), v)
		}
	}
	if s := r.Sum(); s < 0.999 || s > 1.001 {
		return fmt.Errorf("power: residencies sum to %v, want 1", s)
	}
	return nil
}

// Vector is per-C-state core power in watts indexed by cstate.ID.
type Vector [cstate.NumStates]float64

// VectorFromCatalog extracts the resident-power vector from a catalog.
func VectorFromCatalog(c *cstate.Catalog) Vector {
	return Vector(c.PowerVector())
}

// AvgPower computes Eq. 2 / Eq. 3: the residency-weighted average core
// power. It works for both the baseline state set {C0, C1, C1E, C6} and
// the AW set {C0, C6A, C6AE, C6} — whichever states carry nonzero
// residency.
func AvgPower(r Residencies, p Vector) float64 {
	avg := 0.0
	for i := range r {
		avg += r[i] * p[i]
	}
	return avg
}

// MotivationSavings computes Eq. 1: the upper-bound average-power saving
// from an ideal deep idle state with C1's latency and C6's power, for a
// workload spending rc0/rc1/rc6 of its time in C0/C1/C6.
// It returns the percentage reduction of baseline average power.
func MotivationSavings(rc0, rc1, rc6 float64, p Vector) float64 {
	baseline := rc0*p[cstate.C0] + rc1*p[cstate.C1] + rc6*p[cstate.C6]
	if baseline <= 0 {
		return 0
	}
	savings := rc1 * (p[cstate.C1] - p[cstate.C6])
	return savings / baseline * 100
}

// TurboSavings computes Eq. 4: with Turbo enabled, AW's average power
// saving replaces C1/C1E residency power with C6A/C6AE power, relative
// to the measured baseline average power (which already includes Turbo's
// C0 power variation). It returns the percentage reduction.
func TurboSavings(rc1, rc1e, avgBaseline float64, p Vector) float64 {
	if avgBaseline <= 0 {
		return 0
	}
	savings := rc1*(p[cstate.C1]-p[cstate.C6A]) + rc1e*(p[cstate.C1E]-p[cstate.C6AE])
	return savings / avgBaseline * 100
}

// AWInput describes a measured baseline run to be transformed by the AW
// model (Sec. 6.2 "Modeling the AW CPU Core").
type AWInput struct {
	// Baseline residency fractions (C0/C1/C1E/C6 populated).
	Baseline Residencies

	// TransitionsPerSecond is the rate of C1+C1E entries observed in the
	// baseline, each of which pays the extra C6A transition latency under
	// AW.
	TransitionsPerSecond float64

	// ExtraTransitionLatencySec is the additional per-transition latency
	// of C6A/C6AE over C1/C1E hardware transitions (~100 ns).
	ExtraTransitionLatencySec float64

	// FreqScalability is the workload's performance change per unit
	// frequency change (Sec. 6.2 footnote 8).
	FreqScalability float64

	// FreqLossFraction is the frequency degradation from the UFPG power
	// gates (Sec. 5.1.1: ~1 %).
	FreqLossFraction float64
}

// AWResult is the transformed AW prediction.
type AWResult struct {
	// Residencies after replacing C1->C6A and C1E->C6AE and scaling for
	// the AW performance overheads.
	Residencies Residencies
	// PerfDegradation is the modeled relative increase in busy (C0) time.
	PerfDegradation float64
}

// ApplyAW performs the paper's three modeling steps: (1) scale C-state
// residency for the power-gate frequency loss (weighted by workload
// frequency scalability) and the extra C6A transition latency; (2) move
// C1/C1E residency to C6A/C6AE; (3) leave C0/C6 in place. The result
// feeds AvgPower with the AW power vector.
func ApplyAW(in AWInput) AWResult {
	perfLoss := in.FreqScalability * in.FreqLossFraction
	extraActive := in.TransitionsPerSecond * in.ExtraTransitionLatencySec

	r := in.Baseline
	// Busy time grows by the frequency-loss-driven slowdown plus the
	// per-transition latency (expressed as a fraction of total time).
	grow := r[cstate.C0]*perfLoss + extraActive
	idle := r[cstate.C1] + r[cstate.C1E] + r[cstate.C6]
	if grow > idle {
		grow = idle
	}
	var out Residencies
	out[cstate.C0] = r[cstate.C0] + grow
	// The growth eats proportionally into the idle states.
	shrink := 1.0
	if idle > 0 {
		shrink = (idle - grow) / idle
	}
	out[cstate.C6A] = r[cstate.C1] * shrink
	out[cstate.C6AE] = r[cstate.C1E] * shrink
	out[cstate.C6] = r[cstate.C6] * shrink
	return AWResult{
		Residencies:     out,
		PerfDegradation: perfLoss + extraActiveFraction(extraActive, r[cstate.C0]),
	}
}

// extraActiveFraction expresses the transition-latency overhead relative
// to busy time, which is how it shows up as request-latency degradation.
func extraActiveFraction(extraActive, busy float64) float64 {
	if busy <= 0 {
		return 0
	}
	return extraActive / busy
}

// SavingsPercent is a helper returning (base-new)/base * 100, guarded
// against a non-positive base.
func SavingsPercent(base, new float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - new) / base * 100
}
