package power

// Technology and regulator scaling helpers used by the PPA methodology
// (Sec. 5.1.2 and Table 3 footnotes).

// LeakageScale returns the leakage power scaling factor when moving a
// design across technology nodes per the methodology of [99]: for a
// dimensional scaling factor alpha (~0.7 from 22 nm to 14 nm) and a
// voltage scaling factor beta (conservatively 1.0), leakage scales as
// alpha*beta.
func LeakageScale(alpha, beta float64) float64 {
	return alpha * beta
}

// CapacityScale returns the leakage scaling between two SRAM capacities
// (leakage is proportional to retained bits).
func CapacityScale(targetBytes, referenceBytes int) float64 {
	if referenceBytes <= 0 {
		return 0
	}
	return float64(targetBytes) / float64(referenceBytes)
}

// LVREfficiency models a sleep transistor / low-dropout regulator: its
// power-conversion efficiency is the ratio of output to input voltage
// (Sec. 5.1.2), so lowering the input toward the retention output
// improves efficiency — the reason C6AE's cache sleep power (40 mW) is
// below C6A's (55 mW).
func LVREfficiency(vOut, vIn float64) float64 {
	if vIn <= 0 || vOut <= 0 {
		return 0
	}
	if vOut > vIn {
		return 1
	}
	return vOut / vIn
}

// SleepLeakageAtVoltage scales sleep-mode leakage measured at input
// voltage vRef to a new input voltage vNew, holding the retention output
// voltage constant: dissipation in the sleep transistor scales with the
// voltage drop across it.
func SleepLeakageAtVoltage(leakAtRef, vRet, vRef, vNew float64) float64 {
	if vRef <= vRet {
		return leakAtRef
	}
	return leakAtRef * (vNew - vRet) / (vRef - vRet)
}
