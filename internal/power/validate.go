package power

import (
	"repro/internal/cstate"
	"repro/internal/xrand"
)

// Validation reproduces the Sec. 6.3 methodology: run representative
// server workloads at multiple utilization levels, collect C-state
// residencies and measured average power, estimate power with the
// analytical model, and report per-workload accuracy.
//
// Substitution note (no RAPL hardware): "measured" power is synthesized
// as the model's prediction perturbed by the effects the analytical model
// deliberately ignores — C0 dynamic-power variation with workload IPC and
// per-sample measurement noise — so the accuracy score exercises the same
// gap the paper quantifies.

// ValidationSample is one (utilization level) run of one workload.
type ValidationSample struct {
	Utilization float64
	Residencies Residencies
	MeasuredW   float64
	EstimatedW  float64
}

// ValidationResult aggregates a workload's accuracy across load levels.
type ValidationResult struct {
	Workload string
	Samples  []ValidationSample
	// AccuracyPercent = 100 * (1 - mean(|est-meas|/meas)).
	AccuracyPercent float64
}

// ValidationProfile describes how a validation workload splits its idle
// time across C-states as utilization varies, and how strongly its C0
// dynamic power deviates from the single-point C0 power the model uses.
type ValidationProfile struct {
	Name string
	// IdleDepth in [0,1]: fraction of idle time eligible for deep states
	// at low load (batch workloads idle longer and deeper).
	IdleDepth float64
	// DynamicVariation is the relative amplitude of C0 power deviation
	// (IPC-dependent) from the modeled 4 W point.
	DynamicVariation float64
	// Utilizations are the measured load points.
	Utilizations []float64
}

// ValidationProfiles returns the four Sec. 6.3 workloads. IdleDepth and
// DynamicVariation are chosen to reflect their characters: SPECpower's
// graduated load idles deeply; Nginx is latency-bound and shallow; Spark
// and Hive are batchy with high IPC variation.
func ValidationProfiles() []ValidationProfile {
	return []ValidationProfile{
		{Name: "SPECpower", IdleDepth: 0.8, DynamicVariation: 0.05,
			Utilizations: []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}},
		{Name: "Nginx", IdleDepth: 0.3, DynamicVariation: 0.06,
			Utilizations: []float64{0.1, 0.25, 0.5, 0.75}},
		{Name: "Spark", IdleDepth: 0.6, DynamicVariation: 0.08,
			Utilizations: []float64{0.3, 0.6, 0.9}},
		{Name: "Hive", IdleDepth: 0.7, DynamicVariation: 0.07,
			Utilizations: []float64{0.2, 0.5, 0.8}},
	}
}

// residenciesAt derives a plausible baseline residency vector for the
// profile at the given utilization: busy time is C0; idle time splits
// between C1, C1E and C6 according to IdleDepth and how long idle
// periods are (longer at low load).
func (p ValidationProfile) residenciesAt(util float64) Residencies {
	var r Residencies
	r[cstate.C0] = util
	idle := 1 - util
	deep := p.IdleDepth * (1 - util) // deeper when less loaded
	r[cstate.C6] = idle * deep * 0.7
	r[cstate.C1E] = idle * deep * 0.3
	r[cstate.C1] = idle - r[cstate.C6] - r[cstate.C1E]
	return r
}

// Validate runs the Sec. 6.3 validation for every profile with the given
// catalog and RNG seed, returning per-workload accuracy (paper: 96.1 % /
// 95.2 % / 94.4 % / 94.9 % for SPECpower / Nginx / Spark / Hive).
func Validate(cat *cstate.Catalog, seed uint64) []ValidationResult {
	vec := VectorFromCatalog(cat)
	vec[cstate.C0] = cat.C0PowerP1
	var out []ValidationResult
	for _, p := range ValidationProfiles() {
		rng := xrand.NewStream(seed, "validate/"+p.Name)
		res := ValidationResult{Workload: p.Name}
		errSum := 0.0
		for _, u := range p.Utilizations {
			r := p.residenciesAt(u)
			est := AvgPower(r, vec)
			// Synthesize the measurement: C0 dynamic power deviates with
			// IPC (systematic, utilization-weighted) plus sampling noise.
			ipcDev := rng.Normal(0, p.DynamicVariation)
			noise := rng.Normal(0, 0.01)
			meas := est + r[cstate.C0]*cat.C0PowerP1*ipcDev + est*noise
			if meas <= 0 {
				meas = est
			}
			res.Samples = append(res.Samples, ValidationSample{
				Utilization: u, Residencies: r, MeasuredW: meas, EstimatedW: est,
			})
			err := est - meas
			if err < 0 {
				err = -err
			}
			errSum += err / meas
		}
		res.AccuracyPercent = 100 * (1 - errSum/float64(len(p.Utilizations)))
		out = append(out, res)
	}
	return out
}
