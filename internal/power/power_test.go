package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cstate"
)

func vec() Vector {
	v := VectorFromCatalog(cstate.Skylake())
	return v
}

func TestAvgPowerBaseline(t *testing.T) {
	var r Residencies
	r[cstate.C0] = 0.2
	r[cstate.C1] = 0.8
	got := AvgPower(r, vec())
	want := 0.2*4.0 + 0.8*1.44
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AvgPower = %v, want %v", got, want)
	}
}

func TestResidencyValidate(t *testing.T) {
	var r Residencies
	r[cstate.C0] = 0.5
	r[cstate.C1] = 0.5
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r[cstate.C1] = 0.6
	if err := r.Validate(); err == nil {
		t.Fatal("sum 1.1 passed validation")
	}
	r[cstate.C1] = -0.1
	if err := r.Validate(); err == nil {
		t.Fatal("negative residency passed validation")
	}
}

// Sec. 2: the motivation numbers — 23%, 41%, 55% for search@50%,
// search@25%, and key-value@20% load.
func TestMotivationSavingsMatchesPaper(t *testing.T) {
	p := vec()
	cases := []struct {
		name          string
		rc0, rc1, rc6 float64
		want          float64
		tol           float64
	}{
		{"search@50%", 0.50, 0.45, 0.05, 23, 1.0},
		{"search@25%", 0.25, 0.55, 0.20, 41, 1.5},
		{"kv@20%", 0.20, 0.80, 0.00, 55, 1.5},
	}
	for _, tc := range cases {
		got := MotivationSavings(tc.rc0, tc.rc1, tc.rc6, p)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s: savings = %.1f%%, want ~%.0f%%", tc.name, got, tc.want)
		}
	}
}

func TestMotivationSavingsZeroBaseline(t *testing.T) {
	if MotivationSavings(0, 0, 0, vec()) != 0 {
		t.Fatal("zero baseline must give zero savings")
	}
}

func TestTurboSavings(t *testing.T) {
	p := vec()
	// A core 100% in C1: savings = (1.44-0.30)/1.44 = 79%.
	got := TurboSavings(1.0, 0, 1.44, p)
	if math.Abs(got-79.2) > 0.5 {
		t.Fatalf("turbo savings = %.1f%%, want ~79%%", got)
	}
	if TurboSavings(1, 0, 0, p) != 0 {
		t.Fatal("zero baseline must give zero")
	}
}

func TestApplyAWMovesResidency(t *testing.T) {
	var r Residencies
	r[cstate.C0] = 0.3
	r[cstate.C1] = 0.5
	r[cstate.C1E] = 0.15
	r[cstate.C6] = 0.05
	out := ApplyAW(AWInput{
		Baseline:                  r,
		TransitionsPerSecond:      10000,
		ExtraTransitionLatencySec: 100e-9,
		FreqScalability:           0.45,
		FreqLossFraction:          0.01,
	})
	if err := out.Residencies.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Residencies[cstate.C1] != 0 || out.Residencies[cstate.C1E] != 0 {
		t.Fatal("C1/C1E residency must be zero under AW")
	}
	if out.Residencies[cstate.C6A] <= 0.45 || out.Residencies[cstate.C6A] >= 0.5 {
		t.Fatalf("C6A residency = %v, want slightly under 0.5", out.Residencies[cstate.C6A])
	}
	if out.Residencies[cstate.C0] <= r[cstate.C0] {
		t.Fatal("C0 residency must grow under AW overheads")
	}
	if out.PerfDegradation <= 0 || out.PerfDegradation > 0.02 {
		t.Fatalf("perf degradation = %v, want ~0.5%%", out.PerfDegradation)
	}
}

func TestApplyAWReducesPower(t *testing.T) {
	var r Residencies
	r[cstate.C0] = 0.2
	r[cstate.C1] = 0.8
	out := ApplyAW(AWInput{Baseline: r, FreqScalability: 0.45, FreqLossFraction: 0.01})
	p := vec()
	base := AvgPower(r, p)
	aw := AvgPower(out.Residencies, p)
	if aw >= base {
		t.Fatalf("AW power %v not below baseline %v", aw, base)
	}
	// Expected ~(0.2*4 + 0.8*0.3) vs (0.2*4 + 0.8*1.44): ~38% saving.
	saving := SavingsPercent(base, aw)
	if saving < 30 || saving > 60 {
		t.Fatalf("saving = %.1f%%, want 30-60%%", saving)
	}
}

func TestApplyAWClampsGrowth(t *testing.T) {
	var r Residencies
	r[cstate.C0] = 0.999
	r[cstate.C1] = 0.001
	out := ApplyAW(AWInput{
		Baseline:                  r,
		TransitionsPerSecond:      1e9, // absurd: growth exceeds idle
		ExtraTransitionLatencySec: 1e-6,
		FreqScalability:           1,
		FreqLossFraction:          0.5,
	})
	if err := out.Residencies.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Residencies[cstate.C6A] < 0 {
		t.Fatal("negative residency after clamp")
	}
}

// Property: ApplyAW preserves the distribution property for any valid
// baseline split.
func TestPropertyApplyAWDistribution(t *testing.T) {
	f := func(a, b, c uint16, trans uint16) bool {
		tot := float64(a) + float64(b) + float64(c) + 1
		var r Residencies
		r[cstate.C0] = float64(a) / tot
		r[cstate.C1] = float64(b) / tot
		r[cstate.C1E] = float64(c) / tot
		r[cstate.C6] = 1 - r[cstate.C0] - r[cstate.C1] - r[cstate.C1E]
		out := ApplyAW(AWInput{
			Baseline:                  r,
			TransitionsPerSecond:      float64(trans),
			ExtraTransitionLatencySec: 100e-9,
			FreqScalability:           0.45,
			FreqLossFraction:          0.01,
		})
		return out.Residencies.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: AW average power never exceeds baseline when overheads are
// zero (pure state substitution).
func TestPropertyAWNeverWorseWithoutOverheads(t *testing.T) {
	p := vec()
	f := func(a, b, c uint16) bool {
		tot := float64(a) + float64(b) + float64(c) + 1
		var r Residencies
		r[cstate.C0] = float64(a) / tot
		r[cstate.C1] = float64(b) / tot
		r[cstate.C1E] = float64(c) / tot
		r[cstate.C6] = 1 - r[cstate.C0] - r[cstate.C1] - r[cstate.C1E]
		out := ApplyAW(AWInput{Baseline: r})
		return AvgPower(out.Residencies, p) <= AvgPower(r, p)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLeakageScale(t *testing.T) {
	if got := LeakageScale(0.7, 1.0); got != 0.7 {
		t.Fatalf("LeakageScale = %v", got)
	}
}

func TestCapacityScale(t *testing.T) {
	if got := CapacityScale(1100, 2500); math.Abs(got-0.44) > 1e-12 {
		t.Fatalf("CapacityScale = %v", got)
	}
	if CapacityScale(1, 0) != 0 {
		t.Fatal("zero reference must give 0")
	}
}

func TestLVREfficiency(t *testing.T) {
	if e := LVREfficiency(0.5, 1.0); e != 0.5 {
		t.Fatalf("efficiency = %v", e)
	}
	if e := LVREfficiency(1.2, 1.0); e != 1 {
		t.Fatal("efficiency must clamp at 1")
	}
	if LVREfficiency(1, 0) != 0 || LVREfficiency(0, 1) != 0 {
		t.Fatal("degenerate voltages must give 0")
	}
}

func TestSleepLeakageAtVoltage(t *testing.T) {
	// Lowering input from 1.0 V to 0.7 V with 0.4 V retention output:
	// drop goes from 0.6 to 0.3 -> leakage halves.
	got := SleepLeakageAtVoltage(0.055, 0.4, 1.0, 0.7)
	if math.Abs(got-0.0275) > 1e-9 {
		t.Fatalf("scaled leakage = %v", got)
	}
	if SleepLeakageAtVoltage(0.05, 1.0, 0.5, 0.7) != 0.05 {
		t.Fatal("vRef <= vRet must return input")
	}
}

func TestValidationAccuracy(t *testing.T) {
	results := Validate(cstate.Skylake(), 2022)
	if len(results) != 4 {
		t.Fatalf("got %d workloads", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Workload] = true
		// Paper: 94.4% - 96.1%. Allow a looser band for the synthetic
		// measurement substitution, but demand realistic accuracy.
		if r.AccuracyPercent < 90 || r.AccuracyPercent > 99.9 {
			t.Errorf("%s accuracy = %.1f%%, want ~95%%", r.Workload, r.AccuracyPercent)
		}
		if len(r.Samples) == 0 {
			t.Errorf("%s has no samples", r.Workload)
		}
		for _, s := range r.Samples {
			if err := s.Residencies.Validate(); err != nil {
				t.Errorf("%s u=%v: %v", r.Workload, s.Utilization, err)
			}
			if s.EstimatedW <= 0 || s.MeasuredW <= 0 {
				t.Errorf("%s u=%v: nonpositive power", r.Workload, s.Utilization)
			}
		}
	}
	for _, want := range []string{"SPECpower", "Nginx", "Spark", "Hive"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
}

func TestValidationDeterministic(t *testing.T) {
	a := Validate(cstate.Skylake(), 7)
	b := Validate(cstate.Skylake(), 7)
	for i := range a {
		if a[i].AccuracyPercent != b[i].AccuracyPercent {
			t.Fatal("validation not deterministic for same seed")
		}
	}
}

func TestSavingsPercent(t *testing.T) {
	if SavingsPercent(2, 1) != 50 {
		t.Fatal("50% case wrong")
	}
	if SavingsPercent(0, 1) != 0 {
		t.Fatal("zero base must give 0")
	}
}
