// Package runner is the shared sweep executor behind every experiment:
// it runs server simulations with bounded parallelism and memoizes
// results, so overlapping sweeps (Fig. 8, Fig. 10, Table 5 and the
// proportionality study all simulate the Baseline Memcached curve) cost
// one simulation instead of four.
//
// Memoization is sound because a simulation is a pure function of its
// Config: all randomness derives from Config.Seed, and Key only reports a
// config cacheable when every behavioral input is captured by value
// (profiles backed by live mutable state, custom catalogs, and trace
// hooks are executed uncached). Cached Results are shared between
// callers, so experiments must treat them as read-only — which they do,
// being pure renderers.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/turbo"
)

// cacheShards is the number of independently locked cache segments. The
// memoization map doubles as the single-flight registry, so under
// parallel fleet fan-out every node lookup used to serialize on one
// mutex; FNV-sharding the key space makes concurrent lookups of
// different configs contention-free. A power of two keeps the shard
// pick a mask instead of a modulo.
const cacheShards = 16

// cacheShard is one lock + map segment.
type cacheShard struct {
	mu    sync.Mutex
	cache map[string]*entry
	// Pad the 16-byte mutex+map pair to a full 64-byte cache line so
	// per-shard mutexes do not false-share under fan-out.
	_ [48]byte
}

// Runner executes simulations with bounded parallelism and memoization.
// The zero value is not usable; construct with New.
type Runner struct {
	sem chan struct{}

	shards [cacheShards]cacheShard

	hits, misses atomic.Uint64
}

type entry struct {
	once sync.Once
	res  server.Result
	err  error
}

// New returns a Runner bounding concurrent simulations to parallelism
// (GOMAXPROCS when <= 0).
func New(parallelism int) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	r := &Runner{sem: make(chan struct{}, parallelism)}
	for i := range r.shards {
		r.shards[i].cache = make(map[string]*entry)
	}
	return r
}

// shardOf maps a memoization key to its cache segment (FNV-1a).
func (r *Runner) shardOf(key string) *cacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &r.shards[h&(cacheShards-1)]
}

var defaultRunner = New(0)

// Default returns the process-wide shared Runner. All experiments route
// through it, so an `awsim` invocation regenerating several figures
// reuses every simulation they have in common.
func Default() *Runner { return defaultRunner }

// keyData mirrors every behavioral Config field that is representable by
// value; Profile is replaced by its fingerprint. Catalog and TraceHook
// are deliberately absent — configs carrying them are not cacheable.
type keyData struct {
	Cores                 int
	Platform              governor.Config
	GovernorPolicy        string
	Profile               string
	RatePerSec            float64
	Duration, Warmup      sim.Time
	Seed                  uint64
	Dispatch              string
	PackQueueCap          int
	LoadGen               string
	BurstOn, BurstOff     sim.Time
	UncoreW               float64
	Freq                  turbo.FreqPlan
	TurboSustainedW       float64
	TurboCapacityJ        float64
	FixedFreqHz           float64
	AWFreqLoss            float64
	SnoopRate             float64
	SnoopService          sim.Time
	NoisePeriod           sim.Time
	NoiseDemand           sim.Time
	PkgIdle               bool
	PkgEntryDelay         sim.Time
	PkgUncoreLowW         float64
	ClosedLoopConnections int
	ThinkTime             sim.Time
	Schedule              string
}

// Key returns the memoization key for cfg and whether cfg is cacheable.
// Non-cacheable configs (custom catalog, trace hook, or a profile whose
// behavior is not captured by value) always execute. The key is computed
// on the defaulted config, so zero-value and explicitly-default knobs
// (Dispatch "" vs "round-robin", PackQueueCap 0 vs 4, ...) share one
// cache slot.
func Key(cfg server.Config) (string, bool) {
	if cfg.Catalog != nil || cfg.TraceHook != nil {
		return "", false
	}
	pf, ok := cfg.Profile.Fingerprint()
	if !ok {
		return "", false
	}
	cfg = cfg.Defaults() // normalize; the injected Catalog is not keyed
	var sched string
	if cfg.Schedule != nil {
		// A schedule's fingerprint fully determines its rate function, so
		// scheduled runs stay memoizable.
		sched = cfg.Schedule.Fingerprint()
	}
	return fmt.Sprintf("%+v", keyData{
		Cores:                 cfg.Cores,
		Platform:              cfg.Platform,
		GovernorPolicy:        cfg.GovernorPolicy,
		Profile:               pf,
		RatePerSec:            cfg.RatePerSec,
		Duration:              cfg.Duration,
		Warmup:                cfg.Warmup,
		Seed:                  cfg.Seed,
		Dispatch:              cfg.Dispatch,
		PackQueueCap:          cfg.PackQueueCap,
		LoadGen:               cfg.LoadGen,
		BurstOn:               cfg.BurstOnTime,
		BurstOff:              cfg.BurstOffTime,
		UncoreW:               cfg.UncoreW,
		Freq:                  cfg.Freq,
		TurboSustainedW:       cfg.TurboSustainedW,
		TurboCapacityJ:        cfg.TurboCapacityJ,
		FixedFreqHz:           cfg.FixedFreqHz,
		AWFreqLoss:            cfg.AWFreqLossFraction,
		SnoopRate:             cfg.SnoopRatePerSec,
		SnoopService:          cfg.SnoopServiceTime,
		NoisePeriod:           cfg.OSNoisePeriod,
		NoiseDemand:           cfg.OSNoiseDemand,
		PkgIdle:               cfg.PkgIdleEnabled,
		PkgEntryDelay:         cfg.PkgEntryDelay,
		PkgUncoreLowW:         cfg.PkgUncoreLowW,
		ClosedLoopConnections: cfg.ClosedLoopConnections,
		ThinkTime:             cfg.ThinkTime,
		Schedule:              sched,
	}), true
}

// Run executes (or returns the memoized result of) one simulation.
// Identical configs requested concurrently run once; the duplicates
// block on the first execution. The returned Result may be shared with
// other callers and must be treated as read-only.
func (r *Runner) Run(cfg server.Config) (server.Result, error) {
	key, cacheable := Key(cfg)
	if !cacheable {
		r.misses.Add(1)
		return server.RunConfig(cfg)
	}
	s := r.shardOf(key)
	s.mu.Lock()
	e, hit := s.cache[key]
	if !hit {
		e = &entry{}
		s.cache[key] = e
	}
	s.mu.Unlock()
	if hit {
		r.hits.Add(1)
	} else {
		r.misses.Add(1)
	}
	e.once.Do(func() { e.res, e.err = server.RunConfig(cfg) })
	return e.res, e.err
}

// Each runs fn(0..n-1) with bounded parallelism and returns the first
// error by index. It replaces the per-experiment ad-hoc parallelMap
// helpers; each simulation is an isolated Sim with its own RNG streams,
// so sweep points parallelize safely. fn must not call Each on the same
// Runner (the parallelism bound would deadlock); calling Run is fine.
func (r *Runner) Each(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		r.sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-r.sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Sweep runs one simulation per config and returns results in order.
func (r *Runner) Sweep(cfgs []server.Config) ([]server.Result, error) {
	out := make([]server.Result, len(cfgs))
	err := r.Each(len(cfgs), func(i int) error {
		res, err := r.Run(cfgs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats reports cache hits and misses (uncacheable runs count as misses).
func (r *Runner) Stats() (hits, misses uint64) {
	return r.hits.Load(), r.misses.Load()
}
