// Package runner is the shared sweep executor behind every experiment:
// it runs server simulations with bounded parallelism and memoizes
// results, so overlapping sweeps (Fig. 8, Fig. 10, Table 5 and the
// proportionality study all simulate the Baseline Memcached curve) cost
// one simulation instead of four.
//
// Memoization is sound because a simulation is a pure function of its
// Config: all randomness derives from Config.Seed, and Key only reports a
// config cacheable when every behavioral input is captured by value
// (profiles backed by live mutable state, custom catalogs, and trace
// hooks are executed uncached). Cached Results are shared between
// callers, so experiments must treat them as read-only — which they do,
// being pure renderers.
package runner

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/turbo"
)

// cacheShards is the number of independently locked cache segments. The
// memoization map doubles as the single-flight registry, so under
// parallel fleet fan-out every node lookup used to serialize on one
// mutex; FNV-sharding the key space makes concurrent lookups of
// different configs contention-free. A power of two keeps the shard
// pick a mask instead of a modulo.
const cacheShards = 16

// cacheShard is one lock + map segment of a shardedCache.
type cacheShard[V any] struct {
	mu    sync.Mutex
	cache map[string]*flight[V]
	// Pad the 16-byte mutex+map pair to a full 64-byte cache line so
	// per-shard mutexes do not false-share under fan-out.
	_ [48]byte
}

// flight is one single-flight cache slot: the first requester executes,
// duplicates block on the Once and share the outcome.
type flight[V any] struct {
	once sync.Once
	val  V
	err  error
}

// shardedCache is the memoization + single-flight machinery shared by
// Run (server.Result values) and RunTimeline ([]server.IntervalResult
// values): an FNV-sharded map of Once-guarded slots, so concurrent
// lookups of different keys never contend on one mutex and identical
// keys execute exactly once.
type shardedCache[V any] struct {
	shards [cacheShards]cacheShard[V]
}

func newShardedCache[V any]() *shardedCache[V] {
	c := &shardedCache[V]{}
	for i := range c.shards {
		c.shards[i].cache = make(map[string]*flight[V])
	}
	return c
}

// do returns the memoized value for key, executing fn exactly once per
// key; hit reports whether a slot already existed.
func (c *shardedCache[V]) do(key string, fn func() (V, error)) (v V, err error, hit bool) {
	s := &c.shards[shardIndex(key)]
	s.mu.Lock()
	e, hit := s.cache[key]
	if !hit {
		e = &flight[V]{}
		s.cache[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err, hit
}

// Runner executes simulations with bounded parallelism and memoization.
// The zero value is not usable; construct with New.
type Runner struct {
	sem chan struct{}

	cache  *shardedCache[server.Result]
	tcache *shardedCache[[]server.IntervalResult]

	hits, misses atomic.Uint64

	// Class-dedup accounting, fed by the cluster layer's class-collapsed
	// scenario path (see NoteClassDedup): fleet node timelines requested,
	// equivalence classes actually simulated, and extra seeded replica
	// timelines run for error bars.
	classNodes    atomic.Uint64
	classClasses  atomic.Uint64
	classReplicas atomic.Uint64
}

// note counts one cache outcome into Stats.
func (r *Runner) note(hit bool) {
	if hit {
		r.hits.Add(1)
	} else {
		r.misses.Add(1)
	}
}

// New returns a Runner bounding concurrent simulations to parallelism
// (GOMAXPROCS when <= 0).
func New(parallelism int) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		sem:    make(chan struct{}, parallelism),
		cache:  newShardedCache[server.Result](),
		tcache: newShardedCache[[]server.IntervalResult](),
	}
}

// shardIndex maps a memoization key to its cache-segment index (FNV-1a).
func shardIndex(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h & (cacheShards - 1)
}

var defaultRunner = New(0)

// Default returns the process-wide shared Runner. All experiments route
// through it, so an `awsim` invocation regenerating several figures
// reuses every simulation they have in common.
func Default() *Runner { return defaultRunner }

// keyData mirrors every behavioral Config field that is representable by
// value; Profile is replaced by its fingerprint. Catalog and TraceHook
// are deliberately absent — configs carrying them are not cacheable.
type keyData struct {
	Cores                 int
	Platform              governor.Config
	GovernorPolicy        string
	Profile               string
	RatePerSec            float64
	Duration, Warmup      sim.Time
	Seed                  uint64
	Dispatch              string
	PackQueueCap          int
	LoadGen               string
	BurstOn, BurstOff     sim.Time
	UncoreW               float64
	Freq                  turbo.FreqPlan
	TurboSustainedW       float64
	TurboCapacityJ        float64
	FixedFreqHz           float64
	AWFreqLoss            float64
	SnoopRate             float64
	SnoopService          sim.Time
	NoisePeriod           sim.Time
	NoiseDemand           sim.Time
	PkgIdle               bool
	PkgEntryDelay         sim.Time
	PkgUncoreLowW         float64
	ClosedLoopConnections int
	ThinkTime             sim.Time
	Schedule              string
}

// Key returns the memoization key for cfg and whether cfg is cacheable.
// Non-cacheable configs (custom catalog, trace hook, or a profile whose
// behavior is not captured by value) always execute. The key is computed
// on the defaulted config, so zero-value and explicitly-default knobs
// (Dispatch "" vs "round-robin", PackQueueCap 0 vs 4, ...) share one
// cache slot.
func Key(cfg server.Config) (string, bool) {
	if cfg.Catalog != nil || cfg.TraceHook != nil {
		return "", false
	}
	pf, ok := cfg.Profile.Fingerprint()
	if !ok {
		return "", false
	}
	cfg = cfg.Defaults() // normalize; the injected Catalog is not keyed
	var sched string
	if cfg.Schedule != nil {
		// A schedule's fingerprint fully determines its rate function, so
		// scheduled runs stay memoizable.
		sched = cfg.Schedule.Fingerprint()
	}
	return fmt.Sprintf("%+v", keyData{
		Cores:                 cfg.Cores,
		Platform:              cfg.Platform,
		GovernorPolicy:        cfg.GovernorPolicy,
		Profile:               pf,
		RatePerSec:            cfg.RatePerSec,
		Duration:              cfg.Duration,
		Warmup:                cfg.Warmup,
		Seed:                  cfg.Seed,
		Dispatch:              cfg.Dispatch,
		PackQueueCap:          cfg.PackQueueCap,
		LoadGen:               cfg.LoadGen,
		BurstOn:               cfg.BurstOnTime,
		BurstOff:              cfg.BurstOffTime,
		UncoreW:               cfg.UncoreW,
		Freq:                  cfg.Freq,
		TurboSustainedW:       cfg.TurboSustainedW,
		TurboCapacityJ:        cfg.TurboCapacityJ,
		FixedFreqHz:           cfg.FixedFreqHz,
		AWFreqLoss:            cfg.AWFreqLossFraction,
		SnoopRate:             cfg.SnoopRatePerSec,
		SnoopService:          cfg.SnoopServiceTime,
		NoisePeriod:           cfg.OSNoisePeriod,
		NoiseDemand:           cfg.OSNoiseDemand,
		PkgIdle:               cfg.PkgIdleEnabled,
		PkgEntryDelay:         cfg.PkgEntryDelay,
		PkgUncoreLowW:         cfg.PkgUncoreLowW,
		ClosedLoopConnections: cfg.ClosedLoopConnections,
		ThinkTime:             cfg.ThinkTime,
		Schedule:              sched,
	}), true
}

// Run executes (or returns the memoized result of) one simulation.
// Identical configs requested concurrently run once; the duplicates
// block on the first execution. The returned Result may be shared with
// other callers and must be treated as read-only.
func (r *Runner) Run(cfg server.Config) (server.Result, error) {
	key, cacheable := Key(cfg)
	if !cacheable {
		r.misses.Add(1)
		return server.RunConfig(cfg)
	}
	res, err, hit := r.cache.do(key, func() (server.Result, error) {
		return server.RunConfig(cfg)
	})
	r.note(hit)
	return res, err
}

// Interval is one window of a node's load timeline: Window of simulated
// time at a constant offered Rate (QPS), optionally under a fault
// (crash, straggler inflation, or thermal throttle — see Fault).
type Interval struct {
	Window sim.Time
	Rate   float64
	Fault  Fault
}

// TimelineSpec describes one node's entire scenario timeline: the base
// node configuration (its RatePerSec, Schedule and Duration are
// ignored; Warmup is paid once) run through a resumable server.Instance
// across the listed intervals, parking on zero-rate intervals when Park
// is set. The whole timeline is the memoization unit — see RunTimeline.
type TimelineSpec struct {
	Node      server.Config
	Park      bool
	Intervals []Interval
}

// TimelineKey extends the node's simulation key with the park flag and
// the exact interval list, and reports whether the spec is cacheable. A
// timeline is a pure function of these: all randomness still derives
// from Node.Seed, and the interval windows and rates fully determine
// the piecewise-constant offered load. Beyond memoization, the key is
// the cluster layer's timeline-equivalence-class fingerprint: two nodes
// with equal keys are bit-identical simulations, so one representative
// run can stand for all of them.
func TimelineKey(spec TimelineSpec) (string, bool) {
	base, ok := Key(spec.Node)
	if !ok {
		return "", false
	}
	var b strings.Builder
	b.WriteString(base)
	fmt.Fprintf(&b, "|timeline:park=%v", spec.Park)
	for _, iv := range spec.Intervals {
		fmt.Fprintf(&b, "|%d@%g", iv.Window, iv.Rate)
		if !iv.Fault.healthy() {
			// Fault annotations extend the key only when present, so a
			// healthy timeline's key is byte-identical to its pre-fault
			// form — and a faulted node can never share an equivalence
			// class with a healthy one.
			fmt.Fprintf(&b, "!d=%v,i=%g,t=%v,c=%g",
				iv.Fault.Down, iv.Fault.Inflate, iv.Fault.Throttle, iv.Fault.TurboCap)
		}
	}
	return b.String(), true
}

// RunTimeline executes (or returns the memoized results of) one node's
// full interval timeline on a resumable server.Instance: one warmup,
// then every interval in sequence with engine, C-state, ring and RNG
// state carried across the boundaries. Identical specs requested
// concurrently run once (single-flight); cache hits and misses count
// into Stats alongside Run's. The returned slice is shared between
// callers and must be treated as read-only.
func (r *Runner) RunTimeline(spec TimelineSpec) ([]server.IntervalResult, error) {
	if len(spec.Intervals) == 0 {
		return nil, fmt.Errorf("runner: empty timeline")
	}
	key, cacheable := TimelineKey(spec)
	if !cacheable {
		r.misses.Add(1)
		return runTimeline(spec)
	}
	res, err, hit := r.tcache.do(key, func() ([]server.IntervalResult, error) {
		return runTimeline(spec)
	})
	r.note(hit)
	return res, err
}

// runTimeline is the uncached timeline execution: a TimelineCursor
// stepped through every interval, so crash/rebuild and fault
// installation behave identically here and in the closed-loop engine.
func runTimeline(spec TimelineSpec) ([]server.IntervalResult, error) {
	tc, err := NewCursor(spec.Node, spec.Park)
	if err != nil {
		return nil, err
	}
	out := make([]server.IntervalResult, len(spec.Intervals))
	for i, iv := range spec.Intervals {
		out[i], err = tc.Step(iv)
		if err != nil {
			return nil, fmt.Errorf("runner: interval %d: %w", i, err)
		}
	}
	return out, nil
}

// Each runs fn(0..n-1) with bounded parallelism. A failure
// short-circuits the fan-out: tasks not yet started are skipped once
// any task has returned an error, so a failing node does not leave a
// fleet of doomed simulations running to completion behind it.
// (Already-running tasks finish; simulations have no preemption
// points.) On failure Each returns the lowest-indexed error among the
// tasks that actually ran — with several near-simultaneous failures,
// which tasks ran (and hence which error surfaces) is
// scheduling-dependent; only the success/failure outcome is
// deterministic. It replaces the per-experiment ad-hoc parallelMap
// helpers; each simulation is an isolated Sim with its own RNG
// streams, so sweep points parallelize safely. fn must not call Each
// on the same Runner (the parallelism bound would deadlock); calling
// Run or RunTimeline is fine.
func (r *Runner) Each(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var wg sync.WaitGroup
	var failed atomic.Bool
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		wg.Add(1)
		r.sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-r.sem }()
			// Re-check after the (possibly long) semaphore wait.
			if failed.Load() {
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Sweep runs one simulation per config and returns results in order.
func (r *Runner) Sweep(cfgs []server.Config) ([]server.Result, error) {
	out := make([]server.Result, len(cfgs))
	err := r.Each(len(cfgs), func(i int) error {
		res, err := r.Run(cfgs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats reports cache hits and misses (uncacheable runs count as misses).
func (r *Runner) Stats() (hits, misses uint64) {
	return r.hits.Load(), r.misses.Load()
}

// NoteClassDedup records one class-collapsed fleet execution: nodes
// timelines were requested, collapsed into classes equivalence classes,
// plus replicaRuns extra seeded replica timelines. The cluster layer
// calls this once per scenario; ClassStats accumulates across calls so
// sweeps report their whole-process dedup rate like cache hits/misses.
func (r *Runner) NoteClassDedup(nodes, classes, replicaRuns int) {
	r.classNodes.Add(uint64(nodes))
	r.classClasses.Add(uint64(classes))
	r.classReplicas.Add(uint64(replicaRuns))
}

// ClassStats reports the accumulated class-dedup counters: node
// timelines requested, equivalence classes simulated (nodes - classes
// timelines were deduplicated away), and seeded replica timelines run.
func (r *Runner) ClassStats() (nodes, classes, replicaRuns uint64) {
	return r.classNodes.Load(), r.classClasses.Load(), r.classReplicas.Load()
}
