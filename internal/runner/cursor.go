package runner

import (
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Fault is the per-interval fault annotation on a node timeline. The
// zero value means "healthy" and keeps the timeline byte-identical —
// in key and in execution — to one that predates fault injection.
type Fault struct {
	// Down crashes the node for the interval: its instance is discarded
	// (C-state, ring, RNG and collector warm state are lost) and nothing
	// is simulated until the next up interval rebuilds it cold.
	Down bool
	// Inflate is a straggler service-time multiplier applied to every
	// request dispatched during the interval; values <= 1 mean healthy.
	Inflate float64
	// Throttle caps the turbo ceiling for the interval: boosted slices
	// run at base + TurboCap·(turbo − base) instead of full turbo.
	Throttle bool
	// TurboCap is the throttled ceiling fraction in [0, 1); only
	// meaningful when Throttle is set (0 pins boost to base frequency).
	TurboCap float64
}

// healthy reports whether the annotation is the zero "no fault" value.
func (f Fault) healthy() bool { return f == Fault{} }

// TimelineCursor steps one node's timeline interval by interval with
// fault handling: crash intervals discard the live instance, the next
// up interval rebuilds it cold under a restart-remixed seed, and
// straggler/throttle annotations are installed on the instance before
// each window. It is the shared execution engine behind runTimeline
// (whole-timeline memoized runs) and the cluster layer's closed-loop
// epoch stepping, so both paths crash and recover identically.
//
// Like the Instance it wraps, a cursor is single-goroutine.
type TimelineCursor struct {
	node server.Config
	park bool
	ins  *server.Instance
	// index numbers results across crashes: a rebuilt instance restarts
	// its own interval count at zero, but the timeline's numbering must
	// stay monotonic.
	index    int
	down     bool
	restarts int
}

// NewCursor builds the cursor and its initial instance. Construction
// errors are exactly NewInstance's, so fault-free callers see the same
// validation they always did.
func NewCursor(node server.Config, park bool) (*TimelineCursor, error) {
	ins, err := server.NewInstance(node, park)
	if err != nil {
		return nil, err
	}
	return &TimelineCursor{node: node, park: park, ins: ins}, nil
}

// Step advances the timeline by one interval. A Down interval returns a
// synthetic result (Down set, nothing simulated); the first up interval
// after a crash rebuilds the instance cold — fresh everything, seed
// remixed through xrand.RestartSeed so the rebuilt node does not replay
// its predecessor's random history — and marks its result Restarted.
func (tc *TimelineCursor) Step(iv Interval) (server.IntervalResult, error) {
	if iv.Fault.Down {
		tc.ins = nil // crash: warm state is gone
		tc.down = true
		res := server.IntervalResult{Index: tc.index, RateQPS: iv.Rate, Down: true}
		tc.index++
		return res, nil
	}
	restarted := false
	if tc.ins == nil {
		tc.restarts++
		cfg := tc.node
		cfg.Seed = xrand.RestartSeed(tc.node.Seed, tc.restarts)
		// Warmup 0 means "default 50ms" after Defaults; a rebuilt node
		// starts genuinely cold, so ask for the minimum representable
		// warmup instead.
		cfg.Warmup = sim.Time(1)
		ins, err := server.NewInstance(cfg, tc.park)
		if err != nil {
			return server.IntervalResult{}, err
		}
		tc.ins = ins
		restarted = tc.down
		tc.down = false
	}
	tc.ins.SetServiceInflation(iv.Fault.Inflate)
	tc.ins.SetTurboCap(iv.Fault.Throttle, iv.Fault.TurboCap)
	res, err := tc.ins.RunInterval(iv.Window, iv.Rate)
	if err != nil {
		return res, err
	}
	res.Index = tc.index
	res.Restarted = restarted
	tc.index++
	return res, nil
}

// Instance returns the live warm instance, nil while crashed. The
// cluster snapshot layer serializes it for fleet checkpoint
// verification; callers must not run intervals on it directly.
func (tc *TimelineCursor) Instance() *server.Instance { return tc.ins }

// Down reports whether the node is currently crashed.
func (tc *TimelineCursor) Down() bool { return tc.down }

// Restarts returns how many times the node has been rebuilt.
func (tc *TimelineCursor) Restarts() int { return tc.restarts }

// QueueDepth is the live instance's instantaneous backlog; a crashed
// node has no queue.
func (tc *TimelineCursor) QueueDepth() int {
	if tc.ins == nil {
		return 0
	}
	return tc.ins.QueueDepth()
}

// Parked reports whether the live instance is parked (false while
// crashed — a dark node is down, not drained).
func (tc *TimelineCursor) Parked() bool {
	return tc.ins != nil && tc.ins.Parked()
}
