package runner

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func quickCfg() server.Config {
	return server.Config{
		Platform:   governor.Baseline,
		Profile:    workload.Memcached(),
		RatePerSec: 100e3,
		Duration:   40 * sim.Millisecond,
		Warmup:     5 * sim.Millisecond,
		Seed:       7,
	}
}

func TestKeyCacheability(t *testing.T) {
	cfg := quickCfg()
	k1, ok := Key(cfg)
	if !ok {
		t.Fatal("plain config not cacheable")
	}
	k2, _ := Key(cfg)
	if k1 != k2 {
		t.Fatal("key not deterministic")
	}
	other := cfg
	other.Seed = 8
	k3, _ := Key(other)
	if k3 == k1 {
		t.Fatal("different seeds share a key")
	}
	other = cfg
	other.Dispatch = server.DispatchPacked
	if k, _ := Key(other); k == k1 {
		t.Fatal("different dispatch policies share a key")
	}
	// Zero-value and explicitly-default knobs normalize to one key, so
	// experiments that spell out the default still hit the shared cache.
	explicit := cfg
	explicit.Dispatch = server.DispatchRoundRobin
	explicit.LoadGen = server.LoadOpenLoop
	if k, _ := Key(explicit); k != k1 {
		t.Fatal("explicit defaults keyed differently from zero values")
	}

	hooked := cfg
	hooked.TraceHook = func(int, sim.Time, cstate.ID) {}
	if _, ok := Key(hooked); ok {
		t.Fatal("trace-hooked config reported cacheable")
	}
	cat := cfg
	cat.Catalog = cstate.Skylake()
	if _, ok := Key(cat); ok {
		t.Fatal("custom-catalog config reported cacheable")
	}
	etc, err := workload.MemcachedETC(1)
	if err != nil {
		t.Fatal(err)
	}
	live := cfg
	live.Profile = etc
	if _, ok := Key(live); ok {
		t.Fatal("live-kvstore profile reported cacheable")
	}
}

func TestRunMemoizes(t *testing.T) {
	r := New(2)
	a, err := r.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// A cache hit returns the same Result value, sharing the PerCore
	// backing array — pointer equality proves no second simulation ran.
	if &a.PerCore[0] != &b.PerCore[0] {
		t.Fatal("second identical run was not served from cache")
	}
	if hits, misses := r.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	other := quickCfg()
	other.RatePerSec = 200e3
	c, err := r.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if c.CompletedPerSec == a.CompletedPerSec {
		t.Fatal("different rate returned cached result")
	}
}

func TestConcurrentIdenticalRunsSingleFlight(t *testing.T) {
	r := New(4)
	results := make([]server.Result, 8)
	err := r.Each(len(results), func(i int) error {
		res, err := r.Run(quickCfg())
		results[i] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if &results[i].PerCore[0] != &results[0].PerCore[0] {
			t.Fatal("concurrent identical runs were not single-flighted")
		}
	}
	if hits, misses := r.Stats(); hits+misses != 8 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 7/1", hits, misses)
	}
}

func TestEachBoundsParallelismAndPropagatesErrors(t *testing.T) {
	r := New(3)
	var inFlight, peak atomic.Int64
	err := r.Each(16, func(i int) error {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		if i == 11 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("error not propagated: %v", err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("parallelism bound violated: peak %d > 3", p)
	}
}

func TestSweepPreservesOrder(t *testing.T) {
	r := New(4)
	rates := []float64{10e3, 100e3, 300e3}
	cfgs := make([]server.Config, len(rates))
	for i, rate := range rates {
		cfgs[i] = quickCfg()
		cfgs[i].RatePerSec = rate
	}
	out, err := r.Sweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rates) {
		t.Fatalf("got %d results, want %d", len(out), len(rates))
	}
	for i, res := range out {
		if res.Config.RatePerSec != rates[i] {
			t.Fatalf("result %d is for rate %v, want %v", i, res.Config.RatePerSec, rates[i])
		}
	}
}

func TestUncacheableRunsExecute(t *testing.T) {
	r := New(2)
	var traced atomic.Int64
	cfg := quickCfg()
	cfg.TraceHook = func(int, sim.Time, cstate.ID) { traced.Add(1) }
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	first := traced.Load()
	if first == 0 {
		t.Fatal("trace hook never fired")
	}
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if traced.Load() == first {
		t.Fatal("uncacheable config was cached")
	}
}
