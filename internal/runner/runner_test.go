package runner

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func quickCfg() server.Config {
	return server.Config{
		Platform:   governor.Baseline,
		Profile:    workload.Memcached(),
		RatePerSec: 100e3,
		Duration:   40 * sim.Millisecond,
		Warmup:     5 * sim.Millisecond,
		Seed:       7,
	}
}

func TestKeyCacheability(t *testing.T) {
	cfg := quickCfg()
	k1, ok := Key(cfg)
	if !ok {
		t.Fatal("plain config not cacheable")
	}
	k2, _ := Key(cfg)
	if k1 != k2 {
		t.Fatal("key not deterministic")
	}
	other := cfg
	other.Seed = 8
	k3, _ := Key(other)
	if k3 == k1 {
		t.Fatal("different seeds share a key")
	}
	other = cfg
	other.Dispatch = server.DispatchPacked
	if k, _ := Key(other); k == k1 {
		t.Fatal("different dispatch policies share a key")
	}
	// Zero-value and explicitly-default knobs normalize to one key, so
	// experiments that spell out the default still hit the shared cache.
	explicit := cfg
	explicit.Dispatch = server.DispatchRoundRobin
	explicit.LoadGen = server.LoadOpenLoop
	if k, _ := Key(explicit); k != k1 {
		t.Fatal("explicit defaults keyed differently from zero values")
	}

	hooked := cfg
	hooked.TraceHook = func(int, sim.Time, cstate.ID) {}
	if _, ok := Key(hooked); ok {
		t.Fatal("trace-hooked config reported cacheable")
	}
	cat := cfg
	cat.Catalog = cstate.Skylake()
	if _, ok := Key(cat); ok {
		t.Fatal("custom-catalog config reported cacheable")
	}
	etc, err := workload.MemcachedETC(1)
	if err != nil {
		t.Fatal(err)
	}
	live := cfg
	live.Profile = etc
	if _, ok := Key(live); ok {
		t.Fatal("live-kvstore profile reported cacheable")
	}
}

func TestRunMemoizes(t *testing.T) {
	r := New(2)
	a, err := r.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// A cache hit returns the same Result value, sharing the PerCore
	// backing array — pointer equality proves no second simulation ran.
	if &a.PerCore[0] != &b.PerCore[0] {
		t.Fatal("second identical run was not served from cache")
	}
	if hits, misses := r.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	other := quickCfg()
	other.RatePerSec = 200e3
	c, err := r.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if c.CompletedPerSec == a.CompletedPerSec {
		t.Fatal("different rate returned cached result")
	}
}

func TestConcurrentIdenticalRunsSingleFlight(t *testing.T) {
	r := New(4)
	results := make([]server.Result, 8)
	err := r.Each(len(results), func(i int) error {
		res, err := r.Run(quickCfg())
		results[i] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if &results[i].PerCore[0] != &results[0].PerCore[0] {
			t.Fatal("concurrent identical runs were not single-flighted")
		}
	}
	if hits, misses := r.Stats(); hits+misses != 8 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 7/1", hits, misses)
	}
}

func TestEachBoundsParallelismAndPropagatesErrors(t *testing.T) {
	r := New(3)
	var inFlight, peak atomic.Int64
	err := r.Each(16, func(i int) error {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		if i == 11 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("error not propagated: %v", err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("parallelism bound violated: peak %d > 3", p)
	}
}

func TestSweepPreservesOrder(t *testing.T) {
	r := New(4)
	rates := []float64{10e3, 100e3, 300e3}
	cfgs := make([]server.Config, len(rates))
	for i, rate := range rates {
		cfgs[i] = quickCfg()
		cfgs[i].RatePerSec = rate
	}
	out, err := r.Sweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rates) {
		t.Fatalf("got %d results, want %d", len(out), len(rates))
	}
	for i, res := range out {
		if res.Config.RatePerSec != rates[i] {
			t.Fatalf("result %d is for rate %v, want %v", i, res.Config.RatePerSec, rates[i])
		}
	}
}

func TestUncacheableRunsExecute(t *testing.T) {
	r := New(2)
	var traced atomic.Int64
	cfg := quickCfg()
	cfg.TraceHook = func(int, sim.Time, cstate.ID) { traced.Add(1) }
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	first := traced.Load()
	if first == 0 {
		t.Fatal("trace hook never fired")
	}
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if traced.Load() == first {
		t.Fatal("uncacheable config was cached")
	}
}

// timelineSpec returns a small two-interval timeline over quickCfg.
func timelineSpec() TimelineSpec {
	return TimelineSpec{
		Node: quickCfg(),
		Park: true,
		Intervals: []Interval{
			{Window: 10 * sim.Millisecond, Rate: 100e3},
			{Window: 10 * sim.Millisecond, Rate: 0},
			{Window: 10 * sim.Millisecond, Rate: 200e3},
		},
	}
}

// TestRunTimelineMemoizes pins timeline memoization: identical specs
// share one execution (and one Stats hit), differing intervals or park
// flags do not.
func TestRunTimelineMemoizes(t *testing.T) {
	r := New(2)
	a, err := r.RunTimeline(timelineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("timeline returned %d intervals, want 3", len(a))
	}
	b, err := r.RunTimeline(timelineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("identical timeline specs did not share one memoized result")
	}
	hits, misses := r.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// A different interval list is a different timeline.
	other := timelineSpec()
	other.Intervals[2].Rate = 250e3
	c, err := r.RunTimeline(other)
	if err != nil {
		t.Fatal(err)
	}
	if &c[0] == &a[0] {
		t.Error("distinct interval lists shared a cache slot")
	}
	// So is the same list with parking off.
	noPark := timelineSpec()
	noPark.Park = false
	d, err := r.RunTimeline(noPark)
	if err != nil {
		t.Fatal(err)
	}
	if &d[0] == &a[0] {
		t.Error("park and no-park timelines shared a cache slot")
	}
	// Parked interval really parked; the others not.
	if !a[1].Parked || a[0].Parked || a[2].Parked {
		t.Errorf("parked flags = %v/%v/%v, want false/true/false", a[0].Parked, a[1].Parked, a[2].Parked)
	}
}

// TestRunTimelineUncacheable pins that a timeline over an uncacheable
// node config (custom catalog) still executes, uncached.
func TestRunTimelineUncacheable(t *testing.T) {
	r := New(2)
	spec := timelineSpec()
	spec.Node.Catalog = cstate.Skylake()
	if _, ok := TimelineKey(spec); ok {
		t.Fatal("custom-catalog timeline reported cacheable")
	}
	a, err := r.RunTimeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunTimeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("uncacheable timeline returned %d/%d intervals", len(a), len(b))
	}
	if &a[0] == &b[0] {
		t.Error("uncacheable timelines shared a result")
	}
	if _, err := r.RunTimeline(TimelineSpec{Node: quickCfg()}); err == nil {
		t.Error("empty timeline accepted")
	}
}

// TestEachShortCircuitsOnFailure pins the cancellation contract: after
// one task fails, tasks that have not started yet are skipped instead
// of running the rest of the fleet to completion.
func TestEachShortCircuitsOnFailure(t *testing.T) {
	r := New(1) // serialize so the failure is observed before later launches
	var ran atomic.Int64
	err := r.Each(64, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return errors.New("node down")
		}
		return nil
	})
	if err == nil || err.Error() != "node down" {
		t.Fatalf("error not propagated: %v", err)
	}
	if n := ran.Load(); n > 4 {
		t.Errorf("%d of 64 tasks ran after the failure, want short-circuit", n)
	}
}

// TestClassStatsAccumulate pins the class-dedup accounting: counters
// start at zero and NoteClassDedup sums across scenario executions.
func TestClassStatsAccumulate(t *testing.T) {
	r := New(1)
	if n, c, k := r.ClassStats(); n != 0 || c != 0 || k != 0 {
		t.Fatalf("fresh runner class stats = %d/%d/%d, want zeros", n, c, k)
	}
	r.NoteClassDedup(100, 3, 6)
	r.NoteClassDedup(50, 50, 0)
	n, c, k := r.ClassStats()
	if n != 150 || c != 53 || k != 6 {
		t.Errorf("class stats = %d/%d/%d, want 150/53/6", n, c, k)
	}
}
