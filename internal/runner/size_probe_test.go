package runner

import (
	"testing"
	"unsafe"
)

// The shard padding exists to give each mutex its own cache line; pin
// the struct size so a field change cannot silently reintroduce false
// sharing.
func TestCacheShardIsOneCacheLine(t *testing.T) {
	if s := unsafe.Sizeof(cacheShard{}); s != 64 {
		t.Fatalf("cacheShard is %d bytes, want 64", s)
	}
}
