package runner

import (
	"testing"
	"unsafe"

	"repro/internal/server"
)

// The shard padding exists to give each mutex its own cache line; pin
// the struct size so a field change cannot silently reintroduce false
// sharing (both value instantiations share the one generic layout).
func TestCacheShardIsOneCacheLine(t *testing.T) {
	if s := unsafe.Sizeof(cacheShard[server.Result]{}); s != 64 {
		t.Fatalf("result cacheShard is %d bytes, want 64", s)
	}
	if s := unsafe.Sizeof(cacheShard[[]server.IntervalResult]{}); s != 64 {
		t.Fatalf("timeline cacheShard is %d bytes, want 64", s)
	}
}
