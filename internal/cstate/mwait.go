package cstate

import "fmt"

// MWAIT hint modeling (Sec. 4.3: "the operating system triggers C6A
// entry by executing the MWAIT instruction"). On x86, MWAIT's EAX hint
// encodes the target C-state in bits [7:4] (value = C-state index - 1,
// with 0xF meaning C0/no-state) and a sub-state in bits [3:0].
//
// AgileWatts keeps the OS interface unchanged: the hints that today
// select C1/C1E select C6A/C6AE on an AW part — which is how the paper's
// states "replace" the legacy ones without software changes.

// MWAITHint is the EAX hint value passed to MWAIT.
type MWAITHint uint8

// Legacy Intel hint encodings (as used by intel_idle for SKX).
const (
	HintC1  MWAITHint = 0x00
	HintC1E MWAITHint = 0x01
	HintC6  MWAITHint = 0x20
)

// MainState returns the architectural C-state index field (bits 7:4).
func (h MWAITHint) MainState() int { return int(h >> 4) }

// SubState returns the sub-state field (bits 3:0).
func (h MWAITHint) SubState() int { return int(h & 0xF) }

// String renders the raw hint.
func (h MWAITHint) String() string { return fmt.Sprintf("0x%02X", uint8(h)) }

// EncodeHint returns the MWAIT hint the OS issues to request state id.
// The encoding is identical for legacy and AW parts: C6A/C6AE reuse the
// C1/C1E hints they replace.
func EncodeHint(id ID) (MWAITHint, error) {
	switch id {
	case C1, C6A:
		return HintC1, nil
	case C1E, C6AE:
		return HintC1E, nil
	case C6:
		return HintC6, nil
	default:
		return 0, fmt.Errorf("cstate: no MWAIT hint for %v", id)
	}
}

// DecodeHint returns the state a core enters for a hint. On an AW part
// (agileWatts = true) the shallow hints resolve to the agile states.
func DecodeHint(h MWAITHint, agileWatts bool) (ID, error) {
	switch h {
	case HintC1:
		if agileWatts {
			return C6A, nil
		}
		return C1, nil
	case HintC1E:
		if agileWatts {
			return C6AE, nil
		}
		return C1E, nil
	case HintC6:
		return C6, nil
	default:
		return 0, fmt.Errorf("cstate: unknown MWAIT hint %v", h)
	}
}
