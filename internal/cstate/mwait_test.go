package cstate

import "testing"

func TestHintFields(t *testing.T) {
	if HintC6.MainState() != 2 || HintC6.SubState() != 0 {
		t.Fatalf("C6 hint fields: %d/%d", HintC6.MainState(), HintC6.SubState())
	}
	if HintC1E.MainState() != 0 || HintC1E.SubState() != 1 {
		t.Fatalf("C1E hint fields: %d/%d", HintC1E.MainState(), HintC1E.SubState())
	}
	if HintC6.String() != "0x20" {
		t.Fatalf("hint string = %s", HintC6.String())
	}
}

func TestEncodeDecodeRoundTripLegacy(t *testing.T) {
	for _, id := range []ID{C1, C1E, C6} {
		h, err := EncodeHint(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeHint(h, false)
		if err != nil || got != id {
			t.Fatalf("legacy round trip %v -> %v -> %v (%v)", id, h, got, err)
		}
	}
}

func TestAWPartRemapsShallowHints(t *testing.T) {
	// The same OS binary (same hints) gets the agile states on AW parts.
	cases := []struct {
		legacy, aw ID
	}{{C1, C6A}, {C1E, C6AE}, {C6, C6}}
	for _, tc := range cases {
		h, err := EncodeHint(tc.legacy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeHint(h, true)
		if err != nil || got != tc.aw {
			t.Fatalf("AW decode of %v hint = %v, want %v", tc.legacy, got, tc.aw)
		}
		// Encoding the AW state yields the same hint: software-invisible.
		h2, err := EncodeHint(tc.aw)
		if err != nil || h2 != h {
			t.Fatalf("AW state %v hint %v != legacy hint %v", tc.aw, h2, h)
		}
	}
}

func TestHintErrors(t *testing.T) {
	if _, err := EncodeHint(C0); err == nil {
		t.Fatal("C0 hint accepted")
	}
	if _, err := DecodeHint(0x77, false); err == nil {
		t.Fatal("unknown hint accepted")
	}
}
