// Package cstate models the CPU core idle-state (C-state) architecture of
// an Intel Skylake server (SKX) core, extended with AgileWatts' new C6A
// and C6AE states (paper Table 1 and Table 2).
//
// A C-state is described by its per-core power, its worst-case
// software+hardware transition time (the value the OS idle driver uses),
// its target residency, and its hardware entry/exit latencies. The package
// also records the state of each core component (clocks, ADPLL, caches,
// voltage, context) in every C-state, which drives both documentation
// tables and the microarchitectural model in internal/core.
package cstate

import (
	"fmt"

	"repro/internal/sim"
)

// ID identifies a core C-state. The order is shallow-to-deep by power,
// which the governor relies on when picking the deepest admissible state.
type ID int

// Core C-states of the Skylake server core plus AgileWatts' additions.
const (
	C0   ID = iota // active
	C1             // clock-gated, context maintained
	C6A            // AgileWatts: power-gated in place at P1 voltage
	C1E            // clock-gated at minimum voltage/frequency (Pn)
	C6AE           // AgileWatts: power-gated in place at Pn voltage
	C6             // deepest legacy state: flushed, voltage shut off
	NumStates
)

var idNames = [NumStates]string{"C0", "C1", "C6A", "C1E", "C6AE", "C6"}

// String returns the architectural name of the state.
func (id ID) String() string {
	if id < 0 || id >= NumStates {
		return fmt.Sprintf("C?(%d)", int(id))
	}
	return idNames[id]
}

// ParseID converts a state name ("C6A") to its ID.
func ParseID(s string) (ID, error) {
	for i, n := range idNames {
		if n == s {
			return ID(i), nil
		}
	}
	return 0, fmt.Errorf("cstate: unknown C-state %q", s)
}

// AllIDs lists every state shallow-to-deep (including C0).
func AllIDs() []ID {
	ids := make([]ID, NumStates)
	for i := range ids {
		ids[i] = ID(i)
	}
	return ids
}

// PState is the frequency/voltage operating point associated with a
// C-state's entry flow.
type PState int

const (
	// P1 is the base frequency operating point (2.2 GHz on the paper's
	// Xeon Silver 4114).
	P1 PState = iota
	// Pn is the minimum frequency operating point (0.8 GHz).
	Pn
)

// String returns "P1" or "Pn".
func (p PState) String() string {
	if p == P1 {
		return "P1"
	}
	return "Pn"
}

// Params describes one C-state (one row of Table 1, augmented with the
// hardware-level latencies from Sec. 3 and Sec. 5.2 that the simulator
// needs).
type Params struct {
	ID   ID
	Name string

	// PowerWatts is the per-core power while resident (Table 1).
	PowerWatts float64

	// SnoopPowerWatts is the per-core power while the state is servicing
	// snoop traffic (Sec. 7.5): C1 + ~50 mW, C6A + ~120 mW.
	SnoopPowerWatts float64

	// TransitionTime is the worst-case software+hardware entry+exit
	// latency to the first executed instruction — the value exposed to
	// the OS idle driver (Table 1, footnote 2).
	TransitionTime sim.Time

	// TargetResidency is the minimum predicted idle time for which the
	// governor will choose this state (Table 1).
	TargetResidency sim.Time

	// HWEntryLatency is the hardware entry flow duration during which the
	// core cannot respond (Sec. 3: ~87 us for C6; Sec. 5.2: <20 ns C6A).
	HWEntryLatency sim.Time

	// HWExitLatency is the hardware wake-up (interrupt to resumed
	// execution) duration (Sec. 3: ~30 us for C6; Sec. 5.2: <80 ns C6A).
	HWExitLatency sim.Time

	// PStateOnEntry is the frequency point the entry flow transitions to
	// (Pn for C1E/C6AE, P1 otherwise).
	PStateOnEntry PState

	// AgileWatts reports whether this state is one of the paper's new
	// states (C6A/C6AE).
	AgileWatts bool
}

// WakeupPenalty is the latency added to the first request that finds the
// core in this state, as used by the server model. It equals the OS-level
// transition time for legacy states; C-state C0 has none.
func (p Params) WakeupPenalty() sim.Time {
	if p.ID == C0 {
		return 0
	}
	return p.TransitionTime
}

// Catalog holds the parameters of every C-state plus the active-power
// levels of C0 at both frequency points.
type Catalog struct {
	params [NumStates]Params

	// C0PowerP1 and C0PowerPn are the active-state power levels at base
	// and minimum frequency (Table 1: ~4 W and ~1 W).
	C0PowerP1 float64
	C0PowerPn float64
}

// Skylake returns the paper's calibrated catalog: the four legacy SKX
// states (Table 1) plus AgileWatts' C6A and C6AE.
//
// Latency derivation:
//   - C6 hardware entry ≈ 87 us (L1/L2 flush ≈ 75 us at 800 MHz with 50 %
//     dirty lines, save-to-SRAM ≈ 9 us, control ≈ 3 us) and exit ≈ 30 us
//     (10 us wake-up hardware + 20 us state/microcode restore), Sec. 3.
//     The OS-visible worst case is 133 us (Table 1).
//   - C6A/C6AE hardware entry < 20 ns and exit < 80 ns (Sec. 5.2); their
//     OS-visible transition time matches C1/C1E because the software path
//     (MWAIT wake, scheduler) dominates — which is why Table 1 lists the
//     same 2 us / 10 us values.
func Skylake() *Catalog {
	c := &Catalog{C0PowerP1: 4.0, C0PowerPn: 1.0}
	c.params[C0] = Params{
		ID: C0, Name: "C0", PowerWatts: 4.0, SnoopPowerWatts: 4.0,
		PStateOnEntry: P1,
	}
	c.params[C1] = Params{
		ID: C1, Name: "C1", PowerWatts: 1.44, SnoopPowerWatts: 1.49,
		TransitionTime:  2 * sim.Microsecond,
		TargetResidency: 2 * sim.Microsecond,
		HWEntryLatency:  20 * sim.Nanosecond,
		HWExitLatency:   20 * sim.Nanosecond,
		PStateOnEntry:   P1,
	}
	c.params[C6A] = Params{
		ID: C6A, Name: "C6A", PowerWatts: 0.30, SnoopPowerWatts: 0.47,
		TransitionTime:  2 * sim.Microsecond,
		TargetResidency: 2 * sim.Microsecond,
		HWEntryLatency:  20 * sim.Nanosecond,
		HWExitLatency:   80 * sim.Nanosecond,
		PStateOnEntry:   P1,
		AgileWatts:      true,
	}
	c.params[C1E] = Params{
		ID: C1E, Name: "C1E", PowerWatts: 0.88, SnoopPowerWatts: 0.93,
		TransitionTime:  10 * sim.Microsecond,
		TargetResidency: 20 * sim.Microsecond,
		HWEntryLatency:  20 * sim.Nanosecond,
		HWExitLatency:   20 * sim.Nanosecond,
		PStateOnEntry:   Pn,
	}
	c.params[C6AE] = Params{
		ID: C6AE, Name: "C6AE", PowerWatts: 0.23, SnoopPowerWatts: 0.35,
		TransitionTime:  10 * sim.Microsecond,
		TargetResidency: 20 * sim.Microsecond,
		HWEntryLatency:  20 * sim.Nanosecond,
		HWExitLatency:   80 * sim.Nanosecond,
		PStateOnEntry:   Pn,
		AgileWatts:      true,
	}
	c.params[C6] = Params{
		ID: C6, Name: "C6", PowerWatts: 0.10, SnoopPowerWatts: 0.10,
		TransitionTime:  133 * sim.Microsecond,
		TargetResidency: 600 * sim.Microsecond,
		HWEntryLatency:  87 * sim.Microsecond,
		HWExitLatency:   30 * sim.Microsecond,
		PStateOnEntry:   P1,
	}
	return c
}

// Params returns the parameters of state id.
func (c *Catalog) Params(id ID) Params {
	if id < 0 || id >= NumStates {
		panic(fmt.Sprintf("cstate: invalid state %d", int(id)))
	}
	return c.params[id]
}

// EntryLatency, ExitLatency and ResidentPower return single Params
// fields without copying the full parameter record — the per-transition
// hot path reads exactly one field per call.

// EntryLatency returns the hardware entry flow duration of state id.
func (c *Catalog) EntryLatency(id ID) sim.Time {
	if id < 0 || id >= NumStates {
		panic(fmt.Sprintf("cstate: invalid state %d", int(id)))
	}
	return c.params[id].HWEntryLatency
}

// ExitLatency returns the hardware exit flow duration of state id.
func (c *Catalog) ExitLatency(id ID) sim.Time {
	if id < 0 || id >= NumStates {
		panic(fmt.Sprintf("cstate: invalid state %d", int(id)))
	}
	return c.params[id].HWExitLatency
}

// ResidentPower returns the per-core power while resident in state id.
func (c *Catalog) ResidentPower(id ID) float64 {
	if id < 0 || id >= NumStates {
		panic(fmt.Sprintf("cstate: invalid state %d", int(id)))
	}
	return c.params[id].PowerWatts
}

// SetPower overrides the resident power of a state; used by sensitivity
// (ablation) studies.
func (c *Catalog) SetPower(id ID, watts float64) {
	c.params[id].PowerWatts = watts
}

// PowerVector returns the per-state resident power indexed by ID.
func (c *Catalog) PowerVector() [NumStates]float64 {
	var v [NumStates]float64
	for i := range c.params {
		v[i] = c.params[i].PowerWatts
	}
	return v
}

// IdleStates lists every non-C0 state shallow-to-deep.
func (c *Catalog) IdleStates() []ID {
	return []ID{C1, C6A, C1E, C6AE, C6}
}

// DeepestByResidency returns the deepest (lowest power) state among the
// given menu whose target residency does not exceed predictedIdle.
// It returns C1-like shallowest fallback when nothing qualifies: the
// shallowest state in the menu, or C0 residency semantics are handled by
// the caller (a core with an empty menu simply spins in C0).
func (c *Catalog) DeepestByResidency(menu []ID, predictedIdle sim.Time) (ID, bool) {
	best := ID(-1)
	bestPower := -1.0
	shallowest := ID(-1)
	shallowestPower := -1.0
	for _, id := range menu {
		if id < 0 || id >= NumStates {
			panic(fmt.Sprintf("cstate: invalid state %d", int(id)))
		}
		if id == C0 {
			continue
		}
		// Field reads, not a Params copy: this runs on every idle entry.
		pw := c.params[id].PowerWatts
		if shallowest == -1 || pw > shallowestPower {
			shallowest = id
			shallowestPower = pw
		}
		if c.params[id].TargetResidency <= predictedIdle {
			if best == -1 || pw < bestPower {
				best = id
				bestPower = pw
			}
		}
	}
	if best != -1 {
		return best, true
	}
	if shallowest != -1 {
		return shallowest, false
	}
	return C0, false
}
