package cstate

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Phase describes what the core hardware is doing right now, at the
// granularity that matters for latency and power accounting.
type Phase int

// Machine phases.
const (
	// PhaseActive: executing in C0.
	PhaseActive Phase = iota
	// PhaseEntering: running an idle-state entry flow; the core cannot
	// respond to interrupts until entry completes.
	PhaseEntering
	// PhaseIdle: resident in the selected idle state.
	PhaseIdle
	// PhaseExiting: running the wake-up flow toward C0.
	PhaseExiting
)

func (p Phase) String() string {
	switch p {
	case PhaseActive:
		return "active"
	case PhaseEntering:
		return "entering"
	case PhaseIdle:
		return "idle"
	default:
		return "exiting"
	}
}

// Machine is the per-core C-state machine. The server model drives it
// with Enter/Wake calls; the machine accounts residency (hardware-counter
// style: transition phases are attributed to C0, matching how
// MSR_CORE_Cx_RESIDENCY counts only resident time) and exposes the
// latencies the server must respect.
type Machine struct {
	catalog *Catalog
	res     *stats.Residency
	phase   Phase
	state   ID // state being entered / resident / exited; C0 when active

	// wakePending records an interrupt that arrived during entry and must
	// be honored the moment entry completes (Sec. 3 C6 flows are not
	// abortable mid-entry).
	wakePending bool
}

// NewMachine creates a machine for one core, active in C0 at time now.
func NewMachine(catalog *Catalog, now sim.Time) *Machine {
	labels := make([]string, NumStates)
	for i := 0; i < int(NumStates); i++ {
		labels[i] = ID(i).String()
	}
	return &Machine{
		catalog: catalog,
		res:     stats.NewResidency(labels, int(C0), int64(now)),
		phase:   PhaseActive,
		state:   C0,
	}
}

// Phase returns the current hardware phase.
func (m *Machine) Phase() Phase { return m.phase }

// State returns the target/resident C-state (C0 while active).
func (m *Machine) State() ID { return m.state }

// Catalog returns the machine's catalog.
func (m *Machine) Catalog() *Catalog { return m.catalog }

// Enter begins the entry flow into the given idle state and returns the
// hardware entry latency; the caller must call EntryComplete after that
// latency has elapsed. Calling Enter while not active panics.
func (m *Machine) Enter(id ID, now sim.Time) sim.Time {
	if m.phase != PhaseActive {
		panic(fmt.Sprintf("cstate: Enter(%v) in phase %v", id, m.phase))
	}
	if id == C0 || id < 0 || id >= NumStates {
		panic(fmt.Sprintf("cstate: Enter(%v) is not an idle state", id))
	}
	m.phase = PhaseEntering
	m.state = id
	m.wakePending = false
	return m.catalog.EntryLatency(id)
}

// EntryComplete marks the end of the entry flow. It returns true if an
// interrupt arrived during entry, in which case the caller must
// immediately begin the exit flow (Wake has already been recorded; the
// returned duration is the exit latency to schedule).
func (m *Machine) EntryComplete(now sim.Time) (mustExit bool, exitLatency sim.Time) {
	if m.phase != PhaseEntering {
		panic(fmt.Sprintf("cstate: EntryComplete in phase %v", m.phase))
	}
	if m.wakePending {
		// The core touched the idle state only instantaneously; count a
		// transition into it and immediately start exiting.
		m.res.Switch(int(m.state), int64(now))
		m.phase = PhaseExiting
		return true, m.catalog.ExitLatency(m.state)
	}
	m.phase = PhaseIdle
	m.res.Switch(int(m.state), int64(now))
	return false, 0
}

// Wake requests a wake-up at time now. Behaviour depends on phase:
//   - PhaseIdle: begins the exit flow; returns its latency.
//   - PhaseEntering: records the pending wake; the exit begins when entry
//     completes. Returns the remaining entry time as unknown (0) — the
//     caller learns the exit latency from EntryComplete.
//   - PhaseActive / PhaseExiting: no-op (0): the core is already awake or
//     already waking.
//
// The boolean reports whether an exit flow was started by this call.
func (m *Machine) Wake(now sim.Time) (sim.Time, bool) {
	switch m.phase {
	case PhaseIdle:
		m.phase = PhaseExiting
		m.res.Switch(int(C0), int64(now))
		return m.catalog.ExitLatency(m.state), true
	case PhaseEntering:
		m.wakePending = true
		return 0, false
	default:
		return 0, false
	}
}

// ExitComplete marks the end of the exit flow; the core is active again.
func (m *Machine) ExitComplete(now sim.Time) {
	if m.phase != PhaseExiting {
		panic(fmt.Sprintf("cstate: ExitComplete in phase %v", m.phase))
	}
	// If the wake came from PhaseEntering, residency was switched into the
	// idle state at EntryComplete; account the (zero-length or short)
	// stay and return to C0 now.
	m.res.Switch(int(C0), int64(now))
	m.phase = PhaseActive
	m.state = C0
}

// ResidentPower returns the power the core draws right now given the
// machine phase: resident idle power in PhaseIdle, otherwise active
// power (transition flows burn roughly active power; Sec. 6.2 attributes
// them to C0).
func (m *Machine) ResidentPower(c0Power float64) float64 {
	if m.phase == PhaseIdle {
		return m.catalog.ResidentPower(m.state)
	}
	return c0Power
}

// Residency exposes the underlying residency tracker.
func (m *Machine) Residency() *stats.Residency { return m.res }

// Close finalizes residency accounting at time now.
func (m *Machine) Close(now sim.Time) { m.res.Close(int64(now)) }

// Fractions returns per-state residency fractions indexed by ID.
func (m *Machine) Fractions() [NumStates]float64 {
	var out [NumStates]float64
	copy(out[:], m.res.Fractions())
	return out
}

// Transitions returns the number of entries into state id.
func (m *Machine) Transitions(id ID) uint64 { return m.res.Transitions(int(id)) }
