package cstate

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTable1Values(t *testing.T) {
	c := Skylake()
	cases := []struct {
		id         ID
		power      float64
		transition sim.Time
		residency  sim.Time
	}{
		{C1, 1.44, 2 * sim.Microsecond, 2 * sim.Microsecond},
		{C6A, 0.30, 2 * sim.Microsecond, 2 * sim.Microsecond},
		{C1E, 0.88, 10 * sim.Microsecond, 20 * sim.Microsecond},
		{C6AE, 0.23, 10 * sim.Microsecond, 20 * sim.Microsecond},
		{C6, 0.10, 133 * sim.Microsecond, 600 * sim.Microsecond},
	}
	for _, tc := range cases {
		p := c.Params(tc.id)
		if p.PowerWatts != tc.power {
			t.Errorf("%v power = %v, want %v", tc.id, p.PowerWatts, tc.power)
		}
		if p.TransitionTime != tc.transition {
			t.Errorf("%v transition = %v, want %v", tc.id, p.TransitionTime, tc.transition)
		}
		if p.TargetResidency != tc.residency {
			t.Errorf("%v target residency = %v, want %v", tc.id, p.TargetResidency, tc.residency)
		}
	}
	if c.C0PowerP1 != 4.0 || c.C0PowerPn != 1.0 {
		t.Errorf("C0 power = %v/%v", c.C0PowerP1, c.C0PowerPn)
	}
}

func TestAWStatePowerFractionOfC0(t *testing.T) {
	// Paper abstract: C6A and C6AE consume only 7% and 5% of C0 power.
	c := Skylake()
	fracA := c.Params(C6A).PowerWatts / c.C0PowerP1
	fracAE := c.Params(C6AE).PowerWatts / c.C0PowerP1
	if fracA < 0.05 || fracA > 0.09 {
		t.Errorf("C6A/C0 = %.3f, want ~0.07", fracA)
	}
	if fracAE < 0.04 || fracAE > 0.07 {
		t.Errorf("C6AE/C0 = %.3f, want ~0.05", fracAE)
	}
}

func TestAWHardwareLatency900x(t *testing.T) {
	// Paper: C6A transition (entry+exit) is up to 900x faster than C6.
	c := Skylake()
	c6 := c.Params(C6).HWEntryLatency + c.Params(C6).HWExitLatency
	c6a := c.Params(C6A).HWEntryLatency + c.Params(C6A).HWExitLatency
	ratio := float64(c6) / float64(c6a)
	if ratio < 800 {
		t.Errorf("C6/C6A hardware latency ratio = %.0f, want >= ~900", ratio)
	}
	if c6a > 100*sim.Nanosecond {
		t.Errorf("C6A total hardware latency = %v, want < 100ns", c6a)
	}
}

func TestDeeperStatesCostMoreLatency(t *testing.T) {
	c := Skylake()
	if !(c.Params(C1).TransitionTime <= c.Params(C1E).TransitionTime &&
		c.Params(C1E).TransitionTime <= c.Params(C6).TransitionTime) {
		t.Error("legacy transition times not monotone with depth")
	}
	if !(c.Params(C6A).PowerWatts < c.Params(C1).PowerWatts &&
		c.Params(C6AE).PowerWatts < c.Params(C1E).PowerWatts &&
		c.Params(C6).PowerWatts < c.Params(C6AE).PowerWatts) {
		t.Error("power ordering violated")
	}
}

func TestIDStringAndParse(t *testing.T) {
	for _, id := range AllIDs() {
		got, err := ParseID(id.String())
		if err != nil || got != id {
			t.Errorf("round trip failed for %v: %v %v", id, got, err)
		}
	}
	if _, err := ParseID("C9"); err == nil {
		t.Error("ParseID accepted unknown state")
	}
	if ID(99).String() == "" {
		t.Error("out-of-range String empty")
	}
}

func TestWakeupPenalty(t *testing.T) {
	c := Skylake()
	if c.Params(C0).WakeupPenalty() != 0 {
		t.Error("C0 wakeup penalty nonzero")
	}
	if c.Params(C6).WakeupPenalty() != 133*sim.Microsecond {
		t.Error("C6 wakeup penalty wrong")
	}
}

func TestDeepestByResidency(t *testing.T) {
	c := Skylake()
	menu := []ID{C1, C1E, C6}
	// Long predicted idle: deepest allowed is C6.
	if id, ok := c.DeepestByResidency(menu, sim.Millisecond); !ok || id != C6 {
		t.Errorf("long idle selected %v ok=%v, want C6", id, ok)
	}
	// 30us: C1E admissible, C6 not.
	if id, ok := c.DeepestByResidency(menu, 30*sim.Microsecond); !ok || id != C1E {
		t.Errorf("30us idle selected %v ok=%v, want C1E", id, ok)
	}
	// 1us: nothing admissible, fall back to shallowest (C1).
	if id, ok := c.DeepestByResidency(menu, sim.Microsecond); ok || id != C1 {
		t.Errorf("1us idle selected %v ok=%v, want C1 fallback", id, ok)
	}
	// AW menu: C6A admissible at 2us and deeper than C1.
	if id, ok := c.DeepestByResidency([]ID{C6A, C6}, 5*sim.Microsecond); !ok || id != C6A {
		t.Errorf("AW 5us idle selected %v ok=%v, want C6A", id, ok)
	}
}

func TestDeepestByResidencyEmptyMenu(t *testing.T) {
	c := Skylake()
	if id, ok := c.DeepestByResidency(nil, sim.Second); ok || id != C0 {
		t.Errorf("empty menu returned %v ok=%v", id, ok)
	}
}

// Property: the selected state is always a member of the menu and always
// admissible when ok is true.
func TestPropertyDeepestSelection(t *testing.T) {
	c := Skylake()
	all := c.IdleStates()
	f := func(mask uint8, idleUS uint16) bool {
		var menu []ID
		for i, id := range all {
			if mask&(1<<i) != 0 {
				menu = append(menu, id)
			}
		}
		idle := sim.Time(idleUS) * sim.Microsecond
		id, ok := c.DeepestByResidency(menu, idle)
		if len(menu) == 0 {
			return !ok && id == C0
		}
		found := false
		for _, m := range menu {
			if m == id {
				found = true
			}
		}
		if !found {
			return false
		}
		if ok && c.Params(id).TargetResidency > idle {
			return false
		}
		// When ok, no deeper admissible state may exist in the menu.
		if ok {
			for _, m := range menu {
				p := c.Params(m)
				if p.TargetResidency <= idle && p.PowerWatts < c.Params(id).PowerWatts {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentTableMatchesPaper(t *testing.T) {
	rows := ComponentTable()
	if len(rows) != int(NumStates) {
		t.Fatalf("component table has %d rows", len(rows))
	}
	c6 := ComponentsOf(C6)
	if c6.ADPLL != PLLOff || c6.Caches != CacheFlushed || c6.Context != ContextSRSRAM {
		t.Error("C6 component states wrong")
	}
	for _, id := range []ID{C6A, C6AE} {
		row := ComponentsOf(id)
		if row.ADPLL != PLLOn {
			t.Errorf("%v must keep ADPLL on", id)
		}
		if row.Caches != CacheCoherent {
			t.Errorf("%v must keep caches coherent", id)
		}
		if row.Context != ContextInPlaceSR {
			t.Errorf("%v must retain context in place", id)
		}
		if row.Clocks != ClocksStopped {
			t.Errorf("%v must stop clocks", id)
		}
	}
	// Every state except C0 stops clocks; only C6 turns the PLL off.
	for _, row := range rows {
		if row.State == C0 {
			if row.Clocks != ClocksRunning {
				t.Error("C0 clocks must run")
			}
			continue
		}
		if row.Clocks != ClocksStopped {
			t.Errorf("%v clocks must stop", row.State)
		}
		if row.State != C6 && row.ADPLL != PLLOn {
			t.Errorf("%v PLL must stay on", row.State)
		}
	}
}

func TestComponentStateStrings(t *testing.T) {
	if ClocksRunning.String() != "Running" || ClocksStopped.String() != "Stopped" {
		t.Error("clock strings")
	}
	if PLLOn.String() != "On" || PLLOff.String() != "Off" {
		t.Error("pll strings")
	}
	if CacheCoherent.String() != "Coherent" || CacheFlushed.String() != "Flushed" {
		t.Error("cache strings")
	}
	if VoltagePGRetActive.String() != "PG/Ret/Active" || VoltageShutOff.String() != "Shut-off" {
		t.Error("voltage strings")
	}
	if ContextInPlaceSR.String() != "In-place S/R" {
		t.Error("context strings")
	}
	if P1.String() != "P1" || Pn.String() != "Pn" {
		t.Error("pstate strings")
	}
}

func TestMachineBasicCycle(t *testing.T) {
	c := Skylake()
	m := NewMachine(c, 0)
	if m.Phase() != PhaseActive || m.State() != C0 {
		t.Fatal("machine not active at start")
	}
	// Active 100us, then enter C1.
	entry := m.Enter(C1, 100*sim.Microsecond)
	if entry != c.Params(C1).HWEntryLatency {
		t.Fatalf("entry latency = %v", entry)
	}
	tEntry := 100*sim.Microsecond + entry
	if mustExit, _ := m.EntryComplete(tEntry); mustExit {
		t.Fatal("unexpected pending wake")
	}
	if m.Phase() != PhaseIdle {
		t.Fatal("not idle after entry")
	}
	// Idle until 500us, then wake.
	exitLat, started := m.Wake(500 * sim.Microsecond)
	if !started || exitLat != c.Params(C1).HWExitLatency {
		t.Fatalf("wake: %v %v", exitLat, started)
	}
	m.ExitComplete(500*sim.Microsecond + exitLat)
	if m.Phase() != PhaseActive || m.State() != C0 {
		t.Fatal("not active after exit")
	}
	m.Close(1000 * sim.Microsecond)

	f := m.Fractions()
	idleNS := float64(500*sim.Microsecond - tEntry)
	total := float64(1000 * sim.Microsecond)
	wantC1 := idleNS / total
	if diff := f[C1] - wantC1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("C1 residency = %v, want %v", f[C1], wantC1)
	}
	if m.Transitions(C1) != 1 {
		t.Fatalf("C1 transitions = %d", m.Transitions(C1))
	}
}

func TestMachineWakeDuringEntry(t *testing.T) {
	c := Skylake()
	m := NewMachine(c, 0)
	m.Enter(C6, 0)
	// Interrupt arrives mid-entry.
	if lat, started := m.Wake(10 * sim.Microsecond); started || lat != 0 {
		t.Fatal("wake during entry must defer")
	}
	mustExit, exitLat := m.EntryComplete(c.Params(C6).HWEntryLatency)
	if !mustExit {
		t.Fatal("pending wake not honored at entry completion")
	}
	if exitLat != c.Params(C6).HWExitLatency {
		t.Fatalf("exit latency = %v", exitLat)
	}
	m.ExitComplete(c.Params(C6).HWEntryLatency + exitLat)
	if m.Phase() != PhaseActive {
		t.Fatal("not active after aborted idle")
	}
	if m.Transitions(C6) != 1 {
		t.Fatal("instantaneous C6 visit not counted as transition")
	}
}

func TestMachineDoubleWakeIsNoop(t *testing.T) {
	c := Skylake()
	m := NewMachine(c, 0)
	m.Enter(C1, 0)
	m.EntryComplete(c.Params(C1).HWEntryLatency)
	if _, started := m.Wake(sim.Microsecond); !started {
		t.Fatal("first wake must start exit")
	}
	if _, started := m.Wake(2 * sim.Microsecond); started {
		t.Fatal("second wake must be a no-op while exiting")
	}
}

func TestMachineEnterWhileIdlePanics(t *testing.T) {
	c := Skylake()
	m := NewMachine(c, 0)
	m.Enter(C1, 0)
	m.EntryComplete(c.Params(C1).HWEntryLatency)
	defer func() {
		if recover() == nil {
			t.Fatal("Enter while idle did not panic")
		}
	}()
	m.Enter(C6, sim.Microsecond)
}

func TestMachineEnterC0Panics(t *testing.T) {
	m := NewMachine(Skylake(), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Enter(C0) did not panic")
		}
	}()
	m.Enter(C0, 0)
}

func TestMachineResidentPower(t *testing.T) {
	c := Skylake()
	m := NewMachine(c, 0)
	if m.ResidentPower(4.0) != 4.0 {
		t.Fatal("active power wrong")
	}
	m.Enter(C6A, 0)
	if m.ResidentPower(4.0) != 4.0 {
		t.Fatal("entering phase should draw active power")
	}
	m.EntryComplete(c.Params(C6A).HWEntryLatency)
	if m.ResidentPower(4.0) != 0.30 {
		t.Fatalf("idle power = %v", m.ResidentPower(4.0))
	}
}

func TestPowerVectorAndSetPower(t *testing.T) {
	c := Skylake()
	v := c.PowerVector()
	if v[C1] != 1.44 || v[C6] != 0.10 {
		t.Fatal("power vector wrong")
	}
	c.SetPower(C1, 2.0)
	if c.PowerVector()[C1] != 2.0 {
		t.Fatal("SetPower not applied")
	}
}
