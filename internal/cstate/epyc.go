package cstate

import "repro/internal/sim"

// EPYC returns a catalog modeling an AMD EPYC Rome/Milan-like core
// (paper Sec. 5.5): a shallow C1, an IO-based C2, and the deep CC6 state
// whose tens-of-microseconds transition latency leads server vendors to
// recommend disabling it ("Global C-State Control") for latency-critical
// deployments. AgileWatts' C6A/C6AE slots are populated with the same
// AW design retargeted to this core, showing the technique generalizes
// beyond Intel parts.
//
// Calibration notes: EPYC cores are smaller and lower-power than SKX
// (no AVX-512, smaller L2); power levels follow published Zen 2/3
// characterization [197, 198] scaled to a per-core basis, and CC6
// latency follows [197] (tens of microseconds, plus software overhead).
func EPYC() *Catalog {
	c := &Catalog{C0PowerP1: 3.0, C0PowerPn: 0.8}
	c.params[C0] = Params{
		ID: C0, Name: "C0", PowerWatts: 3.0, SnoopPowerWatts: 3.0,
		PStateOnEntry: P1,
	}
	c.params[C1] = Params{
		ID: C1, Name: "C1", PowerWatts: 1.10, SnoopPowerWatts: 1.15,
		TransitionTime:  sim.Microsecond,
		TargetResidency: 2 * sim.Microsecond,
		HWEntryLatency:  20 * sim.Nanosecond,
		HWExitLatency:   20 * sim.Nanosecond,
		PStateOnEntry:   P1,
	}
	c.params[C6A] = Params{
		ID: C6A, Name: "C6A", PowerWatts: 0.24, SnoopPowerWatts: 0.38,
		TransitionTime:  sim.Microsecond,
		TargetResidency: 2 * sim.Microsecond,
		HWEntryLatency:  20 * sim.Nanosecond,
		HWExitLatency:   80 * sim.Nanosecond,
		PStateOnEntry:   P1,
		AgileWatts:      true,
	}
	// EPYC exposes C2 as its intermediate IO state; it plays C1E's role
	// in the hierarchy (lower power, longer latency), so it occupies the
	// C1E slot.
	c.params[C1E] = Params{
		ID: C1E, Name: "C2", PowerWatts: 0.70, SnoopPowerWatts: 0.75,
		TransitionTime:  18 * sim.Microsecond,
		TargetResidency: 40 * sim.Microsecond,
		HWEntryLatency:  20 * sim.Nanosecond,
		HWExitLatency:   20 * sim.Nanosecond,
		PStateOnEntry:   Pn,
	}
	c.params[C6AE] = Params{
		ID: C6AE, Name: "C6AE", PowerWatts: 0.19, SnoopPowerWatts: 0.30,
		TransitionTime:  18 * sim.Microsecond,
		TargetResidency: 40 * sim.Microsecond,
		HWEntryLatency:  20 * sim.Nanosecond,
		HWExitLatency:   80 * sim.Nanosecond,
		PStateOnEntry:   Pn,
		AgileWatts:      true,
	}
	// CC6: per-core deep state; the CCX-level C6 is even deeper/slower,
	// but CC6 alone already exceeds latency budgets.
	c.params[C6] = Params{
		ID: C6, Name: "CC6", PowerWatts: 0.08, SnoopPowerWatts: 0.08,
		TransitionTime:  90 * sim.Microsecond,
		TargetResidency: 450 * sim.Microsecond,
		HWEntryLatency:  60 * sim.Microsecond,
		HWExitLatency:   25 * sim.Microsecond,
		PStateOnEntry:   P1,
	}
	return c
}
