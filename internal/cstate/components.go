package cstate

// This file encodes Table 2 of the paper: the state of each core
// component in every core C-state, including AgileWatts' C6A and C6AE.

// ClockState describes the core clock distribution in a C-state.
type ClockState int

// Clock distribution states.
const (
	ClocksRunning ClockState = iota
	ClocksStopped
)

func (s ClockState) String() string {
	if s == ClocksRunning {
		return "Running"
	}
	return "Stopped"
}

// PLLState describes the ADPLL clock generator.
type PLLState int

// ADPLL states.
const (
	PLLOn PLLState = iota
	PLLOff
)

func (s PLLState) String() string {
	if s == PLLOn {
		return "On"
	}
	return "Off"
}

// CacheState describes the private L1/L2 caches.
type CacheState int

// Private cache states.
const (
	// CacheCoherent means content is retained and snoops are served.
	CacheCoherent CacheState = iota
	// CacheFlushed means content was written back and invalidated.
	CacheFlushed
)

func (s CacheState) String() string {
	if s == CacheCoherent {
		return "Coherent"
	}
	return "Flushed"
}

// VoltageState describes the core supply voltage configuration.
type VoltageState int

// Core voltage states.
const (
	// VoltageActive is the nominal operating voltage for the P-state.
	VoltageActive VoltageState = iota
	// VoltageMinVF is the minimum operational voltage/frequency point.
	VoltageMinVF
	// VoltagePGRetActive is AgileWatts' mixed domain: UFPG units
	// power-gated, retention supplies on, cache domain active-capable.
	VoltagePGRetActive
	// VoltagePGRetMinVF is the same at the minimum V/F point (C6AE).
	VoltagePGRetMinVF
	// VoltageShutOff is the fully gated core supply (legacy C6).
	VoltageShutOff
)

func (s VoltageState) String() string {
	switch s {
	case VoltageActive:
		return "Active"
	case VoltageMinVF:
		return "Min V/F"
	case VoltagePGRetActive:
		return "PG/Ret/Active"
	case VoltagePGRetMinVF:
		return "PG/Ret/Min V/F"
	default:
		return "Shut-off"
	}
}

// ContextState describes where the ~8 KB core context lives.
type ContextState int

// Context retention strategies.
const (
	// ContextMaintained means the context stays powered in place with no
	// save/restore (C0/C1/C1E).
	ContextMaintained ContextState = iota
	// ContextInPlaceSR is AgileWatts' in-place save/restore: SRPG flops,
	// ungated register islands, and ungated microcode-patch SRAM.
	ContextInPlaceSR
	// ContextSRSRAM is the legacy C6 flow: serialized to the
	// save/restore SRAM in the uncore.
	ContextSRSRAM
)

func (s ContextState) String() string {
	switch s {
	case ContextMaintained:
		return "Maintained"
	case ContextInPlaceSR:
		return "In-place S/R"
	default:
		return "S/R SRAM"
	}
}

// Components is one row of Table 2.
type Components struct {
	State   ID
	Clocks  ClockState
	ADPLL   PLLState
	Caches  CacheState
	Voltage VoltageState
	Context ContextState
}

// ComponentTable returns Table 2 in the paper's row order
// (C0, C1, C6A, C1E, C6AE, C6).
func ComponentTable() []Components {
	return []Components{
		{C0, ClocksRunning, PLLOn, CacheCoherent, VoltageActive, ContextMaintained},
		{C1, ClocksStopped, PLLOn, CacheCoherent, VoltageActive, ContextMaintained},
		{C6A, ClocksStopped, PLLOn, CacheCoherent, VoltagePGRetActive, ContextInPlaceSR},
		{C1E, ClocksStopped, PLLOn, CacheCoherent, VoltageMinVF, ContextMaintained},
		{C6AE, ClocksStopped, PLLOn, CacheCoherent, VoltagePGRetMinVF, ContextInPlaceSR},
		{C6, ClocksStopped, PLLOff, CacheFlushed, VoltageShutOff, ContextSRSRAM},
	}
}

// ComponentsOf returns the Table 2 row for one state.
func ComponentsOf(id ID) Components {
	for _, row := range ComponentTable() {
		if row.State == id {
			return row
		}
	}
	panic("cstate: no component row for state " + id.String())
}
