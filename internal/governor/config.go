package governor

import (
	"fmt"

	"repro/internal/cstate"
)

// Config is a named platform configuration: which idle states the BIOS/OS
// exposes and whether Turbo Boost is enabled. P-states are disabled in
// every evaluated configuration (Sec. 6.2).
type Config struct {
	Name string
	// Menu lists the enabled idle states.
	Menu []cstate.ID
	// Turbo reports whether Turbo Boost is enabled.
	Turbo bool
	// AgileWatts reports whether the config uses the new C6A/C6AE states.
	AgileWatts bool
}

// Enabled reports whether state id is in the menu.
func (c Config) Enabled(id cstate.ID) bool {
	for _, m := range c.Menu {
		if m == id {
			return true
		}
	}
	return false
}

// Validate rejects menus mixing legacy C1/C1E with their AW replacements
// (the paper's C6A/C6AE replace C1/C1E, Sec. 4).
func (c Config) Validate() error {
	if (c.Enabled(cstate.C1) && c.Enabled(cstate.C6A)) ||
		(c.Enabled(cstate.C1E) && c.Enabled(cstate.C6AE)) {
		return fmt.Errorf("governor: config %q mixes legacy and AW replacement states", c.Name)
	}
	for _, id := range c.Menu {
		if id == cstate.C0 {
			return fmt.Errorf("governor: config %q lists C0 as an idle state", c.Name)
		}
	}
	return nil
}

// The paper's named configurations.
var (
	// Baseline: P-states disabled, Turbo and all legacy C-states enabled
	// (Sec. 7.1).
	Baseline = Config{Name: "Baseline", Turbo: true,
		Menu: []cstate.ID{cstate.C1, cstate.C1E, cstate.C6}}

	// AW: the baseline with C1/C1E replaced by C6A/C6AE (Sec. 7.1).
	AW = Config{Name: "AW", Turbo: true, AgileWatts: true,
		Menu: []cstate.ID{cstate.C6A, cstate.C6AE, cstate.C6}}

	// NTBaseline disables Turbo (Sec. 7.2).
	NTBaseline = Config{Name: "NT_Baseline",
		Menu: []cstate.ID{cstate.C1, cstate.C1E, cstate.C6}}

	// NTNoC6 disables Turbo and C6.
	NTNoC6 = Config{Name: "NT_No_C6",
		Menu: []cstate.ID{cstate.C1, cstate.C1E}}

	// NTNoC6NoC1E disables Turbo, C6 and C1E.
	NTNoC6NoC1E = Config{Name: "NT_No_C6,No_C1E",
		Menu: []cstate.ID{cstate.C1}}

	// TNoC6 enables Turbo with C6 disabled (Sec. 7.3).
	TNoC6 = Config{Name: "T_No_C6", Turbo: true,
		Menu: []cstate.ID{cstate.C1, cstate.C1E}}

	// TNoC6NoC1E enables Turbo with C6 and C1E disabled.
	TNoC6NoC1E = Config{Name: "T_No_C6,No_C1E", Turbo: true,
		Menu: []cstate.ID{cstate.C1}}

	// TC6ANoC6NoC1E is AW's recommended Turbo configuration: C6A replaces
	// C1, with C6 and C1E disabled (Sec. 7.3).
	TC6ANoC6NoC1E = Config{Name: "T_C6A,No_C6,No_C1E", Turbo: true, AgileWatts: true,
		Menu: []cstate.ID{cstate.C6A}}

	// NTC6ANoC6NoC1E is the same without Turbo.
	NTC6ANoC6NoC1E = Config{Name: "NT_C6A,No_C6,No_C1E", AgileWatts: true,
		Menu: []cstate.ID{cstate.C6A}}

	// KVBaseline is the Fig. 12/13 baseline for MySQL/Kafka: P-states
	// disabled, C1 and C6 enabled.
	KVBaseline = Config{Name: "Baseline_C1_C6",
		Menu: []cstate.ID{cstate.C1, cstate.C6}}

	// KVNoC6 is the Fig. 12/13 recommended configuration with C6
	// disabled.
	KVNoC6 = Config{Name: "No_C6",
		Menu: []cstate.ID{cstate.C1}}

	// KVAW maps the No_C6 configuration's C1 residency onto C6A
	// (Fig. 12(d)/13(d)).
	KVAW = Config{Name: "AW_C6A", AgileWatts: true,
		Menu: []cstate.ID{cstate.C6A}}
)

// AllConfigs lists every named configuration.
func AllConfigs() []Config {
	return []Config{
		Baseline, AW, NTBaseline, NTNoC6, NTNoC6NoC1E,
		TNoC6, TNoC6NoC1E, TC6ANoC6NoC1E, NTC6ANoC6NoC1E,
		KVBaseline, KVNoC6, KVAW,
	}
}

// ConfigByName looks up a configuration.
func ConfigByName(name string) (Config, error) {
	for _, c := range AllConfigs() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("governor: unknown config %q", name)
}
