// Package governor implements the OS-level idle-state selection policies
// (the software half of the C-state machinery) and the named platform
// configurations evaluated in the paper (Sec. 7.2: NT_Baseline, NT_No_C6,
// NT_No_C6,No_C1E, their Turbo variants, and the AgileWatts configs).
package governor

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/sim"
)

// Governor selects an idle state when a core runs out of work. It learns
// from the actually observed idle durations, mirroring how the Linux
// menu governor predicts residency.
type Governor interface {
	// Select returns the C-state to enter at time now given the menu of
	// enabled idle states.
	Select(now sim.Time, menu []cstate.ID) cstate.ID
	// Observe records the actual duration of the idle period that just
	// ended, to refine future predictions.
	Observe(idle sim.Time)
	// Name identifies the policy.
	Name() string
}

// MenuGovernor predicts the next idle duration with an exponentially
// weighted moving average over recent idle periods, corrected toward the
// most recent observation when the pattern is irregular — a simplified
// Linux menu governor. It then picks the deepest enabled state whose
// target residency fits the prediction.
type MenuGovernor struct {
	catalog *cstate.Catalog
	// ewma is the running idle-duration estimate (ns).
	ewma float64
	// lastIdle is the most recent observation (ns).
	lastIdle float64
	// alpha is the EWMA weight of new observations.
	alpha float64
	// seeded reports whether any observation has arrived.
	seeded bool
}

// NewMenuGovernor returns a menu-style governor over the catalog.
func NewMenuGovernor(c *cstate.Catalog) *MenuGovernor {
	return &MenuGovernor{catalog: c, alpha: 0.3}
}

// Name implements Governor.
func (g *MenuGovernor) Name() string { return "menu" }

// Predict returns the current idle-duration prediction in ns. Before any
// observation, it predicts pessimistically short (pick shallow), which is
// what hardware does on cold start.
func (g *MenuGovernor) Predict() sim.Time {
	if !g.seeded {
		return 0
	}
	// Bias toward the shorter of (ewma, last): under-predicting depth
	// costs a little power; over-predicting costs latency, which is what
	// latency-critical deployments tune against.
	p := g.ewma
	if g.lastIdle < p {
		p = (g.lastIdle + g.ewma) / 2
	}
	return sim.Time(p)
}

// Select implements Governor.
func (g *MenuGovernor) Select(now sim.Time, menu []cstate.ID) cstate.ID {
	id, _ := g.catalog.DeepestByResidency(menu, g.Predict())
	return id
}

// Observe implements Governor.
func (g *MenuGovernor) Observe(idle sim.Time) {
	v := float64(idle)
	if !g.seeded {
		g.ewma = v
		g.seeded = true
	} else {
		g.ewma = g.alpha*v + (1-g.alpha)*g.ewma
	}
	g.lastIdle = v
}

// StaticGovernor always selects the deepest state in the menu, ignoring
// residency targets. It models "performance-tuned" BIOS setups that trust
// a single state, and is also useful for upper-bound analyses.
type StaticGovernor struct {
	catalog *cstate.Catalog
}

// NewStaticGovernor returns a deepest-state governor.
func NewStaticGovernor(c *cstate.Catalog) *StaticGovernor {
	return &StaticGovernor{catalog: c}
}

// Name implements Governor.
func (g *StaticGovernor) Name() string { return "static-deepest" }

// Select implements Governor.
func (g *StaticGovernor) Select(now sim.Time, menu []cstate.ID) cstate.ID {
	id, _ := g.catalog.DeepestByResidency(menu, sim.MaxTime)
	return id
}

// Observe implements Governor.
func (g *StaticGovernor) Observe(sim.Time) {}

// LadderGovernor starts shallow and deepens one step each time an idle
// period overruns the next state's target residency, resetting on a
// short idle — the classic ladder policy kept for ablation studies.
type LadderGovernor struct {
	catalog *cstate.Catalog
	rung    int
	last    sim.Time
}

// NewLadderGovernor returns a ladder policy over the catalog.
func NewLadderGovernor(c *cstate.Catalog) *LadderGovernor {
	return &LadderGovernor{catalog: c}
}

// Name implements Governor.
func (g *LadderGovernor) Name() string { return "ladder" }

// Select implements Governor.
func (g *LadderGovernor) Select(now sim.Time, menu []cstate.ID) cstate.ID {
	if len(menu) == 0 {
		return cstate.C0
	}
	ordered := orderShallowToDeep(g.catalog, menu)
	if g.rung >= len(ordered) {
		g.rung = len(ordered) - 1
	}
	return ordered[g.rung]
}

// Observe implements Governor.
func (g *LadderGovernor) Observe(idle sim.Time) {
	// Promote when the last idle comfortably exceeded twice the current
	// state's target; demote on a short idle.
	if idle > g.last*2 || idle > 100*sim.Microsecond {
		g.rung++
	} else if idle < 5*sim.Microsecond && g.rung > 0 {
		g.rung--
	}
	g.last = idle
}

func orderShallowToDeep(c *cstate.Catalog, menu []cstate.ID) []cstate.ID {
	out := append([]cstate.ID(nil), menu...)
	// Insertion sort by descending power (shallowest = highest power).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && c.Params(out[j]).PowerWatts > c.Params(out[j-1]).PowerWatts; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Policy names accepted by New.
const (
	PolicyMenu   = "menu"
	PolicyStatic = "static-deepest"
	PolicyLadder = "ladder"
)

// New constructs a governor by policy name.
func New(policy string, c *cstate.Catalog) (Governor, error) {
	switch policy {
	case PolicyMenu:
		return NewMenuGovernor(c), nil
	case PolicyStatic:
		return NewStaticGovernor(c), nil
	case PolicyLadder:
		return NewLadderGovernor(c), nil
	case PolicyInterval:
		return NewIntervalGovernor(c), nil
	default:
		return nil, fmt.Errorf("governor: unknown policy %q", policy)
	}
}
