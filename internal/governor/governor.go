// Package governor implements the OS-level idle-state selection policies
// (the software half of the C-state machinery) and the named platform
// configurations evaluated in the paper (Sec. 7.2: NT_Baseline, NT_No_C6,
// NT_No_C6,No_C1E, their Turbo variants, and the AgileWatts configs).
package governor

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/sim"
)

// Governor selects an idle state when a core runs out of work. It learns
// from the actually observed idle durations, mirroring how the Linux
// menu governor predicts residency.
type Governor interface {
	// Select returns the C-state to enter at time now given the menu of
	// enabled idle states.
	Select(now sim.Time, menu []cstate.ID) cstate.ID
	// Observe records the actual duration of the idle period that just
	// ended, to refine future predictions.
	Observe(idle sim.Time)
	// Name identifies the policy.
	Name() string
}

// EWMA is the menu governor's prediction machinery, extracted so other
// layers can reuse it on their own signals: an exponentially weighted
// moving average over observations, corrected toward the most recent
// one when the pattern is irregular. The fleet control plane runs the
// identical estimator at cluster granularity — over per-epoch offered
// rates instead of per-core idle durations — so the predictive
// autoscaler and the per-core idle predictor share one set of dynamics
// (and one property suite for them).
type EWMA struct {
	// value is the running estimate; last the most recent observation.
	value, last float64
	// alpha is the EWMA weight of new observations.
	alpha float64
	// seeded reports whether any observation has arrived.
	seeded bool
}

// NewEWMA returns an estimator weighting each new observation by alpha.
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Observe folds one observation into the running estimate.
func (e *EWMA) Observe(v float64) {
	if !e.seeded {
		e.value = v
		e.seeded = true
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	e.last = v
}

// Seeded reports whether any observation has arrived.
func (e *EWMA) Seeded() bool { return e.seeded }

// Value returns the running EWMA estimate (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// PredictLow returns the estimate biased toward the smaller of (EWMA,
// last observation): when the signal just dropped, trust the drop — the
// menu governor's bias, where under-predicting idle depth costs a
// little power but over-predicting costs wake latency.
func (e *EWMA) PredictLow() float64 {
	p := e.value
	if e.last < p {
		p = (e.last + e.value) / 2
	}
	return p
}

// PredictHigh is the mirror bias toward the larger of (EWMA, last):
// when the signal just rose, trust the rise. This is the capacity-
// planning direction — under-predicting offered load costs SLO
// violations, over-predicting only costs some idle watts — exactly the
// asymmetry PredictLow encodes for idle durations, reflected.
func (e *EWMA) PredictHigh() float64 {
	p := e.value
	if e.last > p {
		p = (e.last + e.value) / 2
	}
	return p
}

// MenuGovernor predicts the next idle duration with an exponentially
// weighted moving average over recent idle periods, corrected toward the
// most recent observation when the pattern is irregular — a simplified
// Linux menu governor. It then picks the deepest enabled state whose
// target residency fits the prediction.
type MenuGovernor struct {
	catalog *cstate.Catalog
	// pred is the idle-duration estimator (ns observations).
	pred EWMA
}

// NewMenuGovernor returns a menu-style governor over the catalog.
func NewMenuGovernor(c *cstate.Catalog) *MenuGovernor {
	return &MenuGovernor{catalog: c, pred: EWMA{alpha: 0.3}}
}

// Name implements Governor.
func (g *MenuGovernor) Name() string { return "menu" }

// Predict returns the current idle-duration prediction in ns. Before any
// observation, it predicts pessimistically short (pick shallow), which is
// what hardware does on cold start.
func (g *MenuGovernor) Predict() sim.Time {
	if !g.pred.Seeded() {
		return 0
	}
	// Bias toward the shorter of (ewma, last): under-predicting depth
	// costs a little power; over-predicting costs latency, which is what
	// latency-critical deployments tune against.
	return sim.Time(g.pred.PredictLow())
}

// Select implements Governor.
func (g *MenuGovernor) Select(now sim.Time, menu []cstate.ID) cstate.ID {
	id, _ := g.catalog.DeepestByResidency(menu, g.Predict())
	return id
}

// Observe implements Governor.
func (g *MenuGovernor) Observe(idle sim.Time) {
	g.pred.Observe(float64(idle))
}

// StaticGovernor always selects the deepest state in the menu, ignoring
// residency targets. It models "performance-tuned" BIOS setups that trust
// a single state, and is also useful for upper-bound analyses.
type StaticGovernor struct {
	catalog *cstate.Catalog
}

// NewStaticGovernor returns a deepest-state governor.
func NewStaticGovernor(c *cstate.Catalog) *StaticGovernor {
	return &StaticGovernor{catalog: c}
}

// Name implements Governor.
func (g *StaticGovernor) Name() string { return "static-deepest" }

// Select implements Governor.
func (g *StaticGovernor) Select(now sim.Time, menu []cstate.ID) cstate.ID {
	id, _ := g.catalog.DeepestByResidency(menu, sim.MaxTime)
	return id
}

// Observe implements Governor.
func (g *StaticGovernor) Observe(sim.Time) {}

// LadderGovernor starts shallow and deepens one step each time an idle
// period overruns the next state's target residency, resetting on a
// short idle — the classic ladder policy kept for ablation studies.
type LadderGovernor struct {
	catalog *cstate.Catalog
	rung    int
	last    sim.Time
}

// NewLadderGovernor returns a ladder policy over the catalog.
func NewLadderGovernor(c *cstate.Catalog) *LadderGovernor {
	return &LadderGovernor{catalog: c}
}

// Name implements Governor.
func (g *LadderGovernor) Name() string { return "ladder" }

// Select implements Governor.
func (g *LadderGovernor) Select(now sim.Time, menu []cstate.ID) cstate.ID {
	if len(menu) == 0 {
		return cstate.C0
	}
	ordered := orderShallowToDeep(g.catalog, menu)
	if g.rung >= len(ordered) {
		g.rung = len(ordered) - 1
	}
	return ordered[g.rung]
}

// Observe implements Governor.
func (g *LadderGovernor) Observe(idle sim.Time) {
	// Promote when the last idle comfortably exceeded twice the current
	// state's target; demote on a short idle.
	if idle > g.last*2 || idle > 100*sim.Microsecond {
		g.rung++
	} else if idle < 5*sim.Microsecond && g.rung > 0 {
		g.rung--
	}
	g.last = idle
}

func orderShallowToDeep(c *cstate.Catalog, menu []cstate.ID) []cstate.ID {
	out := append([]cstate.ID(nil), menu...)
	// Insertion sort by descending power (shallowest = highest power).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && c.Params(out[j]).PowerWatts > c.Params(out[j-1]).PowerWatts; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Policy names accepted by New.
const (
	PolicyMenu   = "menu"
	PolicyStatic = "static-deepest"
	PolicyLadder = "ladder"
)

// New constructs a governor by policy name.
func New(policy string, c *cstate.Catalog) (Governor, error) {
	switch policy {
	case PolicyMenu:
		return NewMenuGovernor(c), nil
	case PolicyStatic:
		return NewStaticGovernor(c), nil
	case PolicyLadder:
		return NewLadderGovernor(c), nil
	case PolicyInterval:
		return NewIntervalGovernor(c), nil
	default:
		return nil, fmt.Errorf("governor: unknown policy %q", policy)
	}
}
