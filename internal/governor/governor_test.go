package governor

import (
	"testing"
	"testing/quick"

	"repro/internal/cstate"
	"repro/internal/sim"
)

func menuAll() []cstate.ID {
	return []cstate.ID{cstate.C1, cstate.C1E, cstate.C6}
}

func TestMenuGovernorColdStartShallow(t *testing.T) {
	g := NewMenuGovernor(cstate.Skylake())
	// No history: must pick the shallowest state.
	if id := g.Select(0, menuAll()); id != cstate.C1 {
		t.Fatalf("cold start selected %v, want C1", id)
	}
}

func TestMenuGovernorLearnsLongIdle(t *testing.T) {
	g := NewMenuGovernor(cstate.Skylake())
	for i := 0; i < 20; i++ {
		g.Observe(2 * sim.Millisecond)
	}
	if id := g.Select(0, menuAll()); id != cstate.C6 {
		t.Fatalf("after long idles selected %v, want C6", id)
	}
}

func TestMenuGovernorShortIdleStaysShallow(t *testing.T) {
	g := NewMenuGovernor(cstate.Skylake())
	for i := 0; i < 20; i++ {
		g.Observe(3 * sim.Microsecond)
	}
	if id := g.Select(0, menuAll()); id != cstate.C1 {
		t.Fatalf("short idles selected %v, want C1", id)
	}
}

func TestMenuGovernorMediumIdlePicksC1E(t *testing.T) {
	g := NewMenuGovernor(cstate.Skylake())
	for i := 0; i < 20; i++ {
		g.Observe(50 * sim.Microsecond)
	}
	if id := g.Select(0, menuAll()); id != cstate.C1E {
		t.Fatalf("50us idles selected %v, want C1E", id)
	}
}

func TestMenuGovernorReactsToShortBurst(t *testing.T) {
	g := NewMenuGovernor(cstate.Skylake())
	for i := 0; i < 20; i++ {
		g.Observe(2 * sim.Millisecond)
	}
	// A sudden short idle pulls the prediction down via the last-value
	// correction.
	g.Observe(2 * sim.Microsecond)
	if p := g.Predict(); p > sim.Millisecond {
		t.Fatalf("prediction %v did not react to short idle", p)
	}
}

func TestMenuGovernorAWMenu(t *testing.T) {
	g := NewMenuGovernor(cstate.Skylake())
	for i := 0; i < 20; i++ {
		g.Observe(30 * sim.Microsecond)
	}
	// AW menu: C6A admissible at 30us, C6AE needs 20us too, C6 needs 600.
	// Deepest admissible of {C6A, C6AE} is C6AE (0.23W).
	id := g.Select(0, []cstate.ID{cstate.C6A, cstate.C6AE, cstate.C6})
	if id != cstate.C6AE {
		t.Fatalf("selected %v, want C6AE", id)
	}
}

func TestStaticGovernorDeepest(t *testing.T) {
	g := NewStaticGovernor(cstate.Skylake())
	if id := g.Select(0, menuAll()); id != cstate.C6 {
		t.Fatalf("static selected %v, want C6", id)
	}
	if id := g.Select(0, []cstate.ID{cstate.C1}); id != cstate.C1 {
		t.Fatalf("static selected %v, want C1", id)
	}
	g.Observe(sim.Second) // must not panic / change anything
}

func TestLadderGovernorClimbs(t *testing.T) {
	g := NewLadderGovernor(cstate.Skylake())
	menu := menuAll()
	if id := g.Select(0, menu); id != cstate.C1 {
		t.Fatalf("ladder start = %v, want C1", id)
	}
	for i := 0; i < 5; i++ {
		g.Observe(sim.Millisecond)
	}
	if id := g.Select(0, menu); id != cstate.C6 {
		t.Fatalf("ladder after long idles = %v, want C6", id)
	}
	for i := 0; i < 5; i++ {
		g.Observe(sim.Microsecond)
	}
	if id := g.Select(0, menu); id != cstate.C1 {
		t.Fatalf("ladder after short idles = %v, want C1", id)
	}
}

func TestLadderEmptyMenu(t *testing.T) {
	g := NewLadderGovernor(cstate.Skylake())
	if id := g.Select(0, nil); id != cstate.C0 {
		t.Fatalf("empty menu = %v", id)
	}
}

func TestNewByName(t *testing.T) {
	c := cstate.Skylake()
	for _, p := range []string{PolicyMenu, PolicyStatic, PolicyLadder} {
		g, err := New(p, c)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != p {
			t.Fatalf("name %q != policy %q", g.Name(), p)
		}
	}
	if _, err := New("nope", c); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Property: every governor only ever selects states from the menu (or C0
// for an empty menu).
func TestPropertyGovernorsRespectMenu(t *testing.T) {
	c := cstate.Skylake()
	all := []cstate.ID{cstate.C1, cstate.C6A, cstate.C1E, cstate.C6AE, cstate.C6}
	f := func(mask uint8, idles []uint32) bool {
		var menu []cstate.ID
		for i, id := range all {
			if mask&(1<<i) != 0 {
				menu = append(menu, id)
			}
		}
		for _, policy := range []string{PolicyMenu, PolicyStatic, PolicyLadder, PolicyInterval} {
			g, _ := New(policy, c)
			for _, idle := range idles {
				g.Observe(sim.Time(idle))
				id := g.Select(0, menu)
				if len(menu) == 0 {
					if id != cstate.C0 {
						return false
					}
					continue
				}
				found := false
				for _, m := range menu {
					if m == id {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range AllConfigs() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := Config{Name: "mix", Menu: []cstate.ID{cstate.C1, cstate.C6A}}
	if err := bad.Validate(); err == nil {
		t.Error("mixed C1+C6A config passed validation")
	}
	bad2 := Config{Name: "c0", Menu: []cstate.ID{cstate.C0}}
	if err := bad2.Validate(); err == nil {
		t.Error("C0-in-menu config passed validation")
	}
}

func TestConfigByName(t *testing.T) {
	c, err := ConfigByName("NT_No_C6")
	if err != nil || c.Enabled(cstate.C6) || !c.Enabled(cstate.C1E) {
		t.Fatalf("NT_No_C6 lookup wrong: %+v err=%v", c, err)
	}
	if _, err := ConfigByName("bogus"); err == nil {
		t.Fatal("bogus config accepted")
	}
}

func TestPaperConfigSemantics(t *testing.T) {
	if !Baseline.Turbo || Baseline.AgileWatts {
		t.Error("Baseline must be Turbo-enabled, non-AW")
	}
	if !AW.Turbo || !AW.AgileWatts || AW.Enabled(cstate.C1) {
		t.Error("AW must be Turbo-enabled with C1 replaced")
	}
	if NTBaseline.Turbo {
		t.Error("NT_Baseline must disable Turbo")
	}
	if NTNoC6.Enabled(cstate.C6) || NTNoC6NoC1E.Enabled(cstate.C1E) {
		t.Error("disabled states present in tuned configs")
	}
	if !TC6ANoC6NoC1E.Enabled(cstate.C6A) || TC6ANoC6NoC1E.Enabled(cstate.C6) {
		t.Error("T_C6A config wrong")
	}
}
