package governor

import (
	"math"
	"testing"

	"repro/internal/cstate"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// TestMenuGovernorSelectionRespectsPredictionBound is the menu
// governor's core invariant: whatever the observation history, the
// selected state's target residency never exceeds the governor's
// prediction-adjusted bound — unless nothing in the menu qualifies, in
// which case the fallback must be the menu's shallowest state. The
// cases drive seeded random idle sequences through several menus, so
// failures reproduce exactly.
func TestMenuGovernorSelectionRespectsPredictionBound(t *testing.T) {
	cat := cstate.Skylake()
	menus := map[string][]cstate.ID{
		"legacy": {cstate.C1, cstate.C1E, cstate.C6},
		"aw":     {cstate.C6A, cstate.C6AE, cstate.C6},
		"mixed":  {cstate.C1, cstate.C6A, cstate.C1E, cstate.C6AE, cstate.C6},
		"single": {cstate.C6},
	}
	cases := []struct {
		name string
		seed uint64
		// meanIdle shapes the observation distribution (ns).
		meanIdle float64
		observes int
	}{
		{"short-idles", 1, 2e3, 200},
		{"medium-idles", 2, 50e3, 200},
		{"long-idles", 3, 2e6, 200},
		{"mixed-regime", 4, 100e3, 500},
	}
	shallowest := func(menu []cstate.ID) cstate.ID {
		best := menu[0]
		for _, id := range menu[1:] {
			if cat.Params(id).PowerWatts > cat.Params(best).PowerWatts {
				best = id
			}
		}
		return best
	}
	for _, tc := range cases {
		for menuName, menu := range menus {
			g := NewMenuGovernor(cat)
			r := xrand.NewStream(tc.seed, "menu-prop/"+tc.name+"/"+menuName)
			for i := 0; i < tc.observes; i++ {
				// Exponential idles around the regime mean, with occasional
				// 100x outliers to stress the last-value correction.
				idle := r.Exp(tc.meanIdle)
				if r.Bernoulli(0.05) {
					idle *= 100
				}
				g.Observe(sim.Time(idle))
				sel := g.Select(0, menu)
				bound := g.Predict()
				if cat.Params(sel).TargetResidency <= bound {
					continue // within the prediction-adjusted bound
				}
				// Over-bound selection is only legal as the shallowest
				// fallback when nothing in the menu fits the prediction.
				if sel != shallowest(menu) {
					t.Fatalf("%s/%s obs %d: selected %v (target %v) over prediction %v, and %v is not the shallowest fallback",
						tc.name, menuName, i, sel, cat.Params(sel).TargetResidency, bound, sel)
				}
				for _, id := range menu {
					if cat.Params(id).TargetResidency <= bound {
						t.Fatalf("%s/%s obs %d: fell back to %v although %v fits prediction %v",
							tc.name, menuName, i, sel, id, bound)
					}
				}
			}
		}
	}
}

// TestMenuGovernorEWMAConvergence pins the estimator's dynamics:
// observing a constant idle duration converges the EWMA to it
// geometrically (error shrinks by 1-alpha per step), and the prediction
// equals the observed value at convergence, from any starting history.
func TestMenuGovernorEWMAConvergence(t *testing.T) {
	cat := cstate.Skylake()
	cases := []struct {
		name    string
		warmup  []sim.Time // pre-convergence history
		target  sim.Time   // constant observation to converge to
		maxObs  int        // observations allowed to converge
		withinF float64    // relative tolerance at maxObs
	}{
		{"cold-to-50us", nil, 50 * sim.Microsecond, 1, 0},
		{"short-to-long", []sim.Time{2e3, 3e3, 2e3}, 2 * sim.Millisecond, 60, 1e-6},
		{"long-to-short", []sim.Time{5e6, 4e6, 6e6}, 10 * sim.Microsecond, 60, 1e-6},
		{"noisy-to-medium", []sim.Time{1e3, 9e6, 2e3, 8e6}, 100 * sim.Microsecond, 80, 1e-6},
	}
	for _, tc := range cases {
		g := NewMenuGovernor(cat)
		for _, w := range tc.warmup {
			g.Observe(w)
		}
		target := float64(tc.target)
		prevErr := math.Inf(1)
		for i := 0; i < tc.maxObs; i++ {
			g.Observe(tc.target)
			err := math.Abs(g.pred.Value() - target)
			// Monotone contraction: each constant observation must shrink
			// the EWMA error (strictly, until it hits float resolution).
			if err > prevErr {
				t.Fatalf("%s: EWMA error grew at obs %d: %g -> %g", tc.name, i, prevErr, err)
			}
			prevErr = err
		}
		if rel := prevErr / target; rel > tc.withinF {
			t.Errorf("%s: after %d constant observations EWMA off by %g (rel %g)",
				tc.name, tc.maxObs, prevErr, rel)
		}
		// At convergence last == ewma == target, so the prediction is the
		// observed idle itself.
		if tc.withinF == 0 {
			if got := g.Predict(); got != tc.target {
				t.Errorf("%s: cold-start Predict = %v, want %v", tc.name, got, tc.target)
			}
		} else if got := g.Predict(); math.Abs(float64(got)-target)/target > 1e-3 {
			t.Errorf("%s: converged Predict = %v, want ~%v", tc.name, got, tc.target)
		}
	}
}
