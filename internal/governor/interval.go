package governor

import (
	"math"

	"repro/internal/cstate"
	"repro/internal/sim"
)

// IntervalGovernor is a closer analogue of the Linux menu governor's
// "typical interval" detection: it keeps the last eight idle durations,
// repeatedly discards outliers beyond one standard deviation, and uses
// the surviving mean as its prediction. Irregular streams therefore
// predict short (stay shallow) while genuinely periodic idle patterns
// unlock deep states — exactly the behaviour the paper's baseline
// measurements reflect.
type IntervalGovernor struct {
	catalog *cstate.Catalog
	buf     [8]float64
	n       int
	pos     int
}

// NewIntervalGovernor returns an interval-buffer governor.
func NewIntervalGovernor(c *cstate.Catalog) *IntervalGovernor {
	return &IntervalGovernor{catalog: c}
}

// Name implements Governor.
func (g *IntervalGovernor) Name() string { return PolicyInterval }

// Observe implements Governor.
func (g *IntervalGovernor) Observe(idle sim.Time) {
	g.buf[g.pos] = float64(idle)
	g.pos = (g.pos + 1) % len(g.buf)
	if g.n < len(g.buf) {
		g.n++
	}
}

// Predict returns the typical-interval estimate in ns (0 before any
// observation, which keeps selection shallow).
func (g *IntervalGovernor) Predict() sim.Time {
	if g.n == 0 {
		return 0
	}
	vals := make([]float64, 0, g.n)
	vals = append(vals, g.buf[:g.n]...)
	// Outlier-trim up to three times, as the kernel does.
	for round := 0; round < 3 && len(vals) > 2; round++ {
		mean, sd := meanStd(vals)
		if sd <= mean/8 {
			// Stable pattern: trust the mean.
			return sim.Time(mean)
		}
		kept := vals[:0]
		for _, v := range vals {
			if math.Abs(v-mean) <= sd {
				kept = append(kept, v)
			}
		}
		if len(kept) == len(vals) {
			break
		}
		vals = kept
	}
	mean, sd := meanStd(vals)
	if sd > mean/2 {
		// Still irregular: predict conservatively short.
		return sim.Time(mean / 2)
	}
	return sim.Time(mean)
}

func meanStd(vals []float64) (mean, sd float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(vals)))
	return mean, sd
}

// Select implements Governor.
func (g *IntervalGovernor) Select(now sim.Time, menu []cstate.ID) cstate.ID {
	id, _ := g.catalog.DeepestByResidency(menu, g.Predict())
	return id
}

// PolicyInterval names the interval-buffer policy.
const PolicyInterval = "interval"
