package governor

import (
	"testing"

	"repro/internal/cstate"
	"repro/internal/sim"
)

func TestIntervalColdStartShallow(t *testing.T) {
	g := NewIntervalGovernor(cstate.Skylake())
	if id := g.Select(0, menuAll()); id != cstate.C1 {
		t.Fatalf("cold start = %v, want C1", id)
	}
}

func TestIntervalStablePatternGoesDeep(t *testing.T) {
	g := NewIntervalGovernor(cstate.Skylake())
	for i := 0; i < 8; i++ {
		g.Observe(2 * sim.Millisecond)
	}
	if id := g.Select(0, menuAll()); id != cstate.C6 {
		t.Fatalf("stable 2ms idles selected %v, want C6", id)
	}
}

func TestIntervalIrregularStaysShallow(t *testing.T) {
	g := NewIntervalGovernor(cstate.Skylake())
	// Wildly mixed durations: prediction must be conservative.
	durations := []sim.Time{
		3 * sim.Microsecond, 2 * sim.Millisecond, 5 * sim.Microsecond,
		900 * sim.Microsecond, 2 * sim.Microsecond, 1500 * sim.Microsecond,
		4 * sim.Microsecond, 800 * sim.Microsecond,
	}
	for _, d := range durations {
		g.Observe(d)
	}
	if id := g.Select(0, menuAll()); id == cstate.C6 {
		t.Fatal("irregular idles selected C6")
	}
}

func TestIntervalOutlierTrimming(t *testing.T) {
	g := NewIntervalGovernor(cstate.Skylake())
	// Seven short idles and one huge outlier: the outlier must not drag
	// the prediction into deep territory.
	for i := 0; i < 7; i++ {
		g.Observe(10 * sim.Microsecond)
	}
	g.Observe(50 * sim.Millisecond)
	p := g.Predict()
	if p > 100*sim.Microsecond {
		t.Fatalf("prediction %v not robust to outlier", p)
	}
}

func TestIntervalRingBuffer(t *testing.T) {
	g := NewIntervalGovernor(cstate.Skylake())
	// Old history must age out after 8 observations.
	for i := 0; i < 8; i++ {
		g.Observe(2 * sim.Microsecond)
	}
	for i := 0; i < 8; i++ {
		g.Observe(2 * sim.Millisecond)
	}
	if id := g.Select(0, menuAll()); id != cstate.C6 {
		t.Fatalf("ring buffer did not age out: %v", id)
	}
}

func TestIntervalViaFactory(t *testing.T) {
	g, err := New(PolicyInterval, cstate.Skylake())
	if err != nil || g.Name() != PolicyInterval {
		t.Fatalf("factory: %v %v", g, err)
	}
}
