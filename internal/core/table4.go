package core

import (
	"fmt"

	"repro/internal/sim"
)

// Table4Row is one entry of the paper's Table 4: a comparison of core
// power-gating schemes from the literature against AgileWatts.
type Table4Row struct {
	Technique       string
	CoreType        string
	Trigger         string
	PowerGatedBlock string
	WakeupOverhead  string
}

// Table4 returns the comparison table. The AW row's wake-up overhead is
// derived from the live UFPG model rather than hard-coded, so edits to
// the staggering configuration propagate here.
func Table4(u *UFPG) []Table4Row {
	wake := u.WakeLatency()
	return []Table4Row{
		{"[109] register-file retention", "In-order CPU", "Cache miss", "Register file", "5 cycles"},
		{"[102] MAPG", "In-order CPU", "Cache miss", "Core", "10ns"},
		{"[47] execution-unit gating", "OoO CPU", "Execution unit idle", "Execution units", "9 cycles"},
		{"[110] register bank gating", "OoO CPU", "Register file bank idle", "Register file bank", "17 cycles"},
		{"[111] GPU register gating", "GPU", "Register subarray unused", "Register subarray", "10 cycles"},
		{"[35] AVX gating", "OoO CPU", "AVX execution unit idle", "Intel AVX execution unit", "~10-15ns"},
		{"AW (This work)", "OoO CPU", "Core idle", "Most of core units",
			fmt.Sprintf("~%.0fns", float64(wake)/float64(sim.Nanosecond))},
	}
}
