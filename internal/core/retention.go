package core

// Context retention (Sec. 4.1.1–4.1.3): the ~8 KB of core context is
// retained in place through three techniques instead of being serialized
// to the uncore save/restore SRAM.

// RetentionTechnique identifies how a piece of context is retained.
type RetentionTechnique int

// Retention techniques.
const (
	// UngatedRegisters: unit registers relocated into the core's
	// power-ungated domain (execution units, ports, OoO engine).
	UngatedRegisters RetentionTechnique = iota
	// SRPG: state-retention power gates (shadow flip-flops on a
	// retention supply) for distributed context.
	SRPG
	// UngatedSRAM: the ~2 KB microcode-patch SRAM moved onto an ungated
	// supply.
	UngatedSRAM
)

func (t RetentionTechnique) String() string {
	switch t {
	case UngatedRegisters:
		return "ungated registers"
	case SRPG:
		return "SRPG flops"
	default:
		return "ungated SRAM"
	}
}

// ContextSlice is one portion of the retained core context.
type ContextSlice struct {
	Name      string
	Bytes     int
	Technique RetentionTechnique
	// AreaOverheadFrac is the extra area relative to the context/unit it
	// protects (<1 % for each technique per Sec. 5.1.1).
	AreaOverheadFrac float64
}

// Retention models the full in-place context-retention subsystem.
type Retention struct {
	Slices []ContextSlice

	// RetentionVoltagePowerW is the power of the full context at
	// retention voltage (paper: ~0.2 mW).
	RetentionVoltagePowerW float64

	// P1Multiplier / PnMultiplier conservatively scale retention power at
	// the base and minimum operating voltages (paper: x10 and x5).
	P1Multiplier, PnMultiplier float64
}

// NewRetention returns the paper's configuration: ~8 KB total context
// (estimated from the C6 save/restore footprint), of which ~2 KB is the
// microcode patch SRAM.
func NewRetention() *Retention {
	return &Retention{
		Slices: []ContextSlice{
			{Name: "exec+ports+ooo CSRs", Bytes: 3 * 1024, Technique: UngatedRegisters, AreaOverheadFrac: 0.01},
			{Name: "distributed unit state", Bytes: 3 * 1024, Technique: SRPG, AreaOverheadFrac: 0.01},
			{Name: "microcode patch SRAM", Bytes: 2 * 1024, Technique: UngatedSRAM, AreaOverheadFrac: 0.01},
		},
		RetentionVoltagePowerW: 0.0002,
		P1Multiplier:           10,
		PnMultiplier:           5,
	}
}

// TotalBytes returns the total retained context size (~8 KB).
func (r *Retention) TotalBytes() int {
	n := 0
	for _, s := range r.Slices {
		n += s.Bytes
	}
	return n
}

// PowerP1 returns the context-retention power at the P1 voltage
// (paper: ~2 mW).
func (r *Retention) PowerP1() float64 {
	return r.RetentionVoltagePowerW * r.P1Multiplier
}

// PowerPn returns the context-retention power at the Pn voltage
// (paper: ~1 mW).
func (r *Retention) PowerPn() float64 {
	return r.RetentionVoltagePowerW * r.PnMultiplier
}
