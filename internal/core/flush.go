package core

import "repro/internal/sim"

// C6Model reproduces the legacy C6 entry/exit latency analysis of Sec. 3
// (based on the x86 implementation in [11]): entry is dominated by the
// L1/L2 flush, whose duration depends on the dirty fraction and the core
// frequency; context save/restore to the uncore SRAM adds more.
type C6Model struct {
	// CacheBytes is the total private cache capacity to flush.
	CacheBytes int
	// LineBytes is the cache line size.
	LineBytes int
	// CleanLineCycles is the per-line cost to inspect/invalidate a clean
	// line during the flush walk.
	CleanLineCycles float64
	// DirtyLineExtraCycles is the additional per-line cost to write back
	// a dirty line.
	DirtyLineExtraCycles float64

	// ContextBytes is the core context serialized to the S/R SRAM (~8 KB).
	ContextBytes int
	// ContextCyclesPerByte is the microcode-driven save/restore cost.
	ContextCyclesPerByte float64

	// ControlOverhead covers the remaining entry control flow and
	// power-gate controller latency.
	ControlOverhead sim.Time

	// ExitHardware is the wake-up hardware latency: power-ungating, PLL
	// relock, reset and fuse propagation (~10 us).
	ExitHardware sim.Time
	// ExitRestore is the state and microcode restoration time (~20 us).
	ExitRestore sim.Time
}

// NewC6Model returns the paper-calibrated model: flushing a 50 % dirty
// 1.1 MB cache at 800 MHz takes ~75 us; saving ~8 KB of context at
// 800 MHz takes ~9 us; total entry ~87 us; exit ~30 us.
func NewC6Model() *C6Model {
	return &C6Model{
		CacheBytes:           1088 * 1024, // 32K L1I + 32K L1D + 1M L2
		LineBytes:            64,
		CleanLineCycles:      1,
		DirtyLineExtraCycles: 4.9,
		ContextBytes:         8 * 1024,
		ContextCyclesPerByte: 0.88,
		ControlOverhead:      3 * sim.Microsecond,
		ExitHardware:         10 * sim.Microsecond,
		ExitRestore:          20 * sim.Microsecond,
	}
}

// Lines returns the number of cache lines the flush walks.
func (m *C6Model) Lines() int { return m.CacheBytes / m.LineBytes }

// FlushTime returns the L1/L2 flush duration for the given dirty
// fraction (0..1) and core frequency in Hz.
func (m *C6Model) FlushTime(dirtyFraction, freqHz float64) sim.Time {
	if dirtyFraction < 0 {
		dirtyFraction = 0
	}
	if dirtyFraction > 1 {
		dirtyFraction = 1
	}
	cycles := float64(m.Lines()) * (m.CleanLineCycles + dirtyFraction*m.DirtyLineExtraCycles)
	return sim.Time(cycles / freqHz * 1e9)
}

// SaveTime returns the context save duration at the given frequency.
func (m *C6Model) SaveTime(freqHz float64) sim.Time {
	cycles := float64(m.ContextBytes) * m.ContextCyclesPerByte
	return sim.Time(cycles / freqHz * 1e9)
}

// EntryLatency returns the full C6 entry latency at the given dirty
// fraction and frequency (paper: ~87 us at 50 % dirty, 800 MHz).
func (m *C6Model) EntryLatency(dirtyFraction, freqHz float64) sim.Time {
	return m.FlushTime(dirtyFraction, freqHz) + m.SaveTime(freqHz) + m.ControlOverhead
}

// ExitLatency returns the C6 exit latency (paper: ~30 us).
func (m *C6Model) ExitLatency() sim.Time {
	return m.ExitHardware + m.ExitRestore
}

// RoundTrip returns entry followed by exit at the given conditions.
func (m *C6Model) RoundTrip(dirtyFraction, freqHz float64) sim.Time {
	return m.EntryLatency(dirtyFraction, freqHz) + m.ExitLatency()
}
