package core

import (
	"fmt"

	"repro/internal/sim"
)

// PMA models the power management agent's C6A controller: the finite
// state machine in the uncore that sequences the entry, exit and snoop
// flows of Fig. 6 at nanosecond granularity.
type PMA struct {
	// ClockHz is the power-management controller clock (Sec. 5.2
	// footnote: several hundred MHz; 500 MHz in the paper's estimate).
	ClockHz float64

	// UFPG supplies the staggered wake-up latency for step 5 of the exit
	// flow.
	UFPG *UFPG

	// CCSM supplies the snoop-path cycle counts.
	CCSM *CCSM

	// ControllerPowerW is the power the C6A FSM adds to the PMA
	// (Table 3: ~5 mW).
	ControllerPowerW float64

	// ControllerAreaOfPMA is the area the FSM adds relative to the PMA
	// (Table 3: up to 5 %).
	ControllerAreaOfPMA float64
}

// NewPMA returns the paper's PMA configuration wired to the given UFPG
// and CCSM models.
func NewPMA(u *UFPG, c *CCSM) *PMA {
	return &PMA{
		ClockHz:             500e6,
		UFPG:                u,
		CCSM:                c,
		ControllerPowerW:    0.005,
		ControllerAreaOfPMA: 0.05,
	}
}

// FlowStep is one step of a PMA control flow. A step costs an integer
// number of PMA clock cycles plus an optional fixed duration (used for
// the staggered power-ungate, which is bounded by analog settling rather
// than FSM cycles).
type FlowStep struct {
	Name   string
	Cycles int
	Fixed  sim.Time
	// NonBlocking steps (the parallel DVFS transition to Pn on C6AE
	// entry) proceed in the background and do not add to the flow
	// latency.
	NonBlocking bool
}

// Flow is an ordered sequence of steps.
type Flow struct {
	Name  string
	Steps []FlowStep
}

// Latency returns the blocking latency of the flow at the given clock.
func (f Flow) Latency(clockHz float64) sim.Time {
	var t sim.Time
	for _, s := range f.Steps {
		if s.NonBlocking {
			continue
		}
		t += cyclesToTime(s.Cycles, clockHz) + s.Fixed
	}
	return t
}

// BlockingCycles returns the total FSM cycles of blocking steps.
func (f Flow) BlockingCycles() int {
	n := 0
	for _, s := range f.Steps {
		if !s.NonBlocking {
			n += s.Cycles
		}
	}
	return n
}

// String renders the flow as "name: step(cycles) -> ...".
func (f Flow) String() string {
	out := f.Name + ":"
	for i, s := range f.Steps {
		if i > 0 {
			out += " ->"
		}
		out += fmt.Sprintf(" %s(%dcy", s.Name, s.Cycles)
		if s.Fixed > 0 {
			out += fmt.Sprintf("+%v", s.Fixed)
		}
		if s.NonBlocking {
			out += ", non-blocking"
		}
		out += ")"
	}
	return out
}

// EntryFlow returns the C6A (enhanced=false) or C6AE (enhanced=true)
// entry flow of Fig. 6, steps 1-3.
func (p *PMA) EntryFlow(enhanced bool) Flow {
	steps := []FlowStep{
		{Name: "clock-gate UFPG domains, keep PLL on", Cycles: 2},
	}
	if enhanced {
		steps = append(steps, FlowStep{
			Name: "initiate DVFS transition to Pn", Cycles: 0,
			Fixed: 30 * sim.Microsecond, NonBlocking: true,
		})
	}
	steps = append(steps,
		FlowStep{Name: "assert Ret, deassert Pwr (save context in place)", Cycles: 4},
		FlowStep{Name: "L1/L2 enter sleep-mode and clock-gate", Cycles: 3},
	)
	name := "C6A entry"
	if enhanced {
		name = "C6AE entry"
	}
	return Flow{Name: name, Steps: steps}
}

// ExitFlow returns the C6A/C6AE exit flow of Fig. 6, steps 4-6. The
// dominant term is the staggered power-ungate of the five UFPG zones.
func (p *PMA) ExitFlow() Flow {
	return Flow{Name: "C6A exit", Steps: []FlowStep{
		{Name: "clock-ungate L1/L2, exit sleep-mode", Cycles: 2},
		{Name: "power-ungate UFPG zones (staggered)", Cycles: 0, Fixed: p.UFPG.WakeLatency()},
		{Name: "deassert Ret (restore context)", Cycles: 1},
		{Name: "clock-ungate all domains", Cycles: 2},
	}}
}

// SnoopEnterFlow returns the flow that wakes the cache domain to serve
// snoops while resident in C6A (Fig. 6, step a).
func (p *PMA) SnoopEnterFlow() Flow {
	return Flow{Name: "C6A snoop wake", Steps: []FlowStep{
		{Name: "clock-ungate L1/L2, raise array voltage", Cycles: p.CCSM.SnoopWakeCycles},
	}}
}

// SnoopExitFlow returns the flow that returns the cache domain to sleep
// after snoop service (Fig. 6, step c).
func (p *PMA) SnoopExitFlow() Flow {
	return Flow{Name: "C6A snoop sleep", Steps: []FlowStep{
		{Name: "L1/L2 re-enter sleep-mode and clock-gate", Cycles: p.CCSM.SnoopSleepCycles},
	}}
}

// EntryLatency returns the blocking C6A/C6AE entry latency
// (paper Sec. 5.2.1: < 10 cycles, i.e. < 20 ns at 500 MHz).
func (p *PMA) EntryLatency(enhanced bool) sim.Time {
	return p.EntryFlow(enhanced).Latency(p.ClockHz)
}

// ExitLatency returns the C6A/C6AE exit latency
// (paper Sec. 5.2.2: ~5 cycles + < 70 ns staggered ungate, < 80 ns).
func (p *PMA) ExitLatency() sim.Time {
	return p.ExitFlow().Latency(p.ClockHz)
}

// RoundTripLatency returns entry followed by immediate exit
// (paper Sec. 5.2: < 100 ns total).
func (p *PMA) RoundTripLatency(enhanced bool) sim.Time {
	return p.EntryLatency(enhanced) + p.ExitLatency()
}
