package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDomainTreeValid(t *testing.T) {
	d := SkylakeCore()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGatedFractionsMatchPaper(t *testing.T) {
	d := SkylakeCore()
	area, leak := d.FractionGated()
	// Paper: UFPG+AVX gates cover ~70% of core area and ~70% of leakage.
	if area < 0.65 || area > 0.75 {
		t.Errorf("gated area = %.2f, want ~0.70", area)
	}
	if leak < 0.65 || leak > 0.75 {
		t.Errorf("gated leakage = %.2f, want ~0.70", leak)
	}
	uArea, uLeak := d.FractionUngated()
	if math.Abs(uArea+area-1) > 1e-9 || math.Abs(uLeak+leak-1) > 1e-9 {
		t.Error("gated + ungated fractions != 1")
	}
}

func TestDomainWalkVisitsAll(t *testing.T) {
	d := SkylakeCore()
	count := 0
	d.Walk(func(*Domain) { count++ })
	if count != 1+len(d.Children) {
		t.Errorf("walk visited %d nodes", count)
	}
}

func TestInvalidDomainDetected(t *testing.T) {
	d := &Domain{Name: "broken", Children: []*Domain{
		{Name: "half", AreaFraction: 0.5, LeakageFraction: 0.5},
	}}
	if err := d.Validate(); err == nil {
		t.Fatal("fractions summing to 0.5 passed validation")
	}
}

func TestGatingClassStrings(t *testing.T) {
	for _, g := range []GatingClass{GateUFPG, GateAVX, UngatedSleep, UngatedClockGated, AlwaysOn} {
		if g.String() == "" {
			t.Errorf("empty string for class %d", g)
		}
	}
}

func TestUFPGWakeLatencyUnder70ns(t *testing.T) {
	u := NewUFPG()
	lat := u.WakeLatency()
	// Paper Sec. 5.3: ~4.5x AVX capacitance over 15ns chunks => ~67.5ns.
	if lat > 70*sim.Nanosecond {
		t.Errorf("UFPG wake latency = %v, want < 70ns", lat)
	}
	if lat < 50*sim.Nanosecond {
		t.Errorf("UFPG wake latency = %v suspiciously low", lat)
	}
}

func TestUFPGCapacitanceMatches(t *testing.T) {
	u := NewUFPG()
	if c := u.TotalRelativeCapacitance(); math.Abs(c-4.5) > 0.01 {
		t.Errorf("total relative capacitance = %v, want ~4.5", c)
	}
	if len(u.Zones) != 5 {
		t.Errorf("zones = %d, want 5", len(u.Zones))
	}
}

func TestUFPGStaggeringBoundsInrush(t *testing.T) {
	u := NewUFPG()
	if err := u.CheckInrush(); err != nil {
		t.Fatal(err)
	}
	// Without staggering, in-rush would be ~4.5x the AVX envelope.
	if s := u.SimultaneousWakeInrush(); s < 4 {
		t.Errorf("simultaneous in-rush = %v, want ~4.5", s)
	}
	if u.PeakInrush() >= u.SimultaneousWakeInrush() {
		t.Error("staggering did not reduce peak in-rush")
	}
}

func TestUFPGScheduleSequential(t *testing.T) {
	u := NewUFPG()
	sched := u.WakeSchedule()
	for i := 1; i < len(sched); i++ {
		if sched[i].Start != sched[i-1].Ready {
			t.Fatalf("zone %d starts at %v, previous ready %v", i, sched[i].Start, sched[i-1].Ready)
		}
	}
}

func TestUFPGOversizedZoneViolatesInrush(t *testing.T) {
	u := NewUFPG()
	// Waking the whole 4.5x-AVX region in a single AVX-sized window
	// (i.e. no staggering) must trip the in-rush check.
	u.Zones = []Zone{{Name: "all", RelativeCapacitance: 4.5, WindowOverride: u.PerZoneStagger}}
	if err := u.CheckInrush(); err == nil {
		t.Fatal("non-staggered 4.5x wake passed in-rush check")
	}
	if u.WakeLatency() != u.PerZoneStagger {
		t.Fatal("window override not honored")
	}
}

func TestUFPGResidualLeakage(t *testing.T) {
	u := NewUFPG()
	lo, hi := u.ResidualLeakage(1.44, 0.70)
	// Paper: ~30-50 mW at P1.
	if lo < 0.025 || lo > 0.035 {
		t.Errorf("residual leakage lo = %v W, want ~0.030", lo)
	}
	if hi < 0.045 || hi > 0.055 {
		t.Errorf("residual leakage hi = %v W, want ~0.050", hi)
	}
	lo, hi = u.ResidualLeakage(0.88, 0.70)
	if lo < 0.015 || hi > 0.035 {
		t.Errorf("Pn residual leakage = [%v, %v], want ~[0.018, 0.031]", lo, hi)
	}
}

func TestRetentionMatchesPaper(t *testing.T) {
	r := NewRetention()
	if r.TotalBytes() != 8*1024 {
		t.Errorf("context = %d bytes, want 8KB", r.TotalBytes())
	}
	if p := r.PowerP1(); math.Abs(p-0.002) > 1e-9 {
		t.Errorf("P1 retention power = %v, want 2mW", p)
	}
	if p := r.PowerPn(); math.Abs(p-0.001) > 1e-9 {
		t.Errorf("Pn retention power = %v, want 1mW", p)
	}
	for _, tech := range []RetentionTechnique{UngatedRegisters, SRPG, UngatedSRAM} {
		if tech.String() == "" {
			t.Error("empty technique string")
		}
	}
	// The microcode patch SRAM (~2KB) must use the ungated-SRAM technique.
	found := false
	for _, s := range r.Slices {
		if s.Technique == UngatedSRAM && s.Bytes == 2*1024 {
			found = true
		}
	}
	if !found {
		t.Error("no 2KB ungated microcode SRAM slice")
	}
}

func TestCCSMLeakageMatchesTable3(t *testing.T) {
	c := NewCCSM()
	if b := c.PrivateCacheBytes(); b != 1088*1024 {
		t.Errorf("cache bytes = %d", b)
	}
	p1 := c.DataArraySleepLeakageP1()
	if math.Abs(p1-0.055) > 0.003 {
		t.Errorf("data array sleep leakage P1 = %v, want ~55mW", p1)
	}
	pn := c.DataArraySleepLeakagePn()
	if math.Abs(pn-0.040) > 0.003 {
		t.Errorf("data array sleep leakage Pn = %v, want ~40mW", pn)
	}
	if tot := c.TotalSleepPowerP1(); math.Abs(tot-0.110) > 0.005 {
		t.Errorf("total sleep power P1 = %v, want ~110mW", tot)
	}
	if tot := c.TotalSleepPowerPn(); math.Abs(tot-0.073) > 0.005 {
		t.Errorf("total sleep power Pn = %v, want ~73mW", tot)
	}
}

func TestCCSMSnoopOverheadSmall(t *testing.T) {
	c := NewCCSM()
	oh := c.SnoopServiceOverhead(500e6)
	// 2 cycles at 500 MHz = 4ns: negligible vs C1 snoop handling.
	if oh != 4*sim.Nanosecond {
		t.Errorf("snoop overhead = %v, want 4ns", oh)
	}
}

func TestCCSMAreaOverhead(t *testing.T) {
	c := NewCCSM()
	lo, hi := c.AreaOverheadOfCore(0.30)
	if lo < 0.004 || hi > 0.02 {
		t.Errorf("sleep-transistor area overhead = [%v, %v]", lo, hi)
	}
}

func TestPMAEntryLatencyUnder20ns(t *testing.T) {
	a := NewArchitecture()
	if lat := a.PMA.EntryLatency(false); lat >= 20*sim.Nanosecond {
		t.Errorf("C6A entry = %v, want < 20ns", lat)
	}
	if cy := a.PMA.EntryFlow(false).BlockingCycles(); cy >= 10 {
		t.Errorf("entry cycles = %d, want < 10", cy)
	}
}

func TestPMAExitLatencyUnder80ns(t *testing.T) {
	a := NewArchitecture()
	if lat := a.PMA.ExitLatency(); lat >= 80*sim.Nanosecond {
		t.Errorf("C6A exit = %v, want < 80ns", lat)
	}
}

func TestPMARoundTripUnder100ns(t *testing.T) {
	a := NewArchitecture()
	for _, enhanced := range []bool{false, true} {
		if rt := a.PMA.RoundTripLatency(enhanced); rt >= 100*sim.Nanosecond {
			t.Errorf("round trip (enhanced=%v) = %v, want < 100ns", enhanced, rt)
		}
	}
}

func TestC6AEEntryDVFSNonBlocking(t *testing.T) {
	a := NewArchitecture()
	// The DVFS transition to Pn is non-blocking: C6AE entry latency must
	// equal C6A's despite the extra step.
	if a.PMA.EntryLatency(true) != a.PMA.EntryLatency(false) {
		t.Error("C6AE entry latency differs from C6A (DVFS must not block)")
	}
	flow := a.PMA.EntryFlow(true)
	hasDVFS := false
	for _, s := range flow.Steps {
		if s.NonBlocking {
			hasDVFS = true
		}
	}
	if !hasDVFS {
		t.Error("C6AE entry flow missing non-blocking DVFS step")
	}
	if !strings.Contains(flow.String(), "non-blocking") {
		t.Error("flow String does not render non-blocking step")
	}
}

func TestSnoopFlows(t *testing.T) {
	a := NewArchitecture()
	enter := a.PMA.SnoopEnterFlow().Latency(a.PMA.ClockHz)
	exit := a.PMA.SnoopExitFlow().Latency(a.PMA.ClockHz)
	if enter != 4*sim.Nanosecond {
		t.Errorf("snoop enter = %v, want 4ns (2 cycles)", enter)
	}
	if exit != 6*sim.Nanosecond {
		t.Errorf("snoop exit = %v, want 6ns (3 cycles)", exit)
	}
}

func TestC6FlushCalibration(t *testing.T) {
	m := NewC6Model()
	// Paper: flushing a 50% dirty cache at 800 MHz takes ~75us.
	ft := m.FlushTime(0.5, 800e6)
	if ft < 70*sim.Microsecond || ft > 80*sim.Microsecond {
		t.Errorf("flush(0.5, 800MHz) = %v, want ~75us", ft)
	}
	// Save to S/R SRAM at 800 MHz ~9us.
	st := m.SaveTime(800e6)
	if st < 8*sim.Microsecond || st > 10*sim.Microsecond {
		t.Errorf("save = %v, want ~9us", st)
	}
	// Total entry ~87us.
	et := m.EntryLatency(0.5, 800e6)
	if et < 82*sim.Microsecond || et > 92*sim.Microsecond {
		t.Errorf("entry = %v, want ~87us", et)
	}
	// Exit ~30us.
	if xt := m.ExitLatency(); xt != 30*sim.Microsecond {
		t.Errorf("exit = %v, want 30us", xt)
	}
}

func TestC6FlushScalesWithDirtiness(t *testing.T) {
	m := NewC6Model()
	clean := m.FlushTime(0, 800e6)
	dirty := m.FlushTime(1, 800e6)
	if clean >= dirty {
		t.Error("flush time not increasing with dirty fraction")
	}
	// Clamping.
	if m.FlushTime(-1, 800e6) != clean || m.FlushTime(2, 800e6) != dirty {
		t.Error("dirty fraction not clamped")
	}
	// Faster clock flushes faster.
	if m.FlushTime(0.5, 2.2e9) >= m.FlushTime(0.5, 800e6) {
		t.Error("flush time not decreasing with frequency")
	}
}

func TestFIVRModel(t *testing.T) {
	f := NewFIVR()
	if f.ConversionLoss(0) != 0 || f.ConversionLoss(-1) != 0 {
		t.Error("no-load conversion loss must be 0")
	}
	// 80% efficiency: delivering 0.16W loses 0.04W.
	if loss := f.ConversionLoss(0.16); math.Abs(loss-0.04) > 1e-9 {
		t.Errorf("conversion loss = %v, want 0.04", loss)
	}
	oh := f.IdleOverhead(0.16)
	if math.Abs(oh-(0.04+0.100+0.007)) > 1e-9 {
		t.Errorf("idle overhead = %v", oh)
	}
}

func TestC6APowerRangeMatchesTable3(t *testing.T) {
	a := NewArchitecture()
	lo, hi := a.C6APowerRange()
	// Paper Table 3 overall: 290-315 mW.
	if lo < 0.280 || lo > 0.300 {
		t.Errorf("C6A power lo = %.3f W, want ~0.290", lo)
	}
	if hi < 0.305 || hi > 0.325 {
		t.Errorf("C6A power hi = %.3f W, want ~0.315", hi)
	}
	mid := a.C6APower()
	if math.Abs(mid-0.30) > 0.015 {
		t.Errorf("C6A midpoint = %.3f, want ~0.30 (Table 1)", mid)
	}
}

func TestC6AEPowerRangeMatchesTable3(t *testing.T) {
	a := NewArchitecture()
	lo, hi := a.C6AEPowerRange()
	// Paper Table 3 overall: 227-243 mW.
	if lo < 0.217 || lo > 0.237 {
		t.Errorf("C6AE power lo = %.3f W, want ~0.227", lo)
	}
	if hi < 0.233 || hi > 0.253 {
		t.Errorf("C6AE power hi = %.3f W, want ~0.243", hi)
	}
}

func TestC6AEAlwaysBelowC6A(t *testing.T) {
	a := NewArchitecture()
	loA, hiA := a.C6APowerRange()
	loE, hiE := a.C6AEPowerRange()
	if loE >= loA || hiE >= hiA {
		t.Error("C6AE power not strictly below C6A")
	}
}

func TestAreaOverheadRange(t *testing.T) {
	a := NewArchitecture()
	lo, hi := a.AreaOverheadRange()
	// Paper Table 3 overall: 3-7% of core area.
	if lo < 0.015 || lo > 0.035 {
		t.Errorf("area overhead lo = %.3f, want ~0.02-0.03", lo)
	}
	if hi < 0.05 || hi > 0.08 {
		t.Errorf("area overhead hi = %.3f, want ~0.06-0.07", hi)
	}
}

func TestLatencies900x(t *testing.T) {
	a := NewArchitecture()
	// Paper evaluates the speedup at the C6 worst case: 50% dirty cache
	// flushed at the 800 MHz minimum frequency.
	lat := a.Latencies(0.5, 800e6)
	if lat.SpeedupVsC6 < 800 || lat.SpeedupVsC6 > 1400 {
		t.Errorf("speedup vs C6 = %.0f, want ~900-1300x", lat.SpeedupVsC6)
	}
	if lat.C6ARoundTrip >= 100*sim.Nanosecond {
		t.Errorf("C6A round trip = %v, want < 100ns", lat.C6ARoundTrip)
	}
	if lat.C6RoundTrip < 100*sim.Microsecond {
		t.Errorf("C6 round trip = %v, want > 100us", lat.C6RoundTrip)
	}
}

func TestTable3RowsCoverAllComponents(t *testing.T) {
	a := NewArchitecture()
	rows := a.Table3()
	if len(rows) != 9 {
		t.Fatalf("Table 3 has %d rows, want 9", len(rows))
	}
	var sumLoA, sumHiA, sumLoE, sumHiE float64
	for _, r := range rows[:len(rows)-1] {
		sumLoA += r.C6APowerW[0]
		sumHiA += r.C6APowerW[1]
		sumLoE += r.C6AEPowerW[0]
		sumHiE += r.C6AEPowerW[1]
		if r.C6APowerW[0] > r.C6APowerW[1] || r.C6AEPowerW[0] > r.C6AEPowerW[1] {
			t.Errorf("row %q has lo > hi", r.SubComponent)
		}
	}
	overall := rows[len(rows)-1]
	if overall.Component != "Overall" {
		t.Fatal("last row is not the overall row")
	}
	if math.Abs(sumLoA-overall.C6APowerW[0]) > 1e-9 || math.Abs(sumHiA-overall.C6APowerW[1]) > 1e-9 {
		t.Error("C6A component rows do not sum to overall")
	}
	if math.Abs(sumLoE-overall.C6AEPowerW[0]) > 1e-9 || math.Abs(sumHiE-overall.C6AEPowerW[1]) > 1e-9 {
		t.Error("C6AE component rows do not sum to overall")
	}
}

func TestTable4AWRowDerived(t *testing.T) {
	rows := Table4(NewUFPG())
	last := rows[len(rows)-1]
	if last.Technique != "AW (This work)" {
		t.Fatal("AW row missing")
	}
	if !strings.Contains(last.WakeupOverhead, "68ns") && !strings.Contains(last.WakeupOverhead, "75ns") &&
		!strings.Contains(last.WakeupOverhead, "70ns") {
		t.Errorf("AW wake-up overhead %q not derived near 70ns", last.WakeupOverhead)
	}
	if len(rows) != 7 {
		t.Errorf("table 4 rows = %d, want 7", len(rows))
	}
}

func TestSnoopPowerDeltas(t *testing.T) {
	a := NewArchitecture()
	if a.SnoopPowerDeltaC1W != 0.050 || a.SnoopPowerDeltaC6AW != 0.120 {
		t.Error("snoop power deltas do not match Sec. 7.5")
	}
}

// Property: flush time is monotone non-decreasing in dirty fraction for
// any frequency.
func TestPropertyFlushMonotone(t *testing.T) {
	m := NewC6Model()
	f := func(d1, d2 float64, fMHz uint16) bool {
		freq := float64(fMHz%3000+200) * 1e6
		a := math.Mod(math.Abs(d1), 1)
		b := math.Mod(math.Abs(d2), 1)
		if a > b {
			a, b = b, a
		}
		return m.FlushTime(a, freq) <= m.FlushTime(b, freq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total power ranges scale monotonically with residual leakage
// bounds.
func TestPropertyPowerMonotoneInLeakage(t *testing.T) {
	f := func(bump uint8) bool {
		a := NewArchitecture()
		base, _ := a.C6APowerRange()
		a.UFPG.ResidualLeakageLo += float64(bump%50) / 1000
		lo, _ := a.C6APowerRange()
		return lo >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
