package core

import (
	"math"

	"fmt"

	"repro/internal/sim"
)

// UFPG models Units' Fast Power-Gating (Sec. 4.1, 5.1.1, 5.3): the
// medium-grain power gates covering ~70 % of core area, split into five
// zones whose wake-up is staggered to bound in-rush current.
type UFPG struct {
	// Zones are the independently sequenced power-gate regions.
	Zones []Zone

	// ResidualLeakageLo/Hi is the fraction of gated leakage that the
	// power gates fail to eliminate (paper: 3–5 %).
	ResidualLeakageLo, ResidualLeakageHi float64

	// GateAreaOverheadLo/Hi is the extra area the gates add relative to
	// the gated logic (paper: 2–6 %).
	GateAreaOverheadLo, GateAreaOverheadHi float64

	// PerZoneStagger is the daisy-chained switch-cell wake time budget
	// per zone (paper: ≤15 ns, matching the AVX gates).
	PerZoneStagger sim.Time

	// InrushLimit is the maximum tolerable normalized in-rush current,
	// expressed in units of "one AVX power-gate waking over 15 ns" — the
	// envelope Skylake silicon already tolerates.
	InrushLimit float64
}

// Zone is one staggered power-gate region.
type Zone struct {
	Name string
	// RelativeCapacitance is the zone's area+capacitance relative to the
	// AVX units (the paper's UFPG region totals ~4.5x AVX).
	RelativeCapacitance float64
	// WindowOverride forces the zone's wake window instead of the
	// capacitance-proportional default. Used to model mis-configured
	// (too aggressive) staggering in what-if analyses; 0 means auto.
	WindowOverride sim.Time
}

// NewUFPG returns the paper's five-zone configuration: the UFPG region
// has ~4.5x the area/capacitance of the AVX units, divided into five
// zones each smaller than one AVX gate.
func NewUFPG() *UFPG {
	return &UFPG{
		Zones: []Zone{
			{Name: "front-end", RelativeCapacitance: 0.9},
			{Name: "ooo-engine", RelativeCapacitance: 0.9},
			{Name: "int-exec", RelativeCapacitance: 0.9},
			{Name: "load-store", RelativeCapacitance: 0.9},
			{Name: "misc-units", RelativeCapacitance: 0.9},
		},
		ResidualLeakageLo:  0.03,
		ResidualLeakageHi:  0.05,
		GateAreaOverheadLo: 0.02,
		GateAreaOverheadHi: 0.06,
		PerZoneStagger:     15 * sim.Nanosecond,
		InrushLimit:        1.0,
	}
}

// TotalRelativeCapacitance returns the summed zone capacitance in AVX
// units (~4.5 in the paper's configuration).
func (u *UFPG) TotalRelativeCapacitance() float64 {
	s := 0.0
	for _, z := range u.Zones {
		s += z.RelativeCapacitance
	}
	return s
}

// WakeSchedule returns, for each zone in order, the time offset at which
// its sleep signal (SlpZone_i) is deasserted and the time at which its
// chain reports ready. Zones wake strictly sequentially (Sec. 5.3).
type WakeStep struct {
	Zone  string
	Start sim.Time
	Ready sim.Time
	// PeakInrush is the normalized in-rush current while this zone's
	// switch chain conducts: capacitance charged over the stagger window.
	PeakInrush float64
}

// WakeSchedule computes the staggered wake-up plan. Each zone's
// switch-cell daisy chain is sized so its wake window scales with its
// capacitance relative to one AVX gate (Sec. 5.3: the full 4.5x-AVX UFPG
// region staggers over 4.5 x 15 ns ≈ 67.5 ns), which keeps the charge
// rate — and hence in-rush current — within the AVX envelope.
func (u *UFPG) WakeSchedule() []WakeStep {
	steps := make([]WakeStep, 0, len(u.Zones))
	cum := 0.0
	prevReady := sim.Time(0)
	for _, z := range u.Zones {
		var durNS float64
		if z.WindowOverride != 0 {
			durNS = float64(z.WindowOverride)
		} else {
			durNS = float64(u.PerZoneStagger) * z.RelativeCapacitance
		}
		// Normalized in-rush: capacitance charged per AVX-equivalent
		// window. 1.0 means "same peak current as one AVX gate wake".
		inrush := z.RelativeCapacitance * float64(u.PerZoneStagger) / durNS
		cum += durNS
		ready := sim.Time(math.Round(cum))
		steps = append(steps, WakeStep{
			Zone:       z.Name,
			Start:      prevReady,
			Ready:      ready,
			PeakInrush: inrush,
		})
		prevReady = ready
	}
	return steps
}

// WakeLatency returns the total staggered wake-up time for all zones
// (paper: ~4.5 x 15 ns ≈ 67.5 ns, i.e. < 70 ns).
func (u *UFPG) WakeLatency() sim.Time {
	var t sim.Time
	for _, s := range u.WakeSchedule() {
		if s.Ready > t {
			t = s.Ready
		}
	}
	return t
}

// PeakInrush returns the maximum normalized in-rush current over the
// schedule. A correct configuration keeps it at or below InrushLimit.
func (u *UFPG) PeakInrush() float64 {
	peak := 0.0
	for _, s := range u.WakeSchedule() {
		if s.PeakInrush > peak {
			peak = s.PeakInrush
		}
	}
	return peak
}

// CheckInrush verifies that the staggered schedule keeps in-rush within
// the AVX-equivalent envelope.
func (u *UFPG) CheckInrush() error {
	if p := u.PeakInrush(); p > u.InrushLimit+1e-9 {
		return fmt.Errorf("core: peak in-rush %.2f exceeds limit %.2f", p, u.InrushLimit)
	}
	return nil
}

// SimultaneousWakeInrush returns the in-rush current if all zones woke at
// once (the design hazard staggering avoids): the full ~4.5x AVX
// capacitance in one window.
func (u *UFPG) SimultaneousWakeInrush() float64 {
	return u.TotalRelativeCapacitance()
}

// ResidualLeakage returns the [lo, hi] residual leakage power (watts) of
// the gated domain given the total core leakage (watts) and the fraction
// of core leakage behind gates (paper: ~70 %, giving 30–50 mW at P1).
func (u *UFPG) ResidualLeakage(coreLeakageW, gatedLeakageFraction float64) (lo, hi float64) {
	gated := coreLeakageW * gatedLeakageFraction
	return gated * u.ResidualLeakageLo, gated * u.ResidualLeakageHi
}

// GateAreaOverhead returns the [lo, hi] area overhead as a fraction of
// total core area, given the gated area fraction (~70 %).
func (u *UFPG) GateAreaOverhead(gatedAreaFraction float64) (lo, hi float64) {
	return gatedAreaFraction * u.GateAreaOverheadLo, gatedAreaFraction * u.GateAreaOverheadHi
}
