package core

import "repro/internal/sim"

// CCSM models the Cache Coherence and Sleep Mode subsystem (Sec. 4.2,
// 5.1.2): the private L1/L2 caches stay power-ungated with their data
// arrays on sleep transistors, and a small always-on detector wakes the
// cache domain to serve snoops.
type CCSM struct {
	// L1IBytes, L1DBytes, L2Bytes are the private cache capacities
	// (paper: cumulative ~1.1 MB on Skylake server).
	L1IBytes, L1DBytes, L2Bytes int

	// ReferenceLeakageW is the sleep-mode leakage of the reference
	// design: Intel's 2.5 MB 22 nm L3 slice with sleep transistors
	// ([72, 98]).
	ReferenceLeakageW float64
	// ReferenceBytes is the capacity of that reference slice.
	ReferenceBytes int
	// NodeScale is the leakage scaling factor from 22 nm to the 14 nm
	// Skylake node per [99]: alpha*beta with alpha ~0.7, beta = 1.
	NodeScale float64

	// RestLeakageP1W / RestLeakagePnW is the leakage of the rest of the
	// power-ungated memory subsystem (tags, state, controllers) at the
	// P1 and Pn voltage levels (Table 3: 55 mW / 33 mW).
	RestLeakageP1W, RestLeakagePnW float64

	// SleepEfficiencyPnScale scales the data-array sleep-mode leakage at
	// the Pn voltage: the sleep transistor acts as a linear regulator, so
	// a lower input voltage improves its efficiency (Table 3: 55 -> 40 mW).
	SleepEfficiencyPnScale float64

	// SleepAreaOverheadLo/Hi is the sleep-transistor area overhead on the
	// data array (2-6 %, like power gates).
	SleepAreaOverheadLo, SleepAreaOverheadHi float64

	// DataArrayFraction is the share of cache area that is data array and
	// therefore in sleep-mode (>90 %; tags/state stay at nominal voltage,
	// which hides the wake-up latency — zero performance cost).
	DataArrayFraction float64

	// SnoopWakeCycles / SnoopSleepCycles are the PMA-clock cycles to
	// bring L1/L2 out of / back into sleep-mode around snoop service
	// (Sec. 5.2.3: 2 cycles out, 1-3 cycles back).
	SnoopWakeCycles, SnoopSleepCycles int
}

// NewCCSM returns the paper's calibrated CCSM configuration.
func NewCCSM() *CCSM {
	return &CCSM{
		L1IBytes:               32 * 1024,
		L1DBytes:               32 * 1024,
		L2Bytes:                1024 * 1024,
		ReferenceLeakageW:      0.185, // 2.5 MB 22nm L3 slice in sleep mode
		ReferenceBytes:         2560 * 1024,
		NodeScale:              0.7,
		RestLeakageP1W:         0.055,
		RestLeakagePnW:         0.033,
		SleepEfficiencyPnScale: 40.0 / 55.0,
		SleepAreaOverheadLo:    0.02,
		SleepAreaOverheadHi:    0.06,
		DataArrayFraction:      0.90,
		SnoopWakeCycles:        2,
		SnoopSleepCycles:       3,
	}
}

// PrivateCacheBytes returns the cumulative L1I+L1D+L2 capacity.
func (c *CCSM) PrivateCacheBytes() int {
	return c.L1IBytes + c.L1DBytes + c.L2Bytes
}

// DataArraySleepLeakageP1 returns the sleep-mode leakage (watts) of the
// L1/L2 data arrays at the P1 voltage, scaled from the 22 nm reference by
// capacity and technology node (Table 3: ~55 mW).
func (c *CCSM) DataArraySleepLeakageP1() float64 {
	capScale := float64(c.PrivateCacheBytes()) / float64(c.ReferenceBytes)
	return c.ReferenceLeakageW * capScale * c.NodeScale
}

// DataArraySleepLeakagePn returns the same at the Pn voltage
// (Table 3: ~40 mW, thanks to higher sleep-transistor efficiency).
func (c *CCSM) DataArraySleepLeakagePn() float64 {
	return c.DataArraySleepLeakageP1() * c.SleepEfficiencyPnScale
}

// TotalSleepPowerP1 returns data-array + rest-of-subsystem leakage at P1
// (Table 3: ~110 mW).
func (c *CCSM) TotalSleepPowerP1() float64 {
	return c.DataArraySleepLeakageP1() + c.RestLeakageP1W
}

// TotalSleepPowerPn returns the same at Pn (Table 3: ~73 mW).
func (c *CCSM) TotalSleepPowerPn() float64 {
	return c.DataArraySleepLeakagePn() + c.RestLeakagePnW
}

// AreaOverheadOfCore returns the [lo, hi] sleep-transistor area overhead
// as a fraction of total core area, given the cache-domain share of core
// area (~30 % per the die photo, ~90 % of which is data array).
func (c *CCSM) AreaOverheadOfCore(cacheAreaFraction float64) (lo, hi float64) {
	array := cacheAreaFraction * c.DataArrayFraction
	return array * c.SleepAreaOverheadLo, array * c.SleepAreaOverheadHi
}

// SnoopServiceOverhead returns the extra latency a snoop experiences when
// it finds the core in C6A/C6AE rather than C1: the cycles to exit and
// re-enter sleep mode at the PMA clock. The tag access itself proceeds at
// nominal voltage in parallel with the data-array wake (Sec. 5.1.2), so
// only the clock-ungate handshake is exposed.
func (c *CCSM) SnoopServiceOverhead(pmaClockHz float64) sim.Time {
	cycles := c.SnoopWakeCycles
	return cyclesToTime(cycles, pmaClockHz)
}

func cyclesToTime(cycles int, clockHz float64) sim.Time {
	return sim.Time(float64(cycles) / clockHz * 1e9)
}
