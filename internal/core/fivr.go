package core

// FIVR models the fully-integrated voltage regulator and the ADPLL clock
// generator that AgileWatts keeps powered in C6A/C6AE (Sec. 5.1.4).
type FIVR struct {
	// LightLoadEfficiency is the FIVR power-conversion efficiency at
	// light load, excluding static losses (paper: ~80 %).
	LightLoadEfficiency float64
	// StaticLossW is the control/feedback power that applies even at 0 V
	// output (paper: ~100 mW per core).
	StaticLossW float64
	// ADPLLPowerW is the all-digital PLL power, fixed across V/F levels
	// (paper: 7 mW).
	ADPLLPowerW float64
}

// NewFIVR returns the paper's Skylake FIVR/ADPLL parameters.
func NewFIVR() *FIVR {
	return &FIVR{
		LightLoadEfficiency: 0.80,
		StaticLossW:         0.100,
		ADPLLPowerW:         0.007,
	}
}

// ConversionLoss returns the dynamic conversion loss (watts) for
// delivering loadW through the regulator at light load:
// input = load/efficiency, so loss = load*(1/eff - 1).
func (f *FIVR) ConversionLoss(loadW float64) float64 {
	if loadW <= 0 {
		return 0
	}
	return loadW * (1/f.LightLoadEfficiency - 1)
}

// IdleOverhead returns the total always-on power AW pays in C6A/C6AE for
// the given regulated load: conversion loss + static loss + ADPLL.
func (f *FIVR) IdleOverhead(loadW float64) float64 {
	return f.ConversionLoss(loadW) + f.StaticLossW + f.ADPLLPowerW
}
