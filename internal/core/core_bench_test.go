package core

import "testing"

// BenchmarkPMALatency measures the cost of deriving the C6A entry/exit
// latencies from the flow model.
func BenchmarkPMALatency(b *testing.B) {
	a := NewArchitecture()
	for i := 0; i < b.N; i++ {
		_ = a.PMA.RoundTripLatency(false)
	}
}

// BenchmarkTable3Derivation measures the full PPA table build.
func BenchmarkTable3Derivation(b *testing.B) {
	a := NewArchitecture()
	for i := 0; i < b.N; i++ {
		_ = a.Table3()
	}
}

// BenchmarkFlushModel measures the C6 flush-latency computation.
func BenchmarkFlushModel(b *testing.B) {
	m := NewC6Model()
	for i := 0; i < b.N; i++ {
		_ = m.EntryLatency(0.5, 800e6)
	}
}
