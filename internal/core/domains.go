// Package core models the AgileWatts CPU-core microarchitecture: the
// power-domain structure of a Skylake-like server core, Units' Fast
// Power-Gating (UFPG) with staggered wake-up, the Cache Coherence and
// Sleep Mode (CCSM) subsystem, the C6A power-management-agent (PMA)
// control flows, the legacy C6 entry/exit latency model, and the
// power-performance-area (PPA) accounting behind Table 3 of the paper.
//
// This package is the paper's primary contribution rendered as a
// structural model: the experiment harness derives every AW-specific
// number (C6A/C6AE power, <100 ns transition latency, area overhead)
// from it rather than hard-coding results.
package core

import "fmt"

// Domain is one power/clock domain of the core. Fractions are relative
// to the whole core (area) and to total core leakage (leakage), following
// the die-photo and power-breakdown methodology of Sec. 5.1.
type Domain struct {
	Name string

	// AreaFraction of the total core area occupied by this domain.
	AreaFraction float64

	// LeakageFraction of total core leakage contributed by this domain.
	LeakageFraction float64

	// Gating describes how the domain is treated in C6A/C6AE.
	Gating GatingClass

	Children []*Domain
}

// GatingClass classifies how a domain behaves in the C6A/C6AE states.
type GatingClass int

// Gating classes.
const (
	// GateUFPG: behind one of the new medium-grain UFPG power gates
	// (context retained in place).
	GateUFPG GatingClass = iota
	// GateAVX: behind the pre-existing AVX-256/AVX-512 power gates.
	GateAVX
	// UngatedSleep: power-ungated but placed in SRAM sleep-mode (the
	// L1/L2 data arrays).
	UngatedSleep
	// UngatedClockGated: power-ungated, clock-gated (cache tags, state,
	// controllers, snoop-response logic).
	UngatedClockGated
	// AlwaysOn: neither power- nor clock-gated (snoop detect logic,
	// ADPLL, retention supplies).
	AlwaysOn
)

func (g GatingClass) String() string {
	switch g {
	case GateUFPG:
		return "UFPG power-gate"
	case GateAVX:
		return "AVX power-gate"
	case UngatedSleep:
		return "ungated, sleep-mode"
	case UngatedClockGated:
		return "ungated, clock-gated"
	default:
		return "always-on"
	}
}

// SkylakeCore builds the domain tree of a Skylake server core slice as
// the paper partitions it (Fig. 4): ~70 % of core area behind
// UFPG/AVX power gates, ~30 % in the power-ungated cache domain.
// Leakage fractions follow the Intel core-power-breakdown methodology
// cited in Sec. 5.1.1 (power-gated units contribute ~70 % of core
// leakage).
func SkylakeCore() *Domain {
	return &Domain{
		Name:         "core",
		AreaFraction: 1.0, LeakageFraction: 1.0,
		Children: []*Domain{
			{Name: "front-end", AreaFraction: 0.13, LeakageFraction: 0.13, Gating: GateUFPG},
			{Name: "out-of-order-engine", AreaFraction: 0.17, LeakageFraction: 0.17, Gating: GateUFPG},
			{Name: "integer-exec", AreaFraction: 0.12, LeakageFraction: 0.12, Gating: GateUFPG},
			{Name: "load-store", AreaFraction: 0.10, LeakageFraction: 0.10, Gating: GateUFPG},
			{Name: "avx-256", AreaFraction: 0.08, LeakageFraction: 0.08, Gating: GateAVX},
			{Name: "avx-512", AreaFraction: 0.10, LeakageFraction: 0.10, Gating: GateAVX},
			{Name: "l1l2-data-arrays", AreaFraction: 0.27, LeakageFraction: 0.20, Gating: UngatedSleep},
			{Name: "l1l2-tags-state-ctl", AreaFraction: 0.025, LeakageFraction: 0.08, Gating: UngatedClockGated},
			{Name: "snoop-detect+pma-if", AreaFraction: 0.005, LeakageFraction: 0.02, Gating: AlwaysOn},
		},
	}
}

// Walk visits d and every descendant in depth-first order.
func (d *Domain) Walk(fn func(*Domain)) {
	fn(d)
	for _, c := range d.Children {
		c.Walk(fn)
	}
}

// FractionGated returns the (area, leakage) fractions of the core that
// sit behind power gates in C6A (UFPG plus AVX gates). The paper
// measures ~70 % area and ~70 % leakage.
func (d *Domain) FractionGated() (area, leakage float64) {
	d.Walk(func(x *Domain) {
		if x == d {
			return
		}
		if x.Gating == GateUFPG || x.Gating == GateAVX {
			area += x.AreaFraction
			leakage += x.LeakageFraction
		}
	})
	return area, leakage
}

// FractionUngated returns the (area, leakage) fractions of the
// power-ungated domain (caches, controllers, always-on logic).
func (d *Domain) FractionUngated() (area, leakage float64) {
	gA, gL := d.FractionGated()
	return 1 - gA, 1 - gL
}

// Validate checks that leaf fractions sum to ~1 and every leaf has a
// gating class; models edited for ablations should re-validate.
func (d *Domain) Validate() error {
	var area, leak float64
	d.Walk(func(x *Domain) {
		if x == d {
			return
		}
		area += x.AreaFraction
		leak += x.LeakageFraction
	})
	if area < 0.999 || area > 1.001 {
		return fmt.Errorf("core: leaf area fractions sum to %.4f, want 1", area)
	}
	if leak < 0.999 || leak > 1.001 {
		return fmt.Errorf("core: leaf leakage fractions sum to %.4f, want 1", leak)
	}
	return nil
}
