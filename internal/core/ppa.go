package core

import (
	"fmt"

	"repro/internal/sim"
)

// Architecture aggregates every AgileWatts hardware model into the
// complete per-core design, from which the Table 3 PPA breakdown, the
// C6A/C6AE power levels of Table 1, and the transition latencies of
// Sec. 5.2 are all derived.
type Architecture struct {
	Domains   *Domain
	UFPG      *UFPG
	Retention *Retention
	CCSM      *CCSM
	PMA       *PMA
	FIVR      *FIVR
	C6        *C6Model

	// CoreLeakageP1W / CoreLeakagePnW approximate total core leakage at
	// the P1 and Pn voltage points. The paper equates core leakage with
	// the C1 (resp. C1E) power, since C1 removes only dynamic power.
	CoreLeakageP1W, CoreLeakagePnW float64

	// SnoopPowerDeltaC1W / SnoopPowerDeltaC6AW are the extra per-core
	// power while servicing snoops in C1 (~50 mW: clock-ungated L1/L2)
	// and in C6A (~120 mW: sleep-mode exit on top of that) (Sec. 7.5).
	SnoopPowerDeltaC1W, SnoopPowerDeltaC6AW float64
}

// NewArchitecture assembles the paper's calibrated AW design.
func NewArchitecture() *Architecture {
	u := NewUFPG()
	c := NewCCSM()
	return &Architecture{
		Domains:             SkylakeCore(),
		UFPG:                u,
		Retention:           NewRetention(),
		CCSM:                c,
		PMA:                 NewPMA(u, c),
		FIVR:                NewFIVR(),
		C6:                  NewC6Model(),
		CoreLeakageP1W:      1.44,
		CoreLeakagePnW:      0.88,
		SnoopPowerDeltaC1W:  0.050,
		SnoopPowerDeltaC6AW: 0.120,
	}
}

// gatedLoadRange returns the [lo, hi] power (watts) drawn by everything
// behind the FIVR while resident in C6A (enhanced=false) or C6AE.
func (a *Architecture) gatedLoadRange(enhanced bool) (lo, hi float64) {
	_, gatedLeak := a.Domains.FractionGated()
	var leakLo, leakHi, ctx, ccsm float64
	if enhanced {
		leakLo, leakHi = a.UFPG.ResidualLeakage(a.CoreLeakagePnW, gatedLeak)
		ctx = a.Retention.PowerPn()
		ccsm = a.CCSM.TotalSleepPowerPn()
	} else {
		leakLo, leakHi = a.UFPG.ResidualLeakage(a.CoreLeakageP1W, gatedLeak)
		ctx = a.Retention.PowerP1()
		ccsm = a.CCSM.TotalSleepPowerP1()
	}
	base := ctx + ccsm + a.PMA.ControllerPowerW
	return leakLo + base, leakHi + base
}

// C6APowerRange returns the [lo, hi] total per-core power in the C6A
// state (Table 3 overall row: 290–315 mW).
func (a *Architecture) C6APowerRange() (lo, hi float64) {
	return a.statePowerRange(false)
}

// C6AEPowerRange returns the [lo, hi] total per-core power in the C6AE
// state (Table 3 overall row: 227–243 mW).
func (a *Architecture) C6AEPowerRange() (lo, hi float64) {
	return a.statePowerRange(true)
}

func (a *Architecture) statePowerRange(enhanced bool) (lo, hi float64) {
	loadLo, loadHi := a.gatedLoadRange(enhanced)
	lo = loadLo + a.FIVR.ConversionLoss(loadLo) + a.FIVR.StaticLossW + a.FIVR.ADPLLPowerW
	hi = loadHi + a.FIVR.ConversionLoss(loadHi) + a.FIVR.StaticLossW + a.FIVR.ADPLLPowerW
	return lo, hi
}

// C6APower returns the midpoint C6A power used as the Table 1 entry
// (~0.30 W).
func (a *Architecture) C6APower() float64 {
	lo, hi := a.C6APowerRange()
	return (lo + hi) / 2
}

// C6AEPower returns the midpoint C6AE power (~0.23 W).
func (a *Architecture) C6AEPower() float64 {
	lo, hi := a.C6AEPowerRange()
	return (lo + hi) / 2
}

// AreaOverheadRange returns the [lo, hi] total AW area overhead as a
// fraction of core area (Table 3 overall row: 3–7 %).
func (a *Architecture) AreaOverheadRange() (lo, hi float64) {
	gatedArea, _ := a.Domains.FractionGated()
	gLo, gHi := a.UFPG.GateAreaOverhead(gatedArea)
	// Cache domain share of core area: sleep transistors on data arrays.
	ungatedArea, _ := a.Domains.FractionUngated()
	sLo, sHi := a.CCSM.AreaOverheadOfCore(ungatedArea)
	// Context retention: each technique <1 % of what it protects; bound
	// with ~0.5–1 % of gated area as the paper's "<1 %" rows.
	ctxLo, ctxHi := 0.005*gatedArea, 0.01*gatedArea
	// PMA controller: up to 5 % of the (small, uncore) PMA — negligible
	// at core scale; include a token 0.1 %.
	pma := 0.001
	return gLo + sLo + ctxLo + pma, gHi + sHi + ctxHi + pma
}

// TransitionLatencies summarises the Sec. 5.2 latency analysis.
type TransitionLatencies struct {
	C6AEntry, C6AExit, C6ARoundTrip    sim.Time
	C6AEEntry, C6AEExit, C6AERoundTrip sim.Time
	C6Entry, C6Exit, C6RoundTrip       sim.Time
	// SpeedupVsC6 is C6 round-trip / C6A round-trip (paper: up to ~900x).
	SpeedupVsC6 float64
}

// Latencies computes the AW vs C6 transition latencies at the given C6
// flush conditions (dirty fraction, core frequency in Hz).
func (a *Architecture) Latencies(dirtyFraction, freqHz float64) TransitionLatencies {
	t := TransitionLatencies{
		C6AEntry:  a.PMA.EntryLatency(false),
		C6AExit:   a.PMA.ExitLatency(),
		C6AEEntry: a.PMA.EntryLatency(true),
		C6AEExit:  a.PMA.ExitLatency(),
		C6Entry:   a.C6.EntryLatency(dirtyFraction, freqHz),
		C6Exit:    a.C6.ExitLatency(),
	}
	t.C6ARoundTrip = t.C6AEntry + t.C6AExit
	t.C6AERoundTrip = t.C6AEEntry + t.C6AEExit
	t.C6RoundTrip = t.C6Entry + t.C6Exit
	if t.C6ARoundTrip > 0 {
		t.SpeedupVsC6 = float64(t.C6RoundTrip) / float64(t.C6ARoundTrip)
	}
	return t
}

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Component    string
	SubComponent string
	Area         string
	C6APowerW    [2]float64 // [lo, hi]; lo==hi for point values
	C6AEPowerW   [2]float64
}

// Table3 derives the full PPA breakdown of Table 3 from the component
// models.
func (a *Architecture) Table3() []Table3Row {
	_, gatedLeak := a.Domains.FractionGated()
	gLoP1, gHiP1 := a.UFPG.ResidualLeakage(a.CoreLeakageP1W, gatedLeak)
	gLoPn, gHiPn := a.UFPG.ResidualLeakage(a.CoreLeakagePnW, gatedLeak)
	convLoA, convHiA := a.convRange(false)
	convLoE, convHiE := a.convRange(true)
	rows := []Table3Row{
		{
			Component: "Units' Fast Power-Gating (UFPG)", SubComponent: "Unit power-gates (~70% of the core)",
			Area:      "2-6% of power-gated area",
			C6APowerW: [2]float64{gLoP1, gHiP1}, C6AEPowerW: [2]float64{gLoPn, gHiPn},
		},
		{
			Component: "Units' Fast Power-Gating (UFPG)", SubComponent: "Context retention (ungated regs + SRPG + SRAM)",
			Area:      "<1% of protected area",
			C6APowerW: point(a.Retention.PowerP1()), C6AEPowerW: point(a.Retention.PowerPn()),
		},
		{
			Component: "Cache Coherence & Sleep Mode (CCSM)", SubComponent: "L1/L2 caches in sleep-mode",
			Area:      "2-6% of private cache area",
			C6APowerW: point(a.CCSM.DataArraySleepLeakageP1()), C6AEPowerW: point(a.CCSM.DataArraySleepLeakagePn()),
		},
		{
			Component: "Cache Coherence & Sleep Mode (CCSM)", SubComponent: "Rest of the memory subsystem",
			Area:      "<1% of the ungated units",
			C6APowerW: point(a.CCSM.RestLeakageP1W), C6AEPowerW: point(a.CCSM.RestLeakagePnW),
		},
		{
			Component: "PMA Flow", SubComponent: "C6A controller FSM (uncore)",
			Area:      "<5% of core PMA",
			C6APowerW: point(a.PMA.ControllerPowerW), C6AEPowerW: point(a.PMA.ControllerPowerW),
		},
		{
			Component: "Core ADPLL & FIVR", SubComponent: "ADPLL",
			Area:      "0%",
			C6APowerW: point(a.FIVR.ADPLLPowerW), C6AEPowerW: point(a.FIVR.ADPLLPowerW),
		},
		{
			Component: "Core ADPLL & FIVR", SubComponent: "Core FIVR inefficiency",
			Area:      "0%",
			C6APowerW: [2]float64{convLoA, convHiA}, C6AEPowerW: [2]float64{convLoE, convHiE},
		},
		{
			Component: "Core ADPLL & FIVR", SubComponent: "FIVR static losses",
			Area:      "0%",
			C6APowerW: point(a.FIVR.StaticLossW), C6AEPowerW: point(a.FIVR.StaticLossW),
		},
	}
	loA, hiA := a.C6APowerRange()
	loE, hiE := a.C6AEPowerRange()
	aLo, aHi := a.AreaOverheadRange()
	rows = append(rows, Table3Row{
		Component: "Overall", SubComponent: "",
		Area:      fmt.Sprintf("%.0f-%.0f%% of the core area", aLo*100, aHi*100),
		C6APowerW: [2]float64{loA, hiA}, C6AEPowerW: [2]float64{loE, hiE},
	})
	return rows
}

func (a *Architecture) convRange(enhanced bool) (lo, hi float64) {
	loadLo, loadHi := a.gatedLoadRange(enhanced)
	return a.FIVR.ConversionLoss(loadLo), a.FIVR.ConversionLoss(loadHi)
}

func point(v float64) [2]float64 { return [2]float64{v, v} }
