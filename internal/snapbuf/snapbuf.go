// Package snapbuf is the tiny binary codec shared by the snapshot
// layers (server instances, cluster fleets): fixed-width big-endian
// integers, bit-exact floats, and length-prefixed strings, with a
// strict decoder that turns any overrun into a sticky error instead of
// a panic or a silently zeroed field.
package snapbuf

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder appends snapshot fields to Buf.
type Encoder struct{ Buf []byte }

func (e *Encoder) U8(v uint8)   { e.Buf = append(e.Buf, v) }
func (e *Encoder) U64(v uint64) { e.Buf = binary.BigEndian.AppendUint64(e.Buf, v) }
func (e *Encoder) I64(v int64)  { e.U64(uint64(v)) }

// F64 writes the exact bit pattern — snapshots must round-trip every
// float bit-for-bit, including negative zero and NaN payloads.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

func (e *Encoder) Str(s string) {
	e.I64(int64(len(s)))
	e.Buf = append(e.Buf, s...)
}

// Bytes writes a length-prefixed byte payload (a nested document).
func (e *Encoder) Bytes(b []byte) {
	e.I64(int64(len(b)))
	e.Buf = append(e.Buf, b...)
}

// Decoder is the strict mirror: any read past the payload sets the
// sticky error (checked via Err), so truncated documents are rejected
// no matter where the cut landed.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder decodes from data.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first decode error, nil if none so far.
func (d *Decoder) Err() error { return d.err }

// Close verifies the document was consumed exactly: no decode error and
// no trailing bytes.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%d trailing bytes after the snapshot document", len(d.buf)-d.off)
	}
	return nil
}

// Len returns the total document length — a plausibility bound for
// decoded element counts.
func (d *Decoder) Len() int { return len(d.buf) }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated snapshot (offset %d of %d)", d.off, len(d.buf))
	}
}

func (d *Decoder) U8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *Decoder) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *Decoder) I64() int64   { return int64(d.U64()) }
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("corrupt snapshot: invalid boolean at offset %d", d.off-1)
		}
		return false
	}
}

func (d *Decoder) Str() string {
	n := d.I64()
	if d.err != nil {
		return ""
	}
	if n < 0 || d.off+int(n) > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Bytes reads a length-prefixed byte payload written by Encoder.Bytes.
func (d *Decoder) Bytes() []byte {
	n := d.I64()
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+int(n) > len(d.buf) {
		d.fail()
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+int(n)]...)
	d.off += int(n)
	return b
}
