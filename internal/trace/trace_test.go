package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRecorderBasics(t *testing.T) {
	r := New(10)
	r.Record(0, 0, cstate.C0)
	r.Record(0, 100, cstate.C1)
	r.Record(0, 300, cstate.C0)
	r.Record(1, 50, cstate.C6)
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	tl := r.CoreTimeline(0)
	if len(tl) != 3 || tl[1].State != cstate.C1 {
		t.Fatalf("timeline = %+v", tl)
	}
	ivs := r.Intervals(0, 1000)
	if len(ivs) != 3 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if ivs[1].Duration != 200 {
		t.Fatalf("C1 interval = %v", ivs[1].Duration)
	}
	if ivs[2].Duration != 700 {
		t.Fatalf("final C0 interval = %v", ivs[2].Duration)
	}
}

func TestRecorderStats(t *testing.T) {
	r := New(0)
	r.Record(0, 0, cstate.C0)
	r.Record(0, 100, cstate.C1)
	r.Record(0, 200, cstate.C0)
	r.Record(0, 300, cstate.C1)
	r.Record(0, 600, cstate.C0)
	stats := r.Stats(0, 1000)
	var c1 StateStats
	for _, s := range stats {
		if s.State == cstate.C1 {
			c1 = s
		}
	}
	if c1.Visits != 2 || c1.TotalTime != 400 || c1.LongestStay != 300 || c1.MeanVisit != 200 {
		t.Fatalf("C1 stats = %+v", c1)
	}
}

func TestRecorderCap(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(0, sim.Time(i), cstate.C0)
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

// TestRecorderOverflowKeepsStoredEventsIntact pins the full MaxEvents
// overflow contract: events past capacity bump only the dropped counter,
// the stored prefix survives byte-for-byte, queries keep working on it,
// and the exported CSV contains exactly the stored events.
func TestRecorderOverflowKeepsStoredEventsIntact(t *testing.T) {
	const capEvents = 4
	r := New(capEvents)
	want := []Event{
		{Core: 0, Time: 10, State: cstate.C1},
		{Core: 1, Time: 20, State: cstate.C6},
		{Core: 0, Time: 30, State: cstate.C0},
		{Core: 1, Time: 40, State: cstate.C0},
	}
	for _, e := range want {
		r.Record(e.Core, e.Time, e.State)
	}
	// Overflow with distinctive events that must leave no trace.
	for i := 0; i < 7; i++ {
		r.Record(9, sim.Time(999+i), cstate.C6A)
	}
	if r.Len() != capEvents {
		t.Fatalf("len = %d, want %d", r.Len(), capEvents)
	}
	if r.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", r.Dropped())
	}
	got := r.Events()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stored event %d corrupted by overflow: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Queries on the surviving prefix stay consistent.
	if tl := r.CoreTimeline(1); len(tl) != 2 || tl[0].Time != 20 || tl[1].Time != 40 {
		t.Fatalf("core 1 timeline after overflow: %+v", tl)
	}
	if tl := r.CoreTimeline(9); len(tl) != 0 {
		t.Fatalf("dropped events leaked into timeline: %+v", tl)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != capEvents+1 {
		t.Fatalf("CSV has %d lines, want header + %d events", n, capEvents)
	}
	if strings.Contains(buf.String(), "999") {
		t.Fatal("dropped event leaked into CSV")
	}
	// Further recording keeps dropping without disturbing state.
	r.Record(0, 50, cstate.C1)
	if r.Len() != capEvents || r.Dropped() != 8 {
		t.Fatalf("post-overflow record: len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

// TestWriteCSVGoldenTwoCoreRun pins the exact CSV export of a tiny
// hand-written two-core trace: two cores interleaving wake/sleep, in
// record order, with architectural state names.
func TestWriteCSVGoldenTwoCoreRun(t *testing.T) {
	r := New(0)
	r.Record(0, 0, cstate.C0)
	r.Record(1, 0, cstate.C0)
	r.Record(0, 1500, cstate.C1)
	r.Record(1, 2750, cstate.C6A)
	r.Record(0, 4000, cstate.C0)
	r.Record(1, 5125, cstate.C0)
	r.Record(0, 6000, cstate.C6AE)
	r.Record(1, 7250, cstate.C1E)
	r.Record(1, 9000, cstate.C6)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `core,time_ns,state
0,0,C0
1,0,C0
0,1500,C1
1,2750,C6A
0,4000,C0
1,5125,C0
0,6000,C6AE
1,7250,C1E
1,9000,C6
`
	if buf.String() != golden {
		t.Errorf("CSV drifted from golden:\n got: %q\nwant: %q", buf.String(), golden)
	}
}

func TestWriteCSV(t *testing.T) {
	r := New(0)
	r.Record(3, 42, cstate.C6A)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3,42,C6A") {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestServerIntegration(t *testing.T) {
	rec := New(0)
	cfg := server.Config{
		Platform:   governor.Baseline,
		Profile:    workload.Memcached(),
		RatePerSec: 50_000,
		Duration:   50 * sim.Millisecond,
		Warmup:     5 * sim.Millisecond,
		Seed:       9,
		TraceHook:  rec.Record,
	}
	res, err := server.RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() < 100 {
		t.Fatalf("only %d trace events", rec.Len())
	}
	// The trace must alternate states per core (no duplicate neighbors).
	tl := rec.CoreTimeline(0)
	for i := 1; i < len(tl); i++ {
		if tl[i].State == tl[i-1].State {
			t.Fatalf("duplicate state %v at %v", tl[i].State, tl[i].Time)
		}
		if tl[i].Time < tl[i-1].Time {
			t.Fatal("trace not time-ordered")
		}
	}
	// Trace-derived residency should roughly agree with the simulator's
	// own accounting for the dominant idle state.
	end := cfg.Warmup + cfg.Duration
	var traceIdle, total sim.Time
	for core := 0; core < 20; core++ {
		for _, iv := range rec.Intervals(core, end) {
			if iv.State != cstate.C0 {
				traceIdle += iv.Duration
			}
			total += iv.Duration
		}
	}
	traceFrac := float64(traceIdle) / float64(total)
	simFrac := 1 - res.Residency[cstate.C0]
	// The trace covers warmup too, so allow a loose tolerance.
	if traceFrac < simFrac-0.15 || traceFrac > simFrac+0.15 {
		t.Fatalf("trace idle %.2f vs sim idle %.2f", traceFrac, simFrac)
	}
}
