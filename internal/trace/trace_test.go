package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRecorderBasics(t *testing.T) {
	r := New(10)
	r.Record(0, 0, cstate.C0)
	r.Record(0, 100, cstate.C1)
	r.Record(0, 300, cstate.C0)
	r.Record(1, 50, cstate.C6)
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	tl := r.CoreTimeline(0)
	if len(tl) != 3 || tl[1].State != cstate.C1 {
		t.Fatalf("timeline = %+v", tl)
	}
	ivs := r.Intervals(0, 1000)
	if len(ivs) != 3 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if ivs[1].Duration != 200 {
		t.Fatalf("C1 interval = %v", ivs[1].Duration)
	}
	if ivs[2].Duration != 700 {
		t.Fatalf("final C0 interval = %v", ivs[2].Duration)
	}
}

func TestRecorderStats(t *testing.T) {
	r := New(0)
	r.Record(0, 0, cstate.C0)
	r.Record(0, 100, cstate.C1)
	r.Record(0, 200, cstate.C0)
	r.Record(0, 300, cstate.C1)
	r.Record(0, 600, cstate.C0)
	stats := r.Stats(0, 1000)
	var c1 StateStats
	for _, s := range stats {
		if s.State == cstate.C1 {
			c1 = s
		}
	}
	if c1.Visits != 2 || c1.TotalTime != 400 || c1.LongestStay != 300 || c1.MeanVisit != 200 {
		t.Fatalf("C1 stats = %+v", c1)
	}
}

func TestRecorderCap(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(0, sim.Time(i), cstate.C0)
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestWriteCSV(t *testing.T) {
	r := New(0)
	r.Record(3, 42, cstate.C6A)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3,42,C6A") {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestServerIntegration(t *testing.T) {
	rec := New(0)
	cfg := server.Config{
		Platform:   governor.Baseline,
		Profile:    workload.Memcached(),
		RatePerSec: 50_000,
		Duration:   50 * sim.Millisecond,
		Warmup:     5 * sim.Millisecond,
		Seed:       9,
		TraceHook:  rec.Record,
	}
	res, err := server.RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() < 100 {
		t.Fatalf("only %d trace events", rec.Len())
	}
	// The trace must alternate states per core (no duplicate neighbors).
	tl := rec.CoreTimeline(0)
	for i := 1; i < len(tl); i++ {
		if tl[i].State == tl[i-1].State {
			t.Fatalf("duplicate state %v at %v", tl[i].State, tl[i].Time)
		}
		if tl[i].Time < tl[i-1].Time {
			t.Fatal("trace not time-ordered")
		}
	}
	// Trace-derived residency should roughly agree with the simulator's
	// own accounting for the dominant idle state.
	end := cfg.Warmup + cfg.Duration
	var traceIdle, total sim.Time
	for core := 0; core < 20; core++ {
		for _, iv := range rec.Intervals(core, end) {
			if iv.State != cstate.C0 {
				traceIdle += iv.Duration
			}
			total += iv.Duration
		}
	}
	traceFrac := float64(traceIdle) / float64(total)
	simFrac := 1 - res.Residency[cstate.C0]
	// The trace covers warmup too, so allow a loose tolerance.
	if traceFrac < simFrac-0.15 || traceFrac > simFrac+0.15 {
		t.Fatalf("trace idle %.2f vs sim idle %.2f", traceFrac, simFrac)
	}
}
