// Package trace records per-core C-state timelines from a simulation
// run — the equivalent of the ftrace/perf power:cpu_idle traces used to
// debug idle-state behaviour on real servers. Traces can be queried for
// per-state statistics and exported as CSV for plotting.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cstate"
	"repro/internal/sim"
)

// Event is one C-state change on one core.
type Event struct {
	Core  int
	Time  sim.Time
	State cstate.ID
}

// Recorder accumulates events. The zero value is unusable; use New.
// Recording is bounded to protect memory on long runs: once MaxEvents is
// reached, further events are counted but not stored.
type Recorder struct {
	MaxEvents int
	events    []Event
	dropped   uint64
}

// New returns a recorder storing up to maxEvents events (default 1e6
// when maxEvents <= 0).
func New(maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = 1_000_000
	}
	return &Recorder{MaxEvents: maxEvents}
}

// Record implements the server's trace hook.
func (r *Recorder) Record(core int, now sim.Time, state cstate.ID) {
	if len(r.events) >= r.MaxEvents {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{Core: core, Time: now, State: state})
}

// Len returns the number of stored events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns the number of events beyond capacity.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Events returns the stored events in record order.
func (r *Recorder) Events() []Event { return append([]Event(nil), r.events...) }

// CoreTimeline returns the events of one core in time order.
func (r *Recorder) CoreTimeline(core int) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Core == core {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Interval is a contiguous stay in one state.
type Interval struct {
	Core     int
	State    cstate.ID
	Start    sim.Time
	Duration sim.Time
}

// Intervals converts a core's timeline into closed intervals up to the
// given end time.
func (r *Recorder) Intervals(core int, end sim.Time) []Interval {
	tl := r.CoreTimeline(core)
	var out []Interval
	for i, e := range tl {
		stop := end
		if i+1 < len(tl) {
			stop = tl[i+1].Time
		}
		if stop < e.Time {
			continue
		}
		out = append(out, Interval{Core: core, State: e.State, Start: e.Time, Duration: stop - e.Time})
	}
	return out
}

// StateStats summarizes the visits to one state on one core.
type StateStats struct {
	State       cstate.ID
	Visits      int
	TotalTime   sim.Time
	MeanVisit   sim.Time
	LongestStay sim.Time
}

// Stats computes per-state statistics for a core up to end.
func (r *Recorder) Stats(core int, end sim.Time) []StateStats {
	acc := map[cstate.ID]*StateStats{}
	for _, iv := range r.Intervals(core, end) {
		s, ok := acc[iv.State]
		if !ok {
			s = &StateStats{State: iv.State}
			acc[iv.State] = s
		}
		s.Visits++
		s.TotalTime += iv.Duration
		if iv.Duration > s.LongestStay {
			s.LongestStay = iv.Duration
		}
	}
	var out []StateStats
	for _, s := range acc {
		if s.Visits > 0 {
			s.MeanVisit = s.TotalTime / sim.Time(s.Visits)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].State < out[j].State })
	return out
}

// WriteCSV exports all events as "core,time_ns,state".
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "core,time_ns,state"); err != nil {
		return err
	}
	for _, e := range r.events {
		if _, err := fmt.Fprintf(w, "%d,%d,%s\n", e.Core, int64(e.Time), e.State); err != nil {
			return err
		}
	}
	return nil
}
