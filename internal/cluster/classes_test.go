package cluster

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
)

// sharedFleet returns n bit-identical node configs (same seed), the
// shape that collapses to a single timeline equivalence class under
// spread dispatch. Contrast Homogeneous, which decorrelates nodes with
// per-index seeds and therefore yields singleton classes.
func sharedFleet(n int, template server.Config) []server.Config {
	nodes := make([]server.Config, n)
	for i := range nodes {
		nodes[i] = template
	}
	return nodes
}

// approxEq compares within relative tolerance (weighted sums reassociate
// float additions, so collapsed multi-member sums may differ from the
// expanded path in the last ulps).
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestSharedSeedSpreadCollapsesToOneClass is the tentpole's happy path:
// a shared-seed fleet under spread dispatch is one equivalence class,
// every expanded node result is the representative's, and the compact
// mode reports the same fleet aggregates without materializing nodes.
func TestSharedSeedSpreadCollapsesToOneClass(t *testing.T) {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	nodes := sharedFleet(8, node)
	total := 80 * sim.Millisecond
	sched := mustSchedule(scenario.Diurnal(8*400e3, 0.6, total, 4))
	r := runner.New(0)
	cfg := ScenarioConfig{
		Nodes:    nodes,
		Schedule: sched,
		Epoch:    20 * sim.Millisecond,
		Runner:   r,
	}
	res := runScenario(t, cfg)
	if res.Classes != 1 {
		t.Fatalf("classes = %d, want 1 (shared-seed spread fleet)", res.Classes)
	}
	if res.ReplicaRuns != 0 {
		t.Errorf("replica runs = %d with Replicas unset", res.ReplicaRuns)
	}
	if cn, cc, ck := r.ClassStats(); cn != 8 || cc != 1 || ck != 0 {
		t.Errorf("runner class stats = %d/%d/%d, want 8/1/0", cn, cc, ck)
	}
	for _, ep := range res.Epochs {
		if len(ep.Fleet.Nodes) != 8 {
			t.Fatalf("epoch %d expanded %d nodes, want 8", ep.Epoch, len(ep.Fleet.Nodes))
		}
		if ep.Fleet.ActiveNodes != 8 {
			t.Errorf("epoch %d active = %d, want 8 under spread", ep.Epoch, ep.Fleet.ActiveNodes)
		}
		for i, n := range ep.Fleet.Nodes {
			if !reflect.DeepEqual(n.Result, ep.Fleet.Nodes[0].Result) {
				t.Fatalf("epoch %d node %d result diverged from its class representative", ep.Epoch, i)
			}
		}
	}

	compact := cfg
	compact.CompactNodes = true
	compact.Runner = runner.New(0)
	cres := runScenario(t, compact)
	if cres.Classes != 1 {
		t.Fatalf("compact classes = %d, want 1", cres.Classes)
	}
	if len(cres.Epochs) != len(res.Epochs) {
		t.Fatalf("compact epochs %d vs %d", len(cres.Epochs), len(res.Epochs))
	}
	for e := range res.Epochs {
		ef, cf := res.Epochs[e].Fleet, cres.Epochs[e].Fleet
		if cf.Nodes != nil {
			t.Fatalf("epoch %d: compact run materialized %d nodes", e, len(cf.Nodes))
		}
		if !approxEq(cf.FleetPowerW, ef.FleetPowerW) || !approxEq(cf.FleetEnergyJ, ef.FleetEnergyJ) ||
			!approxEq(cf.CompletedPerSec, ef.CompletedPerSec) || !approxEq(cf.QPSPerWatt, ef.QPSPerWatt) {
			t.Errorf("epoch %d compact fleet sums diverged: %+v vs %+v", e, cf, ef)
		}
		if cf.ActiveNodes != ef.ActiveNodes || cf.IdleNodes != ef.IdleNodes {
			t.Errorf("epoch %d compact node counts %d/%d vs %d/%d",
				e, cf.ActiveNodes, cf.IdleNodes, ef.ActiveNodes, ef.IdleNodes)
		}
		if cf.Server.Count != ef.Server.Count {
			t.Errorf("epoch %d compact latency count %d vs %d", e, cf.Server.Count, ef.Server.Count)
		}
		// One class: the spread quantiles collapse to the class's own p99
		// in both modes, exactly.
		if cf.WorstP99US != ef.WorstP99US || cf.MedianP99US != ef.MedianP99US || cf.P90P99US != ef.P90P99US {
			t.Errorf("epoch %d compact p99 spread diverged", e)
		}
	}
}

// TestCompactSingletonClassesBitIdentical pins the weighted collector's
// m=1 exactness: over a fleet of singleton classes (Homogeneous's
// distinct seeds), the compact path must reproduce the expanded path's
// fleet aggregates bit-for-bit — the only difference being the absent
// per-node detail.
func TestCompactSingletonClassesBitIdentical(t *testing.T) {
	nodes := Homogeneous(3, quickNode(0))
	sched := mustSchedule(scenario.ByName(scenario.NameRamp, 300e3, 100*sim.Millisecond))
	cfg := ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: 25 * sim.Millisecond}
	expanded := runScenario(t, cfg)
	if expanded.Classes != 3 {
		t.Fatalf("classes = %d, want 3 singletons (distinct seeds)", expanded.Classes)
	}
	compact := cfg
	compact.CompactNodes = true
	cres := runScenario(t, compact)
	// Strip the per-node detail from the expanded run; everything else
	// must match exactly.
	for e := range expanded.Epochs {
		expanded.Epochs[e].Fleet.Nodes = nil
	}
	if !reflect.DeepEqual(expanded, cres) {
		t.Errorf("compact singleton-class run diverged from expanded:\n got %+v\nwant %+v", cres, expanded)
	}
}

// TestReplicasAddErrorBarsWithoutPerturbingPointEstimates is the
// exactness contract on K: replicas only ever add CI fields — every
// point estimate stays bit-identical to the replica-free run.
func TestReplicasAddErrorBarsWithoutPerturbingPointEstimates(t *testing.T) {
	node := quickNode(0)
	node.Duration = 30 * sim.Millisecond
	node.Warmup = 5 * sim.Millisecond
	nodes := sharedFleet(4, node)
	total := 120 * sim.Millisecond
	sched := mustSchedule(scenario.Spike(4*300e3, 4, total, total/3, total/3))
	cfg := ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: total / 4}
	base := runScenario(t, cfg)
	if base.CI != nil {
		t.Fatal("CI reported without replicas")
	}
	for _, ep := range base.Epochs {
		if ep.CI != nil {
			t.Fatal("epoch CI reported without replicas")
		}
	}

	rcfg := cfg
	rcfg.Replicas = 3
	rep := runScenario(t, rcfg)
	if rep.Classes != base.Classes {
		t.Fatalf("classes changed with replicas: %d vs %d", rep.Classes, base.Classes)
	}
	if rep.ReplicaRuns != rep.Classes*3 {
		t.Errorf("replica runs = %d, want %d", rep.ReplicaRuns, rep.Classes*3)
	}
	for e := range base.Epochs {
		if !reflect.DeepEqual(base.Epochs[e].Fleet, rep.Epochs[e].Fleet) {
			t.Fatalf("epoch %d point estimates perturbed by replicas", e)
		}
		ci := rep.Epochs[e].CI
		if ci == nil || ci.Samples != 4 {
			t.Fatalf("epoch %d CI = %+v, want 4-sample ensemble", e, ci)
		}
		for _, iv := range []CI{ci.FleetPowerW, ci.QPSPerWatt, ci.WorstP99US} {
			if !(iv.Lo <= iv.Hi) {
				t.Errorf("epoch %d inverted interval %+v", e, iv)
			}
		}
	}
	if base.AvgFleetPowerW != rep.AvgFleetPowerW || base.WorstP99US != rep.WorstP99US ||
		base.QPSPerWatt != rep.QPSPerWatt || base.FleetEnergyJ != rep.FleetEnergyJ {
		t.Error("whole-run point estimates perturbed by replicas")
	}
	ci := rep.CI
	if ci == nil || ci.Samples != 4 {
		t.Fatalf("whole-run CI = %+v, want 4-sample ensemble", ci)
	}
	// Distinct replica seeds must actually decorrelate: a degenerate
	// zero-width power interval would mean the replicas re-ran the
	// representative's bits.
	if ci.FleetPowerW.Lo == ci.FleetPowerW.Hi {
		t.Error("replica ensemble produced a zero-width fleet-power interval")
	}
}

// TestUncacheableNodesStaySingletonClasses pins the conservative side of
// classification: nodes whose configs cannot be fingerprinted (custom
// catalog) never prove equivalence, so even bit-identical ones stay
// their own class — graceful degradation, never unsound collapse.
func TestUncacheableNodesStaySingletonClasses(t *testing.T) {
	node := quickNode(0)
	node.Catalog = cstate.EPYC()
	node.Platform = governor.Config{Name: "EPYC_AllCStates",
		Menu: []cstate.ID{cstate.C1, cstate.C1E, cstate.C6}}
	nodes := sharedFleet(3, node)
	sched := mustSchedule(scenario.Constant("steady", 300e3, 40*sim.Millisecond))
	res := runScenario(t, ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: 20 * sim.Millisecond})
	if res.Classes != 3 {
		t.Errorf("classes = %d, want 3 (uncacheable nodes must not collapse)", res.Classes)
	}
	if res.AvgFleetPowerW <= 0 {
		t.Error("uncacheable fleet produced empty aggregates")
	}
}

// TestScenarioReplicaValidation pins the new knobs' error paths.
func TestScenarioReplicaValidation(t *testing.T) {
	nodes := Homogeneous(1, quickNode(0))
	sched := mustSchedule(scenario.Constant("steady", 1e3, sim.Second))
	base := ScenarioConfig{Nodes: nodes, Schedule: sched}
	neg := base
	neg.Replicas = -1
	if _, err := RunScenario(neg); err == nil {
		t.Error("negative replicas accepted")
	}
	huge := base
	huge.Replicas = 1 << 12
	if _, err := RunScenario(huge); err == nil || !strings.Contains(err.Error(), "seed plane") {
		t.Errorf("plane-overflowing replicas accepted: %v", err)
	}
	coldReps := base
	coldReps.ColdEpochs = true
	coldReps.Replicas = 2
	if _, err := RunScenario(coldReps); err == nil {
		t.Error("replicas accepted on the cold path")
	}
	coldCompact := base
	coldCompact.ColdEpochs = true
	coldCompact.CompactNodes = true
	if _, err := RunScenario(coldCompact); err == nil {
		t.Error("compact nodes accepted on the cold path")
	}
}

// TestCompactLargeSharedFleet exercises the datacenter shape end to end
// at a CI-friendly size: thousands of shared-seed nodes collapse to one
// class, run compact with replicas, and report CIs — the 100K benchmark
// configuration in miniature.
func TestCompactLargeSharedFleet(t *testing.T) {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	const n = 2048
	nodes := sharedFleet(n, node)
	total := 40 * sim.Millisecond
	sched := mustSchedule(scenario.Diurnal(n*400e3, 0.6, total, 4))
	r := runner.New(0)
	res := runScenario(t, ScenarioConfig{
		Nodes:        nodes,
		Schedule:     sched,
		Epoch:        10 * sim.Millisecond,
		ParkDrained:  true,
		Replicas:     2,
		CompactNodes: true,
		Runner:       r,
	})
	if res.Classes != 1 || res.ReplicaRuns != 2 {
		t.Fatalf("classes/replicas = %d/%d, want 1/2", res.Classes, res.ReplicaRuns)
	}
	if cn, cc, ck := r.ClassStats(); cn != n || cc != 1 || ck != 2 {
		t.Errorf("runner class stats = %d/%d/%d, want %d/1/2", cn, cc, ck, n)
	}
	if res.CI == nil || res.CI.Samples != 3 {
		t.Fatalf("whole-run CI = %+v, want 3-sample ensemble", res.CI)
	}
	for _, ep := range res.Epochs {
		if ep.Fleet.Nodes != nil {
			t.Fatal("compact run materialized nodes")
		}
		if ep.Fleet.ActiveNodes != n {
			t.Errorf("epoch %d active = %d, want %d under spread", ep.Epoch, ep.Fleet.ActiveNodes, n)
		}
		if ep.CI == nil {
			t.Errorf("epoch %d missing CI", ep.Epoch)
		}
	}
	if res.AvgFleetPowerW <= 0 || res.QPSPerWatt <= 0 {
		t.Error("empty aggregates from the compact large fleet")
	}
}

// FuzzTimelineClassKey fuzzes the equivalence-class fingerprint: two
// nodes with identical config and timeline must always land in the same
// class, and a single differing behavioral field — cores, platform,
// seed, park flag, one interval's rate, the timeline shape — must split
// them. A custom catalog makes the key refuse entirely (uncacheable
// nodes never group).
func FuzzTimelineClassKey(f *testing.F) {
	f.Add(uint64(42), uint8(0), true, 100e3)
	f.Add(uint64(0), uint8(1), false, 0.0)
	f.Add(uint64(7), uint8(2), true, 800e3)
	f.Add(uint64(1<<40), uint8(3), false, 1.5)
	f.Add(uint64(9), uint8(4), true, 1e9)
	f.Add(uint64(10), uint8(5), false, 250e3)
	f.Fuzz(func(t *testing.T, seed uint64, mutation uint8, park bool, rate float64) {
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 || rate > 1e12 {
			rate = 100e3
		}
		base := quickNode(0)
		base.Seed = seed
		mk := func() runner.TimelineSpec {
			return runner.TimelineSpec{
				Node: base,
				Park: park,
				Intervals: []runner.Interval{
					{Window: 10 * sim.Millisecond, Rate: rate},
					{Window: 5 * sim.Millisecond, Rate: 0},
				},
			}
		}
		key, ok := runner.TimelineKey(mk())
		if !ok {
			t.Fatal("plain config not cacheable")
		}
		if key2, ok2 := runner.TimelineKey(mk()); !ok2 || key2 != key {
			t.Fatal("identical specs did not land in the same class")
		}
		mut := mk()
		mut.Intervals = append([]runner.Interval(nil), mut.Intervals...)
		switch mutation % 6 {
		case 0:
			mut.Node.Cores = mut.Node.Defaults().Cores + 1
		case 1:
			if mut.Node.Platform.Name == governor.AW.Name {
				mut.Node.Platform = governor.Baseline
			} else {
				mut.Node.Platform = governor.AW
			}
		case 2:
			mut.Node.Seed = seed + 1
		case 3:
			mut.Park = !mut.Park
		case 4:
			mut.Intervals[0].Rate = rate + 1
		case 5:
			mut.Intervals = mut.Intervals[:1]
		}
		if mkey, mok := runner.TimelineKey(mut); !mok || mkey == key {
			t.Fatalf("mutation %d did not split the class (ok=%v)", mutation%6, mok)
		}
		cat := mk()
		cat.Node.Catalog = cstate.EPYC()
		if _, ok := runner.TimelineKey(cat); ok {
			t.Fatal("custom-catalog node claimed a class key")
		}
	})
}
