package cluster

import (
	"fmt"

	"repro/internal/server"
)

// Cluster dispatch policy names accepted by Config.Dispatch.
const (
	// DispatchSpread splits the aggregate load evenly across all nodes —
	// the fleet-level analogue of round-robin request placement, and the
	// policy under which a 1-node cluster reproduces the single-server
	// simulator exactly.
	DispatchSpread = "spread"
	// DispatchLeastLoaded splits the load proportionally to node
	// capacity, equalizing utilization across heterogeneous nodes (the
	// steady-state behavior of join-least-loaded routing).
	DispatchLeastLoaded = "least-loaded"
	// DispatchConsolidate packs the load onto as few nodes as possible,
	// filling each to TargetUtil before spilling onto the next, so the
	// remaining nodes sit fully idle (and, with ParkDrained, reach
	// package deep idle) — the fleet-level energy-proportionality
	// strategy the per-server packed dispatch policy approximates within
	// one machine.
	DispatchConsolidate = "consolidate"
)

// defaultTargetUtil is the consolidate fill level: high enough to drain
// most of the fleet at the paper's load points, low enough to keep the
// packed nodes' queueing tail within a latency SLO.
const defaultTargetUtil = 0.6

// Policies lists the cluster dispatch policy names.
func Policies() []string {
	return []string{DispatchSpread, DispatchLeastLoaded, DispatchConsolidate}
}

// capacityQPS estimates the rate node cfg sustains at 100% utilization:
// cores times the per-core service rate of its own profile. Heterogeneous
// fleets get per-node capacities from their per-node core counts and
// service-time distributions.
func capacityQPS(cfg server.Config) float64 {
	d := cfg.Defaults()
	mean := float64(d.Profile.Service.Mean())
	if mean <= 0 {
		return 0
	}
	return float64(d.Cores) * 1e9 / mean
}

// partitioner returns the rate-partition function for the named policy.
func partitioner(name string) (func(Config) []float64, error) {
	switch name {
	case "", DispatchSpread:
		return partitionSpread, nil
	case DispatchLeastLoaded:
		return partitionLeastLoaded, nil
	case DispatchConsolidate:
		return partitionConsolidate, nil
	default:
		return nil, fmt.Errorf("cluster: unknown dispatch policy %q (known: %v)", name, Policies())
	}
}

func partitionSpread(c Config) []float64 {
	rates := make([]float64, len(c.Nodes))
	per := c.RateQPS / float64(len(c.Nodes))
	for i := range rates {
		rates[i] = per
	}
	return rates
}

func partitionLeastLoaded(c Config) []float64 {
	rates := make([]float64, len(c.Nodes))
	var total float64
	caps := make([]float64, len(c.Nodes))
	for i, n := range c.Nodes {
		caps[i] = capacityQPS(n)
		total += caps[i]
	}
	if total <= 0 {
		return partitionSpread(c)
	}
	for i := range rates {
		rates[i] = c.RateQPS * caps[i] / total
	}
	return rates
}

func partitionConsolidate(c Config) []float64 {
	rates := make([]float64, len(c.Nodes))
	remaining := c.RateQPS
	var totalCap float64
	for i, n := range c.Nodes {
		room := c.TargetUtil * capacityQPS(n)
		totalCap += room
		if remaining <= 0 {
			continue
		}
		take := remaining
		if take > room {
			take = room
		}
		rates[i] = take
		remaining -= take
	}
	if remaining > 0 {
		// The fleet is offered more than TargetUtil everywhere: spill the
		// excess proportionally to capacity rather than dropping load.
		for i := range rates {
			if totalCap > 0 {
				rates[i] += remaining * (c.TargetUtil * capacityQPS(c.Nodes[i])) / totalCap
			} else {
				rates[i] += remaining / float64(len(c.Nodes))
			}
		}
	}
	return rates
}
