package cluster

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchScenarioCfg is the BenchmarkRunScenario configuration: the
// default diurnal day over a 64-node consolidate fleet, stepped in 24
// epochs. The warm path pays the 10ms warmup once per node and runs
// each node's whole timeline as one pipelined task; the cold path pays
// it 24 times per node behind a fleet barrier per epoch — the 1,536
// cold simulations the resumable engine eliminates. Each iteration uses
// a fresh private Runner so memoization never short-circuits the
// measurement.
func benchScenarioCfg(cold bool, r *runner.Runner) ScenarioConfig {
	template := server.Config{
		Platform: governor.Baseline,
		Profile:  workload.Memcached(),
		Warmup:   10 * sim.Millisecond,
		Seed:     1,
	}
	const nodes = 64
	total := 48 * sim.Millisecond // a compressed day: 24 x 2ms epochs
	sched, err := scenario.Diurnal(nodes*800e3, 0.6, total, 12)
	if err != nil {
		panic(err)
	}
	return ScenarioConfig{
		Nodes:       Homogeneous(nodes, template),
		Schedule:    sched,
		Epoch:       2 * sim.Millisecond,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
		ColdEpochs:  cold,
		Runner:      r,
	}
}

func benchRunScenario(b *testing.B, cold bool) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunScenario(benchScenarioCfg(cold, runner.New(0))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunScenarioWarm measures the resumable warm path on the
// default diurnal 64-node configuration.
func BenchmarkRunScenarioWarm(b *testing.B) { benchRunScenario(b, false) }

// BenchmarkRunScenarioCold measures the legacy cold-start path on the
// identical configuration — the denominator of the warm path's
// speedup claim.
func BenchmarkRunScenarioCold(b *testing.B) { benchRunScenario(b, true) }

// BenchmarkRunScenarioWarmReactive measures the closed-loop incremental
// engine on the same configuration as BenchmarkRunScenarioWarm, with the
// reactive controller in the loop: per-epoch telemetry aggregation,
// controller evaluation, and live-class rate-divergence splits on top of
// the warm path. The delta against BenchmarkRunScenarioWarm is the
// control plane's overhead.
func BenchmarkRunScenarioWarmReactive(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchScenarioCfg(false, runner.New(0))
		cfg.Controller = ControllerSpec{Name: ControllerReactive}
		if _, err := RunScenario(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunScenario100K measures the class-collapsed compact path at
// datacenter scale: a 100K-node shared-seed fleet over the same
// compressed diurnal day (24 epochs), spread dispatch so every node
// sees one rate timeline and the whole fleet collapses to a single
// equivalence class, plus 4 seeded replicas for 95% error bars. The
// simulation work is 5 node timelines; the per-node residue is the
// O(nodes) plan/keying pass and the O(classes x epochs) compact
// aggregation — which is what this benchmark gates.
func BenchmarkRunScenario100K(b *testing.B) {
	template := server.Config{
		Platform: governor.Baseline,
		Profile:  workload.Memcached(),
		Warmup:   10 * sim.Millisecond,
		Seed:     1,
	}
	const nodes = 100_000
	total := 48 * sim.Millisecond
	sched, err := scenario.Diurnal(nodes*800e3, 0.6, total, 12)
	if err != nil {
		b.Fatal(err)
	}
	fleet := make([]server.Config, nodes)
	for i := range fleet {
		fleet[i] = template
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunScenario(ScenarioConfig{
			Nodes:        fleet,
			Schedule:     sched,
			Epoch:        2 * sim.Millisecond,
			Dispatch:     DispatchSpread,
			ParkDrained:  true,
			Replicas:     4,
			CompactNodes: true,
			Runner:       runner.New(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Classes != 1 || res.CI == nil {
			b.Fatalf("fleet did not collapse: %d classes, CI %v", res.Classes, res.CI)
		}
	}
}
