package cluster

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/server"
)

// Overload policy names accepted by OverloadSpec.Policy.
const (
	// OverloadShed drops the demand the active fleet cannot absorb:
	// every epoch admits at most the active-set capacity (at MaxUtil)
	// and accounts the rest, request by request, in SheddedRequests —
	// the classic load-shedding front door.
	OverloadShed = "shed"
	// OverloadDegrade admits everything and lets latency absorb the
	// excess: nothing is dropped, but every epoch whose offered rate
	// exceeds the admission capacity is marked Saturated — the
	// SLO-violation ledger an operator reads after the fact.
	OverloadDegrade = "degrade"
	// OverloadQueue carries the excess into the next epoch as backlog:
	// admitted rate is capped at capacity, the remainder queues (up to
	// MaxBacklogSec of full-fleet capacity) and drains when headroom
	// returns; backlog past the cap spills into SheddedRequests.
	OverloadQueue = "queue"
)

// OverloadPolicies lists the built-in overload policy names.
func OverloadPolicies() []string {
	return []string{OverloadShed, OverloadDegrade, OverloadQueue}
}

// OverloadSpec is the scenario's admission-control description: what
// happens when the offered rate exceeds what the active fleet can
// absorb. Each epoch the engine compares demand against the active
// set's capacity at MaxUtil (per-node capacityQPS summed over the up,
// routed nodes) and applies the policy to the excess. The zero value
// disables admission control entirely and keeps every scenario result
// bit-identical to a run that predates it. Warm path only (rejected
// with ColdEpochs).
type OverloadSpec struct {
	// Policy picks a built-in policy (see OverloadPolicies). Empty
	// disables admission control.
	Policy string
	// MaxUtil is the per-node utilization the admission capacity is
	// computed at — the ceiling the operator is willing to run the
	// active set to under pressure, deliberately above the dispatcher's
	// TargetUtil comfort point. 0 means the 0.85 default.
	MaxUtil float64
	// MaxBacklogSec bounds the queue policy's backlog: at most this many
	// seconds of full-fleet capacity (at MaxUtil) may queue; overflow is
	// shed. 0 means the 1.0 default. Ignored by shed/degrade.
	MaxBacklogSec float64
}

// enabled reports whether the spec selects any policy.
func (s OverloadSpec) enabled() bool { return s.Policy != "" }

// normalizeOverload resolves the spec's defaults and rejects unusable
// tunings. Called from Normalize, so RunScenario, Validate and the CLIs
// report identical errors for identical mistakes.
func normalizeOverload(s OverloadSpec) (OverloadSpec, error) {
	if !s.enabled() {
		return s, nil
	}
	switch s.Policy {
	case OverloadShed, OverloadDegrade, OverloadQueue:
	default:
		return s, fmt.Errorf("cluster: unknown overload policy %q (known: %v)", s.Policy, OverloadPolicies())
	}
	if s.MaxUtil == 0 {
		s.MaxUtil = 0.85
	}
	if s.MaxUtil < 0 || s.MaxUtil > 1 {
		return s, fmt.Errorf("cluster: overload max utilization %g outside (0, 1]", s.MaxUtil)
	}
	if s.MaxBacklogSec == 0 {
		s.MaxBacklogSec = 1.0
	}
	if s.MaxBacklogSec < 0 {
		return s, fmt.Errorf("cluster: negative overload backlog cap %g", s.MaxBacklogSec)
	}
	return s, nil
}

// overloadCapacity is the admission capacity of the given active set:
// each up node contributes its 100%-utilization capacity scaled to the
// MaxUtil ceiling.
func (c resolvedScenario) overloadCapacity(up []int) float64 {
	var sum float64
	for _, i := range up {
		sum += c.Overload.MaxUtil * capacityQPS(c.Nodes[i])
	}
	return sum
}

// AdmissionCapacityQPS reports the admission ceiling of a full healthy
// fleet at maxUtil — the rate past which a scenario with an overload
// policy starts clipping. Exposed so experiment and CLI layers can size
// overload fixtures relative to real capacity instead of guessing.
func AdmissionCapacityQPS(nodes []server.Config, maxUtil float64) float64 {
	var sum float64
	for _, n := range nodes {
		sum += maxUtil * capacityQPS(n)
	}
	return sum
}

// overloadAccount is one epoch's admission outcome: whether demand
// exceeded capacity, the requests dropped, and the requests still
// queued at the epoch boundary (queue policy).
type overloadAccount struct {
	saturated  bool
	shedded    float64
	backlogReq float64
}

// admission carries the overload-control state across epochs — for the
// shed and degrade policies it is stateless bookkeeping, for queue it
// holds the backlog. One admission instance follows one fleet timeline
// (a fork copies it), and the plan adjuster runs its own, so replayed
// epochs and run-time decisions see identical sequences.
type admission struct {
	policy     string
	maxBacklog float64 // requests; the queue policy's cap
	backlog    float64 // requests queued but not yet admitted
}

// newAdmission builds the run's admission state, or nil when admission
// control is disabled — the nil return mirrors faultPlan's and is what
// guarantees the zero OverloadSpec leaves every code path untouched.
func (c resolvedScenario) newAdmission() *admission {
	if !c.Overload.enabled() {
		return nil
	}
	return &admission{
		policy:     c.Overload.Policy,
		maxBacklog: c.Overload.MaxBacklogSec * c.overloadCapacity(allNodes(len(c.Nodes))),
	}
}

// allNodes is the identity active set: every node index.
func allNodes(n int) []int {
	up := make([]int, n)
	for i := range up {
		up[i] = i
	}
	return up
}

// admit applies the overload policy for one epoch: offered is the
// schedule's mean rate over the window, capacity the active set's
// admission ceiling, winSec the window length. It returns the rate the
// dispatcher should actually route and the epoch's account. When the
// admitted rate equals the offered rate exactly, callers keep the
// original partition untouched (bit-for-bit) — admission only ever
// re-partitions epochs it actually clipped.
func (a *admission) admit(offered, capacity, winSec float64) (float64, overloadAccount) {
	switch a.policy {
	case OverloadDegrade:
		return offered, overloadAccount{saturated: offered > capacity}
	case OverloadQueue:
		demand := offered
		if a.backlog > 0 {
			demand += a.backlog / winSec
		}
		admitted := demand
		if admitted > capacity {
			admitted = capacity
		}
		carried := (demand - admitted) * winSec
		var shed float64
		if carried > a.maxBacklog {
			shed = carried - a.maxBacklog
			carried = a.maxBacklog
		}
		a.backlog = carried
		return admitted, overloadAccount{
			saturated:  demand > capacity,
			shedded:    shed,
			backlogReq: carried,
		}
	default: // OverloadShed
		if offered <= capacity {
			return offered, overloadAccount{}
		}
		return capacity, overloadAccount{
			saturated: true,
			shedded:   (offered - capacity) * winSec,
		}
	}
}

// upSet returns the indices of the nodes not crashed under this epoch's
// fault row (nil means healthy) — the open-loop active set.
func upSet(n int, frow []runner.Fault) []int {
	if frow == nil {
		return allNodes(n)
	}
	up := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !frow[i].Down {
			up = append(up, i)
		}
	}
	return up
}

// applyOverloadPlan runs admission control over the precomputed epoch
// plan — the open-loop (and oracle-replay) counterpart of the run-time
// admission the controller path performs. It walks the plan in epoch
// order (the queue policy's backlog is sequential state), clips each
// epoch's rate to the up set's capacity per the policy, re-partitions
// only the epochs it clipped, and records each epoch's account on its
// window. Runs after applyFaultRates, so capacity reflects crashed
// nodes.
func applyOverloadPlan(c resolvedScenario, part func(Config) []float64, plan []epochWindow, faults [][]runner.Fault) {
	adm := c.newAdmission()
	if adm == nil {
		return
	}
	for e := range plan {
		pw := &plan[e]
		var frow []runner.Fault
		if faults != nil {
			frow = faults[e]
		}
		up := upSet(len(c.Nodes), frow)
		winSec := float64(pw.end-pw.start) / 1e9
		admitted, acct := adm.admit(pw.rate, c.overloadCapacity(up), winSec)
		if admitted != pw.rate {
			pw.rates = partitionOver(c, part, admitted, up)
		}
		pw.saturated = acct.saturated
		pw.shedded = acct.shedded
		pw.backlogReq = acct.backlogReq
	}
}

// account packages a planned window's recorded admission outcome.
func (pw epochWindow) account() overloadAccount {
	return overloadAccount{saturated: pw.saturated, shedded: pw.shedded, backlogReq: pw.backlogReq}
}
