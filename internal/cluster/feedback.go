package cluster

import (
	"fmt"
	"sort"

	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// liveClass is one timeline equivalence class of a *controlled* run,
// grown epoch by epoch. Under a controller the epoch plan is no longer
// static — each epoch's rate partition depends on the previous epoch's
// realized telemetry — so classes cannot be fixed up front from the
// schedule; instead the fleet starts collapsed by base node key (nodes
// that are bit-identical simulations before any load arrives) and a
// class splits the first epoch the controller's decisions route its
// members different rates. Members whose decision streams stay
// identical stay collapsed for the whole run, preserving the
// class-collapse economics of the open-loop warm path.
type liveClass struct {
	// rep is the representative: the class's first member node index.
	rep int
	// members lists every member node index, in fleet order.
	members []int
	// node is the representative's configuration.
	node server.Config
	// ins is the representative's fault-aware timeline cursor. Nil on a
	// class just split off its parent: the epoch executor then
	// reconstructs the cursor by replaying the realized prefix (exact by
	// determinism — the split class shared the parent's rates and faults
	// until now).
	ins *runner.TimelineCursor
	// intervals is the realized rate-and-fault timeline so far.
	intervals []runner.Interval
	// results[e] is epoch e's measurement.
	results []server.IntervalResult
	// rate is the current epoch's routed per-node rate.
	rate float64
	// fault is the current epoch's fault annotation.
	fault runner.Fault
}

// initialLiveClasses collapses the fleet by base node key: before any
// rates diverge, nodes with equal configurations (and the shared park
// flag) are bit-identical simulations. Uncacheable nodes cannot prove
// equivalence by key and stay singletons, exactly as in the open-loop
// classifier.
func initialLiveClasses(c resolvedScenario) []*liveClass {
	classes := make([]*liveClass, 0, 16)
	index := make(map[string]int, len(c.Nodes))
	for i := range c.Nodes {
		if key, ok := runner.Key(c.Nodes[i]); ok {
			if ci, seen := index[key]; seen {
				classes[ci].members = append(classes[ci].members, i)
				continue
			}
			index[key] = len(classes)
		}
		classes = append(classes, &liveClass{rep: i, members: []int{i}, node: c.Nodes[i]})
	}
	return classes
}

// rateFault is splitByRate's bucket key: members stay collapsed only
// while they share both the routed rate and the epoch's fault
// annotation — a faulted node can never ride a healthy representative.
type rateFault struct {
	rate  float64
	fault runner.Fault
}

// splitByRate partitions the classes so that every class's members
// share this epoch's routed rate and fault annotation, setting each
// class's rate and fault fields. A sub-class keeping the first member
// inherits the parent's live cursor; the others start with ins nil plus
// a copy of the realized prefix, and the epoch executor replays them
// onto fresh cursors. Member order and the first-member-owns-the-state
// rule keep the final class partition identical to what full-timeline
// classification of the realized rates and faults would produce. faults
// is this epoch's per-node annotation row; nil means healthy.
func splitByRate(classes []*liveClass, rates []float64, faults []runner.Fault) []*liveClass {
	faultOf := func(m int) runner.Fault {
		if faults == nil {
			return runner.Fault{}
		}
		return faults[m]
	}
	out := make([]*liveClass, 0, len(classes))
	for _, cl := range classes {
		first := rateFault{rates[cl.members[0]], faultOf(cl.members[0])}
		uniform := true
		for _, m := range cl.members[1:] {
			if (rateFault{rates[m], faultOf(m)}) != first {
				uniform = false
				break
			}
		}
		if uniform {
			cl.rate, cl.fault = first.rate, first.fault
			out = append(out, cl)
			continue
		}
		// Bucket members by (rate, fault), preserving fleet order within
		// and across buckets (first-seen order).
		var subs []*liveClass
		bucket := map[rateFault]int{}
		for _, m := range cl.members {
			rf := rateFault{rates[m], faultOf(m)}
			if si, ok := bucket[rf]; ok {
				subs[si].members = append(subs[si].members, m)
				continue
			}
			bucket[rf] = len(subs)
			sub := &liveClass{
				rep:     m,
				members: []int{m},
				node:    cl.node,
				rate:    rf.rate,
				fault:   rf.fault,
			}
			if len(subs) == 0 {
				// First bucket holds members[0]: it keeps the parent's live
				// state and history in place.
				sub.ins = cl.ins
				sub.intervals = cl.intervals
				sub.results = cl.results
			} else {
				sub.intervals = append([]runner.Interval(nil), cl.intervals...)
				sub.results = append([]server.IntervalResult(nil), cl.results...)
			}
			subs = append(subs, sub)
		}
		out = append(out, subs...)
	}
	return out
}

// runControlledEpoch advances every class one epoch at its routed rate
// and fault, reconstructing freshly split classes first. Classes are
// independent simulations, so the fan-out is parallel; a split class's
// replay is part of its own task.
func runControlledEpoch(classes []*liveClass, window sim.Time, c resolvedScenario, r *runner.Runner) error {
	return r.Each(len(classes), func(ci int) error {
		cl := classes[ci]
		if cl.ins == nil {
			cur, err := runner.NewCursor(cl.node, c.ParkDrained)
			if err != nil {
				return fmt.Errorf("cluster: node %d split replay: %w", cl.rep, err)
			}
			for i, iv := range cl.intervals {
				// The replayed measurements are bit-identical to the prefix
				// copied from the parent at split time; only the cursor
				// state (instance, crash/restart history) matters here.
				if _, err := cur.Step(iv); err != nil {
					return fmt.Errorf("cluster: node %d split replay interval %d: %w", cl.rep, i, err)
				}
			}
			cl.ins = cur
		}
		next := runner.Interval{Window: window, Rate: cl.rate, Fault: cl.fault}
		iv, err := cl.ins.Step(next)
		if err != nil {
			return fmt.Errorf("cluster: node %d epoch %d: %w", cl.rep, len(cl.results), err)
		}
		cl.results = append(cl.results, iv)
		cl.intervals = append(cl.intervals, next)
		return nil
	})
}

// activeRates partitions the epoch's offered rate across the target-
// node active prefix with the configured dispatch policy; the tail is
// routed nothing (and parks, under ParkDrained). The offered rate
// itself is known to the dispatcher — routing is instantaneous; it is
// the *capacity* (which nodes are awake) that lags by the controller's
// decision delay. faults is this epoch's fault row (nil when healthy):
// crashed nodes are skipped, so the active set is the first target *up*
// nodes — the dispatcher knows a dead server when it sees one, even if
// the controller's sizing decision lags. With fewer than target up
// nodes the whole surviving fleet serves.
func activeRates(c resolvedScenario, part func(Config) []float64, rate float64, target int, faults []runner.Fault) []float64 {
	return partitionOver(c, part, rate, activeSet(c, target, faults))
}

// activeSet returns the active node indices for a controller target:
// the first target up nodes in fleet order (crashed nodes skipped).
// With fewer than target up nodes the whole surviving fleet serves.
func activeSet(c resolvedScenario, target int, faults []runner.Fault) []int {
	up := make([]int, 0, target)
	for i := range c.Nodes {
		if faults != nil && faults[i].Down {
			continue
		}
		up = append(up, i)
		if len(up) == target {
			break
		}
	}
	return up
}

// partitionOver routes rate across the given active set with the
// configured dispatch policy, expanded back to fleet order; nodes
// outside the set are routed nothing. An empty set routes nothing at
// all — the whole fleet is dark.
func partitionOver(c resolvedScenario, part func(Config) []float64, rate float64, up []int) []float64 {
	rates := make([]float64, len(c.Nodes))
	if len(up) == 0 {
		return rates
	}
	upNodes := make([]server.Config, len(up))
	for j, i := range up {
		upNodes[j] = c.Nodes[i]
	}
	sub := part(Config{
		Nodes:      upNodes,
		RateQPS:    rate,
		Dispatch:   c.Dispatch,
		TargetUtil: c.TargetUtil,
	})
	for j, i := range up {
		rates[i] = sub[j]
	}
	return rates
}

// runScenarioControlled executes the epoch plan under a fleet
// controller: the plan's schedule windows are kept, but each epoch's
// rate partition is decided at run time — by the controller for the
// closed-loop policies, or replayed verbatim from the precomputed plan
// for the oracle. The engine is incremental: live classes extend their
// timelines epoch by epoch, a telemetry sample is folded at every
// boundary, and the controller's next decision is taken against the
// *finished* epoch's telemetry (one full epoch of lag, the honest
// feedback regime). After the last epoch the realized timelines are
// repackaged as ordinary timeline classes, so replica error bars and
// all per-epoch/per-phase aggregation reuse the open-loop machinery
// unchanged — which is also what lets the oracle reproduce the
// open-loop goldens bit-for-bit through this engine.
func runScenarioControlled(c resolvedScenario, plan []epochWindow, faults [][]runner.Fault, part func(Config) []float64, r *runner.Runner, out *ScenarioResult) error {
	n := len(c.Nodes)
	oracle := c.Controller.New == nil && c.Controller.Name == ControllerOracle
	ctrl := newController(c.Controller, FleetInfo{
		Nodes:      n,
		PerNodeQPS: meanCapacityQPS(c.Nodes),
		TargetUtil: c.Controller.TargetUtil,
		Epoch:      c.Epoch,
	})

	adm := c.newAdmission()
	classes := initialLiveClasses(c)
	realized := make([]epochWindow, len(plan))
	targets := make([]int, len(plan))
	target := n // cold start: everything active until telemetry arrives
	var tel FleetTelemetry
	for e, pw := range plan {
		var frow []runner.Fault
		if faults != nil {
			frow = faults[e]
		}
		var rates []float64
		var acct overloadAccount
		if oracle || ctrl == nil {
			// The plan's rates are already fault- and admission-adjusted
			// (crashed nodes carry zero; clipped epochs their admitted
			// partition), so the oracle replays rates and admission
			// accounts verbatim and its targets exclude dark nodes.
			rates = pw.rates
			acct = pw.account()
			if adm != nil {
				adm.backlog = pw.backlogReq
			}
			target = 0
			for _, rt := range rates {
				if rt > 0 {
					target++
				}
			}
		} else {
			if e > 0 {
				target = clampTarget(ctrl.Observe(tel), n)
			}
			// Run-time admission: the controller's shrunken active set is
			// the capacity the policy admits against — a consolidated
			// fleet saturates before a fully unparked one would.
			up := activeSet(c, target, frow)
			route := pw.rate
			if adm != nil {
				winSec := float64(pw.end-pw.start) / 1e9
				route, acct = adm.admit(pw.rate, c.overloadCapacity(up), winSec)
			}
			rates = partitionOver(c, part, route, up)
		}
		targets[e] = target
		realized[e] = epochWindow{
			start: pw.start, end: pw.end, rate: pw.rate, phase: pw.phase, rates: rates,
			saturated: acct.saturated, shedded: acct.shedded, backlogReq: acct.backlogReq,
		}

		classes = splitByRate(classes, rates, frow)
		if err := runControlledEpoch(classes, pw.end-pw.start, c, r); err != nil {
			return err
		}
		tel = fleetTelemetry(e, realized[e], classes, c.CompactNodes, n)
	}

	// Repackage the realized timelines as ordinary timeline classes,
	// ordered like the open-loop classifier's output (first-member
	// position), and hand everything downstream to the open-loop
	// aggregation: replicas, CIs, park bookkeeping, compact expansion.
	sort.Slice(classes, func(i, j int) bool { return classes[i].rep < classes[j].rep })
	tclasses := make([]timelineClass, len(classes))
	for ci, cl := range classes {
		tclasses[ci] = timelineClass{
			rep:     cl.rep,
			members: cl.members,
			spec:    runner.TimelineSpec{Node: cl.node, Park: c.ParkDrained, Intervals: cl.intervals},
			results: make([][]server.IntervalResult, c.Replicas+1),
		}
		tclasses[ci].results[0] = cl.results
	}
	out.Classes = len(tclasses)
	out.ReplicaRuns = len(tclasses) * c.Replicas
	r.NoteClassDedup(n, len(tclasses), out.ReplicaRuns)
	if c.Replicas > 0 {
		if err := runControlledReplicas(tclasses, c.Replicas, r); err != nil {
			return err
		}
	}
	if c.CompactNodes {
		warmEpochsCompact(c, realized, tclasses, out)
	} else {
		warmEpochsExpanded(c, realized, tclasses, out)
	}
	out.CI = scenarioClassCI(tclasses, realized, c.Replicas)

	out.Controller = c.Controller.displayName()
	prev := -1
	for e := range out.Epochs {
		out.Epochs[e].TargetNodes = targets[e]
		if prev >= 0 && targets[e] != prev {
			out.ControllerChanges++
		}
		prev = targets[e]
	}
	return nil
}

// runControlledReplicas runs the K seeded replicas of every realized
// class timeline, exactly as the open-loop runClasses does for
// replicas: replica rep of class ci re-runs the representative's
// realized spec under seed xrand.ClassReplicaSeed(ci, rep), through the
// memoized RunTimeline.
func runControlledReplicas(classes []timelineClass, k int, r *runner.Runner) error {
	return r.Each(len(classes)*k, func(t int) error {
		ci, rep := t/k, t%k+1
		spec := classes[ci].spec
		spec.Node.Seed = xrand.ClassReplicaSeed(ci, rep)
		res, err := r.RunTimeline(spec)
		if err != nil {
			return fmt.Errorf("cluster: node %d realized timeline (class %d replica %d): %w",
				classes[ci].rep, ci, rep, err)
		}
		classes[ci].results[rep] = res
		return nil
	})
}

// meanCapacityQPS is the fleet's mean per-node capacity — the sizing
// unit controllers provision in.
func meanCapacityQPS(nodes []server.Config) float64 {
	if len(nodes) == 0 {
		return 0
	}
	var sum float64
	for _, n := range nodes {
		sum += capacityQPS(n)
	}
	return sum / float64(len(nodes))
}
