package cluster

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// CI is a two-sided 95% confidence interval.
type CI struct {
	Lo, Hi float64
}

// FleetCI carries the replica-ensemble 95% confidence intervals a
// scenario run with Replicas > 0 reports. Each interval is a Student-t
// interval over Samples independent virtual fleets: for replica index r,
// every class contributes its r-th measurement multiplied by the class
// size, so the ensemble spread is exactly the per-class sample variance
// propagated through the fleet sums (and through the max, for worst-p99,
// which has no closed-form propagation). Intervals are centered on the
// ensemble mean; the point-estimate fields on EpochResult.Fleet and
// ScenarioResult remain the representatives' exact measurements.
type FleetCI struct {
	// Samples is the ensemble size: the representative plus K replicas.
	Samples int
	// FleetPowerW bounds the total fleet package power (W).
	FleetPowerW CI
	// QPSPerWatt bounds completions per joule.
	QPSPerWatt CI
	// WorstP99US bounds the worst per-node server p99 (us).
	WorstP99US CI
}

// timelineClass is one timeline equivalence class of the fleet: every
// member node is a bit-identical simulation (same node fingerprint,
// park flag and per-epoch rate timeline — the runner.TimelineKey), so
// one representative run stands for all of them, plus K seeded replicas
// for error bars.
type timelineClass struct {
	// rep is the representative: the class's first member node index.
	rep int
	// members lists every member node index, in fleet order.
	members []int
	// spec is the representative's timeline.
	spec runner.TimelineSpec
	// results[r][e] is replica r's epoch-e measurement; replica 0 is the
	// representative under its own natural seed.
	results [][]server.IntervalResult
}

// classifyTimelines groups the fleet into timeline equivalence classes
// keyed by runner.TimelineKey, preserving fleet order (a class sits at
// its first member's position). Uncacheable nodes (custom catalog,
// trace hook, live profile) cannot prove equivalence by key and stay
// singleton classes, which also makes a deliberately heterogeneous
// fleet degrade gracefully to one class per node — exactly today's
// behavior, with today's cost. Fault annotations (faults[e][i], nil on
// healthy runs) are part of each interval and therefore of the class
// key, so a faulted node can never collapse with a healthy one.
func classifyTimelines(c resolvedScenario, plan []epochWindow, faults [][]runner.Fault) []timelineClass {
	classes := make([]timelineClass, 0, 16)
	index := make(map[string]int, len(c.Nodes))
	for i := range c.Nodes {
		intervals := make([]runner.Interval, len(plan))
		for e, pw := range plan {
			intervals[e] = runner.Interval{Window: pw.end - pw.start, Rate: pw.rates[i]}
			if faults != nil {
				intervals[e].Fault = faults[e][i]
			}
		}
		spec := runner.TimelineSpec{Node: c.Nodes[i], Park: c.ParkDrained, Intervals: intervals}
		if key, ok := runner.TimelineKey(spec); ok {
			if ci, seen := index[key]; seen {
				classes[ci].members = append(classes[ci].members, i)
				continue
			}
			index[key] = len(classes)
		}
		classes = append(classes, timelineClass{rep: i, members: []int{i}, spec: spec})
	}
	return classes
}

// runClasses executes every class representative plus its k seeded
// replicas, each as one independent pipelined runner task. Replica r of
// class c runs the representative's exact spec under seed
// xrand.ClassReplicaSeed(c, r) — drawn from the plane disjoint from all
// node and epoch-mixed seeds, so a replica can never alias a real
// node's simulation in the memo cache.
func runClasses(classes []timelineClass, k int, r *runner.Runner) error {
	per := k + 1
	for ci := range classes {
		classes[ci].results = make([][]server.IntervalResult, per)
	}
	return r.Each(len(classes)*per, func(t int) error {
		ci, rep := t/per, t%per
		spec := classes[ci].spec
		if rep > 0 {
			spec.Node.Seed = xrand.ClassReplicaSeed(ci, rep)
		}
		res, err := r.RunTimeline(spec)
		if err != nil {
			return fmt.Errorf("cluster: node %d timeline (class %d replica %d): %w",
				classes[ci].rep, ci, rep, err)
		}
		classes[ci].results[rep] = res
		return nil
	})
}

// ciOf returns the 95% Student-t interval around the mean of xs.
func ciOf(xs []float64) CI {
	mean, half := stats.MeanCI95(xs)
	return CI{Lo: mean - half, Hi: mean + half}
}

// epochClassCI builds epoch e's confidence intervals from the k+1
// replica ensembles, or nil when no replicas were requested.
func epochClassCI(classes []timelineClass, e, k int) *FleetCI {
	if k <= 0 {
		return nil
	}
	n := k + 1
	power := make([]float64, n)
	qps := make([]float64, n)
	worst := make([]float64, n)
	for ci := range classes {
		cl := &classes[ci]
		m := float64(len(cl.members))
		for rep := 0; rep < n; rep++ {
			res := &cl.results[rep][e].Result
			power[rep] += m * res.PackagePowerW
			qps[rep] += m * res.CompletedPerSec
			if res.Server.P99US > worst[rep] {
				worst[rep] = res.Server.P99US
			}
		}
	}
	qpw := make([]float64, n)
	for rep, p := range power {
		if p > 0 {
			qpw[rep] = qps[rep] / p
		}
	}
	return &FleetCI{Samples: n, FleetPowerW: ciOf(power), QPSPerWatt: ciOf(qpw), WorstP99US: ciOf(worst)}
}

// scenarioClassCI builds the whole-run confidence intervals: each
// replica index yields one virtual whole-scenario fleet (time-weighted
// mean power, completions per joule, max worst-p99 over epochs), and
// the intervals are t-intervals over those k+1 runs.
func scenarioClassCI(classes []timelineClass, plan []epochWindow, k int) *FleetCI {
	if k <= 0 {
		return nil
	}
	n := k + 1
	energy := make([]float64, n)
	comps := make([]float64, n)
	worst := make([]float64, n)
	var totalSec float64
	for e, pw := range plan {
		winSec := float64(pw.end-pw.start) / 1e9
		totalSec += winSec
		for ci := range classes {
			cl := &classes[ci]
			m := float64(len(cl.members))
			for rep := 0; rep < n; rep++ {
				res := &cl.results[rep][e].Result
				energy[rep] += m * res.PackagePowerW * winSec
				comps[rep] += m * res.CompletedPerSec * winSec
				if res.Server.P99US > worst[rep] {
					worst[rep] = res.Server.P99US
				}
			}
		}
	}
	power := make([]float64, n)
	qpw := make([]float64, n)
	for rep := range energy {
		if totalSec > 0 {
			power[rep] = energy[rep] / totalSec
		}
		if energy[rep] > 0 {
			qpw[rep] = comps[rep] / energy[rep]
		}
	}
	return &FleetCI{Samples: n, FleetPowerW: ciOf(power), QPSPerWatt: ciOf(qpw), WorstP99US: ciOf(worst)}
}
