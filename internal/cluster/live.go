package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/snapbuf"
)

// Live is a warm fleet scenario stepped one epoch at a time under
// caller control — the digital-twin engine behind the awserved daemon.
// Where RunScenario executes the whole plan and returns, a Live holds
// the fleet mid-scenario: Step advances it by one epoch (controller
// decisions and fault plan applied exactly as RunScenario would),
// StepTarget forces the next epoch's active-node target (the what-if
// knob), Telemetry exposes each finished epoch's fleet sample, Fork
// spawns an independent bit-identical copy, and Snapshot/RestoreLive
// checkpoint the whole fleet across processes.
//
// Determinism contract: a Live stepped to completion produces exactly
// the ScenarioResult RunScenario returns for the same config (modulo
// nothing — DeepEqual), and a fork's subsequent timeline is bit-
// identical to its parent's. Both properties are pinned by tests.
//
// A Live is single-goroutine, like the instances it wraps.
type Live struct {
	c      resolvedScenario
	part   func(Config) []float64
	r      *runner.Runner
	plan   []epochWindow
	faults [][]runner.Fault
	// replay marks plan-replay mode: open-loop configs and the oracle
	// controller take each epoch's rates from the precomputed plan;
	// otherwise ctrl decides each unforced epoch's target.
	replay bool
	ctrl   Controller
	// adm is the run-time admission state (nil when overload control is
	// disabled): forced and controller-decided epochs admit against the
	// active set at step time; replayed epochs re-sync it to the plan's
	// precomputed accounts.
	adm *admission

	classes  []*liveClass
	realized []epochWindow
	targets  []int
	forced   []bool
	tels     []FleetTelemetry
	target   int
	epoch    int
}

// NewLive builds the steppable fleet for the scenario config. Any
// warm-path config RunScenario accepts is steppable; ColdEpochs is not
// (its engine has no persistent per-node state to hold).
func NewLive(cfg ScenarioConfig) (*Live, error) {
	c, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if c.ColdEpochs {
		return nil, fmt.Errorf("cluster: a live scenario needs the warm path (ColdEpochs is set)")
	}
	part, err := partitioner(c.Dispatch)
	if err != nil {
		return nil, err
	}
	r := c.Runner
	if r == nil {
		r = runner.Default()
	}
	plan := planEpochs(c, part, c.total)
	faults := c.faultPlan(plan)
	if faults != nil {
		applyFaultRates(c, part, plan, faults)
	}
	applyOverloadPlan(c, part, plan, faults)
	l := &Live{
		c:      c,
		part:   part,
		r:      r,
		plan:   plan,
		faults: faults,
		target: len(c.Nodes), // cold start: everything active until telemetry arrives
	}
	l.ctrl = newController(c.Controller, l.fleetInfo())
	l.replay = l.ctrl == nil
	l.adm = c.newAdmission()
	l.classes = initialLiveClasses(c)
	return l, nil
}

func (l *Live) fleetInfo() FleetInfo {
	return FleetInfo{
		Nodes:      len(l.c.Nodes),
		PerNodeQPS: meanCapacityQPS(l.c.Nodes),
		TargetUtil: l.c.Controller.TargetUtil,
		Epoch:      l.c.Epoch,
	}
}

// Epochs returns the plan length; Epoch the number already completed;
// Done whether the scenario has run out of schedule.
func (l *Live) Epochs() int { return len(l.plan) }
func (l *Live) Epoch() int  { return l.epoch }
func (l *Live) Done() bool  { return l.epoch >= len(l.plan) }

// Clock returns the fleet's simulated position: the end of the last
// completed epoch.
func (l *Live) Clock() sim.Time {
	if l.epoch == 0 {
		return 0
	}
	return l.realized[l.epoch-1].end
}

// Telemetry returns the last completed epoch's fleet sample; ok is
// false before the first Step.
func (l *Live) Telemetry() (FleetTelemetry, bool) {
	if l.epoch == 0 {
		return FleetTelemetry{}, false
	}
	return l.tels[l.epoch-1], true
}

// History returns a copy of the fleet samples for every completed
// epoch, in epoch order — the stream a monitoring frontend replays
// after attaching mid-run (or after a restore, whose re-stepped epochs
// land here exactly as the original run recorded them).
func (l *Live) History() []FleetTelemetry {
	out := make([]FleetTelemetry, l.epoch)
	copy(out, l.tels[:l.epoch])
	return out
}

// Step advances the fleet one epoch: the controller (or the plan, in
// replay mode) decides the active set, the dispatcher routes the
// epoch's offered rate, every class simulates its window, and the
// boundary telemetry is folded and returned.
func (l *Live) Step() (FleetTelemetry, error) {
	return l.step(0, false)
}

// StepTarget advances the fleet one epoch with the active-node target
// forced to target — the what-if knob ("park all but 8 nodes for the
// next hour" is a sequence of StepTarget(8) calls on a fork). The
// forced epoch bypasses the controller entirely: its state does not
// advance, exactly as if an operator had overridden the autoscaler for
// the window.
func (l *Live) StepTarget(target int) (FleetTelemetry, error) {
	return l.step(target, true)
}

func (l *Live) step(forcedTarget int, force bool) (FleetTelemetry, error) {
	if l.Done() {
		return FleetTelemetry{}, fmt.Errorf("cluster: live scenario finished (all %d epochs stepped)", len(l.plan))
	}
	e := l.epoch
	pw := l.plan[e]
	var frow []runner.Fault
	if l.faults != nil {
		frow = l.faults[e]
	}
	target := l.target
	var rates []float64
	var acct overloadAccount
	admitted := func(up []int) []float64 {
		route := pw.rate
		if l.adm != nil {
			winSec := float64(pw.end-pw.start) / 1e9
			route, acct = l.adm.admit(pw.rate, l.c.overloadCapacity(up), winSec)
		}
		return partitionOver(l.c, l.part, route, up)
	}
	switch {
	case force:
		target = clampTarget(forcedTarget, len(l.c.Nodes))
		rates = admitted(activeSet(l.c, target, frow))
	case l.replay:
		// The plan's rates are already fault- and admission-adjusted
		// (crashed nodes carry zero; clipped epochs their admitted
		// partition), so the replay reuses the planned rates and
		// accounts, re-syncing the backlog so a later forced step
		// carries it forward from the plan's state.
		rates = pw.rates
		acct = pw.account()
		if l.adm != nil {
			l.adm.backlog = pw.backlogReq
		}
		target = 0
		for _, rt := range rates {
			if rt > 0 {
				target++
			}
		}
	default:
		if e > 0 {
			target = clampTarget(l.ctrl.Observe(l.tels[e-1]), len(l.c.Nodes))
		}
		rates = admitted(activeSet(l.c, target, frow))
	}

	realized := epochWindow{
		start: pw.start, end: pw.end, rate: pw.rate, phase: pw.phase, rates: rates,
		saturated: acct.saturated, shedded: acct.shedded, backlogReq: acct.backlogReq,
	}
	l.classes = splitByRate(l.classes, rates, frow)
	if err := runControlledEpoch(l.classes, pw.end-pw.start, l.c, l.r); err != nil {
		return FleetTelemetry{}, err
	}
	tel := fleetTelemetry(e, realized, l.classes, l.c.CompactNodes, len(l.c.Nodes))

	l.target = target
	l.realized = append(l.realized, realized)
	l.targets = append(l.targets, target)
	l.forced = append(l.forced, force)
	l.tels = append(l.tels, tel)
	l.epoch++
	return tel, nil
}

// Result packages the epochs completed so far exactly as RunScenario
// would: realized timelines become timeline classes, replicas add
// seeded error bars, park/restart bookkeeping and phase aggregation run
// downstream unchanged. A Live stepped to completion returns a result
// DeepEqual to RunScenario's for the same config.
func (l *Live) Result() (ScenarioResult, error) {
	if l.epoch == 0 {
		return ScenarioResult{}, fmt.Errorf("cluster: live scenario has no completed epochs to report")
	}
	out := ScenarioResult{
		Schedule:  l.c.Schedule.Name(),
		Dispatch:  l.c.Dispatch,
		Epoch:     l.c.Epoch,
		TotalTime: l.c.total,
		Overload:  l.c.Overload.Policy,
	}
	realized := l.realized[:l.epoch]
	classes := append([]*liveClass(nil), l.classes...)
	sort.Slice(classes, func(i, j int) bool { return classes[i].rep < classes[j].rep })
	tclasses := make([]timelineClass, len(classes))
	for ci, cl := range classes {
		tclasses[ci] = timelineClass{
			rep:     cl.rep,
			members: cl.members,
			spec:    runner.TimelineSpec{Node: cl.node, Park: l.c.ParkDrained, Intervals: cl.intervals},
			results: make([][]server.IntervalResult, l.c.Replicas+1),
		}
		tclasses[ci].results[0] = cl.results
	}
	out.Classes = len(tclasses)
	out.ReplicaRuns = len(tclasses) * l.c.Replicas
	if l.c.Replicas > 0 {
		if err := runControlledReplicas(tclasses, l.c.Replicas, l.r); err != nil {
			return ScenarioResult{}, err
		}
	}
	if l.c.CompactNodes {
		warmEpochsCompact(l.c, realized, tclasses, &out)
	} else {
		warmEpochsExpanded(l.c, realized, tclasses, &out)
	}
	out.CI = scenarioClassCI(tclasses, realized, l.c.Replicas)
	if l.c.Controller.enabled() {
		out.Controller = l.c.Controller.displayName()
		prev := -1
		for e := range out.Epochs {
			out.Epochs[e].TargetNodes = l.targets[e]
			if prev >= 0 && l.targets[e] != prev {
				out.ControllerChanges++
			}
			prev = l.targets[e]
		}
	}
	out.finish()
	return out, nil
}

// Fork returns an independent copy of the fleet at the current epoch
// boundary. The copy shares nothing mutable with the parent: class
// timelines are copied, warm cursors are rebuilt lazily by
// deterministic prefix replay (the same mechanism a class split uses),
// and the controller is rebuilt by replaying its observation history.
// Stepping the fork and the parent through identical futures yields
// bit-identical measurements — what-if queries run on forks so the
// live fleet is never disturbed.
func (l *Live) Fork() *Live {
	n := &Live{
		c:        l.c,
		part:     l.part,
		r:        l.r,
		plan:     l.plan,
		faults:   l.faults,
		replay:   l.replay,
		realized: append([]epochWindow(nil), l.realized...),
		targets:  append([]int(nil), l.targets...),
		forced:   append([]bool(nil), l.forced...),
		tels:     append([]FleetTelemetry(nil), l.tels...),
		target:   l.target,
		epoch:    l.epoch,
	}
	if l.adm != nil {
		admCopy := *l.adm
		n.adm = &admCopy
	}
	n.classes = make([]*liveClass, len(l.classes))
	for ci, cl := range l.classes {
		n.classes[ci] = &liveClass{
			rep:       cl.rep,
			members:   append([]int(nil), cl.members...),
			node:      cl.node,
			intervals: append([]runner.Interval(nil), cl.intervals...),
			results:   append([]server.IntervalResult(nil), cl.results...),
			rate:      cl.rate,
			fault:     cl.fault,
		}
	}
	n.ctrl = n.rebuildController()
	return n
}

// rebuildController reconstructs the controller's internal state by
// replaying its observation history: controllers are deterministic
// functions of the telemetry sequence they observed, and forced
// (StepTarget) epochs bypassed Observe, so replaying the unforced
// prefix reproduces the state machine exactly.
func (l *Live) rebuildController() Controller {
	ctrl := newController(l.c.Controller, l.fleetInfo())
	if ctrl == nil {
		return nil
	}
	for e := 1; e < l.epoch; e++ {
		if !l.forced[e] {
			ctrl.Observe(l.tels[e-1])
		}
	}
	return ctrl
}

// materialize rebuilds every class cursor that is lazily nil (fresh
// forks, just-restored fleets) by prefix replay, in parallel.
func (l *Live) materialize() error {
	return l.r.Each(len(l.classes), func(ci int) error {
		cl := l.classes[ci]
		if cl.ins != nil {
			return nil
		}
		cur, err := runner.NewCursor(cl.node, l.c.ParkDrained)
		if err != nil {
			return fmt.Errorf("cluster: node %d snapshot replay: %w", cl.rep, err)
		}
		for i, iv := range cl.intervals {
			if _, err := cur.Step(iv); err != nil {
				return fmt.Errorf("cluster: node %d snapshot replay interval %d: %w", cl.rep, i, err)
			}
		}
		cl.ins = cur
		return nil
	})
}

// liveSnapshotVersion versions the fleet checkpoint document. Same
// policy as the instance format: bumped on any encoding or replay-
// equivalence change, no cross-version migration. Version 2 added the
// overload admission policy to the identity block.
const liveSnapshotVersion = 2

// Snapshot checkpoints the fleet: an identity block naming the
// scenario shape (restore rejects a mismatched config), the decision
// history (per-epoch targets and which were forced), and a per-class
// verification block with each representative's full instance
// snapshot. RestoreLive re-steps the scenario deterministically and
// then proves byte-equality of every rebuilt instance against the
// captured ones, so a checkpoint can never silently restore onto a
// diverged simulator or a different scenario file.
func (l *Live) Snapshot() ([]byte, error) {
	if err := l.materialize(); err != nil {
		return nil, err
	}
	var e snapbuf.Encoder
	e.U8(liveSnapshotVersion)

	// Identity block.
	e.I64(int64(len(l.c.Nodes)))
	e.I64(int64(len(l.plan)))
	e.I64(int64(l.c.total))
	e.I64(int64(l.c.Epoch))
	e.Str(l.c.Schedule.Name())
	e.Str(l.c.Dispatch)
	e.Str(l.c.Controller.Name)
	e.Bool(l.c.ParkDrained)
	e.Bool(l.c.CompactNodes)
	e.I64(int64(l.c.Replicas))
	e.Str(l.c.Overload.Policy)
	e.F64(l.c.Overload.MaxUtil)
	e.F64(l.c.Overload.MaxBacklogSec)

	// Decision history.
	e.I64(int64(l.epoch))
	for i := 0; i < l.epoch; i++ {
		e.I64(int64(l.targets[i]))
		e.Bool(l.forced[i])
	}

	// Per-class verification block.
	e.I64(int64(len(l.classes)))
	for _, cl := range l.classes {
		e.I64(int64(cl.rep))
		e.I64(int64(len(cl.members)))
		e.Bool(cl.ins.Down())
		e.I64(int64(cl.ins.Restarts()))
		if ins := cl.ins.Instance(); ins != nil {
			blob, err := ins.Snapshot()
			if err != nil {
				return nil, fmt.Errorf("cluster: snapshot: node %d: %w", cl.rep, err)
			}
			e.Bytes(blob)
		} else {
			e.Bytes(nil) // crashed: no warm state to capture
		}
	}
	return e.Buf, nil
}

// RestoreLive rebuilds a fleet checkpoint taken by Live.Snapshot. The
// caller supplies the same ScenarioConfig the checkpoint was taken
// under (the daemon holds the scenario file; the payload carries only
// an identity block to reject mismatches). The decision history is
// re-stepped through the normal engine — deterministic replay — and
// every rebuilt class representative is verified byte-for-byte against
// its captured instance snapshot.
func RestoreLive(cfg ScenarioConfig, data []byte) (*Live, error) {
	d := snapbuf.NewDecoder(data)
	if v := d.U8(); d.Err() == nil && v != liveSnapshotVersion {
		return nil, fmt.Errorf("cluster: restore: unknown fleet snapshot version %d (want %d)", v, liveSnapshotVersion)
	}
	l, err := NewLive(cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: restore: %w", err)
	}

	// Identity block.
	type ident struct {
		nodes, plan          int64
		total, epoch         int64
		sched, disp          string
		ctrl                 string
		park, compact        bool
		replicas             int64
		overload             string
		maxUtil, maxBacklogS float64
	}
	got := ident{
		nodes: int64(len(l.c.Nodes)), plan: int64(len(l.plan)),
		total: int64(l.c.total), epoch: int64(l.c.Epoch),
		sched: l.c.Schedule.Name(), disp: l.c.Dispatch,
		ctrl: l.c.Controller.Name, park: l.c.ParkDrained,
		compact: l.c.CompactNodes, replicas: int64(l.c.Replicas),
		overload: l.c.Overload.Policy, maxUtil: l.c.Overload.MaxUtil,
		maxBacklogS: l.c.Overload.MaxBacklogSec,
	}
	want := ident{
		nodes: d.I64(), plan: d.I64(), total: d.I64(), epoch: d.I64(),
		sched: d.Str(), disp: d.Str(), ctrl: d.Str(),
		park: d.Bool(), compact: d.Bool(), replicas: d.I64(),
		overload: d.Str(), maxUtil: d.F64(), maxBacklogS: d.F64(),
	}
	if d.Err() == nil && got != want {
		return nil, fmt.Errorf("cluster: restore: scenario config does not match the checkpoint (have %+v, checkpoint %+v)", got, want)
	}

	// Decision history.
	nEpochs := d.I64()
	if d.Err() == nil && (nEpochs < 0 || nEpochs > int64(len(l.plan))) {
		return nil, fmt.Errorf("cluster: restore: checkpoint has %d epochs, plan has %d", nEpochs, len(l.plan))
	}
	targets := make([]int, 0, nEpochs)
	forced := make([]bool, 0, nEpochs)
	for i := int64(0); i < nEpochs && d.Err() == nil; i++ {
		targets = append(targets, int(d.I64()))
		forced = append(forced, d.Bool())
	}

	// Verification block (decoded fully before any replay runs, so a
	// truncated payload is rejected without burning simulation time).
	type classCheck struct {
		rep, members, restarts int64
		down                   bool
		blob                   []byte
	}
	nClasses := d.I64()
	if d.Err() == nil && (nClasses < 0 || nClasses > int64(len(l.c.Nodes))) {
		return nil, fmt.Errorf("cluster: restore: implausible class count %d for a %d-node fleet", nClasses, len(l.c.Nodes))
	}
	checks := make([]classCheck, 0, nClasses)
	for i := int64(0); i < nClasses && d.Err() == nil; i++ {
		c := classCheck{rep: d.I64(), members: d.I64()}
		c.down = d.Bool()
		c.restarts = d.I64()
		c.blob = d.Bytes()
		checks = append(checks, c)
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("cluster: restore: %w", err)
	}

	// Deterministic re-step: forced epochs replay their recorded target,
	// unforced epochs re-derive theirs (controller or plan) — and must
	// land on the recorded value, or the simulator/scenario has diverged
	// from the checkpoint.
	for e := 0; e < len(targets); e++ {
		var err error
		if forced[e] {
			_, err = l.StepTarget(targets[e])
		} else {
			_, err = l.Step()
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: restore: replay epoch %d: %w", e, err)
		}
		if l.targets[e] != targets[e] {
			return nil, fmt.Errorf("cluster: restore: replay epoch %d chose target %d, checkpoint recorded %d (simulator changed since capture?)",
				e, l.targets[e], targets[e])
		}
	}

	// Class-structure and instance-state verification.
	if err := l.materialize(); err != nil {
		return nil, fmt.Errorf("cluster: restore: %w", err)
	}
	if len(l.classes) != len(checks) {
		return nil, fmt.Errorf("cluster: restore: replay produced %d classes, checkpoint recorded %d (simulator changed since capture?)",
			len(l.classes), len(checks))
	}
	for ci, cl := range l.classes {
		ck := checks[ci]
		if int64(cl.rep) != ck.rep || int64(len(cl.members)) != ck.members {
			return nil, fmt.Errorf("cluster: restore: class %d is node %d x%d, checkpoint recorded node %d x%d (simulator changed since capture?)",
				ci, cl.rep, len(cl.members), ck.rep, ck.members)
		}
		if cl.ins.Down() != ck.down || int64(cl.ins.Restarts()) != ck.restarts {
			return nil, fmt.Errorf("cluster: restore: class %d crash state diverged from the checkpoint (simulator changed since capture?)", ci)
		}
		ins := cl.ins.Instance()
		if ins == nil {
			if len(ck.blob) != 0 {
				return nil, fmt.Errorf("cluster: restore: class %d replayed as crashed but the checkpoint captured warm state", ci)
			}
			continue
		}
		blob, err := ins.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("cluster: restore: class %d: %w", ci, err)
		}
		if !bytes.Equal(blob, ck.blob) {
			return nil, fmt.Errorf("cluster: restore: class %d instance state diverged from the checkpoint (simulator changed since capture?)", ci)
		}
	}
	return l, nil
}
