package cluster

import (
	"fmt"
	"math"

	"repro/internal/governor"
	"repro/internal/sim"
)

// Controller names accepted by ControllerSpec.Name.
const (
	// ControllerOracle replays the precomputed epoch plan: every decision
	// is the schedule-derived partition the open-loop path would have
	// used, so an oracle run reproduces the open-loop results bit-for-bit
	// while exercising the full closed-loop machinery. It is the
	// never-wrong upper bound the paper's evaluation implicitly assumes.
	ControllerOracle = "oracle"
	// ControllerReactive sizes the fleet from measured utilization:
	// outside the [DownUtil, UpUtil] deadband it retargets toward
	// TargetUtil, and a cooldown holds each decision for Cooldown epochs
	// so one noisy window cannot flap nodes. Reactions lag the load by at
	// least one epoch — the regime where deep-idle exit latency bites.
	ControllerReactive = "reactive"
	// ControllerPredictive forecasts the next epoch's offered rate with
	// the menu governor's EWMA machinery (governor.EWMA at fleet
	// granularity, high-biased) and provisions capacity for the forecast,
	// so ramps are met with nodes already unparked — at the price of
	// over-provisioning after spikes the EWMA remembers.
	ControllerPredictive = "predictive"
)

// Controllers lists the built-in controller names.
func Controllers() []string {
	return []string{ControllerOracle, ControllerReactive, ControllerPredictive}
}

// Controller is a fleet autoscaling policy evaluated at epoch
// boundaries. Observe ingests the telemetry of the epoch that just
// finished — a lagging signal — and returns the target number of active
// nodes for the next epoch; the engine clamps the target to [1, fleet]
// and routes the next epoch's load across the active prefix, parking
// the rest. A Controller is driven from one goroutine and may keep
// state (hysteresis counters, EWMA history) across calls.
type Controller interface {
	// Name identifies the policy.
	Name() string
	// Observe returns the target active node count for the next epoch.
	Observe(t FleetTelemetry) int
}

// FleetInfo is the static fleet description a controller factory sees
// at construction time — everything a sizing policy may precompute.
type FleetInfo struct {
	// Nodes is the fleet size.
	Nodes int
	// PerNodeQPS is the mean per-node capacity at 100% utilization.
	PerNodeQPS float64
	// TargetUtil is the utilization the controller should size for.
	TargetUtil float64
	// Epoch is the decision interval.
	Epoch sim.Time
}

// ControllerSpec selects and tunes a fleet controller by value, so it
// can travel through config structs, CLI flags and experiment tables.
// The zero value means "no controller" (open-loop scenario). Unset
// tuning fields resolve to defaults during Normalize: UpUtil 0.75,
// DownUtil 0.40, TargetUtil from the scenario's dispatch target,
// Cooldown 2 epochs, Alpha 0.3.
type ControllerSpec struct {
	// Name picks a built-in controller (see Controllers). Empty with New
	// nil means open-loop.
	Name string
	// UpUtil and DownUtil bound the reactive deadband: measured
	// utilization above UpUtil scales out, below DownUtil scales in,
	// inside the band holds.
	UpUtil   float64
	DownUtil float64
	// TargetUtil is the utilization the controller sizes the active set
	// for (reactive retarget and predictive provisioning).
	TargetUtil float64
	// Cooldown is the minimum number of epochs between target changes
	// (reactive hysteresis; 1 re-decides every epoch). 0 means default.
	Cooldown int
	// Alpha is the predictive controller's EWMA weight on new
	// observations. 0 means default.
	Alpha float64
	// New overrides Name with a custom controller factory. The factory
	// runs once per scenario, before the first epoch.
	New func(FleetInfo) Controller
}

// enabled reports whether the spec selects any controller.
func (s ControllerSpec) enabled() bool { return s.Name != "" || s.New != nil }

// displayName is the controller name surfaced on results.
func (s ControllerSpec) displayName() string {
	if s.Name != "" {
		return s.Name
	}
	if s.New != nil {
		return "custom"
	}
	return ""
}

// ceilTarget converts a continuous node demand to an integer target,
// saturating instead of overflowing: at saturation a forecast can run
// orders of magnitude past any real fleet, and a float-to-int
// conversion past the int range is implementation-defined — it must
// pin high (so clampTarget lands on the full fleet), never wrap low.
func ceilTarget(v float64) int {
	const maxTarget = 1 << 30
	if math.IsNaN(v) {
		return 1
	}
	if v >= maxTarget {
		return maxTarget
	}
	return int(math.Ceil(v))
}

// clampTarget bounds a controller decision to [1, nodes]: a fleet never
// parks its last node (something must serve the next epoch) and cannot
// unpark nodes it does not have.
func clampTarget(want, nodes int) int {
	if want < 1 {
		return 1
	}
	if want > nodes {
		return nodes
	}
	return want
}

// newController instantiates the spec's policy for a fleet. The oracle
// returns nil: it has no decisions to make — the engine replays the
// precomputed plan verbatim (which is the whole point of the oracle).
func newController(s ControllerSpec, info FleetInfo) Controller {
	if s.New != nil {
		return s.New(info)
	}
	switch s.Name {
	case ControllerReactive:
		return &reactiveController{spec: s, info: info, target: info.Nodes, sinceChange: s.Cooldown}
	case ControllerPredictive:
		return &predictiveController{spec: s, info: info, pred: governor.NewEWMA(s.Alpha), target: info.Nodes}
	default: // ControllerOracle
		return nil
	}
}

// reactiveController is threshold autoscaling with hysteresis: measured
// active-set utilization outside the [DownUtil, UpUtil] deadband
// retargets the active count toward TargetUtil; the cooldown then holds
// the new target for Cooldown epochs, so a single noisy window cannot
// flip nodes back. It knows nothing about the schedule — every reaction
// lags the load by at least one epoch, which is exactly the lag that
// turns deep-idle exit latency into unpark-lag p99 violations on spiky
// schedules.
type reactiveController struct {
	spec        ControllerSpec
	info        FleetInfo
	target      int
	sinceChange int
}

// Name implements Controller.
func (c *reactiveController) Name() string { return ControllerReactive }

// Observe implements Controller.
func (c *reactiveController) Observe(t FleetTelemetry) int {
	c.sinceChange++
	util := t.Utilization
	active := t.ActiveNodes
	if active < 1 {
		// The whole fleet sat drained; treat the (single) node the clamp
		// will keep active as the sizing basis.
		active = 1
	}
	if util >= c.spec.DownUtil && util <= c.spec.UpUtil {
		return c.target // inside the deadband: hold
	}
	// Retarget so the active set would have run at TargetUtil: the
	// active-set busy-fraction integral (active x util) is the work the
	// fleet actually did, re-divided across enough nodes to land on
	// target.
	want := clampTarget(ceilTarget(float64(active)*util/c.spec.TargetUtil), c.info.Nodes)
	if want == c.target {
		return c.target
	}
	if c.sinceChange < c.spec.Cooldown {
		return c.target // cooling down from the previous change: hold
	}
	c.target = want
	c.sinceChange = 0
	return c.target
}

// predictiveController forecasts the next epoch's offered rate with the
// menu governor's estimator — the same EWMA-with-last-value-correction
// dynamics, run at fleet granularity over per-epoch offered QPS instead
// of per-core idle durations — and provisions ceil(forecast /
// (TargetUtil x per-node capacity)) nodes. The high bias (PredictHigh)
// is the capacity-planning mirror of the menu governor's low bias:
// under-predicting load costs SLO violations, over-predicting only
// costs idle watts.
type predictiveController struct {
	spec   ControllerSpec
	info   FleetInfo
	pred   *governor.EWMA
	target int
}

// Name implements Controller.
func (c *predictiveController) Name() string { return ControllerPredictive }

// Observe implements Controller.
func (c *predictiveController) Observe(t FleetTelemetry) int {
	c.pred.Observe(t.OfferedQPS)
	forecast := c.pred.PredictHigh()
	perNode := c.spec.TargetUtil * c.info.PerNodeQPS
	if perNode <= 0 {
		return c.target
	}
	c.target = clampTarget(ceilTarget(forecast/perNode), c.info.Nodes)
	return c.target
}

// normalizeController resolves the spec's defaults against the
// scenario's dispatch target and rejects unusable tunings. Called from
// Normalize, so public RunScenario callers and the CLIs get identical
// errors for identical mistakes.
func normalizeController(s ControllerSpec, scenarioTargetUtil float64) (ControllerSpec, error) {
	if !s.enabled() {
		return s, nil
	}
	if s.New == nil {
		switch s.Name {
		case ControllerOracle, ControllerReactive, ControllerPredictive:
		default:
			return s, fmt.Errorf("cluster: unknown controller %q (known: %v)", s.Name, Controllers())
		}
	}
	if s.UpUtil == 0 {
		s.UpUtil = 0.75
	}
	if s.DownUtil == 0 {
		s.DownUtil = 0.40
	}
	if s.TargetUtil == 0 {
		s.TargetUtil = scenarioTargetUtil
	}
	if s.Cooldown == 0 {
		s.Cooldown = 2
	}
	if s.Alpha == 0 {
		s.Alpha = 0.3
	}
	if s.UpUtil <= 0 || s.UpUtil > 1 || s.DownUtil < 0 || s.DownUtil >= s.UpUtil {
		return s, fmt.Errorf("cluster: controller deadband [%g, %g] is not 0 <= down < up <= 1", s.DownUtil, s.UpUtil)
	}
	if s.TargetUtil <= 0 || s.TargetUtil > 1 {
		return s, fmt.Errorf("cluster: controller target utilization %g outside (0, 1]", s.TargetUtil)
	}
	if s.Cooldown < 0 {
		return s, fmt.Errorf("cluster: negative controller cooldown %d", s.Cooldown)
	}
	if s.Alpha <= 0 || s.Alpha > 1 {
		return s, fmt.Errorf("cluster: controller alpha %g outside (0, 1]", s.Alpha)
	}
	return s, nil
}
