package cluster

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// overloadScenario builds a 4-node consolidate+park scenario over the
// given schedule — the shared adversarial fixture whose admission
// capacity the tests can compute exactly.
func overloadScenario(sched *scenario.Schedule, epochs int) ScenarioConfig {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	return ScenarioConfig{
		Nodes:       Homogeneous(4, node),
		Schedule:    sched,
		Epoch:       sched.Duration() / sim.Time(epochs),
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
	}
}

// fleetAdmissionCapacity is the fixture fleet's exact admission ceiling
// at maxUtil: 4 identical nodes.
func fleetAdmissionCapacity(c ScenarioConfig, maxUtil float64) float64 {
	var sum float64
	for _, n := range c.Nodes {
		sum += maxUtil * capacityQPS(n)
	}
	return sum
}

func TestOverloadNormalize(t *testing.T) {
	base := overloadScenario(mustSchedule(scenario.Constant("steady", 1e6, 80*sim.Millisecond)), 4)
	cases := []struct {
		name string
		mut  func(*ScenarioConfig)
		want string // substring of the error; empty means accept
	}{
		{"zero value accepted", func(c *ScenarioConfig) {}, ""},
		{"shed accepted", func(c *ScenarioConfig) { c.Overload.Policy = OverloadShed }, ""},
		{"unknown policy", func(c *ScenarioConfig) { c.Overload.Policy = "panic" }, "unknown overload policy"},
		{"max util above 1", func(c *ScenarioConfig) {
			c.Overload = OverloadSpec{Policy: OverloadShed, MaxUtil: 1.5}
		}, "max utilization"},
		{"negative max util", func(c *ScenarioConfig) {
			c.Overload = OverloadSpec{Policy: OverloadShed, MaxUtil: -0.5}
		}, "max utilization"},
		{"negative backlog cap", func(c *ScenarioConfig) {
			c.Overload = OverloadSpec{Policy: OverloadQueue, MaxBacklogSec: -1}
		}, "backlog cap"},
		{"cold path rejected", func(c *ScenarioConfig) {
			c.Overload.Policy = OverloadShed
			c.ColdEpochs = true
		}, "needs the warm path"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}

	// Defaults resolve during Normalize, not at the zero value.
	r, err := func() (resolvedScenario, error) {
		cfg := base
		cfg.Overload.Policy = OverloadQueue
		return cfg.Normalize()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if r.Overload.MaxUtil != 0.85 || r.Overload.MaxBacklogSec != 1.0 {
		t.Fatalf("normalized overload = %+v, want MaxUtil 0.85 MaxBacklogSec 1", r.Overload)
	}
}

// TestOverloadBelowCapacityMatchesBaseline pins the admission no-op: a
// run whose offered rate never reaches the admission ceiling must be
// bit-identical to the same run without admission control — for every
// policy — except for the Overload policy echo. This is the stronger
// cousin of the zero-value guarantee the goldens pin.
func TestOverloadBelowCapacityMatchesBaseline(t *testing.T) {
	sched := mustSchedule(scenario.Diurnal(2e6, 0.6, 160*sim.Millisecond, 8))
	base := runScenario(t, overloadScenario(sched, 8))
	for _, policy := range OverloadPolicies() {
		t.Run(policy, func(t *testing.T) {
			cfg := overloadScenario(sched, 8)
			cfg.Overload.Policy = policy
			got := runScenario(t, cfg)
			if got.Overload != policy {
				t.Fatalf("Overload echo = %q, want %q", got.Overload, policy)
			}
			if got.SaturatedEpochs != 0 || got.SheddedRequests != 0 || got.BacklogRate != 0 {
				t.Fatalf("below-capacity run recorded overload: sat=%d shed=%g backlog=%g",
					got.SaturatedEpochs, got.SheddedRequests, got.BacklogRate)
			}
			got.Overload = ""
			if !reflect.DeepEqual(got, base) {
				t.Errorf("below-capacity %s run diverged from the baseline", policy)
			}
		})
	}
}

func TestOverloadShedAccounting(t *testing.T) {
	cfg := overloadScenario(mustSchedule(scenario.Constant("slam", 20e6, 80*sim.Millisecond)), 4)
	cfg.Overload.Policy = OverloadShed
	res := runScenario(t, cfg)

	capQPS := fleetAdmissionCapacity(cfg, 0.85)
	winSec := float64(cfg.Epoch) / 1e9
	if res.SaturatedEpochs != len(res.Epochs) {
		t.Fatalf("SaturatedEpochs = %d, want %d", res.SaturatedEpochs, len(res.Epochs))
	}
	var wantShed float64
	for _, ep := range res.Epochs {
		if !ep.Saturated {
			t.Fatalf("epoch %d not saturated at offered %g vs capacity %g", ep.Epoch, ep.RateQPS, capQPS)
		}
		want := (ep.RateQPS - capQPS) * winSec
		if math.Abs(ep.SheddedRequests-want) > 1e-6*want {
			t.Fatalf("epoch %d shed %g requests, want %g", ep.Epoch, ep.SheddedRequests, want)
		}
		if ep.BacklogRate != 0 {
			t.Fatalf("shed policy queued a backlog: %g", ep.BacklogRate)
		}
		// The routed (admitted) load is the capacity, not the offered rate.
		var routed float64
		for _, n := range ep.Fleet.Nodes {
			routed += n.RateQPS
		}
		if math.Abs(routed-capQPS) > 1e-6*capQPS {
			t.Fatalf("epoch %d routed %g QPS, want the %g capacity", ep.Epoch, routed, capQPS)
		}
		wantShed += want
	}
	if math.Abs(res.SheddedRequests-wantShed) > 1e-6*wantShed {
		t.Fatalf("total shed %g, want %g", res.SheddedRequests, wantShed)
	}
}

func TestOverloadDegradeAdmitsEverything(t *testing.T) {
	sched := mustSchedule(scenario.Constant("slam", 20e6, 80*sim.Millisecond))
	base := runScenario(t, overloadScenario(sched, 4))
	cfg := overloadScenario(sched, 4)
	cfg.Overload.Policy = OverloadDegrade
	res := runScenario(t, cfg)
	if res.SaturatedEpochs != len(res.Epochs) {
		t.Fatalf("SaturatedEpochs = %d, want every epoch", res.SaturatedEpochs)
	}
	if res.SheddedRequests != 0 || res.BacklogRate != 0 {
		t.Fatalf("degrade dropped or queued load: shed=%g backlog=%g", res.SheddedRequests, res.BacklogRate)
	}
	// Degrade only marks the epochs: the simulation itself is the
	// baseline's, bit for bit.
	for e := range res.Epochs {
		got, want := res.Epochs[e], base.Epochs[e]
		got.Saturated = false
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("degrade epoch %d diverged from the baseline", e)
		}
	}
}

func TestOverloadQueueBacklogDrains(t *testing.T) {
	// Two overload epochs at 3x capacity, then six trough epochs with
	// headroom: the backlog must build, then drain to zero well before
	// the run ends, with nothing shed (the cap is a full second of
	// fleet capacity — far above what two epochs can queue).
	probe := overloadScenario(mustSchedule(scenario.Constant("probe", 1, 160*sim.Millisecond)), 8)
	capQPS := fleetAdmissionCapacity(probe, 0.85)
	sched, err := scenario.New("burst",
		scenario.Phase{Name: "slam", Duration: 40 * sim.Millisecond, StartRate: 3 * capQPS, EndRate: 3 * capQPS},
		scenario.Phase{Name: "trough", Duration: 120 * sim.Millisecond, StartRate: 0.1 * capQPS, EndRate: 0.1 * capQPS},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := overloadScenario(sched, 8)
	cfg.Overload.Policy = OverloadQueue
	res := runScenario(t, cfg)

	if res.SheddedRequests != 0 {
		t.Fatalf("queue run shed %g requests with an uncapped backlog", res.SheddedRequests)
	}
	if res.Epochs[0].BacklogRate <= 0 || res.Epochs[1].BacklogRate <= res.Epochs[0].BacklogRate {
		t.Fatalf("backlog did not build over the slam: %g then %g",
			res.Epochs[0].BacklogRate, res.Epochs[1].BacklogRate)
	}
	// A draining epoch routes more than its offered rate.
	drain := res.Epochs[2]
	var routed float64
	for _, n := range drain.Fleet.Nodes {
		routed += n.RateQPS
	}
	if routed <= drain.RateQPS {
		t.Fatalf("drain epoch routed %g QPS against offered %g — backlog not draining", routed, drain.RateQPS)
	}
	if last := res.Epochs[len(res.Epochs)-1]; last.BacklogRate != 0 || last.Saturated {
		t.Fatalf("backlog never drained: final epoch backlog %g saturated %v", last.BacklogRate, last.Saturated)
	}
	if res.BacklogRate != 0 {
		t.Fatalf("ScenarioResult.BacklogRate = %g after a drained run", res.BacklogRate)
	}
	if res.SaturatedEpochs < 2 {
		t.Fatalf("SaturatedEpochs = %d, want at least the two slam epochs", res.SaturatedEpochs)
	}
}

func TestOverloadQueueCapSheds(t *testing.T) {
	cfg := overloadScenario(mustSchedule(scenario.Constant("slam", 20e6, 80*sim.Millisecond)), 4)
	cfg.Overload = OverloadSpec{Policy: OverloadQueue, MaxBacklogSec: 0.01}
	res := runScenario(t, cfg)
	capQPS := fleetAdmissionCapacity(cfg, 0.85)
	maxBacklog := 0.01 * capQPS
	for _, ep := range res.Epochs {
		winSec := float64(ep.End-ep.Start) / 1e9
		if got := ep.BacklogRate * winSec; got > maxBacklog*(1+1e-9) {
			t.Fatalf("epoch %d backlog %g requests exceeds the %g cap", ep.Epoch, got, maxBacklog)
		}
	}
	if res.SheddedRequests <= 0 {
		t.Fatalf("capped queue under constant overload shed nothing")
	}
}

// TestControllerSaturationStability is the anti-windup pin: offered
// load far past total fleet capacity — alone and combined with crash
// faults — must drive every controller to a stable, clamped target
// sequence: no oscillation, no panic, never outside [1, fleet]. The
// exact sequences are pinned so a controller regression that starts
// flapping at saturation fails loudly.
func TestControllerSaturationStability(t *testing.T) {
	crash := FaultSpec{
		Nodes: []NodeFault{
			{Node: 1, Kind: FaultCrash, Start: 20 * sim.Millisecond, End: 60 * sim.Millisecond},
		},
		RestartFree: true,
	}
	cases := []struct {
		name        string
		ctrl        string
		policy      string
		faults      FaultSpec
		wantTargets []int
	}{
		{"oracle-shed", ControllerOracle, OverloadShed, FaultSpec{}, []int{4, 4, 4, 4, 4, 4, 4, 4}},
		{"reactive-shed", ControllerReactive, OverloadShed, FaultSpec{}, []int{4, 4, 4, 4, 4, 4, 4, 4}},
		{"reactive-degrade", ControllerReactive, OverloadDegrade, FaultSpec{}, []int{4, 4, 4, 4, 4, 4, 4, 4}},
		{"predictive-shed", ControllerPredictive, OverloadShed, FaultSpec{}, []int{4, 4, 4, 4, 4, 4, 4, 4}},
		{"predictive-queue", ControllerPredictive, OverloadQueue, FaultSpec{}, []int{4, 4, 4, 4, 4, 4, 4, 4}},
		{"reactive-shed-crash", ControllerReactive, OverloadShed, crash, []int{4, 4, 4, 4, 4, 4, 4, 4}},
		{"predictive-queue-crash", ControllerPredictive, OverloadQueue, crash, []int{4, 4, 4, 4, 4, 4, 4, 4}},
		{"oracle-queue-crash", ControllerOracle, OverloadQueue, crash, []int{4, 3, 3, 4, 4, 4, 4, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := overloadScenario(mustSchedule(scenario.Constant("slam", 25e6, 160*sim.Millisecond)), 8)
			cfg.Controller = ControllerSpec{Name: tc.ctrl}
			cfg.Overload.Policy = tc.policy
			cfg.Faults = tc.faults
			res := runScenario(t, cfg)

			targets := make([]int, len(res.Epochs))
			flips := 0
			dir := 0
			for e, ep := range res.Epochs {
				targets[e] = ep.TargetNodes
				if ep.TargetNodes < 1 || ep.TargetNodes > len(cfg.Nodes) {
					t.Fatalf("epoch %d target %d outside [1, %d]", e, ep.TargetNodes, len(cfg.Nodes))
				}
				if e > 0 {
					switch d := ep.TargetNodes - targets[e-1]; {
					case d > 0:
						if dir < 0 {
							flips++
						}
						dir = 1
					case d < 0:
						if dir > 0 {
							flips++
						}
						dir = -1
					}
				}
			}
			if !reflect.DeepEqual(targets, tc.wantTargets) {
				t.Errorf("target sequence = %v, want %v", targets, tc.wantTargets)
			}
			// One direction reversal is the most a crash window may cause
			// (down on crash, up on recovery); a saturated controller must
			// otherwise never flap.
			if flips > 1 {
				t.Errorf("target sequence %v oscillates (%d direction flips)", targets, flips)
			}
			if res.SaturatedEpochs == 0 {
				t.Errorf("adversarial run never saturated — the fixture is too weak")
			}
		})
	}
}

// TestLiveOverloadMatchesRunScenario extends the Live determinism
// contract to admission control: a live fleet stepped to completion
// under each overload policy (with a controller and a crash fault in
// the mix) reports exactly what the batch path reports.
func TestLiveOverloadMatchesRunScenario(t *testing.T) {
	for _, policy := range OverloadPolicies() {
		t.Run(policy, func(t *testing.T) {
			cfg := overloadScenario(mustSchedule(scenario.Constant("slam", 20e6, 160*sim.Millisecond)), 8)
			cfg.Overload.Policy = policy
			cfg.Controller = ControllerSpec{Name: ControllerReactive}
			cfg.Faults = FaultSpec{
				Nodes: []NodeFault{
					{Node: 2, Kind: FaultCrash, Start: 40 * sim.Millisecond, End: 80 * sim.Millisecond},
				},
			}
			want := runScenario(t, cfg)
			l := mustLive(t, cfg)
			stepAll(t, l)
			got := mustResult(t, l)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("live %s run diverged from RunScenario", policy)
			}
		})
	}
}

// TestLiveOverloadSnapshotRestore checkpoints a queue-policy fleet mid-
// backlog and proves the restored fleet finishes bit-identically: the
// backlog is not serialized — it is rebuilt by the deterministic
// re-step — so this is the pin that the admission state participates in
// the replay contract.
func TestLiveOverloadSnapshotRestore(t *testing.T) {
	probe := overloadScenario(mustSchedule(scenario.Constant("probe", 1, 160*sim.Millisecond)), 8)
	capQPS := fleetAdmissionCapacity(probe, 0.85)
	sched, err := scenario.New("burst",
		scenario.Phase{Name: "slam", Duration: 60 * sim.Millisecond, StartRate: 3 * capQPS, EndRate: 3 * capQPS},
		scenario.Phase{Name: "trough", Duration: 100 * sim.Millisecond, StartRate: 0.2 * capQPS, EndRate: 0.2 * capQPS},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := overloadScenario(sched, 8)
	cfg.Overload.Policy = OverloadQueue
	cfg.Controller = ControllerSpec{Name: ControllerPredictive}

	ref := mustLive(t, cfg)
	stepAll(t, ref)
	want := mustResult(t, ref)

	l := mustLive(t, cfg)
	for i := 0; i < 3; i++ {
		if _, err := l.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if tel, ok := l.Telemetry(); !ok || tel.BacklogRate <= 0 {
		t.Fatalf("fixture holds no backlog at the checkpoint (tel %+v)", tel)
	}
	blob, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreLive(cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	stepAll(t, restored)
	got := mustResult(t, restored)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored queue-policy run diverged from the uninterrupted one")
	}
}

// TestLiveOverloadForkCarriesBacklog forks a queue-policy fleet mid-
// backlog and steps parent and fork through identical futures: the fork
// must have copied the admission state, not share or drop it.
func TestLiveOverloadForkCarriesBacklog(t *testing.T) {
	cfg := overloadScenario(mustSchedule(scenario.Constant("slam", 20e6, 160*sim.Millisecond)), 8)
	cfg.Overload.Policy = OverloadQueue
	cfg.Controller = ControllerSpec{Name: ControllerReactive}
	parent := mustLive(t, cfg)
	for i := 0; i < 3; i++ {
		if _, err := parent.Step(); err != nil {
			t.Fatal(err)
		}
	}
	fork := parent.Fork()
	for !parent.Done() {
		pt, err := parent.Step()
		if err != nil {
			t.Fatal(err)
		}
		ft, err := fork.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pt, ft) {
			t.Fatalf("epoch %d: fork telemetry diverged from parent", pt.Epoch)
		}
	}
	pr := mustResult(t, parent)
	fr := mustResult(t, fork)
	if !reflect.DeepEqual(pr, fr) {
		t.Errorf("fork result diverged from parent")
	}
}
