package cluster

import (
	"fmt"
	"math"

	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Fault kinds accepted by NodeFault.Kind and CorrelatedFaults.Kind.
const (
	// FaultCrash takes the node dark for the window: its resumable
	// instance is discarded (C-state, ring, RNG and collector warm state
	// are lost) and the first healthy window afterwards rebuilds it cold
	// under a restart-remixed seed, paying the configured restart
	// penalty the way the cold path pays unpark.
	FaultCrash = "crash"
	// FaultStraggler inflates the node's sampled service times by
	// Factor (> 1) for the window — the slow-node failure mode that
	// drags fleet tail latency without tripping liveness checks.
	FaultStraggler = "straggler"
	// FaultThermal caps the node's turbo ceiling for the window:
	// boosted slices run at base + Factor·(turbo − base), Factor in
	// [0, 1), so 0 pins boost to base frequency.
	FaultThermal = "thermal"
)

// FaultKinds lists the built-in fault kinds.
func FaultKinds() []string {
	return []string{FaultCrash, FaultStraggler, FaultThermal}
}

// NodeFault is one explicit per-node fault window: Kind strikes Node
// over [Start, End) on the schedule clock. Factor carries the
// kind-specific severity (straggler inflation > 1, thermal turbo cap in
// [0, 1); crash takes none). Windows are snapped outward to epoch
// boundaries — a fault overlapping any part of an epoch faults the
// whole epoch, the granularity at which the engine re-plans.
type NodeFault struct {
	Node       int
	Kind       string
	Start, End sim.Time
	Factor     float64
}

// CorrelatedFaults is the cluster-level fault process: a seeded
// Bernoulli draw per (epoch, node-group) that strikes GroupSize
// consecutive-index nodes together — the co-located rack/PSU failure
// domain — for Duration (snapped up to whole epochs). The process RNG
// draws from the reserved xrand fault seed plane, so fault timing can
// never alias node, epoch, replica or sweep randomness. The zero value
// (empty Kind) disables the process.
type CorrelatedFaults struct {
	Kind        string
	GroupSize   int
	Probability float64
	Duration    sim.Time
	Factor      float64
	Seed        uint64
}

// enabled reports whether the process is configured.
func (cf CorrelatedFaults) enabled() bool { return cf.Kind != "" }

// FaultSpec is the scenario's fault-injection description: explicit
// per-node fault windows plus the correlated cluster-level process, and
// the synthetic restart penalty a rebuilt node pays. The zero value is
// a healthy fleet and keeps every scenario result bit-identical to a
// run that predates fault injection.
type FaultSpec struct {
	// Nodes are the explicit per-node fault windows.
	Nodes []NodeFault
	// Correlated is the cluster-level fault process.
	Correlated CorrelatedFaults
	// RestartLatency is the time a crashed node needs to come back
	// (BIOS/OS boot, service cold start) before serving its first
	// request; it floors the restart epoch's worst p99 (default 10ms;
	// zero means "use the default" — set RestartFree for an explicitly
	// free restart).
	RestartLatency sim.Time
	// RestartPowerW is the package power burned during the restart flow
	// (default 35W; zero means "use the default").
	RestartPowerW float64
	// RestartFree makes restarts explicitly free: both penalties resolve
	// to zero regardless of the fields above (mirroring UnparkFree).
	RestartFree bool
}

// enabled reports whether any fault is configured.
func (f FaultSpec) enabled() bool {
	return len(f.Nodes) > 0 || f.Correlated.enabled()
}

// validFactor checks a fault kind's severity field.
func validFactor(kind string, factor float64) error {
	switch kind {
	case FaultCrash:
		if factor != 0 {
			return fmt.Errorf("crash takes no factor (got %g)", factor)
		}
	case FaultStraggler:
		if !(factor > 1) || math.IsInf(factor, 0) {
			return fmt.Errorf("straggler factor %g must be a finite value > 1", factor)
		}
	case FaultThermal:
		if !(factor >= 0 && factor < 1) {
			return fmt.Errorf("thermal turbo cap %g outside [0, 1)", factor)
		}
	default:
		return fmt.Errorf("unknown kind %q (known: %v)", kind, FaultKinds())
	}
	return nil
}

// validate rejects unusable fault specifications. Called from
// Normalize, so Validate, RunScenario and the CLIs report identical
// errors for identical mistakes.
func (f FaultSpec) validate(nodes int) error {
	for i, nf := range f.Nodes {
		if err := validFactor(nf.Kind, nf.Factor); err != nil {
			return fmt.Errorf("cluster: fault %d: %w", i, err)
		}
		if nf.Node < 0 || nf.Node >= nodes {
			return fmt.Errorf("cluster: fault %d: node %d outside the fleet [0, %d)", i, nf.Node, nodes)
		}
		if nf.Start < 0 || nf.End <= nf.Start {
			return fmt.Errorf("cluster: fault %d: invalid window [%d, %d)", i, nf.Start, nf.End)
		}
		// Overlaps on one node are ambiguous (which severity wins?) and
		// almost always a spec typo; reject rather than guess.
		for j := 0; j < i; j++ {
			if o := f.Nodes[j]; o.Node == nf.Node && nf.Start < o.End && o.Start < nf.End {
				return fmt.Errorf("cluster: faults %d and %d overlap on node %d", j, i, nf.Node)
			}
		}
	}
	if cf := f.Correlated; cf.enabled() {
		if err := validFactor(cf.Kind, cf.Factor); err != nil {
			return fmt.Errorf("cluster: correlated faults: %w", err)
		}
		if cf.GroupSize < 1 || cf.GroupSize > nodes {
			return fmt.Errorf("cluster: correlated faults: group size %d outside [1, %d]", cf.GroupSize, nodes)
		}
		if !(cf.Probability >= 0 && cf.Probability <= 1) {
			return fmt.Errorf("cluster: correlated faults: probability %g outside [0, 1]", cf.Probability)
		}
		if cf.Duration <= 0 {
			return fmt.Errorf("cluster: correlated faults: non-positive duration %d", cf.Duration)
		}
	}
	return nil
}

// faultPlan expands the fault spec into per-epoch, per-node fault
// annotations, or nil when no fault is configured — the nil return is
// what guarantees an empty FaultSpec leaves every timeline (and its
// equivalence-class key) byte-identical to the pre-fault engine.
// Explicit windows mark every epoch they overlap; the correlated
// process then draws one seeded Bernoulli per (epoch, group) and marks
// struck groups for ceil(Duration/Epoch) epochs. Where annotations
// stack (an explicit window under a correlated storm), the merge is
// severity-monotone: crash dominates, the largest inflation wins, the
// lowest turbo cap wins.
func (c resolvedScenario) faultPlan(plan []epochWindow) [][]runner.Fault {
	if !c.Faults.enabled() {
		return nil
	}
	faults := make([][]runner.Fault, len(plan))
	for e := range plan {
		faults[e] = make([]runner.Fault, len(c.Nodes))
	}
	apply := func(e, node int, kind string, factor float64) {
		f := &faults[e][node]
		switch kind {
		case FaultCrash:
			f.Down = true
		case FaultStraggler:
			if factor > f.Inflate {
				f.Inflate = factor
			}
		case FaultThermal:
			if !f.Throttle || factor < f.TurboCap {
				f.TurboCap = factor
			}
			f.Throttle = true
		}
	}
	for _, nf := range c.Faults.Nodes {
		for e, pw := range plan {
			if pw.start < nf.End && nf.Start < pw.end {
				apply(e, nf.Node, nf.Kind, nf.Factor)
			}
		}
	}
	if cf := c.Faults.Correlated; cf.enabled() {
		rng := xrand.NewStream(xrand.FaultSeed(cf.Seed), "faults/correlated")
		n := len(c.Nodes)
		groups := (n + cf.GroupSize - 1) / cf.GroupSize
		span := int((cf.Duration + c.Epoch - 1) / c.Epoch)
		if span < 1 {
			span = 1
		}
		// Fixed iteration order (epoch-major, then group) keeps the draw
		// sequence — and therefore every fault timeline — a pure function
		// of the spec and its seed.
		for e := range plan {
			for g := 0; g < groups; g++ {
				if !rng.Bernoulli(cf.Probability) {
					continue
				}
				lo := g * cf.GroupSize
				hi := lo + cf.GroupSize
				if hi > n {
					hi = n
				}
				for ee := e; ee < e+span && ee < len(plan); ee++ {
					for i := lo; i < hi; i++ {
						apply(ee, i, cf.Kind, cf.Factor)
					}
				}
			}
		}
	}
	return faults
}

// applyFaultRates re-partitions each epoch's offered rate across the
// nodes that are up: a crashed node serves nothing, so its share is
// redistributed over the survivors by the same dispatch policy the
// healthy plan used. An all-down epoch routes nothing — the offered
// load is simply lost, which is exactly the outage a controller should
// be observing. Epochs with every node up keep their original partition
// untouched (bit-for-bit).
func applyFaultRates(c resolvedScenario, part func(Config) []float64, plan []epochWindow, faults [][]runner.Fault) {
	for e := range plan {
		var up []int
		for i := range c.Nodes {
			if !faults[e][i].Down {
				up = append(up, i)
			}
		}
		if len(up) == len(c.Nodes) {
			continue
		}
		rates := make([]float64, len(c.Nodes))
		if len(up) > 0 {
			upNodes := make([]server.Config, len(up))
			for j, i := range up {
				upNodes[j] = c.Nodes[i]
			}
			sub := part(Config{
				Nodes:      upNodes,
				RateQPS:    plan[e].rate,
				Dispatch:   c.Dispatch,
				TargetUtil: c.TargetUtil,
			})
			for j, i := range up {
				rates[i] = sub[j]
			}
		}
		plan[e].rates = rates
	}
}

// applyRestartPenalty folds the synthetic restart cost into a restart
// epoch, exactly the way the cold path folds its unpark penalty: each
// rebuilt node burns restartPowerW for restartLatency before serving
// (energy into the fleet power and total), and the latency floors the
// epoch's worst p99 — the first requests routed to a booting node
// waited at least that long.
func applyRestartPenalty(c resolvedScenario, ep *EpochResult, window sim.Time) {
	if ep.Restarted == 0 {
		return
	}
	winSec := float64(window) / 1e9
	ep.RestartEnergyJ = float64(ep.Restarted) * float64(c.restartLatency) / 1e9 * c.restartPowerW
	ep.Fleet.FleetEnergyJ += ep.RestartEnergyJ
	ep.Fleet.FleetPowerW += ep.RestartEnergyJ / winSec
	if ep.Fleet.FleetPowerW > 0 {
		ep.Fleet.QPSPerWatt = ep.Fleet.CompletedPerSec / ep.Fleet.FleetPowerW
	}
	if lat := float64(c.restartLatency) / 1e3; ep.Fleet.WorstP99US < lat {
		ep.Fleet.WorstP99US = lat
	}
}
