package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cstate"
	"repro/internal/datacenter"
	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// quickNode returns a short-window node config.
func quickNode(rate float64) server.Config {
	return server.Config{
		Platform:   governor.Baseline,
		Profile:    workload.Memcached(),
		RatePerSec: rate,
		Duration:   100 * sim.Millisecond,
		Warmup:     10 * sim.Millisecond,
		Seed:       42,
	}
}

func runCluster(t *testing.T, c Config) Result {
	t.Helper()
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOneNodeSpreadMatchesRunService is the superset guarantee: a 1-node
// spread cluster must reproduce the standalone single-server simulator
// bit-for-bit — same Config in, same Result out, every field.
func TestOneNodeSpreadMatchesRunService(t *testing.T) {
	node := quickNode(0) // rate comes from the cluster dispatcher
	want, err := server.RunConfig(func() server.Config {
		cfg := node
		cfg.RatePerSec = 150e3
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	got := runCluster(t, Config{
		Nodes:    []server.Config{node},
		RateQPS:  150e3,
		Dispatch: DispatchSpread,
	})
	if len(got.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(got.Nodes))
	}
	if !reflect.DeepEqual(got.Nodes[0].Result, want) {
		t.Errorf("1-node spread cluster diverged from server.RunConfig:\n got %+v\nwant %+v",
			got.Nodes[0].Result, want)
	}
	// The fleet aggregates must degenerate to the node's exact values.
	if got.Server != want.Server || got.EndToEnd != want.EndToEnd {
		t.Error("1-node aggregate latency summaries are not the node's own")
	}
	if got.FleetPowerW != want.PackagePowerW {
		t.Errorf("fleet power %v != node package power %v", got.FleetPowerW, want.PackagePowerW)
	}
	if got.CompletedPerSec != want.CompletedPerSec {
		t.Errorf("fleet throughput %v != node throughput %v", got.CompletedPerSec, want.CompletedPerSec)
	}
}

func TestSpreadSplitsEvenlyAndDeterministically(t *testing.T) {
	c := Config{Nodes: Homogeneous(4, quickNode(0)), RateQPS: 400e3}
	res := runCluster(t, c)
	if res.ActiveNodes != 4 || res.IdleNodes != 0 {
		t.Fatalf("active/idle = %d/%d, want 4/0", res.ActiveNodes, res.IdleNodes)
	}
	for _, n := range res.Nodes {
		if n.RateQPS != 100e3 {
			t.Errorf("node %d rate %v, want 100000", n.Node, n.RateQPS)
		}
	}
	// Per-node seeds differ, so nodes are independent samples, not copies.
	if res.Nodes[0].Result.Server.P99US == res.Nodes[1].Result.Server.P99US &&
		res.Nodes[0].Result.AvgCorePowerW == res.Nodes[1].Result.AvgCorePowerW {
		t.Error("distinct node seeds produced identical node results")
	}
	again := runCluster(t, c)
	if !reflect.DeepEqual(res, again) {
		t.Error("fleet run not deterministic")
	}
}

func TestLeastLoadedEqualizesHeterogeneousUtilization(t *testing.T) {
	small := quickNode(0)
	small.Cores = 10
	big := quickNode(0)
	big.Cores = 40
	c := Config{
		Nodes:    []server.Config{small, big},
		RateQPS:  200e3,
		Dispatch: DispatchLeastLoaded,
	}
	res := runCluster(t, c)
	// Capacity ratio is 1:4, so the split must be 40K/160K.
	if math.Abs(res.Nodes[0].RateQPS-40e3) > 1 || math.Abs(res.Nodes[1].RateQPS-160e3) > 1 {
		t.Errorf("rates = %v/%v, want 40000/160000",
			res.Nodes[0].RateQPS, res.Nodes[1].RateQPS)
	}
}

func TestConsolidatePacksAndParks(t *testing.T) {
	c := Config{
		Nodes:       Homogeneous(4, quickNode(0)),
		RateQPS:     100e3,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
	}
	res := runCluster(t, c)
	// 100K QPS fits well inside one node at TargetUtil, so exactly one
	// node carries load and three are parked.
	if res.ActiveNodes != 1 || res.IdleNodes != 3 {
		t.Fatalf("active/idle = %d/%d, want 1/3", res.ActiveNodes, res.IdleNodes)
	}
	for _, n := range res.Nodes[1:] {
		if !n.Parked {
			t.Errorf("drained node %d not parked", n.Node)
		}
		// A parked node reaches package deep idle: its uncore power falls
		// below the always-on 30 W floor.
		if n.Result.PkgIdleFraction <= 0.9 {
			t.Errorf("parked node %d package-idle fraction %v, want > 0.9",
				n.Node, n.Result.PkgIdleFraction)
		}
		if n.Result.UncoreAvgW >= 29 {
			t.Errorf("parked node %d uncore %vW, want deep-idle", n.Node, n.Result.UncoreAvgW)
		}
		// Cores go to the deepest enabled state, not the menu governor's
		// cold-start C1: whole-node power collapses to the package floor.
		if n.Result.PackagePowerW >= 15 {
			t.Errorf("parked node %d package power %vW, want < 15W", n.Node, n.Result.PackagePowerW)
		}
	}
	// The packed fleet draws less than the spread fleet at this load.
	spread := runCluster(t, Config{
		Nodes:   Homogeneous(4, quickNode(0)),
		RateQPS: 100e3,
	})
	if res.FleetPowerW >= spread.FleetPowerW {
		t.Errorf("consolidate fleet %vW not below spread %vW",
			res.FleetPowerW, spread.FleetPowerW)
	}
	// Consolidation concentrates the work: the packed node runs busier
	// (more C0 time) than any spread node. (Its p99 need not be worse at
	// low load — spread nodes idle deeper and pay larger wake penalties,
	// the paper's Sec. 2 effect.)
	packedC0 := res.Nodes[0].Result.Residency[cstate.C0]
	for _, n := range spread.Nodes {
		if packedC0 <= n.Result.Residency[cstate.C0] {
			t.Errorf("packed node C0 %.4f not above spread node %d C0 %.4f",
				packedC0, n.Node, n.Result.Residency[cstate.C0])
		}
	}
	// Energy proportionality improves: more completions per watt.
	if res.QPSPerWatt <= spread.QPSPerWatt {
		t.Errorf("consolidate QPS/W %v not above spread %v", res.QPSPerWatt, spread.QPSPerWatt)
	}
}

func TestConsolidateSpillsOverflowProportionally(t *testing.T) {
	nodes := Homogeneous(2, quickNode(0))
	c := Config{Nodes: nodes, RateQPS: 1e9, Dispatch: DispatchConsolidate}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.TargetUtil = defaultTargetUtil
	rates := partitionConsolidate(c)
	var total float64
	for _, r := range rates {
		total += r
	}
	if math.Abs(total-1e9) > 1 {
		t.Errorf("overflow partition dropped load: %v of 1e9", total)
	}
	if rates[0] <= 0 || rates[1] <= 0 {
		t.Errorf("overflow not spread across nodes: %v", rates)
	}
}

func TestHeterogeneousCatalogs(t *testing.T) {
	skx := quickNode(0)
	epyc := quickNode(0)
	epyc.Catalog = cstate.EPYC()
	epyc.Platform = governor.Config{Name: "EPYC_AllCStates",
		Menu: []cstate.ID{cstate.C1, cstate.C1E, cstate.C6}}
	res := runCluster(t, Config{
		Nodes:   []server.Config{skx, epyc},
		RateQPS: 200e3,
	})
	if res.Nodes[0].Result.AvgCorePowerW == res.Nodes[1].Result.AvgCorePowerW {
		t.Error("mixed Skylake/EPYC nodes reported identical core power")
	}
	if res.FleetPowerW <= 0 || res.CompletedPerSec <= 0 {
		t.Error("heterogeneous fleet produced empty aggregates")
	}
}

func TestMixedPlatformFleet(t *testing.T) {
	base := quickNode(0)
	aw := quickNode(0)
	aw.Platform = governor.AW
	res := runCluster(t, Config{
		Nodes:   []server.Config{base, aw},
		RateQPS: 200e3,
	})
	// The AW node must draw less core power than the Baseline node at the
	// same per-node load (the paper's headline claim, fleet edition).
	if res.Nodes[1].Result.AvgCorePowerW >= res.Nodes[0].Result.AvgCorePowerW {
		t.Errorf("AW node %vW not below Baseline node %vW",
			res.Nodes[1].Result.AvgCorePowerW, res.Nodes[0].Result.AvgCorePowerW)
	}
}

// TestMeasuredFleetSavingsAgreeWithExtrapolation pins the bridge between
// the cluster layer and Table 5: for a homogeneous fleet of identical
// nodes (same seed, so bit-identical simulations), the cluster-measured
// savings must agree exactly with extrapolating one server — the
// fleet-of-N measurement is N copies of the per-server measurement.
func TestMeasuredFleetSavingsAgreeWithExtrapolation(t *testing.T) {
	const n = 3
	identical := func(platform governor.Config) []server.Config {
		nodes := make([]server.Config, n)
		for i := range nodes {
			cfg := quickNode(0)
			cfg.Platform = platform
			nodes[i] = cfg // same seed on purpose: identical nodes
		}
		return nodes
	}
	fleetW := func(platform governor.Config) float64 {
		res := runCluster(t, Config{Nodes: identical(platform), RateQPS: n * 100e3})
		return res.FleetPowerW
	}
	singleW := func(platform governor.Config) float64 {
		cfg := quickNode(100e3)
		cfg.Platform = platform
		res, err := server.RunConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.PackagePowerW
	}
	fleetDelta := fleetW(governor.Baseline) - fleetW(governor.AW)
	perServer := singleW(governor.Baseline) - singleW(governor.AW)
	model := datacenter.NewCostModel()
	measured, err := model.YearlySavingsMeasuredFleetM(fleetDelta, n)
	if err != nil {
		t.Fatal(err)
	}
	extrapolated := model.YearlySavingsFleetM(perServer)
	if math.Abs(measured-extrapolated) > 1e-9 {
		t.Errorf("measured fleet savings %v != per-server extrapolation %v (fleet delta %v, per-server %v)",
			measured, extrapolated, fleetDelta, perServer)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	if _, err := Run(Config{RateQPS: 1}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := Run(Config{Nodes: Homogeneous(1, quickNode(0)), RateQPS: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Run(Config{Nodes: Homogeneous(1, quickNode(0)), Dispatch: "route-66"}); err == nil {
		t.Error("unknown policy accepted")
	}
	closed := quickNode(0)
	closed.LoadGen = server.LoadClosedLoop
	closed.ClosedLoopConnections = 8
	if _, err := Run(Config{Nodes: []server.Config{closed}, RateQPS: 1}); err == nil {
		t.Error("closed-loop node accepted")
	}
	if _, err := Run(Config{Nodes: Homogeneous(1, quickNode(0)), TargetUtil: 1.5}); err == nil {
		t.Error("TargetUtil > 1 accepted")
	}
}

func TestCombineSummariesWeighting(t *testing.T) {
	a := server.LatencySummary{Count: 100, AvgUS: 10, P99US: 20, MaxUS: 30}
	b := server.LatencySummary{Count: 300, AvgUS: 20, P99US: 40, MaxUS: 25}
	got := combineSummaries([]server.LatencySummary{a, b, {}}, nil)
	if got.Count != 400 {
		t.Errorf("count = %d", got.Count)
	}
	if math.Abs(got.AvgUS-17.5) > 1e-12 {
		t.Errorf("avg = %v, want 17.5", got.AvgUS)
	}
	if math.Abs(got.P99US-35) > 1e-12 {
		t.Errorf("p99 = %v, want 35", got.P99US)
	}
	if got.MaxUS != 30 {
		t.Errorf("max = %v, want 30", got.MaxUS)
	}
}
