package cluster

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// ScenarioConfig describes a time-varying fleet simulation: the schedule
// replaces the static RateQPS, and every Epoch the dispatcher
// re-partitions the window's mean rate across the nodes, so
// consolidation parks newly drained nodes as load falls and unparks
// them as it returns.
//
// Two execution paths produce the per-epoch measurements:
//
//   - The warm path (default): every node runs its entire rate timeline
//     on one resumable server.Instance — a single warmup for the whole
//     scenario, engine/C-state/RNG state carried across epoch
//     boundaries, and park/unpark simulated as real drain/deep-idle/
//     exit-latency transitions. Each node's timeline is one independent
//     pipelined runner task, so scenario wall-clock is the slowest
//     node, not the sum of per-epoch maxima.
//   - The cold path (ColdEpochs): the original epoch-stepped engine —
//     every epoch re-creates every node simulation from scratch (per
//     epoch warmup, seed mixed per epoch) and approximates unparks with
//     the synthetic UnparkLatency/UnparkPowerW penalty. Kept bit-for-bit
//     for reproducibility of existing goldens.
type ScenarioConfig struct {
	// Nodes are the per-node server configurations (see Config.Nodes).
	// On the warm path each node's RatePerSec/Schedule/Duration are
	// ignored (the epoch plan supplies them) and Warmup is paid once per
	// scenario. On the cold path each node's Duration is overridden per
	// epoch, Warmup is honored per epoch (re-dispatch reconvergence),
	// and node i's epoch e runs with a seed mixed from (Seed_i, e) so
	// epochs see independent randomness while epoch 0 reproduces the
	// node's own seed exactly.
	Nodes []server.Config
	// Schedule is the offered-load timeline partitioned across the fleet.
	Schedule *scenario.Schedule
	// Epoch is the re-dispatch interval (default: the whole schedule in
	// one epoch — the degenerate case that reproduces the static Run).
	Epoch sim.Time
	// Dispatch, TargetUtil and ParkDrained mirror Config.
	Dispatch    string
	TargetUtil  float64
	ParkDrained bool
	// ColdEpochs selects the legacy cold-start path (see above).
	ColdEpochs bool
	// UnparkLatency is the cold path's synthetic unpark cost: the time a
	// parked node needs to come back (OS un-quiesce, package idle exit,
	// service re-warm); requests routed to it during that window wait at
	// least this long, so it floors the epoch's worst p99 (default 1ms;
	// zero means "use the default" — set UnparkFree for an explicit
	// free unpark). The warm path simulates the transition instead and
	// ignores both knobs.
	UnparkLatency sim.Time
	// UnparkPowerW is the package power burned during the cold path's
	// unpark flow (default 30W, the full two-socket uncore: the package
	// is awake but doing no useful work yet; zero means "use the
	// default").
	UnparkPowerW float64
	// UnparkFree makes unparks explicitly free on the cold path: both
	// penalties resolve to zero regardless of the fields above. Without
	// it, a zero UnparkLatency/UnparkPowerW silently means "default", so
	// a free unpark would be unrepresentable.
	UnparkFree bool
	// Replicas is the number of extra seeded replicas the warm path
	// simulates per timeline equivalence class (the K in "representative
	// plus K replicas"). Each replica re-runs its class representative's
	// exact timeline under a seed from the disjoint
	// xrand.ClassReplicaSeed plane — never colliding with node or
	// epoch-mixed seeds — and EpochResult.CI / ScenarioResult.CI then
	// report 95% Student-t confidence intervals over the K+1 samples.
	// Point estimates always come from the representatives alone, so
	// setting Replicas adds error bars without perturbing any existing
	// result bit. Warm path only (rejected with ColdEpochs).
	Replicas int
	// Controller selects the fleet autoscaling policy (see
	// ControllerSpec). The zero value keeps today's open-loop behavior:
	// the epoch plan is computed once from the schedule and every node
	// runs its precomputed timeline. A named controller routes the run
	// through the incremental closed-loop engine instead, where each
	// epoch's rate partition is decided at run time from the previous
	// epoch's telemetry (the oracle replays the precomputed plan and so
	// reproduces the open-loop results bit-for-bit). Warm path only
	// (rejected with ColdEpochs).
	Controller ControllerSpec
	// Faults injects node- and cluster-level faults into the run:
	// explicit per-node crash/straggler/thermal windows plus a seeded
	// correlated fault process (see FaultSpec). The zero value is a
	// healthy fleet and keeps every result bit-identical to a run that
	// predates fault injection. Warm path only (rejected with
	// ColdEpochs).
	Faults FaultSpec
	// Overload enables per-epoch admission control: when the offered
	// rate exceeds the active fleet's capacity (per-node capacity at
	// MaxUtil, summed over the up, routed nodes), the excess is shed,
	// queued or admitted-and-recorded per the policy (see OverloadSpec).
	// The zero value disables admission control and keeps every result
	// bit-identical to a run that predates it. Warm path only (rejected
	// with ColdEpochs).
	Overload OverloadSpec
	// CompactNodes makes the warm path skip per-node materialization:
	// EpochResult.Fleet.Nodes stays nil and fleet aggregation runs
	// class-weighted in O(classes) per epoch instead of O(nodes) — the
	// mode that keeps a 100K-node fleet's memory and aggregation cost
	// proportional to its handful of equivalence classes. All
	// fleet-level aggregates are computed from the same per-class
	// measurements either way. Warm path only (rejected with
	// ColdEpochs).
	CompactNodes bool
	// Runner executes the node simulations (default runner.Default()).
	Runner *runner.Runner
}

// resolvedScenario is ScenarioConfig with every defaultable knob
// resolved to its effective value — the zero-value-vs-default ambiguity
// ends here, before any simulation runs. Normalize is the only
// constructor.
type resolvedScenario struct {
	ScenarioConfig
	unparkLatency  sim.Time
	unparkPowerW   float64
	restartLatency sim.Time
	restartPowerW  float64
	total          sim.Time
}

// Normalize validates the configuration and resolves every defaultable
// knob to its effective value, in one pass: dispatch policy, target
// utilization, the epoch length (whole schedule when unset or
// over-long), the cold path's unpark penalty (UnparkFree collapsing
// both knobs to zero), and the controller's tuning defaults. It is the
// single path behind RunScenario, Validate and the CLIs, so every
// caller gets identical errors for identical mistakes.
func (c ScenarioConfig) Normalize() (resolvedScenario, error) {
	r := resolvedScenario{
		ScenarioConfig: c,
		unparkLatency:  c.UnparkLatency,
		unparkPowerW:   c.UnparkPowerW,
	}
	if c.Schedule == nil {
		return r, fmt.Errorf("cluster: scenario needs a schedule")
	}
	if c.Epoch < 0 {
		return r, fmt.Errorf("cluster: negative epoch %d", c.Epoch)
	}
	if c.UnparkLatency < 0 || c.UnparkPowerW < 0 {
		return r, fmt.Errorf("cluster: negative unpark penalty")
	}
	if c.Replicas < 0 {
		return r, fmt.Errorf("cluster: negative replicas %d", c.Replicas)
	}
	if c.Replicas >= xrand.MaxReplicas {
		return r, fmt.Errorf("cluster: replicas %d exceed the seed plane's %d sub-blocks per class",
			c.Replicas, xrand.MaxReplicas)
	}
	if c.ColdEpochs && (c.Replicas > 0 || c.CompactNodes) {
		return r, fmt.Errorf("cluster: replicas and compact nodes need the warm path (ColdEpochs is set)")
	}
	if c.ColdEpochs && c.Controller.enabled() {
		return r, fmt.Errorf("cluster: a fleet controller needs the warm path (ColdEpochs is set)")
	}
	if c.ColdEpochs && c.Faults.enabled() {
		return r, fmt.Errorf("cluster: fault injection needs the warm path (ColdEpochs is set)")
	}
	if c.ColdEpochs && c.Overload.enabled() {
		return r, fmt.Errorf("cluster: overload admission control needs the warm path (ColdEpochs is set)")
	}
	if c.Faults.RestartLatency < 0 || c.Faults.RestartPowerW < 0 {
		return r, fmt.Errorf("cluster: negative restart penalty")
	}
	if c.Dispatch == "" {
		r.Dispatch = DispatchSpread
	}
	if c.TargetUtil == 0 {
		r.TargetUtil = defaultTargetUtil
	}
	if c.UnparkFree {
		r.unparkLatency, r.unparkPowerW = 0, 0
	} else {
		if r.unparkLatency == 0 {
			r.unparkLatency = sim.Millisecond
		}
		if r.unparkPowerW == 0 {
			r.unparkPowerW = 30
		}
	}
	r.restartLatency = c.Faults.RestartLatency
	r.restartPowerW = c.Faults.RestartPowerW
	if c.Faults.RestartFree {
		r.restartLatency, r.restartPowerW = 0, 0
	} else {
		if r.restartLatency == 0 {
			r.restartLatency = 10 * sim.Millisecond
		}
		if r.restartPowerW == 0 {
			r.restartPowerW = 35
		}
	}
	r.total = c.Schedule.Duration()
	if r.Epoch == 0 || r.Epoch > r.total {
		r.Epoch = r.total
	}
	var err error
	if r.Controller, err = normalizeController(c.Controller, r.TargetUtil); err != nil {
		return r, err
	}
	if r.Overload, err = normalizeOverload(c.Overload); err != nil {
		return r, err
	}
	// The static validator covers nodes, policy name, TargetUtil and the
	// closed-loop rejection.
	if err := (Config{
		Nodes:      c.Nodes,
		RateQPS:    0,
		Dispatch:   r.Dispatch,
		TargetUtil: r.TargetUtil,
	}).Validate(); err != nil {
		return r, err
	}
	// Fault windows reference node indices, so they validate after the
	// static pass has established the fleet exists.
	if err := c.Faults.validate(len(c.Nodes)); err != nil {
		return r, err
	}
	return r, nil
}

// epochSeed mixes the epoch index into node seeds for the cold path —
// now hosted in xrand alongside the class/replica seed plane, so the
// disjointness of every seed consumer is proven in one place. Epoch 0
// keeps the node's own seed; that identity is what makes the one-epoch
// scenario reproduce the static Run bit-for-bit.
func epochSeed(seed uint64, epoch int) uint64 {
	return xrand.EpochSeed(seed, epoch)
}

// EpochResult is one re-dispatch interval's fleet measurement.
type EpochResult struct {
	// Epoch indexes the interval; [Start, End) is its schedule window.
	Epoch int
	Start sim.Time
	End   sim.Time
	// Phase names the schedule phase covering the window's midpoint.
	Phase string
	// RateQPS is the schedule's mean offered rate over the window — what
	// the dispatcher partitioned.
	RateQPS float64
	// Parked counts nodes actually parked this epoch (zero load under
	// ParkDrained) — distinct from Fleet.IdleNodes, which counts merely
	// drained nodes whether or not parking is enabled.
	Parked int
	// Unparked counts nodes that were parked last epoch and received
	// load this epoch; UnparkEnergyJ is the synthetic penalty energy
	// they burned (already folded into Fleet.FleetPowerW/FleetEnergyJ).
	// UnparkEnergyJ is a cold-path quantity: the warm path simulates the
	// unpark (drain, deep-idle residency, real exit latency on the first
	// post-unpark arrival), so its cost appears in the measured node
	// results and this field stays zero.
	Unparked      int
	UnparkEnergyJ float64
	// Down counts nodes crashed (dark) for this epoch: nothing was
	// simulated for them and they served no load. Restarted counts nodes
	// rebuilt cold at the start of this epoch after a crash, and
	// RestartEnergyJ is the synthetic restart penalty energy they burned
	// (already folded into Fleet.FleetPowerW/FleetEnergyJ, with the
	// restart latency flooring the epoch's worst p99 — the warm-path
	// analogue of the cold path's unpark penalty fold).
	Down           int
	Restarted      int
	RestartEnergyJ float64
	// TargetNodes is the controller's target active node count for this
	// epoch (the clamped Observe decision; for the oracle, the number of
	// plan-routed nodes). Zero on open-loop runs.
	TargetNodes int
	// Saturated reports that the epoch's demand (offered rate plus any
	// queued backlog) exceeded the active fleet's admission capacity —
	// only ever set when ScenarioConfig.Overload selects a policy.
	// SheddedRequests counts the requests dropped during the window
	// (shed policy, or queue-policy backlog overflow), and BacklogRate
	// is the demand still queued at the window's end expressed as a
	// rate over the window (queue policy).
	Saturated       bool
	SheddedRequests float64
	BacklogRate     float64
	// Fleet is the full fleet aggregate for this window. With
	// CompactNodes its Nodes field stays nil.
	Fleet Result
	// CI holds the epoch's replica-ensemble 95% confidence intervals
	// when ScenarioConfig.Replicas > 0 (warm path), nil otherwise.
	CI *FleetCI
}

// PhaseSummary aggregates the epochs that fell in one schedule phase.
type PhaseSummary struct {
	// Phase is the schedule phase name; Epochs counts its epochs.
	Phase  string
	Epochs int
	// Time is the total simulated time attributed to the phase.
	Time sim.Time
	// AvgRateQPS is the time-weighted mean offered rate.
	AvgRateQPS float64
	// AvgFleetPowerW is the time-weighted mean fleet power.
	AvgFleetPowerW float64
	// QPSPerWatt is completions per joule over the phase.
	QPSPerWatt float64
	// WorstP99US is the worst per-node server p99 across the phase.
	WorstP99US float64
	// AvgParkedNodes is the time-weighted mean parked-node count.
	AvgParkedNodes float64
}

// ScenarioResult is the full time-varying fleet measurement: per-epoch
// detail, per-phase aggregation, and whole-run totals.
type ScenarioResult struct {
	// Schedule and Dispatch echo the configuration.
	Schedule string
	Dispatch string
	// Epoch is the re-dispatch interval; TotalTime the schedule length.
	Epoch     sim.Time
	TotalTime sim.Time

	// Epochs holds every interval in time order.
	Epochs []EpochResult
	// Phases aggregates epochs by schedule phase, in first-seen order.
	Phases []PhaseSummary

	// FleetEnergyJ is total fleet energy including unpark penalties.
	FleetEnergyJ float64
	// AvgFleetPowerW is the time-weighted mean fleet power.
	AvgFleetPowerW float64
	// CompletedPerSec is the time-weighted mean fleet throughput.
	CompletedPerSec float64
	// QPSPerWatt is completions per joule over the whole scenario.
	QPSPerWatt float64
	// WorstP99US is the worst per-node server p99 over any epoch.
	WorstP99US float64
	// Unparks counts park->active transitions over the run.
	Unparks int
	// Restarts counts cold rebuilds after crashes over the run.
	Restarts int
	// ParkedTimeline is the parked-node count per epoch — the
	// consolidation footprint over the day.
	ParkedTimeline []int

	// Controller names the fleet controller that drove the run; empty on
	// open-loop runs. ControllerChanges counts the epochs whose target
	// active node count differed from the previous epoch's — the
	// decision churn awsweep -v reports alongside dedup stats.
	Controller        string
	ControllerChanges int

	// Overload names the admission policy that governed the run; empty
	// when admission control was disabled. SaturatedEpochs counts the
	// epochs whose demand exceeded the admission capacity,
	// SheddedRequests totals the requests dropped over the run, and
	// BacklogRate is the demand still queued after the final epoch
	// (queue policy), as a rate over that epoch.
	Overload        string
	SaturatedEpochs int
	SheddedRequests float64
	BacklogRate     float64

	// Classes counts the timeline equivalence classes the warm path
	// collapsed the fleet into (one per node when nothing collapses;
	// zero on the cold path, which does not classify).
	Classes int
	// ReplicaRuns counts the extra seeded replica timelines executed
	// (Classes x Replicas on the warm path).
	ReplicaRuns int
	// CI holds the whole-run replica-ensemble 95% confidence intervals
	// when Replicas > 0 (warm path), nil otherwise.
	CI *FleetCI
}

// Validate rejects unusable scenario configurations. It is a thin
// wrapper over Normalize — validation and defaulting are one pass, so a
// config rejected here is rejected identically by RunScenario.
func (c ScenarioConfig) Validate() error {
	_, err := c.Normalize()
	return err
}

// epochWindow is one planned re-dispatch interval: its schedule window,
// mean rate, covering phase, and the per-node rate partition. The plan
// depends only on the schedule and the dispatch policy — never on
// simulation results — which is what lets the warm path hand every node
// its entire timeline up front.
type epochWindow struct {
	start, end sim.Time
	rate       float64
	phase      string
	rates      []float64
	// Admission-control account for the window (see OverloadSpec): set
	// by applyOverloadPlan on planned windows and by the run-time
	// admission on realized ones; all zero when admission is disabled.
	saturated  bool
	shedded    float64 // requests dropped during the window
	backlogReq float64 // requests still queued at the window's end
}

// planEpochs partitions the schedule into epoch windows and each
// window's mean rate across the nodes.
func planEpochs(c resolvedScenario, part func(Config) []float64, total sim.Time) []epochWindow {
	var plan []epochWindow
	for e := 0; ; e++ {
		t0 := c.Epoch * sim.Time(e)
		if t0 >= total {
			return plan
		}
		t1 := t0 + c.Epoch
		if t1 > total {
			t1 = total
		}
		window := t1 - t0
		rate := c.Schedule.AvgRate(t0, t1)
		phase, _ := c.Schedule.PhaseAt(t0 + window/2)
		plan = append(plan, epochWindow{
			start: t0,
			end:   t1,
			rate:  rate,
			phase: phase.Name,
			rates: part(Config{
				Nodes:      c.Nodes,
				RateQPS:    rate,
				Dispatch:   c.Dispatch,
				TargetUtil: c.TargetUtil,
			}),
		})
	}
}

// fleetConfig is the static-equivalent Config an epoch's aggregation
// runs under.
func (c resolvedScenario) fleetConfig(rate float64) Config {
	return Config{
		Nodes:       c.Nodes,
		RateQPS:     rate,
		Dispatch:    c.Dispatch,
		TargetUtil:  c.TargetUtil,
		ParkDrained: c.ParkDrained,
	}
}

// RunScenario simulates the fleet under the time-varying schedule with
// epoch-stepped re-dispatch: the schedule is partitioned into an epoch
// plan up front, every node runs its share, park/unpark bookkeeping is
// applied, and per-epoch, per-phase and whole-run views are aggregated.
// The warm path (default) runs each node's entire timeline as one
// resumable pipelined task; ColdEpochs selects the legacy re-simulate-
// every-epoch engine (see ScenarioConfig).
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	c, err := cfg.Normalize()
	if err != nil {
		return ScenarioResult{}, err
	}
	part, err := partitioner(c.Dispatch)
	if err != nil {
		return ScenarioResult{}, err
	}
	r := c.Runner
	if r == nil {
		r = runner.Default()
	}
	plan := planEpochs(c, part, c.total)
	faults := c.faultPlan(plan)
	if faults != nil {
		// Crashed nodes serve nothing; re-partition their epochs' load
		// over the survivors before any timeline is built.
		applyFaultRates(c, part, plan, faults)
	}
	// Admission control clips the plan after the fault adjustment, so
	// capacity reflects crashed nodes. The controlled path re-admits at
	// run time against the controller's active set; the oracle replays
	// these planned accounts.
	applyOverloadPlan(c, part, plan, faults)
	out := ScenarioResult{
		Schedule:  c.Schedule.Name(),
		Dispatch:  c.Dispatch,
		Epoch:     c.Epoch,
		TotalTime: c.total,
		Overload:  c.Overload.Policy,
	}
	switch {
	case c.ColdEpochs:
		err = runScenarioCold(c, plan, r, &out)
	case c.Controller.enabled():
		err = runScenarioControlled(c, plan, faults, part, r, &out)
	default:
		err = runScenarioWarm(c, plan, faults, r, &out)
	}
	if err != nil {
		return ScenarioResult{}, err
	}
	out.finish()
	return out, nil
}

// runScenarioWarm executes the epoch plan on resumable instances,
// class-collapsed: the fleet is first grouped into timeline equivalence
// classes (runner.TimelineKey — bit-identical simulations), then one
// representative timeline per class plus Replicas seeded replicas run
// as independent pipelined runner tasks, and a per-epoch pass expands
// the class measurements back into the fleet by multiplicity for
// park/unpark bookkeeping and aggregation. Collapse is exact by
// construction — members of a class are the *same* simulation — so a
// fleet of singleton classes (distinct seeds, or a deliberately
// heterogeneous fleet) reproduces the pre-collapse path bit-for-bit.
// Unpark costs are simulated — drained requests, deep-idle residency,
// real exit latencies — so no synthetic penalty is folded in and
// EpochResult.UnparkEnergyJ stays zero.
func runScenarioWarm(c resolvedScenario, plan []epochWindow, faults [][]runner.Fault, r *runner.Runner, out *ScenarioResult) error {
	classes := classifyTimelines(c, plan, faults)
	out.Classes = len(classes)
	out.ReplicaRuns = len(classes) * c.Replicas
	r.NoteClassDedup(len(c.Nodes), len(classes), out.ReplicaRuns)
	if err := runClasses(classes, c.Replicas, r); err != nil {
		return err
	}
	if c.CompactNodes {
		warmEpochsCompact(c, plan, classes, out)
	} else {
		warmEpochsExpanded(c, plan, classes, out)
	}
	out.CI = scenarioClassCI(classes, plan, c.Replicas)
	return nil
}

// newEpochResult seeds an epoch's result from its window, carrying the
// window's admission account (all zero when overload control is off).
func newEpochResult(e int, pw epochWindow) EpochResult {
	ep := EpochResult{
		Epoch: e, Start: pw.start, End: pw.end, Phase: pw.phase, RateQPS: pw.rate,
		Saturated: pw.saturated, SheddedRequests: pw.shedded,
	}
	if pw.backlogReq > 0 {
		ep.BacklogRate = pw.backlogReq / (float64(pw.end-pw.start) / 1e9)
	}
	return ep
}

// warmEpochsExpanded materializes every node's NodeResult from its
// class representative — the full-detail default, bit-identical to the
// historical per-node path.
func warmEpochsExpanded(c resolvedScenario, plan []epochWindow, classes []timelineClass, out *ScenarioResult) {
	classOf := make([]int, len(c.Nodes))
	for ci := range classes {
		for _, i := range classes[ci].members {
			classOf[i] = ci
		}
	}
	parked := make([]bool, len(c.Nodes))
	for e, pw := range plan {
		ep := newEpochResult(e, pw)
		nodes := make([]NodeResult, len(c.Nodes))
		for i := range c.Nodes {
			iv := classes[classOf[i]].results[0][e]
			nodes[i] = NodeResult{Node: i, RateQPS: pw.rates[i], Parked: iv.Parked, Result: iv.Result}
			if iv.Parked {
				ep.Parked++
			}
			if iv.Down {
				ep.Down++
			}
			if iv.Restarted {
				ep.Restarted++
			}
			if parked[i] && pw.rates[i] > 0 {
				ep.Unparked++
			}
			parked[i] = iv.Parked
		}
		ep.Fleet = aggregate(c.fleetConfig(pw.rate), nodes)
		applyRestartPenalty(c, &ep, pw.end-pw.start)
		ep.CI = epochClassCI(classes, e, c.Replicas)
		out.Epochs = append(out.Epochs, ep)
		out.ParkedTimeline = append(out.ParkedTimeline, ep.Parked)
		out.Unparks += ep.Unparked
		out.Restarts += ep.Restarted
	}
}

// warmEpochsCompact skips per-node materialization entirely: park
// bookkeeping and fleet aggregation run class-weighted in O(classes)
// per epoch, and EpochResult.Fleet.Nodes stays nil. This is what makes
// a 100K-node fleet a few-classes problem instead of a 2.4M-NodeResult
// problem. Every class member shares its representative's rate and park
// state by construction (both are part of the class key), so the
// weighted counts are exact, not approximations.
func warmEpochsCompact(c resolvedScenario, plan []epochWindow, classes []timelineClass, out *ScenarioResult) {
	parked := make([]bool, len(classes))
	for e, pw := range plan {
		ep := newEpochResult(e, pw)
		reps := make([]NodeResult, len(classes))
		mults := make([]int, len(classes))
		for ci := range classes {
			cl := &classes[ci]
			iv := cl.results[0][e]
			m := len(cl.members)
			reps[ci] = NodeResult{Node: cl.rep, RateQPS: pw.rates[cl.rep], Parked: iv.Parked, Result: iv.Result}
			mults[ci] = m
			if iv.Parked {
				ep.Parked += m
			}
			if iv.Down {
				ep.Down += m
			}
			if iv.Restarted {
				ep.Restarted += m
			}
			if parked[ci] && pw.rates[cl.rep] > 0 {
				ep.Unparked += m
			}
			parked[ci] = iv.Parked
		}
		ep.Fleet = aggregateWeighted(c.fleetConfig(pw.rate), reps, mults)
		applyRestartPenalty(c, &ep, pw.end-pw.start)
		ep.CI = epochClassCI(classes, e, c.Replicas)
		out.Epochs = append(out.Epochs, ep)
		out.ParkedTimeline = append(out.ParkedTimeline, ep.Parked)
		out.Unparks += ep.Unparked
		out.Restarts += ep.Restarted
	}
}

// runScenarioCold executes the epoch plan with the legacy cold-start
// engine: a fleet barrier per epoch, a fresh simulation (and warmup) per
// node per epoch, and the synthetic unpark penalty. Preserved bit-for-
// bit — TestGoldenScenarioStability pins its fingerprints.
func runScenarioCold(c resolvedScenario, plan []epochWindow, r *runner.Runner, out *ScenarioResult) error {
	parked := make([]bool, len(c.Nodes))
	for e, pw := range plan {
		window := pw.end - pw.start
		rates := pw.rates
		ep := EpochResult{Epoch: e, Start: pw.start, End: pw.end, Phase: pw.phase, RateQPS: pw.rate}
		nodes := make([]NodeResult, len(c.Nodes))
		err := r.Each(len(c.Nodes), func(i int) error {
			cfg := c.Nodes[i]
			cfg.RatePerSec = rates[i]
			cfg.Duration = window
			cfg.Seed = epochSeed(cfg.Seed, e)
			isParked := false
			if c.ParkDrained && rates[i] == 0 {
				cfg = park(cfg)
				isParked = true
			}
			res, err := r.Run(cfg)
			if err != nil {
				return fmt.Errorf("cluster: epoch %d node %d: %w", e, i, err)
			}
			nodes[i] = NodeResult{Node: i, RateQPS: rates[i], Parked: isParked, Result: res}
			return nil
		})
		if err != nil {
			return err
		}

		// Park/unpark bookkeeping against the previous epoch's state.
		for i := range nodes {
			if nodes[i].Parked {
				ep.Parked++
			}
			if parked[i] && rates[i] > 0 {
				ep.Unparked++
			}
			parked[i] = nodes[i].Parked
		}
		ep.Fleet = aggregate(c.fleetConfig(pw.rate), nodes)
		winSec := float64(window) / 1e9
		if ep.Unparked > 0 {
			// The unpark flow burns unparkPowerW for unparkLatency per
			// node before any request is served; fold the energy into the
			// epoch's fleet power, and floor the epoch's worst p99 with
			// the latency the first routed requests had to absorb.
			ep.UnparkEnergyJ = float64(ep.Unparked) * float64(c.unparkLatency) / 1e9 * c.unparkPowerW
			ep.Fleet.FleetEnergyJ += ep.UnparkEnergyJ
			ep.Fleet.FleetPowerW += ep.UnparkEnergyJ / winSec
			if ep.Fleet.FleetPowerW > 0 {
				ep.Fleet.QPSPerWatt = ep.Fleet.CompletedPerSec / ep.Fleet.FleetPowerW
			}
			if lat := float64(c.unparkLatency) / 1e3; ep.Fleet.WorstP99US < lat {
				ep.Fleet.WorstP99US = lat
			}
		}

		out.Epochs = append(out.Epochs, ep)
		out.ParkedTimeline = append(out.ParkedTimeline, ep.Parked)
		out.Unparks += ep.Unparked
	}
	return nil
}

// finish derives the per-phase and whole-run aggregates from the epochs.
func (r *ScenarioResult) finish() {
	type phaseAcc struct {
		rateSec     float64 // rate * seconds
		energyJ     float64
		completions float64
		parkedSec   float64
	}
	var totalSec, energy, completions float64
	phaseIdx := map[string]int{}
	var accs []phaseAcc
	for ei := range r.Epochs {
		ep := &r.Epochs[ei]
		winSec := float64(ep.End-ep.Start) / 1e9
		totalSec += winSec
		energy += ep.Fleet.FleetPowerW * winSec
		completions += ep.Fleet.CompletedPerSec * winSec
		if ep.Fleet.WorstP99US > r.WorstP99US {
			r.WorstP99US = ep.Fleet.WorstP99US
		}
		if ep.Saturated {
			r.SaturatedEpochs++
		}
		r.SheddedRequests += ep.SheddedRequests

		pi, ok := phaseIdx[ep.Phase]
		if !ok {
			pi = len(r.Phases)
			phaseIdx[ep.Phase] = pi
			r.Phases = append(r.Phases, PhaseSummary{Phase: ep.Phase})
			accs = append(accs, phaseAcc{})
		}
		p, a := &r.Phases[pi], &accs[pi]
		p.Epochs++
		p.Time += ep.End - ep.Start
		a.rateSec += ep.RateQPS * winSec
		a.energyJ += ep.Fleet.FleetPowerW * winSec
		a.completions += ep.Fleet.CompletedPerSec * winSec
		a.parkedSec += float64(ep.Parked) * winSec
		if ep.Fleet.WorstP99US > p.WorstP99US {
			p.WorstP99US = ep.Fleet.WorstP99US
		}
	}
	for i := range r.Phases {
		p, a := &r.Phases[i], &accs[i]
		sec := float64(p.Time) / 1e9
		if sec <= 0 {
			continue
		}
		p.AvgRateQPS = a.rateSec / sec
		p.AvgFleetPowerW = a.energyJ / sec
		p.AvgParkedNodes = a.parkedSec / sec
		if a.energyJ > 0 {
			p.QPSPerWatt = a.completions / a.energyJ
		}
	}
	if totalSec > 0 {
		r.FleetEnergyJ = energy
		r.AvgFleetPowerW = energy / totalSec
		r.CompletedPerSec = completions / totalSec
	}
	if energy > 0 {
		r.QPSPerWatt = completions / energy
	}
	if len(r.Epochs) > 0 {
		r.BacklogRate = r.Epochs[len(r.Epochs)-1].BacklogRate
	}
}
