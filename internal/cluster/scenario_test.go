package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
)

// mustSchedule unwraps a schedule constructor; construction in these
// tests is static, so a failure is a test-authoring bug.
func mustSchedule(s *scenario.Schedule, err error) *scenario.Schedule {
	if err != nil {
		panic(err)
	}
	return s
}

func runScenario(t *testing.T, c ScenarioConfig) ScenarioResult {
	t.Helper()
	res, err := RunScenario(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOneEpochConstantMatchesStaticRun is the cold engine's anchor: a
// one-phase constant schedule stepped in a single epoch equal to the run
// length must reproduce the static cluster.Run bit-for-bit — identical
// per-node results and identical fleet aggregates.
func TestOneEpochConstantMatchesStaticRun(t *testing.T) {
	nodes := Homogeneous(3, quickNode(0))
	dur := nodes[0].Duration // quickNode: 100ms measured window
	for _, policy := range Policies() {
		static, err := Run(Config{
			Nodes:       nodes,
			RateQPS:     240e3,
			Dispatch:    policy,
			ParkDrained: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sched := mustSchedule(scenario.Constant("steady", 240e3, dur))
		dyn := runScenario(t, ScenarioConfig{
			Nodes:       nodes,
			Schedule:    sched,
			Epoch:       dur,
			Dispatch:    policy,
			ParkDrained: true,
			ColdEpochs:  true,
		})
		if len(dyn.Epochs) != 1 {
			t.Fatalf("%s: epochs = %d, want 1", policy, len(dyn.Epochs))
		}
		ep := dyn.Epochs[0]
		if !reflect.DeepEqual(ep.Fleet, static) {
			t.Errorf("%s: one-epoch scenario fleet diverged from static Run", policy)
		}
		if ep.Unparked != 0 || ep.UnparkEnergyJ != 0 {
			t.Errorf("%s: phantom unparks on first epoch: %d (%vJ)", policy, ep.Unparked, ep.UnparkEnergyJ)
		}
		if dyn.AvgFleetPowerW != static.FleetPowerW {
			t.Errorf("%s: scenario avg power %v != static fleet power %v",
				policy, dyn.AvgFleetPowerW, static.FleetPowerW)
		}
		if dyn.WorstP99US != static.WorstP99US {
			t.Errorf("%s: worst p99 %v != static %v", policy, dyn.WorstP99US, static.WorstP99US)
		}
	}
}

// TestEpochSeedIdentity pins the seed-mixing identity the equivalence
// above relies on, and that later epochs get fresh randomness.
func TestEpochSeedIdentity(t *testing.T) {
	if got := epochSeed(42, 0); got != 42 {
		t.Fatalf("epoch 0 seed = %d, want identity", got)
	}
	seen := map[uint64]bool{}
	for e := 0; e < 100; e++ {
		s := epochSeed(42, e)
		if seen[s] {
			t.Fatalf("epoch seed collision at epoch %d", e)
		}
		seen[s] = true
	}
}

// TestDiurnalConsolidateParksAtTroughUnparksAtPeak is the cold path's
// headline behavior: under a diurnal day with consolidate+park, the
// parked-node timeline must follow the load — nodes parked through the
// trough, unparked (with recorded transitions and the synthetic energy
// penalty) as the peak builds.
func TestDiurnalConsolidateParksAtTroughUnparksAtPeak(t *testing.T) {
	node := quickNode(0)
	node.Duration = 30 * sim.Millisecond
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 240 * sim.Millisecond
	// Trough 0.8M QPS (one packed node), peak 3.2M (most of the fleet).
	sched := mustSchedule(scenario.Diurnal(2e6, 0.6, total, 8))
	res := runScenario(t, ScenarioConfig{
		Nodes:       nodes,
		Schedule:    sched,
		Epoch:       total / 8,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
		ColdEpochs:  true,
	})
	if len(res.Epochs) != 8 || len(res.ParkedTimeline) != 8 {
		t.Fatalf("epochs = %d, timeline = %d, want 8", len(res.Epochs), len(res.ParkedTimeline))
	}
	// Trough (first epoch) parks nodes; peak (middle epochs) wakes them.
	troughParked := res.ParkedTimeline[0]
	peakParked := res.ParkedTimeline[4]
	if troughParked <= peakParked {
		t.Errorf("parked timeline flat: trough %d vs peak %d (timeline %v)",
			troughParked, peakParked, res.ParkedTimeline)
	}
	if troughParked < 2 {
		t.Errorf("trough parked only %d of 4 nodes (timeline %v)", troughParked, res.ParkedTimeline)
	}
	// Rising load must have unparked nodes at least once, paying energy.
	if res.Unparks == 0 {
		t.Fatal("no unpark transitions recorded over a diurnal day")
	}
	var penalty float64
	for _, ep := range res.Epochs {
		penalty += ep.UnparkEnergyJ
	}
	if penalty <= 0 {
		t.Error("unparks recorded but no unpark energy charged")
	}
	// The trough phase must burn less fleet power than the peak phase.
	var trough, peak *PhaseSummary
	for i := range res.Phases {
		p := &res.Phases[i]
		if trough == nil || p.AvgRateQPS < trough.AvgRateQPS {
			trough = p
		}
		if peak == nil || p.AvgRateQPS > peak.AvgRateQPS {
			peak = p
		}
	}
	if trough.AvgFleetPowerW >= peak.AvgFleetPowerW {
		t.Errorf("trough power %v not below peak power %v",
			trough.AvgFleetPowerW, peak.AvgFleetPowerW)
	}
	if trough.AvgParkedNodes <= peak.AvgParkedNodes {
		t.Errorf("trough parked %v not above peak parked %v",
			trough.AvgParkedNodes, peak.AvgParkedNodes)
	}
}

// TestUnparkLatencyFloorsWorstP99 pins the latency half of the unpark
// penalty: requests routed to a node mid-unpark wait at least the unpark
// latency, so an epoch with unparks cannot report a better worst p99.
func TestUnparkLatencyFloorsWorstP99(t *testing.T) {
	node := quickNode(0)
	node.Duration = 30 * sim.Millisecond
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 120 * sim.Millisecond
	// Low base parks most nodes; the 6x spike wakes them.
	sched := mustSchedule(scenario.Spike(600e3, 6, total, total/3, total/3))
	const unparkLat = 5 * sim.Millisecond
	res := runScenario(t, ScenarioConfig{
		Nodes:         nodes,
		Schedule:      sched,
		Epoch:         total / 3,
		Dispatch:      DispatchConsolidate,
		ParkDrained:   true,
		UnparkLatency: unparkLat,
		ColdEpochs:    true,
	})
	if res.Unparks == 0 {
		t.Fatal("spike produced no unparks")
	}
	for _, ep := range res.Epochs {
		if ep.Unparked > 0 && ep.Fleet.WorstP99US < 5000 {
			t.Errorf("epoch %d unparked %d nodes but worst p99 %.0fus below the 5000us unpark floor",
				ep.Epoch, ep.Unparked, ep.Fleet.WorstP99US)
		}
	}
}

// TestDrainedIsNotParkedWithoutParkDrained pins the drained/parked
// distinction: with parking disabled, consolidate still drains nodes
// (Fleet.IdleNodes > 0) but nothing is parked — the timeline, per-epoch
// and per-phase parked counts must all stay zero.
func TestDrainedIsNotParkedWithoutParkDrained(t *testing.T) {
	nodes := Homogeneous(4, quickNode(0))
	sched := mustSchedule(scenario.Constant("steady", 100e3, 100*sim.Millisecond))
	res := runScenario(t, ScenarioConfig{
		Nodes:    nodes,
		Schedule: sched,
		Epoch:    50 * sim.Millisecond,
		Dispatch: DispatchConsolidate,
		// ParkDrained off on purpose.
	})
	for _, ep := range res.Epochs {
		if ep.Fleet.IdleNodes == 0 {
			t.Fatalf("epoch %d: expected drained nodes under consolidate at light load", ep.Epoch)
		}
		if ep.Parked != 0 {
			t.Errorf("epoch %d: %d nodes reported parked with ParkDrained off", ep.Epoch, ep.Parked)
		}
	}
	for _, n := range res.ParkedTimeline {
		if n != 0 {
			t.Errorf("parked timeline %v non-zero with ParkDrained off", res.ParkedTimeline)
		}
	}
	for _, p := range res.Phases {
		if p.AvgParkedNodes != 0 {
			t.Errorf("phase %s AvgParkedNodes %v with ParkDrained off", p.Phase, p.AvgParkedNodes)
		}
	}
	if res.Unparks != 0 {
		t.Errorf("unparks %d with ParkDrained off", res.Unparks)
	}
}

func TestScenarioDeterministic(t *testing.T) {
	nodes := Homogeneous(2, quickNode(0))
	sched := mustSchedule(scenario.ByName(scenario.NameRamp, 300e3, 100*sim.Millisecond))
	cfg := ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: 25 * sim.Millisecond}
	a := runScenario(t, cfg)
	b := runScenario(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("scenario run not deterministic")
	}
	// Distinct epochs see distinct randomness: the per-epoch fleet
	// results of equal-rate epochs must not be bit-identical copies.
	if len(a.Epochs) != 4 {
		t.Fatalf("epochs = %d", len(a.Epochs))
	}
}

func TestScenarioEpochPartitioning(t *testing.T) {
	nodes := Homogeneous(2, quickNode(0))
	total := 100 * sim.Millisecond
	sched := mustSchedule(scenario.Constant("steady", 100e3, total))
	// A 30ms epoch over a 100ms schedule yields 30/30/30/10 windows.
	res := runScenario(t, ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: 30 * sim.Millisecond})
	if len(res.Epochs) != 4 {
		t.Fatalf("epochs = %d, want 4", len(res.Epochs))
	}
	last := res.Epochs[3]
	if last.End != total || last.End-last.Start != 10*sim.Millisecond {
		t.Errorf("tail epoch window [%d,%d), want 10ms ending at %d", last.Start, last.End, total)
	}
	for _, ep := range res.Epochs {
		if math.Abs(ep.RateQPS-100e3) > 1e-6 {
			t.Errorf("epoch %d rate %v, want 100000", ep.Epoch, ep.RateQPS)
		}
	}
	// Epoch larger than the schedule clamps to one full-length epoch.
	res2 := runScenario(t, ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: sim.Second})
	if len(res2.Epochs) != 1 || res2.Epochs[0].End != total {
		t.Errorf("oversized epoch not clamped: %+v", res2.Epochs)
	}
}

func TestScenarioValidation(t *testing.T) {
	nodes := Homogeneous(1, quickNode(0))
	sched := mustSchedule(scenario.Constant("steady", 1e3, sim.Second))
	if _, err := RunScenario(ScenarioConfig{Nodes: nodes}); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := RunScenario(ScenarioConfig{Schedule: sched}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := RunScenario(ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: -1}); err == nil {
		t.Error("negative epoch accepted")
	}
	if _, err := RunScenario(ScenarioConfig{Nodes: nodes, Schedule: sched, UnparkLatency: -1}); err == nil {
		t.Error("negative unpark latency accepted")
	}
	if _, err := RunScenario(ScenarioConfig{Nodes: nodes, Schedule: sched, Dispatch: "route-66"}); err == nil {
		t.Error("unknown policy accepted")
	}
	closed := quickNode(0)
	closed.ClosedLoopConnections = 8
	closed.LoadGen = "closed-loop"
	if _, err := RunScenario(ScenarioConfig{Nodes: []server.Config{closed}, Schedule: sched}); err == nil {
		t.Error("closed-loop node accepted")
	}
}
