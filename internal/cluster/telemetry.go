package cluster

import (
	"repro/internal/cstate"
	"repro/internal/server"
	"repro/internal/sim"
)

// NodeTelemetry is one node's epoch-boundary sample: what the fleet
// control plane may observe about it. Window-mean quantities
// (Utilization, QueueDepth, P99US) come from the finished epoch's
// measurement; LiveQueue is a point sample of the node's backlog at the
// boundary itself, read from the warm server.Instance.
type NodeTelemetry struct {
	// Node is the index into ScenarioConfig.Nodes.
	Node int
	// RateQPS is the load the dispatcher routed to this node over the
	// finished epoch.
	RateQPS float64
	// Utilization is the node's busy fraction (C0 residency) over the
	// epoch window.
	Utilization float64
	// QueueDepth is the window-mean number of requests waiting behind
	// others (Little's law over the measured queueing delay).
	QueueDepth float64
	// LiveQueue is the instantaneous backlog (queued + executing) at the
	// epoch boundary — nonzero when the node ended the window still
	// behind the offered load.
	LiveQueue int
	// P99US is the node's server-side p99 over the epoch.
	P99US float64
	// Parked reports whether the node sat parked for the epoch.
	Parked bool
	// Down reports whether the node was crashed (dark) for the epoch.
	Down bool
}

// FleetTelemetry is what a Controller observes at an epoch boundary:
// the finished epoch's fleet-level aggregates plus (when per-node
// detail is materialized) the per-node samples. Everything here is a
// lagging signal — measurements of the epoch that just ended, never of
// the one being decided — which is precisely the regime where a wrong
// decision becomes visible as unpark lag or overload.
type FleetTelemetry struct {
	// Epoch indexes the finished interval; [Start, End) is its window.
	Epoch int
	Start sim.Time
	End   sim.Time
	// OfferedQPS is the schedule's mean offered rate over the window;
	// CompletedQPS the fleet's achieved throughput.
	OfferedQPS   float64
	CompletedQPS float64
	// TotalNodes is the fleet size. ActiveNodes counts nodes that were
	// routed load this epoch and ParkedNodes nodes that sat parked; they
	// need not sum to TotalNodes (a drained node without ParkDrained is
	// neither).
	TotalNodes  int
	ActiveNodes int
	ParkedNodes int
	// DownNodes counts nodes crashed (dark) for the epoch. A crashed
	// node leaves the active set — it is routed nothing and contributes
	// nothing to the utilization/queue means — so a controller sizing
	// from this sample re-sizes around the survivors.
	DownNodes int
	// Utilization is the mean busy fraction across the nodes that
	// carried load — the reactive controller's primary signal.
	Utilization float64
	// QueueDepth is the mean per-active-node window-mean backlog;
	// LiveQueue sums the boundary point samples across the fleet.
	QueueDepth float64
	LiveQueue  int
	// WorstP99US is the worst per-node server p99 over the epoch.
	WorstP99US float64
	// FleetPowerW is the fleet package power over the epoch.
	FleetPowerW float64
	// Saturated reports that the epoch's demand exceeded the active
	// set's admission capacity; SheddedRequests counts requests the
	// admission policy dropped during the window and BacklogRate the
	// demand still queued at the boundary, as a rate (queue policy).
	// All zero unless ScenarioConfig.Overload selects a policy — the
	// signals a saturation-aware controller or dashboard watches.
	Saturated       bool
	SheddedRequests float64
	BacklogRate     float64
	// Nodes carries the per-node samples, weighted out to fleet order.
	// Nil under CompactNodes, where telemetry stays O(classes); the
	// fleet-level fields above are always populated.
	Nodes []NodeTelemetry
}

// nodeTelemetry builds one node's sample from its epoch measurement and
// the live boundary state of the instance that simulated it.
func nodeTelemetry(node int, rate float64, iv *server.IntervalResult, live int) NodeTelemetry {
	res := &iv.Result
	// Little's law: mean requests in queue = arrival rate x mean wait.
	// CompletedPerSec is the realized arrival rate of completed work and
	// Breakdown.Queue.AvgUS the measured mean wait behind other requests.
	depth := res.CompletedPerSec * res.Breakdown.Queue.AvgUS / 1e6
	return NodeTelemetry{
		Node:        node,
		RateQPS:     rate,
		Utilization: res.Residency[cstate.C0],
		QueueDepth:  depth,
		LiveQueue:   live,
		P99US:       res.Server.P99US,
		Parked:      iv.Parked,
		Down:        iv.Down,
	}
}

// fleetTelemetry folds per-class epoch measurements into the fleet
// sample a controller observes. Classes are weighted by multiplicity,
// so the aggregation cost is O(classes) — compact fleets never pay
// O(nodes) for telemetry.
func fleetTelemetry(epoch int, pw epochWindow, classes []*liveClass, compact bool, totalNodes int) FleetTelemetry {
	t := FleetTelemetry{
		Epoch:           epoch,
		Start:           pw.start,
		End:             pw.end,
		OfferedQPS:      pw.rate,
		TotalNodes:      totalNodes,
		Saturated:       pw.saturated,
		SheddedRequests: pw.shedded,
	}
	if pw.backlogReq > 0 {
		t.BacklogRate = pw.backlogReq / (float64(pw.end-pw.start) / 1e9)
	}
	var utilSum, depthSum float64 // over active nodes
	for _, cl := range classes {
		iv := &cl.results[epoch]
		m := len(cl.members)
		w := float64(m)
		res := &iv.Result
		live := cl.ins.QueueDepth()
		t.CompletedQPS += w * res.CompletedPerSec
		t.FleetPowerW += w * res.PackagePowerW
		t.LiveQueue += m * live
		if res.Server.P99US > t.WorstP99US {
			t.WorstP99US = res.Server.P99US
		}
		if iv.Parked {
			t.ParkedNodes += m
		}
		if iv.Down {
			t.DownNodes += m
		}
		if cl.rate > 0 {
			t.ActiveNodes += m
			utilSum += w * res.Residency[cstate.C0]
			depthSum += w * res.CompletedPerSec * res.Breakdown.Queue.AvgUS / 1e6
		}
		if !compact {
			for _, node := range cl.members {
				t.Nodes = append(t.Nodes, nodeTelemetry(node, cl.rate, iv, live))
			}
		}
	}
	if t.ActiveNodes > 0 {
		t.Utilization = utilSum / float64(t.ActiveNodes)
		t.QueueDepth = depthSum / float64(t.ActiveNodes)
	}
	return t
}
