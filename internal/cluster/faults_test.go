package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cstate"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
)

// faultScenario is the shared fixture for the fault-behavior tests: a
// small homogeneous fleet under a constant schedule, stepped in 10ms
// epochs, with the caller layering faults on top.
func faultScenario(nodes int, rate float64, faults FaultSpec) ScenarioConfig {
	return ScenarioConfig{
		Nodes:    Homogeneous(nodes, quickNode(0)),
		Schedule: mustSchedule(scenario.Constant("steady", rate, 50*sim.Millisecond)),
		Epoch:    10 * sim.Millisecond,
		Faults:   faults,
	}
}

// TestPenaltyOnlyFaultSpecBitIdentical pins the zero-cost guarantee: a
// FaultSpec that configures restart penalties but injects no fault
// takes the identical code path as no spec at all, on both the expanded
// and the compact warm engines.
func TestPenaltyOnlyFaultSpecBitIdentical(t *testing.T) {
	for _, compact := range []bool{false, true} {
		base := faultScenario(3, 240e3, FaultSpec{})
		base.CompactNodes = compact
		spec := base
		spec.Faults = FaultSpec{RestartLatency: 5 * sim.Millisecond, RestartPowerW: 100}
		got := runScenario(t, spec)
		want := runScenario(t, base)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("compact=%v: penalty-only FaultSpec changed the result", compact)
		}
	}
}

// TestCrashedNodesLeaveFleetTelemetry drives a custom controller that
// records every epoch's telemetry: during the crash window the crashed
// node must be counted down, dropped from the active set, and visible
// as a zero-rate Down sample in the per-node detail.
type recordingController struct {
	info FleetInfo
	seen []FleetTelemetry
}

func (c *recordingController) Name() string { return "recorder" }
func (c *recordingController) Observe(t FleetTelemetry) int {
	c.seen = append(c.seen, t)
	return c.info.Nodes
}

func TestCrashedNodesLeaveFleetTelemetry(t *testing.T) {
	rec := &recordingController{}
	cfg := faultScenario(3, 240e3, FaultSpec{Nodes: []NodeFault{
		{Node: 1, Kind: FaultCrash, Start: 10 * sim.Millisecond, End: 30 * sim.Millisecond},
	}})
	cfg.Controller = ControllerSpec{New: func(info FleetInfo) Controller {
		rec.info = info
		return rec
	}}
	res := runScenario(t, cfg)
	if res.Controller != "custom" {
		t.Fatalf("controller name = %q, want custom", res.Controller)
	}
	// Observe runs after every epoch but the last.
	if len(rec.seen) != len(res.Epochs)-1 {
		t.Fatalf("observed %d epochs, want %d", len(rec.seen), len(res.Epochs)-1)
	}
	for _, tel := range rec.seen {
		down := tel.Epoch == 1 || tel.Epoch == 2 // crash window [10ms, 30ms)
		wantDown, wantActive := 0, 3
		if down {
			wantDown, wantActive = 1, 2
		}
		if tel.DownNodes != wantDown || tel.ActiveNodes != wantActive {
			t.Errorf("epoch %d: down=%d active=%d, want %d/%d",
				tel.Epoch, tel.DownNodes, tel.ActiveNodes, wantDown, wantActive)
		}
		if len(tel.Nodes) != 3 {
			t.Fatalf("epoch %d: %d node samples, want 3", tel.Epoch, len(tel.Nodes))
		}
		n1 := tel.Nodes[1]
		if n1.Down != down {
			t.Errorf("epoch %d: node 1 Down = %v, want %v", tel.Epoch, n1.Down, down)
		}
		if down && n1.RateQPS != 0 {
			t.Errorf("epoch %d: crashed node routed %g qps", tel.Epoch, n1.RateQPS)
		}
		if down && n1.Utilization != 0 {
			t.Errorf("epoch %d: crashed node utilization %g", tel.Epoch, n1.Utilization)
		}
	}
}

// TestReactiveResizesAroundCrash runs the reactive controller through a
// crash: the run must complete, survivors must keep serving through the
// outage, and every target must respect the clamp.
func TestReactiveResizesAroundCrash(t *testing.T) {
	cfg := ScenarioConfig{
		Nodes:    Homogeneous(4, quickNode(0)),
		Schedule: mustSchedule(scenario.Constant("steady", 2400e3, 60*sim.Millisecond)),
		Epoch:    10 * sim.Millisecond,
		Faults: FaultSpec{Nodes: []NodeFault{
			{Node: 0, Kind: FaultCrash, Start: 10 * sim.Millisecond, End: 30 * sim.Millisecond},
		}},
		Controller: ControllerSpec{Name: ControllerReactive, Cooldown: 1},
	}
	res := runScenario(t, cfg)
	for _, ep := range res.Epochs {
		if ep.TargetNodes < 1 || ep.TargetNodes > 4 {
			t.Errorf("epoch %d: target %d outside [1, 4]", ep.Epoch, ep.TargetNodes)
		}
		if ep.Down > 0 && ep.Fleet.CompletedPerSec <= 0 {
			t.Errorf("epoch %d: survivors completed nothing during the outage", ep.Epoch)
		}
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Restarts)
	}
	// The outage must actually reach the controller's decisions: the
	// faulted run cannot replay the healthy run's target sequence.
	healthy := cfg
	healthy.Faults = FaultSpec{}
	href := runScenario(t, healthy)
	same := true
	for i, ep := range res.Epochs {
		if ep.TargetNodes != href.Epochs[i].TargetNodes {
			same = false
		}
	}
	if same {
		t.Error("crash left the reactive target sequence untouched")
	}
}

// TestRestartPaysColdPenalty pins the restart fold: the recovery epoch
// counts the rebuild, charges latency x power as synthetic energy,
// floors the epoch's worst p99 at the restart latency, and — because
// the rebuilt instance is genuinely cold — diverges from the healthy
// run's measurement for the same epoch.
func TestRestartPaysColdPenalty(t *testing.T) {
	cfg := faultScenario(2, 160e3, FaultSpec{Nodes: []NodeFault{
		{Node: 1, Kind: FaultCrash, Start: 10 * sim.Millisecond, End: 30 * sim.Millisecond},
	}})
	res := runScenario(t, cfg)
	healthy := runScenario(t, faultScenario(2, 160e3, FaultSpec{}))
	for e, wantDown := range []int{0, 1, 1, 0, 0} {
		if res.Epochs[e].Down != wantDown {
			t.Errorf("epoch %d: Down = %d, want %d", e, res.Epochs[e].Down, wantDown)
		}
	}
	rec := res.Epochs[3]
	if rec.Restarted != 1 || res.Restarts != 1 {
		t.Fatalf("restart counts = epoch %d / run %d, want 1/1", rec.Restarted, res.Restarts)
	}
	// Default penalty: 10ms x 35W = 0.35J, flooring p99 at 10000us.
	if want := float64(10*sim.Millisecond) / 1e9 * 35; rec.RestartEnergyJ != want {
		t.Errorf("RestartEnergyJ = %g, want %g", rec.RestartEnergyJ, want)
	}
	if rec.Fleet.WorstP99US < 10000 {
		t.Errorf("WorstP99US = %g, want >= 10000 (restart latency floor)", rec.Fleet.WorstP99US)
	}
	if reflect.DeepEqual(rec.Fleet, healthy.Epochs[3].Fleet) {
		t.Error("restart epoch measured identical to the healthy run: no cold rebuild happened")
	}
	// RestartFree zeroes the synthetic fold but keeps the cold rebuild.
	free := cfg
	free.Faults.RestartFree = true
	fres := runScenario(t, free)
	if ep := fres.Epochs[3]; ep.Restarted != 1 || ep.RestartEnergyJ != 0 {
		t.Errorf("RestartFree epoch: restarted=%d energy=%g, want 1/0", ep.Restarted, ep.RestartEnergyJ)
	}
}

// TestAllCrashedEpochSanity is the satellite's integration half: an
// epoch with the whole fleet dark must run to completion — zero
// completions, finite aggregates, no panic — under the open loop and
// under both built-in controllers, and the fleet must serve again once
// the window lifts.
func TestAllCrashedEpochSanity(t *testing.T) {
	blackout := FaultSpec{Nodes: []NodeFault{
		{Node: 0, Kind: FaultCrash, Start: 20 * sim.Millisecond, End: 30 * sim.Millisecond},
		{Node: 1, Kind: FaultCrash, Start: 20 * sim.Millisecond, End: 30 * sim.Millisecond},
	}}
	for _, ctrl := range []string{"", ControllerReactive, ControllerPredictive} {
		name := ctrl
		if name == "" {
			name = "open-loop"
		}
		t.Run(name, func(t *testing.T) {
			cfg := faultScenario(2, 160e3, blackout)
			cfg.Controller = ControllerSpec{Name: ctrl}
			res := runScenario(t, cfg)
			dark := res.Epochs[2]
			if dark.Down != 2 {
				t.Fatalf("dark epoch Down = %d, want 2", dark.Down)
			}
			if dark.Fleet.CompletedPerSec != 0 {
				t.Errorf("dark epoch completed %g qps, want 0", dark.Fleet.CompletedPerSec)
			}
			for field, v := range map[string]float64{
				"FleetPowerW": dark.Fleet.FleetPowerW,
				"QPSPerWatt":  dark.Fleet.QPSPerWatt,
				"WorstP99US":  dark.Fleet.WorstP99US,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("dark epoch %s = %g, want finite", field, v)
				}
			}
			rec := res.Epochs[3]
			if rec.Restarted != 2 {
				t.Errorf("recovery epoch Restarted = %d, want 2", rec.Restarted)
			}
			if rec.Fleet.CompletedPerSec <= 0 {
				t.Error("fleet never came back after the blackout")
			}
			if ctrl != "" && (rec.TargetNodes < 1 || rec.TargetNodes > 2) {
				t.Errorf("recovery target %d outside [1, 2]", rec.TargetNodes)
			}
		})
	}
}

// TestControllersSurviveZeroActiveTelemetry is the satellite's unit
// half: both built-in controllers fed an epoch with no active nodes
// (all parked, or all crashed) must return a clamped, usable target.
func TestControllersSurviveZeroActiveTelemetry(t *testing.T) {
	info := FleetInfo{Nodes: 4, PerNodeQPS: 100e3, TargetUtil: 0.6, Epoch: 10 * sim.Millisecond}
	samples := []FleetTelemetry{
		{TotalNodes: 4, ActiveNodes: 0},                                   // all dark: zero everything
		{TotalNodes: 4, ActiveNodes: 0, ParkedNodes: 4, OfferedQPS: 50e3}, // all parked, load still offered
	}
	specs := []ControllerSpec{
		{Name: ControllerReactive, UpUtil: 0.75, DownUtil: 0.40, TargetUtil: 0.6, Cooldown: 1, Alpha: 0.3},
		{Name: ControllerPredictive, UpUtil: 0.75, DownUtil: 0.40, TargetUtil: 0.6, Cooldown: 1, Alpha: 0.3},
	}
	for _, spec := range specs {
		c := newController(spec, info)
		for i, tel := range samples {
			if got := c.Observe(tel); got < 1 || got > info.Nodes {
				t.Errorf("%s: sample %d: target %d outside [1, %d]", spec.Name, i, got, info.Nodes)
			}
		}
	}
	// PerNodeQPS 0 (degenerate fleet description) must hold, not divide.
	c := newController(specs[1], FleetInfo{Nodes: 4})
	if got := c.Observe(samples[1]); got < 1 || got > 4 {
		t.Errorf("predictive with zero capacity returned %d", got)
	}
}

// TestFleetTelemetryWeightedFolds exercises the class-weighted fold
// directly: an active class with multiplicity 3, a parked class with
// multiplicity 2, and a crashed singleton must aggregate by
// multiplicity into the fleet sample, with per-node expansion restoring
// fleet order.
func TestFleetTelemetryWeightedFolds(t *testing.T) {
	cursor := func() *runner.TimelineCursor {
		ins, err := runner.NewCursor(quickNode(0), true)
		if err != nil {
			t.Fatal(err)
		}
		return ins
	}
	active := server.IntervalResult{}
	active.Result.Residency[cstate.C0] = 0.6
	active.Result.PackagePowerW = 50
	active.Result.CompletedPerSec = 40e3
	active.Result.Server.P99US = 120
	active.Result.Breakdown.Queue.AvgUS = 10
	parked := server.IntervalResult{Parked: true}
	parked.Result.PackagePowerW = 2
	down := server.IntervalResult{Down: true}
	classes := []*liveClass{
		{members: []int{0, 1, 2}, ins: cursor(), rate: 50e3, results: []server.IntervalResult{active}},
		{members: []int{3, 4}, ins: cursor(), results: []server.IntervalResult{parked}},
		{members: []int{5}, ins: cursor(), results: []server.IntervalResult{down}},
	}
	pw := epochWindow{start: 0, end: 10 * sim.Millisecond, rate: 150e3}
	tel := fleetTelemetry(0, pw, classes, false, 6)
	if tel.TotalNodes != 6 || tel.ActiveNodes != 3 || tel.ParkedNodes != 2 || tel.DownNodes != 1 {
		t.Errorf("counts total/active/parked/down = %d/%d/%d/%d, want 6/3/2/1",
			tel.TotalNodes, tel.ActiveNodes, tel.ParkedNodes, tel.DownNodes)
	}
	if want := 3 * 40e3; tel.CompletedQPS != want {
		t.Errorf("CompletedQPS = %g, want %g", tel.CompletedQPS, want)
	}
	if want := 3*50 + 2*2.0; tel.FleetPowerW != want {
		t.Errorf("FleetPowerW = %g, want %g", tel.FleetPowerW, want)
	}
	if tel.Utilization != 0.6 {
		t.Errorf("Utilization = %g, want 0.6 (weighted mean over active nodes)", tel.Utilization)
	}
	if want := 40e3 * 10 / 1e6; !approxEq(tel.QueueDepth, want) {
		t.Errorf("QueueDepth = %g, want %g", tel.QueueDepth, want)
	}
	if tel.WorstP99US != 120 {
		t.Errorf("WorstP99US = %g, want 120", tel.WorstP99US)
	}
	if len(tel.Nodes) != 6 {
		t.Fatalf("expanded to %d node samples, want 6", len(tel.Nodes))
	}
	for i, n := range tel.Nodes {
		if n.Node != i {
			t.Errorf("node sample %d carries index %d", i, n.Node)
		}
	}
	if !tel.Nodes[3].Parked || !tel.Nodes[5].Down || tel.Nodes[5].RateQPS != 0 {
		t.Errorf("per-node flags wrong: %+v", tel.Nodes[3:])
	}
	// Compact mode: identical fleet aggregates, no per-node detail.
	ctel := fleetTelemetry(0, pw, classes, true, 6)
	if ctel.Nodes != nil {
		t.Error("compact telemetry materialized per-node samples")
	}
	tel.Nodes = nil
	if !reflect.DeepEqual(tel, ctel) {
		t.Error("compact fleet aggregates differ from expanded")
	}
}

// TestCorrelatedFaultPlanDeterministic pins the correlated process: the
// plan is a pure function of the spec and its seed, and each strike
// marks ceil(Duration/Epoch) consecutive epochs.
func TestCorrelatedFaultPlanDeterministic(t *testing.T) {
	cfg := faultScenario(4, 240e3, FaultSpec{Correlated: CorrelatedFaults{
		Kind:        FaultThermal,
		GroupSize:   2,
		Probability: 0.5,
		Duration:    25 * sim.Millisecond, // span = ceil(25/10) = 3 epochs
		Factor:      0.5,
		Seed:        3,
	}})
	r, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	plan := make([]epochWindow, 5)
	for e := range plan {
		plan[e] = epochWindow{start: sim.Time(e) * r.Epoch, end: sim.Time(e+1) * r.Epoch}
	}
	got := r.faultPlan(plan)
	if got == nil {
		t.Fatal("enabled correlated process produced no plan")
	}
	if again := r.faultPlan(plan); !reflect.DeepEqual(got, again) {
		t.Error("faultPlan is not deterministic for a fixed spec and seed")
	}
	struck := 0
	for e := range got {
		for i := range got[e] {
			f := got[e][i]
			if !f.Throttle {
				continue
			}
			struck++
			if f.TurboCap != 0.5 {
				t.Errorf("epoch %d node %d: turbo cap %g, want 0.5", e, i, f.TurboCap)
			}
			// A fresh strike covers the next span-1 epochs too (clipped at
			// the end of the run).
			if e == 0 || !got[e-1][i].Throttle {
				for ee := e; ee < e+3 && ee < len(got); ee++ {
					if !got[ee][i].Throttle {
						t.Errorf("strike at epoch %d node %d not sustained at epoch %d", e, i, ee)
					}
				}
			}
		}
	}
	if struck == 0 {
		t.Error("probability-0.5 process over 5 epochs x 2 groups struck nothing")
	}
	// Group correlation: members of a struck group fault together.
	for e := range got {
		for _, g := range [][2]int{{0, 1}, {2, 3}} {
			if got[e][g[0]].Throttle != got[e][g[1]].Throttle {
				t.Errorf("epoch %d: group %v split by a correlated strike", e, g)
			}
		}
	}
}

// TestFaultSplitsTimelineClasses pins the class interaction: a
// homogeneous fleet that collapses to one equivalence class splits
// exactly where a fault makes one member's timeline diverge.
func TestFaultSplitsTimelineClasses(t *testing.T) {
	shared := func(faults FaultSpec) ScenarioConfig {
		cfg := faultScenario(2, 160e3, faults)
		cfg.Nodes = sharedFleet(2, quickNode(0))
		return cfg
	}
	healthy := runScenario(t, shared(FaultSpec{}))
	if healthy.Classes != 1 {
		t.Fatalf("healthy shared-seed fleet collapsed to %d classes, want 1", healthy.Classes)
	}
	faulted := runScenario(t, shared(FaultSpec{Nodes: []NodeFault{
		{Node: 1, Kind: FaultStraggler, Start: 10 * sim.Millisecond, End: 20 * sim.Millisecond, Factor: 2},
	}}))
	if faulted.Classes != 2 {
		t.Errorf("faulted node stayed collapsed: %d classes, want 2", faulted.Classes)
	}
}
