package cluster

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// stripControllerFields zeroes the fields only a controlled run sets,
// so a controlled result can be compared field-for-field against an
// open-loop one.
func stripControllerFields(r ScenarioResult) ScenarioResult {
	r.Controller = ""
	r.ControllerChanges = 0
	epochs := append([]EpochResult(nil), r.Epochs...)
	for e := range epochs {
		epochs[e].TargetNodes = 0
	}
	r.Epochs = epochs
	return r
}

// TestOracleControllerMatchesOpenLoopBitForBit is the incremental
// engine's exactness proof: routing a scenario through the closed-loop
// machinery with the oracle controller — live classes, per-epoch
// telemetry sampling, split detection, post-run repackaging — must
// reproduce the open-loop warm path bit-for-bit, in every mode
// (expanded, compact, with replica CIs), because the oracle replays the
// precomputed plan verbatim and everything else is bookkeeping.
func TestOracleControllerMatchesOpenLoopBitForBit(t *testing.T) {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 160 * sim.Millisecond
	base := ScenarioConfig{
		Nodes:       nodes,
		Schedule:    mustSchedule(scenario.Diurnal(2e6, 0.6, total, 8)),
		Epoch:       total / 8,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
	}
	modes := []struct {
		name string
		mut  func(*ScenarioConfig)
	}{
		{"expanded", func(*ScenarioConfig) {}},
		{"compact", func(c *ScenarioConfig) { c.CompactNodes = true }},
		{"compact-replicas", func(c *ScenarioConfig) { c.CompactNodes = true; c.Replicas = 2 }},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			open := base
			m.mut(&open)
			controlled := open
			controlled.Controller = ControllerSpec{Name: ControllerOracle}
			want := runScenario(t, open)
			got := runScenario(t, controlled)
			if got.Controller != ControllerOracle {
				t.Errorf("Controller = %q, want %q", got.Controller, ControllerOracle)
			}
			for _, ep := range got.Epochs {
				if ep.TargetNodes <= 0 || ep.TargetNodes > len(nodes) {
					t.Errorf("epoch %d TargetNodes = %d outside [1, %d]", ep.Epoch, ep.TargetNodes, len(nodes))
				}
			}
			if !reflect.DeepEqual(stripControllerFields(got), want) {
				t.Errorf("oracle-controlled run diverged from open-loop\n got %+v\nwant %+v",
					stripControllerFields(got), want)
			}
		})
	}
}

// TestControlledRunDeterministic pins that a closed-loop run is exactly
// reproducible: the controller's decisions derive only from simulated
// telemetry, which derives only from seeds.
func TestControlledRunDeterministic(t *testing.T) {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 160 * sim.Millisecond
	cfg := ScenarioConfig{
		Nodes:       nodes,
		Schedule:    mustSchedule(scenario.Spike(1e6, 3, total, total/4, total/4)),
		Epoch:       total / 8,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
		Controller:  ControllerSpec{Name: ControllerReactive},
	}
	a := runScenario(t, cfg)
	b := runScenario(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("controlled scenario run not deterministic")
	}
}

// TestControlledCompactMatchesExpandedAggregates pins that class
// splitting under a live controller keeps the compact expansion exact:
// the O(classes) aggregation must agree with the O(nodes) one on every
// fleet-level number even while classes split mid-run.
func TestControlledCompactMatchesExpandedAggregates(t *testing.T) {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 160 * sim.Millisecond
	cfg := ScenarioConfig{
		Nodes:       nodes,
		Schedule:    mustSchedule(scenario.Diurnal(2e6, 0.6, total, 8)),
		Epoch:       total / 8,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
		Controller:  ControllerSpec{Name: ControllerReactive},
	}
	expanded := runScenario(t, cfg)
	compact := cfg
	compact.CompactNodes = true
	c := runScenario(t, compact)
	if c.FleetEnergyJ != expanded.FleetEnergyJ ||
		c.AvgFleetPowerW != expanded.AvgFleetPowerW ||
		c.CompletedPerSec != expanded.CompletedPerSec ||
		c.WorstP99US != expanded.WorstP99US ||
		c.Unparks != expanded.Unparks ||
		!reflect.DeepEqual(c.ParkedTimeline, expanded.ParkedTimeline) {
		t.Errorf("compact controlled run diverged from expanded:\ncompact  %+v\nexpanded %+v", c, expanded)
	}
	for e := range c.Epochs {
		if c.Epochs[e].TargetNodes != expanded.Epochs[e].TargetNodes {
			t.Errorf("epoch %d target diverged: compact %d vs expanded %d",
				e, c.Epochs[e].TargetNodes, expanded.Epochs[e].TargetNodes)
		}
	}
}

// TestReactiveCooldownNeverFlipsWithinWindow is the hysteresis
// property: however adversarial the utilization stream, the reactive
// controller never changes its target twice within the cooldown window.
// The stream alternates far above and far below the deadband every
// epoch — the worst flapping input — so without the cooldown the target
// would flip every observation.
func TestReactiveCooldownNeverFlipsWithinWindow(t *testing.T) {
	for _, cooldown := range []int{1, 2, 3, 5} {
		spec, err := normalizeController(ControllerSpec{Name: ControllerReactive, Cooldown: cooldown}, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		ctrl := newController(spec, FleetInfo{Nodes: 16, PerNodeQPS: 1e6, TargetUtil: 0.6})
		prev := 16
		lastChange := -cooldown // the initial target predates the run
		for e := 0; e < 64; e++ {
			util := 0.95
			active := 4
			if e%2 == 1 {
				util = 0.10
				active = 16
			}
			got := ctrl.Observe(FleetTelemetry{
				Epoch:       e,
				Utilization: util,
				ActiveNodes: active,
				TotalNodes:  16,
			})
			if got != prev {
				if since := e - lastChange; since < cooldown {
					t.Fatalf("cooldown %d: target changed at epoch %d only %d epochs after the previous change",
						cooldown, e, since)
				}
				lastChange = e
				prev = got
			}
			if got < 1 || got > 16 {
				t.Fatalf("cooldown %d: target %d outside [1, 16]", cooldown, got)
			}
		}
		if lastChange < 0 {
			t.Fatalf("cooldown %d: adversarial stream never moved the target", cooldown)
		}
	}
}

// TestReactiveConstantScheduleConvergesToOracle pins the reactive
// controller's steady state: under a constant offered rate the fleet it
// settles on carries the load with exactly as many active nodes as the
// oracle's precomputed consolidation — the feedback loop finds the plan
// when there is nothing to react to.
func TestReactiveConstantScheduleConvergesToOracle(t *testing.T) {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 240 * sim.Millisecond
	base := ScenarioConfig{
		Nodes:       nodes,
		Schedule:    mustSchedule(scenario.Constant("steady", 1200e3, total)),
		Epoch:       total / 12,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
	}
	oracle := base
	oracle.Controller = ControllerSpec{Name: ControllerOracle}
	reactive := base
	reactive.Controller = ControllerSpec{Name: ControllerReactive}
	o := runScenario(t, oracle)
	r := runScenario(t, reactive)
	oracleActive := len(nodes) - o.Epochs[len(o.Epochs)-1].Parked
	last := r.Epochs[len(r.Epochs)-1]
	reactiveActive := len(nodes) - last.Parked
	if reactiveActive != oracleActive {
		t.Errorf("reactive settled on %d active nodes, oracle uses %d (parked timeline %v vs %v)",
			reactiveActive, oracleActive, r.ParkedTimeline, o.ParkedTimeline)
	}
	// And it stays there: the back half of the run holds the converged
	// target without churn.
	half := len(r.Epochs) / 2
	for _, ep := range r.Epochs[half:] {
		if ep.TargetNodes != last.TargetNodes {
			t.Errorf("epoch %d target %d churned after convergence (want %d; timeline %v)",
				ep.Epoch, ep.TargetNodes, last.TargetNodes, r.ParkedTimeline)
		}
	}
}

// TestPredictiveProvisionsForForecast pins the predictive controller's
// sizing rule: at a converged constant offered rate the target is
// ceil(rate / (TargetUtil x per-node capacity)), the EWMA forecast
// having settled on the rate itself.
func TestPredictiveProvisionsForForecast(t *testing.T) {
	spec, err := normalizeController(ControllerSpec{Name: ControllerPredictive}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	info := FleetInfo{Nodes: 8, PerNodeQPS: 1e6, TargetUtil: 0.6}
	ctrl := newController(spec, info)
	var got int
	for e := 0; e < 50; e++ {
		got = ctrl.Observe(FleetTelemetry{Epoch: e, OfferedQPS: 3e6})
	}
	want := 5 // ceil(3e6 / (0.6 * 1e6))
	if got != want {
		t.Errorf("converged predictive target = %d, want %d", got, want)
	}
	// A spike the EWMA has seen raises provisioning immediately
	// (high-biased forecast), and never above the fleet.
	if got = ctrl.Observe(FleetTelemetry{OfferedQPS: 30e6}); got != 8 {
		t.Errorf("post-spike predictive target = %d, want clamp at 8", got)
	}
}

// TestReactiveSpikePaysUnparkLag pins the closed-loop failure mode the
// open-loop path cannot exhibit: on a spike schedule the reactive
// controller parks the fleet down during the quiet lead-in, the spike
// lands on the shrunken active set a full epoch before the controller
// can react, and the spike epoch's worst p99 degrades versus the
// oracle, which had the nodes awake in advance.
func TestReactiveSpikePaysUnparkLag(t *testing.T) {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 320 * sim.Millisecond
	base := ScenarioConfig{
		Nodes:       nodes,
		Schedule:    mustSchedule(scenario.Spike(400e3, 8, total, total/2, total/8)),
		Epoch:       total / 16,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
	}
	oracle := base
	oracle.Controller = ControllerSpec{Name: ControllerOracle}
	reactive := base
	reactive.Controller = ControllerSpec{Name: ControllerReactive}
	o := runScenario(t, oracle)
	r := runScenario(t, reactive)
	if r.ControllerChanges == 0 {
		t.Fatal("reactive controller never changed its target over a spike schedule")
	}
	var oSpike, rSpike float64
	for e := range o.Epochs {
		if o.Epochs[e].Phase == "spike" {
			if p := o.Epochs[e].Fleet.WorstP99US; p > oSpike {
				oSpike = p
			}
			if p := r.Epochs[e].Fleet.WorstP99US; p > rSpike {
				rSpike = p
			}
		}
	}
	if oSpike <= 0 {
		t.Fatal("no spike-phase epochs found")
	}
	if rSpike <= oSpike {
		t.Errorf("reactive spike p99 %.1fus not degraded vs oracle %.1fus — no unpark lag visible",
			rSpike, oSpike)
	}
}
