// Package cluster composes N per-node server simulations into one fleet
// run, extending the single-server model toward the paper's Table 5
// framing: instead of extrapolating per-server watt savings to a fleet,
// the fleet is simulated and its power measured.
//
// A cluster run is three stages:
//
//  1. A cluster-level dispatcher partitions the aggregate offered load
//     across the nodes (spread, least-loaded, or the power-aware
//     consolidate policy that packs load onto few nodes so the rest can
//     reach package deep idle).
//  2. Every node — a full server.Config, possibly heterogeneous (mixed
//     catalogs, core counts, platform configurations) — runs as an
//     independent simulation through the shared internal/runner executor,
//     so nodes execute in parallel and identical node configs are
//     memoized across fleet sweeps.
//  3. A cluster collector aggregates the per-node server.Results into
//     fleet power, energy proportionality, and tail latency.
//
// Nodes are coupled only through the load partition: requests never
// migrate between nodes mid-run, which mirrors the connection-affinity
// load balancing of the paper's Mutilate setup and keeps each node's
// simulation bit-for-bit identical to a standalone server.RunConfig with
// the same per-node rate. A 1-node spread cluster therefore reproduces
// RunService exactly (see TestOneNodeSpreadMatchesRunService).
package cluster

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/runner"
	"repro/internal/server"
)

// Config describes one fleet simulation.
type Config struct {
	// Nodes are the per-node server configurations. Each node's
	// RatePerSec is overwritten by the cluster dispatch policy; every
	// other field (catalog, platform, core count, seed, ...) is honored
	// as given, so heterogeneous fleets mix freely.
	Nodes []server.Config
	// RateQPS is the aggregate offered load partitioned across nodes.
	RateQPS float64
	// Dispatch names the cluster-level load partitioning policy
	// (default spread; see Policies).
	Dispatch string
	// TargetUtil is the per-node utilization the consolidate policy
	// fills nodes to before spilling onto the next (default 0.6).
	TargetUtil float64
	// ParkDrained, when set, parks nodes the policy assigned zero load:
	// OS noise is disabled (a quiesced, tickless node) and the package
	// idle-state model is enabled, so drained nodes fall to deep package
	// idle instead of burning full uncore power on housekeeping wake-ups.
	// Nodes that receive load are never modified.
	ParkDrained bool
	// Runner executes the node simulations (default runner.Default()).
	Runner *runner.Runner
}

// Homogeneous returns n copies of template with per-node seeds
// template.Seed, template.Seed+1, ... so nodes see independent arrival
// and service randomness while the whole fleet stays reproducible from
// one seed.
func Homogeneous(n int, template server.Config) []server.Config {
	nodes := make([]server.Config, n)
	for i := range nodes {
		nodes[i] = template
		nodes[i].Seed = template.Seed + uint64(i)
	}
	return nodes
}

// Validate rejects unusable fleet configurations. Per-node configs are
// validated by the node simulations themselves.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	if c.RateQPS < 0 {
		return fmt.Errorf("cluster: negative rate")
	}
	if c.TargetUtil < 0 || c.TargetUtil > 1 {
		return fmt.Errorf("cluster: TargetUtil %v out of (0,1]", c.TargetUtil)
	}
	if _, err := partitioner(c.Dispatch); err != nil {
		return err
	}
	for i, n := range c.Nodes {
		if n.LoadGen == server.LoadClosedLoop || n.ClosedLoopConnections > 0 {
			return fmt.Errorf("cluster: node %d uses closed-loop load; the cluster dispatcher partitions open-loop rates", i)
		}
	}
	return nil
}

// park returns cfg quiesced for a zero-load window: no OS housekeeping
// wake-ups, the package idle state armed, and the deepest enabled
// C-state selected outright (the menu governor's cold-start prediction
// is pessimistically short, which would strand never-woken cores in C1;
// a fleet manager draining a node sends it to deepest idle instead). The
// bursty generator rejects a zero rate, so drained nodes always run the
// open-loop generator (which schedules nothing at rate 0).
func park(cfg server.Config) server.Config {
	cfg.OSNoisePeriod = -1
	cfg.PkgIdleEnabled = true
	cfg.GovernorPolicy = governor.PolicyStatic
	cfg.LoadGen = server.LoadOpenLoop
	return cfg
}

// Run partitions the load, simulates every node in parallel and
// aggregates the fleet result.
func Run(c Config) (Result, error) {
	if c.Dispatch == "" {
		c.Dispatch = DispatchSpread
	}
	if c.TargetUtil == 0 {
		c.TargetUtil = defaultTargetUtil
	}
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	part, err := partitioner(c.Dispatch)
	if err != nil {
		return Result{}, err
	}
	rates := part(c)
	r := c.Runner
	if r == nil {
		r = runner.Default()
	}
	nodes := make([]NodeResult, len(c.Nodes))
	err = r.Each(len(c.Nodes), func(i int) error {
		cfg := c.Nodes[i]
		cfg.RatePerSec = rates[i]
		parked := false
		if c.ParkDrained && rates[i] == 0 {
			cfg = park(cfg)
			parked = true
		}
		res, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
		nodes[i] = NodeResult{Node: i, RateQPS: rates[i], Parked: parked, Result: res}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return aggregate(c, nodes), nil
}
