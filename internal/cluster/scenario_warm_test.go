package cluster

import (
	"reflect"
	"testing"

	"repro/internal/cstate"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// TestWarmOneEpochSpreadMatchesStaticRun is the warm engine's anchor: a
// one-phase constant schedule in a single epoch, spread across nodes
// that all carry load, must reproduce the static cluster.Run bit-for-bit
// — the resumable Instance's first interval is the one-shot simulation.
func TestWarmOneEpochSpreadMatchesStaticRun(t *testing.T) {
	nodes := Homogeneous(3, quickNode(0))
	dur := nodes[0].Duration
	static, err := Run(Config{Nodes: nodes, RateQPS: 240e3})
	if err != nil {
		t.Fatal(err)
	}
	sched := mustSchedule(scenario.Constant("steady", 240e3, dur))
	warm := runScenario(t, ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: dur})
	if len(warm.Epochs) != 1 {
		t.Fatalf("epochs = %d, want 1", len(warm.Epochs))
	}
	if !reflect.DeepEqual(warm.Epochs[0].Fleet, static) {
		t.Errorf("warm one-epoch scenario fleet diverged from static Run\n got %+v\nwant %+v",
			warm.Epochs[0].Fleet, static)
	}
}

// TestWarmDeterministicAndDistinctFromCold pins that the warm path is
// reproducible, and that it is a genuinely different engine from the
// cold path (continuous state vs per-epoch cold starts) — while both
// agree on the schedule bookkeeping (windows, rates, phases).
func TestWarmDeterministicAndDistinctFromCold(t *testing.T) {
	nodes := Homogeneous(2, quickNode(0))
	sched := mustSchedule(scenario.ByName(scenario.NameRamp, 300e3, 100*sim.Millisecond))
	cfg := ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: 25 * sim.Millisecond}
	a := runScenario(t, cfg)
	b := runScenario(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("warm scenario run not deterministic")
	}
	cold := cfg
	cold.ColdEpochs = true
	c := runScenario(t, cold)
	if len(a.Epochs) != len(c.Epochs) {
		t.Fatalf("warm %d epochs vs cold %d", len(a.Epochs), len(c.Epochs))
	}
	for e := range a.Epochs {
		aw, cw := a.Epochs[e], c.Epochs[e]
		if aw.Start != cw.Start || aw.End != cw.End || aw.RateQPS != cw.RateQPS || aw.Phase != cw.Phase {
			t.Errorf("epoch %d plan diverged: warm [%d,%d)@%v/%s, cold [%d,%d)@%v/%s",
				e, aw.Start, aw.End, aw.RateQPS, aw.Phase, cw.Start, cw.End, cw.RateQPS, cw.Phase)
		}
	}
	// Beyond epoch 0 the engines must differ: cold re-warms from mixed
	// seeds, warm continues one simulation.
	same := true
	for e := 1; e < len(a.Epochs); e++ {
		if a.Epochs[e].Fleet.FleetPowerW != c.Epochs[e].Fleet.FleetPowerW {
			same = false
		}
	}
	if same {
		t.Error("warm and cold paths produced identical per-epoch power — cold path not actually distinct")
	}
}

// TestWarmDiurnalConsolidateParksAndUnparksForReal is the warm path's
// headline behavior: over a diurnal day with consolidate+park, the
// parked timeline follows the load, and the park/unpark transitions are
// simulated — no synthetic energy penalty (UnparkEnergyJ stays 0), the
// parked nodes really reach package deep idle, and the epoch that wakes
// a parked node records a wake tail at least the deepest state's exit
// latency.
func TestWarmDiurnalConsolidateParksAndUnparksForReal(t *testing.T) {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 240 * sim.Millisecond
	sched := mustSchedule(scenario.Diurnal(2e6, 0.6, total, 8))
	res := runScenario(t, ScenarioConfig{
		Nodes:       nodes,
		Schedule:    sched,
		Epoch:       total / 8,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
	})
	if len(res.Epochs) != 8 {
		t.Fatalf("epochs = %d, want 8", len(res.Epochs))
	}
	if res.ParkedTimeline[0] <= res.ParkedTimeline[4] {
		t.Errorf("parked timeline flat: trough %d vs peak %d (timeline %v)",
			res.ParkedTimeline[0], res.ParkedTimeline[4], res.ParkedTimeline)
	}
	if res.Unparks == 0 {
		t.Fatal("no unpark transitions over a diurnal day")
	}
	for _, ep := range res.Epochs {
		if ep.UnparkEnergyJ != 0 {
			t.Errorf("epoch %d charged synthetic unpark energy %v on the warm path", ep.Epoch, ep.UnparkEnergyJ)
		}
	}
	// Parked nodes really sit in package deep idle.
	for _, ep := range res.Epochs {
		for _, n := range ep.Fleet.Nodes {
			if n.Parked && n.Result.PkgIdleFraction < 0.5 {
				t.Errorf("epoch %d node %d parked but package-idle fraction %.3f",
					ep.Epoch, n.Node, n.Result.PkgIdleFraction)
			}
		}
	}
	// The epoch that unparks a node pays a real deep-idle exit: the
	// unparked node's max wake latency covers the deepest state's exit
	// flow (C6 for the Baseline menu).
	exitUS := float64(cstate.Skylake().ExitLatency(cstate.C6)) / 1e3
	checked := false
	for e := 1; e < len(res.Epochs); e++ {
		ep := res.Epochs[e]
		if ep.Unparked == 0 {
			continue
		}
		prev := res.Epochs[e-1]
		for i, n := range ep.Fleet.Nodes {
			if prev.Fleet.Nodes[i].Parked && n.RateQPS > 0 {
				checked = true
				if n.Result.Breakdown.Wake.MaxUS < exitUS {
					t.Errorf("epoch %d node %d unparked but max wake %.2fus < C6 exit %.2fus",
						e, i, n.Result.Breakdown.Wake.MaxUS, exitUS)
				}
			}
		}
	}
	if !checked {
		t.Error("no unparked node found to check the exit-latency claim")
	}
	// Trough phase burns less fleet power than the peak phase.
	var trough, peak *PhaseSummary
	for i := range res.Phases {
		p := &res.Phases[i]
		if trough == nil || p.AvgRateQPS < trough.AvgRateQPS {
			trough = p
		}
		if peak == nil || p.AvgRateQPS > peak.AvgRateQPS {
			peak = p
		}
	}
	if trough.AvgFleetPowerW >= peak.AvgFleetPowerW {
		t.Errorf("trough power %v not below peak power %v", trough.AvgFleetPowerW, peak.AvgFleetPowerW)
	}
}

// TestUnparkFreeRepresentable is the zero-value footgun regression: an
// explicit free unpark must be expressible on the cold path — no energy
// penalty charged and no p99 floor — while the zero value still means
// "default 1ms/30W".
func TestUnparkFreeRepresentable(t *testing.T) {
	node := quickNode(0)
	node.Duration = 30 * sim.Millisecond
	node.Warmup = 5 * sim.Millisecond
	nodes := Homogeneous(4, node)
	total := 120 * sim.Millisecond
	sched := mustSchedule(scenario.Spike(600e3, 6, total, total/3, total/3))
	base := ScenarioConfig{
		Nodes:       nodes,
		Schedule:    sched,
		Epoch:       total / 3,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
		ColdEpochs:  true,
	}
	defaulted := runScenario(t, base)
	if defaulted.Unparks == 0 {
		t.Fatal("spike produced no unparks")
	}
	var defaultPenalty float64
	for _, ep := range defaulted.Epochs {
		defaultPenalty += ep.UnparkEnergyJ
	}
	if defaultPenalty <= 0 {
		t.Fatal("zero-value unpark fields no longer default to a nonzero penalty")
	}
	free := base
	free.UnparkFree = true
	freeRes := runScenario(t, free)
	if freeRes.Unparks != defaulted.Unparks {
		t.Fatalf("free-unpark run diverged in unpark count: %d vs %d", freeRes.Unparks, defaulted.Unparks)
	}
	for _, ep := range freeRes.Epochs {
		if ep.UnparkEnergyJ != 0 {
			t.Errorf("epoch %d charged %vJ with UnparkFree", ep.Epoch, ep.UnparkEnergyJ)
		}
		if ep.Unparked > 0 && ep.Fleet.WorstP99US >= 1000 &&
			defaulted.Epochs[ep.Epoch].Fleet.WorstP99US == 1000 {
			t.Errorf("epoch %d p99 still floored at the 1ms default with UnparkFree", ep.Epoch)
		}
	}
	// UnparkFree also beats explicit nonzero fields, documented-wins.
	if resolved, err := free.Normalize(); err != nil {
		t.Fatalf("Normalize(free): %v", err)
	} else if resolved.unparkLatency != 0 || resolved.unparkPowerW != 0 {
		t.Errorf("UnparkFree resolved to %v/%v, want 0/0", resolved.unparkLatency, resolved.unparkPowerW)
	}
	if resolved, err := base.Normalize(); err != nil {
		t.Fatalf("Normalize(base): %v", err)
	} else if resolved.unparkLatency != sim.Millisecond || resolved.unparkPowerW != 30 {
		t.Errorf("zero-value fields resolved to %v/%v, want 1ms/30W", resolved.unparkLatency, resolved.unparkPowerW)
	}
}

// TestScenarioNodeFailureShortCircuits pins that one broken node fails
// the scenario promptly: the runner cancels outstanding timeline tasks
// instead of simulating the rest of the fleet to completion.
func TestScenarioNodeFailureShortCircuits(t *testing.T) {
	nodes := Homogeneous(8, quickNode(0))
	nodes[0].Cores = -1 // invalid: instance construction fails
	sched := mustSchedule(scenario.Constant("steady", 400e3, 50*sim.Millisecond))
	_, err := RunScenario(ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: 10 * sim.Millisecond})
	if err == nil {
		t.Fatal("broken node accepted")
	}
}
