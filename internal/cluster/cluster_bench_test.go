package cluster

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchFleetCfg is the BenchmarkClusterRun configuration: a 4-node
// homogeneous Baseline fleet under spread dispatch. Each iteration uses
// a fresh private Runner so memoization never short-circuits the
// measurement; the per-node seeds differ, so all four nodes simulate.
func benchFleetCfg(r *runner.Runner) Config {
	template := server.Config{
		Platform: governor.Baseline,
		Profile:  workload.Memcached(),
		Duration: 20 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
		Seed:     1,
	}
	return Config{
		Nodes:   Homogeneous(4, template),
		RateQPS: 400e3,
		Runner:  r,
	}
}

// BenchmarkClusterRun measures a full fleet simulation: cluster dispatch,
// parallel node fan-out through the runner, and fleet aggregation.
func BenchmarkClusterRun(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(benchFleetCfg(runner.New(4))); err != nil {
			b.Fatal(err)
		}
	}
}
