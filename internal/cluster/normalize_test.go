package cluster

import (
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// TestNormalizeRejectsInvalidConfigs is the single-path validation
// table: every invalid scenario configuration, each rejected with the
// same error whether the caller goes through Validate, RunScenario or a
// CLI — all of them are Normalize.
func TestNormalizeRejectsInvalidConfigs(t *testing.T) {
	nodes := Homogeneous(2, quickNode(0))
	sched := mustSchedule(scenario.Constant("steady", 100e3, 50*sim.Millisecond))
	valid := ScenarioConfig{Nodes: nodes, Schedule: sched, Epoch: 10 * sim.Millisecond}
	cases := []struct {
		name string
		mut  func(*ScenarioConfig)
		want string // substring of the error
	}{
		{"nil schedule", func(c *ScenarioConfig) { c.Schedule = nil }, "needs a schedule"},
		{"negative epoch", func(c *ScenarioConfig) { c.Epoch = -1 }, "negative epoch"},
		{"negative unpark latency", func(c *ScenarioConfig) { c.UnparkLatency = -1 }, "negative unpark penalty"},
		{"negative unpark power", func(c *ScenarioConfig) { c.UnparkPowerW = -1 }, "negative unpark penalty"},
		{"negative replicas", func(c *ScenarioConfig) { c.Replicas = -1 }, "negative replicas"},
		{"replicas exceed seed plane", func(c *ScenarioConfig) { c.Replicas = xrand.MaxReplicas }, "seed plane"},
		{"cold with replicas", func(c *ScenarioConfig) { c.ColdEpochs = true; c.Replicas = 1 }, "need the warm path"},
		{"cold with compact nodes", func(c *ScenarioConfig) { c.ColdEpochs = true; c.CompactNodes = true }, "need the warm path"},
		{"cold with controller", func(c *ScenarioConfig) {
			c.ColdEpochs = true
			c.Controller = ControllerSpec{Name: ControllerReactive}
		}, "controller needs the warm path"},
		{"unknown controller", func(c *ScenarioConfig) {
			c.Controller = ControllerSpec{Name: "psychic"}
		}, "unknown controller"},
		{"inverted deadband", func(c *ScenarioConfig) {
			c.Controller = ControllerSpec{Name: ControllerReactive, DownUtil: 0.8, UpUtil: 0.5}
		}, "deadband"},
		{"deadband above one", func(c *ScenarioConfig) {
			c.Controller = ControllerSpec{Name: ControllerReactive, UpUtil: 1.5}
		}, "deadband"},
		{"controller target util above one", func(c *ScenarioConfig) {
			c.Controller = ControllerSpec{Name: ControllerReactive, TargetUtil: 1.5}
		}, "target utilization"},
		{"negative cooldown", func(c *ScenarioConfig) {
			c.Controller = ControllerSpec{Name: ControllerReactive, Cooldown: -1}
		}, "cooldown"},
		{"alpha above one", func(c *ScenarioConfig) {
			c.Controller = ControllerSpec{Name: ControllerPredictive, Alpha: 1.5}
		}, "alpha"},
		{"no nodes", func(c *ScenarioConfig) { c.Nodes = nil }, ""},
		{"unknown dispatch", func(c *ScenarioConfig) { c.Dispatch = "psychic" }, "dispatch"},
		{"negative target util", func(c *ScenarioConfig) { c.TargetUtil = -0.5 }, ""},
		{"cold with faults", func(c *ScenarioConfig) {
			c.ColdEpochs = true
			c.Faults.Nodes = []NodeFault{{Node: 0, Kind: FaultCrash, Start: 0, End: 1}}
		}, "fault injection needs the warm path"},
		{"unknown fault kind", func(c *ScenarioConfig) {
			c.Faults.Nodes = []NodeFault{{Node: 0, Kind: "gremlin", Start: 0, End: 1}}
		}, "unknown kind"},
		{"crash with factor", func(c *ScenarioConfig) {
			c.Faults.Nodes = []NodeFault{{Node: 0, Kind: FaultCrash, Start: 0, End: 1, Factor: 2}}
		}, "takes no factor"},
		{"straggler factor not above one", func(c *ScenarioConfig) {
			c.Faults.Nodes = []NodeFault{{Node: 0, Kind: FaultStraggler, Start: 0, End: 1, Factor: 1}}
		}, "must be a finite value > 1"},
		{"straggler factor NaN", func(c *ScenarioConfig) {
			c.Faults.Nodes = []NodeFault{{Node: 0, Kind: FaultStraggler, Start: 0, End: 1, Factor: math.NaN()}}
		}, "must be a finite value > 1"},
		{"thermal cap out of range", func(c *ScenarioConfig) {
			c.Faults.Nodes = []NodeFault{{Node: 0, Kind: FaultThermal, Start: 0, End: 1, Factor: 1}}
		}, "outside [0, 1)"},
		{"fault node outside fleet", func(c *ScenarioConfig) {
			c.Faults.Nodes = []NodeFault{{Node: 2, Kind: FaultCrash, Start: 0, End: 1}}
		}, "outside the fleet"},
		{"inverted fault window", func(c *ScenarioConfig) {
			c.Faults.Nodes = []NodeFault{{Node: 0, Kind: FaultCrash, Start: 5, End: 5}}
		}, "invalid window"},
		{"overlapping fault windows", func(c *ScenarioConfig) {
			c.Faults.Nodes = []NodeFault{
				{Node: 0, Kind: FaultCrash, Start: 0, End: 10},
				{Node: 0, Kind: FaultStraggler, Start: 5, End: 15, Factor: 2},
			}
		}, "overlap on node 0"},
		{"correlated group too large", func(c *ScenarioConfig) {
			c.Faults.Correlated = CorrelatedFaults{Kind: FaultCrash, GroupSize: 3, Probability: 0.5, Duration: 1}
		}, "group size"},
		{"correlated probability out of range", func(c *ScenarioConfig) {
			c.Faults.Correlated = CorrelatedFaults{Kind: FaultCrash, GroupSize: 1, Probability: 1.5, Duration: 1}
		}, "probability"},
		{"correlated probability NaN", func(c *ScenarioConfig) {
			c.Faults.Correlated = CorrelatedFaults{Kind: FaultCrash, GroupSize: 1, Probability: math.NaN(), Duration: 1}
		}, "probability"},
		{"correlated non-positive duration", func(c *ScenarioConfig) {
			c.Faults.Correlated = CorrelatedFaults{Kind: FaultCrash, GroupSize: 1, Probability: 0.5}
		}, "non-positive duration"},
		{"negative restart latency", func(c *ScenarioConfig) {
			c.Faults.RestartLatency = -1
		}, "negative restart penalty"},
		{"negative restart power", func(c *ScenarioConfig) {
			c.Faults.RestartPowerW = -1
		}, "negative restart penalty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mut(&cfg)
			_, nerr := cfg.Normalize()
			if nerr == nil {
				t.Fatal("Normalize accepted the invalid config")
			}
			if tc.want != "" && !strings.Contains(nerr.Error(), tc.want) {
				t.Errorf("Normalize error %q does not mention %q", nerr, tc.want)
			}
			// Validate and RunScenario are the same path: identical errors.
			if verr := cfg.Validate(); verr == nil || verr.Error() != nerr.Error() {
				t.Errorf("Validate error %v != Normalize error %v", verr, nerr)
			}
			if _, rerr := RunScenario(cfg); rerr == nil || rerr.Error() != nerr.Error() {
				t.Errorf("RunScenario error %v != Normalize error %v", rerr, nerr)
			}
		})
	}
}

// TestNormalizeResolvesDefaults pins the defaulting half of Normalize:
// every unset knob lands on its documented effective value, and the
// input config is not mutated.
func TestNormalizeResolvesDefaults(t *testing.T) {
	nodes := Homogeneous(2, quickNode(0))
	total := 50 * sim.Millisecond
	cfg := ScenarioConfig{
		Nodes:      nodes,
		Schedule:   mustSchedule(scenario.Constant("steady", 100e3, total)),
		Controller: ControllerSpec{Name: ControllerReactive},
	}
	r, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.Dispatch != DispatchSpread {
		t.Errorf("Dispatch = %q, want %q", r.Dispatch, DispatchSpread)
	}
	if r.TargetUtil != defaultTargetUtil {
		t.Errorf("TargetUtil = %g, want %g", r.TargetUtil, defaultTargetUtil)
	}
	if r.Epoch != total {
		t.Errorf("Epoch = %v, want whole schedule %v", r.Epoch, total)
	}
	if r.total != total {
		t.Errorf("total = %v, want %v", r.total, total)
	}
	if r.unparkLatency != sim.Millisecond || r.unparkPowerW != 30 {
		t.Errorf("unpark penalty = %v/%vW, want 1ms/30W", r.unparkLatency, r.unparkPowerW)
	}
	if r.restartLatency != 10*sim.Millisecond || r.restartPowerW != 35 {
		t.Errorf("restart penalty = %v/%vW, want 10ms/35W", r.restartLatency, r.restartPowerW)
	}
	free := cfg
	free.Faults.RestartFree = true
	free.Faults.RestartLatency = 5 * sim.Millisecond // RestartFree wins
	if fr, err := free.Normalize(); err != nil || fr.restartLatency != 0 || fr.restartPowerW != 0 {
		t.Errorf("RestartFree resolved to %v/%vW (err %v), want 0/0", fr.restartLatency, fr.restartPowerW, err)
	}
	cs := r.Controller
	if cs.UpUtil != 0.75 || cs.DownUtil != 0.40 || cs.TargetUtil != defaultTargetUtil ||
		cs.Cooldown != 2 || cs.Alpha != 0.3 {
		t.Errorf("controller defaults = %+v", cs)
	}
	if cfg.Epoch != 0 || cfg.Dispatch != "" || cfg.Controller.UpUtil != 0 {
		t.Error("Normalize mutated its receiver")
	}
	// An over-long epoch clamps to the schedule.
	cfg.Epoch = 2 * total
	if r, err = cfg.Normalize(); err != nil || r.Epoch != total {
		t.Errorf("over-long epoch resolved to %v (err %v), want %v", r.Epoch, err, total)
	}
}
