package cluster

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// liveScenario is the shared live-engine fixture: a 4-node fleet under
// a diurnal schedule with consolidation and parking — enough epochs and
// rate movement to exercise class splits, parks and unparks.
func liveScenario() ScenarioConfig {
	node := quickNode(0)
	node.Warmup = 5 * sim.Millisecond
	total := 160 * sim.Millisecond
	return ScenarioConfig{
		Nodes:       Homogeneous(4, node),
		Schedule:    mustSchedule(scenario.Diurnal(2e6, 0.6, total, 8)),
		Epoch:       total / 8,
		Dispatch:    DispatchConsolidate,
		ParkDrained: true,
	}
}

// stepAll steps the live fleet to completion.
func stepAll(t *testing.T, l *Live) {
	t.Helper()
	for !l.Done() {
		if _, err := l.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func mustLive(t *testing.T, cfg ScenarioConfig) *Live {
	t.Helper()
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustResult(t *testing.T, l *Live) ScenarioResult {
	t.Helper()
	res, err := l.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLiveMatchesRunScenario is the live engine's identity anchor: a
// Live stepped to completion must return the exact ScenarioResult
// RunScenario computes for the same config — open-loop, controlled,
// faulted, compact, and with replica CIs.
func TestLiveMatchesRunScenario(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*ScenarioConfig)
	}{
		{"open-loop", func(*ScenarioConfig) {}},
		{"compact-replicas", func(c *ScenarioConfig) { c.CompactNodes = true; c.Replicas = 2 }},
		{"reactive", func(c *ScenarioConfig) { c.Controller = ControllerSpec{Name: ControllerReactive} }},
		{"predictive-faulted", func(c *ScenarioConfig) {
			c.Controller = ControllerSpec{Name: ControllerPredictive}
			c.Faults = FaultSpec{Nodes: []NodeFault{
				{Node: 1, Kind: FaultCrash, Start: 40 * sim.Millisecond, End: 80 * sim.Millisecond},
				{Node: 2, Kind: FaultStraggler, Start: 20 * sim.Millisecond, End: 60 * sim.Millisecond, Factor: 3},
			}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := liveScenario()
			tc.mut(&cfg)
			want, err := RunScenario(cfg)
			if err != nil {
				t.Fatal(err)
			}
			l := mustLive(t, cfg)
			if l.Epochs() != 8 {
				t.Fatalf("Epochs() = %d, want 8", l.Epochs())
			}
			stepAll(t, l)
			got := mustResult(t, l)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("live result diverged from RunScenario\n got %+v\nwant %+v", got, want)
			}
			if _, err := l.Step(); err == nil {
				t.Error("Step past the last epoch succeeded")
			}
		})
	}
}

// TestLiveForkDeterminism pins the what-if engine's core guarantee: a
// fork taken mid-scenario replays the remaining epochs bit-identically
// to its parent, and stepping the fork leaves the parent's own future
// untouched.
func TestLiveForkDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*ScenarioConfig)
	}{
		{"open-loop", func(*ScenarioConfig) {}},
		{"reactive", func(c *ScenarioConfig) { c.Controller = ControllerSpec{Name: ControllerReactive} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := liveScenario()
			tc.mut(&cfg)
			parent := mustLive(t, cfg)
			for i := 0; i < 4; i++ {
				if _, err := parent.Step(); err != nil {
					t.Fatal(err)
				}
			}
			fork := parent.Fork()
			// The fork steps first: if it shared any mutable state with
			// the parent, the parent's remaining epochs would feel it.
			stepAll(t, fork)
			stepAll(t, parent)
			pres, fres := mustResult(t, parent), mustResult(t, fork)
			if !reflect.DeepEqual(pres, fres) {
				t.Errorf("fork timeline diverged from parent\nparent %+v\n  fork %+v", pres, fres)
			}
			want, err := RunScenario(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pres, want) {
				t.Error("parent stepped after a fork diverged from RunScenario")
			}
		})
	}
}

// TestLiveStepTargetWhatIf drives the operator-override path: forcing a
// small active set on a fork parks the rest of the fleet for those
// epochs, without the controller fighting back and without disturbing
// the parent.
func TestLiveStepTargetWhatIf(t *testing.T) {
	cfg := liveScenario()
	cfg.Controller = ControllerSpec{Name: ControllerReactive}
	parent := mustLive(t, cfg)
	for i := 0; i < 3; i++ {
		if _, err := parent.Step(); err != nil {
			t.Fatal(err)
		}
	}
	fork := parent.Fork()
	for i := 0; i < 2; i++ {
		tel, err := fork.StepTarget(1)
		if err != nil {
			t.Fatal(err)
		}
		if tel.ActiveNodes != 1 {
			t.Errorf("forced epoch %d: ActiveNodes = %d, want 1", i, tel.ActiveNodes)
		}
		if tel.ParkedNodes != len(cfg.Nodes)-1 {
			t.Errorf("forced epoch %d: ParkedNodes = %d, want %d", i, tel.ParkedNodes, len(cfg.Nodes)-1)
		}
	}
	stepAll(t, fork)
	res := mustResult(t, fork)
	if res.Epochs[3].TargetNodes != 1 || res.Epochs[4].TargetNodes != 1 {
		t.Errorf("forced epochs report targets %d,%d, want 1,1",
			res.Epochs[3].TargetNodes, res.Epochs[4].TargetNodes)
	}

	// The parent is untouched by the fork's alternate future.
	stepAll(t, parent)
	want, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mustResult(t, parent), want) {
		t.Error("parent diverged after a fork ran a what-if")
	}
}

// TestLiveSnapshotRestore pins the fleet checkpoint: a fleet restored
// from a mid-scenario snapshot replays the remaining epochs
// bit-identically to the uninterrupted original, on open-loop,
// controlled and faulted runs.
func TestLiveSnapshotRestore(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*ScenarioConfig)
	}{
		{"open-loop", func(*ScenarioConfig) {}},
		{"reactive", func(c *ScenarioConfig) { c.Controller = ControllerSpec{Name: ControllerReactive} }},
		{"crash-fault", func(c *ScenarioConfig) {
			c.Faults = FaultSpec{Nodes: []NodeFault{
				{Node: 0, Kind: FaultCrash, Start: 40 * sim.Millisecond, End: 100 * sim.Millisecond},
			}}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := liveScenario()
			tc.mut(&cfg)
			orig := mustLive(t, cfg)
			for i := 0; i < 4; i++ {
				if _, err := orig.Step(); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := orig.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreLive(cfg, blob)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Epoch() != orig.Epoch() || restored.Clock() != orig.Clock() {
				t.Fatalf("restored at epoch %d clock %v, original at epoch %d clock %v",
					restored.Epoch(), restored.Clock(), orig.Epoch(), orig.Clock())
			}
			stepAll(t, orig)
			stepAll(t, restored)
			ores, rres := mustResult(t, orig), mustResult(t, restored)
			if !reflect.DeepEqual(ores, rres) {
				t.Errorf("restored fleet diverged from original\noriginal %+v\nrestored %+v", ores, rres)
			}
		})
	}
}

// TestRestoreLiveRejectsCorruptPayloads is the strict-decode net at the
// fleet level: truncations, version flips, trailing bytes and a
// mismatched scenario config must all fail RestoreLive.
func TestRestoreLiveRejectsCorruptPayloads(t *testing.T) {
	cfg := liveScenario()
	l := mustLive(t, cfg)
	for i := 0; i < 2; i++ {
		if _, err := l.Step(); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreLive(cfg, nil); err == nil {
		t.Error("RestoreLive(nil) succeeded")
	}
	// Truncation sweep: sample every 7th cut so the test stays fast but
	// still crosses every block boundary of the document.
	for n := 0; n < len(blob); n += 7 {
		if _, err := RestoreLive(cfg, blob[:n]); err == nil {
			t.Fatalf("RestoreLive accepted truncation to %d of %d bytes", n, len(blob))
		}
	}
	if _, err := RestoreLive(cfg, append(append([]byte{}, blob...), 0x7)); err == nil {
		t.Error("RestoreLive accepted trailing garbage")
	}
	bad := append([]byte{}, blob...)
	bad[0] = liveSnapshotVersion + 1
	if _, err := RestoreLive(cfg, bad); err == nil {
		t.Error("RestoreLive accepted an unknown version byte")
	}
	other := cfg
	other.Dispatch = DispatchSpread
	if _, err := RestoreLive(other, blob); err == nil {
		t.Error("RestoreLive accepted a checkpoint taken under a different scenario config")
	}
}

// TestRestoreLiveRejectsTargetedCorruption walks the checkpoint
// document block by block — version byte, identity block (including
// the v2 overload fields), decision history, nested instance snapshots
// — and proves a flipped byte or a truncation inside each one is
// rejected. Every offset is computed from the codec's fixed-width
// layout, and every flip has a guaranteed failure mode (an identity
// mismatch, an invalid boolean, a replay-target mismatch, or an
// instance byte-inequality) — a full blind sweep could land on bytes
// whose corruption is replay-equivalent and pass silently.
func TestRestoreLiveRejectsTargetedCorruption(t *testing.T) {
	cfg := liveScenario()
	cfg.Controller = ControllerSpec{Name: ControllerReactive}
	cfg.Overload.Policy = OverloadQueue
	l := mustLive(t, cfg)
	for i := 0; i < 3; i++ {
		if _, err := l.Step(); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Fixed-width layout arithmetic (see Live.Snapshot): 1 version byte,
	// then the identity block, the 3-epoch decision history, and the
	// class verification block holding the nested instance snapshots.
	const i64 = 8
	str := func(s string) int { return i64 + len(s) }
	identEnd := 1 + 4*i64 + // nodes, plan epochs, total, epoch
		str(cfg.Schedule.Name()) + str(cfg.Dispatch) + str(cfg.Controller.Name) +
		1 + 1 + i64 + // park, compact, replicas
		str(cfg.Overload.Policy) + 2*i64 // max util, max backlog
	histOff := identEnd
	classOff := histOff + i64 + 3*(i64+1) // count, then target+forced per epoch

	flip := func(off int) func([]byte) []byte {
		return func(b []byte) []byte { b[off] ^= 0xFF; return b }
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"version byte flipped", flip(0)},
		{"identity node count flipped", flip(1 + i64 - 1)},
		{"identity schedule name flipped", flip(1 + 4*i64 + i64)},
		{"identity overload max-util flipped", flip(identEnd - 2*i64)},
		{"identity overload backlog cap flipped", flip(identEnd - 1)},
		{"decision history count flipped", flip(histOff + i64 - 1)},
		{"decision history target flipped", flip(histOff + i64 + i64 - 1)},
		{"decision history forced flag invalid", func(b []byte) []byte {
			b[histOff+i64+i64] = 2
			return b
		}},
		{"class count flipped", flip(classOff + i64 - 1)},
		{"instance snapshot tail flipped", flip(len(blob) - 2)},
		{"truncated inside the identity block", func(b []byte) []byte { return b[:identEnd-4] }},
		{"truncated inside the decision history", func(b []byte) []byte { return b[:histOff+i64+4] }},
		{"truncated inside an instance snapshot", func(b []byte) []byte { return b[:len(b)-10] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mut(append([]byte{}, blob...))
			if _, err := RestoreLive(cfg, bad); err == nil {
				t.Error("RestoreLive accepted the corrupted checkpoint")
			}
		})
	}

	// The arithmetic above must describe the real document: the
	// untouched blob still restores.
	if _, err := RestoreLive(cfg, blob); err != nil {
		t.Fatalf("pristine checkpoint no longer restores: %v", err)
	}
}
