package cluster

import (
	"repro/internal/server"
	"repro/internal/stats"
)

// NodeResult is one node's simulation outcome plus its share of the
// fleet load.
type NodeResult struct {
	// Node is the index into Config.Nodes.
	Node int
	// RateQPS is the load the cluster dispatcher assigned to this node.
	RateQPS float64
	// Parked reports whether the node was quiesced (zero load under
	// ParkDrained).
	Parked bool
	// Result is the node's full single-server measurement.
	Result server.Result
}

// Result aggregates a fleet run. Per-node detail stays available in
// Nodes; the fleet-level fields are what the cluster experiment and the
// datacenter cost model consume.
type Result struct {
	// Dispatch and RateQPS echo the fleet configuration.
	Dispatch string
	RateQPS  float64

	// Nodes holds every node's result, indexed like Config.Nodes.
	Nodes []NodeResult

	// FleetPowerW is the total package power across nodes — the
	// measured quantity Table 5 extrapolates from a single server.
	FleetPowerW float64
	// FleetEnergyJ is the total package energy over the measured window.
	FleetEnergyJ float64
	// CompletedPerSec is the fleet throughput.
	CompletedPerSec float64
	// QPSPerWatt is the fleet's energy-proportionality figure of merit:
	// completions per joule. A perfectly proportional fleet holds it
	// constant across load; idle-heavy fleets see it collapse at low QPS.
	QPSPerWatt float64

	// ActiveNodes/IdleNodes count nodes with and without assigned load.
	ActiveNodes int
	IdleNodes   int

	// Server and EndToEnd aggregate the node latency distributions. The
	// mean is exact (completion-weighted); quantiles are
	// completion-weighted averages of the node quantiles — exact when
	// one node carries the load, an approximation when several do (the
	// underlying histograms are not retained in server.Result). Max is
	// exact.
	Server   server.LatencySummary
	EndToEnd server.LatencySummary
	// WorstP99US is the largest per-node server p99 — the node a
	// fleet-wide SLO is judged against.
	WorstP99US float64
	// MedianP99US / P90P99US summarize the spread of per-node server
	// p99s across nodes that carried load: a wide median-to-p90 gap
	// means the dispatch policy is concentrating tail pain on a few
	// nodes rather than degrading uniformly.
	MedianP99US float64
	P90P99US    float64
}

// combineSummaries merges per-node latency summaries as documented on
// Result.Server. With non-nil mults, part i stands for mults[i]
// identical nodes: its completion weight and count scale by the
// multiplicity, which is exactly what merging mults[i] copies would
// compute. Unit multiplicities (nil mults) reproduce the unweighted
// merge bit-for-bit — float64(Count)*1 is exact.
func combineSummaries(parts []server.LatencySummary, mults []int) server.LatencySummary {
	loaded := parts[:0:0]
	var lmults []int
	for i, p := range parts {
		if p.Count > 0 {
			loaded = append(loaded, p)
			if mults != nil {
				lmults = append(lmults, mults[i])
			}
		}
	}
	mult := func(i int) uint64 {
		if lmults == nil {
			return 1
		}
		return uint64(lmults[i])
	}
	if len(loaded) == 0 {
		return server.LatencySummary{}
	}
	if len(loaded) == 1 {
		// A single loaded part is exact whatever its weight: quantiles
		// of m identical distributions are the distribution's own.
		out := loaded[0]
		out.Count *= mult(0)
		return out
	}
	var out server.LatencySummary
	var total float64
	for i, p := range loaded {
		m := mult(i)
		w := float64(p.Count) * float64(m)
		out.Count += p.Count * m
		out.AvgUS += w * p.AvgUS
		out.P50US += w * p.P50US
		out.P95US += w * p.P95US
		out.P99US += w * p.P99US
		out.P999US += w * p.P999US
		if p.MaxUS > out.MaxUS {
			out.MaxUS = p.MaxUS
		}
		total += w
	}
	out.AvgUS /= total
	out.P50US /= total
	out.P95US /= total
	out.P99US /= total
	out.P999US /= total
	return out
}

// aggregate folds the per-node results into the fleet Result.
func aggregate(c Config, nodes []NodeResult) Result {
	return aggregateWeighted(c, nodes, nil)
}

// aggregateWeighted folds per-entry results into the fleet Result with
// entry i standing for mults[i] identical nodes — the class-collapsed
// collector. nil mults means unit multiplicities with full per-node
// detail (Result.Nodes is set), and is bit-for-bit the historical
// aggregate: every weighted term reduces to w=1 exactly. With explicit
// mults the result is compact — Nodes stays nil, counts are weighted
// sums, and the p99-spread quantiles run through stats.WeightedSeries,
// which answers exactly what a SortedSeries over the expanded multiset
// would.
func aggregateWeighted(c Config, nodes []NodeResult, mults []int) Result {
	out := Result{Dispatch: c.Dispatch, RateQPS: c.RateQPS}
	if mults == nil {
		out.Nodes = nodes
	}
	srv := make([]server.LatencySummary, len(nodes))
	e2e := make([]server.LatencySummary, len(nodes))
	for i, n := range nodes {
		m := 1
		if mults != nil {
			m = mults[i]
		}
		w := float64(m)
		out.FleetPowerW += w * n.Result.PackagePowerW
		out.FleetEnergyJ += w * (n.Result.PackagePowerW * n.Result.MeasuredDuration.Seconds())
		out.CompletedPerSec += w * n.Result.CompletedPerSec
		if n.RateQPS > 0 {
			out.ActiveNodes += m
		} else {
			out.IdleNodes += m
		}
		if n.Result.Server.P99US > out.WorstP99US {
			out.WorstP99US = n.Result.Server.P99US
		}
		srv[i] = n.Result.Server
		e2e[i] = n.Result.EndToEnd
	}
	out.Server = combineSummaries(srv, mults)
	out.EndToEnd = combineSummaries(e2e, mults)
	if out.FleetPowerW > 0 {
		out.QPSPerWatt = out.CompletedPerSec / out.FleetPowerW
	}
	// One sort serves both spread quantiles (stats.SortedSeries, or its
	// weighted twin over the class multiset).
	p99s := make([]float64, 0, len(nodes))
	var weights []uint64
	if mults != nil {
		weights = make([]uint64, 0, len(nodes))
	}
	for i, n := range nodes {
		if n.Result.Server.Count > 0 {
			p99s = append(p99s, n.Result.Server.P99US)
			if mults != nil {
				weights = append(weights, uint64(mults[i]))
			}
		}
	}
	if len(p99s) > 0 {
		if mults == nil {
			sorted := stats.NewSortedSeries(p99s)
			out.MedianP99US = sorted.Percentile(0.5)
			out.P90P99US = sorted.Percentile(0.9)
		} else {
			ws := stats.NewWeightedSeries(p99s, weights)
			out.MedianP99US = ws.Percentile(0.5)
			out.P90P99US = ws.Percentile(0.9)
		}
	}
	return out
}
