package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scenarioBaseQPSPerNode is the per-node base rate the named scenarios
// swing around (multiplied by the fleet size). At 800K QPS per 20-core
// node the diurnal day spans the whole interesting band: the trough
// (0.4x, ~14% utilization) is deep in the idle-dominated regime where
// AW earns its keep, the peak (1.6x, ~57%) is busy enough that idle
// states barely matter, and under consolidate the peak overflows the
// fill level so the day parks nodes at night and unparks them by noon.
const scenarioBaseQPSPerNode = 800e3

// ScenarioExpResult compares a Baseline fleet against an AW fleet over
// one time-varying load scenario, epoch by epoch. It answers the
// question the stationary sweeps cannot: how do the savings move as the
// fleet's utilization moves through the day — is AW a trough
// optimization, a peak optimization, or both?
type ScenarioExpResult struct {
	// Name is the scenario shape; Nodes the fleet size.
	Name  string
	Nodes int
	// Epoch is the re-dispatch interval; Total the scenario length.
	Epoch sim.Time
	Total sim.Time
	// Dispatch is the cluster policy both fleets ran under.
	Dispatch string
	// Baseline and AW are the two fleets' scenario measurements, epoch
	// windows aligned.
	Baseline cluster.ScenarioResult
	AW       cluster.ScenarioResult
}

// Scenario runs the named time-varying scenario (default diurnal) on a
// Baseline fleet and an AW fleet under the same schedule and epoch, so
// every table row is a like-for-like comparison of the same load window.
func Scenario(o Options) (ScenarioExpResult, error) {
	o = o.normalize()
	name := o.Scenario
	if name == "" {
		name = scenario.NameDiurnal
	}
	total := o.Duration
	epoch := o.Epoch
	if epoch == 0 {
		// Default: one epoch per diurnal segment (total/12) — fine
		// enough to follow the day, coarse enough to stay cheap.
		epoch = total / 12
	}
	sched, err := scenario.ByName(name, scenarioBaseQPSPerNode*float64(o.Nodes), total)
	if err != nil {
		return ScenarioExpResult{}, err
	}
	// Default spread: every node rides the full utilization swing, which
	// is where the trough-vs-peak AW savings contrast lives (consolidate
	// pins active nodes near TargetUtil and flattens it — run with
	// -cluster-dispatch consolidate to study the parking timeline
	// instead).
	dispatch := o.ClusterDispatch
	if dispatch == "" {
		dispatch = cluster.DispatchSpread
	}
	out := ScenarioExpResult{
		Name:     name,
		Nodes:    o.Nodes,
		Epoch:    epoch,
		Total:    total,
		Dispatch: dispatch,
	}
	profile := workload.Memcached()
	fleet := func(platform governor.Config) (cluster.ScenarioResult, error) {
		node := server.Config{
			Platform: platform,
			Profile:  profile,
			Warmup:   o.Warmup,
			Seed:     o.Seed,
			Dispatch: o.Dispatch,
			LoadGen:  o.LoadGen,
		}
		nodes := cluster.Homogeneous(o.Nodes, node)
		if o.Replicas > 0 {
			// Replicated mode trades per-node seed independence for
			// class collapse: every node shares the template seed, the
			// fleet folds into one class per timeline, and the replicas
			// supply the variance the shared seed gave up.
			for i := range nodes {
				nodes[i].Seed = node.Seed
			}
		}
		res, err := cluster.RunScenario(cluster.ScenarioConfig{
			Nodes:        nodes,
			Schedule:     sched,
			Epoch:        epoch,
			Dispatch:     dispatch,
			ParkDrained:  dispatch == cluster.DispatchConsolidate,
			ColdEpochs:   o.ColdEpochs,
			Replicas:     o.Replicas,
			CompactNodes: o.Replicas > 0,
		})
		if err != nil {
			return cluster.ScenarioResult{}, fmt.Errorf("experiments: scenario %s/%s: %w",
				name, platform.Name, err)
		}
		return res, nil
	}
	if out.Baseline, err = fleet(governor.Baseline); err != nil {
		return out, err
	}
	if out.AW, err = fleet(governor.AW); err != nil {
		return out, err
	}
	return out, nil
}

// PhaseTable renders the per-phase Baseline-vs-AW comparison — the
// trough-versus-peak savings answer.
func (r ScenarioExpResult) PhaseTable() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Scenario %q: Baseline vs AW per phase (%d nodes, %s, Memcached)",
			r.Name, r.Nodes, r.Dispatch),
		Headers: []string{"Phase", "Rate (KQPS)", "Base W", "AW W", "Save W", "Save %",
			"Base p99", "AW p99", "Parked B/A"},
	}
	for i, b := range r.Baseline.Phases {
		if i >= len(r.AW.Phases) {
			break
		}
		a := r.AW.Phases[i]
		save := b.AvgFleetPowerW - a.AvgFleetPowerW
		pct := 0.0
		if b.AvgFleetPowerW > 0 {
			pct = save / b.AvgFleetPowerW
		}
		t.AddRow(b.Phase, fmt.Sprintf("%.0f", b.AvgRateQPS/1000),
			report.W(b.AvgFleetPowerW), report.W(a.AvgFleetPowerW),
			report.W(save), report.Pct(pct),
			report.US(b.WorstP99US), report.US(a.WorstP99US),
			fmt.Sprintf("%.1f/%.1f", b.AvgParkedNodes, a.AvgParkedNodes))
	}
	bt, at := r.Baseline, r.AW
	save := bt.AvgFleetPowerW - at.AvgFleetPowerW
	pct := 0.0
	if bt.AvgFleetPowerW > 0 {
		pct = save / bt.AvgFleetPowerW
	}
	t.AddRow("TOTAL", fmt.Sprintf("%.0f", avgRateOf(bt)/1000),
		report.W(bt.AvgFleetPowerW), report.W(at.AvgFleetPowerW),
		report.W(save), report.Pct(pct),
		report.US(bt.WorstP99US), report.US(at.WorstP99US),
		fmt.Sprintf("%d/%d", bt.Unparks, at.Unparks))
	t.Notes = append(t.Notes,
		"both fleets see the identical phase schedule; epochs re-partition the",
		"load every "+fmt.Sprintf("%.0fms", float64(r.Epoch)/1e6)+" (TOTAL row: parked column shows unpark transitions)")
	if bt.CI != nil && at.CI != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"replica-ensemble 95%% CI (n=%d): Base W [%.1f, %.1f], AW W [%.1f, %.1f]",
			bt.CI.Samples, bt.CI.FleetPowerW.Lo, bt.CI.FleetPowerW.Hi,
			at.CI.FleetPowerW.Lo, at.CI.FleetPowerW.Hi))
	}
	return t
}

// EpochTable renders the epoch timeline — the raw re-dispatch trace.
func (r ScenarioExpResult) EpochTable() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Scenario %q: epoch timeline (%d nodes, %s)",
			r.Name, r.Nodes, r.Dispatch),
		Headers: []string{"Epoch", "Window (ms)", "Phase", "Rate (KQPS)",
			"Base W", "AW W", "Base QPS/W", "AW QPS/W", "Parked B/A", "Unparks B/A"},
	}
	for i, b := range r.Baseline.Epochs {
		if i >= len(r.AW.Epochs) {
			break
		}
		a := r.AW.Epochs[i]
		t.AddRow(fmt.Sprintf("%d", b.Epoch),
			fmt.Sprintf("%.0f-%.0f", float64(b.Start)/1e6, float64(b.End)/1e6),
			b.Phase, fmt.Sprintf("%.0f", b.RateQPS/1000),
			report.W(b.Fleet.FleetPowerW), report.W(a.Fleet.FleetPowerW),
			fmt.Sprintf("%.0f", b.Fleet.QPSPerWatt), fmt.Sprintf("%.0f", a.Fleet.QPSPerWatt),
			fmt.Sprintf("%d/%d", b.Parked, a.Parked),
			fmt.Sprintf("%d/%d", b.Unparked, a.Unparked))
	}
	t.Notes = append(t.Notes,
		"parked counts are nodes the dispatcher drained into package deep idle;",
		"unparks are park->active transitions paying the unpark latency/power penalty")
	return t
}

// avgRateOf recovers the scenario's time-weighted mean offered rate.
func avgRateOf(r cluster.ScenarioResult) float64 {
	var rateSec, sec float64
	for _, ep := range r.Epochs {
		w := float64(ep.End-ep.Start) / 1e9
		rateSec += ep.RateQPS * w
		sec += w
	}
	if sec <= 0 {
		return 0
	}
	return rateSec / sec
}
