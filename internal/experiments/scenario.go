package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datacenter"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scenarioBaseQPSPerNode is the per-node base rate the named scenarios
// swing around (multiplied by the fleet size). At 800K QPS per 20-core
// node the diurnal day spans the whole interesting band: the trough
// (0.4x, ~14% utilization) is deep in the idle-dominated regime where
// AW earns its keep, the peak (1.6x, ~57%) is busy enough that idle
// states barely matter, and under consolidate the peak overflows the
// fill level so the day parks nodes at night and unparks them by noon.
const scenarioBaseQPSPerNode = 800e3

// ctrlScenarioQPSPerNode is the quieter base the controller comparison
// runs at. At 800K/node the consolidate fill level pins every active
// node's utilization inside the reactive deadband (measured C0
// residency ~0.40-0.47), so the feedback controller would never move
// and the study would measure nothing. At 100K/node the steady state
// consolidates the whole fleet onto one node at ~0.2 utilization —
// clearly below the deadband floor — so the reactive controller really
// parks the fleet down, and the 4x spike then lands on the shrunken
// active set a full epoch before it can react: the lag the study
// exists to price.
const ctrlScenarioQPSPerNode = 100e3

// ScenarioExpResult compares a Baseline fleet against an AW fleet over
// one time-varying load scenario, epoch by epoch. It answers the
// question the stationary sweeps cannot: how do the savings move as the
// fleet's utilization moves through the day — is AW a trough
// optimization, a peak optimization, or both?
type ScenarioExpResult struct {
	// Name is the scenario shape; Nodes the fleet size.
	Name  string
	Nodes int
	// Epoch is the re-dispatch interval; Total the scenario length.
	Epoch sim.Time
	Total sim.Time
	// Dispatch is the cluster policy both fleets ran under.
	Dispatch string
	// Baseline and AW are the two fleets' scenario measurements, epoch
	// windows aligned.
	Baseline cluster.ScenarioResult
	AW       cluster.ScenarioResult
}

// Scenario runs the named time-varying scenario (default diurnal) on a
// Baseline fleet and an AW fleet under the same schedule and epoch, so
// every table row is a like-for-like comparison of the same load window.
func Scenario(o Options) (ScenarioExpResult, error) {
	o = o.normalize()
	name := o.Scenario
	if name == "" {
		name = scenario.NameDiurnal
	}
	total := o.Duration
	epoch := o.Epoch
	if epoch == 0 {
		// Default: one epoch per diurnal segment (total/12) — fine
		// enough to follow the day, coarse enough to stay cheap.
		epoch = total / 12
	}
	sched, err := scenario.ByName(name, scenarioBaseQPSPerNode*float64(o.Nodes), total)
	if err != nil {
		return ScenarioExpResult{}, err
	}
	// Default spread: every node rides the full utilization swing, which
	// is where the trough-vs-peak AW savings contrast lives (consolidate
	// pins active nodes near TargetUtil and flattens it — run with
	// -cluster-dispatch consolidate to study the parking timeline
	// instead).
	dispatch := o.ClusterDispatch
	if dispatch == "" {
		dispatch = cluster.DispatchSpread
	}
	out := ScenarioExpResult{
		Name:     name,
		Nodes:    o.Nodes,
		Epoch:    epoch,
		Total:    total,
		Dispatch: dispatch,
	}
	profile := workload.Memcached()
	fleet := func(platform governor.Config) (cluster.ScenarioResult, error) {
		node := server.Config{
			Platform: platform,
			Profile:  profile,
			Warmup:   o.Warmup,
			Seed:     o.Seed,
			Dispatch: o.Dispatch,
			LoadGen:  o.LoadGen,
		}
		nodes := cluster.Homogeneous(o.Nodes, node)
		if o.Replicas > 0 {
			// Replicated mode trades per-node seed independence for
			// class collapse: every node shares the template seed, the
			// fleet folds into one class per timeline, and the replicas
			// supply the variance the shared seed gave up.
			for i := range nodes {
				nodes[i].Seed = node.Seed
			}
		}
		res, err := cluster.RunScenario(cluster.ScenarioConfig{
			Nodes:        nodes,
			Schedule:     sched,
			Epoch:        epoch,
			Dispatch:     dispatch,
			ParkDrained:  dispatch == cluster.DispatchConsolidate,
			ColdEpochs:   o.ColdEpochs,
			Replicas:     o.Replicas,
			CompactNodes: o.Replicas > 0,
			Controller:   o.controllerSpec(o.Controller),
			Overload:     o.overloadSpec(o.OverloadPolicy),
		})
		if err != nil {
			return cluster.ScenarioResult{}, fmt.Errorf("experiments: scenario %s/%s: %w",
				name, platform.Name, err)
		}
		return res, nil
	}
	if out.Baseline, err = fleet(governor.Baseline); err != nil {
		return out, err
	}
	if out.AW, err = fleet(governor.AW); err != nil {
		return out, err
	}
	return out, nil
}

// PhaseTable renders the per-phase Baseline-vs-AW comparison — the
// trough-versus-peak savings answer.
func (r ScenarioExpResult) PhaseTable() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Scenario %q: Baseline vs AW per phase (%d nodes, %s, Memcached)",
			r.Name, r.Nodes, r.Dispatch),
		Headers: []string{"Phase", "Rate (KQPS)", "Base W", "AW W", "Save W", "Save %",
			"Base p99", "AW p99", "Parked B/A"},
	}
	for i, b := range r.Baseline.Phases {
		if i >= len(r.AW.Phases) {
			break
		}
		a := r.AW.Phases[i]
		save := b.AvgFleetPowerW - a.AvgFleetPowerW
		pct := 0.0
		if b.AvgFleetPowerW > 0 {
			pct = save / b.AvgFleetPowerW
		}
		t.AddRow(b.Phase, fmt.Sprintf("%.0f", b.AvgRateQPS/1000),
			report.W(b.AvgFleetPowerW), report.W(a.AvgFleetPowerW),
			report.W(save), report.Pct(pct),
			report.US(b.WorstP99US), report.US(a.WorstP99US),
			fmt.Sprintf("%.1f/%.1f", b.AvgParkedNodes, a.AvgParkedNodes))
	}
	bt, at := r.Baseline, r.AW
	save := bt.AvgFleetPowerW - at.AvgFleetPowerW
	pct := 0.0
	if bt.AvgFleetPowerW > 0 {
		pct = save / bt.AvgFleetPowerW
	}
	t.AddRow("TOTAL", fmt.Sprintf("%.0f", avgRateOf(bt)/1000),
		report.W(bt.AvgFleetPowerW), report.W(at.AvgFleetPowerW),
		report.W(save), report.Pct(pct),
		report.US(bt.WorstP99US), report.US(at.WorstP99US),
		fmt.Sprintf("%d/%d", bt.Unparks, at.Unparks))
	t.Notes = append(t.Notes,
		"both fleets see the identical phase schedule; epochs re-partition the",
		"load every "+fmt.Sprintf("%.0fms", float64(r.Epoch)/1e6)+" (TOTAL row: parked column shows unpark transitions)")
	if bt.CI != nil && at.CI != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"replica-ensemble 95%% CI (n=%d): Base W [%.1f, %.1f], AW W [%.1f, %.1f]",
			bt.CI.Samples, bt.CI.FleetPowerW.Lo, bt.CI.FleetPowerW.Hi,
			at.CI.FleetPowerW.Lo, at.CI.FleetPowerW.Hi))
	}
	return t
}

// EpochTable renders the epoch timeline — the raw re-dispatch trace.
func (r ScenarioExpResult) EpochTable() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Scenario %q: epoch timeline (%d nodes, %s)",
			r.Name, r.Nodes, r.Dispatch),
		Headers: []string{"Epoch", "Window (ms)", "Phase", "Rate (KQPS)",
			"Base W", "AW W", "Base QPS/W", "AW QPS/W", "Parked B/A", "Unparks B/A"},
	}
	for i, b := range r.Baseline.Epochs {
		if i >= len(r.AW.Epochs) {
			break
		}
		a := r.AW.Epochs[i]
		t.AddRow(fmt.Sprintf("%d", b.Epoch),
			fmt.Sprintf("%.0f-%.0f", float64(b.Start)/1e6, float64(b.End)/1e6),
			b.Phase, fmt.Sprintf("%.0f", b.RateQPS/1000),
			report.W(b.Fleet.FleetPowerW), report.W(a.Fleet.FleetPowerW),
			fmt.Sprintf("%.0f", b.Fleet.QPSPerWatt), fmt.Sprintf("%.0f", a.Fleet.QPSPerWatt),
			fmt.Sprintf("%d/%d", b.Parked, a.Parked),
			fmt.Sprintf("%d/%d", b.Unparked, a.Unparked))
	}
	t.Notes = append(t.Notes,
		"parked counts are nodes the dispatcher drained into package deep idle;",
		"unparks are park->active transitions paying the unpark latency/power penalty")
	return t
}

// controllerSpec assembles the cluster controller spec the options
// describe; the empty name yields the zero spec, i.e. open-loop.
func (o Options) controllerSpec(name string) cluster.ControllerSpec {
	if name == "" {
		return cluster.ControllerSpec{}
	}
	return cluster.ControllerSpec{
		Name:     name,
		UpUtil:   o.ControllerUpUtil,
		DownUtil: o.ControllerDownUtil,
		Cooldown: o.ControllerCooldown,
	}
}

// overloadSpec assembles the admission-control spec for the named
// policy; the empty name yields the zero spec, i.e. no admission.
func (o Options) overloadSpec(policy string) cluster.OverloadSpec {
	if policy == "" {
		return cluster.OverloadSpec{}
	}
	return cluster.OverloadSpec{
		Policy:        policy,
		MaxUtil:       o.OverloadMaxUtil,
		MaxBacklogSec: o.OverloadBacklogSec,
	}
}

// ControllerScenarioRun is one (schedule, controller) cell of the
// controller comparison: a Baseline fleet and an AW fleet driven by the
// same closed-loop controller over the same schedule, plus the yearly
// cost implication of the measured power delta.
type ControllerScenarioRun struct {
	// Schedule is the load shape; Controller the fleet controller name.
	Schedule   string
	Controller string
	// Baseline and AW are the two fleets' controlled scenario runs,
	// epoch windows aligned.
	Baseline cluster.ScenarioResult
	AW       cluster.ScenarioResult
	// SavingsPerYearM is the AW-vs-Baseline fleet power delta priced
	// through the datacenter cost model, in $M per year. SavingsLoM and
	// SavingsHiM bound it with the replica ensembles' 95% power CIs
	// (conservative interval difference).
	SavingsPerYearM float64
	SavingsLoM      float64
	SavingsHiM      float64
}

// ScenarioControllerResult is the closed-loop control-plane study: every
// fleet controller (oracle, reactive, predictive) over a diurnal day and
// a load spike, each as a Baseline-vs-AW pair with replica CIs. It
// answers what the open-loop scenario tables cannot: how much of the
// oracle's savings a feedback controller keeps, and what the reactive
// controller's one-epoch reaction lag costs in tail latency when the
// spike lands on a parked-down fleet.
type ScenarioControllerResult struct {
	// Nodes is the fleet size; Epoch the re-dispatch interval; Total the
	// schedule length; Replicas the per-class replica count behind the
	// CIs.
	Nodes    int
	Epoch    sim.Time
	Total    sim.Time
	Replicas int
	// Runs holds one entry per (schedule, controller), schedules outer.
	Runs []ControllerScenarioRun
}

// ScenarioControllers runs the controller comparison: for each schedule
// (diurnal, then spike) and each fleet controller, a Baseline and an AW
// fleet run closed-loop under consolidate+park — the regime where the
// controller's target actually parks and wakes machines. Fleets share
// node seeds and carry seeded replicas so every power number has a 95%
// CI, and the savings column prices the measured fleet delta through the
// datacenter cost model.
func ScenarioControllers(o Options) (ScenarioControllerResult, error) {
	o = o.normalize()
	total := o.Duration
	epoch := o.Epoch
	if epoch == 0 {
		epoch = total / 12
	}
	replicas := o.Replicas
	if replicas == 0 {
		replicas = 2
	}
	out := ScenarioControllerResult{
		Nodes:    o.Nodes,
		Epoch:    epoch,
		Total:    total,
		Replicas: replicas,
	}
	profile := workload.Memcached()
	model := datacenter.NewCostModel()
	fleet := func(platform governor.Config, sched *scenario.Schedule, ctrl string) (cluster.ScenarioResult, error) {
		node := server.Config{
			Platform: platform,
			Profile:  profile,
			Warmup:   o.Warmup,
			Seed:     o.Seed,
			Dispatch: o.Dispatch,
			LoadGen:  o.LoadGen,
		}
		nodes := cluster.Homogeneous(o.Nodes, node)
		// Shared seeds collapse identical timelines into one class; the
		// replicas supply the variance the shared seed gave up.
		for i := range nodes {
			nodes[i].Seed = node.Seed
		}
		res, err := cluster.RunScenario(cluster.ScenarioConfig{
			Nodes:        nodes,
			Schedule:     sched,
			Epoch:        epoch,
			Dispatch:     cluster.DispatchConsolidate,
			ParkDrained:  true,
			Replicas:     replicas,
			CompactNodes: true,
			Controller:   o.controllerSpec(ctrl),
			Overload:     o.overloadSpec(o.OverloadPolicy),
		})
		if err != nil {
			return cluster.ScenarioResult{}, fmt.Errorf("experiments: controller %s/%s: %w",
				ctrl, platform.Name, err)
		}
		return res, nil
	}
	for _, name := range []string{scenario.NameDiurnal, scenario.NameSpike} {
		sched, err := scenario.ByName(name, ctrlScenarioQPSPerNode*float64(o.Nodes), total)
		if err != nil {
			return out, err
		}
		for _, ctrl := range cluster.Controllers() {
			run := ControllerScenarioRun{Schedule: name, Controller: ctrl}
			if run.Baseline, err = fleet(governor.Baseline, sched, ctrl); err != nil {
				return out, err
			}
			if run.AW, err = fleet(governor.AW, sched, ctrl); err != nil {
				return out, err
			}
			delta := run.Baseline.AvgFleetPowerW - run.AW.AvgFleetPowerW
			if run.SavingsPerYearM, err = model.YearlySavingsMeasuredFleetM(delta, o.Nodes); err != nil {
				return out, err
			}
			if bci, aci := run.Baseline.CI, run.AW.CI; bci != nil && aci != nil {
				// Conservative interval difference: the delta's bounds pair
				// each fleet's CI endpoints worst-case.
				if run.SavingsLoM, err = model.YearlySavingsMeasuredFleetM(
					bci.FleetPowerW.Lo-aci.FleetPowerW.Hi, o.Nodes); err != nil {
					return out, err
				}
				if run.SavingsHiM, err = model.YearlySavingsMeasuredFleetM(
					bci.FleetPowerW.Hi-aci.FleetPowerW.Lo, o.Nodes); err != nil {
					return out, err
				}
			}
			out.Runs = append(out.Runs, run)
		}
	}
	return out, nil
}

// ControllerTable renders the controller comparison — per (schedule,
// controller) the AW fleet's yearly savings with replica CIs, the AW
// tail, and the controller's decision churn. The spike rows carry the
// headline: reactive parks the quiet fleet down, the spike lands a full
// epoch before it can react, and its AW p99 degrades versus the oracle.
func (r ScenarioControllerResult) ControllerTable() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Closed-loop fleet control: oracle vs reactive vs predictive (%d nodes, consolidate, Memcached)",
			r.Nodes),
		Headers: []string{"Schedule", "Controller", "Base W", "AW W", "Save $M/yr [95% CI]",
			"AW p99", "AW p99 95% CI", "Changes B/A"},
	}
	for _, run := range r.Runs {
		ci := "n/a"
		if run.AW.CI != nil {
			ci = fmt.Sprintf("[%.1f, %.1f]", run.AW.CI.WorstP99US.Lo, run.AW.CI.WorstP99US.Hi)
		}
		t.AddRow(run.Schedule, run.Controller,
			report.W(run.Baseline.AvgFleetPowerW), report.W(run.AW.AvgFleetPowerW),
			fmt.Sprintf("%.2f [%.2f, %.2f]", run.SavingsPerYearM, run.SavingsLoM, run.SavingsHiM),
			report.US(run.AW.WorstP99US), ci,
			fmt.Sprintf("%d/%d", run.Baseline.ControllerChanges, run.AW.ControllerChanges))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("each row: Baseline and AW fleets closed-loop under the named controller; epochs every %.0fms,", float64(r.Epoch)/1e6),
		fmt.Sprintf("%d seeded replicas per timeline class behind the CIs; savings price the measured fleet", r.Replicas),
		"power delta through the datacenter cost model ($M/yr); changes count target moves;",
		"on the spike schedule the reactive rows pay the one-epoch unpark lag in AW p99 vs the oracle")
	return t
}

// avgRateOf recovers the scenario's time-weighted mean offered rate.
func avgRateOf(r cluster.ScenarioResult) float64 {
	var rateSec, sec float64
	for _, ep := range r.Epochs {
		w := float64(ep.End-ep.Start) / 1e9
		rateSec += ep.RateQPS * w
		sec += w
	}
	if sec <= 0 {
		return 0
	}
	return rateSec / sec
}
