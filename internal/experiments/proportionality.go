package experiments

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/workload"
)

// ProportionalityResult quantifies the Sec. 7.1 framing ("modern servers
// are not energy proportional: ... much lower efficiencies at lower
// utilizations"): server power vs utilization with legacy C-states and
// with AW, plus an energy-proportionality score.
type ProportionalityResult struct {
	Points []ProportionalityPoint
	// EPBaseline / EPAW score proportionality in [0,1]: 1 means power
	// scales perfectly linearly from 0 at idle to peak at full measured
	// load; computed as 1 - mean over points of
	// (P(u)/Ppeak - u/upeak) (positive excess only).
	EPBaseline, EPAW float64
}

// ProportionalityPoint is one utilization level.
type ProportionalityPoint struct {
	RateQPS      float64
	Utilization  float64
	BaselinePkgW float64
	AWPkgW       float64
	BaselineOfPk float64 // P/Ppeak for the baseline
	AWOfPk       float64 // P/Ppeak for AW
}

// Proportionality sweeps load for both platforms and scores energy
// proportionality.
func Proportionality(o Options) (ProportionalityResult, error) {
	o = o.normalize()
	profile := workload.Memcached()
	var out ProportionalityResult
	points := make([]ProportionalityPoint, len(o.Rates))
	err := parallelMap(len(o.Rates), func(i int) error {
		rate := o.Rates[i]
		base, err := o.runService(governor.Baseline, profile, rate, 0)
		if err != nil {
			return err
		}
		aw, err := o.runService(governor.AW, profile, rate, 0)
		if err != nil {
			return err
		}
		points[i] = ProportionalityPoint{
			RateQPS:      rate,
			Utilization:  profile.UtilizationAt(rate, 20),
			BaselinePkgW: base.PackagePowerW,
			AWPkgW:       aw.PackagePowerW,
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	peakB := points[len(points)-1].BaselinePkgW
	peakA := points[len(points)-1].AWPkgW
	peakU := points[len(points)-1].Utilization
	var excessB, excessA float64
	for i := range points {
		p := &points[i]
		p.BaselineOfPk = p.BaselinePkgW / peakB
		p.AWOfPk = p.AWPkgW / peakA
		ideal := p.Utilization / peakU
		if d := p.BaselineOfPk - ideal; d > 0 {
			excessB += d
		}
		if d := p.AWOfPk - ideal; d > 0 {
			excessA += d
		}
	}
	n := float64(len(points))
	out.EPBaseline = 1 - excessB/n
	out.EPAW = 1 - excessA/n
	return out, nil
}

// Table renders the proportionality analysis.
func (r ProportionalityResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Sec. 7.1 framing: energy proportionality with and without AW (Memcached)",
		Headers: []string{"Rate (KQPS)", "Utilization", "Baseline pkg", "AW pkg", "Base P/Ppeak", "AW P/Ppeak"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), report.Pct(p.Utilization),
			report.W(p.BaselinePkgW), report.W(p.AWPkgW),
			report.Pct(p.BaselineOfPk), report.Pct(p.AWOfPk))
	}
	t.AddRow("EP score", "", "", "",
		fmt.Sprintf("%.3f", r.EPBaseline), fmt.Sprintf("%.3f", r.EPAW))
	t.Notes = append(t.Notes,
		"EP = 1 is perfectly proportional; AW moves the low-utilization tail",
		"of the power curve toward proportionality (the paper's motivation)")
	return t
}
