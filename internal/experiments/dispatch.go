package experiments

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
)

// DispatchResult compares request-to-core placement policies across the
// load sweep. The paper's evaluation assumes round-robin dispatch, which
// spreads load thin and maximizes idle-state entries (the Sec. 2 "killer
// microseconds" regime); consolidation-style packing is the opposing
// energy-proportionality strategy — it lets high-numbered cores reach
// deep C-states at the cost of queueing on the packed ones. This
// experiment quantifies that power/tail-latency trade-off under the
// Baseline platform configuration.
type DispatchResult struct {
	Policies []string
	Points   []DispatchPoint
}

// DispatchPoint is one load level; Results is parallel to Policies.
type DispatchPoint struct {
	RateQPS float64
	Results []server.Result
}

// Dispatch sweeps every dispatch policy over the Memcached load points.
func Dispatch(o Options) (DispatchResult, error) {
	o = o.normalize()
	out := DispatchResult{Policies: server.DispatchPolicies()}
	profile := workload.Memcached()
	np := len(out.Policies)
	points := make([]DispatchPoint, len(o.Rates))
	for i := range points {
		points[i] = DispatchPoint{RateQPS: o.Rates[i], Results: make([]server.Result, np)}
	}
	err := parallelMap(len(o.Rates)*np, func(i int) error {
		ri, pi := i/np, i%np
		res, err := runner.Default().Run(server.Config{
			Platform:   governor.Baseline,
			Profile:    profile,
			RatePerSec: o.Rates[ri],
			Duration:   o.Duration,
			Warmup:     o.Warmup,
			Seed:       o.Seed,
			Dispatch:   out.Policies[pi],
			LoadGen:    o.LoadGen,

			ClosedLoopConnections: o.Connections,
		})
		if err != nil {
			return fmt.Errorf("experiments: dispatch %s @ %.0f QPS: %w", out.Policies[pi], o.Rates[ri], err)
		}
		points[ri].Results[pi] = res
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

// deepResidency sums the C-state fractions deeper than C1.
func deepResidency(res server.Result) float64 {
	return res.Residency[cstate.C1E] + res.Residency[cstate.C6] +
		res.Residency[cstate.C6A] + res.Residency[cstate.C6AE]
}

// Table renders the power/tail-latency trade-off. The per-core power
// p10/p90 column quantifies how evenly each policy spreads work: one
// sorted copy of the per-core powers serves both quantiles
// (stats.SortedSeries).
func (r DispatchResult) Table() *report.Table {
	t := &report.Table{
		Title: "Dispatch policy study: power vs tail latency (Baseline, Memcached)",
		Headers: []string{"Rate (KQPS)", "Policy", "Core power", "Core W p10/p90",
			"Package", "Avg server", "p99 server", "Max queue"},
	}
	for _, p := range r.Points {
		for i, res := range p.Results {
			perCore := make([]float64, len(res.PerCore))
			for j, cs := range res.PerCore {
				perCore[j] = cs.AvgPowerW
			}
			sorted := stats.NewSortedSeries(perCore)
			t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), r.Policies[i],
				report.W(res.AvgCorePowerW),
				fmt.Sprintf("%.2f/%.2f", sorted.Percentile(0.10), sorted.Percentile(0.90)),
				report.W(res.PackagePowerW),
				report.US(res.Server.AvgUS), report.US(res.Server.P99US),
				fmt.Sprintf("%d", res.MaxQueueDepth))
		}
	}
	t.Notes = append(t.Notes,
		"round-robin (the paper's assumption) maximizes idle entries; packing",
		"consolidates onto low cores, trading queueing tail for deeper idle")
	return t
}

// ResidencyTable renders each policy's C-state residency picture.
func (r DispatchResult) ResidencyTable() *report.Table {
	t := &report.Table{
		Title: "Dispatch policy study: C-state residency",
		Headers: []string{"Rate (KQPS)", "Policy", "C0", "C1", "C1E", "C6",
			"Deep (>C1)", "C1->/s"},
	}
	for _, p := range r.Points {
		for i, res := range p.Results {
			t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), r.Policies[i],
				report.Pct(res.Residency[cstate.C0]),
				report.Pct(res.Residency[cstate.C1]),
				report.Pct(res.Residency[cstate.C1E]),
				report.Pct(res.Residency[cstate.C6]),
				report.Pct(deepResidency(res)),
				fmt.Sprintf("%.0f", res.TransitionsPerSec[cstate.C1]))
		}
	}
	t.Notes = append(t.Notes,
		"packed dispatch idles high-numbered cores long enough for C6;",
		"per-core skew is visible in Result.PerCore")
	return t
}
