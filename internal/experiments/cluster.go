package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datacenter"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

// ClusterSLOP99US is the fleet latency SLO the cluster study reports
// against: worst-node server-side p99 at most 500 us — loose enough for
// every spread point, tight enough that over-aggressive consolidation
// would show up as a violation.
const ClusterSLOP99US = 500.0

// ClusterResult extends the paper's Table 5 framing from one server to a
// simulated fleet: N-node clusters run under each cluster dispatch
// policy across the QPS sweep, and the datacenter cost model is fed the
// measured fleet power delta between Baseline and AW fleets instead of a
// single server's extrapolation.
type ClusterResult struct {
	// NodesPerFleet is the simulated fleet size per point.
	NodesPerFleet int
	// Policies are the cluster dispatch policies compared.
	Policies []string
	// CostPolicy is the policy under which the Baseline-vs-AW cost
	// comparison fleets ran.
	CostPolicy string
	// Points holds one entry per load level; Fleets is parallel to
	// Policies.
	Points []ClusterPoint
	// Cost holds the measured fleet savings per load level.
	Cost []ClusterCostRow
}

// ClusterPoint is one aggregate load level.
type ClusterPoint struct {
	RateQPS float64
	Fleets  []cluster.Result
}

// ClusterCostRow feeds the cost model with measured fleet deltas.
type ClusterCostRow struct {
	QPS             float64
	BaselineFleetW  float64
	AWFleetW        float64
	DeltaPerServerW float64
	SavingsPerYearM float64
}

// Cluster runs the fleet study: every cluster dispatch policy over the
// QPS sweep on Baseline fleets, plus a Baseline-vs-AW fleet pair (under
// o.ClusterDispatch, default spread) for the measured cost rows.
//
// Fleet points run sequentially here — each cluster.Run already fans its
// nodes out through the shared runner's worker pool, and runner.Each
// does not nest.
func Cluster(o Options) (ClusterResult, error) {
	o = o.normalize()
	out := ClusterResult{
		NodesPerFleet: o.Nodes,
		Policies:      cluster.Policies(),
		CostPolicy:    o.ClusterDispatch,
	}
	if out.CostPolicy == "" {
		out.CostPolicy = cluster.DispatchSpread
	}
	profile := workload.Memcached()
	node := func(platform governor.Config) server.Config {
		return server.Config{
			Platform: platform,
			Profile:  profile,
			Duration: o.Duration,
			Warmup:   o.Warmup,
			Seed:     o.Seed,
			Dispatch: o.Dispatch,
			LoadGen:  o.LoadGen,
		}
	}
	fleet := func(platform governor.Config, policy string, rate float64) (cluster.Result, error) {
		res, err := cluster.Run(cluster.Config{
			Nodes:       cluster.Homogeneous(o.Nodes, node(platform)),
			RateQPS:     rate,
			Dispatch:    policy,
			ParkDrained: policy == cluster.DispatchConsolidate,
		})
		if err != nil {
			return cluster.Result{}, fmt.Errorf("experiments: cluster %s/%s @ %.0f QPS: %w",
				platform.Name, policy, rate, err)
		}
		return res, nil
	}
	model := datacenter.NewCostModel()
	for _, rate := range o.Rates {
		point := ClusterPoint{RateQPS: rate, Fleets: make([]cluster.Result, len(out.Policies))}
		for pi, policy := range out.Policies {
			res, err := fleet(governor.Baseline, policy, rate)
			if err != nil {
				return out, err
			}
			point.Fleets[pi] = res
		}
		out.Points = append(out.Points, point)

		base, err := fleet(governor.Baseline, out.CostPolicy, rate)
		if err != nil {
			return out, err
		}
		aw, err := fleet(governor.AW, out.CostPolicy, rate)
		if err != nil {
			return out, err
		}
		deltaFleet := base.FleetPowerW - aw.FleetPowerW
		savings, err := model.YearlySavingsMeasuredFleetM(deltaFleet, o.Nodes)
		if err != nil {
			return out, err
		}
		out.Cost = append(out.Cost, ClusterCostRow{
			QPS:             rate,
			BaselineFleetW:  base.FleetPowerW,
			AWFleetW:        aw.FleetPowerW,
			DeltaPerServerW: deltaFleet / float64(o.Nodes),
			SavingsPerYearM: savings,
		})
	}
	return out, nil
}

// slo renders the SLO verdict cell.
func slo(worstP99US float64) string {
	if worstP99US <= ClusterSLOP99US {
		return "ok"
	}
	return "VIOLATED"
}

// Table renders the policy power/tail comparison.
func (r ClusterResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Cluster study: fleet power vs tail across dispatch policies (%d nodes, Baseline, Memcached)", r.NodesPerFleet),
		Headers: []string{"Rate (KQPS)", "Policy", "Fleet W", "W/node", "Idle nodes",
			"p99 med/p90", "Worst p99", fmt.Sprintf("SLO<=%.0fus", ClusterSLOP99US), "QPS/W"},
	}
	for _, p := range r.Points {
		for i, f := range p.Fleets {
			t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), r.Policies[i],
				report.W(f.FleetPowerW),
				report.W(f.FleetPowerW/float64(r.NodesPerFleet)),
				fmt.Sprintf("%d", f.IdleNodes),
				fmt.Sprintf("%.0f/%.0fus", f.MedianP99US, f.P90P99US),
				report.US(f.WorstP99US), slo(f.WorstP99US),
				fmt.Sprintf("%.0f", f.QPSPerWatt))
		}
	}
	t.Notes = append(t.Notes,
		"spread is the round-robin fleet analogue; consolidate packs load onto",
		"few nodes and parks the rest into package deep idle (measured, not modeled)")
	return t
}

// CostTable renders the measured-fleet Table 5 counterpart.
func (r ClusterResult) CostTable() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Cluster cost: measured %d-node fleet savings, Baseline vs AW (%s policy)",
			r.NodesPerFleet, r.CostPolicy),
		Headers: []string{"QPS", "Baseline fleet W", "AW fleet W", "Delta W/server", "Savings ($M/yr)"},
	}
	for _, row := range r.Cost {
		t.AddRow(fmt.Sprintf("%.0fK", row.QPS/1000),
			report.W(row.BaselineFleetW), report.W(row.AWFleetW),
			report.W(row.DeltaPerServerW), fmt.Sprintf("%.2f", row.SavingsPerYearM))
	}
	t.Notes = append(t.Notes,
		"unlike Table 5, the per-server delta here is measured on a simulated",
		"fleet (per-node package power summed), then scaled to 100K servers")
	return t
}
