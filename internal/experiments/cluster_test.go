package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestClusterExperiment(t *testing.T) {
	o := QuickOptions()
	o.Rates = []float64{10e3, 100e3}
	o.Nodes = 3
	r, err := Cluster(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodesPerFleet != 3 || len(r.Points) != 2 || len(r.Cost) != 2 {
		t.Fatalf("shape: nodes=%d points=%d cost=%d", r.NodesPerFleet, len(r.Points), len(r.Cost))
	}
	idx := func(policy string) int {
		for i, p := range r.Policies {
			if p == policy {
				return i
			}
		}
		t.Fatalf("policy %s missing", policy)
		return -1
	}
	// The acceptance claim: at low QPS, consolidate beats spread on fleet
	// watts while staying inside the latency SLO.
	low := r.Points[0]
	spread := low.Fleets[idx(cluster.DispatchSpread)]
	cons := low.Fleets[idx(cluster.DispatchConsolidate)]
	if cons.FleetPowerW >= spread.FleetPowerW {
		t.Errorf("low-QPS consolidate fleet %vW not below spread %vW",
			cons.FleetPowerW, spread.FleetPowerW)
	}
	if cons.WorstP99US > ClusterSLOP99US {
		t.Errorf("low-QPS consolidate p99 %vus violates the %vus SLO",
			cons.WorstP99US, ClusterSLOP99US)
	}
	if cons.IdleNodes == 0 {
		t.Error("low-QPS consolidate parked no nodes")
	}
	// Measured fleet savings must be positive at every point (AW saves
	// power at these loads) and finite.
	for _, row := range r.Cost {
		if row.DeltaPerServerW <= 0 {
			t.Errorf("%0.fK: measured per-server delta %v not positive", row.QPS/1000, row.DeltaPerServerW)
		}
		if row.SavingsPerYearM <= 0 {
			t.Errorf("%0.fK: measured savings %v not positive", row.QPS/1000, row.SavingsPerYearM)
		}
	}
}

func TestClusterTablesRender(t *testing.T) {
	o := QuickOptions()
	o.Rates = []float64{100e3}
	o.Nodes = 2
	r, err := Cluster(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.CostTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"spread", "consolidate", "least-loaded", "SLO", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered cluster report missing %q", want)
		}
	}
	// Every point must satisfy the SLO column contract: ok or VIOLATED.
	if !strings.Contains(out, "ok") {
		t.Error("no SLO verdicts rendered")
	}
}
