// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function of an Options value and
// returns structured results plus a rendered report.Table, so the same
// code backs the CLI tools, the examples, and the benchmark harness.
//
// Index (see DESIGN.md for the full mapping):
//
//	Table1, Table2, Table3, Table4, Table5
//	Motivation (Sec. 2), TransitionLatency (Sec. 5.2)
//	Figure8, Figure9, Figure10, Figure11, Figure12, Figure13
//	Validation (Sec. 6.3), SnoopImpact (Sec. 7.5)
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options controls simulation fidelity for every experiment.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Duration is the measured window per run; Warmup precedes it.
	Duration sim.Time
	Warmup   sim.Time
	// Rates is the Memcached load sweep (QPS); defaults to the paper's
	// 10K-500K points.
	Rates []float64
}

// DefaultOptions returns full-fidelity settings.
func DefaultOptions() Options {
	return Options{
		Seed:     2022,
		Duration: 400 * sim.Millisecond,
		Warmup:   40 * sim.Millisecond,
		Rates:    []float64{10e3, 50e3, 100e3, 200e3, 300e3, 400e3, 500e3},
	}
}

// QuickOptions returns reduced-duration settings for tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Duration = 80 * sim.Millisecond
	o.Warmup = 10 * sim.Millisecond
	o.Rates = []float64{10e3, 100e3, 500e3}
	return o
}

func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Duration == 0 {
		o.Duration = d.Duration
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if len(o.Rates) == 0 {
		o.Rates = d.Rates
	}
	return o
}

// parallelMap runs fn(0..n-1) concurrently (bounded by GOMAXPROCS) and
// returns the first error. Each simulation is an isolated Sim with its
// own RNG streams, so sweep points parallelize safely.
func parallelMap(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// serverResult aliases the simulator result for the ablation helpers.
type serverResult = server.Result

// serverConfig bundles the extra knobs the ablation studies vary.
type serverConfig struct {
	Platform    governor.Config
	Policy      string
	Profile     workload.Profile
	Rate        float64
	NoisePeriod sim.Time
	Options     Options
}

// runServerConfig executes one simulation with ablation overrides.
func runServerConfig(sc serverConfig) (server.Result, error) {
	o := sc.Options.normalize()
	cfg := server.Config{
		Platform:       sc.Platform,
		GovernorPolicy: sc.Policy,
		Profile:        sc.Profile,
		RatePerSec:     sc.Rate,
		Duration:       o.Duration,
		Warmup:         o.Warmup,
		Seed:           o.Seed,
		OSNoisePeriod:  sc.NoisePeriod,
	}
	res, err := server.RunConfig(cfg)
	if err != nil {
		return server.Result{}, fmt.Errorf("experiments: %s: %w", sc.Platform.Name, err)
	}
	return res, nil
}

// runService executes one simulation with the experiment options.
func (o Options) runService(platform governor.Config, profile workload.Profile, rate, fixedFreqHz float64) (server.Result, error) {
	cfg := server.Config{
		Platform:    platform,
		Profile:     profile,
		RatePerSec:  rate,
		Duration:    o.Duration,
		Warmup:      o.Warmup,
		Seed:        o.Seed,
		FixedFreqHz: fixedFreqHz,
	}
	res, err := server.RunConfig(cfg)
	if err != nil {
		return server.Result{}, fmt.Errorf("experiments: %s @ %.0f QPS: %w", platform.Name, rate, err)
	}
	return res, nil
}
