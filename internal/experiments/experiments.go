// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function of an Options value and
// returns structured results plus a rendered report.Table, so the same
// code backs the CLI tools, the examples, and the benchmark harness.
//
// Every simulation-backed experiment executes through the shared
// internal/runner sweep executor: sweeps run with bounded parallelism,
// and simulations that several experiments have in common (the Baseline
// Memcached curve backs Fig. 8, Fig. 10, Table 5 and the proportionality
// study) are memoized and run once per process.
//
// Index (see DESIGN.md for the full mapping):
//
//	Table1, Table2, Table3, Table4, Table5
//	Motivation (Sec. 2), TransitionLatency (Sec. 5.2)
//	Figure8, Figure9, Figure10, Figure11, Figure12, Figure13
//	Validation (Sec. 6.3), SnoopImpact (Sec. 7.5)
//	Dispatch (load-placement policy study)
package experiments

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options controls simulation fidelity for every experiment.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Duration is the measured window per run; Warmup precedes it.
	Duration sim.Time
	Warmup   sim.Time
	// Rates is the Memcached load sweep (QPS); defaults to the paper's
	// 10K-500K points.
	Rates []float64
	// Dispatch overrides the request-to-core placement policy for every
	// simulation (default round-robin; see server.DispatchPolicies).
	// The dispatch experiment ignores it and sweeps all policies.
	Dispatch string
	// LoadGen overrides the arrival generator for every simulation
	// (default open-loop; see server.LoadGens).
	LoadGen string
	// Connections is the closed-loop connection count, required when
	// LoadGen is closed-loop (each experiment's rate points then only
	// vary the memo key, not the offered load).
	Connections int
	// Nodes is the fleet size of the cluster experiment (default 4).
	Nodes int
	// ClusterDispatch is the cluster-level load partitioning policy the
	// cluster experiment's cost comparison runs under (default spread;
	// see cluster.Policies). The policy table always sweeps all policies.
	// The scenario experiment also honors it (default spread there, the
	// policy under which the trough-vs-peak savings contrast is
	// sharpest; use consolidate to study the parking timeline).
	ClusterDispatch string
	// Scenario names the time-varying load shape of the scenario
	// experiment (default diurnal; see scenario.Names).
	Scenario string
	// Epoch is the scenario experiment's fleet re-dispatch interval
	// (default Duration/12 — one epoch per diurnal segment).
	Epoch sim.Time
	// ColdEpochs runs the scenario experiment on the legacy cold-start
	// engine (fresh node simulations every epoch, synthetic unpark
	// penalty) instead of the default warm resumable-instance path.
	ColdEpochs bool
	// Replicas adds K seeded statistical replicas per timeline
	// equivalence class to the scenario experiment and attaches 95%
	// confidence intervals to its fleet observables. Setting it switches
	// the fleet to shared node seeds (so identical timelines collapse to
	// one class and the replicas carry the variance story) and to the
	// compact O(classes) collector. Warm path only.
	Replicas int
	// Controller routes the scenario experiment's Baseline/AW comparison
	// through the named closed-loop fleet controller (oracle, reactive
	// or predictive; see cluster.Controllers) instead of the default
	// open-loop plan. Warm path only. The controller comparison table
	// always sweeps all three regardless of this setting.
	Controller string
	// ControllerUpUtil and ControllerDownUtil override the reactive
	// controller's hysteresis deadband (defaults 0.75 and 0.40): the
	// target holds while fleet utilization stays inside
	// [DownUtil, UpUtil].
	ControllerUpUtil   float64
	ControllerDownUtil float64
	// ControllerCooldown overrides the reactive controller's minimum
	// number of epochs between target changes (default 2).
	ControllerCooldown int
	// OverloadPolicy routes the scenario experiment's fleets through
	// admission control under the named overload policy (shed, degrade
	// or queue; see cluster.OverloadPolicies). Empty means no admission
	// control. The overload experiment ignores it and sweeps all three.
	OverloadPolicy string
	// OverloadMaxUtil overrides the per-node utilization the admission
	// capacity is computed at (default 0.85); OverloadBacklogSec the
	// queue policy's backlog bound in seconds of fleet capacity
	// (default 1).
	OverloadMaxUtil    float64
	OverloadBacklogSec float64
}

// DefaultOptions returns full-fidelity settings.
func DefaultOptions() Options {
	return Options{
		Seed:     2022,
		Duration: 400 * sim.Millisecond,
		Warmup:   40 * sim.Millisecond,
		Rates:    []float64{10e3, 50e3, 100e3, 200e3, 300e3, 400e3, 500e3},
	}
}

// QuickOptions returns reduced-duration settings for tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Duration = 80 * sim.Millisecond
	o.Warmup = 10 * sim.Millisecond
	o.Rates = []float64{10e3, 100e3, 500e3}
	return o
}

func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Duration == 0 {
		o.Duration = d.Duration
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if len(o.Rates) == 0 {
		o.Rates = d.Rates
	}
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	return o
}

// parallelMap runs fn(0..n-1) through the shared runner's bounded
// worker pool and returns the first error by index.
func parallelMap(n int, fn func(i int) error) error {
	return runner.Default().Each(n, fn)
}

// serverResult aliases the simulator result for the ablation helpers.
type serverResult = server.Result

// serverConfig bundles the extra knobs the ablation studies vary.
type serverConfig struct {
	Platform    governor.Config
	Policy      string
	Profile     workload.Profile
	Rate        float64
	NoisePeriod sim.Time
	Options     Options
}

// runServerConfig executes one simulation with ablation overrides.
func runServerConfig(sc serverConfig) (server.Result, error) {
	o := sc.Options.normalize()
	cfg := server.Config{
		Platform:       sc.Platform,
		GovernorPolicy: sc.Policy,
		Profile:        sc.Profile,
		RatePerSec:     sc.Rate,
		Duration:       o.Duration,
		Warmup:         o.Warmup,
		Seed:           o.Seed,
		OSNoisePeriod:  sc.NoisePeriod,
		Dispatch:       o.Dispatch,
		LoadGen:        o.LoadGen,

		ClosedLoopConnections: o.Connections,
	}
	res, err := runner.Default().Run(cfg)
	if err != nil {
		return server.Result{}, fmt.Errorf("experiments: %s: %w", sc.Platform.Name, err)
	}
	return res, nil
}

// runService executes one simulation with the experiment options,
// memoized through the shared runner.
func (o Options) runService(platform governor.Config, profile workload.Profile, rate, fixedFreqHz float64) (server.Result, error) {
	cfg := server.Config{
		Platform:    platform,
		Profile:     profile,
		RatePerSec:  rate,
		Duration:    o.Duration,
		Warmup:      o.Warmup,
		Seed:        o.Seed,
		FixedFreqHz: fixedFreqHz,
		Dispatch:    o.Dispatch,
		LoadGen:     o.LoadGen,

		ClosedLoopConnections: o.Connections,
	}
	res, err := runner.Default().Run(cfg)
	if err != nil {
		return server.Result{}, fmt.Errorf("experiments: %s @ %.0f QPS: %w", platform.Name, rate, err)
	}
	return res, nil
}
