package experiments

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

// Figure11Result studies the interplay of Turbo and idle states
// (paper Fig. 11): four legacy configurations (±Turbo x ±C1E, C6 always
// disabled) against AW's C6A with and without Turbo.
type Figure11Result struct {
	Configs []governor.Config
	Points  []Figure11Point
}

// Figure11Point is one load point across all six configurations.
type Figure11Point struct {
	RateQPS float64
	Results []server.Result // parallel to Configs
}

// Figure11 runs the Turbo analysis.
func Figure11(o Options) (Figure11Result, error) {
	o = o.normalize()
	out := Figure11Result{Configs: []governor.Config{
		governor.NTNoC6,         // No Turbo, C1E enabled
		governor.NTNoC6NoC1E,    // No Turbo, C1 only
		governor.NTC6ANoC6NoC1E, // No Turbo, AW C6A
		governor.TNoC6,          // Turbo, C1E enabled
		governor.TNoC6NoC1E,     // Turbo, C1 only
		governor.TC6ANoC6NoC1E,  // Turbo, AW C6A
	}}
	profile := workload.Memcached()
	points := make([]Figure11Point, len(o.Rates))
	err := parallelMap(len(o.Rates), func(i int) error {
		rate := o.Rates[i]
		p := Figure11Point{RateQPS: rate}
		for _, cfg := range out.Configs {
			res, err := o.runService(cfg, profile, rate, 0)
			if err != nil {
				return err
			}
			p.Results = append(p.Results, res)
		}
		points[i] = p
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

// result returns the point's result for a named config.
func (r Figure11Result) result(p Figure11Point, name string) server.Result {
	for i, c := range r.Configs {
		if c.Name == name {
			return p.Results[i]
		}
	}
	panic("experiments: unknown config " + name)
}

// Table renders the Fig. 11 latency matrix.
func (r Figure11Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 11: Avg / p99 end-to-end latency (us) - Turbo vs idle-state interplay",
		Headers: []string{"Rate (KQPS)"},
	}
	for _, c := range r.Configs {
		t.Headers = append(t.Headers, c.Name+" avg", c.Name+" p99")
	}
	for _, p := range r.Points {
		row := []any{fmt.Sprintf("%.0f", p.RateQPS/1000)}
		for _, res := range p.Results {
			row = append(row, report.US(res.EndToEnd.AvgUS), report.US(res.EndToEnd.P99US))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: T_No_C6,No_C1E gains nothing over NT (no thermal headroom);",
		"AW's T_C6A combines Turbo headroom with C1-class transition latency")
	return t
}

// TurboFractionTable shows how much Turbo each configuration could use —
// the thermal-capacitance mechanism of Sec. 7.3.
func (r Figure11Result) TurboFractionTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 11 companion: Turbo residency (share of busy time boosted)",
		Headers: []string{"Rate (KQPS)", "T_No_C6", "T_No_C6,No_C1E", "T_C6A,No_C6,No_C1E"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000),
			report.Pct(r.result(p, "T_No_C6").TurboFraction),
			report.Pct(r.result(p, "T_No_C6,No_C1E").TurboFraction),
			report.Pct(r.result(p, "T_C6A,No_C6,No_C1E").TurboFraction))
	}
	return t
}
