package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file holds ablation studies for the design choices DESIGN.md
// calls out: the idle-governor policy, the UFPG zone count (latency vs
// in-rush), the C6A power budget components, and the OS-noise assumption.

// GovernorAblationResult compares idle-selection policies under the AW
// configuration.
type GovernorAblationResult struct {
	Points []GovernorAblationPoint
}

// GovernorAblationPoint is one (rate, policy) measurement.
type GovernorAblationPoint struct {
	RateQPS       float64
	Policy        string
	AvgCorePowerW float64
	AvgUS, P99US  float64
}

// GovernorAblation sweeps the three governor policies.
func GovernorAblation(o Options) (GovernorAblationResult, error) {
	o = o.normalize()
	var out GovernorAblationResult
	profile := workload.Memcached()
	policies := []string{governor.PolicyMenu, governor.PolicyInterval, governor.PolicyStatic, governor.PolicyLadder}
	points := make([]GovernorAblationPoint, len(o.Rates)*len(policies))
	err := parallelMap(len(points), func(i int) error {
		rate, policy := o.Rates[i/len(policies)], policies[i%len(policies)]
		res, err := runWithPolicy(o, policy, rate, profile)
		if err != nil {
			return err
		}
		points[i] = GovernorAblationPoint{
			RateQPS: rate, Policy: policy,
			AvgCorePowerW: res.AvgCorePowerW,
			AvgUS:         res.EndToEnd.AvgUS, P99US: res.EndToEnd.P99US,
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

func runWithPolicy(o Options, policy string, rate float64, profile workload.Profile) (res serverResult, err error) {
	return runServerConfig(serverConfig{
		Platform: governor.Baseline, Policy: policy,
		Profile: profile, Rate: rate, Options: o,
	})
}

// Table renders the governor ablation.
func (r GovernorAblationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation: idle-governor policy (Baseline config, Memcached)",
		Headers: []string{"Rate (KQPS)", "Policy", "Core power", "Avg e2e", "p99 e2e"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), p.Policy,
			report.W(p.AvgCorePowerW), report.US(p.AvgUS), report.US(p.P99US))
	}
	t.Notes = append(t.Notes,
		"static-deepest pays the 87us+46us C6 flows on every wake: at mid load the",
		"transition thrash costs both latency and power; menu tracks the paper's baseline")
	return t
}

// ZoneAblationResult studies the UFPG zone count: fewer zones wake
// faster only if the in-rush envelope is ignored; the paper's five-zone
// split is the smallest count that respects the AVX-calibrated limit
// while staying under the 70ns budget.
type ZoneAblationResult struct {
	Rows []ZoneAblationRow
}

// ZoneAblationRow is one zone-count configuration.
type ZoneAblationRow struct {
	Zones       int
	WakeLatency sim.Time
	PeakInrush  float64
	MeetsInrush bool
	ExitLatency sim.Time
	RoundTripOK bool // < 100ns total with entry
}

// ZoneAblation sweeps UFPG zone counts from 1 to 10, holding total
// capacitance at the paper's 4.5x-AVX and waking each zone over one
// fixed AVX window (15 ns) — the design alternative the paper rejects in
// favor of capacitance-proportional staggering.
func ZoneAblation() ZoneAblationResult {
	var out ZoneAblationResult
	for n := 1; n <= 10; n++ {
		u := core.NewUFPG()
		per := u.TotalRelativeCapacitance() / float64(n)
		zones := make([]core.Zone, n)
		for i := range zones {
			zones[i] = core.Zone{
				Name:                fmt.Sprintf("zone-%d", i),
				RelativeCapacitance: per,
				WindowOverride:      u.PerZoneStagger,
			}
		}
		u.Zones = zones
		ccsm := core.NewCCSM()
		pma := core.NewPMA(u, ccsm)
		exit := pma.ExitLatency()
		rt := pma.RoundTripLatency(false)
		out.Rows = append(out.Rows, ZoneAblationRow{
			Zones:       n,
			WakeLatency: u.WakeLatency(),
			PeakInrush:  u.PeakInrush(),
			MeetsInrush: u.CheckInrush() == nil,
			ExitLatency: exit,
			RoundTripOK: rt < 100*sim.Nanosecond,
		})
	}
	return out
}

// Table renders the zone ablation.
func (r ZoneAblationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation: UFPG zone count (fixed 15ns window per zone)",
		Headers: []string{"Zones", "Wake latency", "Peak in-rush (xAVX)", "In-rush OK", "C6A exit", "<100ns RT"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Zones, row.WakeLatency.String(),
			fmt.Sprintf("%.2f", row.PeakInrush),
			fmt.Sprintf("%v", row.MeetsInrush),
			row.ExitLatency.String(), fmt.Sprintf("%v", row.RoundTripOK))
	}
	t.Notes = append(t.Notes,
		"few zones violate the AVX in-rush envelope; many zones waste wake latency;",
		"the paper's design staggers 5 zones proportionally (~68ns, in-rush = 1.0x)")
	return t
}

// PowerBudgetAblationResult decomposes C6A power and shows the
// sensitivity to each paper assumption.
type PowerBudgetAblationResult struct {
	Rows []PowerBudgetRow
}

// PowerBudgetRow is one what-if variant of the AW design.
type PowerBudgetRow struct {
	Variant                string
	C6AWattsLo, C6AWattsHi float64
}

// PowerBudgetAblation evaluates design variants of the AW core.
func PowerBudgetAblation() PowerBudgetAblationResult {
	var out PowerBudgetAblationResult
	add := func(name string, arch *core.Architecture) {
		lo, hi := arch.C6APowerRange()
		out.Rows = append(out.Rows, PowerBudgetRow{Variant: name, C6AWattsLo: lo, C6AWattsHi: hi})
	}
	add("paper design", core.NewArchitecture())

	a := core.NewArchitecture()
	a.FIVR.StaticLossW = 0 // ideal regulator
	add("no FIVR static loss", a)

	a = core.NewArchitecture()
	a.UFPG.ResidualLeakageLo, a.UFPG.ResidualLeakageHi = 0.01, 0.02 // better gates
	add("1-2% residual leakage gates", a)

	a = core.NewArchitecture()
	a.CCSM.SleepEfficiencyPnScale = 1 // no sleep-mode benefit at Pn
	add("no Pn sleep-transistor gain", a)

	a = core.NewArchitecture()
	a.CCSM.RestLeakageP1W = 0
	a.CCSM.RestLeakagePnW = 0 // hypothetical: gate tags/controllers too
	add("zero ungated-controller leakage", a)

	return out
}

// Table renders the power-budget ablation.
func (r PowerBudgetAblationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation: C6A power budget sensitivity",
		Headers: []string{"Variant", "C6A power (mW)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, report.MWRange([2]float64{row.C6AWattsLo, row.C6AWattsHi}))
	}
	t.Notes = append(t.Notes, "FIVR static loss (~100mW) is the single largest C6A component")
	return t
}

// NoiseAblationResult studies the OS-noise assumption that keeps real
// servers out of deep idle (the substitution for kernel ticks and IRQs).
type NoiseAblationResult struct {
	Points []NoiseAblationPoint
}

// NoiseAblationPoint is one noise-period setting.
type NoiseAblationPoint struct {
	NoisePeriod   sim.Time
	C6Residency   float64
	C1EResidency  float64
	AvgCorePowerW float64
}

// NoiseAblation sweeps the background wake-up period at the 10KQPS
// Memcached point (where C6 eligibility is most sensitive to it).
func NoiseAblation(o Options) (NoiseAblationResult, error) {
	o = o.normalize()
	var out NoiseAblationResult
	periods := []sim.Time{-1, 4 * sim.Millisecond, sim.Millisecond, 250 * sim.Microsecond}
	points := make([]NoiseAblationPoint, len(periods))
	err := parallelMap(len(periods), func(i int) error {
		period := periods[i]
		res, err := runServerConfig(serverConfig{
			Platform: governor.Baseline, Profile: workload.Memcached(),
			Rate: 10e3, Options: o, NoisePeriod: period,
		})
		if err != nil {
			return err
		}
		points[i] = NoiseAblationPoint{
			NoisePeriod:   period,
			C6Residency:   res.Residency[cstate.C6],
			C1EResidency:  res.Residency[cstate.C1E],
			AvgCorePowerW: res.AvgCorePowerW,
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

// Table renders the noise ablation.
func (r NoiseAblationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation: background OS-noise period (Baseline, Memcached @ 10KQPS)",
		Headers: []string{"Noise period", "C6 residency", "C1E residency", "Core power"},
	}
	for _, p := range r.Points {
		label := "disabled"
		if p.NoisePeriod > 0 {
			label = p.NoisePeriod.String()
		}
		t.AddRow(label, report.Pct(p.C6Residency), report.Pct(p.C1EResidency),
			report.W(p.AvgCorePowerW))
	}
	t.Notes = append(t.Notes,
		"more OS noise -> shorter idle periods -> shallower states (the killer microseconds)")
	return t
}
