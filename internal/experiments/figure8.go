package experiments

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/turbo"
	"repro/internal/workload"
)

// Figure8Point is one load point of the Fig. 8 Memcached evaluation.
type Figure8Point struct {
	RateQPS float64

	// (a) Baseline C-state residency.
	Baseline server.Result

	// (b) AW average-power reduction (analytical transform per Sec. 6.2,
	// Eq. 4) and latency degradation measured by running the AW config.
	AW                    server.Result
	AvgPReductionPct      float64
	AvgLatDegradationPct  float64
	TailLatDegradationPct float64

	// (c) Response-time degradation analysis: worst case charges every
	// query one C6A transition; expected case charges the observed
	// transitions. Both for server-side and end-to-end.
	WorstServerPct, WorstE2EPct       float64
	ExpectedServerPct, ExpectedE2EPct float64

	// (d) Performance scalability from 2.0 to 2.2 GHz.
	ScalabilityPct float64
}

// Figure8Result is the full sweep.
type Figure8Result struct {
	Points []Figure8Point
	// AvgReductionPct is the mean power reduction across load points
	// (paper: ~23.5% average, up to 38%).
	AvgReductionPct float64
}

// Figure8 runs the baseline-vs-AW Memcached sweep (paper Fig. 8).
func Figure8(o Options) (Figure8Result, error) {
	o = o.normalize()
	profile := workload.Memcached()
	cat := cstate.Skylake()
	vec := power.VectorFromCatalog(cat)
	var out Figure8Result
	points := make([]Figure8Point, len(o.Rates))
	err := parallelMap(len(o.Rates), func(i int) error {
		rate := o.Rates[i]
		base, err := o.runService(governor.Baseline, profile, rate, 0)
		if err != nil {
			return err
		}
		aw, err := o.runService(governor.AW, profile, rate, 0)
		if err != nil {
			return err
		}
		p := Figure8Point{RateQPS: rate, Baseline: base, AW: aw}

		// (b) Power reduction via the Eq. 4 methodology: replace C1/C1E
		// residency power with C6A/C6AE power relative to the measured
		// baseline average power (Turbo effects included in C0).
		p.AvgPReductionPct = power.TurboSavings(
			base.Residency[cstate.C1], base.Residency[cstate.C1E],
			base.AvgCorePowerW, vec)
		p.AvgLatDegradationPct = pctOver(aw.EndToEnd.AvgUS, base.EndToEnd.AvgUS)
		p.TailLatDegradationPct = pctOver(aw.EndToEnd.P99US, base.EndToEnd.P99US)

		// (c) Worst/expected-case response-time degradation from the AW
		// transition latency (~100 ns round trip).
		const awTransUS = 0.1
		serverAvg := base.Server.AvgUS
		e2eAvg := base.EndToEnd.AvgUS
		p.WorstServerPct = awTransUS / serverAvg * 100
		p.WorstE2EPct = awTransUS / e2eAvg * 100
		// Expected: observed C1+C1E transition rate spread across queries.
		// Transitions triggered by background OS activity are not on any
		// query's critical path, so at most one transition per query
		// contributes (the paper's worst case is exactly one per query).
		transPerSec := base.TransitionsPerSec[cstate.C1] + base.TransitionsPerSec[cstate.C1E]
		if transPerSec > base.CompletedPerSec {
			transPerSec = base.CompletedPerSec
		}
		perQueryUS := 0.0
		if base.CompletedPerSec > 0 {
			perQueryUS = transPerSec / base.CompletedPerSec * awTransUS
		}
		p.ExpectedServerPct = perQueryUS / serverAvg * 100
		p.ExpectedE2EPct = perQueryUS / e2eAvg * 100

		// (d) Scalability: rerun the baseline at pinned 2.0 and 2.2 GHz
		// (Turbo disabled) and compare mean server-side performance.
		slow, err := o.runService(governor.NTBaseline, profile, rate, 2.0e9)
		if err != nil {
			return err
		}
		fast, err := o.runService(governor.NTBaseline, profile, rate, 2.2e9)
		if err != nil {
			return err
		}
		p.ScalabilityPct = turbo.ScalabilityPercent(
			1/slow.Server.AvgUS, 1/fast.Server.AvgUS, 2.0e9, 2.2e9)

		points[i] = p
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	sum := 0.0
	for _, p := range out.Points {
		sum += p.AvgPReductionPct
	}
	if len(out.Points) > 0 {
		out.AvgReductionPct = sum / float64(len(out.Points))
	}
	return out, nil
}

func pctOver(new, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return (new - base) / base * 100
}

// ResidencyTable renders Fig. 8(a).
func (r Figure8Result) ResidencyTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 8(a): Baseline C-state residency vs request rate (Memcached)",
		Headers: []string{"Rate (KQPS)", "C0", "C1", "C1E", "C6"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000),
			report.Pct(p.Baseline.Residency[cstate.C0]),
			report.Pct(p.Baseline.Residency[cstate.C1]),
			report.Pct(p.Baseline.Residency[cstate.C1E]),
			report.Pct(p.Baseline.Residency[cstate.C6]))
	}
	return t
}

// SavingsTable renders Fig. 8(b).
func (r Figure8Result) SavingsTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 8(b): AW AvgP reduction and latency degradation vs baseline",
		Headers: []string{"Rate (KQPS)", "AvgP reduction", "Avg lat degr.", "Tail lat degr."},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000),
			fmt.Sprintf("%.1f%%", p.AvgPReductionPct),
			fmt.Sprintf("%.2f%%", p.AvgLatDegradationPct),
			fmt.Sprintf("%.2f%%", p.TailLatDegradationPct))
	}
	t.AddRow("Avg", fmt.Sprintf("%.1f%%", r.AvgReductionPct), "", "")
	t.Notes = append(t.Notes, "paper: up to 38% reduction at low load, ~10% at high load, <1.3% latency impact")
	return t
}

// DegradationTable renders Fig. 8(c).
func (r Figure8Result) DegradationTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 8(c): AW average response-time degradation (worst vs expected case)",
		Headers: []string{"Rate (KQPS)", "Worst e2e", "Worst server", "Expected e2e", "Expected server"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000),
			fmt.Sprintf("%.4f%%", p.WorstE2EPct),
			fmt.Sprintf("%.4f%%", p.WorstServerPct),
			fmt.Sprintf("%.4f%%", p.ExpectedE2EPct),
			fmt.Sprintf("%.4f%%", p.ExpectedServerPct))
	}
	t.Notes = append(t.Notes, "network latency (117us) dominates end-to-end, so e2e degradation is negligible")
	return t
}

// ScalabilityTable renders Fig. 8(d).
func (r Figure8Result) ScalabilityTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 8(d): Memcached performance scalability, 2.0 -> 2.2 GHz",
		Headers: []string{"Rate (KQPS)", "Perf. scalability"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), fmt.Sprintf("%.0f%%", p.ScalabilityPct))
	}
	return t
}
