package experiments

import (
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// scenarioQuick keeps the fleet small and the windows short.
func scenarioQuick() Options {
	o := QuickOptions()
	o.Duration = 120 * sim.Millisecond
	o.Warmup = 5 * sim.Millisecond
	o.Nodes = 2
	o.Epoch = 20 * sim.Millisecond
	return o
}

// TestScenarioDiurnalTroughVsPeakSavings is the experiment's acceptance
// criterion: over a diurnal day, the AW-vs-Baseline savings fraction
// must differ measurably between the trough and the peak — deep idle
// states earn their keep when utilization is low, which is exactly what
// the stationary sweep at one rate cannot show.
func TestScenarioDiurnalTroughVsPeakSavings(t *testing.T) {
	o := scenarioQuick()
	o.Scenario = scenario.NameDiurnal
	r, err := Scenario(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != scenario.NameDiurnal || len(r.Baseline.Phases) == 0 {
		t.Fatalf("unexpected result shape: %+v", r)
	}
	if len(r.Baseline.Phases) != len(r.AW.Phases) {
		t.Fatalf("phase lists misaligned: %d vs %d", len(r.Baseline.Phases), len(r.AW.Phases))
	}
	// Locate trough and peak by offered rate.
	ti, pi := 0, 0
	for i, p := range r.Baseline.Phases {
		if p.AvgRateQPS < r.Baseline.Phases[ti].AvgRateQPS {
			ti = i
		}
		if p.AvgRateQPS > r.Baseline.Phases[pi].AvgRateQPS {
			pi = i
		}
	}
	frac := func(i int) float64 {
		b, a := r.Baseline.Phases[i], r.AW.Phases[i]
		if b.AvgFleetPowerW <= 0 {
			t.Fatalf("phase %s has no baseline power", b.Phase)
		}
		return (b.AvgFleetPowerW - a.AvgFleetPowerW) / b.AvgFleetPowerW
	}
	troughSave, peakSave := frac(ti), frac(pi)
	if troughSave <= 0 {
		t.Errorf("AW saves nothing at the trough (%.1f%%)", troughSave*100)
	}
	// "Measurably different": at least 1.2x apart in relative terms.
	if troughSave < peakSave*1.2 {
		t.Errorf("trough savings %.1f%% not measurably above peak savings %.1f%%",
			troughSave*100, peakSave*100)
	}
}

func TestScenarioSpikeRendersTables(t *testing.T) {
	o := scenarioQuick()
	o.Scenario = scenario.NameSpike
	r, err := Scenario(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.PhaseTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.EpochTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"spike", "TOTAL", "Epoch", "Unparks"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q:\n%s", want, out)
		}
	}
	// Epoch windows must tile the schedule.
	if got := len(r.Baseline.Epochs); got != 6 {
		t.Errorf("epochs = %d, want 6 (120ms / 20ms)", got)
	}
}

// TestScenarioControllersComparesAllThree is the control-plane study's
// acceptance test: the sweep covers diurnal and spike under oracle,
// reactive and predictive, every cell carries replica CIs, and the
// spike rows exhibit the headline — the reactive controller's one-epoch
// reaction lag degrades the AW fleet's worst p99 versus the oracle,
// which had the nodes awake before the spike landed.
func TestScenarioControllersComparesAllThree(t *testing.T) {
	o := scenarioQuick()
	o.Nodes = 4
	// 10ms epochs resolve the spike into whole epochs (the 4x step spans
	// [2/5, 3/5] of the schedule), so the reaction lag is visible.
	o.Epoch = 10 * sim.Millisecond
	r, err := ScenarioControllers(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 6 {
		t.Fatalf("runs = %d, want 6 (2 schedules x 3 controllers)", len(r.Runs))
	}
	byCell := map[string]ControllerScenarioRun{}
	for _, run := range r.Runs {
		byCell[run.Schedule+"/"+run.Controller] = run
		if run.Baseline.CI == nil || run.AW.CI == nil {
			t.Fatalf("%s/%s missing replica CIs", run.Schedule, run.Controller)
		}
		if got := run.AW.CI.Samples; got != r.Replicas+1 {
			t.Errorf("%s/%s CI samples = %d, want %d", run.Schedule, run.Controller, got, r.Replicas+1)
		}
		if run.AW.Controller != run.Controller {
			t.Errorf("%s/%s AW ran under controller %q", run.Schedule, run.Controller, run.AW.Controller)
		}
		if run.SavingsPerYearM < run.SavingsLoM || run.SavingsPerYearM > run.SavingsHiM {
			t.Errorf("%s/%s savings %.3f outside its CI [%.3f, %.3f]",
				run.Schedule, run.Controller, run.SavingsPerYearM, run.SavingsLoM, run.SavingsHiM)
		}
	}
	// AW saves power under every controller on the diurnal day.
	for _, ctrl := range []string{"oracle", "reactive", "predictive"} {
		run := byCell["diurnal/"+ctrl]
		if run.SavingsPerYearM <= 0 {
			t.Errorf("diurnal/%s yearly savings %.3f $M not positive", ctrl, run.SavingsPerYearM)
		}
	}
	// The spike headline: reactive pays the unpark lag in tail latency.
	oracle, reactive := byCell["spike/oracle"], byCell["spike/reactive"]
	if reactive.AW.ControllerChanges == 0 {
		t.Error("spike/reactive controller never moved its target")
	}
	if reactive.AW.WorstP99US <= oracle.AW.WorstP99US {
		t.Errorf("spike reactive AW p99 %.1fus not degraded vs oracle %.1fus",
			reactive.AW.WorstP99US, oracle.AW.WorstP99US)
	}
	var b strings.Builder
	if err := r.ControllerTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"oracle", "reactive", "predictive", "spike", "$M/yr", "Changes"} {
		if !strings.Contains(out, want) {
			t.Errorf("controller table missing %q:\n%s", want, out)
		}
	}
}

// TestScenarioHonorsControllerOption pins that the main scenario
// comparison can itself run closed-loop: -controller=reactive routes
// both fleets through the reactive controller.
func TestScenarioHonorsControllerOption(t *testing.T) {
	o := scenarioQuick()
	o.Controller = "reactive"
	r, err := Scenario(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline.Controller != "reactive" || r.AW.Controller != "reactive" {
		t.Errorf("fleets ran under %q/%q, want reactive/reactive",
			r.Baseline.Controller, r.AW.Controller)
	}
	for _, ep := range r.AW.Epochs {
		if ep.TargetNodes < 1 || ep.TargetNodes > o.Nodes {
			t.Errorf("epoch %d target %d outside [1, %d]", ep.Epoch, ep.TargetNodes, o.Nodes)
		}
	}
}

func TestScenarioUnknownNameFails(t *testing.T) {
	o := scenarioQuick()
	o.Scenario = "heatwave"
	if _, err := Scenario(o); err == nil {
		t.Error("unknown scenario name accepted")
	}
}
