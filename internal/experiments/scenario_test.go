package experiments

import (
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// scenarioQuick keeps the fleet small and the windows short.
func scenarioQuick() Options {
	o := QuickOptions()
	o.Duration = 120 * sim.Millisecond
	o.Warmup = 5 * sim.Millisecond
	o.Nodes = 2
	o.Epoch = 20 * sim.Millisecond
	return o
}

// TestScenarioDiurnalTroughVsPeakSavings is the experiment's acceptance
// criterion: over a diurnal day, the AW-vs-Baseline savings fraction
// must differ measurably between the trough and the peak — deep idle
// states earn their keep when utilization is low, which is exactly what
// the stationary sweep at one rate cannot show.
func TestScenarioDiurnalTroughVsPeakSavings(t *testing.T) {
	o := scenarioQuick()
	o.Scenario = scenario.NameDiurnal
	r, err := Scenario(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != scenario.NameDiurnal || len(r.Baseline.Phases) == 0 {
		t.Fatalf("unexpected result shape: %+v", r)
	}
	if len(r.Baseline.Phases) != len(r.AW.Phases) {
		t.Fatalf("phase lists misaligned: %d vs %d", len(r.Baseline.Phases), len(r.AW.Phases))
	}
	// Locate trough and peak by offered rate.
	ti, pi := 0, 0
	for i, p := range r.Baseline.Phases {
		if p.AvgRateQPS < r.Baseline.Phases[ti].AvgRateQPS {
			ti = i
		}
		if p.AvgRateQPS > r.Baseline.Phases[pi].AvgRateQPS {
			pi = i
		}
	}
	frac := func(i int) float64 {
		b, a := r.Baseline.Phases[i], r.AW.Phases[i]
		if b.AvgFleetPowerW <= 0 {
			t.Fatalf("phase %s has no baseline power", b.Phase)
		}
		return (b.AvgFleetPowerW - a.AvgFleetPowerW) / b.AvgFleetPowerW
	}
	troughSave, peakSave := frac(ti), frac(pi)
	if troughSave <= 0 {
		t.Errorf("AW saves nothing at the trough (%.1f%%)", troughSave*100)
	}
	// "Measurably different": at least 1.2x apart in relative terms.
	if troughSave < peakSave*1.2 {
		t.Errorf("trough savings %.1f%% not measurably above peak savings %.1f%%",
			troughSave*100, peakSave*100)
	}
}

func TestScenarioSpikeRendersTables(t *testing.T) {
	o := scenarioQuick()
	o.Scenario = scenario.NameSpike
	r, err := Scenario(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.PhaseTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.EpochTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"spike", "TOTAL", "Epoch", "Unparks"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q:\n%s", want, out)
		}
	}
	// Epoch windows must tile the schedule.
	if got := len(r.Baseline.Epochs); got != 6 {
		t.Errorf("epochs = %d, want 6 (120ms / 20ms)", got)
	}
}

func TestScenarioUnknownNameFails(t *testing.T) {
	o := scenarioQuick()
	o.Scenario = "heatwave"
	if _, err := Scenario(o); err == nil {
		t.Error("unknown scenario name accepted")
	}
}
