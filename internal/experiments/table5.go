package experiments

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/datacenter"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/workload"
)

// Table5Result is the datacenter cost-savings analysis (paper Table 5).
type Table5Result struct {
	Rows []datacenter.Table5Row
	// CoresPerCPU converts per-core deltas to the per-CPU basis Table 5
	// uses (the Xeon 4114 has 10 physical cores per socket).
	CoresPerCPU int
}

// Table5 runs the Memcached sweep and converts AW's power savings into
// yearly $ savings per 100K servers.
func Table5(o Options) (Table5Result, error) {
	o = o.normalize()
	profile := workload.Memcached()
	vec := power.VectorFromCatalog(cstate.Skylake())
	model := datacenter.NewCostModel()
	const coresPerCPU = 10
	qps := make([]float64, len(o.Rates))
	baseW := make([]float64, len(o.Rates))
	awW := make([]float64, len(o.Rates))
	err := parallelMap(len(o.Rates), func(i int) error {
		rate := o.Rates[i]
		base, err := o.runService(governor.Baseline, profile, rate, 0)
		if err != nil {
			return err
		}
		// AW per-core power from the Sec. 6.2 transform.
		reduction := power.TurboSavings(
			base.Residency[cstate.C1], base.Residency[cstate.C1E],
			base.AvgCorePowerW, vec) / 100
		baseCPU := base.AvgCorePowerW * coresPerCPU
		qps[i] = rate
		baseW[i] = baseCPU
		awW[i] = baseCPU * (1 - reduction)
		return nil
	})
	if err != nil {
		return Table5Result{}, err
	}
	rows, err := model.Table5(qps, baseW, awW)
	if err != nil {
		return Table5Result{}, err
	}
	return Table5Result{Rows: rows, CoresPerCPU: coresPerCPU}, nil
}

// Table renders Table 5.
func (r Table5Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Table 5: AW yearly cost savings ($M per 100K servers, per CPU)",
		Headers: []string{"QPS", "Baseline W/CPU", "AW W/CPU", "Delta W", "Savings ($M/yr)"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0fK", row.QPS/1000),
			report.W(row.BaselineW), report.W(row.AWW),
			report.W(row.DeltaW), fmt.Sprintf("%.2f", row.SavingsPerYearM))
	}
	t.Notes = append(t.Notes, "paper: 0.33 / 0.59 / 0.58 / 0.53 / 0.47 / 0.41 / 0.34 $M at 10K-500K QPS")
	return t
}
