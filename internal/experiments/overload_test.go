package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

// TestOverloadExperimentQuick drives the admission study on a small
// fleet and checks the shape the table relies on: one run per policy,
// every run saturated through the spike plateau, shed dropping work,
// degrade dropping none, and the queue run ending with its backlog
// drained into the post-spike trough.
func TestOverloadExperimentQuick(t *testing.T) {
	o := scenarioQuick()
	o.Nodes = 4
	r, err := Overload(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.CapacityQPS <= 0 || r.SpikeQPS <= r.CapacityQPS || r.BaseQPS >= r.CapacityQPS {
		t.Fatalf("fixture sizing broken: base %g, capacity %g, spike %g",
			r.BaseQPS, r.CapacityQPS, r.SpikeQPS)
	}
	want := cluster.OverloadPolicies()
	if len(r.Runs) != len(want) {
		t.Fatalf("runs = %d, want %d", len(r.Runs), len(want))
	}
	for i, run := range r.Runs {
		if run.Policy != want[i] {
			t.Errorf("run %d policy = %q, want %q", i, run.Policy, want[i])
		}
		if run.Result.Overload != run.Policy {
			t.Errorf("%s: result echoes policy %q", run.Policy, run.Result.Overload)
		}
		if run.Result.SaturatedEpochs == 0 {
			t.Errorf("%s: spike never saturated the fleet", run.Policy)
		}
		if run.Result.AvgFleetPowerW <= 0 {
			t.Errorf("%s: non-positive fleet power", run.Policy)
		}
		switch run.Policy {
		case cluster.OverloadShed:
			if run.Result.SheddedRequests <= 0 {
				t.Errorf("shed: dropped nothing through an over-capacity spike")
			}
		case cluster.OverloadDegrade:
			if run.Result.SheddedRequests != 0 || run.Result.BacklogRate != 0 {
				t.Errorf("degrade: shed %g queued %g, want admit-everything",
					run.Result.SheddedRequests, run.Result.BacklogRate)
			}
		case cluster.OverloadQueue:
			if run.Result.BacklogRate != 0 {
				t.Errorf("queue: backlog %g left after the post-spike trough", run.Result.BacklogRate)
			}
		}
	}
	tbl := r.Table()
	if len(tbl.Rows) != len(want) {
		t.Fatalf("table rows = %d, want %d", len(tbl.Rows), len(want))
	}
	if !strings.Contains(tbl.Title, "Overload admission") {
		t.Errorf("table title = %q", tbl.Title)
	}
}
