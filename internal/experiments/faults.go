package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FaultControllerRun is one controller's cell of the fault study: the
// same AW fleet over the same spike schedule, once healthy and once with
// the crash faults injected, so every delta in the row is attributable
// to the faults alone.
type FaultControllerRun struct {
	// Controller is the fleet controller name.
	Controller string
	// Healthy and Faulted are the two runs, epoch windows aligned.
	Healthy cluster.ScenarioResult
	Faulted cluster.ScenarioResult
}

// FaultsExpResult is the crash-under-spike robustness study: an AW
// fleet driven through a 4x load spike while part of the fleet crashes
// across the spike plateau, once per fleet controller. It answers the
// control-plane question the healthy scenario tables cannot: when
// machines die exactly when load arrives, how much worse does a
// feedback controller fare than the omniscient plan — and what do the
// crash/restart cycles themselves cost in power and tail latency?
type FaultsExpResult struct {
	// Nodes is the fleet size; Crashed how many of them crash.
	Nodes   int
	Crashed int
	// Epoch is the re-dispatch interval; Total the schedule length.
	Epoch sim.Time
	Total sim.Time
	// CrashStart / CrashEnd is the crash window on the schedule clock
	// (the spike plateau).
	CrashStart sim.Time
	CrashEnd   sim.Time
	// Runs holds one entry per controller (oracle, reactive).
	Runs []FaultControllerRun
}

// Faults runs the crash-under-spike study: a spike schedule at the
// controller-study base rate, with the first quarter of the fleet (at
// least one node) crashing over the spike's middle-fifth plateau —
// capacity vanishes at the moment demand quadruples. Each controller
// (oracle, then reactive) drives a healthy and a faulted AW fleet under
// consolidate+park, so the table isolates both the fault cost per
// controller and the controller gap under faults.
func Faults(o Options) (FaultsExpResult, error) {
	o = o.normalize()
	total := o.Duration
	epoch := o.Epoch
	if epoch == 0 {
		epoch = total / 12
	}
	crashed := o.Nodes / 4
	if crashed < 1 {
		crashed = 1
	}
	out := FaultsExpResult{
		Nodes:   o.Nodes,
		Crashed: crashed,
		Epoch:   epoch,
		Total:   total,
		// The spike shape holds 4x over the middle fifth of the schedule;
		// the crash window covers exactly that plateau.
		CrashStart: 2 * total / 5,
		CrashEnd:   3 * total / 5,
	}
	spec := cluster.FaultSpec{}
	for i := 0; i < crashed; i++ {
		spec.Nodes = append(spec.Nodes, cluster.NodeFault{
			Node: i, Kind: cluster.FaultCrash,
			Start: out.CrashStart, End: out.CrashEnd,
		})
	}
	sched, err := scenario.ByName(scenario.NameSpike, ctrlScenarioQPSPerNode*float64(o.Nodes), total)
	if err != nil {
		return out, err
	}
	profile := workload.Memcached()
	fleet := func(ctrl string, faults cluster.FaultSpec) (cluster.ScenarioResult, error) {
		node := server.Config{
			Platform: governor.AW,
			Profile:  profile,
			Warmup:   o.Warmup,
			Seed:     o.Seed,
			Dispatch: o.Dispatch,
			LoadGen:  o.LoadGen,
		}
		res, err := cluster.RunScenario(cluster.ScenarioConfig{
			Nodes:       cluster.Homogeneous(o.Nodes, node),
			Schedule:    sched,
			Epoch:       epoch,
			Dispatch:    cluster.DispatchConsolidate,
			ParkDrained: true,
			Controller:  o.controllerSpec(ctrl),
			Faults:      faults,
		})
		if err != nil {
			return cluster.ScenarioResult{}, fmt.Errorf("experiments: faults %s: %w", ctrl, err)
		}
		return res, nil
	}
	for _, ctrl := range []string{cluster.ControllerOracle, cluster.ControllerReactive} {
		run := FaultControllerRun{Controller: ctrl}
		if run.Healthy, err = fleet(ctrl, cluster.FaultSpec{}); err != nil {
			return out, err
		}
		if run.Faulted, err = fleet(ctrl, spec); err != nil {
			return out, err
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// downEpochs sums crashed node-epochs over the run.
func downEpochs(r cluster.ScenarioResult) int {
	var n int
	for _, ep := range r.Epochs {
		n += ep.Down
	}
	return n
}

// Table renders the crash-under-spike comparison — per controller, the
// healthy and faulted fleet power and worst tail, the crash exposure
// (down node-epochs, restarts) and the controller's decision churn.
func (r FaultsExpResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Crash under spike: oracle vs reactive on a faulted AW fleet (%d nodes, %d crash, consolidate)",
			r.Nodes, r.Crashed),
		Headers: []string{"Controller", "Healthy W", "Faulted W", "Healthy p99",
			"Faulted p99", "Down ep", "Restarts", "Changes H/F"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Controller,
			report.W(run.Healthy.AvgFleetPowerW), report.W(run.Faulted.AvgFleetPowerW),
			report.US(run.Healthy.WorstP99US), report.US(run.Faulted.WorstP99US),
			fmt.Sprintf("%d", downEpochs(run.Faulted)),
			fmt.Sprintf("%d", run.Faulted.Restarts),
			fmt.Sprintf("%d/%d", run.Healthy.ControllerChanges, run.Faulted.ControllerChanges))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d of %d nodes crash over the spike plateau (%.0f-%.0fms); survivors absorb the", r.Crashed, r.Nodes,
			float64(r.CrashStart)/1e6, float64(r.CrashEnd)/1e6),
		"re-partitioned load and restarted nodes rebuild cold, paying the restart penalty;",
		"down ep counts crashed node-epochs; changes count controller target moves (healthy/faulted)")
	return t
}
