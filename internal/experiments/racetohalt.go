package experiments

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

// RaceToHaltResult explores the Sec. 8 observation that "the new C6A
// state could make a simple race-to-halt approach more attractive than
// complex DVFS management": compare
//
//   - pace (DVFS): run every request at the minimum frequency (Pn,
//     ~1 W active) and idle in shallow C1 — the energy-proportional
//     strategy fine-grained DVFS managers approximate;
//   - race+C1: run at base frequency and halt into C1;
//   - race+C6A: run at base frequency and halt into AW's C6A.
type RaceToHaltResult struct {
	Points []RaceToHaltPoint
}

// RaceToHaltPoint is one load level.
type RaceToHaltPoint struct {
	RateQPS float64
	Pace    server.Result
	RaceC1  server.Result
	RaceAW  server.Result
	// EnergyPerRequestMJ for each strategy (millijoules).
	PaceMJ, RaceC1MJ, RaceAWMJ float64
}

// RaceToHalt runs the three strategies across the load sweep.
func RaceToHalt(o Options) (RaceToHaltResult, error) {
	o = o.normalize()
	profile := workload.Memcached()
	var out RaceToHaltResult

	pace := governor.Config{Name: "Pace_Pn_C1", Menu: []cstate.ID{cstate.C1}}
	raceC1 := governor.Config{Name: "Race_P1_C1", Menu: []cstate.ID{cstate.C1}}
	raceAW := governor.Config{Name: "Race_P1_C6A", AgileWatts: true, Menu: []cstate.ID{cstate.C6A}}

	points := make([]RaceToHaltPoint, len(o.Rates))
	err := parallelMap(len(o.Rates), func(i int) error {
		rate := o.Rates[i]
		p := RaceToHaltPoint{RateQPS: rate}
		var err error
		// Pace: pin the clock to Pn. (The C0 power curve then yields ~1W.)
		if p.Pace, err = o.runService(pace, profile, rate, 0.8e9); err != nil {
			return err
		}
		if p.RaceC1, err = o.runService(raceC1, profile, rate, 0); err != nil {
			return err
		}
		if p.RaceAW, err = o.runService(raceAW, profile, rate, 0); err != nil {
			return err
		}
		p.PaceMJ = energyPerRequestMJ(p.Pace)
		p.RaceC1MJ = energyPerRequestMJ(p.RaceC1)
		p.RaceAWMJ = energyPerRequestMJ(p.RaceAW)
		points[i] = p
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

func energyPerRequestMJ(r server.Result) float64 {
	if r.CompletedPerSec <= 0 || r.MeasuredDuration <= 0 {
		return 0
	}
	requests := r.CompletedPerSec * r.MeasuredDuration.Seconds()
	return r.EnergyJ / requests * 1e3
}

// Table renders the race-to-halt comparison.
func (r RaceToHaltResult) Table() *report.Table {
	t := &report.Table{
		Title: "Sec. 8 analysis: race-to-halt with C6A vs DVFS pacing (Memcached)",
		Headers: []string{"Rate (KQPS)",
			"Pace mJ/req", "Race+C1 mJ/req", "Race+C6A mJ/req",
			"Pace p99", "Race+C1 p99", "Race+C6A p99"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000),
			fmt.Sprintf("%.3f", p.PaceMJ),
			fmt.Sprintf("%.3f", p.RaceC1MJ),
			fmt.Sprintf("%.3f", p.RaceAWMJ),
			report.US(p.Pace.EndToEnd.P99US),
			report.US(p.RaceC1.EndToEnd.P99US),
			report.US(p.RaceAW.EndToEnd.P99US))
	}
	t.Notes = append(t.Notes,
		"with only C1 to halt into, pacing at Pn can compete on energy;",
		"C6A's ~0.3W halt target makes race-to-halt win on both energy and latency")
	return t
}
