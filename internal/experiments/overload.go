package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OverloadPolicyRun is one admission policy's cell of the overload
// study: the same AW fleet, same schedule, same reactive controller —
// only the overload policy differs, so every delta in the row is the
// policy's doing.
type OverloadPolicyRun struct {
	// Policy is the admission policy name (shed, degrade, queue).
	Policy string
	// Result is the controlled scenario run under that policy.
	Result cluster.ScenarioResult
}

// OverloadExpResult is the admission-control study: an AW fleet driven
// through a spike whose plateau exceeds the whole fleet's admission
// capacity, once per overload policy. It answers the robustness
// question the fault study leaves open: when demand — not supply — is
// the thing that breaks, what does each way of saying "no" (or not
// saying it) cost in power, tail latency and dropped work?
type OverloadExpResult struct {
	// Nodes is the fleet size; Epoch the re-dispatch interval; Total
	// the schedule length.
	Nodes int
	Epoch sim.Time
	Total sim.Time
	// MaxUtil is the admission ceiling's per-node utilization;
	// CapacityQPS the resulting full-fleet admission capacity.
	MaxUtil     float64
	CapacityQPS float64
	// BaseQPS and SpikeQPS are the schedule's trough and plateau rates
	// (the plateau deliberately exceeds CapacityQPS).
	BaseQPS  float64
	SpikeQPS float64
	// Runs holds one entry per overload policy, in OverloadPolicies
	// order.
	Runs []OverloadPolicyRun
}

// Overload runs the admission-control study: a spike schedule whose
// plateau offers 2.5x the fleet's admission capacity while the base
// load sits comfortably under it, driven through the reactive
// controller once per overload policy (shed, degrade, queue). Sizing
// the spike from the measured capacity — not a guessed rate — is what
// guarantees the plateau saturates every fleet the options can
// describe.
func Overload(o Options) (OverloadExpResult, error) {
	o = o.normalize()
	total := o.Duration
	epoch := o.Epoch
	if epoch == 0 {
		epoch = total / 12
	}
	maxUtil := o.OverloadMaxUtil
	if maxUtil == 0 {
		maxUtil = 0.85
	}
	profile := workload.Memcached()
	node := server.Config{
		Platform: governor.AW,
		Profile:  profile,
		Warmup:   o.Warmup,
		Seed:     o.Seed,
		Dispatch: o.Dispatch,
		LoadGen:  o.LoadGen,
	}
	nodes := cluster.Homogeneous(o.Nodes, node)
	capacity := cluster.AdmissionCapacityQPS(nodes, maxUtil)
	out := OverloadExpResult{
		Nodes:       o.Nodes,
		Epoch:       epoch,
		Total:       total,
		MaxUtil:     maxUtil,
		CapacityQPS: capacity,
		BaseQPS:     0.4 * capacity,
		SpikeQPS:    2.0 * capacity,
	}
	// The spike plateau covers the middle fifth, like the fault study's
	// crash window: pressure arrives, holds, and releases. The sizing
	// keeps the queue policy honest: the plateau banks capacity x T/5 of
	// backlog, and the post-spike headroom (0.6 x capacity over 2T/5)
	// drains it in T/3 — pressure that saturates, then a recovery that
	// completes inside the run.
	sched, err := scenario.Spike(out.BaseQPS, out.SpikeQPS/out.BaseQPS, total, 2*total/5, total/5)
	if err != nil {
		return out, err
	}
	for _, policy := range cluster.OverloadPolicies() {
		res, err := cluster.RunScenario(cluster.ScenarioConfig{
			Nodes:       nodes,
			Schedule:    sched,
			Epoch:       epoch,
			Dispatch:    cluster.DispatchConsolidate,
			ParkDrained: true,
			Controller:  o.controllerSpec(cluster.ControllerReactive),
			Overload:    o.overloadSpec(policy),
		})
		if err != nil {
			return out, fmt.Errorf("experiments: overload %s: %w", policy, err)
		}
		out.Runs = append(out.Runs, OverloadPolicyRun{Policy: policy, Result: res})
	}
	return out, nil
}

// Table renders the policy comparison — per policy, the fleet power
// and worst tail, the saturation exposure, the work dropped and the
// backlog left at the end of the run.
func (r OverloadExpResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Overload admission: shed vs degrade vs queue on an AW fleet (%d nodes, spike %.0f%% of capacity, reactive)",
			r.Nodes, 100*r.SpikeQPS/r.CapacityQPS),
		Headers: []string{"Policy", "Avg W", "Worst p99", "Sat ep", "Shed req", "End backlog/s", "Changes"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Policy,
			report.W(run.Result.AvgFleetPowerW),
			report.US(run.Result.WorstP99US),
			fmt.Sprintf("%d", run.Result.SaturatedEpochs),
			fmt.Sprintf("%.0f", run.Result.SheddedRequests),
			fmt.Sprintf("%.0f", run.Result.BacklogRate),
			fmt.Sprintf("%d", run.Result.ControllerChanges))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("admission capacity is %.2fM QPS (%d nodes at %.0f%% util); the spike plateau offers %.2fM",
			r.CapacityQPS/1e6, r.Nodes, 100*r.MaxUtil, r.SpikeQPS/1e6),
		"shed drops the excess at the door; degrade admits it and eats the tail latency;",
		"queue carries it as backlog and drains after the spike — sat ep counts saturated epochs")
	return t
}
