package experiments

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

// ServiceEvalPoint is one load level of the MySQL (Fig. 12) or Kafka
// (Fig. 13) evaluation.
type ServiceEvalPoint struct {
	Label   string
	RateQPS float64
	// Baseline: P-states disabled, C1+C6 enabled.
	Baseline server.Result
	// NoC6: the vendor-recommended C6-disabled configuration.
	NoC6 server.Result
	// Latency improvement of NoC6 over Baseline (paper Fig. 12/13(c)).
	AvgLatReductionPct, TailLatReductionPct float64
	// AvgPReductionPct: AW's C6A vs the NoC6 configuration — the NoC6
	// run's C1 residency mapped to C6A power (paper Fig. 12/13(d)).
	AvgPReductionPct float64
}

// ServiceEvalResult is a full Fig. 12/13-style evaluation.
type ServiceEvalResult struct {
	Service string
	Points  []ServiceEvalPoint
}

func serviceEval(o Options, profile workload.Profile, labels []string, rates []float64) (ServiceEvalResult, error) {
	o = o.normalize()
	out := ServiceEvalResult{Service: profile.Name}
	vec := power.VectorFromCatalog(cstate.Skylake())
	points := make([]ServiceEvalPoint, len(rates))
	err := parallelMap(len(rates), func(i int) error {
		rate := rates[i]
		base, err := o.runService(governor.KVBaseline, profile, rate, 0)
		if err != nil {
			return err
		}
		noC6, err := o.runService(governor.KVNoC6, profile, rate, 0)
		if err != nil {
			return err
		}
		p := ServiceEvalPoint{Label: labels[i], RateQPS: rate, Baseline: base, NoC6: noC6}
		p.AvgLatReductionPct = pctOver(base.EndToEnd.AvgUS, noC6.EndToEnd.AvgUS)
		p.TailLatReductionPct = pctOver(base.EndToEnd.P99US, noC6.EndToEnd.P99US)
		// Fig. 12(d)/13(d): map the NoC6 config's C1 residency to C6A.
		p.AvgPReductionPct = power.TurboSavings(
			noC6.Residency[cstate.C1], noC6.Residency[cstate.C1E],
			noC6.AvgCorePowerW, vec)
		points[i] = p
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

// Figure12 evaluates MySQL at low/mid/high request rates (paper Fig. 12).
func Figure12(o Options) (ServiceEvalResult, error) {
	return serviceEval(o, workload.MySQL(),
		[]string{"low", "mid", "high"}, []float64{2e3, 6e3, 12e3})
}

// Figure13 evaluates Kafka at low/high request rates (paper Fig. 13).
func Figure13(o Options) (ServiceEvalResult, error) {
	return serviceEval(o, workload.Kafka(),
		[]string{"low", "high"}, []float64{3e3, 150e3})
}

// Table renders the service evaluation.
func (r ServiceEvalResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Fig. 12/13-style evaluation of %s", r.Service),
		Headers: []string{"Rate", "Base C0/C1/C6", "NoC6 C0/C1", "dAvgLat", "dTailLat",
			"AW AvgP reduction"},
	}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%s (%.0fK)", p.Label, p.RateQPS/1000),
			fmt.Sprintf("%s/%s/%s",
				report.Pct(p.Baseline.Residency[cstate.C0]),
				report.Pct(p.Baseline.Residency[cstate.C1]),
				report.Pct(p.Baseline.Residency[cstate.C6])),
			fmt.Sprintf("%s/%s",
				report.Pct(p.NoC6.Residency[cstate.C0]),
				report.Pct(p.NoC6.Residency[cstate.C1])),
			fmt.Sprintf("%.1f%%", p.AvgLatReductionPct),
			fmt.Sprintf("%.1f%%", p.TailLatReductionPct),
			fmt.Sprintf("%.1f%%", p.AvgPReductionPct),
		)
	}
	switch r.Service {
	case "mysql":
		t.Notes = append(t.Notes, "paper: >=40% baseline C6 residency; 4-10% latency gain from disabling C6; 22-56% AW power reduction")
	case "kafka":
		t.Notes = append(t.Notes, "paper: >60% C6 residency at low rate; 4-5% latency gain; >56% AW power reduction")
	}
	return t
}
