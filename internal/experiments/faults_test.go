package experiments

import (
	"strings"
	"testing"
)

// TestFaultsExperimentQuick drives the crash-under-spike study on a
// small fleet and checks the shape the table relies on: one run per
// controller, healthy runs fault-free, faulted runs showing the crash
// exposure (down node-epochs and the matching restarts), and the table
// rendering with one row per controller.
func TestFaultsExperimentQuick(t *testing.T) {
	o := scenarioQuick()
	o.Nodes = 4
	r, err := Faults(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 4 || r.Crashed != 1 {
		t.Fatalf("fleet shape = %d nodes / %d crashed, want 4/1", r.Nodes, r.Crashed)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (oracle, reactive)", len(r.Runs))
	}
	for _, run := range r.Runs {
		if downEpochs(run.Healthy) != 0 || run.Healthy.Restarts != 0 {
			t.Errorf("%s: healthy run shows faults (%d down epochs, %d restarts)",
				run.Controller, downEpochs(run.Healthy), run.Healthy.Restarts)
		}
		if downEpochs(run.Faulted) == 0 {
			t.Errorf("%s: faulted run shows no down node-epochs", run.Controller)
		}
		if run.Faulted.Restarts != r.Crashed {
			t.Errorf("%s: restarts = %d, want %d (one per crashed node)",
				run.Controller, run.Faulted.Restarts, r.Crashed)
		}
		if run.Faulted.AvgFleetPowerW <= 0 || run.Healthy.AvgFleetPowerW <= 0 {
			t.Errorf("%s: non-positive fleet power", run.Controller)
		}
	}
	tbl := r.Table()
	if len(tbl.Rows) != 2 {
		t.Fatalf("table rows = %d, want 2", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Title, "Crash under spike") {
		t.Errorf("table title = %q", tbl.Title)
	}
}
