package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cstate"
)

func TestTable1(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(r.Rows))
	}
	// The C6A model power must land near the Table 1 constant (~0.30 W).
	if math.Abs(r.ModelC6APowerW-0.30) > 0.02 {
		t.Errorf("model C6A power = %v", r.ModelC6APowerW)
	}
	if math.Abs(r.ModelC6AEPowerW-0.235) > 0.02 {
		t.Errorf("model C6AE power = %v", r.ModelC6AEPowerW)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"C6A (P1)", "C6AE (Pn)", "133", "600"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2().Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"In-place S/R", "Coherent", "Flushed", "PG/Ret/Active"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3(t *testing.T) {
	r := Table3()
	if r.C6ARange[0] < 0.28 || r.C6ARange[1] > 0.33 {
		t.Errorf("C6A range = %v", r.C6ARange)
	}
	if r.C6AERange[0] < 0.21 || r.C6AERange[1] > 0.26 {
		t.Errorf("C6AE range = %v", r.C6AERange)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Overall") {
		t.Error("Table 3 missing overall row")
	}
}

func TestTable4(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AW (This work)") {
		t.Error("Table 4 missing AW row")
	}
}

func TestMotivationMatchesPaper(t *testing.T) {
	r := Motivation()
	if len(r.Cases) != 3 {
		t.Fatal("want 3 motivation cases")
	}
	for _, c := range r.Cases {
		if math.Abs(c.SavingsPct-c.PaperPct) > 2 {
			t.Errorf("%s: model %.1f%% vs paper %.0f%%", c.Name, c.SavingsPct, c.PaperPct)
		}
	}
}

func TestTransitionLatency(t *testing.T) {
	r := TransitionLatency()
	if r.Latencies.SpeedupVsC6 < 800 {
		t.Errorf("speedup = %.0f, want ~900+", r.Latencies.SpeedupVsC6)
	}
	if len(r.FlushSweep) != 10 {
		t.Errorf("flush sweep points = %d", len(r.FlushSweep))
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	r := Validation(QuickOptions())
	if len(r.Results) != 4 {
		t.Fatal("want 4 validation workloads")
	}
	for _, res := range r.Results {
		if res.AccuracyPercent < 90 {
			t.Errorf("%s accuracy %.1f%% below 90%%", res.Workload, res.AccuracyPercent)
		}
	}
}

func TestSnoopImpact(t *testing.T) {
	r := SnoopImpact()
	if math.Abs(r.Analysis.SavingsNoSnoops()-79.2) > 1 {
		t.Errorf("quiet savings = %v", r.Analysis.SavingsNoSnoops())
	}
	if len(r.Rows) == 0 {
		t.Fatal("no sweep rows")
	}
}

func TestFigure8Quick(t *testing.T) {
	r, err := Figure8(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// Power reduction positive everywhere (paper: 10-38%).
		if p.AvgPReductionPct <= 0 {
			t.Errorf("rate %.0f: nonpositive power reduction %.1f%%", p.RateQPS, p.AvgPReductionPct)
		}
		// <~1.5% latency degradation.
		if p.AvgLatDegradationPct > 1.5 {
			t.Errorf("rate %.0f: avg latency degradation %.2f%%", p.RateQPS, p.AvgLatDegradationPct)
		}
		// Worst-case transition impact is tiny (100ns vs 117us network).
		if p.WorstE2EPct > 0.2 {
			t.Errorf("rate %.0f: worst e2e %.3f%%", p.RateQPS, p.WorstE2EPct)
		}
		if p.ExpectedE2EPct > p.WorstE2EPct+1e-9 {
			t.Errorf("rate %.0f: expected %.4f%% exceeds worst %.4f%%", p.RateQPS, p.ExpectedE2EPct, p.WorstE2EPct)
		}
		// Scalability should be positive and below 100%.
		if p.ScalabilityPct <= 0 || p.ScalabilityPct >= 100 {
			t.Errorf("rate %.0f: scalability %.0f%%", p.RateQPS, p.ScalabilityPct)
		}
	}
	// Savings decline from mid to high load.
	if r.Points[1].AvgPReductionPct <= r.Points[2].AvgPReductionPct {
		t.Errorf("savings not declining with load: %v", r.Points)
	}
	// Baseline C6 residency only at low load (Fig. 8(a)).
	if r.Points[0].Baseline.Residency[cstate.C6] < 0.05 {
		t.Error("no C6 residency at 10KQPS")
	}
	if r.Points[2].Baseline.Residency[cstate.C6] > 0.02 {
		t.Error("C6 residency at 500KQPS")
	}
	for _, tbl := range []interface{ Render(*bytes.Buffer) error }{} {
		_ = tbl
	}
	var buf bytes.Buffer
	for _, err := range []error{
		r.ResidencyTable().Render(&buf), r.SavingsTable().Render(&buf),
		r.DegradationTable().Render(&buf), r.ScalabilityTable().Render(&buf),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFigure9Quick(t *testing.T) {
	r, err := Figure9(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 || len(r.Points[0].Results) != 3 {
		t.Fatal("unexpected result shape")
	}
	// At every rate: NT_No_C6,No_C1E has the highest power (Fig. 9(c)).
	for _, p := range r.Points {
		ntBase, noC6, noC1E := p.Results[0], p.Results[1], p.Results[2]
		if !(noC1E.PackagePowerW >= noC6.PackagePowerW && noC6.PackagePowerW >= ntBase.PackagePowerW-0.5) {
			t.Errorf("rate %.0f: power ordering violated: %.1f / %.1f / %.1f",
				p.RateQPS, ntBase.PackagePowerW, noC6.PackagePowerW, noC1E.PackagePowerW)
		}
	}
	// At low load, disabling C6 improves average latency.
	low := r.Points[0]
	if low.Results[1].EndToEnd.AvgUS >= low.Results[0].EndToEnd.AvgUS {
		t.Error("NT_No_C6 did not improve latency at low load")
	}
	var buf bytes.Buffer
	for _, err := range []error{
		r.LatencyTable().Render(&buf), r.PowerTable().Render(&buf), r.ResidencyTable().Render(&buf),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFigure10Quick(t *testing.T) {
	r, err := Figure10(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AvgReductionPct) != 3 {
		t.Fatal("want 3 config averages")
	}
	// Paper ordering: savings vs NT_Baseline < NT_No_C6 < NT_No_C6,No_C1E
	// (23.5% / 28.6% / 35.3%).
	if !(r.AvgReductionPct[0] < r.AvgReductionPct[2]) {
		t.Errorf("savings ordering violated: %v", r.AvgReductionPct)
	}
	for i, v := range r.AvgReductionPct {
		// Paper averages: 23.5% / 28.6% / 35.3%, with per-rate values up
		// to ~71%; allow a generous band around those magnitudes.
		if v < 10 || v > 70 {
			t.Errorf("config %d avg reduction %.1f%% outside plausible band", i, v)
		}
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFigure11Quick(t *testing.T) {
	r, err := Figure11(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	high := r.Points[len(r.Points)-1]
	// Sec. 7.3: the AW Turbo config sustains more boost than the C1-parked
	// config at high load.
	awTurbo := r.result(high, "T_C6A,No_C6,No_C1E").TurboFraction
	c1Turbo := r.result(high, "T_No_C6,No_C1E").TurboFraction
	if awTurbo <= c1Turbo {
		t.Errorf("AW turbo %.2f not above C1-parked %.2f", awTurbo, c1Turbo)
	}
	// And the AW config's average latency at high load is at least as good
	// as the C1-parked Turbo config.
	awLat := r.result(high, "T_C6A,No_C6,No_C1E").EndToEnd.AvgUS
	c1Lat := r.result(high, "T_No_C6,No_C1E").EndToEnd.AvgUS
	if awLat > c1Lat*1.02 {
		t.Errorf("AW latency %.1f worse than C1-parked %.1f", awLat, c1Lat)
	}
	var buf bytes.Buffer
	for _, err := range []error{r.Table().Render(&buf), r.TurboFractionTable().Render(&buf)} {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFigure12Quick(t *testing.T) {
	r, err := Figure12(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatal("want low/mid/high")
	}
	for _, p := range r.Points {
		// Paper Fig. 12(a): significant C6 residency in the baseline.
		if p.Baseline.Residency[cstate.C6] < 0.2 {
			t.Errorf("%s: baseline C6 residency %.2f too low", p.Label, p.Baseline.Residency[cstate.C6])
		}
		// Disabling C6 improves latency.
		if p.AvgLatReductionPct <= 0 {
			t.Errorf("%s: no latency gain from disabling C6", p.Label)
		}
		// AW recovers large power savings vs the C6-disabled config.
		if p.AvgPReductionPct < 15 {
			t.Errorf("%s: AW power reduction %.1f%% too small", p.Label, p.AvgPReductionPct)
		}
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFigure13Quick(t *testing.T) {
	r, err := Figure13(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatal("want low/high")
	}
	low := r.Points[0]
	if low.Baseline.Residency[cstate.C6] < 0.3 {
		t.Errorf("low-rate Kafka C6 residency %.2f too small", low.Baseline.Residency[cstate.C6])
	}
	if low.AvgPReductionPct < 30 {
		t.Errorf("low-rate AW power reduction %.1f%% (paper: >56%%)", low.AvgPReductionPct)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable5Quick(t *testing.T) {
	r, err := Table5(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DeltaW <= 0 {
			t.Errorf("QPS %.0f: nonpositive delta", row.QPS)
		}
		// Paper magnitudes: $0.3-0.6M per 100K servers per year.
		if row.SavingsPerYearM < 0.05 || row.SavingsPerYearM > 2 {
			t.Errorf("QPS %.0f: savings %.2fM implausible", row.QPS, row.SavingsPerYearM)
		}
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	n := o.normalize()
	if n.Seed == 0 || n.Duration == 0 || len(n.Rates) == 0 {
		t.Fatal("normalize did not fill defaults")
	}
}
