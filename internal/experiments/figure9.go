package experiments

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

// Figure9Result compares the three No-Turbo tuned configurations
// (paper Fig. 9): NT_Baseline, NT_No_C6, NT_No_C6,No_C1E.
type Figure9Result struct {
	Configs []governor.Config
	// Points[rate][config].
	Points []Figure9Point
}

// Figure9Point is one load point across the three configurations.
type Figure9Point struct {
	RateQPS float64
	Results []server.Result // parallel to Configs
}

// Figure9 runs the tuned-configuration study.
func Figure9(o Options) (Figure9Result, error) {
	o = o.normalize()
	out := Figure9Result{
		Configs: []governor.Config{governor.NTBaseline, governor.NTNoC6, governor.NTNoC6NoC1E},
	}
	profile := workload.Memcached()
	points := make([]Figure9Point, len(o.Rates))
	err := parallelMap(len(o.Rates), func(i int) error {
		rate := o.Rates[i]
		p := Figure9Point{RateQPS: rate}
		for _, cfg := range out.Configs {
			res, err := o.runService(cfg, profile, rate, 0)
			if err != nil {
				return err
			}
			p.Results = append(p.Results, res)
		}
		points[i] = p
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

// LatencyTable renders Fig. 9(a,b): average and tail latency.
func (r Figure9Result) LatencyTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 9(a,b): Avg / p99 end-to-end latency (us) per tuned configuration",
		Headers: []string{"Rate (KQPS)"},
	}
	for _, c := range r.Configs {
		t.Headers = append(t.Headers, c.Name+" avg", c.Name+" p99")
	}
	for _, p := range r.Points {
		row := []any{fmt.Sprintf("%.0f", p.RateQPS/1000)}
		for _, res := range p.Results {
			row = append(row, report.US(res.EndToEnd.AvgUS), report.US(res.EndToEnd.P99US))
		}
		t.AddRow(row...)
	}
	return t
}

// PowerTable renders Fig. 9(c): package power.
func (r Figure9Result) PowerTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 9(c): Package power (W) per tuned configuration",
		Headers: []string{"Rate (KQPS)"},
	}
	for _, c := range r.Configs {
		t.Headers = append(t.Headers, c.Name)
	}
	for _, p := range r.Points {
		row := []any{fmt.Sprintf("%.0f", p.RateQPS/1000)}
		for _, res := range p.Results {
			row = append(row, report.W(res.PackagePowerW))
		}
		t.AddRow(row...)
	}
	return t
}

// ResidencyTable renders Fig. 9(d).
func (r Figure9Result) ResidencyTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 9(d): C-state residency per tuned configuration",
		Headers: []string{"Rate (KQPS)", "Config", "C0", "C1", "C1E", "C6"},
	}
	for _, p := range r.Points {
		for i, res := range p.Results {
			t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), r.Configs[i].Name,
				report.Pct(res.Residency[cstate.C0]),
				report.Pct(res.Residency[cstate.C1]),
				report.Pct(res.Residency[cstate.C1E]),
				report.Pct(res.Residency[cstate.C6]))
		}
	}
	return t
}

// Figure10Result compares AW against the three tuned configurations
// (paper Fig. 10): power reduction plus avg/tail latency reduction.
type Figure10Result struct {
	Configs []governor.Config
	Points  []Figure10Point
	// AvgReductionPct per config (paper: 23.5%, 28.6%, 35.3%).
	AvgReductionPct []float64
}

// Figure10Point is one load point.
type Figure10Point struct {
	RateQPS float64
	AW      server.Result
	// Per tuned config, parallel to Configs:
	PowerReductionPct   []float64
	AvgLatReductionPct  []float64
	TailLatReductionPct []float64
}

// Figure10 runs AW (Turbo enabled) against the three No-Turbo configs.
func Figure10(o Options) (Figure10Result, error) {
	o = o.normalize()
	out := Figure10Result{
		Configs: []governor.Config{governor.NTBaseline, governor.NTNoC6, governor.NTNoC6NoC1E},
	}
	profile := workload.Memcached()
	cat := cstate.Skylake()
	vec := power.VectorFromCatalog(cat)
	points := make([]Figure10Point, len(o.Rates))
	err := parallelMap(len(o.Rates), func(pi int) error {
		rate := o.Rates[pi]
		aw, err := o.runService(governor.AW, profile, rate, 0)
		if err != nil {
			return err
		}
		p := Figure10Point{RateQPS: rate, AW: aw}
		for _, cfg := range out.Configs {
			res, err := o.runService(cfg, profile, rate, 0)
			if err != nil {
				return err
			}
			// Power reduction via the Sec. 6.2 transform applied to the
			// tuned config's measured residencies: its C1/C1E time runs
			// at C6A/C6AE power under AW.
			red := power.TurboSavings(res.Residency[cstate.C1], res.Residency[cstate.C1E],
				res.AvgCorePowerW, vec)
			p.PowerReductionPct = append(p.PowerReductionPct, red)
			p.AvgLatReductionPct = append(p.AvgLatReductionPct,
				pctOver(res.EndToEnd.AvgUS, aw.EndToEnd.AvgUS))
			p.TailLatReductionPct = append(p.TailLatReductionPct,
				pctOver(res.EndToEnd.P99US, aw.EndToEnd.P99US))
		}
		points[pi] = p
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	sums := make([]float64, len(out.Configs))
	for _, p := range out.Points {
		for i := range out.Configs {
			sums[i] += p.PowerReductionPct[i]
		}
	}
	for i := range sums {
		out.AvgReductionPct = append(out.AvgReductionPct, sums[i]/float64(len(out.Points)))
	}
	return out, nil
}

// Table renders Fig. 10.
func (r Figure10Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 10: AW power and latency reduction over tuned configurations",
		Headers: []string{"Rate (KQPS)"},
	}
	for _, c := range r.Configs {
		t.Headers = append(t.Headers, c.Name+" dP", c.Name+" dAvg", c.Name+" dTail")
	}
	for _, p := range r.Points {
		row := []any{fmt.Sprintf("%.0f", p.RateQPS/1000)}
		for i := range r.Configs {
			row = append(row,
				fmt.Sprintf("%.1f%%", p.PowerReductionPct[i]),
				fmt.Sprintf("%.1f%%", p.AvgLatReductionPct[i]),
				fmt.Sprintf("%.1f%%", p.TailLatReductionPct[i]))
		}
		t.AddRow(row...)
	}
	avg := []any{"Avg"}
	for i := range r.Configs {
		avg = append(avg, fmt.Sprintf("%.1f%%", r.AvgReductionPct[i]), "", "")
	}
	t.AddRow(avg...)
	t.Notes = append(t.Notes, "paper avg power reductions: 23.5% / 28.6% / 35.3%")
	return t
}
