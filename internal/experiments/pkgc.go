package experiments

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PkgIdleResult extends the paper toward its companion work (AgilePkgC,
// reference [9]): core C-states alone leave the uncore burning ~30 W.
// A package idle state that engages when all cores are idle recovers
// uncore power — but only if its entry hysteresis is agile enough to fit
// inside the short all-idle windows that latency-critical load leaves.
type PkgIdleResult struct {
	Points []PkgIdlePoint
}

// PkgIdlePoint is one (rate, hysteresis) measurement under the AW
// platform configuration.
type PkgIdlePoint struct {
	RateQPS         float64
	EntryDelay      sim.Time
	PkgIdleFraction float64
	UncoreAvgW      float64
	PackagePowerW   float64
}

// PkgIdle sweeps package-state entry hysteresis at two load levels.
func PkgIdle(o Options) (PkgIdleResult, error) {
	o = o.normalize()
	var out PkgIdleResult
	profile := workload.Memcached()
	rates := []float64{o.Rates[0]}
	if len(o.Rates) > 1 {
		rates = append(rates, o.Rates[len(o.Rates)/2])
	}
	delays := []sim.Time{600 * sim.Microsecond, 100 * sim.Microsecond, 10 * sim.Microsecond}
	points := make([]PkgIdlePoint, len(rates)*len(delays))
	err := parallelMap(len(points), func(i int) error {
		rate, delay := rates[i/len(delays)], delays[i%len(delays)]
		res, err := runner.Default().Run(server.Config{
			Platform:       governor.AW,
			Profile:        profile,
			RatePerSec:     rate,
			Duration:       o.Duration,
			Warmup:         o.Warmup,
			Seed:           o.Seed,
			PkgIdleEnabled: true,
			PkgEntryDelay:  delay,
			Dispatch:       o.Dispatch,
			LoadGen:        o.LoadGen,

			ClosedLoopConnections: o.Connections,
		})
		if err != nil {
			return err
		}
		points[i] = PkgIdlePoint{
			RateQPS: rate, EntryDelay: delay,
			PkgIdleFraction: res.PkgIdleFraction,
			UncoreAvgW:      res.UncoreAvgW,
			PackagePowerW:   res.PackagePowerW,
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

// Table renders the package idle study.
func (r PkgIdleResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Extension: package idle state on top of AW (AgilePkgC direction)",
		Headers: []string{"Rate (KQPS)", "Entry hysteresis", "Pkg-idle residency", "Uncore power", "Package power"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), p.EntryDelay.String(),
			report.Pct(p.PkgIdleFraction), report.W(p.UncoreAvgW), report.W(p.PackagePowerW))
	}
	t.Notes = append(t.Notes,
		"legacy hysteresis (600us) barely engages under microsecond-scale idle;",
		"an agile package state (10us) recovers a large uncore share at low load")
	return t
}
