package experiments

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

// BreakdownResult decomposes server-side latency into wake / queue /
// service components per configuration — the mechanism view behind
// Figs. 9-11: where exactly each configuration's latency goes.
type BreakdownResult struct {
	Points []BreakdownPoint
}

// BreakdownPoint is one (rate, config) decomposition.
type BreakdownPoint struct {
	RateQPS float64
	Config  string
	B       server.BreakdownSummary
	Total   float64 // avg server latency (us)
}

// Breakdown runs the decomposition for the key configurations.
func Breakdown(o Options) (BreakdownResult, error) {
	o = o.normalize()
	var out BreakdownResult
	profile := workload.Memcached()
	configs := []governor.Config{
		governor.NTBaseline, governor.NTNoC6NoC1E, governor.AW, governor.TC6ANoC6NoC1E,
	}
	rates := []float64{o.Rates[0], o.Rates[len(o.Rates)-1]}
	points := make([]BreakdownPoint, len(rates)*len(configs))
	err := parallelMap(len(points), func(i int) error {
		rate, cfg := rates[i/len(configs)], configs[i%len(configs)]
		res, err := o.runService(cfg, profile, rate, 0)
		if err != nil {
			return err
		}
		points[i] = BreakdownPoint{
			RateQPS: rate, Config: cfg.Name,
			B: res.Breakdown, Total: res.Server.AvgUS,
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Points = points
	return out, nil
}

// Table renders the decomposition.
func (r BreakdownResult) Table() *report.Table {
	t := &report.Table{
		Title: "Latency decomposition: wake / queue / service (avg us, server-side)",
		Headers: []string{"Rate (KQPS)", "Config", "Wake", "Queue", "Service",
			"Total", "Wake p99"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000), p.Config,
			fmt.Sprintf("%.2f", p.B.Wake.AvgUS),
			fmt.Sprintf("%.2f", p.B.Queue.AvgUS),
			fmt.Sprintf("%.2f", p.B.Service.AvgUS),
			fmt.Sprintf("%.2f", p.Total),
			fmt.Sprintf("%.1f", p.B.Wake.P99US))
	}
	t.Notes = append(t.Notes,
		"legacy deep states show up as wake latency at low load;",
		"AW's C6A caps wake at the ~2us software path")
	return t
}
