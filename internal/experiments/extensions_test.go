package experiments

import (
	"bytes"
	"testing"

	"repro/internal/governor"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRaceToHaltQuick(t *testing.T) {
	o := QuickOptions()
	o.Rates = []float64{50e3, 300e3}
	r, err := RaceToHalt(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatal("want 2 points")
	}
	for _, p := range r.Points {
		// Race+C6A must beat Race+C1 on energy (same latency class).
		if p.RaceAWMJ >= p.RaceC1MJ {
			t.Errorf("rate %.0f: race+C6A %.3f mJ not below race+C1 %.3f", p.RateQPS, p.RaceAWMJ, p.RaceC1MJ)
		}
		// And pacing at Pn has much worse latency than either race mode.
		if p.Pace.EndToEnd.P99US <= p.RaceAW.EndToEnd.P99US {
			t.Errorf("rate %.0f: pacing tail %.1f not above race tail %.1f",
				p.RateQPS, p.Pace.EndToEnd.P99US, p.RaceAW.EndToEnd.P99US)
		}
		// The headline: C6A makes race-to-halt at least as efficient as
		// pacing.
		if p.RaceAWMJ > p.PaceMJ*1.05 {
			t.Errorf("rate %.0f: race+C6A %.3f mJ not competitive with pacing %.3f",
				p.RateQPS, p.RaceAWMJ, p.PaceMJ)
		}
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPkgIdleQuick(t *testing.T) {
	o := QuickOptions()
	o.Rates = []float64{10e3}
	r, err := PkgIdle(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Residency grows as hysteresis shrinks (points ordered 600/100/10us).
	if !(r.Points[2].PkgIdleFraction >= r.Points[1].PkgIdleFraction &&
		r.Points[1].PkgIdleFraction >= r.Points[0].PkgIdleFraction) {
		t.Errorf("pkg-idle residency not monotone in hysteresis: %+v", r.Points)
	}
	// The agile hysteresis must actually engage at 10KQPS.
	if r.Points[2].PkgIdleFraction < 0.02 {
		t.Errorf("10us hysteresis residency %.3f too small", r.Points[2].PkgIdleFraction)
	}
	// Uncore power drops accordingly.
	if r.Points[2].UncoreAvgW >= 30 {
		t.Errorf("uncore power %.1f did not drop", r.Points[2].UncoreAvgW)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPkgIdleDisabledByDefault(t *testing.T) {
	res, err := server.RunConfig(server.Config{
		Platform: governor.AW, Profile: workload.Memcached(),
		RatePerSec: 10e3, Duration: 60 * sim.Millisecond,
		Warmup: 10 * sim.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PkgIdleFraction != 0 {
		t.Fatal("package idle engaged while disabled")
	}
	if diff := res.UncoreAvgW - 30; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("uncore power = %v, want constant 30", res.UncoreAvgW)
	}
}

func TestPkgIdleAccounting(t *testing.T) {
	res, err := server.RunConfig(server.Config{
		Platform: governor.AW, Profile: workload.Memcached(),
		RatePerSec: 5e3, Duration: 100 * sim.Millisecond,
		Warmup: 10 * sim.Millisecond, Seed: 4,
		PkgIdleEnabled: true, PkgEntryDelay: 10 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PkgIdleFraction <= 0 || res.PkgIdleFraction >= 1 {
		t.Fatalf("pkg idle fraction = %v", res.PkgIdleFraction)
	}
	// Uncore average must interpolate between low (12) and high (30).
	want := 12*res.PkgIdleFraction + 30*(1-res.PkgIdleFraction)
	if diff := res.UncoreAvgW - want; diff > 0.5 || diff < -0.5 {
		t.Fatalf("uncore avg %.2f vs expected %.2f", res.UncoreAvgW, want)
	}
	// Package power must use the measured uncore average.
	wantPkg := res.AvgCorePowerW*20 + res.UncoreAvgW
	if diff := res.PackagePowerW - wantPkg; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("package power %.3f vs %.3f", res.PackagePowerW, wantPkg)
	}
}

func TestProportionalityQuick(t *testing.T) {
	r, err := Proportionality(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// AW must be at least as proportional as the baseline.
	if r.EPAW < r.EPBaseline {
		t.Fatalf("AW EP %.3f below baseline %.3f", r.EPAW, r.EPBaseline)
	}
	// Both scores in (0, 1]; servers are not perfectly proportional.
	for _, ep := range []float64{r.EPBaseline, r.EPAW} {
		if ep <= 0 || ep > 1 {
			t.Fatalf("EP score %v out of range", ep)
		}
	}
	// Power grows with load for both platforms.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].BaselinePkgW <= r.Points[i-1].BaselinePkgW {
			t.Fatal("baseline power not increasing with load")
		}
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownQuick(t *testing.T) {
	r, err := Breakdown(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 8 {
		t.Fatalf("points = %d, want 2 rates x 4 configs", len(r.Points))
	}
	// Find NT_Baseline and the AW C6A config at the low rate.
	var ntWake, awWake float64
	for _, p := range r.Points[:4] {
		switch p.Config {
		case "NT_Baseline":
			ntWake = p.B.Wake.AvgUS
		case "T_C6A,No_C6,No_C1E":
			awWake = p.B.Wake.AvgUS
		}
	}
	if awWake >= ntWake {
		t.Fatalf("AW wake %.2f not below NT baseline %.2f at low load", awWake, ntWake)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}
