package experiments

import (
	"bytes"
	"testing"
)

func TestDispatchQuick(t *testing.T) {
	o := QuickOptions()
	o.Rates = []float64{100e3, 500e3}
	r, err := Dispatch(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 4 {
		t.Fatalf("policies = %v, want 4", r.Policies)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(r.Points))
	}
	for _, p := range r.Points {
		// Every policy pair must produce distinct results at every rate.
		for i := 0; i < len(p.Results); i++ {
			for j := i + 1; j < len(p.Results); j++ {
				a, b := p.Results[i], p.Results[j]
				if a.Residency == b.Residency && a.Server.P99US == b.Server.P99US {
					t.Errorf("rate %.0f: %s and %s identical",
						p.RateQPS, r.Policies[i], r.Policies[j])
				}
			}
		}
	}
	// Deterministic: a second run reproduces the first exactly (also
	// exercises the runner cache path).
	again, err := Dispatch(o)
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range r.Points {
		for i := range p.Results {
			if p.Results[i].AvgCorePowerW != again.Points[pi].Results[i].AvgCorePowerW {
				t.Fatalf("dispatch experiment not deterministic (%s @ %.0f)",
					r.Policies[i], p.RateQPS)
			}
		}
	}
	// The consolidation trade-off shows at the low-load point: packed
	// draws less core power than round-robin but pays a worse tail.
	low := r.Points[0]
	idx := func(name string) int {
		for i, p := range r.Policies {
			if p == name {
				return i
			}
		}
		t.Fatalf("policy %s missing", name)
		return -1
	}
	rr := low.Results[idx("round-robin")]
	packed := low.Results[idx("packed")]
	if packed.Server.P99US <= rr.Server.P99US {
		t.Errorf("packed p99 %.1f not above round-robin %.1f", packed.Server.P99US, rr.Server.P99US)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.ResidencyTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no table output")
	}
}
