package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cstate"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/snoop"
)

// Table1Result reproduces Table 1: the C-state hierarchy with AW's new
// states. The C6A/C6AE power values come from the live PPA model, not
// constants.
type Table1Result struct {
	Rows []Table1Row
	// ModelC6APowerW / ModelC6AEPowerW are the Architecture-derived
	// midpoints backing the ~0.3 W / ~0.23 W entries.
	ModelC6APowerW, ModelC6AEPowerW float64
}

// Table1Row is one line of Table 1.
type Table1Row struct {
	State           string
	TransitionTime  sim.Time
	TargetResidency sim.Time
	PowerW          float64
}

// Table1 builds the table from the catalog and the PPA model.
func Table1() Table1Result {
	cat := cstate.Skylake()
	arch := core.NewArchitecture()
	res := Table1Result{
		ModelC6APowerW:  arch.C6APower(),
		ModelC6AEPowerW: arch.C6AEPower(),
	}
	add := func(name string, tt, tr sim.Time, p float64) {
		res.Rows = append(res.Rows, Table1Row{State: name, TransitionTime: tt, TargetResidency: tr, PowerW: p})
	}
	add("C0 (P1)", 0, 0, cat.C0PowerP1)
	add("C0 (Pn)", 0, 0, cat.C0PowerPn)
	for _, id := range []cstate.ID{cstate.C1, cstate.C6A, cstate.C1E, cstate.C6AE, cstate.C6} {
		p := cat.Params(id)
		name := p.Name
		switch id {
		case cstate.C1, cstate.C6A:
			name += " (P1)"
		case cstate.C1E, cstate.C6AE:
			name += " (Pn)"
		}
		watts := p.PowerWatts
		// The AW rows report the live model output.
		switch id {
		case cstate.C6A:
			watts = arch.C6APower()
		case cstate.C6AE:
			watts = arch.C6AEPower()
		}
		add(name, p.TransitionTime, p.TargetResidency, watts)
	}
	return res
}

// Table renders Table1 as a report table.
func (r Table1Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Table 1: Core C-states (Skylake server + AgileWatts)",
		Headers: []string{"Core C-state", "Transition time", "Target residency", "Power per core"},
	}
	for _, row := range r.Rows {
		tt, tr := "N/A", "N/A"
		if row.TransitionTime > 0 {
			tt = row.TransitionTime.String()
			tr = row.TargetResidency.String()
		}
		t.AddRow(row.State, tt, tr, report.W(row.PowerW))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"C6A/C6AE power derived from the PPA model: %.0fmW / %.0fmW (paper: ~300 / ~230)",
		r.ModelC6APowerW*1000, r.ModelC6AEPowerW*1000))
	return t
}

// Table2 renders the component-state matrix (paper Table 2).
func Table2() *report.Table {
	t := &report.Table{
		Title:   "Table 2: Core components' states per C-state",
		Headers: []string{"C-State", "Clocks", "ADPLL", "L1/L2 Cache", "Voltage", "Context"},
	}
	for _, row := range cstate.ComponentTable() {
		t.AddRow(row.State.String(), row.Clocks.String(), row.ADPLL.String(),
			row.Caches.String(), row.Voltage.String(), row.Context.String())
	}
	return t
}

// Table3Result carries the PPA breakdown with the live model rows.
type Table3Result struct {
	Rows      []core.Table3Row
	C6ARange  [2]float64
	C6AERange [2]float64
	AreaLo    float64
	AreaHi    float64
}

// Table3 computes the AW area and power requirements (paper Table 3).
func Table3() Table3Result {
	arch := core.NewArchitecture()
	res := Table3Result{Rows: arch.Table3()}
	res.C6ARange[0], res.C6ARange[1] = arch.C6APowerRange()
	res.C6AERange[0], res.C6AERange[1] = arch.C6AEPowerRange()
	res.AreaLo, res.AreaHi = arch.AreaOverheadRange()
	return res
}

// Table renders Table3.
func (r Table3Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Table 3: Area and power requirements of AW (per core)",
		Headers: []string{"Component", "Sub-component", "Area requirement", "C6A power (mW)", "C6AE power (mW)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Component, row.SubComponent, row.Area,
			report.MWRange(row.C6APowerW), report.MWRange(row.C6AEPowerW))
	}
	t.Notes = append(t.Notes,
		"paper overall: 290-315 mW (C6A), 227-243 mW (C6AE), 3-7% core area")
	return t
}

// Table4 renders the power-gating scheme comparison (paper Table 4).
func Table4() *report.Table {
	t := &report.Table{
		Title:   "Table 4: Comparison of core power-gating schemes",
		Headers: []string{"Technique", "Core type", "Trigger", "Power-gated blocks", "Wake-up overhead"},
	}
	for _, row := range core.Table4(core.NewUFPG()) {
		t.AddRow(row.Technique, row.CoreType, row.Trigger, row.PowerGatedBlock, row.WakeupOverhead)
	}
	return t
}

// MotivationResult carries the Sec. 2 upper-bound analysis.
type MotivationResult struct {
	Cases []MotivationCase
}

// MotivationCase is one workload point from prior work.
type MotivationCase struct {
	Name          string
	RC0, RC1, RC6 float64
	SavingsPct    float64
	PaperPct      float64
}

// Motivation reproduces the Sec. 2 estimates: 23 % / 41 % / 55 % core
// power reduction potential.
func Motivation() MotivationResult {
	vec := power.VectorFromCatalog(cstate.Skylake())
	cases := []MotivationCase{
		{Name: "search @ 50% load", RC0: 0.50, RC1: 0.45, RC6: 0.05, PaperPct: 23},
		{Name: "search @ 25% load", RC0: 0.25, RC1: 0.55, RC6: 0.20, PaperPct: 41},
		{Name: "key-value @ 20% load", RC0: 0.20, RC1: 0.80, RC6: 0.00, PaperPct: 55},
	}
	for i := range cases {
		c := &cases[i]
		c.SavingsPct = power.MotivationSavings(c.RC0, c.RC1, c.RC6, vec)
	}
	return MotivationResult{Cases: cases}
}

// Table renders the motivation analysis.
func (r MotivationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Sec. 2 motivation: upper-bound AvgP savings of an ideal agile deep idle state",
		Headers: []string{"Workload", "RC0", "RC1", "RC6", "Savings (model)", "Savings (paper)"},
	}
	for _, c := range r.Cases {
		t.AddRow(c.Name, report.Pct(c.RC0), report.Pct(c.RC1), report.Pct(c.RC6),
			fmt.Sprintf("%.1f%%", c.SavingsPct), fmt.Sprintf("%.0f%%", c.PaperPct))
	}
	return t
}

// LatencyResult carries the Sec. 5.2 transition-latency analysis.
type LatencyResult struct {
	Latencies core.TransitionLatencies
	// FlushSweep shows C6 entry latency across dirty fractions at the
	// paper's 800 MHz flush frequency.
	FlushSweep []FlushPoint
}

// FlushPoint is one C6-entry condition.
type FlushPoint struct {
	DirtyFraction float64
	FreqHz        float64
	EntryLatency  sim.Time
}

// TransitionLatency computes the AW-vs-C6 latency analysis.
func TransitionLatency() LatencyResult {
	arch := core.NewArchitecture()
	res := LatencyResult{Latencies: arch.Latencies(0.5, 800e6)}
	for _, d := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		for _, f := range []float64{800e6, 2.2e9} {
			res.FlushSweep = append(res.FlushSweep, FlushPoint{
				DirtyFraction: d, FreqHz: f,
				EntryLatency: arch.C6.EntryLatency(d, f),
			})
		}
	}
	return res
}

// Table renders the latency analysis.
func (r LatencyResult) Table() *report.Table {
	l := r.Latencies
	t := &report.Table{
		Title:   "Sec. 5.2: C6A/C6AE vs C6 transition latency",
		Headers: []string{"Metric", "C6A", "C6AE", "C6 (50% dirty, 800MHz)"},
	}
	t.AddRow("entry", l.C6AEntry.String(), l.C6AEEntry.String(), l.C6Entry.String())
	t.AddRow("exit", l.C6AExit.String(), l.C6AEExit.String(), l.C6Exit.String())
	t.AddRow("round trip", l.C6ARoundTrip.String(), l.C6AERoundTrip.String(), l.C6RoundTrip.String())
	t.Notes = append(t.Notes, fmt.Sprintf("speedup vs C6: %.0fx (paper: up to ~900x)", l.SpeedupVsC6))
	for _, p := range r.FlushSweep {
		t.Notes = append(t.Notes, fmt.Sprintf("C6 entry at %.0f%% dirty, %.1fGHz: %v",
			p.DirtyFraction*100, p.FreqHz/1e9, p.EntryLatency))
	}
	return t
}

// ValidationResult wraps the Sec. 6.3 model validation.
type ValidationResult struct {
	Results []power.ValidationResult
}

// Validation runs the four-workload power-model validation.
func Validation(o Options) ValidationResult {
	o = o.normalize()
	return ValidationResult{Results: power.Validate(cstate.Skylake(), o.Seed)}
}

// Table renders validation accuracies.
func (r ValidationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Sec. 6.3: analytical power model validation",
		Headers: []string{"Workload", "Load points", "Model accuracy", "Paper accuracy"},
	}
	paper := map[string]string{
		"SPECpower": "96.1%", "Nginx": "95.2%", "Spark": "94.4%", "Hive": "94.9%",
	}
	for _, res := range r.Results {
		t.AddRow(res.Workload, len(res.Samples),
			fmt.Sprintf("%.1f%%", res.AccuracyPercent), paper[res.Workload])
	}
	return t
}

// SnoopResult wraps the Sec. 7.5 snoop analysis.
type SnoopResult struct {
	Analysis snoop.Analysis
	Rows     []snoop.Row
}

// SnoopImpact computes savings erosion under snoop traffic.
func SnoopImpact() SnoopResult {
	a := snoop.FromCatalog(cstate.Skylake())
	return SnoopResult{
		Analysis: a,
		Rows:     a.Sweep([]float64{0, 0.1, 0.25, 0.5, 0.75, 1.0}),
	}
}

// Table renders the snoop analysis.
func (r SnoopResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Sec. 7.5: impact of snoop traffic on AW savings (100% idle core, C1 vs C6A)",
		Headers: []string{"Snoop duty", "C1 effective", "C6A effective", "AW savings", "Loss vs quiet (pp)"},
	}
	for _, row := range r.Rows {
		t.AddRow(report.Pct(row.Duty), report.W(row.C1EffectiveW), report.W(row.C6AEffectiveW),
			fmt.Sprintf("%.1f%%", row.SavingsPercent), fmt.Sprintf("%.1f", row.LossVsNoSnoopPP))
	}
	t.Notes = append(t.Notes, "paper: 79% quiet, 68% saturated, ~11pp worst-case loss")
	return t
}
