package experiments

import (
	"bytes"
	"testing"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/sim"
)

func TestAMDQuick(t *testing.T) {
	o := QuickOptions()
	o.Rates = []float64{10e3, 200e3}
	r, err := AMD(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatal("want 2 points")
	}
	low := r.Points[0]
	// CC6 in use at low load in the all-states config.
	if low.AllStates.Residency[cstate.C6] < 0.1 {
		t.Errorf("low-load CC6 residency %.2f too small", low.AllStates.Residency[cstate.C6])
	}
	// Disabling CC6 improves tail latency but costs power.
	if low.TailReductionPct <= 0 {
		t.Error("no tail gain from disabling CC6")
	}
	if low.PowerPenaltyPct <= 0 {
		t.Error("no power penalty from disabling CC6")
	}
	// AW recovers a large share.
	if low.AWReductionPct < 20 {
		t.Errorf("AW recovery %.1f%% too small", low.AWReductionPct)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEPYCCatalogShape(t *testing.T) {
	c := cstate.EPYC()
	if c.Params(cstate.C6).Name != "CC6" {
		t.Error("deep state should be CC6")
	}
	if c.Params(cstate.C1E).Name != "C2" {
		t.Error("intermediate state should be C2")
	}
	// Power ordering preserved.
	if !(c.Params(cstate.C6).PowerWatts < c.Params(cstate.C6AE).PowerWatts &&
		c.Params(cstate.C6AE).PowerWatts < c.Params(cstate.C6A).PowerWatts &&
		c.Params(cstate.C6A).PowerWatts < c.Params(cstate.C1E).PowerWatts &&
		c.Params(cstate.C1E).PowerWatts < c.Params(cstate.C1).PowerWatts) {
		t.Error("EPYC power ordering violated")
	}
	// CC6 latency in the tens of microseconds (Sec. 5.5).
	if c.Params(cstate.C6).TransitionTime < 50*sim.Microsecond {
		t.Error("CC6 transition not tens of microseconds")
	}
}

func TestGovernorAblationQuick(t *testing.T) {
	o := QuickOptions()
	o.Rates = []float64{100e3}
	r, err := GovernorAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4 policies", len(r.Points))
	}
	byPolicy := map[string]GovernorAblationPoint{}
	for _, p := range r.Points {
		byPolicy[p.Policy] = p
	}
	// Static-deepest always picks C6. At mid load this thrashes the
	// 87us+46us C6 transition flows: latency is much worse than menu,
	// and the transition overhead (burned at active power) can even
	// exceed the residency savings — the reason predictive governors
	// exist.
	static := byPolicy[governor.PolicyStatic]
	menu := byPolicy[governor.PolicyMenu]
	if static.AvgUS <= menu.AvgUS {
		t.Errorf("static latency %.1f not above menu %.1f", static.AvgUS, menu.AvgUS)
	}
	if static.P99US <= menu.P99US {
		t.Errorf("static tail %.1f not above menu %.1f", static.P99US, menu.P99US)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestZoneAblation(t *testing.T) {
	r := ZoneAblation()
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// One zone: fast but violates in-rush.
	if r.Rows[0].MeetsInrush {
		t.Error("single-zone wake should violate in-rush")
	}
	// Five zones at 0.9x each meet the envelope.
	if !r.Rows[4].MeetsInrush {
		t.Error("five-zone wake should meet in-rush")
	}
	// Wake latency grows with zone count (fixed window per zone).
	if r.Rows[9].WakeLatency <= r.Rows[4].WakeLatency {
		t.Error("wake latency not growing with zones")
	}
	// Ten 15ns zones = 150ns wake: round trip blows the 100ns budget.
	if r.Rows[9].RoundTripOK {
		t.Error("10-zone round trip should exceed 100ns")
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPowerBudgetAblation(t *testing.T) {
	r := PowerBudgetAblation()
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base := r.Rows[0]
	for _, row := range r.Rows[1:] {
		// Every what-if removes a cost: all must be at or below the paper
		// design.
		if row.C6AWattsHi > base.C6AWattsHi+1e-9 {
			t.Errorf("%s: %.3f above paper design %.3f", row.Variant, row.C6AWattsHi, base.C6AWattsHi)
		}
	}
	// FIVR static loss is the largest lever (~100mW + its conversion).
	var noFivr PowerBudgetRow
	for _, row := range r.Rows {
		if row.Variant == "no FIVR static loss" {
			noFivr = row
		}
	}
	if base.C6AWattsLo-noFivr.C6AWattsLo < 0.09 {
		t.Errorf("FIVR static loss lever too small: %.3f", base.C6AWattsLo-noFivr.C6AWattsLo)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseAblationQuick(t *testing.T) {
	r, err := NoiseAblation(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// No noise (period -1, first point) allows the most C6 residency;
	// the noisiest setting (last point) allows the least.
	if r.Points[0].C6Residency <= r.Points[len(r.Points)-1].C6Residency {
		t.Errorf("C6 residency not declining with noise: %.2f vs %.2f",
			r.Points[0].C6Residency, r.Points[len(r.Points)-1].C6Residency)
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}
