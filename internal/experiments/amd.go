package experiments

import (
	"fmt"

	"repro/internal/cstate"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

// AMDResult reproduces the Sec. 5.5 argument: AMD EPYC servers running
// latency-critical applications disable the deep CC6 state (per vendor
// tuning guides), paying a large idle-power premium that an AW-style
// C6A state would recover.
type AMDResult struct {
	Points []AMDPoint
}

// AMDPoint is one load level on the EPYC-like platform.
type AMDPoint struct {
	RateQPS float64
	// AllStates: C1 + C2 + CC6 enabled.
	AllStates server.Result
	// Recommended: CC6 disabled ("Global C-State Control" off).
	Recommended server.Result
	// TailReductionPct is the p99 gain from disabling CC6.
	TailReductionPct float64
	// PowerPenaltyPct is the power increase from disabling CC6.
	PowerPenaltyPct float64
	// AWReductionPct is the power AW's C6A would recover from the
	// recommended configuration (C1/C2 residency at C6A/C6AE power).
	AWReductionPct float64
}

// AMD runs the EPYC analysis with Memcached.
func AMD(o Options) (AMDResult, error) {
	o = o.normalize()
	cat := cstate.EPYC()
	vec := power.VectorFromCatalog(cat)
	profile := workload.Memcached()

	all := governor.Config{Name: "EPYC_AllCStates",
		Menu: []cstate.ID{cstate.C1, cstate.C1E, cstate.C6}}
	rec := governor.Config{Name: "EPYC_NoCC6",
		Menu: []cstate.ID{cstate.C1, cstate.C1E}}

	runEPYC := func(cfg governor.Config, rate float64) (server.Result, error) {
		return server.RunConfig(server.Config{
			Catalog:    cat,
			Platform:   cfg,
			Profile:    profile,
			RatePerSec: rate,
			Duration:   o.Duration,
			Warmup:     o.Warmup,
			Seed:       o.Seed,
		})
	}

	var out AMDResult
	for _, rate := range o.Rates {
		allRes, err := runEPYC(all, rate)
		if err != nil {
			return out, err
		}
		recRes, err := runEPYC(rec, rate)
		if err != nil {
			return out, err
		}
		p := AMDPoint{RateQPS: rate, AllStates: allRes, Recommended: recRes}
		p.TailReductionPct = pctOver(allRes.EndToEnd.P99US, recRes.EndToEnd.P99US)
		p.PowerPenaltyPct = pctOver(recRes.AvgCorePowerW, allRes.AvgCorePowerW)
		p.AWReductionPct = power.TurboSavings(
			recRes.Residency[cstate.C1], recRes.Residency[cstate.C1E],
			recRes.AvgCorePowerW, vec)
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Table renders the AMD analysis.
func (r AMDResult) Table() *report.Table {
	t := &report.Table{
		Title: "Sec. 5.5: AW benefit on an AMD EPYC-like platform (Memcached)",
		Headers: []string{"Rate (KQPS)", "CC6 residency", "Tail gain (CC6 off)",
			"Power penalty (CC6 off)", "AW recovery"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.RateQPS/1000),
			report.Pct(p.AllStates.Residency[cstate.C6]),
			fmt.Sprintf("%.1f%%", p.TailReductionPct),
			fmt.Sprintf("%.1f%%", p.PowerPenaltyPct),
			fmt.Sprintf("%.1f%%", p.AWReductionPct))
	}
	t.Notes = append(t.Notes,
		"vendor guides disable CC6 for latency-critical work; AW recovers the idle power",
		"while keeping the low-latency configuration (paper Sec. 5.5)")
	return t
}
