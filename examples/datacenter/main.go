// Datacenter economics: regenerate Table 5 — AgileWatts' yearly
// operating-cost savings per 100K servers across the Memcached load
// range — and explore PUE sensitivity (Sec. 7.6).
package main

import (
	"fmt"
	"log"
	"os"

	agilewatts "repro"
)

func main() {
	opts := agilewatts.DefaultOptions()
	if err := agilewatts.RunExperiment(agilewatts.ExpTable5, opts, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// PUE sensitivity: the paper notes savings grow proportionally to the
	// datacenter PUE. Show the per-server yearly savings for one load
	// point at several PUEs using the public simulation API.
	base, err := agilewatts.RunService(agilewatts.ServiceRun{
		Platform: agilewatts.Baseline, Service: agilewatts.Memcached(), RateQPS: 100_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	aw, err := agilewatts.RunService(agilewatts.ServiceRun{
		Platform: agilewatts.AW, Service: agilewatts.Memcached(), RateQPS: 100_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	deltaPerServer := (base.AvgCorePowerW - aw.AvgCorePowerW) * 20 // both sockets
	const dollarsPerWattYear = 0.125 / 3.6e6 * 365.25 * 24 * 3600
	fmt.Println("PUE sensitivity @ 100K QPS (whole 20-core server):")
	for _, pue := range []float64{1.0, 1.2, 1.5, 2.0} {
		fmt.Printf("  PUE %.1f: $%.2f saved per server-year\n",
			pue, deltaPerServer*dollarsPerWattYear*pue)
	}
}
