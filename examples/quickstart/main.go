// Quickstart: simulate a Memcached server under the legacy C-state
// baseline and under AgileWatts, and compare power and latency — the
// paper's headline result in ~40 lines.
package main

import (
	"fmt"
	"log"

	agilewatts "repro"
)

func main() {
	const rate = 100_000 // QPS

	base, err := agilewatts.RunService(agilewatts.ServiceRun{
		Platform: agilewatts.Baseline, // Turbo + C1/C1E/C6
		Service:  agilewatts.Memcached(),
		RateQPS:  rate,
	})
	if err != nil {
		log.Fatal(err)
	}

	aw, err := agilewatts.RunService(agilewatts.ServiceRun{
		Platform: agilewatts.AW, // C1/C1E replaced by C6A/C6AE
		Service:  agilewatts.Memcached(),
		RateQPS:  rate,
	})
	if err != nil {
		log.Fatal(err)
	}

	saving := (base.AvgCorePowerW - aw.AvgCorePowerW) / base.AvgCorePowerW * 100
	latDelta := (aw.EndToEnd.AvgUS - base.EndToEnd.AvgUS) / base.EndToEnd.AvgUS * 100

	fmt.Printf("Memcached @ %d QPS on a 20-CPU Skylake server\n\n", rate)
	fmt.Printf("%-10s %14s %16s %16s\n", "config", "core power", "avg e2e latency", "p99 e2e latency")
	fmt.Printf("%-10s %13.2fW %14.1fus %14.1fus\n", "baseline",
		base.AvgCorePowerW, base.EndToEnd.AvgUS, base.EndToEnd.P99US)
	fmt.Printf("%-10s %13.2fW %14.1fus %14.1fus\n", "AgileWatts",
		aw.AvgCorePowerW, aw.EndToEnd.AvgUS, aw.EndToEnd.P99US)
	fmt.Printf("\npower saving: %.1f%%   latency impact: %+.2f%%\n", saving, latDelta)
	fmt.Println("\nbaseline residency:", fmtResidency(base))
	fmt.Println("AW residency:      ", fmtResidency(aw))
}

func fmtResidency(r agilewatts.Result) string {
	out := ""
	for _, id := range []agilewatts.StateID{
		agilewatts.C0, agilewatts.C1, agilewatts.C6A,
		agilewatts.C1E, agilewatts.C6AE, agilewatts.C6,
	} {
		if r.Residency[id] > 0.001 {
			out += fmt.Sprintf("%s=%.1f%% ", id, r.Residency[id]*100)
		}
	}
	return out
}
