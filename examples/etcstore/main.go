// ETC store: run the high-fidelity Memcached profile, where service
// times come from a live Zipf/LRU key-value store model (the Facebook
// ETC workload the paper's Mutilate generator replays), and compare the
// AgileWatts savings against the closed-form profile.
package main

import (
	"fmt"
	"log"

	agilewatts "repro"
)

func main() {
	const rate = 200_000

	type row struct {
		name    string
		service agilewatts.ServiceProfile
	}
	closed := agilewatts.Memcached()
	etc, err := agilewatts.MemcachedETC(7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Memcached @ %d QPS: closed-form vs live ETC store service model\n\n", rate)
	fmt.Printf("%-15s %-10s %12s %12s %12s %9s\n",
		"profile", "config", "core power", "avg e2e", "p99 e2e", "saving")
	for _, r := range []row{{"closed-form", closed}, {"etc-kvstore", etc}} {
		base, err := agilewatts.RunService(agilewatts.ServiceRun{
			Platform: agilewatts.Baseline, Service: r.service, RateQPS: rate,
		})
		if err != nil {
			log.Fatal(err)
		}
		aw, err := agilewatts.RunService(agilewatts.ServiceRun{
			Platform: agilewatts.AW, Service: r.service, RateQPS: rate,
		})
		if err != nil {
			log.Fatal(err)
		}
		saving := (base.AvgCorePowerW - aw.AvgCorePowerW) / base.AvgCorePowerW * 100
		fmt.Printf("%-15s %-10s %11.2fW %10.1fus %10.1fus %8.1f%%\n",
			r.name, "baseline", base.AvgCorePowerW, base.EndToEnd.AvgUS, base.EndToEnd.P99US, 0.0)
		fmt.Printf("%-15s %-10s %11.2fW %10.1fus %10.1fus %8.1f%%\n",
			r.name, "AW", aw.AvgCorePowerW, aw.EndToEnd.AvgUS, aw.EndToEnd.P99US, saving)
	}
	fmt.Println("\nThe AW savings hold under the cache-coupled service model: the")
	fmt.Println("idle-period structure, not the service-time closed form, drives them.")
}
