// Snoop storm: quantify how cache-coherence traffic erodes AgileWatts'
// savings (Sec. 7.5), both analytically and with the full server
// simulator under injected snoop load.
package main

import (
	"fmt"
	"log"
	"os"

	agilewatts "repro"
)

func main() {
	// Analytical bounds (79% quiet -> 68% saturated).
	if err := agilewatts.RunExperiment(agilewatts.ExpSnoop, agilewatts.DefaultOptions(), os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Simulation: a mostly-idle AW server under increasing snoop rates.
	fmt.Println("Simulated: mostly-idle server (10K QPS memcached, C6A-only config)")
	fmt.Printf("%-16s %12s\n", "snoops/core/s", "core power")
	for _, rate := range []float64{0, 50e3, 200e3, 500e3} {
		res, err := agilewatts.RunService(agilewatts.ServiceRun{
			Platform:        agilewatts.TC6ANoC6NoC1E,
			Service:         agilewatts.Memcached(),
			RateQPS:         10_000,
			SnoopRatePerSec: rate,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16.0f %11.3fW\n", rate, res.AvgCorePowerW)
	}
	fmt.Println("\nEach snoop briefly wakes the L1/L2 sleep domain (CCSM), so idle")
	fmt.Println("power rises with snoop duty cycle but stays far below C1's 1.44W.")
}
