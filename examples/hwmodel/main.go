// Hardware-model tour: walk the AgileWatts microarchitecture — the PMA
// entry/exit flows of Fig. 6, the staggered UFPG wake-up of Sec. 5.3,
// and the Table 3 PPA breakdown — using the structural model directly.
package main

import (
	"fmt"
	"os"

	agilewatts "repro"
)

func main() {
	arch := agilewatts.NewArchitecture()

	fmt.Println("== C6A entry flow (Fig. 6, steps 1-3) ==")
	fmt.Println(arch.PMA.EntryFlow(false))
	fmt.Printf("blocking latency: %v (< 10 PMA cycles)\n\n", arch.PMA.EntryLatency(false))

	fmt.Println("== C6AE entry flow (adds non-blocking DVFS to Pn) ==")
	fmt.Println(arch.PMA.EntryFlow(true))
	fmt.Println()

	fmt.Println("== C6A exit flow (Fig. 6, steps 4-6) ==")
	fmt.Println(arch.PMA.ExitFlow())
	fmt.Printf("blocking latency: %v\n\n", arch.PMA.ExitLatency())

	fmt.Println("== Staggered UFPG wake-up (Sec. 5.3) ==")
	fmt.Printf("%-12s %8s %8s %10s\n", "zone", "start", "ready", "in-rush")
	for _, s := range arch.UFPG.WakeSchedule() {
		fmt.Printf("%-12s %8v %8v %9.2fx\n", s.Zone, s.Start, s.Ready, s.PeakInrush)
	}
	fmt.Printf("total: %v; simultaneous wake would draw %.1fx the AVX envelope\n\n",
		arch.UFPG.WakeLatency(), arch.UFPG.SimultaneousWakeInrush())

	fmt.Println("== Legacy C6 for comparison (Sec. 3) ==")
	for _, d := range []float64{0.25, 0.5, 1.0} {
		fmt.Printf("C6 entry @ %.0f%% dirty, 800MHz: %v\n", d*100, arch.C6.EntryLatency(d, 800e6))
	}
	lat := arch.Latencies(0.5, 800e6)
	fmt.Printf("C6A round trip %v vs C6 %v: %.0fx faster\n\n",
		lat.C6ARoundTrip, lat.C6RoundTrip, lat.SpeedupVsC6)

	fmt.Println("== Table 3: PPA breakdown ==")
	if err := agilewatts.RunExperiment(agilewatts.ExpTable3, agilewatts.DefaultOptions(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
