// Tail-latency tuning: reproduce the operator's dilemma from Sec. 7.2 —
// disabling deep C-states buys tail latency but costs power — and show
// how AgileWatts' C6A dissolves the trade-off.
//
// This walks the same configurations as Fig. 9/10 at a single load point
// and prints the power/tail-latency frontier.
package main

import (
	"fmt"
	"log"

	agilewatts "repro"
)

func main() {
	const rate = 300_000 // QPS

	configs := []agilewatts.PlatformConfig{
		agilewatts.NTBaseline,    // everything enabled, Turbo off
		agilewatts.NTNoC6,        // C6 disabled (vendor tuning guide)
		agilewatts.NTNoC6NoC1E,   // C6+C1E disabled (max performance)
		agilewatts.TNoC6NoC1E,    // + Turbo
		agilewatts.TC6ANoC6NoC1E, // AgileWatts: C6A + Turbo
	}

	fmt.Printf("Memcached @ %d QPS - the C-state tuning frontier\n\n", rate)
	fmt.Printf("%-22s %12s %12s %12s %8s\n", "config", "pkg power", "avg e2e", "p99 e2e", "turbo")
	for _, cfg := range configs {
		res, err := agilewatts.RunService(agilewatts.ServiceRun{
			Platform: cfg,
			Service:  agilewatts.Memcached(),
			RateQPS:  rate,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %11.1fW %10.1fus %10.1fus %7.0f%%\n",
			cfg.Name, res.PackagePowerW, res.EndToEnd.AvgUS, res.EndToEnd.P99US,
			res.TurboFraction*100)
	}
	fmt.Println("\nAgileWatts' C6A row should match the latency of the C1-only")
	fmt.Println("configurations while drawing close to deep-idle power (Sec. 7.2/7.3).")
}
