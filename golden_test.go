package agilewatts

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/server"
)

// The pipeline-stability goldens pin the simulator's observable output
// bit-for-bit: every optimization of the event pipeline, histograms, or
// queues must reproduce these exact float64 values (captured before the
// zero-allocation rework landed). The cases cover every event kind the
// hot path dispatches: open-loop, bursty and closed-loop generators; all
// four dispatch policies; snoop traffic; Turbo; and the AW states.
//
// Regenerate with:
//
//	GOLDEN_PRINT=1 go test -run TestGoldenPipelineStability -v .
//
// but only when an intentional model change alters the output — never to
// absorb an optimization's drift.

// goldenCases must produce the exact fingerprints in goldenWant.
var goldenCases = []struct {
	name string
	run  ServiceRun
}{
	{"baseline-memcached-200k", ServiceRun{
		Platform: Baseline, RateQPS: 200e3,
		DurationNS: 50_000_000, WarmupNS: 10_000_000, Seed: 1,
	}},
	{"aw-memcached-200k", ServiceRun{
		Platform: AW, RateQPS: 200e3,
		DurationNS: 50_000_000, WarmupNS: 10_000_000, Seed: 1,
	}},
	{"tc6a-kafka-100k-snoop", ServiceRun{
		Platform: TC6ANoC6NoC1E, Service: Kafka(), RateQPS: 100e3,
		DurationNS: 40_000_000, WarmupNS: 8_000_000, Seed: 7,
		SnoopRatePerSec: 50e3,
	}},
	{"ntnoc6-mysql-50k-packed", ServiceRun{
		Platform: NTNoC6, Service: MySQL(), RateQPS: 50e3,
		DurationNS: 40_000_000, WarmupNS: 8_000_000, Seed: 3,
		Dispatch: DispatchPacked,
	}},
	{"baseline-memcached-150k-least-loaded", ServiceRun{
		Platform: Baseline, RateQPS: 150e3,
		DurationNS: 40_000_000, WarmupNS: 8_000_000, Seed: 11,
		Dispatch: DispatchLeastLoaded,
	}},
	{"baseline-memcached-150k-random-bursty", ServiceRun{
		Platform: Baseline, RateQPS: 150e3,
		DurationNS: 40_000_000, WarmupNS: 8_000_000, Seed: 13,
		Dispatch: DispatchRandom, LoadGen: LoadBursty,
	}},
	{"aw-memcached-closed-loop-64conn", ServiceRun{
		Platform: AW, DurationNS: 40_000_000, WarmupNS: 8_000_000,
		Seed: 17, Connections: 64,
	}},
}

// goldenWant maps case name to the exact pre-optimization fingerprint.
// Populated below by a GOLDEN_PRINT capture run of the unoptimized tree.
var goldenWant = map[string]string{
	"baseline-memcached-200k":               "res0=0x1.8072ac810e18bp-03 res1=0x1.5b2e2c96bf7d3p-12 res2=0x0p+00 res3=0x1.9fb7ef1a29a1ep-01 res4=0x0p+00 res5=0x0p+00 tps0=0x1.a7d4p+17 tps1=0x1.9p+06 tps2=0x0p+00 tps3=0x1.a766p+17 tps4=0x0p+00 tps5=0x0p+00 corew=0x1.4f3533bbcd2b1p+00 pkgw=0x1.c1814055603aep+05 energy=0x1.4f3533bbcd2b1p+00 qps=0x1.8d58p+17 turbo=0x1p+00 uncore=0x1.ep+04 snoops=0 maxq=9 srv.n=10172 srv.avg=0x1.1ff2610fe9496p+04 srv.p50=0x1.e1p+03 srv.p95=0x1.03p+05 srv.p99=0x1.d5p+05 srv.p999=0x1.81p+07 srv.max=0x1.c29cccccccccdp+09 e2e.n=10172 e2e.avg=0x1.0e1e6d3fa976ep+07 e2e.p50=0x1.03p+07 e2e.p95=0x1.97p+07 e2e.p99=0x1.e5p+07 e2e.p999=0x1.55p+08 e2e.max=0x1.13af3b645a1cbp+10 wake.n=10176 wake.avg=0x1.3a468d8e85c38p+03 wake.p50=0x1.3fp+03 wake.p95=0x1.3fp+03 wake.p99=0x1.3fp+03 wake.p999=0x1.3fp+03 wake.max=0x1.3f5c28f5c28f6p+03 queue.n=10176 queue.avg=0x1.1bc6f3c6c250cp-01 queue.p50=0x1p-08 queue.p95=0x1p-08 queue.p99=0x1.75p+02 queue.p999=0x1.a9p+06 queue.max=0x1.8bf020c49ba5ep+09 service.n=10176 service.avg=0x1.e7be06ac0eca7p+02 service.p50=0x1.45p+02 service.p95=0x1.63p+04 service.p99=0x1.69p+05 service.p999=0x1.fdp+06 service.max=0x1.bd9f5c28f5c29p+09",
	"aw-memcached-200k":                     "res0=0x1.814ffa9cc7542p-03 res1=0x0p+00 res2=0x1.793a3131d9ca7p-12 res3=0x0p+00 res4=0x1.9f7cda12a7efcp-01 res5=0x0p+00 tps0=0x1.a7d4p+17 tps1=0x0p+00 tps2=0x1.ep+06 tps3=0x0p+00 tps4=0x1.a75cp+17 tps5=0x0p+00 corew=0x1.8dda58358b7ccp-01 pkgw=0x1.6c543b90bb97p+05 energy=0x1.8dda58358b7ccp-01 qps=0x1.8d58p+17 turbo=0x1p+00 uncore=0x1.ep+04 snoops=0 maxq=9 srv.n=10172 srv.avg=0x1.20aba4b725545p+04 srv.p50=0x1.e3p+03 srv.p95=0x1.05p+05 srv.p99=0x1.d7p+05 srv.p999=0x1.83p+07 srv.max=0x1.c4f999999999ap+09 e2e.n=10172 e2e.avg=0x1.0e3595b490f61p+07 e2e.p50=0x1.03p+07 e2e.p95=0x1.97p+07 e2e.p99=0x1.e5p+07 e2e.p999=0x1.57p+08 e2e.max=0x1.14dda1cac0831p+10 wake.n=10176 wake.avg=0x1.3a381417f51dbp+03 wake.p50=0x1.3fp+03 wake.p95=0x1.3fp+03 wake.p99=0x1.3fp+03 wake.p999=0x1.3fp+03 wake.max=0x1.3f5c28f5c28f6p+03 queue.n=10176 queue.avg=0x1.1f268d250174ap-01 queue.p50=0x1p-08 queue.p95=0x1p-08 queue.p99=0x1.77p+02 queue.p999=0x1.adp+06 queue.max=0x1.8e4ced916872bp+09 service.n=10176 service.avg=0x1.ea540988151e8p+02 service.p50=0x1.47p+02 service.p95=0x1.65p+04 service.p99=0x1.6bp+05 service.p999=0x1.01p+07 service.max=0x1.bffc28f5c28f6p+09",
	"tc6a-kafka-100k-snoop":                 "res0=0x1.42e85dcce4caap-03 res1=0x0p+00 res2=0x1.af45e88cc6cd6p-01 res3=0x0p+00 res4=0x0p+00 res5=0x0p+00 tps0=0x1.db32p+16 tps1=0x0p+00 tps2=0x1.db7dp+16 tps3=0x0p+00 tps4=0x0p+00 tps5=0x0p+00 corew=0x1.2f9db39f1119fp+00 pkgw=0x1.adc290436ab04p+05 energy=0x1.e5c91f64e8299p-01 qps=0x1.b43bp+16 turbo=0x1p+00 uncore=0x1.ep+04 snoops=39132 maxq=9 srv.n=4467 srv.avg=0x1.f5fa95a2b57e8p+04 srv.p50=0x1.3bp+04 srv.p95=0x1.5fp+06 srv.p99=0x1.b7p+07 srv.p999=0x1.29p+09 srv.max=0x1.6a316872b020cp+09 e2e.n=4467 e2e.avg=0x1.2988527c1e68ep+07 e2e.p50=0x1.15p+07 e2e.p95=0x1.d3p+07 e2e.p99=0x1.63p+08 e2e.p999=0x1.5bp+09 e2e.max=0x1.a3eced916872bp+09 wake.n=4465 wake.avg=0x1.df855e20b2c59p+00 wake.p50=0x1.fae147ae147aep+00 wake.p95=0x1.fae147ae147aep+00 wake.p99=0x1.fae147ae147aep+00 wake.p999=0x1.fae147ae147aep+00 wake.max=0x1.fae147ae147aep+00 queue.n=4465 queue.avg=0x1.eecc282cbbe7dp+01 queue.p50=0x1p-08 queue.p95=0x1.5bp+00 queue.p99=0x1.dbp+06 queue.p999=0x1.c7p+08 queue.max=0x1.441df3b645a1dp+09 service.n=4465 service.avg=0x1.9e39dbcfa9297p+04 service.p50=0x1.11p+04 service.p95=0x1.2bp+06 service.p99=0x1.1bp+07 service.p999=0x1.1dp+09 service.max=0x1.0f747ae147ae1p+10",
	"ntnoc6-mysql-50k-packed":               "res0=0x1.0e274f39cf03bp-01 res1=0x1.4b07bb354aba9p-13 res2=0x0p+00 res3=0x1.e3880094fb4f4p-02 res4=0x0p+00 res5=0x0p+00 tps0=0x1.b58p+13 tps1=0x1.9p+06 tps2=0x0p+00 tps3=0x1.b648p+13 tps4=0x0p+00 tps5=0x0p+00 corew=0x1.40d103c9d5c35p+01 pkgw=0x1.4082a25e259a1p+06 energy=0x1.00a7363b11691p+01 qps=0x1.84dep+15 turbo=0x0p+00 uncore=0x1.ep+04 snoops=0 maxq=4 srv.n=1991 srv.avg=0x1.3d61997a00226p+09 srv.p50=0x1.f9p+08 srv.p95=0x1.7bp+10 srv.p99=0x1.4bp+11 srv.p999=0x1.afp+13 srv.max=0x1.b8f583126e979p+13 e2e.n=1991 e2e.avg=0x1.780788c93977ep+09 e2e.p50=0x1.37p+09 e2e.p95=0x1.9dp+10 e2e.p99=0x1.5dp+11 e2e.p999=0x1.b3p+13 e2e.max=0x1.bcb847ae147aep+13 wake.n=1986 wake.avg=0x1.a2d99b9476ec3p-01 wake.p50=0x1p-08 wake.p95=0x1.3fp+03 wake.p99=0x1.3fp+03 wake.p999=0x1.3fp+03 wake.max=0x1.3f5c28f5c28f6p+03 queue.n=1986 queue.avg=0x1.a8ec30275e28bp+08 queue.p50=0x1.3dp+08 queue.p95=0x1.1bp+10 queue.p99=0x1.ffp+10 queue.p999=0x1.8dp+12 queue.max=0x1.abab7ae147ae1p+13 service.n=1986 service.avg=0x1.9c1399d3ada11p+07 service.p50=0x1.fdp+06 service.p95=0x1.2fp+09 service.p99=0x1.3bp+10 service.p999=0x1.87p+12 service.max=0x1.ac6d5c28f5c29p+13",
	"baseline-memcached-150k-least-loaded":  "res0=0x1.358736c0866d7p-03 res1=0x1.07dd04a85b536p-04 res2=0x0p+00 res3=0x1.bda7b2b6f6f7ap-02 res4=0x0p+00 res5=0x1.659d70beaefcep-02 tps0=0x1.49268p+17 tps1=0x1.bb8ep+16 tps2=0x0p+00 tps3=0x1.66fcp+15 tps4=0x0p+00 tps5=0x1.1a08p+13 corew=0x1.2d732399a4ac6p+00 pkgw=0x1.ac67f64006ebcp+05 energy=0x1.e251d28f6de0bp-01 qps=0x1.2511p+17 turbo=0x1p+00 uncore=0x1.ep+04 snoops=0 maxq=1 srv.n=6002 srv.avg=0x1.763f9c8cac2adp+03 srv.p50=0x1.1dp+03 srv.p95=0x1.a7p+04 srv.p99=0x1.93p+05 srv.p999=0x1.79p+06 srv.max=0x1.ca7851eb851ecp+08 e2e.n=6002 e2e.avg=0x1.02b9858d7b8c6p+07 e2e.p50=0x1.f1p+06 e2e.p95=0x1.8bp+07 e2e.p99=0x1.e9p+07 e2e.p999=0x1.4fp+08 e2e.max=0x1.3eb020c49ba5ep+09 wake.n=6003 wake.avg=0x1.079da64c4eb77p+02 wake.p50=0x1.fbp+00 wake.p95=0x1.3fp+03 wake.p99=0x1.3fp+03 wake.p999=0x1.7p+05 wake.max=0x1.7p+05 queue.n=6003 queue.avg=0x1.22a8e535a29ddp-17 queue.p50=0x1p-08 queue.p95=0x1p-08 queue.p99=0x1p-08 queue.p999=0x1p-08 queue.max=0x1.eb851eb851eb8p-07 service.n=6003 service.avg=0x1.e79e39067d9b4p+02 service.p50=0x1.4bp+02 service.p95=0x1.67p+04 service.p99=0x1.51p+05 service.p999=0x1.bbp+06 service.max=0x1.c87d70a3d70a4p+08",
	"baseline-memcached-150k-random-bursty": "res0=0x1.9feaf830fea59p-04 res1=0x1.95173fb7a5f42p-06 res2=0x0p+00 res3=0x1.982737872ad72p-01 res4=0x0p+00 res5=0x1.39957ba7c124ap-04 tps0=0x1.284ap+16 tps1=0x1.9c8p+12 tps2=0x0p+00 tps3=0x1.f72p+15 tps4=0x0p+00 tps5=0x1.275p+12 corew=0x1.28b1375b87d42p+00 pkgw=0x1.a96ec29934e49p+05 energy=0x1.dab5255f3fb9cp-01 qps=0x1.9514p+16 turbo=0x1p+00 uncore=0x1.ep+04 snoops=0 maxq=11 srv.n=4148 srv.avg=0x1.989fb29534adfp+04 srv.p50=0x1.ffp+03 srv.p95=0x1.67p+06 srv.p99=0x1.0fp+07 srv.p999=0x1.f5p+07 srv.max=0x1.61ef9db22d0e5p+08 e2e.n=4148 e2e.avg=0x1.1e24e6ca409ap+07 e2e.p50=0x1.0dp+07 e2e.p95=0x1.c7p+07 e2e.p99=0x1.1dp+08 e2e.p999=0x1.91p+08 e2e.max=0x1.283e560418937p+09 wake.n=4153 wake.avg=0x1.88ef4a3fce8d5p+02 wake.p50=0x1.3fp+03 wake.p95=0x1.3fp+03 wake.p99=0x1.7p+05 wake.p999=0x1.7p+05 wake.max=0x1.7p+05 queue.n=4153 queue.avg=0x1.77625d19740abp+03 queue.p50=0x1p-08 queue.p95=0x1.1bp+06 queue.p99=0x1.e1p+06 queue.p999=0x1.7bp+07 queue.max=0x1.38f1eb851eb85p+08 service.n=4153 service.avg=0x1.eab215b37549ap+02 service.p50=0x1.4bp+02 service.p95=0x1.6dp+04 service.p99=0x1.6fp+05 service.p999=0x1.fdp+06 service.max=0x1.55126e978d4fep+08",
	"aw-memcached-closed-loop-64conn":       "res0=0x1.0f61d633d3c21p-04 res1=0x0p+00 res2=0x0p+00 res3=0x0p+00 res4=0x1.de13c5398587cp-01 res5=0x0p+00 tps0=0x1.352ep+16 tps1=0x0p+00 tps2=0x0p+00 tps3=0x0p+00 tps4=0x1.3592p+16 tps5=0x0p+00 corew=0x1.a99619a5d6786p-02 pkgw=0x1.327f7401e982dp+05 energy=0x1.54781484ab938p-02 qps=0x1.e302p+15 turbo=0x1p+00 uncore=0x1.ep+04 snoops=0 maxq=2 srv.n=2473 srv.avg=0x1.202230d51400ap+04 srv.p50=0x1.e9p+03 srv.p95=0x1.17p+05 srv.p99=0x1.dbp+05 srv.p999=0x1.afp+06 srv.max=0x1.0df604189374cp+08 e2e.n=2473 e2e.avg=0x1.0d35ee645a52ep+07 e2e.p50=0x1.03p+07 e2e.p95=0x1.95p+07 e2e.p99=0x1.e1p+07 e2e.p999=0x1.2bp+08 e2e.max=0x1.5e3b22d0e5604p+08 wake.n=2471 wake.avg=0x1.3b5a7c5d135dbp+03 wake.p50=0x1.3fp+03 wake.p95=0x1.3fp+03 wake.p99=0x1.3fp+03 wake.p999=0x1.3fp+03 wake.max=0x1.3f5c28f5c28f6p+03 queue.n=2471 queue.avg=0x1.3c964f78c032fp-04 queue.p50=0x1p-08 queue.p95=0x1p-08 queue.p99=0x1.29p+02 queue.p999=0x1.57p+03 queue.max=0x1.6d2f1a9fbe76dp+03 service.n=2471 service.avg=0x1.027c3e85be109p+03 service.p50=0x1.57p+02 service.p95=0x1.8fp+04 service.p99=0x1.8bp+05 service.p999=0x1.87p+06 service.max=0x1.03fb22d0e5604p+08",
}

// hexF formats a float64 exactly (hex mantissa/exponent, no rounding).
func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// fingerprint serializes every float-valued observable of a Result into
// an exact, human-diffable string.
func fingerprint(res Result) string {
	var b strings.Builder
	f := func(k string, v float64) { fmt.Fprintf(&b, "%s=%s ", k, hexF(v)) }
	u := func(k string, v uint64) { fmt.Fprintf(&b, "%s=%d ", k, v) }
	for id, r := range res.Residency {
		f(fmt.Sprintf("res%d", id), r)
	}
	for id, tr := range res.TransitionsPerSec {
		f(fmt.Sprintf("tps%d", id), tr)
	}
	f("corew", res.AvgCorePowerW)
	f("pkgw", res.PackagePowerW)
	f("energy", res.EnergyJ)
	f("qps", res.CompletedPerSec)
	f("turbo", res.TurboFraction)
	f("uncore", res.UncoreAvgW)
	u("snoops", res.SnoopsServed)
	fmt.Fprintf(&b, "maxq=%d ", res.MaxQueueDepth)
	sum := func(k string, s server.LatencySummary) {
		u(k+".n", s.Count)
		f(k+".avg", s.AvgUS)
		f(k+".p50", s.P50US)
		f(k+".p95", s.P95US)
		f(k+".p99", s.P99US)
		f(k+".p999", s.P999US)
		f(k+".max", s.MaxUS)
	}
	sum("srv", res.Server)
	sum("e2e", res.EndToEnd)
	sum("wake", res.Breakdown.Wake)
	sum("queue", res.Breakdown.Queue)
	sum("service", res.Breakdown.Service)
	return strings.TrimSpace(b.String())
}

func TestGoldenPipelineStability(t *testing.T) {
	printMode := os.Getenv("GOLDEN_PRINT") != ""
	for _, tc := range goldenCases {
		res, err := RunService(tc.run)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := fingerprint(res)
		if printMode {
			fmt.Printf("\t%q: %q,\n", tc.name, got)
			continue
		}
		want, ok := goldenWant[tc.name]
		if !ok {
			t.Fatalf("%s: no golden recorded", tc.name)
		}
		if got != want {
			t.Errorf("%s: output drifted from pre-optimization golden\n got: %s\nwant: %s",
				tc.name, diffFields(got, want), diffFields(want, got))
		}
	}
}

// diffFields returns only the space-separated fields of a that differ
// from their positional counterpart in b, keeping failures readable.
func diffFields(a, b string) string {
	af, bf := strings.Fields(a), strings.Fields(b)
	var out []string
	for i, fa := range af {
		if i >= len(bf) || fa != bf[i] {
			out = append(out, fa)
		}
	}
	if len(af) != len(bf) {
		out = append(out, fmt.Sprintf("(field count %d vs %d)", len(af), len(bf)))
	}
	return strings.Join(out, " ")
}
